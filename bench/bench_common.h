// Shared machinery for the figure/table benchmarks.
//
// Every bench uses the paper's evaluation setup (§4.1-§4.2):
//  - QCIF, 300 frames per clip (override with PBPAIR_BENCH_FRAMES for quick
//    runs), QP 10, GOB-per-row packetization, MTU 1400;
//  - full-search motion estimation (the ITU reference encoder the paper
//    builds on is a full-search encoder; ME dominance is what the energy
//    experiments measure) with range +/-7;
//  - PLR 10% via uniform frame discard unless the experiment says
//    otherwise;
//  - PBPAIR's Intra_Th calibrated per sequence so its encoded size matches
//    PGOP-3's ("We choose Intra_Th that gives similar compression ratio
//    with PGOP-3, GOP-3 and AIR-24", §4.2).
#pragma once

#include <vector>

#include "sim/parallel_sweep.h"
#include "sim/pipeline.h"
#include "sim/report.h"
#include "video/sequence.h"

namespace pbpair::bench {

/// Number of frames per run: 300 (the paper's clips) unless the
/// PBPAIR_BENCH_FRAMES environment variable overrides it.
int bench_frames();

/// Frames of one synthetic clip, generated once and cached for the process.
const std::vector<video::YuvFrame>& cached_clip(video::SequenceKind kind,
                                                int frames);

/// FrameSource over the cached clip.
sim::FrameSource clip_source(video::SequenceKind kind, int frames);

/// The paper's encoder/pipeline setup.
sim::PipelineConfig paper_pipeline_config(int frames);

/// Calibrates PBPAIR's Intra_Th so its lossless-channel encoded size is
/// closest to `target_bytes` on this clip (shorter calibration runs keep
/// bench time sane; size is monotone in Intra_Th so this transfers).
double calibrate_pbpair_to_size(video::SequenceKind kind,
                                std::uint64_t target_bytes, double plr);

/// Runs the pipeline over a cached clip.
sim::PipelineResult run_clip(video::SequenceKind kind,
                             const sim::SchemeSpec& scheme,
                             net::LossModel* loss,
                             const sim::PipelineConfig& config);

/// A sim::SweepTask over a cached clip, for run_parallel_sweep. The loss
/// factory may be null (lossless channel); when set, it is invoked inside
/// the worker so every task gets its own deterministically seeded model.
sim::SweepTask clip_task(
    video::SequenceKind kind, const sim::SchemeSpec& scheme,
    const sim::PipelineConfig& config,
    std::function<std::unique_ptr<net::LossModel>()> make_loss = nullptr);

/// Writes `table` as CSV to $PBPAIR_BENCH_CSV_DIR/<name>.csv when that
/// environment variable is set (for external plotting); no-op otherwise.
void maybe_write_csv(const sim::Table& table, const std::string& name);

/// Turns the observability layer on for this bench process (metrics blocks
/// in the JSON reports need populated counters) and names the main trace
/// track after the bench. Call first in main().
void enable_observability(const char* bench_name);

/// Renders `table` as a JSON array of objects, one per row, using the
/// header names as keys and the formatted cell text as string values.
std::string table_to_json(const sim::Table& table);

/// Writes BENCH_<name>.json (override the path with $PBPAIR_BENCH_JSON):
/// an object holding `payload_fields` — pre-rendered `"key": value` pairs,
/// comma-separated, no trailing comma — plus the obs metrics registry as
/// the report's "metrics" block. When $PBPAIR_TRACE_JSON is set, the
/// buffered trace spans are also exported there in Chrome trace format.
void write_json_report(const std::string& name,
                       const std::string& payload_fields);

/// All three paper clips.
inline constexpr video::SequenceKind kPaperClips[] = {
    video::SequenceKind::kForemanLike, video::SequenceKind::kAkiyoLike,
    video::SequenceKind::kGardenLike};

}  // namespace pbpair::bench
