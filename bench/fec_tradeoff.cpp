// FEC vs intra refresh — the packet-level trade-off matrix.
//
// The paper spends its error-resilience budget inside the encoder (intra
// refresh steered by Intra_Th); the FEC subsystem (net/fec.h) spends it on
// the wire instead (repair packets per window of k). This bench runs the
// full cross product
//
//     scheme  (pbpair-only | fec-only | hybrid)
//   x loss    (i.i.d. packet loss | Gilbert-Elliott bursts | fault injector)
//   x rate    (k=8,m=1 | k=8,m=2 | k=4,m=2)
//
// and reports PSNR, application goodput (bytes of frames that arrived
// intact, post-FEC), J/frame on the iPAQ model (repair packets are metered
// by the transmit stage like any other wire bytes), the repair recovery
// rate, and PSNR-per-joule — the figure of merit the hybrid operating
// point has to win on.
//
// Every cell is deterministic (seeded loss, modeled energy), so the
// emitted BENCH_fec.json doubles as a CI regression baseline: the
// bench-smoke job re-runs this matrix at PBPAIR_BENCH_FRAMES=24 and
// check_bench_regression --mode fec gates the recovery_rate and
// j_per_frame columns against the committed file.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/fault_injector.h"
#include "net/fec.h"
#include "net/loss_model.h"
#include "sim/parallel_sweep.h"
#include "sim/report.h"

using namespace pbpair;

namespace {

struct RatePoint {
  const char* tag;  // stable row-name component, e.g. "k8m2"
  int k;
  int m;
};

struct LossPoint {
  const char* tag;  // "iid" | "ge" | "fault"
  std::function<std::unique_ptr<net::LossModel>()> make_loss;
  std::optional<net::FaultInjectorConfig> faults;
};

struct Cell {
  std::string name;    // "<loss>/<scheme>[/<rate>]" — the gate's row key
  std::string scheme;  // pbpair | fec | hybrid
  std::string loss;
  int k = 0;
  int m = 0;
  double psnr_db = 0.0;
  double goodput_kbps = 0.0;
  double j_per_frame = 0.0;
  double recovery_rate = 0.0;
  double repair_overhead = 0.0;  // repair wire bytes / media wire bytes
  double psnr_per_j = 0.0;
};

double json_num(double v) { return v != v ? 0.0 : v; }  // NaN -> 0

}  // namespace

int main() {
  bench::enable_observability("fec_tradeoff");
  const int frames = bench::bench_frames();
  const video::SequenceKind kind = video::SequenceKind::kForemanLike;
  const double fps = 30.0;
  std::printf(
      "=== FEC vs intra refresh: scheme x loss x rate trade-off "
      "(%d foreman-like QCIF frames) ===\n\n",
      frames);

  // Loss operating points. All three average a high-single-digit PLR so
  // the schemes are comparable; they differ in burst structure:
  //   iid    independent per-packet drops (FEC's best case),
  //   ge     Gilbert-Elliott bursts, ~11% of time in a 50%-loss bad state
  //          (bursts overwhelm small m; intra refresh matters),
  //   fault  light i.i.d. loss plus hostile byte damage — truncations and
  //          header corruption eat media AND repair packets alike.
  std::vector<LossPoint> losses;
  losses.push_back({"iid",
                    [] {
                      return std::make_unique<net::BernoulliPacketLoss>(
                          0.08, /*seed=*/2005);
                    },
                    std::nullopt});
  losses.push_back({"ge",
                    [] {
                      net::GilbertElliottLoss::Params params;
                      params.p_good_to_bad = 0.05;
                      params.p_bad_to_good = 0.40;
                      params.loss_in_good = 0.005;
                      params.loss_in_bad = 0.50;
                      return std::make_unique<net::GilbertElliottLoss>(
                          params, /*seed=*/2005);
                    },
                    std::nullopt});
  net::FaultInjectorConfig hostile;
  hostile.seed = 2005;
  hostile.p_truncate = 0.04;
  hostile.p_header_corrupt = 0.03;
  hostile.p_duplicate = 0.02;
  losses.push_back({"fault",
                    [] {
                      return std::make_unique<net::BernoulliPacketLoss>(
                          0.04, /*seed=*/2005);
                    },
                    hostile});

  const std::vector<RatePoint> rates = {
      {"k8m1", 8, 1}, {"k8m2", 8, 2}, {"k4m2", 4, 2}};

  // One PBPAIR operating point shared by the pbpair-only and hybrid rows,
  // so their delta isolates what the repair packets buy. fec-only encodes
  // with no resilience at all — every recovery must come off the wire.
  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.85;
  pbpair.plr = 0.08;

  sim::PipelineConfig base_config = bench::paper_pipeline_config(frames);
  base_config.packetizer.mtu = 96;  // several packets per frame, so FEC
                                    // windows actually fill

  std::vector<Cell> cells;
  std::vector<sim::SweepTask> tasks;
  auto add_cell = [&](const LossPoint& loss, const std::string& scheme_tag,
                      const sim::SchemeSpec& scheme, const RatePoint* rate) {
    Cell cell;
    cell.scheme = scheme_tag;
    cell.loss = loss.tag;
    cell.name = std::string(loss.tag) + "/" + scheme_tag;
    sim::PipelineConfig config = base_config;
    config.faults = loss.faults;
    if (rate != nullptr) {
      cell.name += std::string("/") + rate->tag;
      cell.k = rate->k;
      cell.m = rate->m;
      net::FecConfig fec;
      fec.scheme = net::FecScheme::kReedSolomon;
      fec.k = rate->k;
      fec.m = rate->m;
      config.fec = fec;
    }
    cells.push_back(cell);
    tasks.push_back(bench::clip_task(kind, scheme, config, loss.make_loss));
  };

  for (const LossPoint& loss : losses) {
    add_cell(loss, "pbpair", sim::SchemeSpec::pbpair(pbpair), nullptr);
    for (const RatePoint& rate : rates) {
      add_cell(loss, "fec", sim::SchemeSpec::no_resilience(), &rate);
      add_cell(loss, "hybrid", sim::SchemeSpec::pbpair(pbpair), &rate);
    }
  }

  std::vector<sim::PipelineResult> results = sim::run_parallel_sweep(tasks);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::PipelineResult& r = results[i];
    Cell& cell = cells[i];
    cell.psnr_db = r.avg_psnr_db;
    cell.j_per_frame = r.total_energy_j() / frames;
    // Application goodput: bytes of frames every media packet of which
    // reached the depacketizer (losses repaired by FEC count as arrived).
    // Recovery rate: of the media packets the decoder would have missed
    // (channel drops AND fault-injector kills), the fraction FEC restored
    // — recovered / (recovered + still missing post-FEC), bounded [0,1].
    std::uint64_t intact_bytes = 0;
    std::uint64_t still_missing = 0;
    for (const sim::FrameTrace& f : r.frames) {
      if (!f.lost) intact_bytes += f.bytes;
      const int media_sent = f.packets_sent - f.fec_repair_sent;
      if (media_sent > f.packets_delivered) {
        still_missing +=
            static_cast<std::uint64_t>(media_sent - f.packets_delivered);
      }
    }
    cell.goodput_kbps = static_cast<double>(intact_bytes) * 8.0 /
                        (static_cast<double>(frames) / fps) / 1000.0;
    const double repaired_plus_missing =
        static_cast<double>(r.fec_decode.packets_recovered + still_missing);
    cell.recovery_rate =
        repaired_plus_missing > 0.0
            ? static_cast<double>(r.fec_decode.packets_recovered) /
                  repaired_plus_missing
            : 0.0;
    const std::uint64_t media_bytes =
        r.channel.bytes_sent - r.fec_encode.repair_bytes;
    cell.repair_overhead =
        media_bytes > 0
            ? static_cast<double>(r.fec_encode.repair_bytes) / media_bytes
            : 0.0;
    cell.psnr_per_j =
        cell.j_per_frame > 0.0 ? cell.psnr_db / cell.j_per_frame : 0.0;
  }

  sim::Table table({"cell", "psnr_db", "goodput_kbps", "j_per_frame",
                    "recovery", "overhead", "psnr_per_j"});
  for (const Cell& cell : cells) {
    table.add_row({cell.name, sim::format("%.2f", cell.psnr_db),
                   sim::format("%.1f", cell.goodput_kbps),
                   sim::format("%.4f", cell.j_per_frame),
                   sim::format("%.3f", cell.recovery_rate),
                   sim::format("%.3f", cell.repair_overhead),
                   sim::format("%.2f", cell.psnr_per_j)});
  }
  table.print();
  bench::maybe_write_csv(table, "fec_tradeoff");

  // The acceptance bar: on at least one Gilbert-Elliott rate point the
  // hybrid must beat BOTH pure strategies on PSNR-per-joule — encoder
  // resilience soaks up the bursts FEC cannot span, FEC cleans up the
  // residual i.i.d.-ish losses the intra refresh would otherwise pay
  // bitrate (and quality) to out-run.
  const Cell* ge_pbpair = nullptr;
  for (const Cell& cell : cells) {
    if (cell.loss == "ge" && cell.scheme == "pbpair") ge_pbpair = &cell;
  }
  const Cell* winner = nullptr;
  for (const Cell& cell : cells) {
    if (cell.loss != "ge" || cell.scheme != "hybrid") continue;
    const Cell* fec_peer = nullptr;
    for (const Cell& peer : cells) {
      if (peer.loss == "ge" && peer.scheme == "fec" && peer.k == cell.k &&
          peer.m == cell.m) {
        fec_peer = &peer;
      }
    }
    if (fec_peer == nullptr || ge_pbpair == nullptr) continue;
    if (cell.psnr_per_j > ge_pbpair->psnr_per_j &&
        cell.psnr_per_j > fec_peer->psnr_per_j) {
      if (winner == nullptr || cell.psnr_per_j > winner->psnr_per_j) {
        winner = &cell;
      }
    }
  }
  std::printf("\n");
  if (winner != nullptr) {
    std::printf(
        "hybrid dominance (Gilbert-Elliott): %s at %.2f dB/J beats "
        "pbpair-only (%.2f) and fec-only at the same rate\n",
        winner->name.c_str(), winner->psnr_per_j, ge_pbpair->psnr_per_j);
  } else {
    std::printf(
        "WARNING: no hybrid Gilbert-Elliott point dominates both pure "
        "strategies in PSNR-per-joule at this frame count\n");
  }

  std::string rows_json = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    rows_json += i == 0 ? "\n      {" : ",\n      {";
    rows_json += sim::format(
        "\"name\": \"%s\", \"scheme\": \"%s\", \"loss\": \"%s\", "
        "\"k\": %d, \"m\": %d, \"psnr_db\": %.4f, \"goodput_kbps\": %.4f, "
        "\"j_per_frame\": %.6f, \"recovery_rate\": %.6f, "
        "\"repair_overhead\": %.6f, \"psnr_per_j\": %.4f}",
        cell.name.c_str(), cell.scheme.c_str(), cell.loss.c_str(), cell.k,
        cell.m, json_num(cell.psnr_db), json_num(cell.goodput_kbps),
        json_num(cell.j_per_frame), json_num(cell.recovery_rate),
        json_num(cell.repair_overhead), json_num(cell.psnr_per_j));
  }
  rows_json += "\n    ]";

  std::string payload = sim::format("\"frames\": %d,\n  ", frames);
  payload += sim::format(
      "\"hybrid_dominates_ge\": %s,\n  ",
      winner != nullptr ? "true" : "false");
  if (winner != nullptr) {
    payload += sim::format("\"dominant_point\": \"%s\",\n  ",
                           winner->name.c_str());
  }
  payload += "\"fec_rows\": " + rows_json;
  bench::write_json_report("fec", payload);
  return 0;
}
