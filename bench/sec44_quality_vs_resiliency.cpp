// §4.4 — image quality vs error resiliency.
//
// Sweeps Intra_Th at several packet-loss rates and reports both of the
// paper's quality metrics — average PSNR and number of bad pixels — on the
// decoded (lossy-channel, concealed) output. Higher Intra_Th should buy
// higher PSNR and fewer bad pixels under loss, at the price of bitstream
// size (reported for context).
#include <cstdio>

#include "bench_common.h"
#include "net/loss_model.h"

using namespace pbpair;

int main() {
  bench::enable_observability("sec44_quality_vs_resiliency");
  const int frames = std::min(bench::bench_frames(), 150);
  const video::SequenceKind kind = video::SequenceKind::kForemanLike;
  sim::PipelineConfig config = bench::paper_pipeline_config(frames);

  std::printf(
      "=== Section 4.4: image quality vs error resiliency "
      "(foreman-like, %d frames) ===\n\n",
      frames);

  const double intra_ths[] = {0.0, 0.5, 0.8, 0.9, 0.95, 0.99};
  const double plrs[] = {0.05, 0.10, 0.20};

  // Independent (PLR, Intra_Th) runs; each task seeds its own loss model
  // (seed 777 — same pattern as the serial loop) inside the worker.
  std::vector<sim::SweepTask> tasks;
  for (double plr : plrs) {
    for (double th : intra_ths) {
      core::PbpairConfig pbpair;
      pbpair.intra_th = th;
      pbpair.plr = plr;
      tasks.push_back(bench::clip_task(
          kind, sim::SchemeSpec::pbpair(pbpair), config, [plr] {
            return std::make_unique<net::UniformFrameLoss>(plr, /*seed=*/777);
          }));
    }
  }
  std::vector<sim::PipelineResult> results = sim::run_parallel_sweep(tasks);

  sim::Table table({"PLR", "Intra_Th", "avg_PSNR_dB", "bad_pixels_M",
                    "size_KB", "concealed_MBs"});
  std::size_t t = 0;
  for (double plr : plrs) {
    for (double th : intra_ths) {
      const sim::PipelineResult& r = results[t++];
      table.add_row(
          {sim::format("%.2f", plr), sim::format("%.2f", th),
           sim::format("%.2f", r.avg_psnr_db),
           sim::format("%.3f", static_cast<double>(r.total_bad_pixels) / 1e6),
           sim::format("%.1f", static_cast<double>(r.total_bytes) / 1024.0),
           sim::format("%llu",
                       static_cast<unsigned long long>(r.concealed_mbs))});
    }
  }
  table.print();

  std::printf(
      "\nexpected shape (paper): at each PLR, higher Intra_Th gives higher\n"
      "PSNR and fewer bad pixels (more robust bitstream); the paper argues\n"
      "bad-pixel count separates schemes more cleanly than average PSNR.\n");

  bench::write_json_report(
      "sec44", sim::format("\"frames\": %d,\n", frames) +
                   "  \"quality_grid\": " + bench::table_to_json(table));
  return 0;
}
