// §3.2 extension — power-aware adaptation.
//
// Two closed-loop scenarios the paper sketches:
//  (1) hold-intra-rate: the PLR swings 5% -> 25% -> 10% mid-session; the
//      controller moves Intra_Th opposite to the PLR so the intra-MB rate
//      (and hence bit rate) stays roughly constant, vs a fixed-threshold
//      run that balloons.
//  (2) max-resilience-in-budget: a session energy budget; each frame the
//      controller sees the true metered energy spent so far and raises
//      Intra_Th (cheaper, more robust frames) when the projection
//      overshoots, relaxing toward the user's base expectation when under.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "codec/encoder.h"
#include "core/adaptation.h"
#include "core/pbpair_policy.h"
#include "net/feedback.h"
#include "net/loss_model.h"

using namespace pbpair;

namespace {

double plr_at(int frame, int frames) {
  if (frame < frames / 3) return 0.05;
  if (frame < 2 * frames / 3) return 0.25;
  return 0.10;
}

/// Feedback RTT in frames (PBPAIR_FEEDBACK_RTT): how many frames the
/// network's PLR reports lag behind the truth. 0 — the historical
/// instantaneous-feedback setup — reproduces the pre-delay numbers
/// exactly (a report pushed and polled at the same frame index is due
/// immediately, see net::DelayedFeedback).
int feedback_rtt_frames() {
  if (const char* env = std::getenv("PBPAIR_FEEDBACK_RTT")) {
    int n = std::atoi(env);
    if (n >= 0) return n;
  }
  return 0;
}

}  // namespace

int main() {
  const int frames = std::min(bench::bench_frames(), 180);
  const video::SequenceKind kind = video::SequenceKind::kForemanLike;
  const int rtt = feedback_rtt_frames();

  std::printf("=== Extension (3.2): power-aware adaptation (%d frames) ===\n\n",
              frames);

  // --- Scenario 1: hold intra rate under PLR swings -------------------
  std::printf("--- scenario 1: PLR swings 5%% -> 25%% -> 10%%; "
              "hold-intra-rate controller vs fixed threshold "
              "(feedback RTT %d frames) ---\n", rtt);
  for (bool adapt : {false, true}) {
    core::AdaptationConfig aconfig;
    aconfig.goal = core::AdaptationGoal::kHoldIntraRate;
    aconfig.base_intra_th = 0.95;
    aconfig.base_plr = 0.10;
    aconfig.plr_coupling = 0.6;
    core::PowerAwareController controller(aconfig);

    // The measured PLR travels through a delay line: the controller sees
    // the network as it was `rtt` frames ago, not as it is now.
    net::DelayedFeedback<double> plr_feedback(rtt);
    double reported_plr = aconfig.base_plr;  // until the first report lands

    sim::PipelineConfig config = bench::paper_pipeline_config(frames);
    config.pre_frame = [&](int index, codec::RefreshPolicy& policy) {
      auto* p = dynamic_cast<core::PbpairPolicy*>(&policy);
      plr_feedback.push(index, plr_at(index, frames));
      for (double plr : plr_feedback.take_due(index)) reported_plr = plr;
      p->set_plr(reported_plr);  // network feedback reaches the model
      if (adapt) {
        controller.on_plr_update(reported_plr);
        p->set_intra_th(controller.intra_th());
      }
    };
    core::PbpairConfig pbpair;
    pbpair.intra_th = 0.95;
    pbpair.plr = 0.10;
    sim::PipelineResult r = bench::run_clip(
        kind, sim::SchemeSpec::pbpair(pbpair), nullptr, config);

    double phase_intra[3] = {};
    int phase_frames[3] = {};
    for (const sim::FrameTrace& f : r.frames) {
      int phase = f.index < frames / 3 ? 0 : (f.index < 2 * frames / 3 ? 1 : 2);
      phase_intra[phase] += f.intra_mbs;
      phase_frames[phase] += 1;
    }
    std::printf(
        "%-18s intra MBs/frame by phase: %5.1f | %5.1f | %5.1f   "
        "size %.1f KB  encode %.3f J\n",
        adapt ? "adaptive" : "fixed threshold",
        phase_intra[0] / phase_frames[0], phase_intra[1] / phase_frames[1],
        phase_intra[2] / phase_frames[2],
        static_cast<double>(r.total_bytes) / 1024.0,
        r.encode_energy.total_j());
  }

  // --- Scenario 2: energy budget --------------------------------------
  std::printf("\n--- scenario 2: residual-energy budget "
              "(max resilience within budget, true metered feedback) ---\n");
  const std::vector<video::YuvFrame>& clip = bench::cached_clip(kind, frames);
  const energy::DeviceProfile& profile = energy::ipaq_h5555();
  sim::PipelineConfig pconfig = bench::paper_pipeline_config(frames);

  // Reference: what the user's base expectation costs unconstrained.
  auto run_budgeted = [&](bool adapt, double budget_j, double* final_th,
                          std::uint64_t* intra_mbs) {
    core::PbpairConfig base;
    base.intra_th = 0.80;
    base.plr = 0.10;
    core::PbpairPolicy policy(11, 9, base);
    codec::Encoder encoder(pconfig.encoder, &policy);

    core::AdaptationConfig aconfig;
    aconfig.goal = core::AdaptationGoal::kMaxResilienceInBudget;
    aconfig.base_intra_th = 0.80;
    aconfig.energy_budget_j = budget_j > 0 ? budget_j : 1.0;
    aconfig.planned_frames = frames;
    aconfig.step = 0.03;
    core::PowerAwareController controller(aconfig);

    std::uint64_t intra = 0;
    for (int i = 0; i < frames; ++i) {
      if (adapt && i > 0) {
        double spent = encode_energy(encoder.ops(), profile).total_j();
        controller.on_energy_update(spent, i);
        policy.set_intra_th(controller.intra_th());
      }
      codec::EncodedFrame f = encoder.encode_frame(clip[i]);
      intra += static_cast<std::uint64_t>(f.intra_mb_count());
    }
    *final_th = adapt ? controller.intra_th() : 0.80;
    *intra_mbs = intra;
    return encode_energy(encoder.ops(), profile).total_j();
  };

  double th_unused;
  std::uint64_t intra_unused;
  double unconstrained_j = run_budgeted(false, 0.0, &th_unused, &intra_unused);
  const double budget_j = unconstrained_j * 0.85;
  std::printf("unconstrained run at Intra_Th 0.80: %.3f J; budget: %.3f J\n",
              unconstrained_j, budget_j);

  for (bool adapt : {false, true}) {
    double final_th = 0.0;
    std::uint64_t intra_mbs = 0;
    double spent = run_budgeted(adapt, budget_j, &final_th, &intra_mbs);
    std::printf(
        "%-18s encode %.3f J (budget %.3f) -> %s; final Intra_Th %.3f; "
        "intra MBs %llu\n",
        adapt ? "adaptive" : "fixed threshold", spent, budget_j,
        spent <= budget_j ? "WITHIN budget" : "OVER budget", final_th,
        static_cast<unsigned long long>(intra_mbs));
  }

  std::printf(
      "\nexpected shape: the adaptive run keeps the intra rate (and bit\n"
      "rate) stable across PLR phases, and lands within the energy budget\n"
      "by raising Intra_Th (more intra = less ME = less encode energy),\n"
      "gaining MORE refresh (robustness) in the process.\n");
  return 0;
}
