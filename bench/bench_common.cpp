#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::bench {

int bench_frames() {
  const char* env = std::getenv("PBPAIR_BENCH_FRAMES");
  if (env != nullptr) {
    int frames = std::atoi(env);
    if (frames >= 10) return frames;
  }
  return 300;
}

const std::vector<video::YuvFrame>& cached_clip(video::SequenceKind kind,
                                                int frames) {
  // Sweep tasks resolve their clips concurrently; the mutex makes the
  // lazy fill safe. Returned references stay valid (values are never
  // erased, and node-based map inserts don't move existing values).
  static std::mutex mutex;
  static std::map<std::pair<int, int>, std::vector<video::YuvFrame>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_pair(static_cast<int>(kind), frames);
  auto it = cache.find(key);
  if (it == cache.end()) {
    video::SyntheticSequence seq = video::make_paper_sequence(kind);
    std::vector<video::YuvFrame> clip;
    clip.reserve(static_cast<std::size_t>(frames));
    for (int i = 0; i < frames; ++i) clip.push_back(seq.frame_at(i));
    it = cache.emplace(key, std::move(clip)).first;
  }
  return it->second;
}

sim::FrameSource clip_source(video::SequenceKind kind, int frames) {
  const std::vector<video::YuvFrame>& clip = cached_clip(kind, frames);
  return [&clip](int i) { return clip[static_cast<std::size_t>(i)]; };
}

sim::PipelineConfig paper_pipeline_config(int frames) {
  sim::PipelineConfig config;
  config.frames = frames;
  config.encoder.qp = 10;
  config.encoder.search.strategy = codec::SearchStrategy::kFullSearch;
  config.encoder.search.range = 7;
  return config;
}

double calibrate_pbpair_to_size(video::SequenceKind kind,
                                std::uint64_t target_bytes, double plr) {
  // Calibrate on a 100-frame prefix: per-frame size is stationary, so the
  // matching threshold transfers to the full run (and the bisection stays
  // affordable: 8 encode passes).
  const int frames = std::min(bench_frames(), 100);
  const double scale =
      static_cast<double>(frames) / static_cast<double>(bench_frames());
  const auto scaled_target =
      static_cast<std::uint64_t>(static_cast<double>(target_bytes) * scale);
  sim::PipelineConfig config = paper_pipeline_config(frames);
  sim::FrameSource source = clip_source(kind, bench_frames());

  core::PbpairConfig pbpair;
  pbpair.plr = plr;
  double lo = 0.0, hi = 1.0, best = 0.9;
  double best_err = -1.0;
  for (int iter = 0; iter < 8; ++iter) {
    double mid = 0.5 * (lo + hi);
    pbpair.intra_th = mid;
    sim::PipelineResult r =
        sim::run_pipeline(source, sim::SchemeSpec::pbpair(pbpair), nullptr,
                          config);
    double err = std::abs(static_cast<double>(r.total_bytes) -
                          static_cast<double>(scaled_target));
    if (best_err < 0 || err < best_err) {
      best_err = err;
      best = mid;
    }
    if (r.total_bytes > scaled_target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best;
}

void maybe_write_csv(const sim::Table& table, const std::string& name) {
  const char* dir = std::getenv("PBPAIR_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  std::string path = std::string(dir) + "/" + name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  table.print_csv(f);
  std::fclose(f);
  std::printf("(csv written to %s)\n", path.c_str());
}

void enable_observability(const char* bench_name) {
  obs::set_enabled(true);
  obs::set_thread_name(std::string("bench-") + bench_name);
}

std::string table_to_json(const sim::Table& table) {
  // Cells are emitted as strings exactly as formatted for the text table;
  // the report is for humans and regression diffs, not for re-computation.
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string json = "[";
  for (std::size_t r = 0; r < table.rows().size(); ++r) {
    const std::vector<std::string>& row = table.rows()[r];
    json += r == 0 ? "\n      {" : ",\n      {";
    for (std::size_t c = 0; c < table.header().size() && c < row.size(); ++c) {
      if (c > 0) json += ", ";
      json += "\"" + escape(table.header()[c]) + "\": \"" + escape(row[c]) +
              "\"";
    }
    json += "}";
  }
  json += "\n    ]";
  return json;
}

void write_json_report(const std::string& name,
                       const std::string& payload_fields) {
  const char* path_env = std::getenv("PBPAIR_BENCH_JSON");
  const std::string path =
      path_env != nullptr ? path_env : "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  %s,\n  \"metrics\": %s\n}\n",
               name.c_str(), payload_fields.c_str(),
               obs::Registry::global().to_json(false).c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  const char* trace_path = std::getenv("PBPAIR_TRACE_JSON");
  if (trace_path != nullptr) {
    if (obs::write_chrome_trace(trace_path)) {
      std::printf("wrote %s (%zu spans)\n", trace_path,
                  obs::trace_span_count());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path);
    }
  }
}

sim::PipelineResult run_clip(video::SequenceKind kind,
                             const sim::SchemeSpec& scheme,
                             net::LossModel* loss,
                             const sim::PipelineConfig& config) {
  return sim::run_pipeline(clip_source(kind, config.frames), scheme, loss,
                           config);
}

sim::SweepTask clip_task(
    video::SequenceKind kind, const sim::SchemeSpec& scheme,
    const sim::PipelineConfig& config,
    std::function<std::unique_ptr<net::LossModel>()> make_loss) {
  sim::SweepTask task;
  task.scheme = scheme;
  task.config = config;
  task.source = clip_source(kind, config.frames);
  task.make_loss = std::move(make_loss);
  return task;
}

}  // namespace pbpair::bench
