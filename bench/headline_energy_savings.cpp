// Headline claim (abstract / §5): at matched compressed size, PBPAIR cuts
// encoding energy by 34% / 24% / 17% vs AIR / GOP / PGOP.
//
// This bench reruns the Figure 5 experiment, averages across the three
// clips, and reports the measured savings on BOTH device models (iPAQ
// H5555 and Zaurus SL-5600 — the paper verified on both). Absolute
// percentages depend on the encoder's ME share, so the check is the
// ordering and the AIR ~= NO identity, with the measured factors printed
// next to the paper's.
#include <cstdio>

#include "bench_common.h"
#include "net/loss_model.h"

using namespace pbpair;

int main() {
  const int frames = bench::bench_frames();
  const double plr = 0.10;
  std::printf(
      "=== Headline: encoding-energy savings at matched compressed size "
      "(PLR 10%%, %d frames/clip) ===\n\n",
      frames);

  // Accumulated operation counters per scheme across the three clips; the
  // energy model is evaluated per device at the end (counters are device-
  // independent, so one encode pass covers both PDAs).
  const char* names[] = {"NO", "PBPAIR", "PGOP-3", "GOP-3", "AIR-24"};
  energy::OpCounters totals[5];
  double size_kb[5] = {};
  double psnr_sum[5] = {};

  for (video::SequenceKind kind : bench::kPaperClips) {
    sim::PipelineConfig config = bench::paper_pipeline_config(frames);
    sim::PipelineResult pgop_clean =
        bench::run_clip(kind, sim::SchemeSpec::pgop(3), nullptr, config);
    double intra_th =
        bench::calibrate_pbpair_to_size(kind, pgop_clean.total_bytes, plr);
    core::PbpairConfig pbpair;
    pbpair.intra_th = intra_th;
    pbpair.plr = plr;

    sim::SchemeSpec schemes[5] = {
        sim::SchemeSpec::no_resilience(), sim::SchemeSpec::pbpair(pbpair),
        sim::SchemeSpec::pgop(3), sim::SchemeSpec::gop(3),
        sim::SchemeSpec::air(24)};
    for (int i = 0; i < 5; ++i) {
      net::UniformFrameLoss loss(plr, 2005);
      sim::PipelineResult r = bench::run_clip(kind, schemes[i], &loss, config);
      totals[i] += r.encoder_ops;
      size_kb[i] += static_cast<double>(r.total_bytes) / 1024.0;
      psnr_sum[i] += r.avg_psnr_db;
    }
  }

  for (const energy::DeviceProfile* profile :
       {&energy::ipaq_h5555(), &energy::zaurus_sl5600()}) {
    std::printf("--- device: %s ---\n", profile->name.c_str());
    double total_j[5];
    for (int i = 0; i < 5; ++i) {
      total_j[i] = energy::encode_energy(totals[i], *profile).total_j();
    }
    sim::Table table({"scheme", "size_KB(3 clips)", "avg_PSNR", "encode_J",
                      "PBPAIR_saving"});
    for (int i = 0; i < 5; ++i) {
      double saving = (1.0 - total_j[1] / total_j[i]) * 100.0;
      table.add_row({names[i], sim::format("%.0f", size_kb[i]),
                     sim::format("%.2f", psnr_sum[i] / 3.0),
                     sim::format("%.3f", total_j[i]),
                     i == 1 ? std::string("-")
                            : sim::format("%.1f%%", saving)});
    }
    table.print();
    std::printf(
        "paper reports: vs AIR -34%%, vs GOP -24%%, vs PGOP -17%% "
        "(their full-search H.263 encoder)\n\n");
  }

  std::printf(
      "expected shape: PBPAIR lowest energy; PGOP/GOP between; AIR ~= NO\n"
      "(AIR runs motion estimation for every MB before deciding modes).\n");
  return 0;
}
