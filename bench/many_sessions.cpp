// Multi-session serving throughput (DESIGN.md §9).
//
// Spins up N concurrent StreamSessions — clips rotating over the paper's
// three, per-session seeded uniform frame loss at PLR 10% — through
// sim::SessionManager and measures frames/sec and sessions/sec at rising
// session counts (1 / 8 / 64 / 256 by default; cap with
// PBPAIR_BENCH_SESSIONS). A determinism cross-check reruns the smallest
// count at 1 thread and in 3-frame slices and compares the aggregate JSON
// byte-for-byte, so the report doubles as a scheduling-independence smoke.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "net/loss_model.h"
#include "obs/health.h"
#include "sim/session_manager.h"

using namespace pbpair;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<sim::SessionSpec> make_specs(int sessions, int frames) {
  std::vector<sim::SessionSpec> specs;
  specs.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    const video::SequenceKind kind = bench::kPaperClips[i % 3];
    sim::SessionSpec spec;
    core::PbpairConfig pbpair;
    pbpair.intra_th = 0.9;
    pbpair.plr = 0.10;
    spec.scheme = sim::SchemeSpec::pbpair(pbpair);
    spec.config = bench::paper_pipeline_config(frames);
    // Health tracking on, like `pbpair serve`: the bench then measures the
    // serving path with its real telemetry cost included.
    spec.config.health = obs::HealthConfig{};
    spec.source = bench::clip_source(kind, frames);
    const std::uint64_t seed = 2005 + static_cast<std::uint64_t>(i);
    spec.make_loss = [seed] {
      return std::make_unique<net::UniformFrameLoss>(0.10, seed);
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

int main() {
  bench::enable_observability("many_sessions");
  // Serving runs are short per session: the interesting axis is the
  // session count, not the clip length.
  const int frames = std::min(bench::bench_frames(), 48);
  int max_sessions = 256;
  if (const char* env = std::getenv("PBPAIR_BENCH_SESSIONS")) {
    int n = std::atoi(env);
    if (n >= 1) max_sessions = std::max(n, 4);  // >= 3 distinct counts
  }

  std::vector<int> counts;
  for (int n : {1, 8, 64, 256}) {
    if (n < max_sessions) counts.push_back(n);
  }
  counts.push_back(max_sessions);
  if (counts.size() < 3) {  // BENCH_sessions.json needs >= 3 points
    counts.insert(counts.begin() + 1, std::max(2, max_sessions / 2));
  }

  const int threads = common::default_thread_count();
  std::printf("=== Multi-session serving (%d frames/session, %d threads) ===\n\n",
              frames, threads);
  for (int n : counts) bench::cached_clip(bench::kPaperClips[(n - 1) % 3], frames);

  sim::Table table({"sessions", "threads", "wall_ms", "frames_per_sec",
                    "sessions_per_sec", "mean_PSNR_dB"});
  std::string points;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const int n = counts[c];
    sim::SessionManager manager(make_specs(n, frames));
    sim::SessionManagerOptions options;
    options.threads = threads;

    obs::HealthRegistry::global().clear();
    const Clock::time_point start = Clock::now();
    std::vector<sim::PipelineResult> results = manager.run(options);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    // Final health-state distribution across the run's sessions.
    int health_counts[3] = {0, 0, 0};
    for (const auto& session : obs::HealthRegistry::global().sessions()) {
      const int s = static_cast<int>(session->snapshot().state);
      if (s >= 0 && s < 3) ++health_counts[s];
    }

    sim::SessionAggregate agg = sim::SessionManager::aggregate(results);
    const double fps = static_cast<double>(agg.total_frames) / wall_s;
    const double sps = static_cast<double>(agg.sessions) / wall_s;
    table.add_row({sim::format("%d", n), sim::format("%d", threads),
                   sim::format("%.0f", wall_s * 1e3),
                   sim::format("%.1f", fps), sim::format("%.2f", sps),
                   sim::format("%.2f", agg.mean_psnr_db)});
    points += sim::format(
        "    {\"sessions\": %d, \"threads\": %d, \"wall_s\": %.4f, "
        "\"frames_per_sec\": %.2f, \"sessions_per_sec\": %.3f, "
        "\"health\": {\"healthy\": %d, \"degraded\": %d, \"critical\": %d}, "
        "\"aggregate\": %s}%s\n",
        n, threads, wall_s, fps, sps, health_counts[0], health_counts[1],
        health_counts[2], agg.to_json().c_str(),
        c + 1 < counts.size() ? "," : "");
  }
  table.print();
  bench::maybe_write_csv(table, "many_sessions");

  // Determinism cross-check: smallest count, rerun serial and in 3-frame
  // slices — the aggregate must not depend on threads or interleaving.
  sim::SessionManagerOptions serial;
  serial.threads = 1;
  sim::SessionManagerOptions sliced;
  sliced.threads = threads;
  sliced.frames_per_slice = 3;
  const std::string agg_serial =
      sim::SessionManager::aggregate(
          sim::SessionManager(make_specs(counts.front(), frames)).run(serial))
          .to_json();
  const std::string agg_sliced =
      sim::SessionManager::aggregate(
          sim::SessionManager(make_specs(counts.front(), frames)).run(sliced))
          .to_json();
  const bool deterministic = agg_serial == agg_sliced;
  std::printf("\naggregate identical serial vs %d-thread sliced: %s\n",
              threads, deterministic ? "yes" : "NO - INVARIANT BROKEN");

  std::string payload = sim::format(
      "\"frames_per_session\": %d,\n  \"deterministic\": %s,\n  \"points\": [\n",
      frames, deterministic ? "true" : "false");
  payload += points;
  payload += "  ]";
  bench::write_json_report("sessions", payload);
  return deterministic ? 0 : 1;
}
