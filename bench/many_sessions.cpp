// Multi-session serving throughput at scale (DESIGN.md §9, §15).
//
// Drives the sharded session engine up a scaling curve that reaches
// 10,000 concurrent sessions — clips rotating over the paper's three,
// per-session seeded uniform frame loss at PLR 10%, health tracking on
// like `pbpair serve` — and measures sessions/sec, frames/sec, and
// per-shard p50/p99 frame latency (extracted from the engine's log2-bucket
// sim.shard.<k>.frame_ns histograms) at each point. Sessions construct
// lazily under an admission live-cap of 64 per shard, so the 10k point
// runs in the memory of `shards * 64` sessions, not 10k arenas.
//
// Frames per session taper with the session count (48 -> 12 -> 4) to keep
// the wall time of the big points sane; every point reports its own
// frames value and the regression gate compares rows by name, so the
// taper never mixes unlike configurations.
//
// The JSON report carries a "sessions_rows" array gated by
// `check_bench_regression --mode sessions` against the committed
// BENCH_sessions.json: sessions_per_sec has a relative floor and
// p99_frame_ms a relative ceiling (log2 buckets quantize p99 to
// power-of-two plateaus — CI thresholds must allow one bucket jump). A
// determinism cross-check reruns the smallest count serial and in 3-frame
// slices and compares the aggregate JSON byte-for-byte, so the report
// doubles as a scheduling-independence smoke.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "net/loss_model.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "sim/session_manager.h"

using namespace pbpair;

namespace {

using Clock = std::chrono::steady_clock;

// Frames per session at a given fleet size: full serving runs for the
// small points, short slices at the 1k/10k scale where the interesting
// axis is scheduling and admission, not clip length.
int frames_for(int sessions, int base_frames) {
  if (sessions <= 256) return base_frames;
  if (sessions <= 2048) return std::min(base_frames, 12);
  return std::min(base_frames, 4);
}

// Sessions recycle labels from a fixed pool: per-session obs counters
// and health gauges are keyed by label, so unique labels at 10k sessions
// would register ~160k metrics (tens of MB of registry, a multi-MB JSON
// report). 256 labels keep the namespace bounded while still spreading
// rendezvous pinning evenly across any realistic shard count.
constexpr int kLabelPool = 256;

std::vector<sim::SessionSpec> make_specs(int sessions, int frames) {
  std::vector<sim::SessionSpec> specs;
  specs.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    const video::SequenceKind kind = bench::kPaperClips[i % 3];
    sim::SessionSpec spec;
    spec.label = sim::format("b%03d", i % kLabelPool);
    core::PbpairConfig pbpair;
    pbpair.intra_th = 0.9;
    pbpair.plr = 0.10;
    spec.scheme = sim::SchemeSpec::pbpair(pbpair);
    spec.config = bench::paper_pipeline_config(frames);
    // Health tracking on, like `pbpair serve`: the bench then measures the
    // serving path with its real telemetry cost included.
    spec.config.health = obs::HealthConfig{};
    spec.source = bench::clip_source(kind, frames);
    const std::uint64_t seed = 2005 + static_cast<std::uint64_t>(i);
    spec.make_loss = [seed] {
      return std::make_unique<net::UniformFrameLoss>(0.10, seed);
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string shard_hist_name(int shard) {
  return sim::format("sim.shard.%02d.frame_ns", shard);
}

}  // namespace

int main() {
  bench::enable_observability("many_sessions");
  // Serving runs are short per session: the interesting axis is the
  // session count, not the clip length.
  const int base_frames = std::min(bench::bench_frames(), 48);
  int max_sessions = 10000;
  if (const char* env = std::getenv("PBPAIR_BENCH_SESSIONS")) {
    int n = std::atoi(env);
    if (n >= 1) max_sessions = std::max(n, 4);  // >= 3 distinct counts
  }

  std::vector<int> counts;
  for (int n : {1, 8, 64, 256, 1024, 10000}) {
    if (n < max_sessions) counts.push_back(n);
  }
  counts.push_back(max_sessions);
  if (counts.size() < 3) {  // BENCH_sessions.json needs >= 3 points
    counts.insert(counts.begin() + 1, std::max(2, max_sessions / 2));
  }

  const int threads = common::default_thread_count();
  const int slice = 4;  // serving mode: sessions interleave 4 frames/turn
  std::printf(
      "=== Multi-session serving (base %d frames/session, %d shards, "
      "slice %d) ===\n\n",
      base_frames, threads, slice);
  for (int n : counts) {
    bench::cached_clip(bench::kPaperClips[(n - 1) % 3],
                       frames_for(n, base_frames));
  }

  sim::Table table({"sessions", "frames", "shards", "wall_ms",
                    "frames_per_sec", "sessions_per_sec", "p50_ms", "p99_ms",
                    "mean_PSNR_dB"});
  std::string points;
  std::string rows;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const int n = counts[c];
    const int frames = frames_for(n, base_frames);
    sim::SessionManager manager(make_specs(n, frames));
    sim::SessionManagerOptions options;
    options.threads = threads;
    options.frames_per_slice = slice;
    // The live cap is what keeps 10k admitted sessions from materializing
    // 10k arenas: each shard constructs at most 64 at a time.
    sim::AdmissionConfig admission;
    admission.max_live_per_shard = 64;
    options.admission = admission;

    obs::HealthRegistry::global().clear();
    for (int k = 0; k < threads; ++k) {
      obs::Registry::global().histogram(shard_hist_name(k)).reset();
    }
    const Clock::time_point start = Clock::now();
    std::vector<sim::PipelineResult> results = manager.run(options);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    // Final health-state distribution over the label pool (the registry
    // keeps the most recent session per label, so this samples up to
    // kLabelPool sessions — informational, never gated).
    int health_counts[3] = {0, 0, 0};
    for (const auto& session : obs::HealthRegistry::global().sessions()) {
      const int s = static_cast<int>(session->snapshot().state);
      if (s >= 0 && s < 3) ++health_counts[s];
    }

    // Per-shard frame-latency quantiles from the engine's log2-bucket
    // histograms; the point-level p99 is the worst shard's (bounded p99
    // per shard is the claim, so the gate watches the maximum).
    std::string shard_json;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    for (int k = 0; k < threads; ++k) {
      const obs::Histogram& hist =
          obs::Registry::global().histogram(shard_hist_name(k));
      const double shard_p50 =
          obs::histogram_quantile_ns(hist, 0.50) / 1e6;
      const double shard_p99 =
          obs::histogram_quantile_ns(hist, 0.99) / 1e6;
      if (shard_p50 > p50_ms) p50_ms = shard_p50;
      if (shard_p99 > p99_ms) p99_ms = shard_p99;
      shard_json += sim::format(
          "%s{\"shard\": %d, \"frames\": %llu, \"p50_ms\": %.3f, "
          "\"p99_ms\": %.3f}",
          k > 0 ? ", " : "", k,
          static_cast<unsigned long long>(hist.count()), shard_p50,
          shard_p99);
    }

    sim::SessionAggregate agg = sim::SessionManager::aggregate(results);
    const double fps = static_cast<double>(agg.total_frames) / wall_s;
    const double sps = static_cast<double>(agg.sessions) / wall_s;
    table.add_row({sim::format("%d", n), sim::format("%d", frames),
                   sim::format("%d", threads),
                   sim::format("%.0f", wall_s * 1e3),
                   sim::format("%.1f", fps), sim::format("%.2f", sps),
                   sim::format("%.3f", p50_ms), sim::format("%.3f", p99_ms),
                   sim::format("%.2f", agg.mean_psnr_db)});
    points += sim::format(
        "    {\"sessions\": %d, \"frames\": %d, \"shards\": %d, "
        "\"wall_s\": %.4f, \"frames_per_sec\": %.2f, "
        "\"sessions_per_sec\": %.3f, "
        "\"health\": {\"healthy\": %d, \"degraded\": %d, \"critical\": %d}, "
        "\"shard_latency\": [%s], "
        "\"aggregate\": %s}%s\n",
        n, frames, threads, wall_s, fps, sps, health_counts[0],
        health_counts[1], health_counts[2], shard_json.c_str(),
        agg.to_json().c_str(), c + 1 < counts.size() ? "," : "");
    rows += sim::format(
        "    {\"name\": \"n%d\", \"sessions_per_sec\": %.3f, "
        "\"frames_per_sec\": %.2f, \"p50_frame_ms\": %.3f, "
        "\"p99_frame_ms\": %.3f}%s\n",
        n, sps, fps, p50_ms, p99_ms, c + 1 < counts.size() ? "," : "");
  }
  table.print();
  bench::maybe_write_csv(table, "many_sessions");

  // Determinism cross-check: smallest count, rerun serial and in 3-frame
  // slices — the aggregate must not depend on threads or interleaving.
  const int check_frames = frames_for(counts.front(), base_frames);
  sim::SessionManagerOptions serial;
  serial.threads = 1;
  sim::SessionManagerOptions sliced;
  sliced.threads = threads;
  sliced.frames_per_slice = 3;
  const std::string agg_serial =
      sim::SessionManager::aggregate(
          sim::SessionManager(make_specs(counts.front(), check_frames))
              .run(serial))
          .to_json();
  const std::string agg_sliced =
      sim::SessionManager::aggregate(
          sim::SessionManager(make_specs(counts.front(), check_frames))
              .run(sliced))
          .to_json();
  const bool deterministic = agg_serial == agg_sliced;
  std::printf("\naggregate identical serial vs %d-thread sliced: %s\n",
              threads, deterministic ? "yes" : "NO - INVARIANT BROKEN");

  std::string payload = sim::format(
      "\"base_frames_per_session\": %d,\n  \"shards\": %d,\n"
      "  \"deterministic\": %s,\n  \"sessions_rows\": [\n",
      base_frames, threads, deterministic ? "true" : "false");
  payload += rows;
  payload += "  ],\n  \"points\": [\n";
  payload += points;
  payload += "  ]";
  bench::write_json_report("sessions", payload);
  return deterministic ? 0 : 1;
}
