// Zero-copy wire path — bytes copied per frame and packet throughput.
//
// The arena refactor's whole claim is that payload bytes stop being
// memcpy'd at every hop (packetize -> FEC encode -> channel -> FEC decode
// -> depacketize) and travel as ref-counted slices instead. This bench
// measures that claim on the hardest scenario the FEC matrix has — the
// k=8,m=2 Reed-Solomon HYBRID point under Gilbert-Elliott bursts from
// bench/fec_tradeoff.cpp, where every stage that can touch a payload does
// — using the common/buffer.h copy ledger:
//
//   legacy_bytes  what the pre-arena code would have copied at the same
//                 sites (every historical memcpy is still counted),
//   copied_bytes  what the arena path actually copies now.
//
// copy_reduction = 1 - copied/legacy is fully deterministic (ledger
// counts, not timing) and must stay >= 0.70: the refactor's acceptance
// bar, re-checked here on every run and gated in CI by
// check_bench_regression --mode wire against the committed
// BENCH_wire.json. packets_per_s is wall-clock and informational only.
//
// Rows: the scenario with CRC framing off (byte-identical wire to the
// pre-arena build) and on (8-byte trailers, verify_integrity stage), so
// the gate also catches a regression that only the CRC path triggers.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/buffer.h"
#include "common/check.h"
#include "net/fec.h"
#include "net/loss_model.h"
#include "sim/report.h"

using namespace pbpair;

namespace {

struct Row {
  std::string name;
  double legacy_bytes_per_frame = 0.0;
  double copied_bytes_per_frame = 0.0;
  double copy_reduction = 0.0;
  double packets_per_s = 0.0;  // wall-clock; informational, never gated
};

std::unique_ptr<net::LossModel> make_ge_loss() {
  net::GilbertElliottLoss::Params params;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.40;
  params.loss_in_good = 0.005;
  params.loss_in_bad = 0.50;
  return std::make_unique<net::GilbertElliottLoss>(params, /*seed=*/2005);
}

}  // namespace

int main() {
  bench::enable_observability("wire_path");
  const int frames = bench::bench_frames();
  const video::SequenceKind kind = video::SequenceKind::kForemanLike;
  std::printf(
      "=== Zero-copy wire path: bytes copied per frame "
      "(ge/hybrid/k8m2, %d foreman-like QCIF frames) ===\n\n",
      frames);

  // The fec_tradeoff ge/hybrid/k8m2 cell verbatim: PBPAIR at the shared
  // operating point plus RS(k=8,m=2) over MTU-96 packets, Gilbert-Elliott
  // bursts. Small MTU = many packets per frame = the copy-per-hop cost
  // the arena is supposed to delete.
  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.85;
  pbpair.plr = 0.08;
  sim::PipelineConfig base_config = bench::paper_pipeline_config(frames);
  base_config.packetizer.mtu = 96;
  net::FecConfig fec;
  fec.scheme = net::FecScheme::kReedSolomon;
  fec.k = 8;
  fec.m = 2;
  base_config.fec = fec;

  std::vector<Row> rows;
  for (const bool crc : {false, true}) {
    sim::PipelineConfig config = base_config;
    if (crc) config.wire = net::WireConfig{};
    common::reset_copy_ledger();
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<net::LossModel> loss = make_ge_loss();
    const sim::PipelineResult r = bench::run_clip(
        kind, sim::SchemeSpec::pbpair(pbpair), loss.get(), config);
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const common::CopyLedgerSnapshot ledger = common::copy_ledger();

    Row row;
    row.name = std::string("ge/hybrid/k8m2/") + (crc ? "crc" : "base");
    row.legacy_bytes_per_frame =
        static_cast<double>(ledger.legacy_bytes) / frames;
    row.copied_bytes_per_frame =
        static_cast<double>(ledger.copied_bytes) / frames;
    row.copy_reduction =
        ledger.legacy_bytes > 0
            ? 1.0 - static_cast<double>(ledger.copied_bytes) /
                        static_cast<double>(ledger.legacy_bytes)
            : 0.0;
    row.packets_per_s =
        elapsed_s > 0.0
            ? static_cast<double>(r.channel.packets_sent) / elapsed_s
            : 0.0;
    // The refactor's acceptance bar: at least 70% of the payload bytes
    // the old wire path copied per frame are no longer copied at all.
    PB_CHECK(row.copy_reduction >= 0.70);
    rows.push_back(std::move(row));
  }

  sim::Table table({"scenario", "legacy_B/frame", "copied_B/frame",
                    "copy_reduction", "packets_per_s"});
  for (const Row& row : rows) {
    table.add_row({row.name,
                   sim::format("%.0f", row.legacy_bytes_per_frame),
                   sim::format("%.0f", row.copied_bytes_per_frame),
                   sim::format("%.3f", row.copy_reduction),
                   sim::format("%.0f", row.packets_per_s)});
  }
  table.print();
  bench::maybe_write_csv(table, "wire_path");

  std::string rows_json = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    rows_json += i == 0 ? "\n      {" : ",\n      {";
    rows_json += sim::format(
        "\"name\": \"%s\", \"legacy_bytes_per_frame\": %.2f, "
        "\"copied_bytes_per_frame\": %.2f, \"copy_reduction\": %.6f, "
        "\"packets_per_s\": %.1f}",
        row.name.c_str(), row.legacy_bytes_per_frame,
        row.copied_bytes_per_frame, row.copy_reduction, row.packets_per_s);
  }
  rows_json += "\n    ]";

  std::string payload = sim::format("\"frames\": %d,\n  ", frames);
  payload += "\"wire_rows\": " + rows_json;
  bench::write_json_report("wire", payload);
  return 0;
}
