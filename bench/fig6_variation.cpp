// Figure 6 — per-frame behaviour under scripted packet loss (PLR ~ 10%):
//   (a) PSNR variation across frames, loss events e1..e7 marked
//   (b) encoded frame-size variation (GOP's I-frame spikes)
// 50 frames of the foreman-like clip; PBPAIR vs PGOP-1, GOP-8, AIR-10
// (schemes that generate similar bitstream sizes, §4.2). Event e7 is
// arranged to hit one of GOP-8's I-frames — the paper's worst case, where
// GOP cannot recover for a whole GOP period.
#include <cstdio>

#include "bench_common.h"
#include "net/loss_model.h"

using namespace pbpair;

int main() {
  bench::enable_observability("fig6_variation");
  const int frames = 50;
  // e1..e7: scripted frame-loss events. Frame 36 is an I-frame of GOP-8
  // (period 9: I at 0, 9, 18, 27, 36, 45) => e7 shows the I-frame loss.
  const std::set<std::uint32_t> kLossEvents = {4, 7, 12, 19, 25, 31, 36};

  std::printf(
      "=== Figure 6: per-frame PSNR and size variation "
      "(foreman-like, 50 frames, scripted losses) ===\n\n");
  std::printf("loss events e1..e7 at frames: ");
  for (std::uint32_t e : kLossEvents) std::printf("%u ", e);
  std::printf("(e7=36 is a GOP-8 I-frame)\n\n");

  sim::PipelineConfig config = bench::paper_pipeline_config(frames);
  const video::SequenceKind kind = video::SequenceKind::kForemanLike;

  // Size-match PBPAIR to PGOP-1 (the paper's Fig 6 trio are size-similar).
  sim::PipelineResult pgop_clean =
      bench::run_clip(kind, sim::SchemeSpec::pgop(1), nullptr, config);
  double intra_th = bench::calibrate_pbpair_to_size(
      kind, pgop_clean.total_bytes * bench::bench_frames() / frames, 0.10);
  core::PbpairConfig pbpair;
  pbpair.intra_th = intra_th;
  pbpair.plr = 0.10;

  std::vector<sim::SchemeSpec> schemes = {
      sim::SchemeSpec::pbpair(pbpair), sim::SchemeSpec::pgop(1),
      sim::SchemeSpec::gop(8), sim::SchemeSpec::air(10)};

  // The four schemes replay the same scripted loss schedule; each sweep
  // task builds its own copy, so the runs are independent and parallel.
  std::vector<sim::SweepTask> tasks;
  for (const sim::SchemeSpec& scheme : schemes) {
    tasks.push_back(bench::clip_task(kind, scheme, config, [&kLossEvents] {
      return std::make_unique<net::ScriptedFrameLoss>(kLossEvents);
    }));
  }
  std::vector<sim::PipelineResult> results = sim::run_parallel_sweep(tasks);

  std::printf("--- Fig 6(a): PSNR variation (dB per frame) ---\n");
  sim::Table psnr_table(
      {"frame", "loss", "PBPAIR", "PGOP-1", "GOP-8", "AIR-10"});
  for (int f = 0; f < frames; ++f) {
    psnr_table.add_row(
        {sim::format("%d", f), kLossEvents.count(f) ? "X" : "",
         sim::format("%.2f", results[0].frames[f].psnr_db),
         sim::format("%.2f", results[1].frames[f].psnr_db),
         sim::format("%.2f", results[2].frames[f].psnr_db),
         sim::format("%.2f", results[3].frames[f].psnr_db)});
  }
  psnr_table.print();
  bench::maybe_write_csv(psnr_table, "fig6a_psnr_variation");

  std::printf("\n--- Fig 6(b): frame size variation (bytes per frame) ---\n");
  sim::Table size_table({"frame", "PBPAIR", "PGOP-1", "GOP-8", "AIR-10"});
  for (int f = 0; f < frames; ++f) {
    size_table.add_row({sim::format("%d", f),
                        sim::format("%zu", results[0].frames[f].bytes),
                        sim::format("%zu", results[1].frames[f].bytes),
                        sim::format("%zu", results[2].frames[f].bytes),
                        sim::format("%zu", results[3].frames[f].bytes)});
  }
  size_table.print();
  bench::maybe_write_csv(size_table, "fig6b_frame_size_variation");

  // Summary lines that make the paper's qualitative claims checkable at a
  // glance: recovery speed after each loss, and size burstiness.
  std::printf(
      "\n--- recovery summary: frames to regain (pre-loss PSNR - 2 dB), "
      "counted up to the next loss event ---\n");
  sim::Table rec({"event", "window", "PBPAIR", "PGOP-1", "GOP-8", "AIR-10"});
  std::vector<std::uint32_t> events(kLossEvents.begin(), kLossEvents.end());
  for (std::size_t ei = 0; ei < events.size(); ++ei) {
    std::uint32_t e = events[ei];
    int window_end =
        ei + 1 < events.size() ? static_cast<int>(events[ei + 1]) : frames;
    std::vector<std::string> row = {sim::format("e%zu@%u", ei + 1, e),
                                    sim::format("%d", window_end - static_cast<int>(e))};
    for (const sim::PipelineResult& r : results) {
      // Clean baseline: PSNR of the frame right before the event.
      double baseline = r.frames[e - 1].psnr_db;
      int below = 0;
      bool recovered = false;
      for (int f = static_cast<int>(e); f < window_end; ++f) {
        if (r.frames[f].psnr_db >= baseline - 2.0) {
          recovered = true;
          break;
        }
        ++below;
      }
      row.push_back(recovered ? sim::format("%d", below)
                              : sim::format(">%d", below));
    }
    rec.add_row(std::move(row));
  }
  rec.print();

  std::printf("\n--- burstiness: max/mean frame size ---\n");
  // Frame 0 is the initial I-frame for every scheme; steady-state
  // burstiness is what distinguishes GOP, so stats start at frame 1.
  sim::Table burst({"scheme", "mean_bytes", "max_bytes", "max/mean"});
  const char* names[] = {"PBPAIR", "PGOP-1", "GOP-8", "AIR-10"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::uint64_t sum = 0;
    std::size_t max_bytes = 0;
    for (const sim::FrameTrace& f : results[i].frames) {
      if (f.index == 0) continue;
      sum += f.bytes;
      max_bytes = std::max(max_bytes, f.bytes);
    }
    double mean = static_cast<double>(sum) / (frames - 1);
    burst.add_row({names[i], sim::format("%.0f", mean),
                   sim::format("%zu", max_bytes),
                   sim::format("%.2f", static_cast<double>(max_bytes) / mean)});
  }
  burst.print();
  std::printf(
      "\nexpected shape (paper): PBPAIR recovers within a few frames of each\n"
      "event; GOP-8 recovers only at the next I-frame and collapses for a\n"
      "full GOP period after e7 (lost I-frame); GOP's max/mean size ratio is\n"
      "far above the MB-level refresh schemes (bursty bitstream).\n");

  std::string events_json;
  for (std::uint32_t e : kLossEvents) {
    if (!events_json.empty()) events_json += ", ";
    events_json += sim::format("%u", e);
  }
  bench::write_json_report(
      "fig6",
      sim::format("\"frames\": %d,\n  \"loss_events\": [%s],\n", frames,
                  events_json.c_str()) +
          "  \"psnr_variation\": " + bench::table_to_json(psnr_table) +
          ",\n  \"frame_size_variation\": " + bench::table_to_json(size_table) +
          ",\n  \"recovery\": " + bench::table_to_json(rec) +
          ",\n  \"burstiness\": " + bench::table_to_json(burst));
  return 0;
}
