// Ablations for the design choices DESIGN.md §5 calls out:
//  (1) probability-aware ME term on/off   — recovery quality contribution
//  (2) similarity factor: SAD-based vs Formula (3) (sim = 0) vs constant
//  (3) motion search: full search vs diamond — energy-share sensitivity
//  (4) concealment model constant (freeze-style) vs copy-based
#include <cstdio>

#include "bench_common.h"
#include "codec/decoder.h"
#include "net/loss_model.h"

using namespace pbpair;

namespace {

sim::PipelineResult run_ablation(video::SequenceKind kind,
                                 const core::PbpairConfig& pbpair,
                                 const sim::PipelineConfig& config,
                                 double plr) {
  net::UniformFrameLoss loss(plr, 4242);
  return bench::run_clip(kind, sim::SchemeSpec::pbpair(pbpair), &loss,
                         config);
}

}  // namespace

int main() {
  const int frames = std::min(bench::bench_frames(), 150);
  const video::SequenceKind kind = video::SequenceKind::kForemanLike;
  const double plr = 0.10;
  sim::PipelineConfig config = bench::paper_pipeline_config(frames);

  std::printf("=== Ablations (foreman-like, %d frames, PLR 10%%) ===\n\n",
              frames);

  core::PbpairConfig base;
  base.intra_th = 0.95;
  base.plr = plr;

  // (1) ME penalty on/off.
  std::printf("--- (1) probability-aware ME term (Sec 3.1.2) ---\n");
  sim::Table t1({"variant", "avg_PSNR", "bad_pixels_M", "size_KB", "encode_J"});
  for (bool use_penalty : {true, false}) {
    core::PbpairConfig c = base;
    c.use_me_penalty = use_penalty;
    sim::PipelineResult r = run_ablation(kind, c, config, plr);
    t1.add_row({use_penalty ? "with ME penalty" : "mode-selection only",
                sim::format("%.2f", r.avg_psnr_db),
                sim::format("%.3f", static_cast<double>(r.total_bad_pixels) / 1e6),
                sim::format("%.1f", static_cast<double>(r.total_bytes) / 1024.0),
                sim::format("%.3f", r.encode_energy.total_j())});
  }
  t1.print();

  // (2) similarity factor models.
  std::printf("\n--- (2) similarity factor (Sec 3.1.3) ---\n");
  sim::Table t2({"similarity", "intra_MBs/frame", "avg_PSNR", "bad_pixels_M",
                 "size_KB", "encode_J"});
  struct SimCase {
    const char* name;
    std::shared_ptr<const core::SimilarityModel> model;
  };
  SimCase cases[] = {
      {"SAD-based (copy concealment)",
       std::make_shared<const core::CopyConcealmentSimilarity>()},
      {"Formula (3): sim = 0", std::make_shared<const core::NoSimilarity>()},
      {"constant 0.5 (freeze-style)",
       std::make_shared<const core::ConstantSimilarity>(
           common::q16_from_double(0.5))},
  };
  for (const SimCase& sc : cases) {
    core::PbpairConfig c = base;
    c.similarity = sc.model;
    sim::PipelineResult r = run_ablation(kind, c, config, plr);
    t2.add_row({sc.name,
                sim::format("%.1f", static_cast<double>(r.total_intra_mbs) / frames),
                sim::format("%.2f", r.avg_psnr_db),
                sim::format("%.3f", static_cast<double>(r.total_bad_pixels) / 1e6),
                sim::format("%.1f", static_cast<double>(r.total_bytes) / 1024.0),
                sim::format("%.3f", r.encode_energy.total_j())});
  }
  t2.print();

  // (3) search strategy.
  std::printf("\n--- (3) motion search strategy (energy-share sensitivity) ---\n");
  sim::Table t3({"search", "scheme", "encode_J", "ME_J", "ME_share"});
  for (auto strategy : {codec::SearchStrategy::kFullSearch,
                        codec::SearchStrategy::kDiamondSearch}) {
    sim::PipelineConfig c = config;
    c.encoder.search.strategy = strategy;
    const char* sname =
        strategy == codec::SearchStrategy::kFullSearch ? "full +/-7" : "diamond";
    for (bool use_pbpair : {true, false}) {
      net::UniformFrameLoss loss(plr, 4242);
      sim::PipelineResult r = bench::run_clip(
          kind,
          use_pbpair ? sim::SchemeSpec::pbpair(base)
                     : sim::SchemeSpec::air(24),
          &loss, c);
      t3.add_row({sname, use_pbpair ? "PBPAIR" : "AIR-24",
                  sim::format("%.3f", r.encode_energy.total_j()),
                  sim::format("%.3f", r.encode_energy.me_j),
                  sim::format("%.0f%%", 100.0 * r.encode_energy.me_j /
                                            r.encode_energy.total_j())});
    }
  }
  t3.print();

  // (4) decoder concealment vs the similarity model that assumes it.
  std::printf("\n--- (4) decoder concealment (garden-like: global pan) ---\n");
  sim::Table t4({"concealment", "avg_PSNR", "bad_pixels_M"});
  struct ConcealCase {
    const char* name;
    codec::ConcealmentMode mode;
  };
  ConcealCase conceal_cases[] = {
      {"copy-previous (paper)", codec::ConcealmentMode::kCopyPrevious},
      {"motion-compensated", codec::ConcealmentMode::kMotionCompensated},
      {"freeze-gray", codec::ConcealmentMode::kFreezeGray},
  };
  for (const ConcealCase& cc : conceal_cases) {
    sim::PipelineConfig c =
        bench::paper_pipeline_config(std::min(bench::bench_frames(), 80));
    c.concealment = cc.mode;
    net::UniformFrameLoss loss(plr, 4242);
    core::PbpairConfig pc = base;
    sim::PipelineResult r = bench::run_clip(
        video::SequenceKind::kGardenLike, sim::SchemeSpec::pbpair(pc), &loss,
        c);
    t4.add_row({cc.name, sim::format("%.2f", r.avg_psnr_db),
                sim::format("%.3f",
                            static_cast<double>(r.total_bad_pixels) / 1e6)});
  }
  t4.print();

  // (5) in-loop deblocking at coarse QP (codec realism knob).
  std::printf("\n--- (5) in-loop deblocking (QP 24, lossless channel) ---\n");
  sim::Table t5({"deblocking", "avg_PSNR", "avg_SSIM", "size_KB"});
  for (bool deblocking : {false, true}) {
    const int n = std::min(bench::bench_frames(), 60);
    sim::PipelineConfig c = bench::paper_pipeline_config(n);
    c.encoder.qp = 24;
    c.encoder.deblocking = deblocking;
    // The filter must match on both sides (lockstep), so run the codec
    // loop directly instead of through the pipeline's default decoder.
    const auto& clip =
        bench::cached_clip(video::SequenceKind::kForemanLike, n);
    codec::NoRefreshPolicy policy;
    codec::Encoder encoder(c.encoder, &policy);
    codec::DecoderConfig dc;
    dc.deblocking = deblocking;
    codec::Decoder decoder(dc);
    std::uint64_t bytes = 0;
    double psnr = 0, ssim = 0;
    for (int i = 0; i < n; ++i) {
      codec::EncodedFrame f = encoder.encode_frame(clip[i]);
      bytes += f.size_bytes();
      const video::YuvFrame& d = decoder.decode_frame(f);
      psnr += video::psnr_luma(clip[i], d);
      ssim += video::ssim_luma(clip[i], d);
    }
    t5.add_row({deblocking ? "on" : "off", sim::format("%.2f", psnr / n),
                sim::format("%.4f", ssim / n),
                sim::format("%.1f", static_cast<double>(bytes) / 1024.0)});
  }
  t5.print();

  std::printf(
      "\nexpected: the ME term's quality effect is content/loss-pattern\n"
      "dependent (it steers vectors away from suspect reference area, Fig 3);\n"
      "Formula (3) ignores content and over-refreshes (much bigger files for\n"
      "the same threshold); PBPAIR's energy edge over AIR grows with the ME\n"
      "share (full search > diamond).\n");
  return 0;
}
