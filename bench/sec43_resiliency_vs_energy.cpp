// §4.3 — error resiliency vs energy consumption: the operating-point space.
//
// Sweeps (Intra_Th, PLR) and reports intra-MB count, encoded size, encoding
// energy, and transmit energy, demonstrating the paper's trade-off: more
// intra MBs => more robustness and LESS encoding energy (ME skipped) but a
// larger bitstream (more transmit energy). Includes the endpoints the paper
// calls out: Intra_Th = 0 (pure compression efficiency, PBPAIR == NO) and
// Intra_Th = 1 (every MB intra, maximum robustness).
#include <cstdio>

#include "bench_common.h"

using namespace pbpair;

int main() {
  bench::enable_observability("sec43_resiliency_vs_energy");
  const int frames = std::min(bench::bench_frames(), 150);
  const video::SequenceKind kind = video::SequenceKind::kForemanLike;
  sim::PipelineConfig config = bench::paper_pipeline_config(frames);

  std::printf(
      "=== Section 4.3: error resiliency vs energy "
      "(foreman-like, %d frames, lossless channel for size/energy) ===\n\n",
      frames);

  const double intra_ths[] = {0.0, 0.5, 0.8, 0.9, 0.95, 0.99, 1.0};
  const double plrs[] = {0.0, 0.05, 0.10, 0.20, 0.30};

  // The whole (PLR, Intra_Th) grid is independent lossless runs — fan it
  // out across the pool, then emit rows in grid order.
  std::vector<sim::SweepTask> tasks;
  for (double plr : plrs) {
    for (double th : intra_ths) {
      core::PbpairConfig pbpair;
      pbpair.intra_th = th;
      pbpair.plr = plr;
      tasks.push_back(
          bench::clip_task(kind, sim::SchemeSpec::pbpair(pbpair), config));
    }
  }
  std::vector<sim::PipelineResult> results = sim::run_parallel_sweep(tasks);

  sim::Table table({"Intra_Th", "PLR", "intra_MBs/frame", "ME_skipped/frame",
                    "size_KB", "encode_J", "tx_J", "total_J"});
  std::size_t t = 0;
  for (double plr : plrs) {
    for (double th : intra_ths) {
      const sim::PipelineResult& r = results[t++];
      std::uint64_t skipped = 0;
      for (const sim::FrameTrace& f : r.frames) skipped += f.pre_me_intra_mbs;
      table.add_row(
          {sim::format("%.2f", th), sim::format("%.2f", plr),
           sim::format("%.1f", static_cast<double>(r.total_intra_mbs) / frames),
           sim::format("%.1f", static_cast<double>(skipped) / frames),
           sim::format("%.1f", static_cast<double>(r.total_bytes) / 1024.0),
           sim::format("%.3f", r.encode_energy.total_j()),
           sim::format("%.3f", r.tx_energy_j),
           sim::format("%.3f", r.total_energy_j())});
    }
  }
  table.print();

  std::printf(
      "\nexpected shape (paper): intra MBs grow with Intra_Th and with PLR;\n"
      "encoding energy falls as intra MBs rise (skipped ME), while encoded\n"
      "size and transmit energy grow; Intra_Th=0 behaves like NO, Intra_Th=1\n"
      "codes every MB intra.\n");

  bench::write_json_report(
      "sec43", sim::format("\"frames\": %d,\n", frames) +
                   "  \"operating_points\": " + bench::table_to_json(table));
  return 0;
}
