// Figure 5 — comparison between PBPAIR and existing techniques at PLR 10%:
//   (a) average PSNR            (b) number of bad pixels
//   (c) encoded file size       (d) encoding energy consumption (iPAQ)
// over the akiyo/foreman/garden-like 300-frame QCIF clips, with PBPAIR's
// Intra_Th calibrated per clip to match PGOP-3's compressed size (§4.2).
#include <cstdio>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "net/loss_model.h"

using namespace pbpair;

int main() {
  bench::enable_observability("fig5_comparison");
  const int frames = bench::bench_frames();
  const double plr = 0.10;
  std::printf(
      "=== Figure 5: PBPAIR vs existing error-resilient coding "
      "(PLR = 10%%, %d QCIF frames/clip) ===\n\n",
      frames);

  struct Row {
    std::string scheme;
    double psnr[3];
    double bad_pixels_m[3];
    double size_kb[3];
    double energy_j[3];
  };
  std::vector<Row> rows;

  const sim::PipelineConfig config = bench::paper_pipeline_config(frames);

  // Phase 1, parallel over the clips: PGOP-3 lossless size target, then
  // the Intra_Th calibration bisection (§4.2). Each clip's calibration is
  // an independent serial bisection; the clips run concurrently.
  double intra_ths[3] = {};
  common::parallel_for(3, sim::sweep_thread_count(), [&](std::size_t s) {
    video::SequenceKind kind = bench::kPaperClips[s];
    // Size target: PGOP-3 on a lossless channel (compression comparison).
    sim::PipelineResult pgop_clean =
        bench::run_clip(kind, sim::SchemeSpec::pgop(3), nullptr, config);
    intra_ths[s] =
        bench::calibrate_pbpair_to_size(kind, pgop_clean.total_bytes, plr);
  });
  for (int s = 0; s < 3; ++s) {
    std::printf("calibrated Intra_Th for %s: %.4f\n",
                video::sequence_kind_name(bench::kPaperClips[s]),
                intra_ths[s]);
  }

  // Phase 2: all 15 (clip, scheme) measurement runs fan out across the
  // pool; every task builds its own loss model with the same seed, so the
  // loss pattern — and the whole report — is identical to the serial run.
  std::vector<sim::SweepTask> tasks;
  for (int s = 0; s < 3; ++s) {
    video::SequenceKind kind = bench::kPaperClips[s];
    core::PbpairConfig pbpair;
    pbpair.intra_th = intra_ths[s];
    pbpair.plr = plr;
    std::vector<sim::SchemeSpec> schemes = {
        sim::SchemeSpec::no_resilience(), sim::SchemeSpec::pbpair(pbpair),
        sim::SchemeSpec::pgop(3), sim::SchemeSpec::gop(3),
        sim::SchemeSpec::air(24)};
    for (const sim::SchemeSpec& scheme : schemes) {
      if (s == 0) rows.push_back(Row{scheme.label(), {}, {}, {}, {}});
      tasks.push_back(bench::clip_task(kind, scheme, config, [plr] {
        // Identical loss pattern for every scheme (same seed).
        return std::make_unique<net::UniformFrameLoss>(plr, /*seed=*/2005);
      }));
    }
  }
  std::vector<sim::PipelineResult> results = sim::run_parallel_sweep(tasks);
  for (std::size_t t = 0; t < results.size(); ++t) {
    const sim::PipelineResult& r = results[t];
    std::size_t s = t / rows.size();
    std::size_t i = t % rows.size();
    rows[i].psnr[s] = r.avg_psnr_db;
    rows[i].bad_pixels_m[s] = static_cast<double>(r.total_bad_pixels) / 1e6;
    rows[i].size_kb[s] = static_cast<double>(r.total_bytes) / 1024.0;
    rows[i].energy_j[s] = r.encode_energy.total_j();
  }
  std::printf("\n");

  std::string panels_json;
  auto print_panel = [&rows, &panels_json](const char* title,
                                           const char* csv_name, auto metric,
                                           const char* fmt) {
    std::printf("%s\n", title);
    sim::Table table({"scheme", "foreman", "akiyo", "garden"});
    for (const Row& row : rows) {
      table.add_row({row.scheme, sim::format(fmt, metric(row, 0)),
                     sim::format(fmt, metric(row, 1)),
                     sim::format(fmt, metric(row, 2))});
    }
    table.print();
    bench::maybe_write_csv(table, csv_name);
    if (!panels_json.empty()) panels_json += ",\n    ";
    panels_json += sim::format("\"%s\": ", csv_name) +
                   bench::table_to_json(table);
    std::printf("\n");
  };

  print_panel("--- Fig 5(a): average PSNR (dB), PLR 10% ---", "fig5a_psnr",
              [](const Row& r, int s) { return r.psnr[s]; }, "%.2f");
  print_panel("--- Fig 5(b): number of bad pixels (millions), PLR 10% ---",
              "fig5b_bad_pixels",
              [](const Row& r, int s) { return r.bad_pixels_m[s]; }, "%.3f");
  print_panel("--- Fig 5(c): encoded file size (KB) ---", "fig5c_size",
              [](const Row& r, int s) { return r.size_kb[s]; }, "%.1f");
  print_panel("--- Fig 5(d): encoding energy consumption (J, iPAQ model) ---",
              "fig5d_energy",
              [](const Row& r, int s) { return r.energy_j[s]; }, "%.3f");

  std::printf(
      "expected shape (paper): PBPAIR matches the baselines' PSNR and size\n"
      "while consuming the least encoding energy; AIR's energy ~= NO's\n"
      "because AIR decides modes after motion estimation.\n");

  bench::write_json_report(
      "fig5",
      sim::format("\"frames\": %d,\n  \"plr\": %.2f,\n  \"panels\": {\n    ",
                  frames, plr) +
          panels_json + "\n  }");
  return 0;
}
