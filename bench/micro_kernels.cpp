// Kernel and sweep microbenchmark — emits BENCH_kernels.json.
//
// Measures, with plain steady_clock loops (google-benchmark stays out so the
// JSON schema is ours):
//   1. ns/call for every dispatched kernel, per available backend (median of
//      five timed passes after a warmup pass), plus the best-SIMD / scalar
//      speedup. Each cell records the backend the kernel actually resolved
//      to — a table can inherit a slot from scalar (SSE2 quantize) or from a
//      narrower ISA (AVX-512 DCT runs the AVX2 code), and the speedup column
//      only credits genuine vector implementations;
//   2. wall-clock of a reduced fig5-style sweep (3 clips x 5 schemes) run
//      serial-scalar, serial-SIMD, and SIMD across the thread pool;
//   3. the invariant the whole design rests on: encoding energy and op
//      counters from the SIMD parallel sweep are bit-identical to the
//      scalar serial baseline.
//
// Output goes to BENCH_kernels.json in the working directory (override the
// path with PBPAIR_BENCH_JSON). Frames per sweep run default to 48; set
// PBPAIR_BENCH_FRAMES for longer runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "codec/kernels/kernels.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/loss_model.h"

using namespace pbpair;
using codec::kernels::Backend;
using codec::kernels::KernelId;
using codec::kernels::KernelTable;

namespace {

constexpr int kNB = codec::kernels::kNumBackends;

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

// Keeps results observable so the timed loops cannot be optimized away.
volatile std::int64_t g_sink = 0;
void sink(std::int64_t v) { g_sink = g_sink + v; }

// Deterministic pixel/coefficient fixtures shared by every backend so each
// one runs the identical instruction stream over identical data.
struct Fixtures {
  static constexpr int kStride = 64;
  static constexpr int kBlocks = 64;
  std::vector<std::uint8_t> cur;    // kBlocks 16x16 blocks, stride kStride
  std::vector<std::uint8_t> ref;
  std::vector<std::int16_t> dct_in;     // kBlocks 8x8 blocks, range [-255,255]
  std::vector<std::int16_t> coeff;      // kBlocks 8x8 blocks, range [-2048,2047]
  std::vector<std::int64_t> cutoffs;    // mixed early/late cutoffs

  Fixtures() {
    common::Pcg32 rng(0xBE7C41ULL);
    cur.resize(kBlocks * 16 * kStride);
    ref.resize(kBlocks * 16 * kStride);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      cur[i] = static_cast<std::uint8_t>(rng.next_below(256));
      ref[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    dct_in.resize(kBlocks * 64);
    coeff.resize(kBlocks * 64);
    for (std::size_t i = 0; i < dct_in.size(); ++i) {
      dct_in[i] = static_cast<std::int16_t>(rng.next_in_range(-255, 255));
      coeff[i] = static_cast<std::int16_t>(rng.next_in_range(-2048, 2047));
    }
    for (int b = 0; b < kBlocks; ++b) {
      // Mix of cutoffs that trigger after ~a few rows and ones that never do,
      // matching the distribution a motion search actually sees.
      cutoffs.push_back(b % 3 == 0 ? 2000 : 200000);
    }
  }

  const std::uint8_t* cur_block(int b) const { return cur.data() + b * 16 * kStride; }
  const std::uint8_t* ref_block(int b) const { return ref.data() + b * 16 * kStride; }
  // Blocks used as half-pel / MC sources read one extra row and column, so
  // the last fixture block (whose row 16 would fall off the buffer) is
  // excluded from their rotation.
  int hpel_block(int b) const { return b % (kBlocks - 1); }
};

// Times `body(block_index)`: one warmup pass, then five timed passes, and
// returns the median ns/call — a single pass is at the mercy of whatever
// else the machine is doing for a few hundred microseconds.
template <typename Body>
double time_kernel(const Body& body) {
  constexpr int kWarmup = 200;
  constexpr int kIters = 2000;
  constexpr int kPasses = 5;
  for (int i = 0; i < kWarmup; ++i) body(i % Fixtures::kBlocks);
  double samples[kPasses];
  for (int p = 0; p < kPasses; ++p) {
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) body(i % Fixtures::kBlocks);
    Clock::time_point t1 = Clock::now();
    samples[p] = elapsed_ns(t0, t1) / kIters;
  }
  std::sort(samples, samples + kPasses);
  return samples[kPasses / 2];
}

struct KernelTiming {
  KernelId id;
  std::string name;
  // ns/call per backend, indexed by Backend enum value; < 0 = unavailable.
  double ns[kNB];
  // Which backend's implementation that table actually dispatched to.
  Backend origin[kNB];

  explicit KernelTiming(KernelId kid)
      : id(kid), name(codec::kernels::kernel_name(kid)) {
    for (int b = 0; b < kNB; ++b) {
      ns[b] = -1.0;
      origin[b] = Backend::kScalar;
    }
  }

  // Best ns among backends that bring a genuine vector implementation for
  // this kernel — a slot inherited from scalar must not count, or a missing
  // SIMD kernel silently benchmarks as "1.00x parity" (the exact failure
  // mode this column used to hide for inverse_dct_8x8 on SSE2).
  double best_simd_ns() const {
    double best = -1.0;
    for (int b = 1; b < kNB; ++b) {
      if (ns[b] <= 0 || origin[b] == Backend::kScalar) continue;
      if (best < 0 || ns[b] < best) best = ns[b];
    }
    return best;
  }
  double speedup() const {
    double simd = best_simd_ns();
    return simd > 0 ? ns[0] / simd : 1.0;
  }
};

std::vector<KernelTiming> time_all_kernels(const Fixtures& fx) {
  std::vector<KernelTiming> timings;
  for (int k = 0; k < codec::kernels::kNumKernels; ++k) {
    timings.emplace_back(static_cast<KernelId>(k));
  }

  for (Backend backend : codec::kernels::supported_backends()) {
    const KernelTable* table = codec::kernels::table_for(backend);
    const int bi = static_cast<int>(backend);
    for (KernelTiming& t : timings) t.origin[bi] = table->origin_of(t.id);

    std::int16_t scratch[64];
    std::int16_t work[64];
    std::uint8_t pred[16 * 16];
    std::int64_t sads[8];

    auto slot = [&](KernelId id) -> double& {
      return timings[static_cast<int>(id)].ns[bi];
    };

    slot(KernelId::kSad16x16) = time_kernel([&](int b) {
      sink(table->sad_16x16(fx.cur_block(b), Fixtures::kStride,
                            fx.ref_block(b), Fixtures::kStride));
    });
    slot(KernelId::kSad16x16Cutoff) = time_kernel([&](int b) {
      int rows = 0;
      sink(table->sad_16x16_cutoff(fx.cur_block(b), Fixtures::kStride,
                                   fx.ref_block(b), Fixtures::kStride,
                                   fx.cutoffs[b], &rows));
      sink(rows);
    });
    slot(KernelId::kSadSelf16x16) = time_kernel([&](int b) {
      sink(table->sad_self_16x16(fx.cur_block(b), Fixtures::kStride));
    });
    slot(KernelId::kSad16x16X4) = time_kernel([&](int b) {
      const std::uint8_t* base = fx.ref_block(b);
      const std::uint8_t* refs[4] = {base, base + 1, base + 2, base + 3};
      table->sad_16x16_x4(fx.cur_block(b), Fixtures::kStride, refs,
                          Fixtures::kStride, sads);
      sink(sads[0] + sads[3]);
    });
    slot(KernelId::kSad16x16X8) = time_kernel([&](int b) {
      const std::uint8_t* base = fx.ref_block(b);
      const std::uint8_t* refs[8] = {base,     base + 1, base + 2, base + 3,
                                     base + 4, base + 5, base + 6, base + 7};
      table->sad_16x16_x8(fx.cur_block(b), Fixtures::kStride, refs,
                          Fixtures::kStride, sads);
      sink(sads[0] + sads[7]);
    });
    slot(KernelId::kSad16x16HpelCutoff) = time_kernel([&](int b) {
      const int hb = fx.hpel_block(b);
      int rows = 0;
      sink(table->sad_16x16_hpel_cutoff(fx.cur_block(hb), Fixtures::kStride,
                                        fx.ref_block(hb), Fixtures::kStride,
                                        /*hx=*/b & 1, /*hy=*/(b >> 1) & 1,
                                        fx.cutoffs[b], &rows));
      sink(rows);
    });
    slot(KernelId::kForwardDct8x8) = time_kernel([&](int b) {
      table->forward_dct_8x8(fx.dct_in.data() + b * 64, scratch);
      sink(scratch[0]);
    });
    slot(KernelId::kInverseDct8x8) = time_kernel([&](int b) {
      table->inverse_dct_8x8(fx.coeff.data() + b * 64, scratch);
      sink(scratch[0]);
    });
    slot(KernelId::kQuantizeAc) = time_kernel([&](int b) {
      // In-place kernel: the memcpy refill is identical work per backend.
      std::memcpy(work, fx.coeff.data() + b * 64, sizeof(work));
      sink(table->quantize_ac(work, 1, 1 + b % 31, /*intra=*/true));
    });
    slot(KernelId::kDequantizeAc) = time_kernel([&](int b) {
      std::memcpy(work, fx.coeff.data() + b * 64, sizeof(work));
      table->dequantize_ac(work, 1, 1 + b % 31);
      sink(work[1]);
    });
    slot(KernelId::kMcPredict) = time_kernel([&](int b) {
      const int hb = fx.hpel_block(b);
      table->mc_predict(fx.ref_block(hb), Fixtures::kStride, pred, 16, 16,
                        /*hx=*/1, /*hy=*/1);
      sink(pred[0]);
    });
    slot(KernelId::kSubPred8x8) = time_kernel([&](int b) {
      table->sub_pred_8x8(fx.cur_block(b), Fixtures::kStride, fx.ref_block(b),
                          Fixtures::kStride, scratch);
      sink(scratch[0]);
    });
    slot(KernelId::kAddPred8x8) = time_kernel([&](int b) {
      std::memcpy(work, fx.coeff.data() + b * 64, sizeof(work));
      for (int i = 0; i < 64; ++i) {
        work[i] = static_cast<std::int16_t>(work[i] % 256);
      }
      table->add_pred_8x8(pred, 16, fx.ref_block(b), Fixtures::kStride, work);
      sink(pred[0]);
    });
  }
  return timings;
}

// ---------------------------------------------------------------------------
// Fig5-style sweep: 3 clips x 5 schemes at PLR 10%, fixed Intra_Th (the
// calibration bisection is not the subject here).

std::vector<sim::SweepTask> sweep_tasks(const sim::PipelineConfig& config) {
  std::vector<sim::SweepTask> tasks;
  for (video::SequenceKind kind : bench::kPaperClips) {
    core::PbpairConfig pbpair;
    pbpair.intra_th = 0.9;
    pbpair.plr = 0.10;
    std::vector<sim::SchemeSpec> schemes = {
        sim::SchemeSpec::no_resilience(), sim::SchemeSpec::pbpair(pbpair),
        sim::SchemeSpec::pgop(3), sim::SchemeSpec::gop(3),
        sim::SchemeSpec::air(24)};
    for (const sim::SchemeSpec& scheme : schemes) {
      tasks.push_back(bench::clip_task(kind, scheme, config, [] {
        return std::make_unique<net::UniformFrameLoss>(0.10, /*seed=*/2005);
      }));
    }
  }
  return tasks;
}

struct SweepRun {
  double wall_ms = 0.0;
  std::vector<sim::PipelineResult> results;
};

SweepRun run_sweep(Backend backend, int threads,
                   const sim::PipelineConfig& config) {
  codec::kernels::set_active(backend);
  std::vector<sim::SweepTask> tasks = sweep_tasks(config);
  sim::SweepOptions options;
  options.threads = threads;
  Clock::time_point t0 = Clock::now();
  SweepRun run;
  run.results = sim::run_parallel_sweep(tasks, options);
  run.wall_ms = elapsed_ns(t0, Clock::now()) / 1e6;
  return run;
}

// Energy/op-counter bit-identity between two sweep runs; PSNR and bytes
// ride along since they are part of the same determinism contract.
bool reports_identical(const std::vector<sim::PipelineResult>& a,
                       const std::vector<sim::PipelineResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].encoder_ops, &b[i].encoder_ops,
                    sizeof(energy::OpCounters)) != 0) {
      return false;
    }
    if (a[i].encode_energy.total_j() != b[i].encode_energy.total_j()) return false;
    if (a[i].tx_energy_j != b[i].tx_energy_j) return false;
    if (a[i].total_bytes != b[i].total_bytes) return false;
    if (a[i].avg_psnr_db != b[i].avg_psnr_db) return false;
  }
  return true;
}

unsigned runner_hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;  // hardware_concurrency() may legally report 0
}

}  // namespace

int main() {
  const Fixtures fx;
  const std::vector<Backend> backends = codec::kernels::supported_backends();
  Backend best = backends.back();
  std::printf("=== Kernel microbenchmark (best backend: %s) ===\n\n",
              codec::kernels::backend_name(best));

  std::vector<KernelTiming> timings = time_all_kernels(fx);

  std::vector<std::string> header = {"kernel"};
  for (Backend b : backends) {
    header.push_back(std::string(codec::kernels::backend_name(b)) + "_ns");
  }
  header.push_back("speedup");
  sim::Table kernel_table(header);
  for (const KernelTiming& t : timings) {
    std::vector<std::string> row = {t.name};
    for (Backend b : backends) {
      const int bi = static_cast<int>(b);
      if (t.ns[bi] < 0) {
        row.push_back("-");
      } else if (t.origin[bi] != b) {
        // The table inherited this slot; say whose code actually ran.
        row.push_back(sim::format(
            "%.1f (=%s)", t.ns[bi],
            codec::kernels::backend_name(t.origin[bi])));
      } else {
        row.push_back(sim::format("%.1f", t.ns[bi]));
      }
    }
    row.push_back(sim::format("%.2fx", t.speedup()));
    kernel_table.add_row(row);
  }
  kernel_table.print();

  // Observability stays off for the kernel loops above so the gated
  // ns/call numbers measure the kernel alone, not the counter updates.
  bench::enable_observability("micro_kernels");

  // Sweep timing: a reduced fig5 grid (48 frames unless overridden).
  const int frames = std::min(bench::bench_frames(), 48);
  const sim::PipelineConfig config = bench::paper_pipeline_config(frames);
  bench::cached_clip(bench::kPaperClips[0], frames);  // warm clip cache
  bench::cached_clip(bench::kPaperClips[1], frames);
  bench::cached_clip(bench::kPaperClips[2], frames);

  const int pool_threads = 8;
  std::printf("\n=== Fig 5-style sweep (3 clips x 5 schemes, %d frames) ===\n",
              frames);
  SweepRun serial_scalar = run_sweep(Backend::kScalar, 1, config);
  SweepRun serial_simd = run_sweep(best, 1, config);
  SweepRun parallel_simd = run_sweep(best, pool_threads, config);
  codec::kernels::set_active(best);

  const bool identical =
      reports_identical(serial_scalar.results, serial_simd.results) &&
      reports_identical(serial_scalar.results, parallel_simd.results);

  sim::Table sweep_table({"configuration", "wall_ms", "speedup"});
  sweep_table.add_row({"serial scalar", sim::format("%.0f", serial_scalar.wall_ms),
                       "1.00x"});
  sweep_table.add_row(
      {sim::format("serial %s", codec::kernels::backend_name(best)),
       sim::format("%.0f", serial_simd.wall_ms),
       sim::format("%.2fx", serial_scalar.wall_ms / serial_simd.wall_ms)});
  sweep_table.add_row(
      {sim::format("%d-thread %s", pool_threads,
                   codec::kernels::backend_name(best)),
       sim::format("%.0f", parallel_simd.wall_ms),
       sim::format("%.2fx", serial_scalar.wall_ms / parallel_simd.wall_ms)});
  sweep_table.print();
  std::printf("hardware threads: %u\n", runner_hardware_threads());
  std::printf("energy/op counters bit-identical across backends+threads: %s\n",
              identical ? "yes" : "NO - INVARIANT BROKEN");

  // JSON report (through bench_common so the obs metrics block and the
  // optional $PBPAIR_TRACE_JSON Chrome trace ride along).
  std::string payload = sim::format("\"best_backend\": \"%s\",\n",
                                    codec::kernels::backend_name(best));
  payload += "  \"kernels\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const KernelTiming& t = timings[i];
    payload += sim::format("    {\"name\": \"%s\"", t.name.c_str());
    for (Backend b : backends) {
      const int bi = static_cast<int>(b);
      if (t.ns[bi] < 0) continue;
      payload += sim::format(", \"%s_ns\": %.2f",
                             codec::kernels::backend_name(b), t.ns[bi]);
    }
    // Resolution map: which backend's code each table actually ran. Lets a
    // report reader (and the regression gate's human operator) spot slots
    // that silently fell back rather than trusting a near-1x ratio.
    payload += ", \"origins\": {";
    bool first_origin = true;
    for (Backend b : backends) {
      const int bi = static_cast<int>(b);
      if (t.ns[bi] < 0) continue;
      payload += sim::format(
          "%s\"%s\": \"%s\"", first_origin ? "" : ", ",
          codec::kernels::backend_name(b),
          codec::kernels::backend_name(t.origin[bi]));
      first_origin = false;
    }
    payload += "}";
    payload += sim::format(", \"speedup_best\": %.3f}%s\n", t.speedup(),
                           i + 1 < timings.size() ? "," : "");
  }
  payload += "  ],\n";
  payload += sim::format(
      "  \"fig5_sweep\": {\n"
      "    \"frames\": %d,\n"
      "    \"tasks\": 15,\n"
      "    \"hardware_threads\": %u,\n"
      "    \"serial_scalar_ms\": %.1f,\n"
      "    \"serial_simd_ms\": %.1f,\n"
      "    \"parallel%d_simd_ms\": %.1f,\n"
      "    \"simd_speedup\": %.3f,\n"
      "    \"total_speedup\": %.3f,\n"
      "    \"energy_bit_identical\": %s\n"
      "  }",
      frames, runner_hardware_threads(), serial_scalar.wall_ms,
      serial_simd.wall_ms, pool_threads, parallel_simd.wall_ms,
      serial_scalar.wall_ms / serial_simd.wall_ms,
      serial_scalar.wall_ms / parallel_simd.wall_ms,
      identical ? "true" : "false");
  bench::write_json_report("kernels", payload);
  return identical ? 0 : 1;
}
