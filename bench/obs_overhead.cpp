// Observability overhead — sharded hot-path cost and pipeline drag.
//
// The sharded registry's claim (DESIGN.md §14) is that a counter bump or
// histogram observe from N concurrent threads is a handful of ns on a
// thread-local shard cell — no shared cache line, no mutex — and that
// turning the whole obs layer on costs the paper pipeline almost nothing.
// Two row families measure exactly that, gated in CI by
// check_bench_regression --mode obs against the committed BENCH_obs.json:
//
//   bump/tN      N threads hammer one Counter (+ one Histogram every 4th
//                op) of a private Registry for kOpsPerThread ops each.
//                ns_per_op is the gated number; mops_per_s is the same
//                measurement upside down. The merged value() afterwards
//                must equal the op count exactly — the shards may not
//                lose a single increment.
//
//   pipeline/tN  8 labeled health-tracked sessions (the serve shape) run
//                to completion under a SessionManager with N workers,
//                best-of-3 with obs disabled vs enabled.
//                overhead_ratio = on_ms / off_ms is the gated number; the
//                in-process abort bar is 1.5 (blowups only — wall-clock
//                noise on a loaded box owns anything tighter).
//
// Both families are wall-clock, so the CI gate uses a generous relative
// threshold; the PB_CHECK scaling assertions only run on machines with
// enough cores for "parallel" to mean something.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "net/loss_model.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "sim/report.h"
#include "sim/session_manager.h"

using namespace pbpair;

namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr std::uint64_t kOpsPerThread = 1u << 21;
constexpr int kPipelineSessions = 8;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BumpRow {
  int threads = 0;
  double ns_per_op = 0.0;
  double mops_per_s = 0.0;
};

/// N threads bump one shared Counter/Histogram pair of a fresh private
/// Registry. Handles are resolved once outside the loop — the macro-site
/// caching every hot path in src/ uses — so this times the shard fast
/// path itself, not the name lookup.
BumpRow run_bump(int threads) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench.bump");
  obs::Histogram& histogram = registry.histogram("bench.bump_ns");

  const double t0 = now_ms();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&counter, &histogram] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        counter.add(1);
        if ((i & 3u) == 0) {
          histogram.observe(static_cast<std::uint64_t>(i & 0xFFFu));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const double elapsed_ms = now_ms() - t0;

  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(threads) * kOpsPerThread;
  // Sharding must be lossless: the merged value is exact, not sampled.
  PB_CHECK(counter.value() == total_ops);
  PB_CHECK(registry.shard_count() == static_cast<std::size_t>(threads));

  BumpRow row;
  row.threads = threads;
  row.ns_per_op = elapsed_ms * 1e6 / static_cast<double>(total_ops);
  row.mops_per_s =
      elapsed_ms > 0.0 ? static_cast<double>(total_ops) / (elapsed_ms * 1e3)
                       : 0.0;
  return row;
}

struct PipelineRow {
  int threads = 0;
  double off_ms = 0.0;
  double on_ms = 0.0;
  double overhead_ratio = 0.0;
};

/// The serve shape: labeled, health-tracked sessions over the paper
/// clips, per-session seeded 10% uniform loss. `tag` keeps the obs
/// session labels distinct across the on/off × thread-count grid.
double run_sessions(int threads, int frames, const char* tag) {
  std::vector<sim::SessionSpec> specs;
  specs.reserve(kPipelineSessions);
  for (int i = 0; i < kPipelineSessions; ++i) {
    sim::SessionSpec spec;
    core::PbpairConfig pbpair;
    pbpair.intra_th = 0.9;
    pbpair.plr = 0.10;
    spec.scheme = sim::SchemeSpec::pbpair(pbpair);
    spec.config = bench::paper_pipeline_config(frames);
    spec.config.health = obs::HealthConfig{};
    spec.source = bench::clip_source(
        bench::kPaperClips[static_cast<std::size_t>(i) % 3], frames);
    spec.label = sim::format("%s%02d", tag, i);
    const std::uint64_t seed = 2005 + static_cast<std::uint64_t>(i);
    spec.make_loss = [seed] {
      return std::make_unique<net::UniformFrameLoss>(0.10, seed);
    };
    specs.push_back(std::move(spec));
  }
  sim::SessionManager manager(std::move(specs));
  sim::SessionManagerOptions options;
  options.threads = threads;
  const double t0 = now_ms();
  manager.run(options);
  return now_ms() - t0;
}

PipelineRow run_pipeline(int threads, int frames) {
  PipelineRow row;
  row.threads = threads;
  // Interleaved best-of-3: identical specs modulo the session labels (the
  // clip caches are pre-warmed in main(), so no run pays generation), and
  // the min per arm strips scheduler spikes — on a loaded CI box a single
  // off/on pair can disagree with itself by ±30%.
  row.off_ms = 1e300;
  row.on_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    obs::set_enabled(false);
    row.off_ms = std::min(
        row.off_ms,
        run_sessions(threads, frames,
                     sim::format("off_t%d_s", threads).c_str()));
    obs::set_enabled(true);
    row.on_ms = std::min(
        row.on_ms, run_sessions(threads, frames,
                                sim::format("on_t%d_s", threads).c_str()));
  }
  row.overhead_ratio = row.off_ms > 0.0 ? row.on_ms / row.off_ms : 0.0;
  return row;
}

}  // namespace

int main() {
  bench::enable_observability("obs_overhead");
  const int frames = bench::bench_frames();
  std::printf(
      "=== Observability overhead: sharded bump cost and pipeline drag "
      "(%d QCIF frames, %d sessions) ===\n\n",
      frames, kPipelineSessions);

  // Warm the clip caches so pipeline off/on runs time codec work only.
  for (video::SequenceKind kind : bench::kPaperClips) {
    bench::cached_clip(kind, frames);
  }

  std::vector<BumpRow> bump_rows;
  for (int threads : kThreadCounts) {
    bump_rows.push_back(run_bump(threads));
  }
  // Contention bar, meaningful only where threads can actually run in
  // parallel: 8 threads on disjoint shard cells may not serialize into
  // worse than 8x the single-thread per-op cost.
  if (std::thread::hardware_concurrency() >= 4) {
    PB_CHECK(bump_rows[2].ns_per_op <= bump_rows[0].ns_per_op * 8.0);
  }

  std::vector<PipelineRow> pipeline_rows;
  for (int threads : kThreadCounts) {
    pipeline_rows.push_back(run_pipeline(threads, frames));
  }

  sim::Table bump_table({"row", "threads", "ns_per_op", "Mops_per_s"});
  for (const BumpRow& row : bump_rows) {
    bump_table.add_row({sim::format("bump/t%d", row.threads),
                        sim::format("%d", row.threads),
                        sim::format("%.2f", row.ns_per_op),
                        sim::format("%.1f", row.mops_per_s)});
  }
  bump_table.print();
  std::printf("\n");
  sim::Table pipe_table(
      {"row", "threads", "off_ms", "on_ms", "overhead_ratio"});
  for (const PipelineRow& row : pipeline_rows) {
    pipe_table.add_row({sim::format("pipeline/t%d", row.threads),
                        sim::format("%d", row.threads),
                        sim::format("%.1f", row.off_ms),
                        sim::format("%.1f", row.on_ms),
                        sim::format("%.3f", row.overhead_ratio)});
  }
  pipe_table.print();
  std::fflush(stdout);
  for (const PipelineRow& row : pipeline_rows) {
    // The always-on telemetry bar. Measured ~1.2x at CI's 24-frame quick
    // setting (the per-frame obs cost is fixed, the codec cost scales
    // with frames, so short runs overstate the ratio); the hard abort
    // only catches blowups — drift is gated by check_bench_regression
    // --mode obs against the committed BENCH_obs.json.
    PB_CHECK(row.overhead_ratio < 1.5);
  }
  bench::maybe_write_csv(bump_table, "obs_overhead_bump");
  bench::maybe_write_csv(pipe_table, "obs_overhead_pipeline");

  std::string rows_json = "[";
  bool first = true;
  for (const BumpRow& row : bump_rows) {
    rows_json += first ? "\n      {" : ",\n      {";
    first = false;
    rows_json += sim::format(
        "\"name\": \"bump/t%d\", \"threads\": %d, \"ns_per_op\": %.4f, "
        "\"mops_per_s\": %.2f}",
        row.threads, row.threads, row.ns_per_op, row.mops_per_s);
  }
  for (const PipelineRow& row : pipeline_rows) {
    rows_json += sim::format(
        ",\n      {\"name\": \"pipeline/t%d\", \"threads\": %d, "
        "\"off_ms\": %.2f, \"on_ms\": %.2f, \"overhead_ratio\": %.4f}",
        row.threads, row.threads, row.off_ms, row.on_ms,
        row.overhead_ratio);
  }
  rows_json += "\n    ]";

  std::string payload = sim::format("\"frames\": %d,\n  ", frames);
  payload += "\"obs_rows\": " + rows_json;
  bench::write_json_report("obs", payload);
  return 0;
}
