// Codec microbenchmarks (google-benchmark): the primitive costs behind the
// energy model's cycle estimates — DCT/IDCT, SAD, motion search variants,
// entropy coding, and full-frame encodes.
#include <benchmark/benchmark.h>

#include "codec/block_coder.h"
#include "codec/dct.h"
#include "codec/encoder.h"
#include "codec/motion_search.h"
#include "codec/quant.h"
#include "codec/sad.h"
#include "common/rng.h"
#include "core/pbpair_policy.h"
#include "video/sequence.h"

namespace {

using namespace pbpair;

void fill_random_block(std::int16_t* block, std::uint64_t seed, int lo,
                       int hi) {
  common::Pcg32 rng(seed);
  for (int i = 0; i < 64; ++i) {
    block[i] = static_cast<std::int16_t>(rng.next_in_range(lo, hi));
  }
}

void BM_ForwardDct(benchmark::State& state) {
  std::int16_t in[64], out[64];
  fill_random_block(in, 1, 0, 255);
  for (auto _ : state) {
    codec::forward_dct_8x8(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ForwardDct);

void BM_InverseDct(benchmark::State& state) {
  std::int16_t in[64], out[64];
  fill_random_block(in, 2, -500, 500);
  for (auto _ : state) {
    codec::inverse_dct_8x8(in, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_InverseDct);

void BM_QuantizeBlock(benchmark::State& state) {
  std::int16_t block[64];
  energy::OpCounters ops;
  for (auto _ : state) {
    fill_random_block(block, 3, -800, 800);
    benchmark::DoNotOptimize(codec::quantize_block(block, 10, false, ops));
  }
}
BENCHMARK(BM_QuantizeBlock);

void BM_Sad16x16(benchmark::State& state) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame a = seq.frame_at(0);
  video::YuvFrame b = seq.frame_at(1);
  energy::OpCounters ops;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::sad_16x16(a.y(), 48, 48, b.y(), 48, 48, ops));
  }
}
BENCHMARK(BM_Sad16x16);

void BM_MotionSearch(benchmark::State& state) {
  const bool full = state.range(0) != 0;
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame cur = seq.frame_at(1);
  video::YuvFrame ref = seq.frame_at(0);
  energy::OpCounters ops;
  codec::MotionSearchConfig config;
  config.strategy = full ? codec::SearchStrategy::kFullSearch
                         : codec::SearchStrategy::kDiamondSearch;
  config.range = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec::search_motion(cur.y(), ref.y(), 5, 4, config, nullptr, ops));
  }
  state.SetLabel(full ? "full" : "diamond");
}
BENCHMARK(BM_MotionSearch)->Arg(1)->Arg(0);

void BM_EncodeBlockVlc(benchmark::State& state) {
  std::int16_t block[64] = {};
  block[0] = 5;
  block[1] = -2;
  block[8] = 1;
  block[16] = 1;
  for (auto _ : state) {
    codec::BitWriter writer;
    codec::encode_block(writer, block, false);
    benchmark::DoNotOptimize(writer.bit_count());
  }
}
BENCHMARK(BM_EncodeBlockVlc);

void BM_EncodeFrame(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  std::vector<video::YuvFrame> clip;
  for (int i = 0; i < 8; ++i) clip.push_back(seq.frame_at(i));

  codec::EncoderConfig config;
  config.search.strategy = variant == 2
                               ? codec::SearchStrategy::kFullSearch
                               : codec::SearchStrategy::kDiamondSearch;
  config.search.range = 7;

  codec::NoRefreshPolicy no_policy;
  core::PbpairConfig pbpair_config;
  pbpair_config.intra_th = 0.95;
  pbpair_config.plr = 0.10;
  core::PbpairPolicy pbpair_policy(11, 9, pbpair_config);
  codec::RefreshPolicy* policy =
      variant == 1 ? static_cast<codec::RefreshPolicy*>(&pbpair_policy)
                   : &no_policy;

  codec::Encoder encoder(config, policy);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encoder.encode_frame(clip[static_cast<std::size_t>(i)]));
    i = (i + 1) % static_cast<int>(clip.size());
  }
  state.SetLabel(variant == 0 ? "NO/diamond"
                              : (variant == 1 ? "PBPAIR/diamond" : "NO/full"));
}
BENCHMARK(BM_EncodeFrame)->Arg(0)->Arg(1)->Arg(2);

void BM_GenerateFrame(benchmark::State& state) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.frame_at(i++));
  }
}
BENCHMARK(BM_GenerateFrame);

}  // namespace

BENCHMARK_MAIN();
