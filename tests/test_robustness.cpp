// Decoder robustness: a decoder on a lossy network will see truncated and
// corrupted bitstreams; it must conceal and continue, never crash, and
// never read out of bounds. These are fuzz-style property tests with
// deterministic seeds.
#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/golomb.h"
#include "codec/encoder.h"
#include "video/metrics.h"
#include "common/rng.h"
#include "video/sequence.h"

namespace pbpair::codec {
namespace {

EncodedFrame make_test_frame(int index, Encoder& encoder,
                             const video::SyntheticSequence& seq) {
  return encoder.encode_frame(seq.frame_at(index));
}

ReceivedFrame as_received(const EncodedFrame& frame,
                          std::vector<std::uint8_t> payload) {
  ReceivedFrame received;
  received.frame_index = frame.frame_index;
  received.type = frame.type;
  received.qp = frame.qp;
  received.any_data = true;
  ReceivedFrame::GobSpan span;
  span.first_gob = 0;
  span.bytes = std::move(payload);
  received.spans.push_back(std::move(span));
  return received;
}

std::vector<std::uint8_t> gob_payload(const EncodedFrame& frame) {
  return std::vector<std::uint8_t>(
      frame.bytes.begin() + frame.gob_offsets[0], frame.bytes.end());
}

TEST(Robustness, TruncationAtEveryByteBoundary) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  EncodedFrame frame = make_test_frame(0, encoder, seq);
  std::vector<std::uint8_t> payload = gob_payload(frame);

  for (std::size_t cut = 0; cut <= payload.size(); cut += 7) {
    Decoder decoder(DecoderConfig{});
    std::vector<std::uint8_t> truncated(payload.begin(),
                                        payload.begin() + cut);
    const video::YuvFrame& out =
        decoder.decode_frame(as_received(frame, std::move(truncated)));
    // Must produce a full frame (concealed where data ran out).
    ASSERT_EQ(out.width(), 176);
    ASSERT_EQ(out.height(), 144);
  }
}

TEST(Robustness, SingleByteCorruptionNeverCrashes) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  EncodedFrame i_frame = make_test_frame(0, encoder, seq);
  EncodedFrame p_frame = make_test_frame(1, encoder, seq);
  common::Pcg32 rng(2025);

  for (const EncodedFrame* frame : {&i_frame, &p_frame}) {
    std::vector<std::uint8_t> payload = gob_payload(*frame);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint8_t> corrupt = payload;
      std::size_t pos = rng.next_below(static_cast<std::uint32_t>(corrupt.size()));
      corrupt[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
      Decoder decoder(DecoderConfig{});
      decoder.decode_frame(as_received(*frame, std::move(corrupt)));
      // Reaching here without PB_CHECK abort / ASAN report is the pass.
    }
  }
}

TEST(Robustness, RandomGarbagePayloadsNeverCrash) {
  common::Pcg32 rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> garbage(rng.next_below(2000) + 1);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u32());
    ReceivedFrame received;
    received.frame_index = trial;
    received.type = trial % 2 == 0 ? FrameType::kIntra : FrameType::kInter;
    received.qp = 1 + static_cast<int>(rng.next_below(31));
    received.any_data = true;
    ReceivedFrame::GobSpan span;
    span.first_gob = static_cast<int>(rng.next_below(9));
    span.bytes = std::move(garbage);
    received.spans.push_back(std::move(span));
    Decoder decoder(DecoderConfig{});
    decoder.decode_frame(received);
  }
}

TEST(Robustness, WrongGobIndexIsRejectedViaSyncByte) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  EncodedFrame frame = make_test_frame(0, encoder, seq);

  // Claim the payload starts at GOB 5 when it actually starts at 0: the
  // sync byte mismatch must make the decoder conceal rather than decode
  // rows into the wrong place.
  ReceivedFrame received = as_received(frame, gob_payload(frame));
  received.spans[0].first_gob = 5;
  Decoder decoder(DecoderConfig{});
  decoder.decode_frame(received);
  EXPECT_EQ(decoder.concealed_mbs(), 99u);  // nothing decoded
}

TEST(Robustness, DuplicateSpansAreIdempotent) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  EncodedFrame frame = make_test_frame(0, encoder, seq);

  ReceivedFrame received = as_received(frame, gob_payload(frame));
  received.spans.push_back(received.spans[0]);  // duplicated delivery
  Decoder decoder(DecoderConfig{});
  const video::YuvFrame& out = decoder.decode_frame(received);
  EXPECT_EQ(out, encoder.reconstructed());
  EXPECT_EQ(decoder.concealed_mbs(), 0u);
}

TEST(Robustness, MvPointingOutsideFrameIsRejected) {
  // Hand-craft a P-frame GOB whose first MB carries an absurd vector; the
  // decoder must fail that MB cleanly and conceal the row.
  BitWriter writer;
  writer.put_bits(0, 8);  // GOB 0 sync byte
  writer.put_bit(false);  // COD = 0
  writer.put_bit(false);  // inter
  put_se(writer, 3000);   // mvd x: far outside any frame
  put_se(writer, 0);
  ReceivedFrame received;
  received.frame_index = 1;
  received.type = FrameType::kInter;
  received.qp = 10;
  received.any_data = true;
  ReceivedFrame::GobSpan span;
  span.first_gob = 0;
  span.bytes = writer.finish();
  received.spans.push_back(std::move(span));

  Decoder decoder(DecoderConfig{});
  decoder.decode_frame(received);
  EXPECT_GE(decoder.concealed_mbs(), 99u);  // row 0 + all missing rows
}

TEST(Robustness, HostileMetadataIsClampedNotTrusted) {
  // A corrupted payload header can claim any qp / type / first_gob; the
  // decoder contract says clamp or ignore, never misbehave.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  EncodedFrame frame = make_test_frame(0, encoder, seq);

  for (int qp : {-1000, -1, 0, 32, 255, 100000}) {
    ReceivedFrame received = as_received(frame, gob_payload(frame));
    received.qp = qp;
    received.type = qp % 2 == 0 ? FrameType::kInter : FrameType::kIntra;
    Decoder decoder(DecoderConfig{});
    const video::YuvFrame& out = decoder.decode_frame(received);
    ASSERT_EQ(out.width(), 176);
    ASSERT_EQ(out.height(), 144);
  }
}

TEST(Robustness, OutOfRangeFirstGobSpansAreIgnored) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  EncodedFrame frame = make_test_frame(0, encoder, seq);

  for (int first_gob : {-5, -1, 9, 200, 255}) {
    ReceivedFrame received = as_received(frame, gob_payload(frame));
    received.spans[0].first_gob = first_gob;
    Decoder decoder(DecoderConfig{});
    decoder.decode_frame(received);
    // QCIF has GOBs 0..8: nothing decodable => whole frame concealed.
    EXPECT_EQ(decoder.concealed_mbs(), 99u) << "first_gob " << first_gob;
  }
}

TEST(Robustness, HostileFramesLeaveDecoderUsable) {
  // Interleave hostile frames (garbage metadata AND garbage bytes) with
  // clean I-frames through ONE decoder: each clean frame must still land
  // at full quality, proving no hidden state is poisoned.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  Decoder decoder(DecoderConfig{});
  common::Pcg32 rng(31);

  for (int round = 0; round < 5; ++round) {
    ReceivedFrame hostile;
    hostile.frame_index = round;
    hostile.type = FrameType::kInter;
    hostile.qp = static_cast<int>(rng.next_below(100000)) - 50000;
    hostile.any_data = true;
    ReceivedFrame::GobSpan span;
    span.first_gob = static_cast<int>(rng.next_below(300)) - 100;
    span.bytes.resize(rng.next_below(500) + 1);
    std::uint8_t* bytes = span.bytes.mutable_data();
    for (std::size_t j = 0; j < span.bytes.size(); ++j) {
      bytes[j] = static_cast<std::uint8_t>(rng.next_u32());
    }
    hostile.spans.push_back(std::move(span));
    decoder.decode_frame(hostile);

    encoder.reset();
    EncodedFrame clean = make_test_frame(0, encoder, seq);
    const video::YuvFrame& out =
        decoder.decode_frame(as_received(clean, gob_payload(clean)));
    EXPECT_EQ(out, encoder.reconstructed()) << "round " << round;
  }
}

TEST(Robustness, DecoderStateRecoversAfterGarbageFrame) {
  // A garbage frame must not poison subsequent clean decoding beyond the
  // reference-propagation the codec design implies.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  class EveryFourthIntra final : public RefreshPolicy {
   public:
    const char* name() const override { return "test"; }
    bool want_intra_frame(int frame_index) override {
      return frame_index % 4 == 0;
    }
  };
  EveryFourthIntra policy;
  Encoder encoder(EncoderConfig{}, &policy);
  Decoder decoder(DecoderConfig{});
  common::Pcg32 rng(11);

  double final_psnr = 0.0;
  for (int i = 0; i < 9; ++i) {
    video::YuvFrame original = seq.frame_at(i);
    EncodedFrame frame = encoder.encode_frame(original);
    ReceivedFrame received;
    if (i == 2) {
      std::vector<std::uint8_t> garbage(400);
      for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u32());
      received = as_received(frame, std::move(garbage));
    } else {
      received = as_received(frame, gob_payload(frame));
    }
    final_psnr = video::psnr_luma(original, decoder.decode_frame(received));
  }
  // Frame 8 is an I-frame (i % 4 == 0): full recovery.
  EXPECT_GT(final_psnr, 30.0);
}

}  // namespace
}  // namespace pbpair::codec
