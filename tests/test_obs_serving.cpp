// Multi-scrape HTTP serving and the post-mortem flight recorder.
//
// The epoll exporter's contract: N concurrent scrapers each get a
// complete, byte-correct response; a wedged client is closed at its
// deadline (and counted) without stalling anyone else; malformed and
// non-GET requests get clean error statuses. The flight recorder's
// contract: a bounded ring that never loses the newest events, dumps
// parseable JSONL, and is wired into sessions — populated per frame,
// auto-dumped on a CRITICAL health transition, and served over
// GET /flightrecorder/<session>.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "sim/session.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

class ScopedObs {
 public:
  explicit ScopedObs(bool on) : prev_(obs::enabled()) {
    obs::set_enabled(on);
  }
  ~ScopedObs() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Connects to 127.0.0.1:port, sends `request` raw, then reads until the
/// server closes (or `recv_timeout_s` passes). Returns everything read.
std::string raw_exchange(int port, const std::string& request,
                         double recv_timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  if (!request.empty()) {
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
  }
  timeval tv{};
  tv.tv_sec = static_cast<long>(recv_timeout_s);
  tv.tv_usec = static_cast<long>((recv_timeout_s - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // 0 = server closed, <0 = timeout/error
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(FlightRecorder, RingWrapsAndSnapshotKeepsNewest) {
  obs::FlightRecorder ring("wraptest", /*capacity=*/6);  // rounds up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    ring.record(obs::FlightEvent::kFrameEncoded, i, i * 10, i);
  }
  EXPECT_EQ(ring.total_recorded(), 20u);
  const std::vector<obs::FlightRecord> window = ring.snapshot();
  ASSERT_EQ(window.size(), 8u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].seq, 12 + i);            // oldest survivor first
    EXPECT_EQ(window[i].frame, static_cast<std::int32_t>(12 + i));
    EXPECT_EQ(window[i].a, static_cast<std::int64_t>((12 + i) * 10));
  }
  ring.reset();
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(FlightRecorder, DumpJsonlParsesAndUnsafeDumpMatches) {
  obs::FlightRecorder ring("dumptest", 16);
  ring.record(obs::FlightEvent::kFrameEncoded, 0, 879, 99);
  ring.record(obs::FlightEvent::kPlrUpdate, 1, 26, 0);
  ring.record(obs::FlightEvent::kHealthTransition, 2, 0, 2);

  const std::string jsonl = ring.dump_jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    common::JsonValue v;
    std::string error;
    ASSERT_TRUE(common::JsonValue::parse(line, &v, &error)) << line;
    EXPECT_EQ(v.string_at("session"), "dumptest");
    ++parsed;
  }
  EXPECT_EQ(parsed, 3);
  EXPECT_NE(jsonl.find("\"event\":\"plr_update\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"health_transition\""),
            std::string::npos);

  // The crash-handler path produces the same bytes through ::write.
  const std::string path =
      std::string(::testing::TempDir()) + "flight_unsafe.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  ring.dump_unsafe(fileno(f));
  std::fclose(f);
  EXPECT_EQ(read_file(path), jsonl);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RegistryCreatesResetsAndLists) {
  obs::FlightRegistry& registry = obs::FlightRegistry::global();
  obs::FlightRecorder* a = registry.create("regtest_b", 8);
  a->record(obs::FlightEvent::kFuzzCase, 0, 1, 2);
  EXPECT_EQ(a->total_recorded(), 1u);

  // Re-creating a label returns the same ring, reset.
  obs::FlightRecorder* again = registry.create("regtest_b", 8);
  EXPECT_EQ(a, again);
  EXPECT_EQ(a->total_recorded(), 0u);

  registry.create("regtest_a", 8);
  EXPECT_EQ(registry.find("regtest_never"), nullptr);
  ASSERT_NE(registry.find("regtest_a"), nullptr);

  // labels() is sorted, so regtest_a precedes regtest_b.
  const std::vector<std::string> labels = registry.labels();
  std::ptrdiff_t pos_a = -1, pos_b = -1;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == "regtest_a") pos_a = static_cast<std::ptrdiff_t>(i);
    if (labels[i] == "regtest_b") pos_b = static_cast<std::ptrdiff_t>(i);
  }
  ASSERT_GE(pos_a, 0);
  ASSERT_GE(pos_b, 0);
  EXPECT_LT(pos_a, pos_b);
}

TEST(FlightRecorder, SessionAutoDumpsOnCriticalTransition) {
  // A 70% loss channel blows past plr_critical_enter right after warmup;
  // the session's wrapped transition hook must record the transition,
  // auto-dump the ring into the registry's dump dir, and still call the
  // user hook.
  const std::string dump_dir = ::testing::TempDir();
  obs::FlightRegistry::global().set_dump_dir(dump_dir);

  std::atomic<int> critical_transitions{0};
  sim::PipelineConfig config;
  config.frames = 40;
  obs::HealthConfig health;
  health.on_transition = [&critical_transitions](
                             const std::string&, obs::HealthState,
                             obs::HealthState to, const obs::HealthSnapshot&) {
    if (to == obs::HealthState::kCritical) critical_transitions.fetch_add(1);
  };
  config.health = health;

  video::SyntheticSequence sequence =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  core::PbpairConfig pbpair;
  pbpair.plr = 0.10;
  sim::StreamSession session(
      [sequence](int f) { return sequence.frame_at(f); },
      sim::SchemeSpec::pbpair(pbpair),
      std::make_unique<net::UniformFrameLoss>(0.70, 2005), config,
      "flightcrit");
  session.run_to_end();
  obs::FlightRegistry::global().set_dump_dir("");  // don't leak into others

  EXPECT_GE(critical_transitions.load(), 1);
  obs::FlightRecorder* ring = obs::FlightRegistry::global().find("flightcrit");
  ASSERT_NE(ring, nullptr);
  EXPECT_GT(ring->total_recorded(), 0u);
  // The ring saw the same CRITICAL transition the user hook saw...
  bool saw_critical = false;
  for (const obs::FlightRecord& r : ring->snapshot()) {
    if (r.event == obs::FlightEvent::kHealthTransition &&
        r.b == static_cast<std::int64_t>(obs::HealthState::kCritical)) {
      saw_critical = true;
    }
  }
  EXPECT_TRUE(saw_critical);
  // ...and the post-mortem file exists, is JSONL, and names the session.
  const std::string dump_path = dump_dir + "flight_flightcrit.jsonl";
  const std::string dumped = read_file(dump_path);
  ASSERT_FALSE(dumped.empty());
  EXPECT_EQ(dumped.compare(0, 24, "{\"session\":\"flightcrit\","), 0);
  std::remove(dump_path.c_str());
}

TEST(HttpServing, ParallelScrapesAreByteIdenticalPerInstant) {
  // With the registry static for the duration, every one of N concurrent
  // scrapers must read the exact same bytes on /metrics — the epoll state
  // machine may interleave connections, never responses. Self-metrics
  // stay off (obs disabled) so serving does not perturb what is served.
  ScopedObs off(false);
  obs::Registry registry;
  registry.counter("serving.alpha").add(7);
  registry.counter("serving.beta").add(11);
  registry.histogram("serving.lat_ns").observe(300);

  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.start(0, [&registry](const std::string& path) {
    obs::HttpResponse response;
    if (path == "/metrics") {
      response.body = obs::render_prometheus(registry);
    } else if (path == "/healthz") {
      response.content_type = "application/json";
      response.body = "{\"status\": \"ok\"}\n";
    } else {
      response.status = 404;
      response.body = "not found\n";
    }
    return response;
  }));

  std::string reference;
  int status = 0;
  ASSERT_TRUE(obs::http_get("127.0.0.1", exporter.port(), "/metrics",
                            &reference, &status));
  ASSERT_EQ(status, 200);
  ASSERT_FALSE(reference.empty());

  constexpr int kClients = 8;
  constexpr int kScrapesPerClient = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kScrapesPerClient; ++i) {
        std::string body;
        int code = 0;
        const bool healthz = (c + i) % 3 == 0;
        if (!obs::http_get("127.0.0.1", exporter.port(),
                           healthz ? "/healthz" : "/metrics", &body,
                           &code) ||
            code != 200) {
          failures.fetch_add(1);
          continue;
        }
        if (healthz ? body != "{\"status\": \"ok\"}\n" : body != reference) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  exporter.stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(HttpServing, SlowClientIsClosedAtDeadlineAndCounted) {
  ScopedObs on(true);
  obs::HttpExporterOptions options;
  options.slow_client_timeout_ms = 150;
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.start(
      0,
      [](const std::string&) {
        obs::HttpResponse response;
        response.body = "fast\n";
        return response;
      },
      options));
  const std::uint64_t timeouts_before =
      obs::counter("obs.http.timeouts").value();

  // Half a request, then silence: the server must close us at the
  // deadline (recv sees EOF well before the 5 s client-side guard), and
  // a well-behaved client on the same loop must be unaffected.
  const std::string half = raw_exchange(exporter.port(), "GET /met", 5.0);
  EXPECT_TRUE(half.empty());

  std::string body;
  int status = 0;
  ASSERT_TRUE(
      obs::http_get("127.0.0.1", exporter.port(), "/x", &body, &status));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "fast\n");
  exporter.stop();
  EXPECT_GE(obs::counter("obs.http.timeouts").value(), timeouts_before + 1);
}

TEST(HttpServing, MalformedAndNonGetRequestsGetErrorStatuses) {
  ScopedObs off(false);
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.start(0, [](const std::string&) {
    obs::HttpResponse response;
    response.body = "ok\n";
    return response;
  }));
  const std::string post =
      raw_exchange(exporter.port(), "POST /metrics HTTP/1.0\r\n\r\n", 5.0);
  EXPECT_EQ(post.compare(0, 12, "HTTP/1.0 405"), 0) << post;
  const std::string garbage = raw_exchange(exporter.port(), "\r\n\r\n", 5.0);
  EXPECT_EQ(garbage.compare(0, 12, "HTTP/1.0 400"), 0) << garbage;
  exporter.stop();
}

TEST(HttpServing, FlightRecorderEndpointServesRing) {
  // The serve-side route: /flightrecorder/<label> returns the ring as
  // ndjson, unknown labels 404. (pbpair serve wires exactly this handler;
  // the test pins the exporter/recorder integration.)
  ScopedObs off(false);
  obs::FlightRecorder* ring =
      obs::FlightRegistry::global().create("endpointtest", 8);
  ring->record(obs::FlightEvent::kFrameEncoded, 0, 100, 5);
  ring->record(obs::FlightEvent::kFrameLost, 1, 2, 4);

  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.start(0, [](const std::string& path) {
    obs::HttpResponse response;
    if (path.compare(0, 16, "/flightrecorder/") == 0) {
      obs::FlightRecorder* r =
          obs::FlightRegistry::global().find(path.substr(16));
      if (r == nullptr) {
        response.status = 404;
        response.body = "unknown session\n";
      } else {
        response.content_type = "application/x-ndjson";
        response.body = r->dump_jsonl();
      }
    } else {
      response.status = 404;
      response.body = "not found\n";
    }
    return response;
  }));

  std::string body;
  int status = 0;
  ASSERT_TRUE(obs::http_get("127.0.0.1", exporter.port(),
                            "/flightrecorder/endpointtest", &body, &status));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, ring->dump_jsonl());
  EXPECT_NE(body.find("\"event\":\"frame_lost\""), std::string::npos);

  ASSERT_TRUE(obs::http_get("127.0.0.1", exporter.port(),
                            "/flightrecorder/ghost", &body, &status));
  EXPECT_EQ(status, 404);
  exporter.stop();
}

}  // namespace
}  // namespace pbpair
