// Tests for RTCP receiver reports and the trace-driven loss model.
#include <gtest/gtest.h>

#include "net/channel.h"
#include "net/loss_model.h"
#include "net/rtcp.h"

namespace pbpair::net {
namespace {

TEST(Rtcp, SerializeParseRoundTrip) {
  ReceiverReport rr;
  rr.reporter_ssrc = 0x11223344;
  rr.reportee_ssrc = 0x50425041;
  rr.fraction_lost = 64;  // 25%
  rr.cumulative_lost = 1234;
  rr.highest_sequence = 55555;
  auto wire = serialize_receiver_report(rr);
  EXPECT_EQ(wire.size(), 32u);
  ReceiverReport back;
  ASSERT_TRUE(parse_receiver_report(wire, &back));
  EXPECT_EQ(back.reporter_ssrc, rr.reporter_ssrc);
  EXPECT_EQ(back.reportee_ssrc, rr.reportee_ssrc);
  EXPECT_EQ(back.fraction_lost, rr.fraction_lost);
  EXPECT_EQ(back.cumulative_lost, rr.cumulative_lost);
  EXPECT_EQ(back.highest_sequence, rr.highest_sequence);
  EXPECT_NEAR(back.fraction_lost_as_double(), 0.25, 1e-9);
}

TEST(Rtcp, ParseRejectsMalformedInput) {
  ReceiverReport rr;
  EXPECT_FALSE(parse_receiver_report({}, &rr));
  std::vector<std::uint8_t> short_wire(16, 0);
  EXPECT_FALSE(parse_receiver_report(short_wire, &rr));
  ReceiverReport good;
  auto wire = serialize_receiver_report(good);
  wire[0] = 0;  // wrong version
  EXPECT_FALSE(parse_receiver_report(wire, &rr));
  wire = serialize_receiver_report(good);
  wire[1] = 200;  // SR, not RR
  EXPECT_FALSE(parse_receiver_report(wire, &rr));
}

TEST(Rtcp, BuilderComputesIntervalFraction) {
  PlrEstimator estimator;
  ReceiverReportBuilder builder(1, 2);

  // Interval 1: 9 received, 2 lost => fraction 2/11.
  for (int i = 0; i < 4; ++i) estimator.on_packet_received(i);
  estimator.on_packet_received(6);  // 4, 5 lost
  for (int i = 7; i < 11; ++i) estimator.on_packet_received(i);
  ReceiverReport rr1 = builder.build(estimator, 10);
  EXPECT_EQ(rr1.cumulative_lost, 2u);
  EXPECT_NEAR(rr1.fraction_lost_as_double(), 2.0 / 11.0, 0.005);

  // Interval 2: all received => fraction 0, cumulative unchanged.
  for (int i = 11; i < 21; ++i) estimator.on_packet_received(i);
  ReceiverReport rr2 = builder.build(estimator, 20);
  EXPECT_EQ(rr2.cumulative_lost, 2u);
  EXPECT_EQ(rr2.fraction_lost, 0);
}

TEST(Rtcp, FeedbackLoopOverSerializedReports) {
  // Receiver measures, serializes; sender parses and learns the loss rate.
  BernoulliPacketLoss loss(0.2, 31);
  Channel channel(&loss);
  PlrEstimator estimator(1000);
  ReceiverReportBuilder builder(7, 8);
  std::uint16_t seq = 0;
  for (int i = 0; i < 3000; ++i) {
    Packet p;
    p.header.sequence = seq++;
    p.header.timestamp = i;
    auto delivered = channel.transmit({p});
    for (const Packet& d : delivered) {
      estimator.on_packet_received(d.header.sequence);
    }
  }
  auto wire = serialize_receiver_report(builder.build(estimator, seq - 1));
  ReceiverReport at_sender;
  ASSERT_TRUE(parse_receiver_report(wire, &at_sender));
  EXPECT_NEAR(at_sender.fraction_lost_as_double(), 0.2, 0.04);
}

TEST(TraceLoss, ReplaysTheTraceExactly) {
  TraceLoss loss({true, false, false, true});
  Packet p;
  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_TRUE(loss.should_drop(p));
    EXPECT_FALSE(loss.should_drop(p));
    EXPECT_FALSE(loss.should_drop(p));
    EXPECT_TRUE(loss.should_drop(p));
  }
  loss.reset();
  EXPECT_TRUE(loss.should_drop(p));
}

}  // namespace
}  // namespace pbpair::net
