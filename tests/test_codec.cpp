// Encoder/decoder integration tests: bitstream round trips, reconstruction
// lockstep, skip/intra/inter modes, GOB structure, robustness to loss.
#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "video/metrics.h"
#include "video/sequence.h"

namespace pbpair::codec {
namespace {

EncoderConfig test_config(int qp = 8) {
  EncoderConfig config;
  config.qp = qp;
  return config;
}

TEST(Encoder, FirstFrameIsIntra) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(0));
  EXPECT_EQ(frame.type, FrameType::kIntra);
  EXPECT_EQ(frame.intra_mb_count(), 99);
  EXPECT_EQ(frame.mb_cols, 11);
  EXPECT_EQ(frame.mb_rows, 9);
  EXPECT_EQ(frame.gob_offsets.size(), 9u);
}

TEST(Encoder, SubsequentFramesAreInter) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  encoder.encode_frame(seq.frame_at(0));
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(1));
  EXPECT_EQ(frame.type, FrameType::kInter);
  EXPECT_LT(frame.intra_mb_count(), 99);
}

TEST(Encoder, PFramesAreSmallerThanIFrames) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  EncodedFrame i_frame = encoder.encode_frame(seq.frame_at(0));
  EncodedFrame p_frame = encoder.encode_frame(seq.frame_at(1));
  EXPECT_LT(p_frame.size_bytes() * 2, i_frame.size_bytes());
}

TEST(Encoder, StaticContentProducesSkips) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  encoder.encode_frame(seq.frame_at(0));
  encoder.encode_frame(seq.frame_at(1));
  // Akiyo's background is pixel-static: a healthy share of MBs skip.
  EXPECT_GT(encoder.ops().skip_mbs, 30u);
}

TEST(Encoder, GobOffsetsAreMonotoneAndAligned) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(0));
  for (std::size_t g = 1; g < frame.gob_offsets.size(); ++g) {
    EXPECT_GT(frame.gob_offsets[g], frame.gob_offsets[g - 1]);
  }
  EXPECT_LT(frame.gob_offsets.back(), frame.bytes.size());
  // Each GOB starts with its row index (the sync byte).
  for (std::size_t g = 0; g < frame.gob_offsets.size(); ++g) {
    EXPECT_EQ(frame.bytes[frame.gob_offsets[g]], g);
  }
}

TEST(Encoder, MeterssFrameAndMbCounts) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  for (int i = 0; i < 3; ++i) encoder.encode_frame(seq.frame_at(i));
  EXPECT_EQ(encoder.ops().frames, 3u);
  EXPECT_EQ(encoder.ops().total_mbs(), 3u * 99u);
}

TEST(Encoder, ResetRestartsSequence) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  EncodedFrame first = encoder.encode_frame(seq.frame_at(0));
  encoder.encode_frame(seq.frame_at(1));
  encoder.reset();
  EncodedFrame again = encoder.encode_frame(seq.frame_at(0));
  EXPECT_EQ(again.type, FrameType::kIntra);
  EXPECT_EQ(first.bytes, again.bytes);  // bit-identical restart
}

TEST(Encoder, DeterministicAcrossInstances) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  NoRefreshPolicy p1, p2;
  Encoder e1(test_config(), &p1);
  Encoder e2(test_config(), &p2);
  for (int i = 0; i < 4; ++i) {
    EncodedFrame f1 = e1.encode_frame(seq.frame_at(i));
    EncodedFrame f2 = e2.encode_frame(seq.frame_at(i));
    ASSERT_EQ(f1.bytes, f2.bytes) << "frame " << i;
  }
}

TEST(Encoder, PerMbBitsSumToFrameSize) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(0));
  std::uint64_t mb_bits = 0;
  for (const MbEncodeRecord& r : frame.mb_records) mb_bits += r.bits;
  // Frame bits = picture header + 9 GOB headers + MB bits + alignment pad.
  std::uint64_t total_bits = frame.bytes.size() * 8;
  EXPECT_GE(total_bits, mb_bits);
  EXPECT_LE(total_bits - mb_bits, 16u + 9u * 16u);  // headers + padding only
}

// --- Decoder lockstep ---

class CodecRoundTrip
    : public ::testing::TestWithParam<video::SequenceKind> {};

TEST_P(CodecRoundTrip, LosslessChannelMatchesEncoderReconstruction) {
  // The load-bearing invariant of the whole experiment design: over a
  // lossless channel the decoder reproduces the encoder's reconstruction
  // loop BIT-EXACTLY, so any divergence in the lossy experiments is due to
  // loss, not codec drift.
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  Decoder decoder(DecoderConfig{});
  video::SyntheticSequence seq = video::make_paper_sequence(GetParam());
  for (int i = 0; i < 6; ++i) {
    EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
    const video::YuvFrame& decoded = decoder.decode_frame(frame);
    ASSERT_EQ(decoded, encoder.reconstructed()) << "frame " << i;
  }
  EXPECT_EQ(decoder.concealed_mbs(), 0u);
}

TEST_P(CodecRoundTrip, QualityIsReasonableAtQp8) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(8), &policy);
  Decoder decoder(DecoderConfig{});
  video::SyntheticSequence seq = video::make_paper_sequence(GetParam());
  double worst_psnr = 99.0;
  for (int i = 0; i < 6; ++i) {
    video::YuvFrame original = seq.frame_at(i);
    EncodedFrame frame = encoder.encode_frame(original);
    const video::YuvFrame& decoded = decoder.decode_frame(frame);
    worst_psnr = std::min(worst_psnr, video::psnr_luma(original, decoded));
  }
  EXPECT_GT(worst_psnr, 28.0);
}

INSTANTIATE_TEST_SUITE_P(Sequences, CodecRoundTrip,
                         ::testing::Values(video::SequenceKind::kAkiyoLike,
                                           video::SequenceKind::kForemanLike,
                                           video::SequenceKind::kGardenLike));

TEST(Codec, HigherQpGivesSmallerFilesAndLowerQuality) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  std::uint64_t size_lo_qp = 0, size_hi_qp = 0;
  double psnr_lo_qp = 0, psnr_hi_qp = 0;
  for (int qp : {4, 20}) {
    NoRefreshPolicy policy;
    Encoder encoder(test_config(qp), &policy);
    Decoder decoder(DecoderConfig{});
    std::uint64_t bytes = 0;
    double psnr = 0;
    for (int i = 0; i < 4; ++i) {
      video::YuvFrame original = seq.frame_at(i);
      EncodedFrame frame = encoder.encode_frame(original);
      bytes += frame.size_bytes();
      psnr += video::psnr_luma(original, decoder.decode_frame(frame));
    }
    if (qp == 4) {
      size_lo_qp = bytes;
      psnr_lo_qp = psnr;
    } else {
      size_hi_qp = bytes;
      psnr_hi_qp = psnr;
    }
  }
  EXPECT_LT(size_hi_qp, size_lo_qp);
  EXPECT_LT(psnr_hi_qp, psnr_lo_qp);
}

TEST(Decoder, WhollyLostFrameIsConcealedByRepetition) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  Decoder decoder(DecoderConfig{});
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame f0 = seq.frame_at(0);
  const video::YuvFrame first = decoder.decode_frame(encoder.encode_frame(f0));

  ReceivedFrame lost;
  lost.frame_index = 1;
  lost.any_data = false;
  const video::YuvFrame& concealed = decoder.decode_frame(lost);
  EXPECT_EQ(concealed, first);  // copy-previous concealment
  EXPECT_EQ(decoder.concealed_mbs(), 99u);
}

TEST(Decoder, MissingGobIsConcealedOthersDecode) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  Decoder decoder(DecoderConfig{});
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(0));

  // Deliver every GOB except row 4.
  ReceivedFrame received;
  received.frame_index = 0;
  received.type = frame.type;
  received.qp = frame.qp;
  received.any_data = true;
  for (int g = 0; g < 9; ++g) {
    if (g == 4) continue;
    ReceivedFrame::GobSpan span;
    span.first_gob = g;
    std::size_t begin = frame.gob_offsets[g];
    std::size_t end =
        g + 1 < 9 ? frame.gob_offsets[g + 1] : frame.bytes.size();
    span.bytes.assign(frame.bytes.begin() + begin, frame.bytes.begin() + end);
    received.spans.push_back(std::move(span));
  }
  const video::YuvFrame& decoded = decoder.decode_frame(received);
  EXPECT_EQ(decoder.concealed_mbs(), 11u);  // one QCIF row

  // Rows other than 4 match the encoder's reconstruction exactly.
  const video::YuvFrame& recon = encoder.reconstructed();
  for (int y = 0; y < 144; ++y) {
    if (y >= 64 && y < 80) continue;  // the concealed row
    for (int x = 0; x < 176; ++x) {
      ASSERT_EQ(decoded.y().at(x, y), recon.y().at(x, y))
          << "pixel " << x << "," << y;
    }
  }
}

TEST(Decoder, MultiGobSpanDecodesSequentially) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  Decoder decoder(DecoderConfig{});
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(0));
  // One span with all GOBs == the EncodedFrame convenience overload.
  const video::YuvFrame& decoded = decoder.decode_frame(frame);
  EXPECT_EQ(decoded, encoder.reconstructed());
}

TEST(Decoder, CorruptSpanConcealsFromFailurePoint) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  Decoder decoder(DecoderConfig{});
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(0));

  ReceivedFrame received;
  received.frame_index = 0;
  received.type = frame.type;
  received.qp = frame.qp;
  received.any_data = true;
  ReceivedFrame::GobSpan span;
  span.first_gob = 0;
  span.bytes.assign(frame.bytes.begin() + frame.gob_offsets[0],
                    frame.bytes.end());
  // Corrupt the second GOB's sync byte: rows 1.. are abandoned.
  std::size_t second = frame.gob_offsets[1] - frame.gob_offsets[0];
  span.bytes.mutable_data()[second] = 0xEE;
  received.spans.push_back(std::move(span));

  decoder.decode_frame(received);
  EXPECT_EQ(decoder.concealed_mbs(), 8u * 11u);  // rows 1..8 concealed
}

TEST(Decoder, ResetClearsState) {
  NoRefreshPolicy policy;
  Encoder encoder(test_config(), &policy);
  Decoder decoder(DecoderConfig{});
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  decoder.decode_frame(encoder.encode_frame(seq.frame_at(0)));
  decoder.reset();
  EXPECT_EQ(decoder.concealed_mbs(), 0u);
  EXPECT_EQ(decoder.ops().frames, 0u);
}

TEST(Codec, ErrorPropagatesWithoutRefreshAndStopsWithIntra) {
  // The mechanism the whole paper is about, in miniature: lose frame 1,
  // watch the error persist through inter frames, then clean it with an
  // all-intra frame and watch PSNR snap back to the lossless path.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  class ScriptedIntra final : public RefreshPolicy {
   public:
    const char* name() const override { return "scripted"; }
    bool want_intra_frame(int frame_index) override {
      return frame_index == 0 || frame_index == 6;
    }
  };

  ScriptedIntra policy;
  Encoder encoder(test_config(), &policy);
  Decoder decoder(DecoderConfig{});

  std::vector<double> psnr;
  for (int i = 0; i < 8; ++i) {
    video::YuvFrame original = seq.frame_at(i);
    EncodedFrame frame = encoder.encode_frame(original);
    ReceivedFrame received;
    if (i == 1) {
      received.frame_index = i;
      received.any_data = false;  // frame 1 lost entirely
    } else {
      received = [&] {
        ReceivedFrame r;
        r.frame_index = i;
        r.any_data = true;
        r.type = frame.type;
        r.qp = frame.qp;
        ReceivedFrame::GobSpan span;
        span.first_gob = 0;
        span.bytes.assign(frame.bytes.begin() + frame.gob_offsets[0],
                          frame.bytes.end());
        r.spans.push_back(std::move(span));
        return r;
      }();
    }
    psnr.push_back(video::psnr_luma(original, decoder.decode_frame(received)));
  }
  // Frames 2..5: error propagated (PSNR well below the clean frame 0).
  for (int i = 2; i <= 5; ++i) EXPECT_LT(psnr[i], psnr[0] - 2.0) << i;
  // Frame 6 is an I-frame: full recovery to intra quality.
  EXPECT_GT(psnr[6], psnr[5] + 3.0);
  EXPECT_GT(psnr[7], psnr[5]);
}

}  // namespace
}  // namespace pbpair::codec
