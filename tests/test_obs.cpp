// Observability layer tests: registry/trace units, exporter validity, the
// bench-regression comparator, and the layer's load-bearing invariant —
// enabling tracing must not change a single output byte (bitstreams, sim
// reports, energy figures) and deterministic metrics must be identical at
// any sweep thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "codec/encoder.h"
#include "common/json.h"
#include "net/loss_model.h"
#include "obs/bench_compare.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel_sweep.h"
#include "sim/pipeline.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

// Restores the previous enabled state on scope exit so tests don't leak
// tracing into each other.
class ScopedTracing {
 public:
  explicit ScopedTracing(bool on) : prev_(obs::enabled()) {
    obs::set_enabled(on);
  }
  ~ScopedTracing() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

// Fixture for tests that touch the GLOBAL registry/trace buffer: wipes
// counters, gauges, histograms, and spans on both sides so the tests pass
// in any order and leave nothing behind (reset_all is the satellite API
// for exactly this).
class GlobalObs : public ::testing::Test {
 protected:
  void SetUp() override { obs::Registry::global().reset_all(); }
  void TearDown() override {
    obs::Registry::global().reset_all();
    obs::set_trace_capacity(std::size_t{1} << 20);
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(ObsMetrics, CounterGaugeHistogramBasics) {
  // Counters/histograms are registry-owned handles (their adds land on
  // per-thread shards), so even "bare" metric tests go through a local
  // registry.
  obs::Registry registry;
  obs::Counter& c = registry.counter("basics.count");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);

  obs::Histogram& h = registry.histogram("basics.latency_ns");
  h.observe(100);            // < 256 -> bucket 0
  h.observe(300);            // < 512 -> bucket 1
  h.observe(std::int64_t{1} << 62);  // past every bound -> overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 100 + 300 + (std::int64_t{1} << 62));
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::kBucketCount), 1u);
}

TEST(ObsMetrics, HistogramQuantileReportsBucketUpperBounds) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("quantile.latency_ns");
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_ns(h, 0.99), 0.0) << "empty";

  // 99 observations in the 256..512 bucket, 1 in the 8192..16384 bucket:
  // p50 and p90 report the small bucket's upper bound, p100 the tail's.
  for (int i = 0; i < 99; ++i) h.observe(300);
  h.observe(10000);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_ns(h, 0.50), 512.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_ns(h, 0.90), 512.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile_ns(h, 1.00), 16384.0);

  // Overflow observations report twice the last finite bound — a sentinel
  // for "beyond the instrumented range", not a measurement.
  h.observe(std::int64_t{1} << 62);
  EXPECT_DOUBLE_EQ(
      obs::histogram_quantile_ns(h, 1.00),
      static_cast<double>(
          std::uint64_t{1} << (obs::Histogram::kFirstBucketLog2 +
                               obs::Histogram::kBucketCount)));
}

TEST(ObsMetrics, ShardMergeMatchesSingleRegistryBitForBit) {
  // The tentpole invariant: N threads bumping per-thread shards must merge
  // into EXACTLY the state one thread produces — same counts, same
  // buckets, same rendered bytes — because every reader (snapshot, JSON,
  // Prometheus) sums shards in id order under one lock.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;

  obs::Registry sharded;
  obs::Counter& sc = sharded.counter("merge.count");
  obs::Histogram& sh = sharded.histogram("merge.latency_ns");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sc, &sh, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        sc.add(1);
        sh.observe(static_cast<std::int64_t>((i + std::uint64_t(t)) % 4096));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // One shard per writing thread (the main thread only read).
  EXPECT_EQ(sharded.shard_count(), static_cast<std::size_t>(kThreads));

  obs::Registry single;
  obs::Counter& oc = single.counter("merge.count");
  obs::Histogram& oh = single.histogram("merge.latency_ns");
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      oc.add(1);
      oh.observe(static_cast<std::int64_t>((i + std::uint64_t(t)) % 4096));
    }
  }

  EXPECT_EQ(sc.value(), oc.value());
  EXPECT_EQ(sh.count(), oh.count());
  EXPECT_EQ(sh.sum(), oh.sum());
  for (int b = 0; b <= obs::Histogram::kBucketCount; ++b) {
    EXPECT_EQ(sh.bucket(b), oh.bucket(b)) << "bucket " << b;
  }
  EXPECT_EQ(sharded.to_json(false), single.to_json(false));
  EXPECT_EQ(sharded.to_json(true), single.to_json(true));

  // reset() zeroes every shard, not just the merged view.
  sharded.reset();
  EXPECT_EQ(sc.value(), 0u);
  EXPECT_EQ(sh.count(), 0u);
}

TEST(ObsMetrics, RegistryReferencesAreStableAcrossLookups) {
  obs::Registry registry;
  obs::Counter& first = registry.counter("stable.test");
  registry.counter("stable.other").add(7);
  obs::Counter& second = registry.counter("stable.test");
  EXPECT_EQ(&first, &second);
  first.add(3);
  EXPECT_EQ(second.value(), 3u);
  registry.reset();
  EXPECT_EQ(first.value(), 0u);            // zeroed, not destroyed
  EXPECT_EQ(&registry.counter("stable.test"), &first);
}

TEST(ObsMetrics, JsonIsSortedAndDeterministicModeStripsTimingMetrics) {
  obs::Registry registry;
  registry.counter("zeta.count").add(2);
  registry.counter("alpha.count").add(1);
  registry.counter("alpha.busy_ns").add(12345);  // *_ns: timing-valued
  registry.gauge("some.ratio").set(0.5);
  registry.histogram("some.latency_ns").observe(400);

  common::JsonValue full;
  std::string error;
  ASSERT_TRUE(common::JsonValue::parse(registry.to_json(false), &full, &error))
      << error;
  ASSERT_NE(full.find("counters"), nullptr);
  EXPECT_EQ(full.find("counters")->number_at("alpha.count", -1), 1.0);
  EXPECT_EQ(full.find("counters")->number_at("alpha.busy_ns", -1), 12345.0);
  EXPECT_EQ(full.find("gauges")->number_at("some.ratio", -1), 0.5);
  const common::JsonValue* hist =
      full.find("histograms")->find("some.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_at("count", -1), 1.0);
  EXPECT_EQ(hist->number_at("sum_ns", -1), 400.0);
  EXPECT_EQ(hist->find("buckets")->size(),
            static_cast<std::size_t>(obs::Histogram::kBucketCount + 1));

  common::JsonValue det;
  ASSERT_TRUE(
      common::JsonValue::parse(registry.to_json(true), &det, &error))
      << error;
  EXPECT_EQ(det.find("counters")->number_at("zeta.count", -1), 2.0);
  EXPECT_EQ(det.find("counters")->find("alpha.busy_ns"), nullptr);
  EXPECT_EQ(det.find("gauges"), nullptr);
  EXPECT_EQ(det.find("histograms"), nullptr);

  // Sorted emission: "alpha.count" appears before "zeta.count" in the raw
  // text, so two identically-populated registries emit identical bytes.
  std::string text = registry.to_json(true);
  EXPECT_LT(text.find("alpha.count"), text.find("zeta.count"));
}

TEST_F(GlobalObs, ResetAllClearsCountersGaugesHistogramsAndSpans) {
  ScopedTracing tracing(true);
  obs::counter("reset.count").add(5);
  obs::gauge("reset.ratio").set(0.5);
  obs::histogram("reset.latency_ns").observe(300);
  obs::record_span("reset.span", 0, 10);
  EXPECT_EQ(obs::trace_span_count(), 1u);

  obs::Registry::global().reset_all();
  EXPECT_EQ(obs::counter("reset.count").value(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("reset.ratio").value(), 0.0);
  EXPECT_EQ(obs::histogram("reset.latency_ns").count(), 0u);
  EXPECT_EQ(obs::trace_span_count(), 0u);
}

TEST_F(GlobalObs, SnapshotCopiesAllMetricKindsSorted) {
  obs::counter("snap.zeta").add(2);
  obs::counter("snap.alpha").add(1);
  obs::gauge("snap.ratio").set(0.25);
  obs::histogram("snap.latency_ns").observe(300);

  obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "snap.alpha");  // sorted
  EXPECT_EQ(snap.counters[1].first, "snap.zeta");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum_ns, 300);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  ScopedTracing tracing(false);
  obs::clear_trace();
  {
    obs::ScopedSpan span("test.disabled");
  }
  obs::record_span("test.disabled", 0, 10);
  EXPECT_EQ(obs::trace_span_count(), 0u);
}

TEST(ObsTrace, ChromeExportIsValidTraceEventJson) {
  ScopedTracing tracing(true);
  obs::clear_trace();
  obs::set_thread_name("test-main");
  {
    obs::ScopedSpan span("test.outer", 7, "frame");
    obs::record_span("test.inner", obs::trace_now_ns(), 1000);
  }
  ASSERT_EQ(obs::trace_span_count(), 2u);

  const std::string path = temp_path("trace_test.json");
  ASSERT_TRUE(obs::write_chrome_trace(path));
  common::JsonValue doc;
  std::string error;
  ASSERT_TRUE(common::parse_json_file(path, &doc, &error)) << error;
  const common::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int metadata = 0, durations = 0;
  bool saw_outer_arg = false;
  for (const common::JsonValue& event : events->items()) {
    const std::string& ph = event.string_at("ph");
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.string_at("name"), "thread_name");
    } else if (ph == "X") {
      ++durations;
      EXPECT_GE(event.number_at("dur", -1), 0.0);
      if (event.string_at("name") == "test.outer") {
        const common::JsonValue* args = event.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->number_at("frame", -1), 7.0);
        saw_outer_arg = true;
      }
    }
  }
  EXPECT_GE(metadata, 1);
  EXPECT_EQ(durations, 2);
  EXPECT_TRUE(saw_outer_arg);
  std::remove(path.c_str());
}

TEST_F(GlobalObs, ChromeExportEscapesHostileSpanAndThreadNames) {
  ScopedTracing tracing(true);
  obs::set_thread_name("evil\"thread\\name\nwith\tcontrol");
  // Span names must be string literals (they are stored by pointer); this
  // one carries every class of character the exporter must escape.
  obs::record_span("span\"with\\quotes\nand\x01" "control", 0, 10);
  ASSERT_EQ(obs::trace_span_count(), 1u);

  const std::string path = temp_path("trace_hostile.json");
  ASSERT_TRUE(obs::write_chrome_trace(path));
  common::JsonValue doc;
  std::string error;
  ASSERT_TRUE(common::parse_json_file(path, &doc, &error))
      << "hostile names must not break the JSON: " << error;
  bool saw_span = false, saw_thread = false;
  for (const common::JsonValue& event : doc.find("traceEvents")->items()) {
    if (event.string_at("ph") == "X" &&
        event.string_at("name") == "span\"with\\quotes\nand\x01" "control") {
      saw_span = true;
    }
    if (event.string_at("ph") == "M") {
      const common::JsonValue* args = event.find("args");
      if (args != nullptr &&
          args->string_at("name") == "evil\"thread\\name\nwith\tcontrol") {
        saw_thread = true;
      }
    }
  }
  EXPECT_TRUE(saw_span);   // round-trips through escape + parse
  EXPECT_TRUE(saw_thread);
  std::remove(path.c_str());
}

TEST_F(GlobalObs, SpanBufferOverflowDropsAndCounts) {
  ScopedTracing tracing(true);
  obs::set_trace_capacity(4);
  for (int i = 0; i < 10; ++i) obs::record_span("overflow.span", i, 1);
  EXPECT_EQ(obs::trace_span_count(), 4u);  // buffer stays bounded
  EXPECT_EQ(obs::counter("obs.trace.dropped").value(), 6u);

  // The exported trace still writes (truncated, not corrupt).
  const std::string path = temp_path("trace_overflow.json");
  ASSERT_TRUE(obs::write_chrome_trace(path));
  common::JsonValue doc;
  ASSERT_TRUE(common::parse_json_file(path, &doc));
  std::remove(path.c_str());
}

TEST(ObsInvariant, TracingDoesNotChangeEncoderBitstream) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  const int frames = 6;

  auto encode_all = [&seq, frames] {
    codec::EncoderConfig config;
    config.qp = 10;
    codec::NoRefreshPolicy policy;
    codec::Encoder encoder(config, &policy);
    std::vector<std::vector<std::uint8_t>> streams;
    for (int i = 0; i < frames; ++i) {
      streams.push_back(encoder.encode_frame(seq.frame_at(i)).bytes);
    }
    return streams;
  };

  std::vector<std::vector<std::uint8_t>> off, on;
  {
    ScopedTracing tracing(false);
    off = encode_all();
  }
  {
    ScopedTracing tracing(true);
    obs::clear_trace();
    on = encode_all();
    EXPECT_GT(obs::trace_span_count(), 0u);  // tracing really was on
  }
  ASSERT_EQ(off.size(), on.size());
  for (int i = 0; i < frames; ++i) {
    EXPECT_EQ(off[static_cast<std::size_t>(i)], on[static_cast<std::size_t>(i)])
        << "frame " << i << " bitstream changed with tracing enabled";
  }
}

// Everything a report is built from, rendered with %.17g so a single bit
// of drift fails the comparison.
std::string digest(const sim::PipelineResult& r) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "%llu %.17g %llu %llu %llu %.17g %.17g\n",
                static_cast<unsigned long long>(r.total_bytes), r.avg_psnr_db,
                static_cast<unsigned long long>(r.total_bad_pixels),
                static_cast<unsigned long long>(r.total_intra_mbs),
                static_cast<unsigned long long>(r.concealed_mbs),
                r.encode_energy.total_j(), r.tx_energy_j);
  out += buf;
  for (const sim::FrameTrace& f : r.frames) {
    std::snprintf(buf, sizeof(buf), "%d %zu %d %d %.17g %llu\n", f.index,
                  f.bytes, f.intra_mbs, f.lost ? 1 : 0, f.psnr_db,
                  static_cast<unsigned long long>(f.bad_pixels));
    out += buf;
  }
  return out;
}

sim::PipelineConfig small_pipeline_config(int frames) {
  sim::PipelineConfig config;
  config.frames = frames;
  config.encoder.qp = 10;
  config.encoder.search.range = 4;
  return config;
}

TEST(ObsInvariant, TracingDoesNotChangePipelineReportOrEnergy) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.9;
  pbpair.plr = 0.10;
  sim::PipelineConfig config = small_pipeline_config(8);

  auto run_once = [&] {
    net::UniformFrameLoss loss(0.10, /*seed=*/2005);
    return sim::run_pipeline(seq, sim::SchemeSpec::pbpair(pbpair), &loss,
                             config);
  };

  std::string off_digest, on_digest;
  {
    ScopedTracing tracing(false);
    off_digest = digest(run_once());
  }
  {
    ScopedTracing tracing(true);
    obs::clear_trace();
    on_digest = digest(run_once());
    EXPECT_GT(obs::trace_span_count(), 0u);
  }
  EXPECT_EQ(off_digest, on_digest);
}

TEST_F(GlobalObs, DeterministicMetricsIdenticalAt1_2_8SweepThreads) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  std::vector<video::YuvFrame> clip;
  for (int i = 0; i < 8; ++i) clip.push_back(seq.frame_at(i));

  std::vector<sim::SweepTask> tasks;
  for (int t = 0; t < 5; ++t) {
    sim::SweepTask task;
    task.scheme = t % 2 == 0 ? sim::SchemeSpec::gop(3) : sim::SchemeSpec::air(24);
    task.config = small_pipeline_config(static_cast<int>(clip.size()));
    task.source = [&clip](int i) { return clip[static_cast<std::size_t>(i)]; };
    task.make_loss = [] {
      return std::make_unique<net::UniformFrameLoss>(0.10, /*seed=*/2005);
    };
    tasks.push_back(std::move(task));
  }

  ScopedTracing tracing(true);
  std::string baseline;
  for (int threads : {1, 2, 8}) {
    obs::Registry::global().reset();
    obs::clear_trace();
    sim::SweepOptions options;
    options.threads = threads;
    sim::run_parallel_sweep(tasks, options);
    std::string metrics = obs::Registry::global().to_json(/*deterministic=*/true);
    if (threads == 1) {
      baseline = metrics;
      // The deterministic output must actually contain workload counters.
      EXPECT_NE(baseline.find("encoder.frames"), std::string::npos);
      EXPECT_NE(baseline.find("sweep.tasks"), std::string::npos);
      EXPECT_NE(baseline.find("net.packets_sent"), std::string::npos);
      EXPECT_EQ(baseline.find("_ns"), std::string::npos);
    } else {
      EXPECT_EQ(baseline, metrics) << "thread count " << threads;
    }
  }
  obs::Registry::global().reset();
}

TEST(ObsPipeline, FrameTraceJsonlIsDeterministicAndParses) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  sim::PipelineConfig config = small_pipeline_config(5);
  const std::string path = temp_path("frame_trace.jsonl");
  config.frame_trace_path = path;

  auto run_once = [&] {
    net::UniformFrameLoss loss(0.20, /*seed=*/7);
    sim::run_pipeline(seq, sim::SchemeSpec::gop(3), &loss, config);
    return read_file(path);
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_EQ(first, second);  // no clocks leak into the frame trace

  std::istringstream lines(first);
  std::string line;
  int rows = 0;
  bool saw_header = false;
  while (std::getline(lines, line)) {
    common::JsonValue row;
    std::string error;
    ASSERT_TRUE(common::JsonValue::parse(line, &row, &error)) << error;
    if (!saw_header) {
      // First line is the header: scheme label, seed, and geometry.
      saw_header = true;
      const common::JsonValue* header = row.find("header");
      ASSERT_NE(header, nullptr);
      EXPECT_EQ(header->string_at("scheme"), "GOP-3");
      EXPECT_NE(header->find("seed"), nullptr);
      EXPECT_EQ(header->number_at("width", -1), config.encoder.width);
      EXPECT_EQ(header->number_at("height", -1), config.encoder.height);
      EXPECT_EQ(header->number_at("frames", -1), config.frames);
      continue;
    }
    EXPECT_EQ(row.number_at("frame", -1), rows);
    EXPECT_NE(row.find("type"), nullptr);
    EXPECT_NE(row.find("bytes"), nullptr);
    EXPECT_NE(row.find("psnr_db"), nullptr);
    EXPECT_NE(row.find("lost"), nullptr);
    ++rows;
  }
  EXPECT_TRUE(saw_header);
  EXPECT_EQ(rows, config.frames);
  std::remove(path.c_str());
}

TEST(BenchCompare, PassesWithinThresholdFailsBeyondIt) {
  const char* baseline_text = R"({"kernels": [
      {"name": "sad_16x16", "scalar_ns": 100.0, "sse2_ns": 40.0},
      {"name": "dct_8x8", "scalar_ns": 200.0}]})";
  const char* current_text = R"({"kernels": [
      {"name": "sad_16x16", "scalar_ns": 110.0, "sse2_ns": 70.0},
      {"name": "dct_8x8", "scalar_ns": 190.0}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::BenchComparison result =
      obs::compare_bench_reports(baseline, current, 0.25);
  EXPECT_FALSE(result.ok());  // sse2 went 40 -> 70: +75%
  ASSERT_EQ(result.deltas.size(), 3u);
  int regressions = 0;
  for (const obs::BenchDelta& d : result.deltas) {
    if (d.regression) {
      ++regressions;
      EXPECT_EQ(d.kernel, "sad_16x16");
      EXPECT_EQ(d.field, "sse2_ns");
      EXPECT_NEAR(d.ratio(), 1.75, 1e-9);
    }
  }
  EXPECT_EQ(regressions, 1);

  // A generous threshold accepts the same pair.
  EXPECT_TRUE(obs::compare_bench_reports(baseline, current, 1.0).ok());
}

TEST(BenchCompare, MissingKernelIsAFailureMissingFieldIsNot) {
  const char* baseline_text = R"({"kernels": [
      {"name": "sad_16x16", "scalar_ns": 100.0, "avx2_ns": 20.0},
      {"name": "quant_block", "scalar_ns": 50.0}]})";
  // avx2_ns absent (machine without AVX2): tolerated. quant_block gone
  // entirely: failure.
  const char* current_text = R"({"kernels": [
      {"name": "sad_16x16", "scalar_ns": 100.0}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::BenchComparison result =
      obs::compare_bench_reports(baseline, current, 0.25);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missing_kernels.size(), 1u);
  EXPECT_EQ(result.missing_kernels[0], "quant_block");
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_FALSE(result.deltas[0].regression);
}

TEST(BenchCompare, FecGatesRecoveryAbsoluteAndEnergyRelative) {
  const char* baseline_text = R"({"fec_rows": [
      {"name": "ge/hybrid/k8m2", "recovery_rate": 0.60, "j_per_frame": 0.010},
      {"name": "iid/fec/k8m1", "recovery_rate": 0.90, "j_per_frame": 0.011}]})";
  // Row 1: recovery fell 0.60 -> 0.20 (beyond a 0.25 absolute drop) while
  // energy improved. Row 2: recovery improved but energy grew +45%.
  const char* current_text = R"({"fec_rows": [
      {"name": "ge/hybrid/k8m2", "recovery_rate": 0.20, "j_per_frame": 0.009},
      {"name": "iid/fec/k8m1", "recovery_rate": 0.95, "j_per_frame": 0.016}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::FecComparison result =
      obs::compare_fec_reports(baseline, current, 0.25);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.deltas.size(), 4u);
  int regressions = 0;
  for (const obs::FecDelta& d : result.deltas) {
    if (!d.regression) continue;
    ++regressions;
    if (d.row == "ge/hybrid/k8m2") {
      EXPECT_EQ(d.field, "recovery_rate");
    } else {
      EXPECT_EQ(d.row, "iid/fec/k8m1");
      EXPECT_EQ(d.field, "j_per_frame");
    }
  }
  EXPECT_EQ(regressions, 2);

  // Generous thresholds accept the same pair.
  EXPECT_TRUE(obs::compare_fec_reports(baseline, current, 0.50).ok());
}

TEST(BenchCompare, FecMissingRowFailsUnknownRowOnlyWarns) {
  const char* baseline_text = R"({"fec_rows": [
      {"name": "ge/pbpair", "recovery_rate": 0.0, "j_per_frame": 0.010},
      {"name": "ge/fec/k4m2", "recovery_rate": 0.7, "j_per_frame": 0.011}]})";
  // ge/fec/k4m2 vanished (failure); ge/hybrid/k4m4 is new (warn-only, so
  // a freshly added operating point cannot fail CI before its baseline
  // row is committed).
  const char* current_text = R"({"fec_rows": [
      {"name": "ge/pbpair", "recovery_rate": 0.0, "j_per_frame": 0.010},
      {"name": "ge/hybrid/k4m4", "recovery_rate": 0.9, "j_per_frame": 0.012}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::FecComparison result =
      obs::compare_fec_reports(baseline, current, 0.25);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missing_rows.size(), 1u);
  EXPECT_EQ(result.missing_rows[0], "ge/fec/k4m2");
  ASSERT_EQ(result.unknown_rows.size(), 1u);
  EXPECT_EQ(result.unknown_rows[0], "ge/hybrid/k4m4");

  // With the missing row restored, the unknown row alone stays green.
  obs::FecComparison unknown_only =
      obs::compare_fec_reports(current, current, 0.25);
  EXPECT_TRUE(unknown_only.ok());
}

TEST(BenchCompare, ObsGatesNsPerOpAndOverheadRatioRelative) {
  const char* baseline_text = R"({"obs_rows": [
      {"name": "bump/t8", "ns_per_op": 10.0, "mops_per_s": 100.0},
      {"name": "pipeline/t2", "overhead_ratio": 1.05, "off_ms": 200.0}]})";
  // bump/t8 ns_per_op grew +80% (regression at 0.5); pipeline/t2's ratio
  // improved, which must never fail.
  const char* current_text = R"({"obs_rows": [
      {"name": "bump/t8", "ns_per_op": 18.0, "mops_per_s": 55.0},
      {"name": "pipeline/t2", "overhead_ratio": 1.01, "off_ms": 900.0}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::ObsComparison result =
      obs::compare_obs_reports(baseline, current, 0.5);
  EXPECT_FALSE(result.ok());
  // Only the gated fields compare: mops_per_s and off_ms never produce
  // deltas, so one row contributes at most two.
  ASSERT_EQ(result.deltas.size(), 2u);
  int regressions = 0;
  for (const obs::ObsDelta& d : result.deltas) {
    if (!d.regression) continue;
    ++regressions;
    EXPECT_EQ(d.row, "bump/t8");
    EXPECT_EQ(d.field, "ns_per_op");
  }
  EXPECT_EQ(regressions, 1);

  // A generous threshold accepts the same pair.
  EXPECT_TRUE(obs::compare_obs_reports(baseline, current, 1.0).ok());
}

TEST(BenchCompare, ObsMissingRowFailsUnknownRowOnlyWarns) {
  const char* baseline_text = R"({"obs_rows": [
      {"name": "bump/t1", "ns_per_op": 10.0},
      {"name": "bump/t8", "ns_per_op": 12.0}]})";
  const char* current_text = R"({"obs_rows": [
      {"name": "bump/t1", "ns_per_op": 10.0},
      {"name": "pipeline/t1", "overhead_ratio": 1.02}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::ObsComparison result =
      obs::compare_obs_reports(baseline, current, 0.5);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missing_rows.size(), 1u);
  EXPECT_EQ(result.missing_rows[0], "bump/t8");
  ASSERT_EQ(result.unknown_rows.size(), 1u);
  EXPECT_EQ(result.unknown_rows[0], "pipeline/t1");
  EXPECT_TRUE(obs::compare_obs_reports(current, current, 0.5).ok());
}

TEST(BenchCompare, SessionsGatesThroughputFloorAndLatencyCeiling) {
  const char* baseline_text = R"({"sessions_rows": [
      {"name": "n8", "sessions_per_sec": 100.0, "frames_per_sec": 2400.0,
       "p50_frame_ms": 2.1, "p99_frame_ms": 4.2},
      {"name": "n256", "sessions_per_sec": 50.0, "frames_per_sec": 600.0,
       "p50_frame_ms": 2.1, "p99_frame_ms": 4.2}]})";
  // n8's throughput collapsed to 40/s (floor breach at threshold 1.0:
  // 100 > 40 * 2) while its p99 improved; n256's p99 tripled (ceiling
  // breach: 12.6 > 4.2 * 2) while its throughput improved. Improvements
  // must never fail, breaches must.
  const char* current_text = R"({"sessions_rows": [
      {"name": "n8", "sessions_per_sec": 40.0, "frames_per_sec": 960.0,
       "p50_frame_ms": 1.0, "p99_frame_ms": 2.1},
      {"name": "n256", "sessions_per_sec": 120.0, "frames_per_sec": 1400.0,
       "p50_frame_ms": 2.1, "p99_frame_ms": 12.6}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::SessionsComparison result =
      obs::compare_sessions_reports(baseline, current, 1.0);
  EXPECT_FALSE(result.ok());
  // Only sessions_per_sec and p99_frame_ms gate: two rows, four deltas.
  ASSERT_EQ(result.deltas.size(), 4u);
  int regressions = 0;
  for (const obs::SessionsDelta& d : result.deltas) {
    if (!d.regression) continue;
    ++regressions;
    if (d.row == "n8") {
      EXPECT_EQ(d.field, "sessions_per_sec");
    } else {
      EXPECT_EQ(d.row, "n256");
      EXPECT_EQ(d.field, "p99_frame_ms");
    }
  }
  EXPECT_EQ(regressions, 2);

  // A threshold wide enough for both movements accepts the same pair.
  EXPECT_TRUE(obs::compare_sessions_reports(baseline, current, 2.5).ok());
  // Identity always passes.
  EXPECT_TRUE(obs::compare_sessions_reports(baseline, baseline, 1.0).ok());
}

TEST(BenchCompare, SessionsMissingRowFailsUnknownRowOnlyWarns) {
  const char* baseline_text = R"({"sessions_rows": [
      {"name": "n8", "sessions_per_sec": 100.0, "p99_frame_ms": 4.2},
      {"name": "n10000", "sessions_per_sec": 30.0, "p99_frame_ms": 8.4}]})";
  // The 10k point vanished (a capacity regression could hide there: FAIL)
  // and a new 1k point appeared (no baseline yet: warn only).
  const char* current_text = R"({"sessions_rows": [
      {"name": "n8", "sessions_per_sec": 100.0, "p99_frame_ms": 4.2},
      {"name": "n1024", "sessions_per_sec": 45.0, "p99_frame_ms": 4.2}]})";
  common::JsonValue baseline, current;
  ASSERT_TRUE(common::JsonValue::parse(baseline_text, &baseline));
  ASSERT_TRUE(common::JsonValue::parse(current_text, &current));

  obs::SessionsComparison result =
      obs::compare_sessions_reports(baseline, current, 1.0);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.missing_rows.size(), 1u);
  EXPECT_EQ(result.missing_rows[0], "n10000");
  ASSERT_EQ(result.unknown_rows.size(), 1u);
  EXPECT_EQ(result.unknown_rows[0], "n1024");
  EXPECT_TRUE(obs::compare_sessions_reports(current, current, 1.0).ok());
}

TEST(Json, ParserHandlesCoreGrammarAndRejectsGarbage) {
  common::JsonValue v;
  std::string error;
  ASSERT_TRUE(common::JsonValue::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "q\"A", "n": null})",
      &v, &error))
      << error;
  EXPECT_EQ(v.find("a")->size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("a")->at(2).as_number(), -300.0);
  EXPECT_TRUE(v.find("b")->find("nested")->as_bool());
  EXPECT_EQ(v.string_at("s"), "q\"A");
  EXPECT_TRUE(v.find("n")->is_null());

  EXPECT_FALSE(common::JsonValue::parse("{\"unterminated\": ", &v));
  EXPECT_FALSE(common::JsonValue::parse("[1, 2,]", &v));
  EXPECT_FALSE(common::JsonValue::parse("{} trailing", &v));
}

}  // namespace
}  // namespace pbpair
