// Tests for the operation-counting energy model and device profiles.
#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "energy/battery.h"
#include "energy/energy_model.h"
#include "video/sequence.h"

namespace pbpair::energy {
namespace {

TEST(OpCounters, AccumulateAndReset) {
  OpCounters a;
  a.sad_pixel_ops = 100;
  a.dct_blocks = 5;
  a.intra_mbs = 2;
  OpCounters b;
  b.sad_pixel_ops = 50;
  b.inter_mbs = 3;
  a += b;
  EXPECT_EQ(a.sad_pixel_ops, 150u);
  EXPECT_EQ(a.dct_blocks, 5u);
  EXPECT_EQ(a.total_mbs(), 5u);
  a.reset();
  EXPECT_EQ(a.sad_pixel_ops, 0u);
  EXPECT_EQ(a.total_mbs(), 0u);
}

TEST(EnergyModel, ZeroOpsZeroEnergy) {
  OpCounters ops;
  EnergyBreakdown e = encode_energy(ops, ipaq_h5555());
  EXPECT_DOUBLE_EQ(e.total_j(), 0.0);
}

TEST(EnergyModel, BreakdownSumsToTotal) {
  OpCounters ops;
  ops.sad_pixel_ops = 1000000;
  ops.me_invocations = 100;
  ops.dct_blocks = 600;
  ops.idct_blocks = 500;
  ops.quant_coeffs = 38400;
  ops.dequant_coeffs = 38400;
  ops.mc_pixels = 40000;
  ops.bits_written = 80000;
  ops.intra_mbs = 30;
  ops.inter_mbs = 60;
  ops.skip_mbs = 9;
  ops.frames = 1;
  EnergyBreakdown e = encode_energy(ops, ipaq_h5555());
  double sum = e.me_j + e.dct_j + e.idct_j + e.quant_j + e.mc_j + e.vlc_j +
               e.overhead_j;
  EXPECT_DOUBLE_EQ(e.total_j(), sum);
  EXPECT_GT(e.total_j(), 0.0);
}

TEST(EnergyModel, EnergyIsLinearInOps) {
  OpCounters ops;
  ops.sad_pixel_ops = 500000;
  ops.dct_blocks = 300;
  EnergyBreakdown once = encode_energy(ops, ipaq_h5555());
  OpCounters doubled = ops;
  doubled += ops;
  EnergyBreakdown twice = encode_energy(doubled, ipaq_h5555());
  EXPECT_NEAR(twice.total_j(), 2.0 * once.total_j(), 1e-12);
}

TEST(EnergyModel, MeDominatesForTypicalEncode) {
  // The paper's premise: "motion estimation is the most power consuming
  // operation in a predictive video compression algorithm." Verify the
  // model reproduces that for a real encoder run.
  codec::NoRefreshPolicy policy;
  codec::Encoder encoder(codec::EncoderConfig{}, &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  for (int i = 0; i < 10; ++i) encoder.encode_frame(seq.frame_at(i));
  EnergyBreakdown e = encode_energy(encoder.ops(), ipaq_h5555());
  EXPECT_GT(e.me_j, e.dct_j);
  EXPECT_GT(e.me_j, e.idct_j);
  EXPECT_GT(e.me_j, e.quant_j);
  EXPECT_GT(e.me_j, e.vlc_j);
  EXPECT_GT(e.me_j, 0.35 * e.total_j());
}

TEST(EnergyModel, ZaurusCostsMoreThanIpaqForMemoryBoundWork) {
  OpCounters ops;
  ops.sad_pixel_ops = 1000000;
  ops.mc_pixels = 100000;
  double ipaq = encode_energy(ops, ipaq_h5555()).total_j();
  double zaurus = encode_energy(ops, zaurus_sl5600()).total_j();
  EXPECT_GT(zaurus, ipaq);
  EXPECT_NEAR(zaurus / ipaq, 1.18, 0.02);
}

TEST(EnergyModel, ProfilesAreNamed) {
  EXPECT_EQ(ipaq_h5555().name, "iPAQ H5555");
  EXPECT_EQ(zaurus_sl5600().name, "Zaurus SL-5600");
}

TEST(EnergyModel, TxEnergyScalesWithBytes) {
  EXPECT_DOUBLE_EQ(tx_energy_j(0, ipaq_h5555()), 0.0);
  double one_kb = tx_energy_j(1024, ipaq_h5555());
  double two_kb = tx_energy_j(2048, ipaq_h5555());
  EXPECT_NEAR(two_kb, 2.0 * one_kb, 1e-12);
  // ~1.3 uJ/byte: 1 KB should land around 1.3 mJ.
  EXPECT_NEAR(one_kb, 1024 * 1.3e-6, 1e-4);
}

TEST(Battery, DrainsAndClamps) {
  Battery battery(10.0);
  EXPECT_DOUBLE_EQ(battery.capacity_j(), 10.0);
  battery.drain(4.0);
  EXPECT_DOUBLE_EQ(battery.remaining_j(), 6.0);
  EXPECT_DOUBLE_EQ(battery.fraction_remaining(), 0.6);
  EXPECT_FALSE(battery.depleted());
  battery.drain(100.0);
  EXPECT_DOUBLE_EQ(battery.remaining_j(), 0.0);
  EXPECT_TRUE(battery.depleted());
}

}  // namespace
}  // namespace pbpair::energy
