// Tests for the adversarial fault-injection stage (net/fault_injector.h):
// deterministic replay, wire-level honesty (unparseable damage drops the
// packet), stat/counter bookkeeping, pipeline integration with the
// byte-identity guarantee when disabled, and the seeded fuzz harness.
#include <gtest/gtest.h>

#include <optional>

#include "codec/encoder.h"
#include "core/pbpair_policy.h"
#include "net/fault_injector.h"
#include "net/loss_model.h"
#include "net/packetizer.h"
#include "obs/metrics.h"
#include "sim/fuzzer.h"
#include "sim/pipeline.h"
#include "video/sequence.h"

namespace pbpair::net {
namespace {

std::vector<Packet> make_stream(int count, std::size_t payload_size = 200) {
  std::vector<Packet> packets;
  for (int i = 0; i < count; ++i) {
    Packet p;
    p.header.sequence = static_cast<std::uint16_t>(i);
    p.header.timestamp = 42;
    p.header.ssrc = 0x50425041;
    p.header.frame_type = 1;
    p.header.qp = 10;
    p.header.first_gob = static_cast<std::uint8_t>(i);
    p.header.num_gobs = 1;
    p.payload.assign(payload_size, static_cast<std::uint8_t>(i * 3 + 1));
    packets.push_back(std::move(p));
  }
  return packets;
}

std::vector<std::uint8_t> flatten(const std::vector<Packet>& packets) {
  std::vector<std::uint8_t> bytes;
  for (const Packet& p : packets) {
    const std::vector<std::uint8_t> wire = serialize_packet(p);
    bytes.insert(bytes.end(), wire.begin(), wire.end());
  }
  return bytes;
}

TEST(FaultInjectorConfig, EnabledOnlyWithNonzeroProbability) {
  FaultInjectorConfig config;
  EXPECT_FALSE(config.enabled());
  config.max_bit_flips = 3;  // knob alone does not enable
  EXPECT_FALSE(config.enabled());
  config.p_reorder = 0.01;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultInjector, SameSeedSameDamage) {
  FaultInjectorConfig config;
  config.seed = 7;
  config.p_bit_flip = 0.5;
  config.p_truncate = 0.2;
  config.p_header_corrupt = 0.2;
  config.p_duplicate = 0.2;
  config.p_reorder = 0.3;

  FaultInjector a(config);
  FaultInjector b(config);
  auto out_a = a.apply(make_stream(40));
  auto out_b = b.apply(make_stream(40));
  EXPECT_EQ(flatten(out_a), flatten(out_b));
  EXPECT_EQ(a.stats().bits_flipped, b.stats().bits_flipped);
  EXPECT_EQ(a.stats().packets_dropped_unparseable,
            b.stats().packets_dropped_unparseable);
}

TEST(FaultInjector, ResetReplaysIdentically) {
  FaultInjectorConfig config;
  config.seed = 9;
  config.p_bit_flip = 0.4;
  config.p_header_corrupt = 0.3;
  FaultInjector injector(config);
  const auto first = flatten(injector.apply(make_stream(30)));
  const std::uint64_t first_flips = injector.stats().bits_flipped;
  injector.reset();
  EXPECT_EQ(injector.stats().packets_seen, 0u);
  const auto second = flatten(injector.apply(make_stream(30)));
  EXPECT_EQ(first, second);
  EXPECT_EQ(injector.stats().bits_flipped, first_flips);
}

TEST(FaultInjector, DifferentSeedsDamageDifferently) {
  FaultInjectorConfig config;
  config.p_bit_flip = 0.5;
  config.seed = 1;
  FaultInjector a(config);
  config.seed = 2;
  FaultInjector b(config);
  EXPECT_NE(flatten(a.apply(make_stream(40))),
            flatten(b.apply(make_stream(40))));
}

TEST(FaultInjector, BitFlipsStayInPayload) {
  // Pure payload bit-flips must never touch the 16 header bytes, so no
  // packet can become unparseable and headers survive verbatim.
  FaultInjectorConfig config;
  config.p_bit_flip = 1.0;
  FaultInjector injector(config);
  auto out = injector.apply(make_stream(25));
  ASSERT_EQ(out.size(), 25u);
  EXPECT_GT(injector.stats().bits_flipped, 0u);
  EXPECT_EQ(injector.stats().packets_dropped_unparseable, 0u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].header.sequence, i);
    EXPECT_EQ(out[i].header.timestamp, 42u);
  }
}

TEST(FaultInjector, TruncationShrinksOrDrops) {
  FaultInjectorConfig config;
  config.p_truncate = 1.0;
  FaultInjector injector(config);
  const auto in = make_stream(50);
  auto out = injector.apply(in);
  EXPECT_EQ(injector.stats().payloads_truncated, 50u);
  // A cut inside the 16 header bytes destroys the framing => drop.
  EXPECT_EQ(out.size() + injector.stats().packets_dropped_unparseable, 50u);
  for (const Packet& p : out) {
    EXPECT_LT(p.payload.size(), in[0].payload.size());
  }
}

TEST(FaultInjector, DuplicationDeliversTwice) {
  FaultInjectorConfig config;
  config.p_duplicate = 1.0;
  FaultInjector injector(config);
  auto out = injector.apply(make_stream(10));
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(injector.stats().packets_duplicated, 10u);
  for (std::size_t i = 0; i < out.size(); i += 2) {
    EXPECT_EQ(serialize_packet(out[i]), serialize_packet(out[i + 1]));
  }
}

TEST(FaultInjector, ReorderSwapsNeighbours) {
  FaultInjectorConfig config;
  config.p_reorder = 1.0;
  FaultInjector injector(config);
  auto out = injector.apply(make_stream(6));
  ASSERT_EQ(out.size(), 6u);
  EXPECT_GT(injector.stats().packets_reordered, 0u);
  // Every packet still present exactly once.
  std::vector<int> seen(6, 0);
  for (const Packet& p : out) seen[p.header.sequence] += 1;
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(FaultInjector, StatsFlowIntoObsCounters) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const std::uint64_t flips_before =
      obs::counter("net.fault.bits_flipped").value();
  const std::uint64_t trunc_before =
      obs::counter("net.fault.payloads_truncated").value();

  FaultInjectorConfig config;
  config.p_bit_flip = 1.0;
  config.p_truncate = 0.5;
  FaultInjector injector(config);
  injector.apply(make_stream(30));

  EXPECT_EQ(obs::counter("net.fault.bits_flipped").value() - flips_before,
            injector.stats().bits_flipped);
  EXPECT_EQ(
      obs::counter("net.fault.payloads_truncated").value() - trunc_before,
      injector.stats().payloads_truncated);
  obs::set_enabled(was_enabled);
}

// --- pipeline integration ------------------------------------------------

sim::PipelineResult run_with(const std::optional<FaultInjectorConfig>& faults,
                             int frames = 12) {
  video::SyntheticSequence sequence =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.9;
  pbpair.plr = 0.1;
  sim::SchemeSpec scheme = sim::SchemeSpec::pbpair(pbpair);
  UniformFrameLoss loss(0.1, 2005);
  sim::PipelineConfig config;
  config.frames = frames;
  config.faults = faults;
  return sim::run_pipeline(sequence, scheme, &loss, config);
}

std::vector<double> frame_psnrs(const sim::PipelineResult& r) {
  std::vector<double> psnrs;
  for (const sim::FrameTrace& t : r.frames) psnrs.push_back(t.psnr_db);
  return psnrs;
}

TEST(FaultInjectorPipeline, AllZeroConfigIsByteIdenticalToUnset) {
  const sim::PipelineResult base = run_with(std::nullopt);
  const sim::PipelineResult zeroed = run_with(FaultInjectorConfig{});
  EXPECT_EQ(frame_psnrs(base), frame_psnrs(zeroed));
  EXPECT_EQ(base.total_bytes, zeroed.total_bytes);
  EXPECT_EQ(base.total_bad_pixels, zeroed.total_bad_pixels);
  EXPECT_EQ(base.concealed_mbs, zeroed.concealed_mbs);
}

TEST(FaultInjectorPipeline, DamageIsDeterministicAndVisible) {
  FaultInjectorConfig faults;
  faults.seed = 3;
  faults.p_bit_flip = 0.3;
  faults.p_truncate = 0.1;
  faults.p_header_corrupt = 0.1;
  const sim::PipelineResult a = run_with(faults);
  const sim::PipelineResult b = run_with(faults);
  EXPECT_EQ(frame_psnrs(a), frame_psnrs(b));
  EXPECT_EQ(a.total_bad_pixels, b.total_bad_pixels);

  const sim::PipelineResult clean = run_with(std::nullopt);
  // Sender-side stays untouched; receiver-side quality degrades.
  EXPECT_EQ(a.total_bytes, clean.total_bytes);
  EXPECT_GT(a.total_bad_pixels, clean.total_bad_pixels);
}

// --- fuzz harness --------------------------------------------------------

TEST(Fuzzer, SmokeRunCoversAllTargets) {
  sim::FuzzOptions options;
  options.seed = 11;
  options.iterations = 8;
  sim::FuzzReport report;
  ASSERT_TRUE(sim::run_fuzz(options, &report));
  EXPECT_EQ(report.total_iterations, 8u * 8u);
  EXPECT_EQ(report.iterations_per_target.size(), 8u);
  for (const auto& [name, count] : report.iterations_per_target) {
    EXPECT_EQ(count, 8u) << name;
  }
  // Hostile inputs actually exercised the paths: damage got concealed and
  // the parsers rejected garbage.
  EXPECT_GT(report.decoder_concealed_mbs, 0u);
  EXPECT_GT(report.parse_rejects, 0u);
}

TEST(Fuzzer, SingleTargetRunsOnlyThatTarget) {
  sim::FuzzOptions options;
  options.iterations = 5;
  options.target = "packet";
  sim::FuzzReport report;
  ASSERT_TRUE(sim::run_fuzz(options, &report));
  EXPECT_EQ(report.total_iterations, 5u);
  ASSERT_EQ(report.iterations_per_target.size(), 1u);
  EXPECT_EQ(report.iterations_per_target.count("packet"), 1u);
}

TEST(Fuzzer, UnknownTargetIsRejected) {
  sim::FuzzOptions options;
  options.target = "nonsense";
  sim::FuzzReport report;
  EXPECT_FALSE(sim::run_fuzz(options, &report));
  EXPECT_EQ(report.total_iterations, 0u);
}

}  // namespace
}  // namespace pbpair::net
