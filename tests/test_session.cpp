// StreamSession: the stage-composable pipeline (DESIGN.md §9).
//
// The load-bearing test here is ShimMatchesMonolithicReferenceLoop: it
// re-implements the historical run_pipeline() loop verbatim (encoder ->
// packetizer -> channel -> depacketize -> decoder -> metrics, no stages)
// and asserts the session-based shim reproduces it byte-for-byte —
// bitstream, every report field, and the energy joules — so the whole
// existing bench/test corpus doubles as a regression harness for the
// session refactor.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/feedback.h"
#include "net/loss_model.h"
#include "sim/pipeline.h"
#include "sim/session.h"

namespace pbpair::sim {
namespace {

PipelineConfig short_config(int frames = 20) {
  PipelineConfig config;
  config.frames = frames;
  return config;
}

core::PbpairConfig pbpair_config(double th, double plr) {
  core::PbpairConfig c;
  c.intra_th = th;
  c.plr = plr;
  return c;
}

// The pre-session pipeline loop, kept as the byte-identity reference.
struct ReferenceRun {
  std::vector<std::uint8_t> bitstream;  // all encoded frames concatenated
  PipelineResult result;
};

ReferenceRun run_monolithic_reference(const video::SyntheticSequence& seq,
                                      const SchemeSpec& scheme,
                                      net::LossModel* loss,
                                      const PipelineConfig& config) {
  const int mb_cols = config.encoder.width / 16;
  const int mb_rows = config.encoder.height / 16;
  std::unique_ptr<codec::RefreshPolicy> policy =
      make_policy(scheme, mb_cols, mb_rows);
  codec::Encoder encoder(config.encoder, policy.get());
  codec::Decoder decoder(codec::DecoderConfig{
      config.encoder.width, config.encoder.height, config.concealment});
  net::Packetizer packetizer(config.packetizer);
  net::NoLoss no_loss;
  net::Channel channel(loss != nullptr ? loss : &no_loss);
  std::optional<codec::RateController> rate;
  if (config.rate_control.has_value()) rate.emplace(*config.rate_control);

  ReferenceRun run;
  double psnr_sum = 0.0;
  for (int i = 0; i < config.frames; ++i) {
    if (config.pre_frame) config.pre_frame(i, *policy);
    if (rate) encoder.set_qp(rate->qp());
    video::YuvFrame original = seq.frame_at(i);
    codec::EncodedFrame encoded = encoder.encode_frame(original);
    if (rate) {
      rate->on_frame_encoded(encoded.size_bytes(),
                             encoded.type == codec::FrameType::kIntra);
    }
    run.bitstream.insert(run.bitstream.end(), encoded.bytes.begin(),
                         encoded.bytes.end());
    std::vector<net::Packet> packets = packetizer.packetize(encoded);
    std::vector<net::Packet> delivered = channel.transmit(packets);
    codec::ReceivedFrame received = net::depacketize(delivered, i);
    const video::YuvFrame& output = decoder.decode_frame(received);

    FrameTrace trace;
    trace.index = i;
    trace.qp = encoded.qp;
    trace.type = encoded.type;
    trace.bytes = encoded.size_bytes();
    trace.intra_mbs = encoded.intra_mb_count();
    for (const codec::MbEncodeRecord& record : encoded.mb_records) {
      if (record.pre_me_intra) ++trace.pre_me_intra_mbs;
    }
    trace.lost = delivered.size() != packets.size();
    trace.psnr_db = video::psnr_luma(original, output);
    trace.bad_pixels =
        video::bad_pixel_count(original, output, config.bad_pixel_threshold);
    psnr_sum += trace.psnr_db;
    run.result.total_bytes += trace.bytes;
    run.result.total_bad_pixels += trace.bad_pixels;
    run.result.total_intra_mbs += static_cast<std::uint64_t>(trace.intra_mbs);
    run.result.frames.push_back(trace);
  }
  run.result.avg_psnr_db = psnr_sum / config.frames;
  run.result.encoder_ops = encoder.ops();
  run.result.encode_energy = encode_energy(encoder.ops(), *config.profile);
  run.result.channel = channel.stats();
  run.result.tx_energy_j =
      energy::tx_energy_j(channel.stats().bytes_sent, *config.profile);
  run.result.concealed_mbs = decoder.concealed_mbs();
  return run;
}

void expect_results_identical(const PipelineResult& a,
                              const PipelineResult& b) {
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.total_bad_pixels, b.total_bad_pixels);
  EXPECT_EQ(a.total_intra_mbs, b.total_intra_mbs);
  EXPECT_EQ(a.concealed_mbs, b.concealed_mbs);
  EXPECT_DOUBLE_EQ(a.avg_psnr_db, b.avg_psnr_db);
  EXPECT_DOUBLE_EQ(a.encode_energy.total_j(), b.encode_energy.total_j());
  EXPECT_DOUBLE_EQ(a.tx_energy_j, b.tx_energy_j);
  EXPECT_EQ(a.channel.packets_sent, b.channel.packets_sent);
  EXPECT_EQ(a.channel.packets_dropped, b.channel.packets_dropped);
  EXPECT_EQ(a.channel.bytes_sent, b.channel.bytes_sent);
  EXPECT_EQ(a.encoder_ops.sad_pixel_ops, b.encoder_ops.sad_pixel_ops);
  EXPECT_EQ(a.encoder_ops.bits_written, b.encoder_ops.bits_written);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].bytes, b.frames[i].bytes);
    EXPECT_EQ(a.frames[i].intra_mbs, b.frames[i].intra_mbs);
    EXPECT_EQ(a.frames[i].lost, b.frames[i].lost);
    EXPECT_DOUBLE_EQ(a.frames[i].psnr_db, b.frames[i].psnr_db);
    EXPECT_EQ(a.frames[i].bad_pixels, b.frames[i].bad_pixels);
  }
}

TEST(StreamSession, ShimMatchesMonolithicReferenceLoop) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(25);
  SchemeSpec scheme = SchemeSpec::pbpair(pbpair_config(0.9, 0.10));

  net::UniformFrameLoss ref_loss(0.15, /*seed=*/2005);
  ReferenceRun reference =
      run_monolithic_reference(seq, scheme, &ref_loss, config);

  // Session side: same inputs, plus a tap stage collecting the bitstream —
  // the stage API at work on the exact path under test.
  net::UniformFrameLoss session_loss(0.15, /*seed=*/2005);
  StreamSession session([&seq](int i) { return seq.frame_at(i); }, scheme,
                        &session_loss, config);
  std::vector<std::uint8_t> bitstream;
  session.insert_stage_after(
      "encode", {"bitstream-tap", [&bitstream](FrameContext& ctx,
                                               StreamSession&) {
                   bitstream.insert(bitstream.end(), ctx.encoded.bytes.begin(),
                                    ctx.encoded.bytes.end());
                 }});
  session.run_to_end();
  PipelineResult result = session.take_result();

  EXPECT_EQ(bitstream, reference.bitstream);  // bitstream byte-identical
  expect_results_identical(reference.result, result);

  // And run_pipeline (the public shim) agrees with both.
  net::UniformFrameLoss shim_loss(0.15, /*seed=*/2005);
  PipelineResult shim = run_pipeline(seq, scheme, &shim_loss, config);
  expect_results_identical(reference.result, shim);
}

TEST(StreamSession, ShimMatchesReferenceWithRateControlAndHooks) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  PipelineConfig config = short_config(15);
  codec::RateControlConfig rate;
  rate.target_kbps = 96.0;
  rate.initial_qp = 12;
  config.rate_control = rate;
  config.pre_frame = [](int index, codec::RefreshPolicy& policy) {
    if (auto* p = dynamic_cast<core::PbpairPolicy*>(&policy)) {
      p->set_intra_th(index < 8 ? 0.85 : 0.95);
    }
  };
  SchemeSpec scheme = SchemeSpec::pbpair(pbpair_config(0.85, 0.10));

  net::UniformFrameLoss ref_loss(0.10, /*seed=*/7);
  ReferenceRun reference =
      run_monolithic_reference(seq, scheme, &ref_loss, config);
  net::UniformFrameLoss shim_loss(0.10, /*seed=*/7);
  PipelineResult shim = run_pipeline(seq, scheme, &shim_loss, config);
  expect_results_identical(reference.result, shim);
}

TEST(StreamSession, StepAdvancesExactlyOneFrame) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  StreamSession session([&seq](int i) { return seq.frame_at(i); },
                        SchemeSpec::no_resilience(), nullptr,
                        short_config(5));
  EXPECT_FALSE(session.done());
  EXPECT_EQ(session.frames_done(), 0);
  const FrameTrace& first = session.step();
  EXPECT_EQ(first.index, 0);
  EXPECT_EQ(session.frames_done(), 1);
  while (!session.done()) session.step();
  EXPECT_EQ(session.frames_done(), 5);
  PipelineResult result = session.take_result();
  EXPECT_EQ(result.frames.size(), 5u);
}

TEST(StreamSession, ReplaceStageSwapsTheChannel) {
  // Swap "transmit" for a black-hole channel: every frame is lost, the
  // decoder conceals everything — no loop code touched.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  StreamSession session([&seq](int i) { return seq.frame_at(i); },
                        SchemeSpec::no_resilience(), nullptr,
                        short_config(6));
  session.replace_stage("transmit",
                        {"black-hole", [](FrameContext& ctx, StreamSession&) {
                           ctx.delivered.clear();
                         }});
  session.run_to_end();
  PipelineResult result = session.take_result();
  EXPECT_GT(result.concealed_mbs, 0u);
  for (const FrameTrace& f : result.frames) EXPECT_TRUE(f.lost);
}

TEST(StreamSession, InsertAndRemoveStagesByName) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  StreamSession session([&seq](int i) { return seq.frame_at(i); },
                        SchemeSpec::no_resilience(), nullptr,
                        short_config(3));
  int taps = 0;
  session.insert_stage_before("decode",
                              {"tap", [&taps](FrameContext&, StreamSession&) {
                                 ++taps;
                               }});
  ASSERT_EQ(session.stages().size(), 7u);
  session.step();
  EXPECT_EQ(taps, 1);
  session.remove_stage("tap");
  ASSERT_EQ(session.stages().size(), 6u);
  session.run_to_end();
  EXPECT_EQ(taps, 1);
}

// Re-entrancy audit: interleaving two live sessions frame-by-frame must
// give exactly the results of running each alone — the codec keeps no
// hidden per-process coding state (the only process-wide pieces are the
// read-only kernel table and the obs registry, which never feeds back).
TEST(StreamSession, InterleavedSessionsMatchIsolatedRuns) {
  video::SyntheticSequence foreman =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::SyntheticSequence garden =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  PipelineConfig config = short_config(12);
  SchemeSpec scheme_a = SchemeSpec::pbpair(pbpair_config(0.9, 0.10));
  SchemeSpec scheme_b = SchemeSpec::gop(3);

  net::UniformFrameLoss loss_a1(0.2, 11), loss_b1(0.2, 22);
  StreamSession a([&foreman](int i) { return foreman.frame_at(i); }, scheme_a,
                  &loss_a1, config);
  StreamSession b([&garden](int i) { return garden.frame_at(i); }, scheme_b,
                  &loss_b1, config);
  while (!a.done() || !b.done()) {
    if (!a.done()) a.step();
    if (!b.done()) b.step();
  }
  PipelineResult interleaved_a = a.take_result();
  PipelineResult interleaved_b = b.take_result();

  net::UniformFrameLoss loss_a2(0.2, 11), loss_b2(0.2, 22);
  PipelineResult isolated_a = run_pipeline(foreman, scheme_a, &loss_a2, config);
  PipelineResult isolated_b = run_pipeline(garden, scheme_b, &loss_b2, config);
  expect_results_identical(isolated_a, interleaved_a);
  expect_results_identical(isolated_b, interleaved_b);
}

// --- Delayed feedback ---

TEST(DelayedFeedback, ZeroDelayDeliversSameFrame) {
  net::DelayedFeedback<double> queue(0);
  queue.push(3, 0.25);
  std::vector<double> due = queue.take_due(3);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_DOUBLE_EQ(due[0], 0.25);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(DelayedFeedback, PositiveDelayHoldsUntilRtt) {
  net::DelayedFeedback<int> queue(4);
  queue.push(0, 100);
  queue.push(1, 101);
  EXPECT_TRUE(queue.take_due(3).empty());
  std::vector<int> due = queue.take_due(4);  // frame 0's payload is due
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 100);
  due = queue.take_due(10);  // everything else, FIFO
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 101);
}

TEST(StreamSession, FeedbackLoopSeesLossOnlyAfterRtt) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  // Drop frame 2 entirely; record when reports arrive and when the
  // reported loss first turns nonzero, at two RTTs.
  auto report_frames = [&seq](int rtt, int* first_report,
                              int* first_loss_report) {
    PipelineConfig config = short_config(14);
    config.feedback_rtt_frames = rtt;
    *first_report = -1;
    *first_loss_report = -1;
    config.on_feedback = [&](int frame, const net::ReceiverReport& report,
                             codec::RefreshPolicy&) {
      if (*first_report < 0) *first_report = frame;
      if (*first_loss_report < 0 && report.cumulative_lost > 0) {
        *first_loss_report = frame;
      }
    };
    net::ScriptedFrameLoss loss({2});
    StreamSession session([&seq](int i) { return seq.frame_at(i); },
                          SchemeSpec::pbpair(pbpair_config(0.9, 0.1)), &loss,
                          config);
    session.run_to_end();
  };

  int first_rtt0 = -1, first_loss_rtt0 = -1;
  report_frames(0, &first_rtt0, &first_loss_rtt0);
  EXPECT_EQ(first_rtt0, 1);  // frame 0's report lands before frame 1
  // The gap left by frame 2 is noticed when frame 3's packets arrive, so
  // the loss-bearing report is pushed at frame 3 and (RTT 0) delivered
  // before frame 4.
  EXPECT_EQ(first_loss_rtt0, 4);

  int first_rtt5 = -1, first_loss_rtt5 = -1;
  report_frames(5, &first_rtt5, &first_loss_rtt5);
  EXPECT_EQ(first_rtt5, 5);           // frame 0's report delayed by RTT
  EXPECT_EQ(first_loss_rtt5, 3 + 5);  // pushed at 3, due RTT frames later
}

TEST(StreamSession, FeedbackLoopDoesNotPerturbPipelineOutput) {
  // A feedback consumer that only observes must leave every output byte
  // unchanged (the estimator and queue live outside the coding loop).
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  PipelineConfig plain = short_config(10);
  SchemeSpec scheme = SchemeSpec::pbpair(pbpair_config(0.9, 0.1));
  net::UniformFrameLoss loss_a(0.2, 5);
  PipelineResult without = run_pipeline(seq, scheme, &loss_a, plain);

  PipelineConfig with_feedback = plain;
  with_feedback.feedback_rtt_frames = 2;
  int reports = 0;
  with_feedback.on_feedback = [&reports](int, const net::ReceiverReport&,
                                         codec::RefreshPolicy&) { ++reports; };
  net::UniformFrameLoss loss_b(0.2, 5);
  PipelineResult with = run_pipeline(seq, scheme, &loss_b, with_feedback);
  EXPECT_GT(reports, 0);
  expect_results_identical(without, with);
}

// --- make_pipeline_evaluator lifetime (the dangling-capture fix) ---

TEST(PipelineEvaluator, OutlivesTheSourceSequence) {
  PipelineConfig config = short_config(8);
  core::PointEvaluator evaluator;
  {
    video::SyntheticSequence doomed =
        video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
    evaluator = make_pipeline_evaluator(doomed, config, /*seed=*/7);
  }  // `doomed` destroyed: the evaluator must hold its own copy

  core::OperatingPoint point;
  point.intra_th = 0.9;
  point.plr = 0.1;
  evaluator(point);

  video::SyntheticSequence fresh =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  core::OperatingPoint expected;
  expected.intra_th = 0.9;
  expected.plr = 0.1;
  make_pipeline_evaluator(fresh, config, /*seed=*/7)(expected);
  EXPECT_DOUBLE_EQ(point.avg_psnr_db, expected.avg_psnr_db);
  EXPECT_DOUBLE_EQ(point.size_kb, expected.size_kb);
  EXPECT_DOUBLE_EQ(point.total_energy_j, expected.total_energy_j);
}

// --- frame-trace file (header + flush-on-close) ---

TEST(StreamSession, FrameTraceFlushedOnTakeResultWhileSessionLives) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  PipelineConfig config = short_config(4);
  const std::string path = "/tmp/pbpair_session_trace_test.jsonl";
  config.frame_trace_path = path;
  config.frame_trace_seed = 99;

  StreamSession session([&seq](int i) { return seq.frame_at(i); },
                        SchemeSpec::gop(2), nullptr, config);
  session.run_to_end();
  session.take_result();

  // The session object is still alive; the file must already be complete.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"scheme\":\"GOP-2\""), std::string::npos);
  EXPECT_NE(line.find("\"seed\":99"), std::string::npos);
  EXPECT_NE(line.find("\"width\":176"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, config.frames);
  std::remove(path.c_str());
}

TEST(StreamSession, FrameTraceRerunsAreByteIdentical) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(6);
  const std::string path = "/tmp/pbpair_session_trace_rerun.jsonl";
  config.frame_trace_path = path;
  config.frame_trace_seed = 2005;

  auto run_once = [&] {
    net::UniformFrameLoss loss(0.2, /*seed=*/2005);
    run_pipeline(seq, SchemeSpec::pbpair(pbpair_config(0.9, 0.1)), &loss,
                 config);
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pbpair::sim
