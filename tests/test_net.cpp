// Tests for the network layer: RTP packets, packetization, loss models,
// channel statistics, and the receiver-side PLR estimator.
#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "net/channel.h"
#include "net/feedback.h"
#include "net/loss_model.h"
#include "net/packetizer.h"
#include "video/sequence.h"

namespace pbpair::net {
namespace {

Packet make_test_packet(std::uint16_t seq, std::uint32_t ts,
                        std::size_t payload_size = 100) {
  Packet p;
  p.header.sequence = seq;
  p.header.timestamp = ts;
  p.header.ssrc = 0xDEADBEEF;
  p.header.marker = true;
  p.header.frame_type = 1;
  p.header.qp = 10;
  p.header.first_gob = 2;
  p.header.num_gobs = 3;
  p.payload.assign(payload_size, static_cast<std::uint8_t>(seq & 0xFF));
  return p;
}

TEST(Packet, SerializeParseRoundTrip) {
  Packet p = make_test_packet(12345, 678);
  auto wire = serialize_packet(p);
  EXPECT_EQ(wire.size(), kHeaderWireSize + 100);
  Packet q;
  ASSERT_TRUE(parse_packet(wire, &q));
  EXPECT_EQ(q.header.sequence, p.header.sequence);
  EXPECT_EQ(q.header.timestamp, p.header.timestamp);
  EXPECT_EQ(q.header.ssrc, p.header.ssrc);
  EXPECT_EQ(q.header.marker, p.header.marker);
  EXPECT_EQ(q.header.frame_type, p.header.frame_type);
  EXPECT_EQ(q.header.qp, p.header.qp);
  EXPECT_EQ(q.header.first_gob, p.header.first_gob);
  EXPECT_EQ(q.header.num_gobs, p.header.num_gobs);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Packet, ParseRejectsTruncatedHeader) {
  std::vector<std::uint8_t> wire(kHeaderWireSize - 1, 0);
  Packet p;
  EXPECT_FALSE(parse_packet(wire, &p));
}

TEST(Packet, ParseRejectsWrongVersion) {
  Packet p = make_test_packet(1, 1);
  auto wire = serialize_packet(p);
  wire[0] = 0;  // version 0
  EXPECT_FALSE(parse_packet(wire, &p));
}

codec::EncodedFrame encode_one_frame(int frame_count = 1) {
  static video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  static codec::NoRefreshPolicy policy;
  codec::Encoder encoder(codec::EncoderConfig{}, &policy);
  codec::EncodedFrame out;
  for (int i = 0; i < frame_count; ++i) {
    out = encoder.encode_frame(seq.frame_at(i));
  }
  return out;
}

TEST(Packetizer, SmallFrameIsOnePacket) {
  codec::EncodedFrame frame = encode_one_frame(2);  // P-frame, small
  Packetizer packetizer(PacketizerConfig{});
  auto packets = packetizer.packetize(frame);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].header.marker);
  EXPECT_EQ(packets[0].header.first_gob, 0);
  EXPECT_EQ(packets[0].header.num_gobs, 9);
  EXPECT_EQ(packets[0].header.frame_type, 1);  // P
}

TEST(Packetizer, LargeFrameFragmentsAtGobBoundaries) {
  codec::EncodedFrame frame = encode_one_frame(1);  // garden I-frame: big
  PacketizerConfig config;
  config.mtu = 1400;
  Packetizer packetizer(config);
  auto packets = packetizer.packetize(frame);
  ASSERT_GT(packets.size(), 1u);
  int covered = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_LE(packets[i].wire_size(), config.mtu);
    EXPECT_EQ(packets[i].header.marker, i == packets.size() - 1);
    EXPECT_EQ(packets[i].header.first_gob, covered);
    covered += packets[i].header.num_gobs;
    // Payload starts with the GOB sync byte of its first GOB.
    EXPECT_EQ(packets[i].payload[0], packets[i].header.first_gob);
  }
  EXPECT_EQ(covered, 9);
}

TEST(Packetizer, SequenceNumbersAreConsecutive) {
  codec::EncodedFrame frame = encode_one_frame(1);
  Packetizer packetizer(PacketizerConfig{});
  auto first = packetizer.packetize(frame);
  auto second = packetizer.packetize(frame);
  std::uint16_t expected = 0;
  for (const Packet& p : first) EXPECT_EQ(p.header.sequence, expected++);
  for (const Packet& p : second) EXPECT_EQ(p.header.sequence, expected++);
}

TEST(Packetizer, ReassemblyMatchesOriginalBytes) {
  codec::EncodedFrame frame = encode_one_frame(1);
  PacketizerConfig config;
  config.mtu = 600;  // force heavy fragmentation
  Packetizer packetizer(config);
  auto packets = packetizer.packetize(frame);
  ASSERT_GT(packets.size(), 2u);
  std::vector<std::uint8_t> reassembled;
  for (const Packet& p : packets) {
    reassembled.insert(reassembled.end(), p.payload.begin(), p.payload.end());
  }
  std::vector<std::uint8_t> original(
      frame.bytes.begin() + frame.gob_offsets[0], frame.bytes.end());
  EXPECT_EQ(reassembled, original);
}

TEST(Depacketize, FullDeliveryDecodesEverywhere) {
  codec::EncodedFrame frame = encode_one_frame(1);
  Packetizer packetizer(PacketizerConfig{});
  auto packets = packetizer.packetize(frame);
  codec::ReceivedFrame received = depacketize(packets, frame.frame_index);
  EXPECT_TRUE(received.any_data);
  EXPECT_EQ(received.type, codec::FrameType::kIntra);
  EXPECT_EQ(received.qp, frame.qp);
}

TEST(Depacketize, EmptyDeliveryMarksFrameLost) {
  codec::ReceivedFrame received = depacketize({}, 7);
  EXPECT_FALSE(received.any_data);
  EXPECT_EQ(received.frame_index, 7);
}

TEST(Depacketize, WrongTimestampPacketsAreDroppedNotAsserted) {
  codec::EncodedFrame frame = encode_one_frame(1);
  Packetizer packetizer(PacketizerConfig{});
  auto packets = packetizer.packetize(frame);
  // Corrupt one packet's timestamp: a hostile or damaged header must be
  // dropped and counted, never abort the receiver.
  packets[0].header.timestamp ^= 0x5A5A5A5A;
  codec::ReceivedFrame received = depacketize(packets, frame.frame_index);
  EXPECT_EQ(received.spans.size(), packets.size() - 1);
  // Only the stale packet vanished; the frame still decodes as damaged.
  EXPECT_TRUE(received.any_data);
}

TEST(Depacketize, AllForeignPacketsYieldLostFrame) {
  codec::EncodedFrame frame = encode_one_frame(1);
  Packetizer packetizer(PacketizerConfig{});
  auto packets = packetizer.packetize(frame);
  codec::ReceivedFrame received =
      depacketize(packets, frame.frame_index + 1);  // all stale
  EXPECT_FALSE(received.any_data);
  EXPECT_TRUE(received.spans.empty());
}

// --- oversized-GOB continuation packets ---

TEST(Packetizer, OversizedGobSplitsIntoContinuations) {
  codec::EncodedFrame frame = encode_one_frame(1);  // garden I-frame: big
  PacketizerConfig config;
  config.mtu = 128;  // far below a garden GOB: every GOB must fragment
  Packetizer packetizer(config);
  auto packets = packetizer.packetize(frame);
  ASSERT_GT(packets.size(), 9u);
  bool saw_continuation = false;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_LE(packets[i].wire_size(), config.mtu);  // the MTU bug: never over
    EXPECT_EQ(packets[i].header.marker, i == packets.size() - 1);
    if (packets[i].header.num_gobs == 0) {
      saw_continuation = true;
      ASSERT_GT(i, 0u);
      EXPECT_EQ(packets[i].header.first_gob, packets[i - 1].header.first_gob);
      EXPECT_EQ(packets[i].header.sequence,
                static_cast<std::uint16_t>(packets[i - 1].header.sequence + 1));
    }
  }
  EXPECT_TRUE(saw_continuation);
}

TEST(Packetizer, ContinuationsReassembleExactly) {
  codec::EncodedFrame frame = encode_one_frame(1);
  PacketizerConfig config;
  config.mtu = 100;
  Packetizer packetizer(config);
  auto packets = packetizer.packetize(frame);
  codec::ReceivedFrame received = depacketize(packets, frame.frame_index);
  // Full delivery: every GOB present as one rejoined span, bytes exact.
  ASSERT_EQ(received.spans.size(), frame.gob_offsets.size());
  std::vector<std::uint8_t> reassembled;
  for (const auto& span : received.spans) {
    reassembled.insert(reassembled.end(), span.bytes.begin(),
                       span.bytes.end());
  }
  std::vector<std::uint8_t> original(
      frame.bytes.begin() + frame.gob_offsets[0], frame.bytes.end());
  EXPECT_EQ(reassembled, original);
}

TEST(Depacketize, OrphanContinuationIsDropped) {
  codec::EncodedFrame frame = encode_one_frame(1);
  PacketizerConfig config;
  config.mtu = 100;
  Packetizer packetizer(config);
  auto packets = packetizer.packetize(frame);
  // Find the first continuation and kill its head: the orphaned fragments
  // must vanish rather than splice garbage into another GOB.
  std::size_t head = 0;
  while (head + 1 < packets.size() &&
         packets[head + 1].header.num_gobs != 0) {
    ++head;
  }
  ASSERT_LT(head + 1, packets.size());
  const int split_gob = packets[head].header.first_gob;
  packets.erase(packets.begin() + static_cast<std::ptrdiff_t>(head));
  codec::ReceivedFrame received = depacketize(packets, frame.frame_index);
  for (const auto& span : received.spans) {
    EXPECT_NE(span.first_gob, split_gob);
  }
  EXPECT_TRUE(received.any_data);  // the other GOBs survived
}

TEST(Depacketize, ReorderedContinuationIsDropped) {
  codec::EncodedFrame frame = encode_one_frame(1);
  PacketizerConfig config;
  config.mtu = 100;
  Packetizer packetizer(config);
  auto packets = packetizer.packetize(frame);
  std::size_t head = 0;
  while (head + 2 < packets.size() &&
         (packets[head + 1].header.num_gobs != 0 ||
          packets[head + 2].header.num_gobs != 0)) {
    ++head;
  }
  ASSERT_LT(head + 2, packets.size());
  // Swap two continuations of the same GOB: out-of-order fragments must
  // not be spliced in the wrong order (the bytes would be garbage).
  std::swap(packets[head + 1], packets[head + 2]);
  codec::ReceivedFrame received = depacketize(packets, frame.frame_index);
  const int split_gob = packets[head].header.first_gob;
  for (const auto& span : received.spans) {
    if (span.first_gob != split_gob) continue;
    // The head's bytes survive; the out-of-order tail was dropped, so the
    // span is shorter than the full GOB.
    std::size_t full = (static_cast<std::size_t>(split_gob) + 1 <
                        frame.gob_offsets.size()
                            ? frame.gob_offsets[static_cast<std::size_t>(
                                  split_gob + 1)]
                            : frame.bytes.size()) -
                       frame.gob_offsets[static_cast<std::size_t>(split_gob)];
    EXPECT_LT(span.bytes.size(), full);
  }
}

TEST(PacketizerDeathTest, MoreThan255GobsIsRejected) {
  // first_gob/num_gobs are uint8 on the wire: a 256-GOB frame would alias
  // GOB indices at the receiver, so packetize must refuse loudly.
  codec::EncodedFrame frame;
  frame.bytes.assign(256 * 4, 0);
  for (int g = 0; g < 256; ++g) {
    frame.gob_offsets.push_back(static_cast<std::uint32_t>(g * 4));
  }
  Packetizer packetizer(PacketizerConfig{});
  EXPECT_DEATH(packetizer.packetize(frame), "255");
}

// --- Loss models ---

TEST(UniformFrameLoss, AllPacketsOfAFrameShareFate) {
  UniformFrameLoss loss(0.5, 99);
  for (int frame = 0; frame < 50; ++frame) {
    Packet p0 = make_test_packet(0, frame);
    Packet p1 = make_test_packet(1, frame);
    Packet p2 = make_test_packet(2, frame);
    bool d0 = loss.should_drop(p0);
    EXPECT_EQ(loss.should_drop(p1), d0);
    EXPECT_EQ(loss.should_drop(p2), d0);
  }
}

TEST(UniformFrameLoss, RateIsRespected) {
  UniformFrameLoss loss(0.10, 7);
  int dropped = 0;
  const int frames = 20000;
  for (int frame = 0; frame < frames; ++frame) {
    if (loss.should_drop(make_test_packet(0, frame))) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / frames, 0.10, 0.01);
}

TEST(UniformFrameLoss, DeterministicPerSeedAndResets) {
  UniformFrameLoss a(0.3, 5);
  UniformFrameLoss b(0.3, 5);
  std::vector<bool> fates_a, fates_b;
  for (int frame = 0; frame < 100; ++frame) {
    fates_a.push_back(a.should_drop(make_test_packet(0, frame)));
    fates_b.push_back(b.should_drop(make_test_packet(0, frame)));
  }
  EXPECT_EQ(fates_a, fates_b);
  a.reset();
  for (int frame = 0; frame < 100; ++frame) {
    EXPECT_EQ(a.should_drop(make_test_packet(0, frame)), fates_a[frame]);
  }
}

TEST(UniformFrameLoss, ZeroRateDropsNothing) {
  UniformFrameLoss loss(0.0, 3);
  for (int frame = 0; frame < 100; ++frame) {
    EXPECT_FALSE(loss.should_drop(make_test_packet(0, frame)));
  }
}

TEST(BernoulliPacketLoss, IndependentPerPacket) {
  BernoulliPacketLoss loss(0.2, 11);
  int dropped = 0;
  const int packets = 20000;
  for (int i = 0; i < packets; ++i) {
    if (loss.should_drop(make_test_packet(i & 0xFFFF, i / 3))) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / packets, 0.2, 0.01);
}

TEST(GilbertElliott, AverageRateMatchesStationaryFormula) {
  GilbertElliottLoss::Params params;
  GilbertElliottLoss loss(params, 13);
  const double expected = loss.average_loss_rate();
  int dropped = 0;
  const int packets = 100000;
  for (int i = 0; i < packets; ++i) {
    if (loss.should_drop(make_test_packet(0, i))) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / packets, expected, 0.01);
}

TEST(GilbertElliott, LossesAreBurstierThanBernoulli) {
  // Compare mean run length of consecutive losses at matched average rate.
  GilbertElliottLoss::Params params;
  GilbertElliottLoss ge(params, 17);
  BernoulliPacketLoss bern(ge.average_loss_rate(), 17);

  auto mean_burst = [](LossModel& model) {
    int bursts = 0, losses = 0;
    bool in_burst = false;
    Packet p = make_test_packet(0, 0);
    for (int i = 0; i < 200000; ++i) {
      bool drop = model.should_drop(p);
      if (drop) {
        ++losses;
        if (!in_burst) ++bursts;
      }
      in_burst = drop;
    }
    return bursts == 0 ? 0.0 : static_cast<double>(losses) / bursts;
  };
  EXPECT_GT(mean_burst(ge), 1.25 * mean_burst(bern));
}

TEST(GilbertElliott, LongRunStatisticsMatchAnalyticFormulas) {
  // Long-run empirical loss rate AND mean burst length must both land on
  // the closed-form predictions (average_loss_rate, mean_burst_length)
  // for an asymmetric parameter set, not just the defaults.
  GilbertElliottLoss::Params params;
  params.p_good_to_bad = 0.02;
  params.p_bad_to_good = 0.25;
  params.loss_in_good = 0.01;
  params.loss_in_bad = 0.65;
  GilbertElliottLoss loss(params, 23);

  const int packets = 2000000;
  int dropped = 0, bursts = 0;
  bool in_burst = false;
  Packet p = make_test_packet(0, 0);
  for (int i = 0; i < packets; ++i) {
    bool drop = loss.should_drop(p);
    if (drop) {
      ++dropped;
      if (!in_burst) ++bursts;
    }
    in_burst = drop;
  }

  const double empirical_rate = static_cast<double>(dropped) / packets;
  const double empirical_burst =
      bursts == 0 ? 0.0 : static_cast<double>(dropped) / bursts;
  EXPECT_NEAR(empirical_rate, loss.average_loss_rate(),
              0.05 * loss.average_loss_rate());
  EXPECT_NEAR(empirical_burst, loss.mean_burst_length(),
              0.05 * loss.mean_burst_length());
  // Sanity on the analytic value itself: bursty (> 1 packet) but bounded
  // well below the bad-state sojourn at these parameters.
  EXPECT_GT(loss.mean_burst_length(), 1.0);
  EXPECT_LT(loss.mean_burst_length(), 1.0 / params.p_bad_to_good + 1.0);
}

TEST(ScriptedFrameLoss, DropsExactlyTheListedFrames) {
  ScriptedFrameLoss loss({3, 7, 8});
  for (int frame = 0; frame < 12; ++frame) {
    bool expected = frame == 3 || frame == 7 || frame == 8;
    EXPECT_EQ(loss.should_drop(make_test_packet(0, frame)), expected)
        << "frame " << frame;
  }
}

TEST(Channel, StatsAccumulate) {
  BernoulliPacketLoss loss(0.5, 19);
  Channel channel(&loss);
  std::vector<Packet> packets;
  for (int i = 0; i < 100; ++i) packets.push_back(make_test_packet(i, i, 50));
  auto delivered = channel.transmit(packets);
  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.packets_sent, 100u);
  EXPECT_EQ(stats.packets_dropped + delivered.size(), 100u);
  EXPECT_EQ(stats.bytes_sent, 100u * (kHeaderWireSize + 50));
  EXPECT_EQ(stats.bytes_delivered, delivered.size() * (kHeaderWireSize + 50));
  EXPECT_NEAR(stats.loss_rate(), 0.5, 0.2);
  channel.reset();
  EXPECT_EQ(channel.stats().packets_sent, 0u);
}

// --- PLR estimator ---

TEST(PlrEstimator, NoLossGivesZero) {
  PlrEstimator est;
  for (int i = 0; i < 50; ++i) est.on_packet_received(i);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
  EXPECT_EQ(est.received(), 50u);
  EXPECT_EQ(est.lost(), 0u);
}

TEST(PlrEstimator, DetectsSequenceGaps) {
  PlrEstimator est(100);
  est.on_packet_received(0);
  est.on_packet_received(1);
  est.on_packet_received(4);  // 2 and 3 lost
  EXPECT_EQ(est.lost(), 2u);
  EXPECT_NEAR(est.estimate(), 2.0 / 5.0, 1e-9);
}

TEST(PlrEstimator, WindowForgetsOldLosses) {
  PlrEstimator est(10);
  est.on_packet_received(0);
  est.on_packet_received(3);  // 2 losses, early
  for (int i = 4; i < 30; ++i) est.on_packet_received(i);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);  // losses aged out of the window
  EXPECT_EQ(est.lost(), 2u);              // lifetime counter remembers
}

TEST(PlrEstimator, SequenceWrapIsHandled) {
  PlrEstimator est;
  est.on_packet_received(65534);
  est.on_packet_received(65535);
  est.on_packet_received(0);  // wrap, no loss
  est.on_packet_received(2);  // packet 1 lost across the wrap
  EXPECT_EQ(est.lost(), 1u);
}

TEST(PlrEstimator, KnownLossFeedsWindow) {
  PlrEstimator est(10);
  est.on_packet_received(0);
  est.on_known_loss(4);
  EXPECT_NEAR(est.estimate(), 4.0 / 5.0, 1e-9);
  est.reset();
  EXPECT_DOUBLE_EQ(est.estimate(), 0.0);
}

TEST(PlrEstimator, TracksConfiguredRateEndToEnd) {
  // Feed it a real channel at PLR 15% and check the estimate converges.
  BernoulliPacketLoss loss(0.15, 23);
  Channel channel(&loss);
  PlrEstimator est(500);
  std::uint16_t seq_no = 0;
  for (int frame = 0; frame < 3000; ++frame) {
    Packet p = make_test_packet(seq_no++, frame);
    auto delivered = channel.transmit({p});
    for (const Packet& d : delivered) est.on_packet_received(d.header.sequence);
  }
  EXPECT_NEAR(est.estimate(), 0.15, 0.05);
}

}  // namespace
}  // namespace pbpair::net
