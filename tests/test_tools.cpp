// Tests for the tooling layer: argument parser, PBS container, and
// non-QCIF (CIF) operation of the full stack.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "codec/container.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/args.h"
#include "core/pbpair_policy.h"
#include "video/metrics.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

// --- ArgParser ---

TEST(ArgParser, ParsesFlagStyles) {
  const char* argv[] = {"prog",      "--alpha", "1.5",  "--beta=x",
                        "positional", "--flag",  "--n",  "42"};
  common::ArgParser args(8, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(args.get("beta"), "x");
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get_int("n", 0), 42);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(ArgParser, FallbacksApply) {
  const char* argv[] = {"prog"};
  common::ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, UnknownFlagsAreReported) {
  const char* argv[] = {"prog", "--known", "1", "--typo", "2"};
  common::ArgParser args(5, const_cast<char**>(argv));
  (void)args.get_int("known", 0);
  auto unknown = args.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

// --- Container ---

TEST(Container, RoundTripsThroughDecoder) {
  const std::string path = "/tmp/pbpair_test_container.pbs";
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  codec::NoRefreshPolicy policy;
  codec::Encoder encoder(codec::EncoderConfig{}, &policy);
  std::vector<video::YuvFrame> recons;
  {
    codec::ContainerWriter writer(path,
                                  codec::ContainerHeader{176, 144, 10});
    ASSERT_TRUE(writer.is_open());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(writer.write_frame(encoder.encode_frame(seq.frame_at(i))));
      recons.push_back(encoder.reconstructed());
    }
    ASSERT_TRUE(writer.close());
  }

  codec::ContainerReader reader(path);
  ASSERT_TRUE(reader.is_open());
  EXPECT_EQ(reader.header().width, 176);
  EXPECT_EQ(reader.header().height, 144);
  EXPECT_EQ(reader.header().initial_qp, 10);

  codec::Decoder decoder(codec::DecoderConfig{});
  codec::ReceivedFrame frame;
  int count = 0;
  while (reader.read_frame(&frame)) {
    EXPECT_EQ(frame.frame_index, count);
    const video::YuvFrame& out = decoder.decode_frame(frame);
    ASSERT_EQ(out, recons[count]) << "frame " << count;  // bit-exact
    ++count;
  }
  EXPECT_EQ(count, 4);
  std::remove(path.c_str());
}

TEST(Container, RejectsBadMagicAndTruncation) {
  const std::string path = "/tmp/pbpair_test_badmagic.pbs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("NOPE000000", 1, 10, f);
  std::fclose(f);
  codec::ContainerReader reader(path);
  EXPECT_FALSE(reader.is_open());
  std::remove(path.c_str());

  EXPECT_FALSE(codec::ContainerReader("/tmp/does_not_exist.pbs").is_open());
}

TEST(Container, TruncatedFrameRecordStopsCleanly) {
  const std::string path = "/tmp/pbpair_test_trunc.pbs";
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  codec::NoRefreshPolicy policy;
  codec::Encoder encoder(codec::EncoderConfig{}, &policy);
  {
    codec::ContainerWriter writer(path,
                                  codec::ContainerHeader{176, 144, 10});
    writer.write_frame(encoder.encode_frame(seq.frame_at(0)));
    writer.close();
  }
  // Truncate the payload mid-frame.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(path.c_str(), size - 50));
  }
  codec::ContainerReader reader(path);
  ASSERT_TRUE(reader.is_open());
  codec::ReceivedFrame frame;
  EXPECT_FALSE(reader.read_frame(&frame));
  std::remove(path.c_str());
}

// --- CIF operation ---

TEST(Cif, FullStackWorksAt352x288) {
  // Everything is QCIF in the paper, but the library is size-generic:
  // the PBPAIR matrix becomes 22x18 and the whole loop must hold.
  video::SyntheticSequence seq(video::SequenceKind::kForemanLike,
                               video::kCifWidth, video::kCifHeight, 99);
  core::PbpairConfig config;
  config.intra_th = 0.9;
  config.plr = 0.1;
  core::PbpairPolicy policy(22, 18, config);
  codec::EncoderConfig econfig;
  econfig.width = video::kCifWidth;
  econfig.height = video::kCifHeight;
  codec::Encoder encoder(econfig, &policy);
  codec::Decoder decoder(
      codec::DecoderConfig{video::kCifWidth, video::kCifHeight});
  for (int i = 0; i < 3; ++i) {
    video::YuvFrame original = seq.frame_at(i);
    codec::EncodedFrame frame = encoder.encode_frame(original);
    EXPECT_EQ(frame.mb_cols, 22);
    EXPECT_EQ(frame.mb_rows, 18);
    EXPECT_EQ(frame.gob_offsets.size(), 18u);
    const video::YuvFrame& out = decoder.decode_frame(frame);
    ASSERT_EQ(out, encoder.reconstructed()) << "frame " << i;
    EXPECT_GT(video::psnr_luma(original, out), 28.0);
  }
  EXPECT_EQ(policy.matrix().cols(), 22);
  EXPECT_EQ(policy.matrix().rows(), 18);
}

}  // namespace
}  // namespace pbpair
