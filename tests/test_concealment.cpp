// Tests for the decoder's concealment modes and their quality ordering.
#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "video/metrics.h"
#include "video/sequence.h"

namespace pbpair::codec {
namespace {

/// Encodes `frames` frames, losing frame `lost_index` entirely, and returns
/// the PSNR of the lost frame's concealed output.
double concealment_psnr(video::SequenceKind kind, ConcealmentMode mode,
                        int lost_index, int frames) {
  video::SyntheticSequence seq = video::make_paper_sequence(kind);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  DecoderConfig dconfig;
  dconfig.concealment = mode;
  Decoder decoder(dconfig);
  double psnr = 0.0;
  for (int i = 0; i < frames; ++i) {
    video::YuvFrame original = seq.frame_at(i);
    EncodedFrame encoded = encoder.encode_frame(original);
    ReceivedFrame received;
    received.frame_index = i;
    if (i == lost_index) {
      received.any_data = false;
    } else {
      received.any_data = true;
      received.type = encoded.type;
      received.qp = encoded.qp;
      ReceivedFrame::GobSpan span;
      span.first_gob = 0;
      span.bytes.assign(encoded.bytes.begin() + encoded.gob_offsets[0],
                        encoded.bytes.end());
      received.spans.push_back(std::move(span));
    }
    const video::YuvFrame& output = decoder.decode_frame(received);
    if (i == lost_index) psnr = video::psnr_luma(original, output);
  }
  return psnr;
}

TEST(Concealment, FreezeGrayBlanksLostMbs) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  DecoderConfig dconfig;
  dconfig.concealment = ConcealmentMode::kFreezeGray;
  Decoder decoder(dconfig);
  decoder.decode_frame(encoder.encode_frame(seq.frame_at(0)));
  ReceivedFrame lost;
  lost.frame_index = 1;
  lost.any_data = false;
  const video::YuvFrame& out = decoder.decode_frame(lost);
  EXPECT_EQ(out.y().at(50, 50), 128);
  EXPECT_EQ(out.u().at(10, 10), 128);
  EXPECT_EQ(decoder.concealed_mbs(), 99u);
}

TEST(Concealment, CopyPreviousBeatsFreezeOnEveryClip) {
  for (video::SequenceKind kind :
       {video::SequenceKind::kAkiyoLike, video::SequenceKind::kForemanLike,
        video::SequenceKind::kGardenLike}) {
    double copy = concealment_psnr(kind, ConcealmentMode::kCopyPrevious, 3, 5);
    double freeze = concealment_psnr(kind, ConcealmentMode::kFreezeGray, 3, 5);
    EXPECT_GT(copy, freeze + 3.0) << video::sequence_kind_name(kind);
  }
}

TEST(Concealment, MotionCompensatedBeatsCopyOnPanningContent) {
  // Garden pans globally: copying the co-located MB is off by the pan,
  // while reusing the previous frame's vectors tracks it.
  double copy = concealment_psnr(video::SequenceKind::kGardenLike,
                                 ConcealmentMode::kCopyPrevious, 4, 6);
  double mc = concealment_psnr(video::SequenceKind::kGardenLike,
                               ConcealmentMode::kMotionCompensated, 4, 6);
  EXPECT_GT(mc, copy + 2.0);
}

TEST(Concealment, MotionCompensatedMatchesCopyOnStaticContent) {
  // Akiyo's vectors are ~zero, so motion-copy degenerates to copy.
  double copy = concealment_psnr(video::SequenceKind::kAkiyoLike,
                                 ConcealmentMode::kCopyPrevious, 4, 6);
  double mc = concealment_psnr(video::SequenceKind::kAkiyoLike,
                               ConcealmentMode::kMotionCompensated, 4, 6);
  EXPECT_NEAR(mc, copy, 1.5);
}

TEST(Concealment, LosslessPathIdenticalAcrossModes) {
  // The concealment mode must not affect clean decoding.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  for (ConcealmentMode mode :
       {ConcealmentMode::kCopyPrevious, ConcealmentMode::kMotionCompensated,
        ConcealmentMode::kFreezeGray}) {
    NoRefreshPolicy policy;
    Encoder encoder(EncoderConfig{}, &policy);
    DecoderConfig dconfig;
    dconfig.concealment = mode;
    Decoder decoder(dconfig);
    for (int i = 0; i < 3; ++i) {
      EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
      ASSERT_EQ(decoder.decode_frame(frame), encoder.reconstructed());
    }
  }
}

}  // namespace
}  // namespace pbpair::codec
