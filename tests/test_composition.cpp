// Composition matrix: the codec's feature knobs (QP, search strategy,
// half-pel, deblocking) and the refresh schemes must compose freely — the
// lockstep invariant and basic sanity must hold for every combination a
// user can configure.
#include <gtest/gtest.h>

#include <tuple>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "net/loss_model.h"
#include "sim/pipeline.h"
#include "video/metrics.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

// (qp, full_search, half_pel, deblocking)
using CodecKnobs = std::tuple<int, bool, bool, bool>;

class CodecKnobMatrix : public ::testing::TestWithParam<CodecKnobs> {};

TEST_P(CodecKnobMatrix, LockstepAndQualityHold) {
  auto [qp, full_search, half_pel, deblocking] = GetParam();
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  codec::EncoderConfig econfig;
  econfig.qp = qp;
  econfig.search.strategy = full_search ? codec::SearchStrategy::kFullSearch
                                        : codec::SearchStrategy::kDiamondSearch;
  econfig.search.range = 7;
  econfig.search.half_pel = half_pel;
  econfig.deblocking = deblocking;
  codec::NoRefreshPolicy policy;
  codec::Encoder encoder(econfig, &policy);

  codec::DecoderConfig dconfig;
  dconfig.deblocking = deblocking;
  codec::Decoder decoder(dconfig);

  for (int i = 0; i < 3; ++i) {
    video::YuvFrame original = seq.frame_at(i);
    codec::EncodedFrame frame = encoder.encode_frame(original);
    const video::YuvFrame& out = decoder.decode_frame(frame);
    ASSERT_EQ(out, encoder.reconstructed())
        << "lockstep broke at frame " << i << " (qp=" << qp
        << " full=" << full_search << " half=" << half_pel
        << " deblock=" << deblocking << ")";
    double psnr = video::psnr_luma(original, out);
    // Coarse QP still has to stay visually plausible.
    ASSERT_GT(psnr, qp <= 10 ? 30.0 : 24.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, CodecKnobMatrix,
    ::testing::Combine(::testing::Values(4, 10, 24),  // qp
                       ::testing::Bool(),             // full search
                       ::testing::Bool(),             // half-pel
                       ::testing::Bool()));           // deblocking

// Every scheme must survive the full lossy pipeline with every concealment
// mode — no combination may crash or collapse.
class SchemeConcealmentMatrix
    : public ::testing::TestWithParam<
          std::tuple<int, codec::ConcealmentMode>> {};

TEST_P(SchemeConcealmentMatrix, PipelineStaysSane) {
  auto [scheme_index, concealment] = GetParam();
  sim::SchemeSpec scheme;
  switch (scheme_index) {
    case 0: scheme = sim::SchemeSpec::no_resilience(); break;
    case 1: {
      core::PbpairConfig c;
      c.intra_th = 0.93;
      c.plr = 0.15;
      scheme = sim::SchemeSpec::pbpair(c);
      break;
    }
    case 2: scheme = sim::SchemeSpec::pgop(2); break;
    case 3: scheme = sim::SchemeSpec::gop(5); break;
    case 4: scheme = sim::SchemeSpec::air(15); break;
  }
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  sim::PipelineConfig config;
  config.frames = 20;
  config.concealment = concealment;
  net::UniformFrameLoss loss(0.15, 31337);
  sim::PipelineResult r = sim::run_pipeline(seq, scheme, &loss, config);
  EXPECT_GT(r.avg_psnr_db, 15.0) << scheme.label();
  EXPECT_GT(r.total_bytes, 1000u);
  EXPECT_EQ(r.frames.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(
    All, SchemeConcealmentMatrix,
    ::testing::Combine(
        ::testing::Range(0, 5),
        ::testing::Values(codec::ConcealmentMode::kCopyPrevious,
                          codec::ConcealmentMode::kMotionCompensated,
                          codec::ConcealmentMode::kFreezeGray)));

TEST(Composition, AllFeaturesAtOnce) {
  // The kitchen sink: PBPAIR + rate control + deblocking + half-pel full
  // search + bursty loss + motion-compensated concealment, end to end.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  sim::PipelineConfig config;
  config.frames = 30;
  config.encoder.search.strategy = codec::SearchStrategy::kFullSearch;
  config.encoder.search.range = 7;
  config.encoder.deblocking = false;  // pipeline decoder uses defaults
  config.concealment = codec::ConcealmentMode::kMotionCompensated;
  codec::RateControlConfig rate;
  rate.target_kbps = 96.0;
  rate.frame_rate = 25.0;
  config.rate_control = rate;

  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.9;
  pbpair.plr = 0.1;

  net::GilbertElliottLoss loss(net::GilbertElliottLoss::Params{}, 7);
  sim::PipelineResult r = sim::run_pipeline(
      seq, sim::SchemeSpec::pbpair(pbpair), &loss, config);
  EXPECT_GT(r.avg_psnr_db, 20.0);
  EXPECT_GT(r.total_intra_mbs, 50u);
  // Rate control engaged: QP must have moved off its initial value.
  bool qp_moved = false;
  for (const sim::FrameTrace& f : r.frames) {
    if (f.qp != rate.initial_qp) qp_moved = true;
  }
  EXPECT_TRUE(qp_moved);
}

TEST(Composition, PipelineDeterministicAcrossAllSchemes) {
  // Determinism is per-scheme: identical config => identical result,
  // including policies with internal state (PGOP sweep, PBPAIR matrix).
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  core::PbpairConfig pc;
  pc.intra_th = 0.95;
  pc.plr = 0.1;
  for (const sim::SchemeSpec& scheme :
       {sim::SchemeSpec::pbpair(pc), sim::SchemeSpec::pgop(3),
        sim::SchemeSpec::gop(4), sim::SchemeSpec::air(12)}) {
    sim::PipelineConfig config;
    config.frames = 12;
    net::UniformFrameLoss loss_a(0.2, 5);
    net::UniformFrameLoss loss_b(0.2, 5);
    sim::PipelineResult a = sim::run_pipeline(seq, scheme, &loss_a, config);
    sim::PipelineResult b = sim::run_pipeline(seq, scheme, &loss_b, config);
    ASSERT_EQ(a.total_bytes, b.total_bytes) << scheme.label();
    ASSERT_DOUBLE_EQ(a.avg_psnr_db, b.avg_psnr_db) << scheme.label();
    ASSERT_EQ(a.total_intra_mbs, b.total_intra_mbs) << scheme.label();
  }
}

}  // namespace
}  // namespace pbpair
