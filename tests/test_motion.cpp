// Tests for SAD primitives and the motion search (including the pluggable
// penalty that PBPAIR uses — the Fig. 3 scenario).
#include <gtest/gtest.h>

#include "codec/motion_search.h"
#include "codec/sad.h"
#include "common/rng.h"
#include "video/noise.h"

namespace pbpair::codec {
namespace {

video::Plane textured_plane(int w, int h, std::uint64_t seed) {
  video::Plane plane(w, h);
  video::ValueNoise noise(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      plane.set(x, y, static_cast<std::uint8_t>(noise.fractal(x, y, 8, 3)));
    }
  }
  return plane;
}

/// Copies `src` shifted by (dx, dy): dst(x, y) = src(x + dx, y + dy).
video::Plane shifted_plane(const video::Plane& src, int dx, int dy) {
  video::Plane dst(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      dst.set(x, y, src.at_clamped(x + dx, y + dy));
    }
  }
  return dst;
}

TEST(Sad, IdenticalBlocksGiveZero) {
  video::Plane plane = textured_plane(64, 64, 1);
  energy::OpCounters ops;
  EXPECT_EQ(sad_16x16(plane, 16, 16, plane, 16, 16, ops), 0);
  EXPECT_EQ(ops.sad_pixel_ops, 256u);
}

TEST(Sad, KnownDifference) {
  video::Plane a(32, 32, 100);
  video::Plane b(32, 32, 103);
  energy::OpCounters ops;
  EXPECT_EQ(sad_16x16(a, 0, 0, b, 0, 0, ops), 256 * 3);
}

TEST(Sad, CutoffStopsEarlyAndMetersLess) {
  video::Plane a(32, 32, 0);
  video::Plane b(32, 32, 255);
  energy::OpCounters ops;
  std::int64_t sad = sad_16x16_cutoff(a, 0, 0, b, 0, 0, /*cutoff=*/1000, ops);
  EXPECT_GE(sad, 1000);
  EXPECT_LT(ops.sad_pixel_ops, 256u);  // terminated before the full block
}

TEST(Sad, CutoffExactWhenUnderCutoff) {
  video::Plane a = textured_plane(32, 32, 3);
  video::Plane b = textured_plane(32, 32, 4);
  energy::OpCounters ops1, ops2;
  std::int64_t exact = sad_16x16(a, 0, 0, b, 0, 0, ops1);
  std::int64_t cut = sad_16x16_cutoff(a, 0, 0, b, 0, 0, exact + 1, ops2);
  EXPECT_EQ(cut, exact);
}

TEST(Sad, SelfDeviationOfFlatBlockIsZero) {
  video::Plane flat(32, 32, 77);
  energy::OpCounters ops;
  EXPECT_EQ(sad_self_16x16(flat, 0, 0, ops), 0);
}

TEST(Sad, SelfDeviationDetectsTexture) {
  video::Plane plane = textured_plane(32, 32, 5);
  energy::OpCounters ops;
  EXPECT_GT(sad_self_16x16(plane, 0, 0, ops), 500);
}

class SearchStrategies : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(SearchStrategies, FindsExactTranslation) {
  // cur = ref shifted by (+3, -2): the true vector is (3, -2) with SAD 0
  // in the plane interior.
  video::Plane ref = textured_plane(176, 144, 10);
  video::Plane cur = shifted_plane(ref, 3, -2);
  energy::OpCounters ops;
  MotionSearchConfig config;
  config.strategy = GetParam();
  config.range = 7;
  MotionResult result =
      search_motion(cur, ref, /*mb_x=*/3, /*mb_y=*/3, config, nullptr, ops);
  EXPECT_EQ(result.mv, MotionVector::from_pixels(3, -2));
  EXPECT_EQ(result.sad, 0);
  EXPECT_EQ(ops.me_invocations, 1u);
  EXPECT_GT(ops.sad_pixel_ops, 0u);
}

TEST_P(SearchStrategies, ZeroMotionForIdenticalFrames) {
  video::Plane ref = textured_plane(176, 144, 11);
  energy::OpCounters ops;
  MotionSearchConfig config;
  config.strategy = GetParam();
  MotionResult result = search_motion(ref, ref, 5, 5, config, nullptr, ops);
  EXPECT_TRUE(result.mv.is_zero());
  EXPECT_EQ(result.sad, 0);
}

TEST_P(SearchStrategies, VectorsRespectFrameBounds) {
  video::Plane ref = textured_plane(176, 144, 12);
  video::Plane cur = textured_plane(176, 144, 13);
  energy::OpCounters ops;
  MotionSearchConfig config;
  config.strategy = GetParam();
  config.range = 15;
  for (int mb : {0, 10}) {  // left and right edge MBs of a QCIF row
    MotionResult result = search_motion(cur, ref, mb, 0, config, nullptr, ops);
    EXPECT_GE(mb * 16 + halfpel_floor(result.mv.x), 0);
    EXPECT_LE(mb * 16 + halfpel_floor(result.mv.x) + 16, 176);
    EXPECT_GE(result.mv.y, 0);  // top row: cannot point above the frame
  }
}

INSTANTIATE_TEST_SUITE_P(Both, SearchStrategies,
                         ::testing::Values(SearchStrategy::kFullSearch,
                                           SearchStrategy::kDiamondSearch));

TEST(MotionSearch, FullSearchEvaluatesWholeWindow) {
  video::Plane ref = textured_plane(176, 144, 20);
  video::Plane cur = textured_plane(176, 144, 21);
  energy::OpCounters ops;
  MotionSearchConfig config;
  config.strategy = SearchStrategy::kFullSearch;
  config.range = 4;
  config.half_pel = false;
  MotionResult result = search_motion(cur, ref, 5, 4, config, nullptr, ops);
  EXPECT_EQ(result.candidates, 9u * 9u);  // (2*4+1)^2 interior window
}

TEST(MotionSearch, DiamondEvaluatesFarFewerCandidates) {
  video::Plane ref = textured_plane(176, 144, 22);
  video::Plane cur = shifted_plane(ref, 2, 1);
  energy::OpCounters full_ops, diamond_ops;
  MotionSearchConfig config;
  config.range = 15;
  config.strategy = SearchStrategy::kFullSearch;
  search_motion(cur, ref, 5, 4, config, nullptr, full_ops);
  config.strategy = SearchStrategy::kDiamondSearch;
  search_motion(cur, ref, 5, 4, config, nullptr, diamond_ops);
  // The energy argument of the paper rests on ME cost; diamond is the
  // embedded-realistic cheap search, full is the reference encoder's.
  EXPECT_LT(diamond_ops.sad_pixel_ops * 5, full_ops.sad_pixel_ops);
}

TEST(MotionSearch, PenaltySteersAwayFromDamagedRegion) {
  // Fig. 3 of the paper: the best-SAD candidate lies in a "damaged" area;
  // with the probability penalty the search must pick a clean candidate
  // with slightly worse SAD.
  video::Plane ref = textured_plane(176, 144, 30);
  // cur MB(5,4) = ref shifted by (4, 0), so pure SAD picks mv (4, 0).
  video::Plane cur = shifted_plane(ref, 4, 0);
  energy::OpCounters ops;
  MotionSearchConfig config;
  config.strategy = SearchStrategy::kFullSearch;
  config.range = 7;

  // First: no penalty -> (4, 0) pixels.
  MotionResult pure = search_motion(cur, ref, 5, 4, config, nullptr, ops);
  ASSERT_EQ(pure.mv, MotionVector::from_pixels(4, 0));

  // Penalty declares everything with mv.x > 0 damaged (huge cost).
  MePenaltyFn penalty = [](int, int, MotionVector mv) -> std::int64_t {
    return mv.x > 0 ? 1'000'000 : 0;
  };
  MotionResult steered = search_motion(cur, ref, 5, 4, config, penalty, ops);
  EXPECT_LE(steered.mv.x, 0);
  EXPECT_GT(steered.sad, 0);       // gave up the perfect match...
  EXPECT_LT(steered.cost, 1'000'000);  // ...to avoid the damaged region
}

TEST(MotionSearch, PenaltyTiebreakPrefersTrustedRegion) {
  // Flat frame: every candidate has SAD 0; the penalty alone must decide.
  video::Plane flat(176, 144, 90);
  energy::OpCounters ops;
  MotionSearchConfig config;
  config.strategy = SearchStrategy::kFullSearch;
  config.range = 2;
  MePenaltyFn penalty = [](int, int, MotionVector mv) -> std::int64_t {
    // Only one pixel to the left is trusted (half-pel units: (-2, 0)).
    return mv == MotionVector::from_pixels(-1, 0) ? 0 : 100;
  };
  MotionResult result = search_motion(flat, flat, 5, 4, config, penalty, ops);
  EXPECT_EQ(result.mv, MotionVector::from_pixels(-1, 0));
}

TEST(MotionSearch, MetersCandidateWork) {
  video::Plane ref = textured_plane(176, 144, 40);
  video::Plane cur = textured_plane(176, 144, 41);
  energy::OpCounters ops;
  MotionSearchConfig config;
  config.strategy = SearchStrategy::kFullSearch;
  config.range = 3;
  config.half_pel = false;
  MotionResult result = search_motion(cur, ref, 5, 4, config, nullptr, ops);
  EXPECT_EQ(result.candidates, 49u);
  // Early termination means <= 49 * 256 pixel ops but > 0.
  EXPECT_GT(ops.sad_pixel_ops, 256u);
  EXPECT_LE(ops.sad_pixel_ops, 49u * 256u);
}

}  // namespace
}  // namespace pbpair::codec
