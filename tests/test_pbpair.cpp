// Tests for the PBPAIR core: correctness matrix, similarity factors, the
// update formulas (1)(2)(3), encoding-mode selection, and the ME penalty.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/encoder.h"
#include "core/correctness_matrix.h"
#include "core/pbpair_policy.h"
#include "core/similarity.h"
#include "video/sequence.h"

namespace pbpair::core {
namespace {

using common::kQ16One;
using common::Q16;
using common::q16_from_double;
using common::q16_to_double;

TEST(CorrectnessMatrix, InitializesToOne) {
  // "Start from an error free image frame: ∀i,j set σ = 1" (Fig. 2).
  CorrectnessMatrix m(11, 9);
  EXPECT_EQ(m.cols(), 11);
  EXPECT_EQ(m.rows(), 9);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 11; ++x) EXPECT_EQ(m.at(x, y), kQ16One);
  }
  EXPECT_DOUBLE_EQ(m.average(), 1.0);
  EXPECT_EQ(m.count_below(kQ16One), 0);
}

TEST(CorrectnessMatrix, MinOverAlignedRegionIsThatMb) {
  CorrectnessMatrix m(11, 9);
  m.set(3, 2, q16_from_double(0.5));
  EXPECT_EQ(m.min_over_region(3 * 16, 2 * 16), q16_from_double(0.5));
  EXPECT_EQ(m.min_over_region(4 * 16, 2 * 16), kQ16One);
}

TEST(CorrectnessMatrix, MinOverStraddlingRegionTakesWorst) {
  CorrectnessMatrix m(11, 9);
  m.set(3, 2, q16_from_double(0.9));
  m.set(4, 2, q16_from_double(0.4));
  m.set(3, 3, q16_from_double(0.7));
  m.set(4, 3, q16_from_double(0.8));
  // A region offset by (+8, +8) from MB (3,2) overlaps all four.
  EXPECT_EQ(m.min_over_region(3 * 16 + 8, 2 * 16 + 8), q16_from_double(0.4));
}

TEST(CorrectnessMatrix, MinOverRegionClampsAtBorders) {
  CorrectnessMatrix m(11, 9);
  m.set(0, 0, q16_from_double(0.3));
  EXPECT_EQ(m.min_over_region(-5, -5), q16_from_double(0.3));
  m.set(10, 8, q16_from_double(0.2));
  EXPECT_EQ(m.min_over_region(10 * 16 + 8, 8 * 16 + 8), q16_from_double(0.2));
}

TEST(CorrectnessMatrix, CountBelowAndReset) {
  CorrectnessMatrix m(4, 4);
  m.set(0, 0, q16_from_double(0.2));
  m.set(1, 1, q16_from_double(0.8));
  EXPECT_EQ(m.count_below(q16_from_double(0.5)), 1);
  EXPECT_EQ(m.count_below(q16_from_double(0.9)), 2);
  m.reset();
  EXPECT_EQ(m.count_below(kQ16One), 0);
}

// --- Similarity models ---

TEST(Similarity, IdenticalMbsGiveOne) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame f0 = seq.frame_at(0);
  CopyConcealmentSimilarity model;
  energy::OpCounters ops;
  EXPECT_EQ(model.similarity(f0, &f0, 0, 0, ops), kQ16One);
  EXPECT_GT(ops.sad_pixel_ops, 0u);  // the SAD is metered (encoder work)
}

TEST(Similarity, MovingContentGivesLowerFactor) {
  video::SyntheticSequence garden =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  video::YuvFrame f0 = garden.frame_at(0);
  video::YuvFrame f1 = garden.frame_at(1);
  CopyConcealmentSimilarity model;
  energy::OpCounters ops;
  Q16 moving = model.similarity(f1, &f0, 5, 4, ops);
  EXPECT_LT(moving, kQ16One);

  video::SyntheticSequence akiyo =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame a0 = akiyo.frame_at(0);
  video::YuvFrame a1 = akiyo.frame_at(1);
  Q16 still = model.similarity(a1, &a0, 0, 0, ops);  // static background MB
  EXPECT_GT(still, q16_from_double(0.9));  // only sensor noise
  EXPECT_GT(still, moving);
}

TEST(Similarity, NullPreviousFrameDefaultsToOne) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame f0 = seq.frame_at(0);
  CopyConcealmentSimilarity model;
  energy::OpCounters ops;
  EXPECT_EQ(model.similarity(f0, nullptr, 0, 0, ops), kQ16One);
}

TEST(Similarity, NoSimilarityIsAlwaysZero) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame f0 = seq.frame_at(0);
  NoSimilarity model;
  energy::OpCounters ops;
  EXPECT_EQ(model.similarity(f0, &f0, 0, 0, ops), 0u);
}

TEST(Similarity, ConstantModelReturnsItsValue) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame f0 = seq.frame_at(0);
  ConstantSimilarity model(q16_from_double(0.25));
  energy::OpCounters ops;
  EXPECT_EQ(model.similarity(f0, &f0, 3, 3, ops), q16_from_double(0.25));
}

// --- PBPAIR policy ---

PbpairConfig config_with(double intra_th, double plr) {
  PbpairConfig config;
  config.intra_th = intra_th;
  config.plr = plr;
  return config;
}

TEST(PbpairPolicy, IntraThZeroNeverForcesIntra) {
  // §4.3: Intra_Th = 0 means maximum compression efficiency — PBPAIR
  // degenerates to the NO scheme.
  PbpairPolicy policy(11, 9, config_with(0.0, 0.3));
  for (int i = 0; i < 99; ++i) {
    EXPECT_FALSE(policy.force_intra_pre_me(1, i % 11, i / 11));
  }
}

TEST(PbpairPolicy, FreshMatrixAboveThresholdNeedsNoRefresh) {
  PbpairPolicy policy(11, 9, config_with(0.9, 0.1));
  // All sigma start at 1.0 >= any threshold < 1: no forced intra yet.
  EXPECT_FALSE(policy.force_intra_pre_me(1, 5, 5));
}

TEST(PbpairPolicy, Formula3DecayWithNoSimilarity) {
  // With sim = 0 and all-inter encoding, σ^k = (1-α)^k (Equation 3).
  PbpairConfig config = config_with(0.0, 0.25);  // th 0: nothing forced
  config.similarity = std::make_shared<const NoSimilarity>();
  PbpairPolicy policy(11, 9, config);

  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame frame = seq.frame_at(0);
  std::vector<codec::MbEncodeRecord> records(99);
  for (auto& r : records) {
    r.mode = codec::MbMode::kInter;
    r.mv = codec::MotionVector{0, 0};
  }
  energy::OpCounters ops;
  codec::FrameEncodeInfo info;
  info.mb_cols = 11;
  info.mb_rows = 9;
  info.mb_records = &records;
  info.original = &frame;
  info.prev_original = &frame;
  info.ops = &ops;

  for (int k = 1; k <= 4; ++k) {
    info.frame_index = k;
    policy.on_frame_encoded(info);
    double expected = std::pow(0.75, k);
    EXPECT_NEAR(q16_to_double(policy.matrix().at(5, 5)), expected, 0.01)
        << "frame " << k;
  }
}

TEST(PbpairPolicy, IntraUpdateRestoresConfidence) {
  // Formula (2): an intra MB at PLR α with similarity s ends at
  // (1-α) + α*s*σ_prev.
  PbpairConfig config = config_with(0.0, 0.2);
  config.similarity =
      std::make_shared<const ConstantSimilarity>(q16_from_double(0.5));
  PbpairPolicy policy(11, 9, config);

  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame frame = seq.frame_at(0);
  std::vector<codec::MbEncodeRecord> records(99);
  for (auto& r : records) r.mode = codec::MbMode::kIntra;
  energy::OpCounters ops;
  codec::FrameEncodeInfo info;
  info.frame_index = 1;
  info.mb_cols = 11;
  info.mb_rows = 9;
  info.mb_records = &records;
  info.original = &frame;
  info.prev_original = &frame;
  info.ops = &ops;
  policy.on_frame_encoded(info);
  // σ_prev = 1: expect 0.8 + 0.2*0.5*1 = 0.9.
  EXPECT_NEAR(q16_to_double(policy.matrix().at(4, 4)), 0.9, 0.01);

  // Second intra frame: 0.8 + 0.2*0.5*0.9 = 0.89.
  info.frame_index = 2;
  policy.on_frame_encoded(info);
  EXPECT_NEAR(q16_to_double(policy.matrix().at(4, 4)), 0.89, 0.01);
}

TEST(PbpairPolicy, InterUpdateUsesWorstRelatedMb) {
  // Formula (1): the clean term is (1-α)·min(σ of MBs under the vector).
  PbpairConfig config = config_with(0.0, 0.1);
  config.similarity = std::make_shared<const NoSimilarity>();
  PbpairPolicy policy(11, 9, config);

  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame frame = seq.frame_at(0);
  std::vector<codec::MbEncodeRecord> records(99);
  // First pass: make MB (6,4) intra and everything else inter, with enough
  // loss that the inter MBs drop visibly; then have MB (5,4) predict from
  // (6,4)'s position and verify it inherits the *minimum*.
  for (auto& r : records) r.mode = codec::MbMode::kInter;
  records[4 * 11 + 6].mode = codec::MbMode::kIntra;
  energy::OpCounters ops;
  codec::FrameEncodeInfo info;
  info.frame_index = 1;
  info.mb_cols = 11;
  info.mb_rows = 9;
  info.mb_records = &records;
  info.original = &frame;
  info.prev_original = &frame;
  info.ops = &ops;
  policy.on_frame_encoded(info);
  // After frame 1: intra MB (6,4) has σ 0.9; inter MBs have 0.9 too
  // ((1-α)*min(1)). One more inter round separates them.
  info.frame_index = 2;
  policy.on_frame_encoded(info);
  double sigma_intra = q16_to_double(policy.matrix().at(6, 4));
  double sigma_inter = q16_to_double(policy.matrix().at(5, 4));
  EXPECT_NEAR(sigma_intra, 0.9, 0.01);        // refreshed again? no: inter now
  EXPECT_NEAR(sigma_inter, 0.81, 0.01);       // 0.9 * 0.9

  // Frame 3: MB (5,4) predicts from a region straddling (5,4) and (6,4).
  records[4 * 11 + 6].mode = codec::MbMode::kInter;
  records[4 * 11 + 5].mv = codec::MotionVector{8, 0};
  info.frame_index = 3;
  policy.on_frame_encoded(info);
  // min(σ(5,4)=0.81, σ(6,4)=0.81... both inter after frame2) — recompute:
  // after frame 2 (6,4) was inter: σ = 0.9*0.9 = 0.81 as well. The
  // straddle min is 0.81 so (5,4) = 0.9*0.81 = 0.729.
  EXPECT_NEAR(q16_to_double(policy.matrix().at(5, 4)), 0.729, 0.01);
}

TEST(PbpairPolicy, SkipTreatedAsZeroVectorInter) {
  PbpairConfig config = config_with(0.0, 0.3);
  config.similarity = std::make_shared<const NoSimilarity>();
  PbpairPolicy policy(11, 9, config);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame frame = seq.frame_at(0);
  std::vector<codec::MbEncodeRecord> records(99);
  for (auto& r : records) r.mode = codec::MbMode::kSkip;
  energy::OpCounters ops;
  codec::FrameEncodeInfo info;
  info.frame_index = 1;
  info.mb_cols = 11;
  info.mb_rows = 9;
  info.mb_records = &records;
  info.original = &frame;
  info.prev_original = &frame;
  info.ops = &ops;
  policy.on_frame_encoded(info);
  EXPECT_NEAR(q16_to_double(policy.matrix().at(2, 2)), 0.7, 0.01);
}

TEST(PbpairPolicy, HigherPlrDecaysFaster) {
  // §3.2: "if PLR increases and Intra_Th is fixed, σ decreases faster.
  // Therefore PBPAIR inserts more intra macro blocks."
  auto run_decay = [](double plr) {
    PbpairConfig config = config_with(0.0, plr);
    config.similarity = std::make_shared<const NoSimilarity>();
    PbpairPolicy policy(11, 9, config);
    video::SyntheticSequence seq =
        video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
    video::YuvFrame frame = seq.frame_at(0);
    std::vector<codec::MbEncodeRecord> records(99);
    for (auto& r : records) r.mode = codec::MbMode::kInter;
    energy::OpCounters ops;
    codec::FrameEncodeInfo info;
    info.mb_cols = 11;
    info.mb_rows = 9;
    info.mb_records = &records;
    info.original = &frame;
    info.prev_original = &frame;
    info.ops = &ops;
    for (int k = 1; k <= 5; ++k) {
      info.frame_index = k;
      policy.on_frame_encoded(info);
    }
    return policy.matrix().average();
  };
  EXPECT_GT(run_decay(0.05), run_decay(0.10));
  EXPECT_GT(run_decay(0.10), run_decay(0.30));
}

TEST(PbpairPolicy, MePenaltyScalesWithDistrust) {
  PbpairConfig config = config_with(0.9, 0.1);
  config.me_penalty_scale = 1000;
  PbpairPolicy policy(11, 9, config);
  EXPECT_TRUE(policy.has_me_penalty());
  // Fresh matrix: penalty 0 everywhere.
  EXPECT_EQ(policy.me_penalty(5, 5, codec::MotionVector{0, 0}), 0);

  // Manufacture distrust via an update round, then check monotonicity
  // through the public hook: lower sigma => higher penalty.
  PbpairConfig low_config = config_with(0.0, 0.5);
  low_config.similarity = std::make_shared<const NoSimilarity>();
  low_config.me_penalty_scale = 1000;
  PbpairPolicy low(11, 9, low_config);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame frame = seq.frame_at(0);
  std::vector<codec::MbEncodeRecord> records(99);
  for (auto& r : records) r.mode = codec::MbMode::kInter;
  energy::OpCounters ops;
  codec::FrameEncodeInfo info;
  info.frame_index = 1;
  info.mb_cols = 11;
  info.mb_rows = 9;
  info.mb_records = &records;
  info.original = &frame;
  info.prev_original = &frame;
  info.ops = &ops;
  low.on_frame_encoded(info);  // all sigma now 0.5
  std::int64_t penalty = low.me_penalty(5, 5, codec::MotionVector{0, 0});
  EXPECT_NEAR(static_cast<double>(penalty), 500.0, 5.0);  // λ(1-0.5)
}

TEST(PbpairPolicy, MePenaltyCanBeDisabled) {
  PbpairConfig config = config_with(0.9, 0.1);
  config.use_me_penalty = false;
  PbpairPolicy policy(11, 9, config);
  EXPECT_FALSE(policy.has_me_penalty());
}

TEST(PbpairPolicy, LiveParameterUpdatesClamp) {
  PbpairPolicy policy(11, 9, config_with(0.5, 0.1));
  policy.set_intra_th(1.7);
  EXPECT_DOUBLE_EQ(policy.intra_th(), 1.0);
  policy.set_plr(-0.2);
  EXPECT_DOUBLE_EQ(policy.plr(), 0.0);
  policy.set_intra_th(0.42);
  EXPECT_NEAR(policy.intra_th(), 0.42, 1e-4);
}

TEST(PbpairPolicy, ResetRestoresErrorFreeState) {
  PbpairConfig config = config_with(0.0, 0.5);
  config.similarity = std::make_shared<const NoSimilarity>();
  PbpairPolicy policy(11, 9, config);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  video::YuvFrame frame = seq.frame_at(0);
  std::vector<codec::MbEncodeRecord> records(99);
  for (auto& r : records) r.mode = codec::MbMode::kInter;
  energy::OpCounters ops;
  codec::FrameEncodeInfo info;
  info.frame_index = 1;
  info.mb_cols = 11;
  info.mb_rows = 9;
  info.mb_records = &records;
  info.original = &frame;
  info.prev_original = &frame;
  info.ops = &ops;
  policy.on_frame_encoded(info);
  EXPECT_LT(policy.matrix().average(), 1.0);
  policy.reset();
  EXPECT_DOUBLE_EQ(policy.matrix().average(), 1.0);
}

// --- Encoder-integrated behaviour ---

TEST(PbpairPolicy, IntraThOneForcesAllIntraInSteadyState) {
  // §4.3: Intra_Th = 1 means every MB is encoded intra (maximum error
  // resilience). Any σ < 1 triggers refresh; with any loss probability σ
  // drops below 1 after the first frame.
  PbpairConfig config = config_with(1.0, 0.1);
  PbpairPolicy policy(11, 9, config);
  codec::Encoder encoder(codec::EncoderConfig{}, &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  encoder.encode_frame(seq.frame_at(0));
  encoder.encode_frame(seq.frame_at(1));
  codec::EncodedFrame frame = encoder.encode_frame(seq.frame_at(2));
  EXPECT_EQ(frame.intra_mb_count(), 99);
}

TEST(PbpairPolicy, SkipsMeForEveryEarlyIntra) {
  PbpairConfig config = config_with(1.0, 0.2);
  PbpairPolicy policy(11, 9, config);
  codec::Encoder encoder(codec::EncoderConfig{}, &policy);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  encoder.encode_frame(seq.frame_at(0));
  encoder.encode_frame(seq.frame_at(1));
  auto before = encoder.ops().me_invocations;
  encoder.encode_frame(seq.frame_at(2));
  // Steady state at Intra_Th 1: zero motion searches.
  EXPECT_EQ(encoder.ops().me_invocations, before);
}

TEST(PbpairPolicy, HigherIntraThProducesMoreIntraMbs) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  auto intra_count = [&seq](double th) {
    PbpairPolicy policy(11, 9, config_with(th, 0.1));
    codec::Encoder encoder(codec::EncoderConfig{}, &policy);
    int total = 0;
    for (int i = 0; i < 12; ++i) {
      codec::EncodedFrame f = encoder.encode_frame(seq.frame_at(i));
      if (f.type == codec::FrameType::kInter) total += f.intra_mb_count();
    }
    return total;
  };
  int low = intra_count(0.5);
  int mid = intra_count(0.9);
  int high = intra_count(0.99);
  EXPECT_LE(low, mid);
  EXPECT_LT(mid, high);
}

}  // namespace
}  // namespace pbpair::core
