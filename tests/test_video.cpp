// Tests for frames, metrics, noise, and the synthetic sequences.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "codec/sad.h"
#include "video/frame.h"
#include "video/metrics.h"
#include "video/noise.h"
#include "video/sequence.h"
#include "video/yuv_io.h"

namespace pbpair::video {
namespace {

TEST(Frame, QcifGeometry) {
  YuvFrame frame = make_qcif_frame();
  EXPECT_EQ(frame.width(), 176);
  EXPECT_EQ(frame.height(), 144);
  EXPECT_EQ(frame.mb_cols(), 11);
  EXPECT_EQ(frame.mb_rows(), 9);
  EXPECT_EQ(frame.mb_count(), 99);  // the paper's 9x11 matrix
  EXPECT_EQ(frame.u().width(), 88);
  EXPECT_EQ(frame.u().height(), 72);
}

TEST(Frame, FillGray) {
  YuvFrame frame(32, 32);
  frame.fill_gray();
  EXPECT_EQ(frame.y().at(5, 5), 128);
  EXPECT_EQ(frame.u().at(3, 3), 128);
  EXPECT_EQ(frame.v().at(0, 0), 128);
}

TEST(Frame, EqualityIsDeep) {
  YuvFrame a(32, 32);
  YuvFrame b(32, 32);
  a.fill_gray();
  b.fill_gray();
  EXPECT_EQ(a, b);
  b.y().set(1, 1, 99);
  EXPECT_NE(a, b);
}

TEST(Plane, ClampedReadAtBorders) {
  Plane plane(8, 8, 0);
  plane.set(0, 0, 11);
  plane.set(7, 7, 22);
  EXPECT_EQ(plane.at_clamped(-5, -5), 11);
  EXPECT_EQ(plane.at_clamped(100, 100), 22);
  EXPECT_EQ(plane.at_clamped(0, 100), plane.at(0, 7));
}

TEST(Metrics, IdenticalFramesHitPsnrCap) {
  YuvFrame a(32, 32);
  a.fill_gray();
  EXPECT_DOUBLE_EQ(psnr_luma(a, a), 99.0);
  EXPECT_EQ(bad_pixel_count(a, a), 0u);
  EXPECT_EQ(sse_luma(a, a), 0u);
}

TEST(Metrics, KnownMseGivesKnownPsnr) {
  YuvFrame a(32, 32);
  YuvFrame b(32, 32);
  a.fill_gray();
  b.fill_gray();
  // Perturb every pixel by +5 => MSE 25 => PSNR = 10*log10(255^2/25).
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) b.y().set(x, y, 133);
  }
  EXPECT_NEAR(psnr_luma(a, b), 10.0 * std::log10(255.0 * 255.0 / 25.0), 1e-9);
}

TEST(Metrics, BadPixelThresholdIsStrict) {
  YuvFrame a(32, 32);
  YuvFrame b(32, 32);
  a.fill_gray();
  b.fill_gray();
  b.y().set(0, 0, 128 + 20);  // == threshold: not bad
  b.y().set(1, 0, 128 + 21);  // > threshold: bad
  EXPECT_EQ(bad_pixel_count(a, b, 20), 1u);
}

TEST(Metrics, BadPixelCountsEachPixelOnce) {
  YuvFrame a(32, 32);
  YuvFrame b(32, 32);
  a.fill_gray();
  b.fill_gray();
  for (int x = 0; x < 10; ++x) b.y().set(x, 3, 255);
  EXPECT_EQ(bad_pixel_count(a, b), 10u);
}

TEST(Noise, DeterministicAcrossInstances) {
  ValueNoise a(42);
  ValueNoise b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.sample(i * 3, i * 7, 16), b.sample(i * 3, i * 7, 16));
    EXPECT_EQ(a.fractal(i, -i, 32, 3), b.fractal(i, -i, 32, 3));
  }
}

TEST(Noise, SamplesWithinByteRange) {
  ValueNoise noise(7);
  for (int y = -50; y < 50; y += 7) {
    for (int x = -50; x < 50; x += 5) {
      int v = noise.fractal(x, y, 16, 4);
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 255);
    }
  }
}

TEST(Noise, DifferentSeedsGiveDifferentFields) {
  ValueNoise a(1);
  ValueNoise b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.sample(i * 11, i * 13, 16) != b.sample(i * 11, i * 13, 16)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 25);
}

TEST(Noise, SpatialCorrelationWithinCell) {
  // Neighboring samples inside one lattice cell differ less than samples
  // from far apart cells on average.
  ValueNoise noise(99);
  long long near_diff = 0, far_diff = 0;
  for (int i = 0; i < 200; ++i) {
    int x = i * 3, y = i * 5;
    near_diff += std::abs(noise.sample(x, y, 32) - noise.sample(x + 1, y, 32));
    far_diff +=
        std::abs(noise.sample(x, y, 32) - noise.sample(x + 500, y + 700, 32));
  }
  EXPECT_LT(near_diff, far_diff);
}

// --- Synthetic sequences ---

TEST(Sequence, FrameAtIsPure) {
  SyntheticSequence seq = make_paper_sequence(SequenceKind::kForemanLike);
  YuvFrame a = seq.frame_at(17);
  YuvFrame b = seq.frame_at(17);
  EXPECT_EQ(a, b);
}

TEST(Sequence, DifferentSeedsDiffer) {
  SyntheticSequence a(SequenceKind::kForemanLike, 176, 144, 1);
  SyntheticSequence b(SequenceKind::kForemanLike, 176, 144, 2);
  EXPECT_NE(a.frame_at(0), b.frame_at(0));
}

TEST(Sequence, NamesMatchPaperClips) {
  EXPECT_STREQ(sequence_kind_name(SequenceKind::kAkiyoLike), "akiyo");
  EXPECT_STREQ(sequence_kind_name(SequenceKind::kForemanLike), "foreman");
  EXPECT_STREQ(sequence_kind_name(SequenceKind::kGardenLike), "garden");
}

// Mean co-located SAD between consecutive frames = motion activity proxy.
double motion_activity(SequenceKind kind, int frames) {
  SyntheticSequence seq = make_paper_sequence(kind);
  energy::OpCounters ops;
  std::int64_t total = 0;
  int blocks = 0;
  YuvFrame prev = seq.frame_at(0);
  for (int i = 1; i <= frames; ++i) {
    YuvFrame cur = seq.frame_at(i);
    for (int my = 0; my < cur.mb_rows(); ++my) {
      for (int mx = 0; mx < cur.mb_cols(); ++mx) {
        total += codec::sad_16x16(cur.y(), mx * 16, my * 16, prev.y(),
                                  mx * 16, my * 16, ops);
        ++blocks;
      }
    }
    prev = cur;
  }
  return static_cast<double>(total) / blocks;
}

TEST(Sequence, MotionActivityOrderingMatchesPaperClips) {
  // The experiments depend on akiyo < foreman < garden motion activity
  // (DESIGN.md §2); this is the load-bearing property of the substitution.
  double akiyo = motion_activity(SequenceKind::kAkiyoLike, 12);
  double foreman = motion_activity(SequenceKind::kForemanLike, 12);
  double garden = motion_activity(SequenceKind::kGardenLike, 12);
  EXPECT_LT(akiyo * 1.2, foreman);
  EXPECT_LT(foreman * 1.5, garden);
}

TEST(Sequence, AkiyoBackgroundIsNearStatic) {
  SyntheticSequence seq = make_paper_sequence(SequenceKind::kAkiyoLike);
  YuvFrame f0 = seq.frame_at(0);
  YuvFrame f1 = seq.frame_at(1);
  // Top-left corner MB is background: only sensor noise (+/-2 per pixel)
  // separates consecutive frames on a tripod shot.
  energy::OpCounters ops;
  std::int64_t sad = codec::sad_16x16(f0.y(), 0, 0, f1.y(), 0, 0, ops);
  EXPECT_GT(sad, 0);          // noise exists (concealment is not perfect)
  EXPECT_LT(sad, 256 * 3);    // but it is tiny (tripod, studio light)
}

TEST(Sequence, GardenPansEveryRegion) {
  SyntheticSequence seq = make_paper_sequence(SequenceKind::kGardenLike);
  YuvFrame f0 = seq.frame_at(0);
  YuvFrame f4 = seq.frame_at(4);
  energy::OpCounters ops;
  // After 4 frames of ~2.5 px/frame pan every MB should have moved.
  int moved = 0;
  for (int my = 0; my < f0.mb_rows(); ++my) {
    for (int mx = 0; mx < f0.mb_cols(); ++mx) {
      if (codec::sad_16x16(f4.y(), mx * 16, my * 16, f0.y(), mx * 16,
                           my * 16, ops) > 1000) {
        ++moved;
      }
    }
  }
  EXPECT_GT(moved, 90);  // out of 99
}

TEST(Sequence, GardenPanIsTrueTranslation) {
  // frame k+2 shifted by the pan vector should match frame k almost
  // exactly in the interior (integer pan of 5 px per 2 frames).
  SyntheticSequence seq = make_paper_sequence(SequenceKind::kGardenLike);
  YuvFrame f0 = seq.frame_at(0);
  YuvFrame f2 = seq.frame_at(2);
  energy::OpCounters ops;
  // pan offset between frame 0 and 2: (5, 0) with the /4 vertical drift 0.
  std::int64_t sad =
      codec::sad_16x16(f2.y(), 32, 32, f0.y(), 32 + 5, 32 + 0, ops);
  EXPECT_EQ(sad, 0);
}

TEST(YuvIo, WriteReadRoundTrip) {
  SyntheticSequence seq = make_paper_sequence(SequenceKind::kAkiyoLike);
  std::vector<YuvFrame> frames = {seq.frame_at(0), seq.frame_at(1)};
  const std::string path = "/tmp/pbpair_test_roundtrip.yuv";
  ASSERT_TRUE(write_yuv_file(path, frames));
  std::vector<YuvFrame> back = read_yuv_file(path, 176, 144);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], frames[0]);
  EXPECT_EQ(back[1], frames[1]);
  std::remove(path.c_str());
}

TEST(YuvIo, MaxFramesLimitsRead) {
  SyntheticSequence seq = make_paper_sequence(SequenceKind::kAkiyoLike);
  std::vector<YuvFrame> frames = {seq.frame_at(0), seq.frame_at(1),
                                  seq.frame_at(2)};
  const std::string path = "/tmp/pbpair_test_maxframes.yuv";
  ASSERT_TRUE(write_yuv_file(path, frames));
  EXPECT_EQ(read_yuv_file(path, 176, 144, 2).size(), 2u);
  std::remove(path.c_str());
}

TEST(YuvIo, MissingFileGivesEmpty) {
  EXPECT_TRUE(read_yuv_file("/tmp/does_not_exist_pbpair.yuv", 176, 144).empty());
}

TEST(YuvIo, TruncatedFileDropsPartialFrame) {
  SyntheticSequence seq = make_paper_sequence(SequenceKind::kAkiyoLike);
  std::vector<YuvFrame> frames = {seq.frame_at(0)};
  const std::string path = "/tmp/pbpair_test_trunc.yuv";
  ASSERT_TRUE(write_yuv_file(path, frames));
  // Append half a frame worth of garbage.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  std::vector<std::uint8_t> garbage(1000, 7);
  std::fwrite(garbage.data(), 1, garbage.size(), f);
  std::fclose(f);
  EXPECT_EQ(read_yuv_file(path, 176, 144).size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pbpair::video
