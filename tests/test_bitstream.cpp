// Tests for the bit-level writer/reader and Exp-Golomb codes.
#include <gtest/gtest.h>

#include "codec/bitstream.h"
#include "codec/golomb.h"
#include "common/rng.h"

namespace pbpair::codec {
namespace {

TEST(BitWriter, EmptyStreamFinishesEmpty) {
  BitWriter writer;
  EXPECT_EQ(writer.bit_count(), 0u);
  EXPECT_TRUE(writer.finish().empty());
}

TEST(BitWriter, SingleByteMsbFirst) {
  BitWriter writer;
  writer.put_bits(0b10110001, 8);
  auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110001);
}

TEST(BitWriter, CrossByteBoundary) {
  BitWriter writer;
  writer.put_bits(0b101, 3);
  writer.put_bits(0b11110000111, 11);
  auto bytes = writer.finish();  // 14 bits -> 2 bytes, zero-padded
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0b10111110);
  EXPECT_EQ(bytes[1], 0b00011100);
}

TEST(BitWriter, AlignPadsWithZeros) {
  BitWriter writer;
  writer.put_bits(0b1, 1);
  writer.align();
  EXPECT_TRUE(writer.byte_aligned());
  EXPECT_EQ(writer.bit_count(), 8u);
  auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10000000);
}

TEST(BitWriter, AlignOnBoundaryIsNoop) {
  BitWriter writer;
  writer.put_bits(0xAB, 8);
  writer.align();
  EXPECT_EQ(writer.bit_count(), 8u);
}

TEST(BitWriter, ByteOffsetTracksAlignedPosition) {
  BitWriter writer;
  writer.put_bits(0xFF, 8);
  writer.put_bits(0x12, 8);
  EXPECT_EQ(writer.byte_offset(), 2u);
}

TEST(BitWriter, ZeroCountWriteIsNoop) {
  BitWriter writer;
  writer.put_bits(0, 0);
  EXPECT_EQ(writer.bit_count(), 0u);
}

TEST(BitReader, ReadsBackWrittenBits) {
  BitWriter writer;
  writer.put_bits(0x3A, 7);
  writer.put_bits(0x1FFFF, 17);
  writer.put_bit(true);
  auto bytes = writer.finish();

  BitReader reader(bytes);
  std::uint32_t v = 0;
  ASSERT_TRUE(reader.get_bits(7, &v));
  EXPECT_EQ(v, 0x3Au);
  ASSERT_TRUE(reader.get_bits(17, &v));
  EXPECT_EQ(v, 0x1FFFFu);
  bool bit = false;
  ASSERT_TRUE(reader.get_bit(&bit));
  EXPECT_TRUE(bit);
}

TEST(BitReader, UnderrunReturnsFalse) {
  std::vector<std::uint8_t> bytes = {0xAA};
  BitReader reader(bytes);
  std::uint32_t v = 0;
  EXPECT_TRUE(reader.get_bits(8, &v));
  EXPECT_FALSE(reader.get_bits(1, &v));
  EXPECT_TRUE(reader.exhausted());
}

TEST(BitReader, AlignSkipsToNextByte) {
  std::vector<std::uint8_t> bytes = {0xFF, 0x55};
  BitReader reader(bytes);
  std::uint32_t v = 0;
  ASSERT_TRUE(reader.get_bits(3, &v));
  reader.align();
  ASSERT_TRUE(reader.get_bits(8, &v));
  EXPECT_EQ(v, 0x55u);
}

TEST(BitReader, BitsRemainingCountsDown) {
  std::vector<std::uint8_t> bytes = {0, 0};
  BitReader reader(bytes);
  EXPECT_EQ(reader.bits_remaining(), 16u);
  std::uint32_t v;
  reader.get_bits(5, &v);
  EXPECT_EQ(reader.bits_remaining(), 11u);
}

TEST(BitRoundTrip, RandomPatterns) {
  common::Pcg32 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<std::uint32_t, int>> fields;
    BitWriter writer;
    for (int i = 0; i < 100; ++i) {
      int count = static_cast<int>(rng.next_below(32)) + 1;
      std::uint32_t value =
          count == 32 ? rng.next_u32() : rng.next_u32() & ((1u << count) - 1);
      fields.emplace_back(value, count);
      writer.put_bits(value, count);
    }
    auto bytes = writer.finish();
    BitReader reader(bytes);
    for (auto [value, count] : fields) {
      std::uint32_t got = 0;
      ASSERT_TRUE(reader.get_bits(count, &got));
      ASSERT_EQ(got, value);
    }
  }
}

// --- Exp-Golomb ---

TEST(Golomb, UeKnownCodes) {
  // Classic table: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
  BitWriter writer;
  put_ue(writer, 0);
  put_ue(writer, 1);
  put_ue(writer, 2);
  put_ue(writer, 3);
  EXPECT_EQ(writer.bit_count(), 1u + 3 + 3 + 5);
  auto bytes = writer.finish();
  BitReader reader(bytes);
  std::uint32_t v;
  EXPECT_TRUE(get_ue(reader, &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(get_ue(reader, &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(get_ue(reader, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(get_ue(reader, &v));
  EXPECT_EQ(v, 3u);
}

TEST(Golomb, UeBitLengthMatchesWriter) {
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 7u, 8u, 100u, 65535u, 1000000u}) {
    BitWriter writer;
    put_ue(writer, v);
    EXPECT_EQ(static_cast<int>(writer.bit_count()), ue_bit_length(v)) << v;
  }
}

class GolombRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GolombRoundTrip, UeRoundTrips) {
  BitWriter writer;
  put_ue(writer, GetParam());
  auto bytes = writer.finish();
  BitReader reader(bytes);
  std::uint32_t got = 0;
  ASSERT_TRUE(get_ue(reader, &got));
  EXPECT_EQ(got, GetParam());
}

TEST_P(GolombRoundTrip, SeRoundTripsBothSigns) {
  auto v = static_cast<std::int32_t>(GetParam() % 100000);
  for (std::int32_t value : {v, -v}) {
    BitWriter writer;
    put_se(writer, value);
    auto bytes = writer.finish();
    BitReader reader(bytes);
    std::int32_t got = 0;
    ASSERT_TRUE(get_se(reader, &got));
    EXPECT_EQ(got, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, GolombRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 7u, 8u, 15u,
                                           16u, 255u, 256u, 65535u, 1u << 20,
                                           (1u << 30) - 1));

TEST(Golomb, SeMappingIsOrdered) {
  // se mapping: 0, 1, -1, 2, -2 ... ensures small magnitudes get short codes.
  auto bits_for = [](std::int32_t v) {
    BitWriter writer;
    put_se(writer, v);
    return writer.bit_count();
  };
  EXPECT_LE(bits_for(0), bits_for(1));
  EXPECT_LE(bits_for(1), bits_for(-1));
  EXPECT_LE(bits_for(-1), bits_for(2));
  EXPECT_LT(bits_for(2), bits_for(100));
}

TEST(Golomb, TruncatedInputFailsCleanly) {
  BitWriter writer;
  put_ue(writer, 1000000);  // long code
  auto bytes = writer.finish();
  bytes.resize(1);  // truncate
  BitReader reader(bytes);
  std::uint32_t v;
  EXPECT_FALSE(get_ue(reader, &v));
}

TEST(Golomb, AllZerosInputFailsCleanly) {
  std::vector<std::uint8_t> bytes(8, 0x00);  // 64 zero bits: malformed
  BitReader reader(bytes);
  std::uint32_t v;
  EXPECT_FALSE(get_ue(reader, &v));
}

TEST(Golomb, MixedStreamRoundTrips) {
  common::Pcg32 rng(123);
  BitWriter writer;
  std::vector<std::int32_t> values;
  for (int i = 0; i < 500; ++i) {
    std::int32_t v = rng.next_in_range(-1000, 1000);
    values.push_back(v);
    put_se(writer, v);
  }
  auto bytes = writer.finish();
  BitReader reader(bytes);
  for (std::int32_t expected : values) {
    std::int32_t got = 0;
    ASSERT_TRUE(get_se(reader, &got));
    ASSERT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace pbpair::codec
