// Tests for the extension features: SSIM, deblocking, operating-point
// exploration, and packet-level loss with fragmentation.
#include <gtest/gtest.h>

#include "codec/deblock.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/operating_points.h"
#include "net/loss_model.h"
#include "sim/pipeline.h"
#include "video/metrics.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

// --- SSIM ---

TEST(Ssim, IdenticalFramesScoreOne) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame f = seq.frame_at(3);
  EXPECT_DOUBLE_EQ(video::ssim_luma(f, f), 1.0);
}

TEST(Ssim, DegradesWithDistortion) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame original = seq.frame_at(0);
  video::YuvFrame slightly = original;
  video::YuvFrame heavily = original;
  for (int y = 0; y < 144; ++y) {
    for (int x = 0; x < 176; ++x) {
      int v = original.y().at(x, y);
      slightly.y().set(x, y, common::clamp_pixel(v + ((x + y) % 2 ? 2 : -2)));
      heavily.y().set(x, y, common::clamp_pixel(v + ((x + y) % 2 ? 25 : -25)));
    }
  }
  double s_slight = video::ssim_luma(original, slightly);
  double s_heavy = video::ssim_luma(original, heavily);
  EXPECT_LT(s_heavy, s_slight);
  EXPECT_LT(s_slight, 1.0);
  EXPECT_GT(s_heavy, -1.0);
}

TEST(Ssim, StructuralDamageHurtsMoreThanBrightnessShift) {
  // SSIM's selling point vs PSNR: a uniform brightness shift (structure
  // preserved) scores better than structured noise at equal MSE.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  video::YuvFrame original = seq.frame_at(0);
  video::YuvFrame shifted = original;
  video::YuvFrame scrambled = original;
  common::Pcg32 rng(5);
  for (int y = 0; y < 144; ++y) {
    for (int x = 0; x < 176; ++x) {
      int v = original.y().at(x, y);
      shifted.y().set(x, y, common::clamp_pixel(v + 10));
      scrambled.y().set(
          x, y, common::clamp_pixel(v + rng.next_in_range(-17, 17)));
    }
  }
  EXPECT_GT(video::ssim_luma(original, shifted),
            video::ssim_luma(original, scrambled));
}

// --- Deblocking ---

TEST(Deblock, StrengthGrowsWithQp) {
  EXPECT_LE(codec::deblock_strength(1), codec::deblock_strength(10));
  EXPECT_LE(codec::deblock_strength(10), codec::deblock_strength(31));
  EXPECT_GE(codec::deblock_strength(1), 1);
  EXPECT_LE(codec::deblock_strength(31), 12);
}

TEST(Deblock, SmallSeamIsSmoothed) {
  // A small step across the edge (coding noise) gets corrected...
  int delta = codec::deblock_delta(100, 100, 106, 106, /*strength=*/6);
  EXPECT_GT(delta, 0);
}

TEST(Deblock, LargeEdgeIsPreserved) {
  // ...while a large step (a real image edge) is left almost untouched.
  int delta = codec::deblock_delta(100, 100, 200, 200, /*strength=*/6);
  EXPECT_EQ(delta, 0);
}

TEST(Deblock, ReducesBlockSeamEnergy) {
  // Construct a frame of flat 8x8 tiles with alternating levels: the seam
  // gradient must shrink after filtering.
  video::YuvFrame frame(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      bool odd_tile = ((x / 8) + (y / 8)) % 2 != 0;
      frame.y().set(x, y, odd_tile ? 110 : 100);
    }
  }
  auto seam_energy = [&frame]() {
    long long e = 0;
    for (int y = 0; y < 64; ++y) {
      for (int x = 8; x < 64; x += 8) {
        e += std::abs(frame.y().at(x, y) - frame.y().at(x - 1, y));
      }
    }
    return e;
  };
  long long before = seam_energy();
  codec::deblock_frame(frame, /*qp=*/10);
  EXPECT_LT(seam_energy(), before);
}

TEST(Deblock, LockstepHoldsWithFilterEnabled) {
  // The decisive requirement: with deblocking on BOTH sides, decoder and
  // encoder reconstruction stay bit-identical across P-frames.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  codec::NoRefreshPolicy policy;
  codec::EncoderConfig econfig;
  econfig.deblocking = true;
  econfig.qp = 16;  // coarse quantization: the filter has work to do
  codec::Encoder encoder(econfig, &policy);
  codec::DecoderConfig dconfig;
  dconfig.deblocking = true;
  codec::Decoder decoder(dconfig);
  for (int i = 0; i < 5; ++i) {
    codec::EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
    ASSERT_EQ(decoder.decode_frame(frame), encoder.reconstructed())
        << "frame " << i;
  }
}

TEST(Deblock, ImprovesSsimAtCoarseQp) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  auto avg_ssim = [&seq](bool deblocking) {
    codec::NoRefreshPolicy policy;
    codec::EncoderConfig econfig;
    econfig.qp = 24;
    econfig.deblocking = deblocking;
    codec::Encoder encoder(econfig, &policy);
    codec::DecoderConfig dconfig;
    dconfig.deblocking = deblocking;
    codec::Decoder decoder(dconfig);
    double total = 0;
    for (int i = 0; i < 4; ++i) {
      video::YuvFrame original = seq.frame_at(i);
      total += video::ssim_luma(
          original, decoder.decode_frame(encoder.encode_frame(original)));
    }
    return total / 4;
  };
  EXPECT_GT(avg_ssim(true), avg_ssim(false) - 0.005);
}

// --- Operating points ---

TEST(OperatingPoints, ExploresFullGrid) {
  int calls = 0;
  auto points = core::explore_operating_points(
      {0.5, 0.9}, {0.05, 0.10, 0.20}, [&calls](core::OperatingPoint& p) {
        ++calls;
        p.avg_psnr_db = p.intra_th * 10 + p.plr;
      });
  EXPECT_EQ(points.size(), 6u);
  EXPECT_EQ(calls, 6);
  EXPECT_DOUBLE_EQ(points.front().plr, 0.05);
  EXPECT_DOUBLE_EQ(points.front().intra_th, 0.5);
  EXPECT_DOUBLE_EQ(points.back().plr, 0.20);
  EXPECT_DOUBLE_EQ(points.back().intra_th, 0.9);
}

TEST(OperatingPoints, ParetoMarksOnlyUndominated) {
  std::vector<core::OperatingPoint> points(4);
  // (quality, cost): A(10, 1) B(12, 2) C(9, 3) D(12, 2).
  points[0].avg_psnr_db = 10; points[0].encode_energy_j = 1;
  points[1].avg_psnr_db = 12; points[1].encode_energy_j = 2;
  points[2].avg_psnr_db = 9;  points[2].encode_energy_j = 3;  // dominated
  points[3].avg_psnr_db = 12; points[3].encode_energy_j = 2;  // tie with B
  int n = core::mark_pareto_frontier(
      points, [](const core::OperatingPoint& p) { return p.avg_psnr_db; },
      [](const core::OperatingPoint& p) { return p.encode_energy_j; });
  EXPECT_EQ(n, 3);
  EXPECT_TRUE(points[0].pareto_efficient);
  EXPECT_TRUE(points[1].pareto_efficient);
  EXPECT_FALSE(points[2].pareto_efficient);
  EXPECT_TRUE(points[3].pareto_efficient);  // ties do not dominate each other
}

TEST(OperatingPoints, PipelineEvaluatorProducesTradeoffCurve) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  sim::PipelineConfig config;
  config.frames = 20;
  auto points = core::explore_operating_points(
      {0.0, 0.9, 0.99}, {0.10},
      sim::make_pipeline_evaluator(seq, config));
  ASSERT_EQ(points.size(), 3u);
  // Higher threshold: more intra, bigger files, less encode energy.
  EXPECT_LE(points[0].intra_mbs_per_frame, points[1].intra_mbs_per_frame);
  EXPECT_LT(points[1].intra_mbs_per_frame, points[2].intra_mbs_per_frame);
  EXPECT_LT(points[0].size_kb, points[2].size_kb);
  EXPECT_GT(points[0].encode_energy_j, points[2].encode_energy_j);
  // On the (quality=PSNR, cost=encode energy) plane the sweep is its own
  // frontier: higher threshold is better on both axes under loss.
  int n = core::mark_pareto_frontier(
      points, [](const core::OperatingPoint& p) { return p.avg_psnr_db; },
      [](const core::OperatingPoint& p) { return p.encode_energy_j; });
  EXPECT_GE(n, 1);
  EXPECT_TRUE(points[2].pareto_efficient);
}

// --- Fragmentation under packet loss ---

TEST(Fragmentation, BernoulliLossWithTinyMtuLosesOnlyGobs) {
  // Small MTU forces multi-packet frames; per-packet Bernoulli loss then
  // produces PARTIAL frames — the decoder must decode surviving GOBs and
  // conceal only the missing ones.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  sim::PipelineConfig config;
  config.frames = 25;
  config.packetizer.mtu = 400;
  net::BernoulliPacketLoss loss(0.15, 99);
  sim::PipelineResult r = sim::run_pipeline(
      seq, sim::SchemeSpec::pbpair([] {
        core::PbpairConfig c;
        c.intra_th = 0.9;
        c.plr = 0.15;
        return c;
      }()),
      &loss, config);
  EXPECT_GT(r.channel.packets_sent, 50u);   // fragmentation happened
  EXPECT_GT(r.channel.packets_dropped, 0u);
  EXPECT_GT(r.concealed_mbs, 0u);
  // Partial delivery: concealed MBs must be far fewer than full-frame
  // losses would produce (packets_dropped covers only some GOBs each).
  EXPECT_LT(r.concealed_mbs, r.channel.packets_dropped * 99);
  EXPECT_GT(r.avg_psnr_db, 22.0);
}

TEST(Fragmentation, SmallerMtuMeansMorePacketsSameBytes) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  auto run_with_mtu = [&seq](std::size_t mtu) {
    sim::PipelineConfig config;
    config.frames = 10;
    config.packetizer.mtu = mtu;
    return sim::run_pipeline(seq, sim::SchemeSpec::no_resilience(), nullptr,
                             config);
  };
  sim::PipelineResult big = run_with_mtu(1400);
  sim::PipelineResult small = run_with_mtu(300);
  EXPECT_GT(small.channel.packets_sent, big.channel.packets_sent);
  EXPECT_EQ(small.total_bytes, big.total_bytes);  // same bitstream
  // Wire bytes include per-packet headers: more packets => more overhead.
  EXPECT_GT(small.channel.bytes_sent, big.channel.bytes_sent);
}

}  // namespace
}  // namespace pbpair
