// Tests for the rate controller and its pipeline integration (including
// composition with PBPAIR, which the paper calls out as a design property).
#include <gtest/gtest.h>

#include "codec/rate_control.h"
#include "sim/pipeline.h"

namespace pbpair::codec {
namespace {

TEST(RateControl, BudgetMatchesTarget) {
  RateControlConfig config;
  config.target_kbps = 64.0;
  config.frame_rate = 25.0;
  RateController rc(config);
  EXPECT_NEAR(rc.frame_budget_bytes(), 64.0 * 1000 / 8 / 25, 1e-9);
  EXPECT_EQ(rc.qp(), config.initial_qp);
}

TEST(RateControl, OversizedFramesRaiseQp) {
  RateControlConfig config;
  config.initial_qp = 10;
  RateController rc(config);
  double budget = rc.frame_budget_bytes();
  for (int i = 0; i < 5; ++i) {
    rc.on_frame_encoded(static_cast<std::size_t>(budget * 3), false);
  }
  EXPECT_GT(rc.qp(), 10);
}

TEST(RateControl, UndersizedFramesLowerQp) {
  RateControlConfig config;
  config.initial_qp = 20;
  RateController rc(config);
  double budget = rc.frame_budget_bytes();
  for (int i = 0; i < 5; ++i) {
    rc.on_frame_encoded(static_cast<std::size_t>(budget * 0.2), false);
  }
  EXPECT_LT(rc.qp(), 20);
}

TEST(RateControl, QpStaysWithinBounds) {
  RateControlConfig config;
  config.min_qp = 4;
  config.max_qp = 28;
  config.initial_qp = 10;
  RateController rc(config);
  double budget = rc.frame_budget_bytes();
  for (int i = 0; i < 100; ++i) {
    rc.on_frame_encoded(static_cast<std::size_t>(budget * 10), false);
  }
  EXPECT_EQ(rc.qp(), 28);
  for (int i = 0; i < 100; ++i) rc.on_frame_encoded(1, false);
  EXPECT_EQ(rc.qp(), 4);
}

TEST(RateControl, IntraAllowanceAbsorbsIFrameSpike) {
  RateControlConfig config;
  config.initial_qp = 10;
  config.intra_allowance = 3.0;
  RateController rc(config);
  double budget = rc.frame_budget_bytes();
  // One I-frame at 3x budget, treated as on-budget.
  rc.on_frame_encoded(static_cast<std::size_t>(budget * 3), true);
  EXPECT_EQ(rc.qp(), 10);
}

TEST(RateControl, ResetRestoresInitialState) {
  RateControlConfig config;
  RateController rc(config);
  rc.on_frame_encoded(static_cast<std::size_t>(rc.frame_budget_bytes() * 5),
                      false);
  rc.on_frame_encoded(static_cast<std::size_t>(rc.frame_budget_bytes() * 5),
                      false);
  EXPECT_NE(rc.qp(), config.initial_qp);
  rc.reset();
  EXPECT_EQ(rc.qp(), config.initial_qp);
  EXPECT_DOUBLE_EQ(rc.buffer_fullness(), 0.0);
}

class RateControlPipeline : public ::testing::TestWithParam<double> {};

TEST_P(RateControlPipeline, ConvergesToTargetRate) {
  const double target_kbps = GetParam();
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  sim::PipelineConfig config;
  config.frames = 60;
  RateControlConfig rate;
  rate.target_kbps = target_kbps;
  rate.frame_rate = 25.0;
  config.rate_control = rate;
  sim::PipelineResult r = sim::run_pipeline(
      seq, sim::SchemeSpec::no_resilience(), nullptr, config);

  // Measure the steady-state rate over the second half of the run.
  std::uint64_t bytes = 0;
  for (int i = 30; i < 60; ++i) bytes += r.frames[i].bytes;
  double kbps = static_cast<double>(bytes) * 8 * 25.0 / 30 / 1000.0;
  EXPECT_GT(kbps, target_kbps * 0.55) << "target " << target_kbps;
  EXPECT_LT(kbps, target_kbps * 1.6) << "target " << target_kbps;

  // QP must actually move (the clip does not naturally sit at the target).
  bool qp_changed = false;
  for (const sim::FrameTrace& f : r.frames) {
    if (f.qp != rate.initial_qp) qp_changed = true;
  }
  EXPECT_TRUE(qp_changed);
}

INSTANTIATE_TEST_SUITE_P(Targets, RateControlPipeline,
                         ::testing::Values(32.0, 64.0, 128.0));

TEST(RateControl, ComposesWithPbpair) {
  // §5: PBPAIR "is independent from any other encoder ... control
  // mechanisms (i.e. rate control ...)". Run both together and check both
  // do their jobs: rate near target AND intra refresh happening.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  sim::PipelineConfig config;
  config.frames = 60;
  RateControlConfig rate;
  rate.target_kbps = 96.0;
  rate.frame_rate = 25.0;
  config.rate_control = rate;
  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.95;
  pbpair.plr = 0.10;
  sim::PipelineResult r = sim::run_pipeline(
      seq, sim::SchemeSpec::pbpair(pbpair), nullptr, config);

  std::uint64_t bytes = 0;
  for (int i = 30; i < 60; ++i) bytes += r.frames[i].bytes;
  double kbps = static_cast<double>(bytes) * 8 * 25.0 / 30 / 1000.0;
  EXPECT_GT(kbps, 96.0 * 0.5);
  EXPECT_LT(kbps, 96.0 * 1.7);
  EXPECT_GT(r.total_intra_mbs, 200u);  // refresh still active
}

}  // namespace
}  // namespace pbpair::codec
