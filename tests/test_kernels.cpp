// Kernel-dispatch equivalence: every SIMD backend must reproduce the
// scalar reference bit-for-bit — same SAD/DCT/quant outputs, same
// early-exit row counts, and therefore identical energy::OpCounters
// deltas. Randomized over edge alignments, strides, and cutoff positions.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "codec/encoder.h"
#include "codec/kernels/kernels.h"
#include "codec/mc.h"
#include "codec/quant.h"
#include "codec/sad.h"
#include "common/rng.h"
#include "sim/scheme.h"
#include "video/frame.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

using codec::kernels::Backend;
using codec::kernels::KernelTable;

std::vector<const KernelTable*> simd_tables() {
  std::vector<const KernelTable*> tables;
  for (Backend backend : codec::kernels::supported_backends()) {
    if (backend == Backend::kScalar) continue;
    tables.push_back(codec::kernels::table_for(backend));
  }
  return tables;
}

// A buffer of noisy pixels with an odd stride so SIMD loads hit every
// alignment.
struct PixelField {
  explicit PixelField(std::uint64_t seed, int stride = 61, int rows = 96)
      : stride(stride), rows(rows), data(static_cast<std::size_t>(stride) * rows) {
    common::Pcg32 rng(seed);
    for (std::uint8_t& p : data) {
      p = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  const std::uint8_t* at(int x, int y) const {
    return data.data() + static_cast<std::size_t>(y) * stride + x;
  }
  int stride;
  int rows;
  std::vector<std::uint8_t> data;
};

TEST(Kernels, ScalarBackendAlwaysAvailable) {
  std::vector<Backend> backends = codec::kernels::supported_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), Backend::kScalar);
  EXPECT_NE(codec::kernels::table_for(Backend::kScalar), nullptr);
}

TEST(Kernels, SadMatchesScalarAcrossAlignments) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField cur(1), ref(2);
  common::Pcg32 rng(3);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 500; ++trial) {
      int cx = rng.next_in_range(0, cur.stride - 16);
      int cy = rng.next_in_range(0, cur.rows - 16);
      int rx = rng.next_in_range(0, ref.stride - 16);
      int ry = rng.next_in_range(0, ref.rows - 16);
      std::int64_t want = scalar.sad_16x16(cur.at(cx, cy), cur.stride,
                                           ref.at(rx, ry), ref.stride);
      std::int64_t got = simd->sad_16x16(cur.at(cx, cy), cur.stride,
                                         ref.at(rx, ry), ref.stride);
      ASSERT_EQ(want, got) << simd->name << " trial " << trial;
    }
  }
}

TEST(Kernels, SadCutoffMatchesScalarIncludingRowCounts) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField cur(4), ref(5);
  common::Pcg32 rng(6);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 1000; ++trial) {
      int cx = rng.next_in_range(0, cur.stride - 16);
      int cy = rng.next_in_range(0, cur.rows - 16);
      int rx = rng.next_in_range(0, ref.stride - 16);
      int ry = rng.next_in_range(0, ref.rows - 16);
      // Cutoffs spanning instant exit (<= 0), mid-block exits, and
      // never-exits (full 16 rows).
      std::int64_t cutoff;
      switch (trial % 4) {
        case 0: cutoff = rng.next_in_range(-5, 5); break;
        case 1: cutoff = rng.next_in_range(1, 4000); break;
        case 2: cutoff = rng.next_in_range(4000, 40000); break;
        default: cutoff = 1'000'000; break;
      }
      int want_rows = -1, got_rows = -1;
      std::int64_t want =
          scalar.sad_16x16_cutoff(cur.at(cx, cy), cur.stride, ref.at(rx, ry),
                                  ref.stride, cutoff, &want_rows);
      std::int64_t got =
          simd->sad_16x16_cutoff(cur.at(cx, cy), cur.stride, ref.at(rx, ry),
                                 ref.stride, cutoff, &got_rows);
      ASSERT_EQ(want, got) << simd->name << " trial " << trial;
      ASSERT_EQ(want_rows, got_rows) << simd->name << " trial " << trial;
    }
  }
}

TEST(Kernels, SadSelfMatchesScalar) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(8);
  for (const KernelTable* simd : simd_tables()) {
    // Uniform noise plus near-flat fields (mean truncation edge cases).
    for (std::uint64_t seed : {10ull, 11ull, 12ull}) {
      PixelField field(seed);
      for (int trial = 0; trial < 300; ++trial) {
        int cx = rng.next_in_range(0, field.stride - 16);
        int cy = rng.next_in_range(0, field.rows - 16);
        ASSERT_EQ(scalar.sad_self_16x16(field.at(cx, cy), field.stride),
                  simd->sad_self_16x16(field.at(cx, cy), field.stride))
            << simd->name << " seed " << seed << " trial " << trial;
      }
    }
  }
}

TEST(Kernels, DctMatchesScalar) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(20);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 2000; ++trial) {
      std::int16_t input[64];
      // Pixels, residuals, and full-range coefficients by turn.
      int lo = trial % 3 == 0 ? 0 : (trial % 3 == 1 ? -255 : -2048);
      int hi = trial % 3 == 0 ? 255 : (trial % 3 == 1 ? 255 : 2047);
      for (std::int16_t& v : input) {
        v = static_cast<std::int16_t>(rng.next_in_range(lo, hi));
      }
      std::int16_t want[64], got[64];
      scalar.forward_dct_8x8(input, want);
      simd->forward_dct_8x8(input, got);
      ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
          << simd->name << " fdct trial " << trial;
      scalar.inverse_dct_8x8(input, want);
      simd->inverse_dct_8x8(input, got);
      ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
          << simd->name << " idct trial " << trial;
    }
  }
}

TEST(Kernels, BatchedSadMatchesScalarSingleCalls) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField cur(60), ref(61);
  common::Pcg32 rng(62);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 400; ++trial) {
      int cx = rng.next_in_range(0, cur.stride - 16);
      int cy = rng.next_in_range(0, cur.rows - 16);
      const std::uint8_t* refs[8];
      std::int64_t want[8];
      for (int i = 0; i < 8; ++i) {
        int rx = rng.next_in_range(0, ref.stride - 16);
        int ry = rng.next_in_range(0, ref.rows - 16);
        refs[i] = ref.at(rx, ry);
        want[i] = scalar.sad_16x16(cur.at(cx, cy), cur.stride, refs[i],
                                   ref.stride);
      }
      std::int64_t got4[4] = {-1, -1, -1, -1};
      simd->sad_16x16_x4(cur.at(cx, cy), cur.stride, refs, ref.stride, got4);
      for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(want[i], got4[i])
            << simd->name << " x4 lane " << i << " trial " << trial;
      }
      std::int64_t got8[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
      simd->sad_16x16_x8(cur.at(cx, cy), cur.stride, refs, ref.stride, got8);
      for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(want[i], got8[i])
            << simd->name << " x8 lane " << i << " trial " << trial;
      }
    }
  }
}

TEST(Kernels, HalfpelSadMatchesScalarForAllPhasesIncludingRowCounts) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField cur(70), ref(71);
  common::Pcg32 rng(72);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 1000; ++trial) {
      int cx = rng.next_in_range(0, cur.stride - 16);
      int cy = rng.next_in_range(0, cur.rows - 16);
      // The interpolation reads a 17x17 envelope at (rx, ry).
      int rx = rng.next_in_range(0, ref.stride - 17);
      int ry = rng.next_in_range(0, ref.rows - 17);
      const int hx = trial & 1;
      const int hy = (trial >> 1) & 1;
      std::int64_t cutoff;
      switch (trial % 4) {
        case 0: cutoff = rng.next_in_range(-5, 5); break;
        case 1: cutoff = rng.next_in_range(1, 4000); break;
        case 2: cutoff = rng.next_in_range(4000, 40000); break;
        default: cutoff = 1'000'000; break;
      }
      int want_rows = -1, got_rows = -1;
      std::int64_t want = scalar.sad_16x16_hpel_cutoff(
          cur.at(cx, cy), cur.stride, ref.at(rx, ry), ref.stride, hx, hy,
          cutoff, &want_rows);
      std::int64_t got = simd->sad_16x16_hpel_cutoff(
          cur.at(cx, cy), cur.stride, ref.at(rx, ry), ref.stride, hx, hy,
          cutoff, &got_rows);
      ASSERT_EQ(want, got) << simd->name << " phase (" << hx << "," << hy
                           << ") trial " << trial;
      ASSERT_EQ(want_rows, got_rows)
          << simd->name << " phase (" << hx << "," << hy << ") trial "
          << trial;
    }
  }
}

TEST(Kernels, McPredictMatchesScalarForAllPhasesAndBlockSizes) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField ref(80);
  common::Pcg32 rng(81);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 1000; ++trial) {
      const int w = trial % 2 == 0 ? 16 : 8;
      const int h = w;
      int rx = rng.next_in_range(0, ref.stride - (w + 1));
      int ry = rng.next_in_range(0, ref.rows - (h + 1));
      const int hx = (trial >> 1) & 1;
      const int hy = (trial >> 2) & 1;
      std::uint8_t want[16 * 16], got[16 * 16];
      std::memset(want, 0xAB, sizeof(want));
      std::memset(got, 0xCD, sizeof(got));
      scalar.mc_predict(ref.at(rx, ry), ref.stride, want, w, h, hx, hy);
      simd->mc_predict(ref.at(rx, ry), ref.stride, got, w, h, hx, hy);
      ASSERT_EQ(0, std::memcmp(want, got, static_cast<std::size_t>(w) * h))
          << simd->name << " w " << w << " phase (" << hx << "," << hy
          << ") trial " << trial;
    }
  }
}

TEST(Kernels, ResidualKernelsMatchScalar) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField cur(90), pred(91);
  common::Pcg32 rng(92);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 500; ++trial) {
      int cx = rng.next_in_range(0, cur.stride - 8);
      int cy = rng.next_in_range(0, cur.rows - 8);
      int px = rng.next_in_range(0, pred.stride - 8);
      int py = rng.next_in_range(0, pred.rows - 8);

      std::int16_t want_res[64], got_res[64];
      scalar.sub_pred_8x8(cur.at(cx, cy), cur.stride, pred.at(px, py),
                          pred.stride, want_res);
      simd->sub_pred_8x8(cur.at(cx, cy), cur.stride, pred.at(px, py),
                         pred.stride, got_res);
      ASSERT_EQ(0, std::memcmp(want_res, got_res, sizeof(want_res)))
          << simd->name << " sub trial " << trial;

      // IDCT-range residuals, including ones that clamp on both ends.
      std::int16_t residual[64];
      for (std::int16_t& v : residual) {
        v = static_cast<std::int16_t>(rng.next_in_range(-2048, 2047));
      }
      std::uint8_t want_px[8 * 9], got_px[8 * 9];
      std::memset(want_px, 0x11, sizeof(want_px));
      std::memset(got_px, 0x22, sizeof(got_px));
      const int dst_stride = 9;  // deliberately != 8: checks stride handling
      scalar.add_pred_8x8(want_px, dst_stride, pred.at(px, py), pred.stride,
                          residual);
      simd->add_pred_8x8(got_px, dst_stride, pred.at(px, py), pred.stride,
                         residual);
      for (int row = 0; row < 8; ++row) {
        ASSERT_EQ(0, std::memcmp(want_px + row * dst_stride,
                                 got_px + row * dst_stride, 8))
            << simd->name << " add row " << row << " trial " << trial;
      }
    }
  }
}

// Edge clamping goes through the public MC entry points: vectors that land
// outside the plane must produce identical predictions and identical
// mc/halfpel pixel metering on every backend (the kernels only ever see
// in-bounds memory; the wrapper's clamped-patch fallback is what's tested).
TEST(Kernels, PredictBlockEdgeClampIdenticalAcrossBackends) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame frame = seq.frame_at(2);
  const video::Plane& plane = frame.y();
  const Backend original = codec::kernels::active_backend();

  struct Run {
    std::vector<std::uint8_t> pred;
    energy::OpCounters ops;
  };
  std::vector<Run> runs;
  for (Backend backend : codec::kernels::supported_backends()) {
    ASSERT_TRUE(codec::kernels::set_active(backend));
    Run run;
    common::Pcg32 rng(100);  // same position stream per backend
    std::uint8_t pred[16 * 16];
    for (int trial = 0; trial < 400; ++trial) {
      const int w = trial % 2 == 0 ? 16 : 8;
      // Positions biased to straddle every plane edge, in half-pel units.
      int x2 = rng.next_in_range(-40, 2 * plane.width() + 8);
      int y2 = rng.next_in_range(-40, 2 * plane.height() + 8);
      codec::predict_block(plane, x2, y2, w, w, pred, run.ops);
      run.pred.insert(run.pred.end(), pred, pred + w * w);
    }
    runs.push_back(std::move(run));
  }
  ASSERT_TRUE(codec::kernels::set_active(original));

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].pred, runs[i].pred) << "backend index " << i;
    EXPECT_EQ(runs[0].ops.mc_pixels, runs[i].ops.mc_pixels);
    EXPECT_EQ(runs[0].ops.mc_halfpel_pixels, runs[i].ops.mc_halfpel_pixels);
  }
}

TEST(Kernels, HalfpelSadEdgeClampIdenticalAcrossBackends) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame a = seq.frame_at(2);
  video::YuvFrame b = seq.frame_at(3);
  const Backend original = codec::kernels::active_backend();

  struct Run {
    std::int64_t sum = 0;
    energy::OpCounters ops;
  };
  std::vector<Run> runs;
  for (Backend backend : codec::kernels::supported_backends()) {
    ASSERT_TRUE(codec::kernels::set_active(backend));
    Run run;
    common::Pcg32 rng(110);
    for (int trial = 0; trial < 400; ++trial) {
      int cx = 16 * rng.next_in_range(0, a.y().width() / 16 - 1);
      int cy = 16 * rng.next_in_range(0, a.y().height() / 16 - 1);
      int rx2 = rng.next_in_range(-36, 2 * b.y().width() + 4);
      int ry2 = rng.next_in_range(-36, 2 * b.y().height() + 4);
      std::int64_t cutoff =
          trial % 3 == 0 ? rng.next_in_range(1, 4000) : 1'000'000;
      run.sum += codec::sad_16x16_halfpel(a.y(), cx, cy, b.y(), rx2, ry2,
                                          cutoff, run.ops);
    }
    runs.push_back(run);
  }
  ASSERT_TRUE(codec::kernels::set_active(original));

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].sum, runs[i].sum) << "backend index " << i;
    EXPECT_EQ(runs[0].ops.sad_halfpel_ops, runs[i].ops.sad_halfpel_ops);
  }
}

TEST(Kernels, ScalarTableOriginsAreAllScalar) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  for (int i = 0; i < codec::kernels::kNumKernels; ++i) {
    const auto id = static_cast<codec::kernels::KernelId>(i);
    EXPECT_EQ(scalar.origin_of(id), Backend::kScalar)
        << codec::kernels::kernel_name(id);
  }
}

TEST(Kernels, QuantizeMatchesScalarForAllQp) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(30);
  for (const KernelTable* simd : simd_tables()) {
    for (int qp = codec::kMinQp; qp <= codec::kMaxQp; ++qp) {
      for (int trial = 0; trial < 40; ++trial) {
        const bool intra = trial % 2 == 0;
        const int first = intra ? 1 : 0;
        std::int16_t want[64], got[64];
        for (int i = 0; i < 64; ++i) {
          // Full DCT output range plus values straddling quantizer steps.
          want[i] = static_cast<std::int16_t>(rng.next_in_range(-2048, 2047));
          got[i] = want[i];
        }
        int want_nz = scalar.quantize_ac(want, first, qp, intra);
        int got_nz = simd->quantize_ac(got, first, qp, intra);
        ASSERT_EQ(want_nz, got_nz)
            << simd->name << " qp " << qp << " trial " << trial;
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << simd->name << " qp " << qp << " trial " << trial;
      }
    }
  }
}

TEST(Kernels, DequantizeMatchesScalarForAllQp) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(40);
  for (const KernelTable* simd : simd_tables()) {
    for (int qp = codec::kMinQp; qp <= codec::kMaxQp; ++qp) {
      for (int trial = 0; trial < 40; ++trial) {
        const int first = trial % 2;
        std::int16_t want[64], got[64];
        for (int i = 0; i < 64; ++i) {
          want[i] = static_cast<std::int16_t>(
              rng.next_in_range(-codec::kMaxLevel, codec::kMaxLevel));
          got[i] = want[i];
        }
        scalar.dequantize_ac(want, first, qp);
        simd->dequantize_ac(got, first, qp);
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << simd->name << " qp " << qp << " trial " << trial;
      }
    }
  }
}

// The OpCounters invariant, end to end: running the public metered API
// with each backend yields identical counters AND identical results — on
// the cutoff path this exercises the analytic rows-visited accounting.
TEST(Kernels, OpCountersIdenticalAcrossBackends) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame a = seq.frame_at(3);
  video::YuvFrame b = seq.frame_at(4);
  common::Pcg32 rng(50);

  const Backend original = codec::kernels::active_backend();
  struct Probe {
    std::int64_t sum = 0;
    energy::OpCounters ops;
  };
  std::vector<Probe> probes;
  for (Backend backend : codec::kernels::supported_backends()) {
    ASSERT_TRUE(codec::kernels::set_active(backend));
    Probe probe;
    common::Pcg32 local(51);  // same coordinate stream per backend
    for (int trial = 0; trial < 200; ++trial) {
      int cx = 16 * local.next_in_range(0, a.y().width() / 16 - 1);
      int cy = 16 * local.next_in_range(0, a.y().height() / 16 - 1);
      int rx = local.next_in_range(0, b.y().width() - 16);
      int ry = local.next_in_range(0, b.y().height() - 16);
      probe.sum += codec::sad_16x16(a.y(), cx, cy, b.y(), rx, ry, probe.ops);
      probe.sum += codec::sad_16x16_cutoff(a.y(), cx, cy, b.y(), rx, ry,
                                           local.next_in_range(0, 20000),
                                           probe.ops);
      probe.sum += codec::sad_self_16x16(a.y(), cx, cy, probe.ops);
    }
    probes.push_back(probe);
  }
  ASSERT_TRUE(codec::kernels::set_active(original));

  for (std::size_t i = 1; i < probes.size(); ++i) {
    EXPECT_EQ(probes[0].sum, probes[i].sum);
    EXPECT_EQ(probes[0].ops.sad_pixel_ops, probes[i].ops.sad_pixel_ops);
  }
}

// Strongest equivalence check: a short full-encoder run must produce the
// same bitstream and the same operation counters on every backend.
TEST(Kernels, EncoderBitstreamIdenticalAcrossBackends) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  const Backend original = codec::kernels::active_backend();

  struct EncodeRun {
    std::vector<std::uint8_t> bytes;
    std::uint64_t sad_ops = 0;
    std::uint64_t quant = 0;
  };
  std::vector<EncodeRun> runs;
  for (Backend backend : codec::kernels::supported_backends()) {
    ASSERT_TRUE(codec::kernels::set_active(backend));
    codec::EncoderConfig config;
    config.qp = 10;
    config.search.strategy = codec::SearchStrategy::kFullSearch;
    config.search.range = 7;
    std::unique_ptr<codec::RefreshPolicy> policy = sim::make_policy(
        sim::SchemeSpec::no_resilience(), config.width / 16,
        config.height / 16);
    codec::Encoder encoder(config, policy.get());
    EncodeRun run;
    for (int i = 0; i < 4; ++i) {
      codec::EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
      run.bytes.insert(run.bytes.end(), frame.bytes.begin(),
                       frame.bytes.end());
    }
    run.sad_ops = encoder.ops().sad_pixel_ops;
    run.quant = encoder.ops().quant_coeffs;
    runs.push_back(std::move(run));
  }
  ASSERT_TRUE(codec::kernels::set_active(original));

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].bytes, runs[i].bytes) << "backend index " << i;
    EXPECT_EQ(runs[0].sad_ops, runs[i].sad_ops);
    EXPECT_EQ(runs[0].quant, runs[i].quant);
  }
}

// Same digest contract through the other search shape: diamond descent
// (batched neighbor sets) plus half-pel refinement (interpolating SAD
// kernel), with the full OpCounters block compared — not just sad ops.
TEST(Kernels, EncoderDigestIdenticalAcrossBackendsDiamondHalfpel) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  const Backend original = codec::kernels::active_backend();

  struct EncodeRun {
    std::vector<std::uint8_t> bytes;
    energy::OpCounters ops;
  };
  std::vector<EncodeRun> runs;
  for (Backend backend : codec::kernels::supported_backends()) {
    ASSERT_TRUE(codec::kernels::set_active(backend));
    codec::EncoderConfig config;
    config.qp = 8;
    config.search.strategy = codec::SearchStrategy::kDiamondSearch;
    config.search.range = 15;
    config.search.half_pel = true;
    std::unique_ptr<codec::RefreshPolicy> policy = sim::make_policy(
        sim::SchemeSpec::no_resilience(), config.width / 16,
        config.height / 16);
    codec::Encoder encoder(config, policy.get());
    EncodeRun run;
    for (int i = 0; i < 5; ++i) {
      codec::EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
      run.bytes.insert(run.bytes.end(), frame.bytes.begin(),
                       frame.bytes.end());
    }
    run.ops = encoder.ops();
    runs.push_back(std::move(run));
  }
  ASSERT_TRUE(codec::kernels::set_active(original));

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].bytes, runs[i].bytes) << "backend index " << i;
    EXPECT_EQ(0, std::memcmp(&runs[0].ops, &runs[i].ops,
                             sizeof(energy::OpCounters)))
        << "backend index " << i;
  }
}

}  // namespace
}  // namespace pbpair
