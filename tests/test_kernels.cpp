// Kernel-dispatch equivalence: every SIMD backend must reproduce the
// scalar reference bit-for-bit — same SAD/DCT/quant outputs, same
// early-exit row counts, and therefore identical energy::OpCounters
// deltas. Randomized over edge alignments, strides, and cutoff positions.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "codec/encoder.h"
#include "codec/kernels/kernels.h"
#include "codec/quant.h"
#include "codec/sad.h"
#include "common/rng.h"
#include "sim/scheme.h"
#include "video/frame.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

using codec::kernels::Backend;
using codec::kernels::KernelTable;

std::vector<const KernelTable*> simd_tables() {
  std::vector<const KernelTable*> tables;
  for (Backend backend : codec::kernels::supported_backends()) {
    if (backend == Backend::kScalar) continue;
    tables.push_back(codec::kernels::table_for(backend));
  }
  return tables;
}

// A buffer of noisy pixels with an odd stride so SIMD loads hit every
// alignment.
struct PixelField {
  explicit PixelField(std::uint64_t seed, int stride = 61, int rows = 96)
      : stride(stride), rows(rows), data(static_cast<std::size_t>(stride) * rows) {
    common::Pcg32 rng(seed);
    for (std::uint8_t& p : data) {
      p = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  const std::uint8_t* at(int x, int y) const {
    return data.data() + static_cast<std::size_t>(y) * stride + x;
  }
  int stride;
  int rows;
  std::vector<std::uint8_t> data;
};

TEST(Kernels, ScalarBackendAlwaysAvailable) {
  std::vector<Backend> backends = codec::kernels::supported_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), Backend::kScalar);
  EXPECT_NE(codec::kernels::table_for(Backend::kScalar), nullptr);
}

TEST(Kernels, SadMatchesScalarAcrossAlignments) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField cur(1), ref(2);
  common::Pcg32 rng(3);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 500; ++trial) {
      int cx = rng.next_in_range(0, cur.stride - 16);
      int cy = rng.next_in_range(0, cur.rows - 16);
      int rx = rng.next_in_range(0, ref.stride - 16);
      int ry = rng.next_in_range(0, ref.rows - 16);
      std::int64_t want = scalar.sad_16x16(cur.at(cx, cy), cur.stride,
                                           ref.at(rx, ry), ref.stride);
      std::int64_t got = simd->sad_16x16(cur.at(cx, cy), cur.stride,
                                         ref.at(rx, ry), ref.stride);
      ASSERT_EQ(want, got) << simd->name << " trial " << trial;
    }
  }
}

TEST(Kernels, SadCutoffMatchesScalarIncludingRowCounts) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  PixelField cur(4), ref(5);
  common::Pcg32 rng(6);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 1000; ++trial) {
      int cx = rng.next_in_range(0, cur.stride - 16);
      int cy = rng.next_in_range(0, cur.rows - 16);
      int rx = rng.next_in_range(0, ref.stride - 16);
      int ry = rng.next_in_range(0, ref.rows - 16);
      // Cutoffs spanning instant exit (<= 0), mid-block exits, and
      // never-exits (full 16 rows).
      std::int64_t cutoff;
      switch (trial % 4) {
        case 0: cutoff = rng.next_in_range(-5, 5); break;
        case 1: cutoff = rng.next_in_range(1, 4000); break;
        case 2: cutoff = rng.next_in_range(4000, 40000); break;
        default: cutoff = 1'000'000; break;
      }
      int want_rows = -1, got_rows = -1;
      std::int64_t want =
          scalar.sad_16x16_cutoff(cur.at(cx, cy), cur.stride, ref.at(rx, ry),
                                  ref.stride, cutoff, &want_rows);
      std::int64_t got =
          simd->sad_16x16_cutoff(cur.at(cx, cy), cur.stride, ref.at(rx, ry),
                                 ref.stride, cutoff, &got_rows);
      ASSERT_EQ(want, got) << simd->name << " trial " << trial;
      ASSERT_EQ(want_rows, got_rows) << simd->name << " trial " << trial;
    }
  }
}

TEST(Kernels, SadSelfMatchesScalar) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(8);
  for (const KernelTable* simd : simd_tables()) {
    // Uniform noise plus near-flat fields (mean truncation edge cases).
    for (std::uint64_t seed : {10ull, 11ull, 12ull}) {
      PixelField field(seed);
      for (int trial = 0; trial < 300; ++trial) {
        int cx = rng.next_in_range(0, field.stride - 16);
        int cy = rng.next_in_range(0, field.rows - 16);
        ASSERT_EQ(scalar.sad_self_16x16(field.at(cx, cy), field.stride),
                  simd->sad_self_16x16(field.at(cx, cy), field.stride))
            << simd->name << " seed " << seed << " trial " << trial;
      }
    }
  }
}

TEST(Kernels, DctMatchesScalar) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(20);
  for (const KernelTable* simd : simd_tables()) {
    for (int trial = 0; trial < 2000; ++trial) {
      std::int16_t input[64];
      // Pixels, residuals, and full-range coefficients by turn.
      int lo = trial % 3 == 0 ? 0 : (trial % 3 == 1 ? -255 : -2048);
      int hi = trial % 3 == 0 ? 255 : (trial % 3 == 1 ? 255 : 2047);
      for (std::int16_t& v : input) {
        v = static_cast<std::int16_t>(rng.next_in_range(lo, hi));
      }
      std::int16_t want[64], got[64];
      scalar.forward_dct_8x8(input, want);
      simd->forward_dct_8x8(input, got);
      ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
          << simd->name << " fdct trial " << trial;
      scalar.inverse_dct_8x8(input, want);
      simd->inverse_dct_8x8(input, got);
      ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
          << simd->name << " idct trial " << trial;
    }
  }
}

TEST(Kernels, QuantizeMatchesScalarForAllQp) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(30);
  for (const KernelTable* simd : simd_tables()) {
    for (int qp = codec::kMinQp; qp <= codec::kMaxQp; ++qp) {
      for (int trial = 0; trial < 40; ++trial) {
        const bool intra = trial % 2 == 0;
        const int first = intra ? 1 : 0;
        std::int16_t want[64], got[64];
        for (int i = 0; i < 64; ++i) {
          // Full DCT output range plus values straddling quantizer steps.
          want[i] = static_cast<std::int16_t>(rng.next_in_range(-2048, 2047));
          got[i] = want[i];
        }
        int want_nz = scalar.quantize_ac(want, first, qp, intra);
        int got_nz = simd->quantize_ac(got, first, qp, intra);
        ASSERT_EQ(want_nz, got_nz)
            << simd->name << " qp " << qp << " trial " << trial;
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << simd->name << " qp " << qp << " trial " << trial;
      }
    }
  }
}

TEST(Kernels, DequantizeMatchesScalarForAllQp) {
  const KernelTable& scalar = codec::kernels::scalar_table();
  common::Pcg32 rng(40);
  for (const KernelTable* simd : simd_tables()) {
    for (int qp = codec::kMinQp; qp <= codec::kMaxQp; ++qp) {
      for (int trial = 0; trial < 40; ++trial) {
        const int first = trial % 2;
        std::int16_t want[64], got[64];
        for (int i = 0; i < 64; ++i) {
          want[i] = static_cast<std::int16_t>(
              rng.next_in_range(-codec::kMaxLevel, codec::kMaxLevel));
          got[i] = want[i];
        }
        scalar.dequantize_ac(want, first, qp);
        simd->dequantize_ac(got, first, qp);
        ASSERT_EQ(0, std::memcmp(want, got, sizeof(want)))
            << simd->name << " qp " << qp << " trial " << trial;
      }
    }
  }
}

// The OpCounters invariant, end to end: running the public metered API
// with each backend yields identical counters AND identical results — on
// the cutoff path this exercises the analytic rows-visited accounting.
TEST(Kernels, OpCountersIdenticalAcrossBackends) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame a = seq.frame_at(3);
  video::YuvFrame b = seq.frame_at(4);
  common::Pcg32 rng(50);

  const Backend original = codec::kernels::active_backend();
  struct Probe {
    std::int64_t sum = 0;
    energy::OpCounters ops;
  };
  std::vector<Probe> probes;
  for (Backend backend : codec::kernels::supported_backends()) {
    ASSERT_TRUE(codec::kernels::set_active(backend));
    Probe probe;
    common::Pcg32 local(51);  // same coordinate stream per backend
    for (int trial = 0; trial < 200; ++trial) {
      int cx = 16 * local.next_in_range(0, a.y().width() / 16 - 1);
      int cy = 16 * local.next_in_range(0, a.y().height() / 16 - 1);
      int rx = local.next_in_range(0, b.y().width() - 16);
      int ry = local.next_in_range(0, b.y().height() - 16);
      probe.sum += codec::sad_16x16(a.y(), cx, cy, b.y(), rx, ry, probe.ops);
      probe.sum += codec::sad_16x16_cutoff(a.y(), cx, cy, b.y(), rx, ry,
                                           local.next_in_range(0, 20000),
                                           probe.ops);
      probe.sum += codec::sad_self_16x16(a.y(), cx, cy, probe.ops);
    }
    probes.push_back(probe);
  }
  ASSERT_TRUE(codec::kernels::set_active(original));

  for (std::size_t i = 1; i < probes.size(); ++i) {
    EXPECT_EQ(probes[0].sum, probes[i].sum);
    EXPECT_EQ(probes[0].ops.sad_pixel_ops, probes[i].ops.sad_pixel_ops);
  }
}

// Strongest equivalence check: a short full-encoder run must produce the
// same bitstream and the same operation counters on every backend.
TEST(Kernels, EncoderBitstreamIdenticalAcrossBackends) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  const Backend original = codec::kernels::active_backend();

  struct EncodeRun {
    std::vector<std::uint8_t> bytes;
    std::uint64_t sad_ops = 0;
    std::uint64_t quant = 0;
  };
  std::vector<EncodeRun> runs;
  for (Backend backend : codec::kernels::supported_backends()) {
    ASSERT_TRUE(codec::kernels::set_active(backend));
    codec::EncoderConfig config;
    config.qp = 10;
    config.search.strategy = codec::SearchStrategy::kFullSearch;
    config.search.range = 7;
    std::unique_ptr<codec::RefreshPolicy> policy = sim::make_policy(
        sim::SchemeSpec::no_resilience(), config.width / 16,
        config.height / 16);
    codec::Encoder encoder(config, policy.get());
    EncodeRun run;
    for (int i = 0; i < 4; ++i) {
      codec::EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
      run.bytes.insert(run.bytes.end(), frame.bytes.begin(),
                       frame.bytes.end());
    }
    run.sad_ops = encoder.ops().sad_pixel_ops;
    run.quant = encoder.ops().quant_coeffs;
    runs.push_back(std::move(run));
  }
  ASSERT_TRUE(codec::kernels::set_active(original));

  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].bytes, runs[i].bytes) << "backend index " << i;
    EXPECT_EQ(runs[0].sad_ops, runs[i].sad_ops);
    EXPECT_EQ(runs[0].quant, runs[i].quant);
  }
}

}  // namespace
}  // namespace pbpair
