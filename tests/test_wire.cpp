// End-to-end wire integrity (DESIGN.md §13): CRC64 known answers and a
// bitwise cross-check, trailer round trips, every fault-injector damage
// mode classified by the CRC, the corruption-aware RTCP extension and
// controller overload, and the arena wire path's byte-identity and
// buffer-lifetime guarantees under a threaded SessionManager.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptation.h"
#include "net/crc64.h"
#include "net/fault_injector.h"
#include "net/fec.h"
#include "net/loss_model.h"
#include "net/packet.h"
#include "net/rtcp.h"
#include "sim/session_manager.h"

namespace pbpair {
namespace {

// Reference bit-at-a-time CRC-64/XZ (reflected ECMA-182): the slice-by-8
// kernel must agree with this on every input.
std::uint64_t crc64_bitwise(const std::uint8_t* data, std::size_t size) {
  std::uint64_t crc = ~0ULL;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ net::kCrc64Poly : crc >> 1;
    }
  }
  return ~crc;
}

std::vector<std::uint8_t> pattern(std::size_t size) {
  std::vector<std::uint8_t> out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 131u + 89u);
  }
  return out;
}

TEST(Crc64, KnownAnswer) {
  // The CRC-64/XZ check value over the canonical "123456789".
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                                 '9'};
  EXPECT_EQ(net::crc64(digits, sizeof(digits)), 0x995DC9BBDF1939FAULL);
  EXPECT_EQ(crc64_bitwise(digits, sizeof(digits)), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64, SliceBy8MatchesBitwiseReference) {
  for (const std::size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    const std::vector<std::uint8_t> bytes = pattern(size);
    EXPECT_EQ(net::crc64(bytes.data(), bytes.size()),
              crc64_bitwise(bytes.data(), bytes.size()))
        << "size=" << size;
  }
}

TEST(Crc64, StreamingOverDisjointSlicesMatchesOneShot) {
  const std::vector<std::uint8_t> bytes = pattern(777);
  const std::uint64_t expected = net::crc64(bytes.data(), bytes.size());
  for (const std::size_t chunk : {1u, 3u, 8u, 13u, 64u, 500u}) {
    net::Crc64State state = net::crc64_init();
    for (std::size_t pos = 0; pos < bytes.size(); pos += chunk) {
      const std::size_t n =
          pos + chunk <= bytes.size() ? chunk : bytes.size() - pos;
      state = net::crc64_update(state, bytes.data() + pos, n);
    }
    EXPECT_EQ(net::crc64_final(state), expected) << "chunk=" << chunk;
  }
}

net::Packet make_crc_packet(std::uint16_t seq, std::size_t payload_size) {
  net::Packet p;
  p.header.sequence = seq;
  p.header.timestamp = seq / 4u;
  p.header.ssrc = 0x50425041;
  p.header.marker = (seq % 4u) == 3u;
  p.header.frame_type = 1;
  p.header.qp = 10;
  p.header.first_gob = 0;
  p.header.num_gobs = 3;
  p.payload = pattern(payload_size);
  p.crc_present = true;
  return p;
}

TEST(PacketCrc, TrailerRoundTripsAndStaysPreCrcCompatible) {
  const net::Packet p = make_crc_packet(4242, 100);
  const std::vector<std::uint8_t> wire = net::serialize_packet(p);
  ASSERT_EQ(wire.size(),
            net::kHeaderWireSize + 100 + net::kCrcTrailerSize);
  EXPECT_EQ(p.wire_size(), wire.size());
  EXPECT_NE(wire[0] & 0x10, 0);  // RTP X bit announces the trailer

  net::Packet checked;
  ASSERT_TRUE(net::parse_packet(wire, &checked, /*expect_crc=*/true));
  EXPECT_TRUE(checked.crc_present);
  EXPECT_TRUE(checked.crc_ok);
  EXPECT_EQ(checked.payload, p.payload);
  EXPECT_EQ(checked.header.sequence, p.header.sequence);

  // The default parse ignores the X bit — bit-for-bit the pre-CRC
  // behaviour, so the trailer bytes simply ride along as payload tail.
  net::Packet legacy;
  ASSERT_TRUE(net::parse_packet(wire, &legacy));
  EXPECT_FALSE(legacy.crc_present);
  EXPECT_EQ(legacy.payload.size(), 100 + net::kCrcTrailerSize);
}

TEST(PacketCrc, EverySingleBitFlipIsClassifiedCorrupted) {
  const net::Packet p = make_crc_packet(7, 24);
  const std::vector<std::uint8_t> wire = net::serialize_packet(p);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged = wire;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    net::Packet parsed;
    if (!net::parse_packet(damaged, &parsed, /*expect_crc=*/true)) {
      continue;  // framing broke: the receiver drops it anyway
    }
    // CRC64 detects all single-bit errors; a flip of the X bit itself
    // surfaces as a missing trailer. Either way the receiver's
    // crc_present && crc_ok acceptance test must fail.
    EXPECT_FALSE(parsed.crc_present && parsed.crc_ok) << "bit=" << bit;
  }
}

TEST(PacketCrc, TruncatedTrailerIsCorruptedNotAccepted) {
  const net::Packet p = make_crc_packet(9, 40);
  const std::vector<std::uint8_t> wire = net::serialize_packet(p);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<std::uint8_t> truncated(wire.begin(),
                                        wire.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    net::Packet parsed;
    const bool ok = net::parse_packet(truncated, &parsed,
                                      /*expect_crc=*/true);
    if (cut < net::kHeaderWireSize) {
      EXPECT_FALSE(ok) << "cut=" << cut;
    } else {
      // Any cut that leaves a parseable header — including one inside the
      // trailer itself — must fail verification.
      ASSERT_TRUE(ok) << "cut=" << cut;
      EXPECT_TRUE(parsed.crc_present) << "cut=" << cut;
      EXPECT_FALSE(parsed.crc_ok) << "cut=" << cut;
    }
  }
}

std::vector<net::Packet> crc_stream(int count, std::size_t payload_size) {
  std::vector<net::Packet> packets;
  for (int i = 0; i < count; ++i) {
    packets.push_back(
        make_crc_packet(static_cast<std::uint16_t>(i), payload_size));
  }
  return packets;
}

TEST(FaultInjectorCrc, EveryDamageModeIsClassifiedCorrupted) {
  // Force each byte-damaging fault class onto every packet: whatever the
  // injector still delivers must fail the receiver's acceptance test
  // (crc_present && crc_ok) — corruption can never impersonate a healthy
  // packet.
  struct Mode {
    const char* name;
    void (*arm)(net::FaultInjectorConfig*);
  };
  const Mode modes[] = {
      {"bit_flip", [](net::FaultInjectorConfig* c) { c->p_bit_flip = 1.0; }},
      {"truncate", [](net::FaultInjectorConfig* c) { c->p_truncate = 1.0; }},
      {"header_corrupt",
       [](net::FaultInjectorConfig* c) { c->p_header_corrupt = 1.0; }},
  };
  for (const Mode& mode : modes) {
    net::FaultInjectorConfig config;
    config.seed = 77;
    config.expect_crc = true;
    mode.arm(&config);
    net::FaultInjector injector(config);
    const std::vector<net::Packet> out =
        injector.apply(crc_stream(64, 120));
    EXPECT_FALSE(out.empty()) << mode.name;
    for (const net::Packet& packet : out) {
      EXPECT_FALSE(packet.crc_present && packet.crc_ok)
          << mode.name << " seq=" << packet.header.sequence;
    }
  }
}

TEST(FaultInjectorCrc, DuplicateTwinsSharePayloadStorage) {
  // Duplication is the refcount-abuse case: twins must share one payload
  // allocation (zero copy), stay individually valid, and — because
  // damage is copy-on-corrupt — never be scribbled on through each other.
  net::FaultInjectorConfig config;
  config.seed = 5;
  config.p_duplicate = 1.0;
  config.expect_crc = true;
  net::FaultInjector injector(config);
  const std::vector<net::Packet> out = injector.apply(crc_stream(16, 80));
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); i += 2) {
    EXPECT_EQ(out[i].header.sequence, out[i + 1].header.sequence);
    EXPECT_TRUE(out[i].payload.shares_storage_with(out[i + 1].payload));
    EXPECT_TRUE(out[i].crc_present && out[i].crc_ok);
  }
}

TEST(Rtcp, CorruptionExtensionRoundTripsAndStaysOffWhenZero) {
  net::ReceiverReport rr;
  rr.reporter_ssrc = 0x11111111;
  rr.reportee_ssrc = 0x22222222;
  rr.fraction_lost = 64;
  rr.cumulative_lost = 1000;
  rr.highest_sequence = 4242;
  rr.fraction_corrupted = 32;
  rr.cumulative_corrupted = 77;
  const std::vector<std::uint8_t> wire = net::serialize_receiver_report(rr);

  net::ReceiverReport parsed;
  ASSERT_TRUE(net::parse_receiver_report(wire, &parsed));
  EXPECT_EQ(parsed.reporter_ssrc, rr.reporter_ssrc);
  EXPECT_EQ(parsed.reportee_ssrc, rr.reportee_ssrc);
  EXPECT_EQ(parsed.fraction_lost, rr.fraction_lost);
  EXPECT_EQ(parsed.cumulative_lost, rr.cumulative_lost);
  EXPECT_EQ(parsed.highest_sequence, rr.highest_sequence);
  EXPECT_EQ(parsed.fraction_corrupted, rr.fraction_corrupted);
  EXPECT_EQ(parsed.cumulative_corrupted, rr.cumulative_corrupted);

  // An all-zero split keeps the classic pre-CRC wire image: same bytes,
  // no extension, and the parse round-trips the zeros.
  rr.fraction_corrupted = 0;
  rr.cumulative_corrupted = 0;
  const std::vector<std::uint8_t> classic =
      net::serialize_receiver_report(rr);
  EXPECT_LT(classic.size(), wire.size());
  ASSERT_TRUE(net::parse_receiver_report(classic, &parsed));
  EXPECT_EQ(parsed.fraction_corrupted, 0);
  EXPECT_EQ(parsed.cumulative_corrupted, 0u);
}

TEST(JointController, CorruptionAwareOverloadMatchesAndRecordsTheSplit) {
  core::JointAdaptationConfig config;
  core::JointPowerAwareController plain(config);
  core::JointPowerAwareController split(config);
  EXPECT_EQ(split.last_corrupted_plr(), -1.0);

  plain.on_plr_update(0.20);
  split.on_plr_update(0.20, 0.08);
  // The erasure rate drives the FEC/Intra_Th math identically — the
  // corruption share is recorded, not double-counted.
  EXPECT_DOUBLE_EQ(split.intra_th(), plain.intra_th());
  EXPECT_EQ(split.fec_m(), plain.fec_m());
  EXPECT_DOUBLE_EQ(split.last_plr(), 0.20);
  EXPECT_DOUBLE_EQ(split.last_corrupted_plr(), 0.08);
}

// --- arena wire path under SessionManager --------------------------------

// Same %.17g idiom as test_session_manager.cpp, extended with the wire
// stats and per-frame corruption counts: any bit difference anywhere in
// the report shows up as a string difference.
std::string serialize(const std::vector<sim::PipelineResult>& results) {
  std::string out;
  char buf[256];
  for (const sim::PipelineResult& r : results) {
    std::snprintf(buf, sizeof(buf), "total %llu %.17g %llu %llu %llu\n",
                  static_cast<unsigned long long>(r.total_bytes),
                  r.avg_psnr_db,
                  static_cast<unsigned long long>(r.total_bad_pixels),
                  static_cast<unsigned long long>(r.total_intra_mbs),
                  static_cast<unsigned long long>(r.concealed_mbs));
    out += buf;
    std::snprintf(buf, sizeof(buf), "energy %.17g %.17g\n",
                  r.encode_energy.total_j(), r.tx_energy_j);
    out += buf;
    std::snprintf(buf, sizeof(buf), "wire %llu %llu\n",
                  static_cast<unsigned long long>(r.wire.packets_checked),
                  static_cast<unsigned long long>(r.wire.crc_corrupted));
    out += buf;
    for (const sim::FrameTrace& f : r.frames) {
      std::snprintf(buf, sizeof(buf), "f %d %zu %d %d %.17g %llu %d\n",
                    f.index, f.bytes, f.intra_mbs, f.lost ? 1 : 0, f.psnr_db,
                    static_cast<unsigned long long>(f.bad_pixels),
                    f.crc_corrupted);
      out += buf;
    }
  }
  return out;
}

enum class WireMode { kUnset, kCrcOff, kCrcOn };

// A fleet that exercises every arena-touching stage: PBPAIR refresh, FEC
// windows, the lossy channel, and the fault injector's bit flips /
// truncation / duplicates.
std::vector<sim::SessionSpec> wire_specs(int sessions, int frames,
                                         WireMode mode) {
  const video::SequenceKind kinds[3] = {video::SequenceKind::kForemanLike,
                                        video::SequenceKind::kAkiyoLike,
                                        video::SequenceKind::kGardenLike};
  std::vector<sim::SessionSpec> specs;
  for (int i = 0; i < sessions; ++i) {
    sim::SessionSpec spec;
    core::PbpairConfig pbpair;
    pbpair.intra_th = 0.9;
    pbpair.plr = 0.10;
    spec.scheme = sim::SchemeSpec::pbpair(pbpair);
    spec.config.frames = frames;

    net::FaultInjectorConfig faults;
    faults.seed = 9 + static_cast<std::uint64_t>(i);
    faults.p_bit_flip = 0.30;
    faults.p_truncate = 0.15;
    faults.p_duplicate = 0.20;
    spec.config.faults = faults;

    net::FecConfig fec;
    fec.scheme = net::FecScheme::kReedSolomon;
    fec.k = 4;
    fec.m = 1;
    spec.config.fec = fec;

    if (mode == WireMode::kCrcOff) {
      net::WireConfig wire;
      wire.crc = false;
      spec.config.wire = wire;
    } else if (mode == WireMode::kCrcOn) {
      spec.config.wire = net::WireConfig{};
    }

    video::SyntheticSequence seq = video::make_paper_sequence(kinds[i % 3]);
    spec.source = [seq](int index) { return seq.frame_at(index); };
    const std::uint64_t seed = 2005 + static_cast<std::uint64_t>(i);
    spec.make_loss = [seed] {
      return std::make_unique<net::UniformFrameLoss>(0.12, seed);
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(WirePath, CrcOffConfigIsByteIdenticalToUnsetAcrossThreads) {
  const int kSessions = 5;
  const int kFrames = 8;
  sim::SessionManagerOptions reference_options;
  reference_options.threads = 1;
  const std::string reference = serialize(
      sim::SessionManager(wire_specs(kSessions, kFrames, WireMode::kUnset))
          .run(reference_options));

  // A WireConfig with crc off must leave the stage list — and every
  // reported bit — identical to never setting the optional, at any worker
  // count (the arena swap underneath is invisible).
  for (const WireMode mode : {WireMode::kUnset, WireMode::kCrcOff}) {
    for (const int threads : {1, 2, 8}) {
      sim::SessionManagerOptions options;
      options.threads = threads;
      EXPECT_EQ(serialize(sim::SessionManager(
                              wire_specs(kSessions, kFrames, mode))
                              .run(options)),
                reference)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
    }
  }
}

TEST(WirePath, CrcOnClassifiesCorruptionDeterministicallyAcrossThreads) {
  // The CRC-on fleet runs the full zero-copy chain — packetize slices, FEC
  // repair slabs, fault-injector duplicates sharing payload refs — and
  // every session's arena must outlive every ref at 1, 2 and 8 workers
  // (the arena destructor PB_CHECKs live_allocations()==0; ASan enforces
  // the poisoning). The report must not depend on the worker count.
  const int kSessions = 5;
  const int kFrames = 10;
  sim::SessionManagerOptions reference_options;
  reference_options.threads = 1;
  const std::vector<sim::PipelineResult> reference =
      sim::SessionManager(wire_specs(kSessions, kFrames, WireMode::kCrcOn))
          .run(reference_options);
  const std::string reference_report = serialize(reference);

  std::uint64_t checked = 0;
  std::uint64_t corrupted = 0;
  for (const sim::PipelineResult& r : reference) {
    checked += r.wire.packets_checked;
    corrupted += r.wire.crc_corrupted;
    // The per-frame trace splits add back up to the session total.
    std::uint64_t trace_sum = 0;
    for (const sim::FrameTrace& f : r.frames) {
      trace_sum += static_cast<std::uint64_t>(f.crc_corrupted);
    }
    EXPECT_EQ(trace_sum, r.wire.crc_corrupted);
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GT(corrupted, 0u);  // the bit flips really were classified

  for (const int threads : {2, 8}) {
    sim::SessionManagerOptions options;
    options.threads = threads;
    EXPECT_EQ(serialize(sim::SessionManager(
                            wire_specs(kSessions, kFrames, WireMode::kCrcOn))
                            .run(options)),
              reference_report)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace pbpair
