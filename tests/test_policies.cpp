// Tests for the baseline refresh policies: GOP, AIR, PGOP.
#include <gtest/gtest.h>

#include "codec/encoder.h"
#include "resilience/air_policy.h"
#include "resilience/gop_policy.h"
#include "resilience/pgop_policy.h"
#include "video/sequence.h"

namespace pbpair::resilience {
namespace {

using codec::EncodedFrame;
using codec::Encoder;
using codec::EncoderConfig;
using codec::FrameType;
using codec::MbMeInfo;
using codec::MbMode;

TEST(GopPolicy, PeriodicIntraFrames) {
  GopPolicy gop(3);  // I P P P I P P P ...
  EXPECT_EQ(gop.period(), 4);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(gop.want_intra_frame(i), i % 4 == 0) << "frame " << i;
  }
}

TEST(GopPolicy, EncoderHonorsSchedule) {
  GopPolicy gop(2);
  Encoder encoder(EncoderConfig{}, &gop);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  for (int i = 0; i < 7; ++i) {
    EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
    EXPECT_EQ(frame.type, i % 3 == 0 ? FrameType::kIntra : FrameType::kInter)
        << "frame " << i;
  }
}

TEST(GopPolicy, ProducesFrameSizeSpikes) {
  // Fig. 6(b)'s point: GOP's I-frames are several times larger than its
  // P-frames, giving a bursty bitstream.
  GopPolicy gop(7);
  Encoder encoder(EncoderConfig{}, &gop);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  std::size_t max_i = 0, max_p = 0;
  for (int i = 0; i < 16; ++i) {
    EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
    if (frame.type == FrameType::kIntra) {
      max_i = std::max(max_i, frame.size_bytes());
    } else {
      max_p = std::max(max_p, frame.size_bytes());
    }
  }
  EXPECT_GT(max_i, 2 * max_p);
}

TEST(AirPolicy, MarksTopNSadBlocks) {
  AirPolicy air(3);
  std::vector<MbMeInfo> me(10);
  for (int i = 0; i < 10; ++i) {
    me[i].searched = true;
    me[i].sad = i * 100;  // MBs 9, 8, 7 have the highest SAD
  }
  std::vector<std::uint8_t> force(10, 0);
  air.select_post_me(1, me, 10, 1, &force);
  EXPECT_EQ(force[9], 1);
  EXPECT_EQ(force[8], 1);
  EXPECT_EQ(force[7], 1);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(force[i], 0) << i;
}

TEST(AirPolicy, SkipsAlreadyForcedAndUnsearched) {
  AirPolicy air(2);
  std::vector<MbMeInfo> me(5);
  for (int i = 0; i < 5; ++i) {
    me[i].searched = i != 4;  // MB 4 never searched (pre-ME intra)
    me[i].sad = i * 10;
  }
  std::vector<std::uint8_t> force(5, 0);
  force[3] = 1;  // already forced by someone else
  air.select_post_me(1, me, 5, 1, &force);
  // Picks MB 3 first (highest searched SAD) but it's taken, so the budget
  // goes to the next two: MBs 2 and 1.
  EXPECT_EQ(force[2], 1);
  EXPECT_EQ(force[1], 1);
  EXPECT_EQ(force[4], 0);
  EXPECT_EQ(force[0], 0);
}

TEST(AirPolicy, DeterministicTieBreak) {
  AirPolicy air(2);
  std::vector<MbMeInfo> me(4);
  for (auto& m : me) {
    m.searched = true;
    m.sad = 500;  // all tied
  }
  std::vector<std::uint8_t> force(4, 0);
  air.select_post_me(1, me, 4, 1, &force);
  EXPECT_EQ(force[0], 1);  // lowest indices win ties
  EXPECT_EQ(force[1], 1);
  EXPECT_EQ(force[2], 0);
}

TEST(AirPolicy, EncoderInsertsExactlyNIntraPerPFrame) {
  AirPolicy air(10);
  Encoder encoder(EncoderConfig{}, &air);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  encoder.encode_frame(seq.frame_at(0));
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(1));
  // At least the 10 forced MBs; the SAD-based efficiency rule may add more
  // on busy content, but akiyo has none of that.
  EXPECT_GE(frame.intra_mb_count(), 10);
  EXPECT_LE(frame.intra_mb_count(), 12);
}

TEST(AirPolicy, RunsMotionEstimationForEveryMb) {
  // The paper's energy argument: AIR decides after ME, so it pays full ME
  // cost — identical invocation count to the NO encoder.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  AirPolicy air(24);
  Encoder air_encoder(EncoderConfig{}, &air);
  codec::NoRefreshPolicy none;
  Encoder no_encoder(EncoderConfig{}, &none);
  for (int i = 0; i < 4; ++i) {
    air_encoder.encode_frame(seq.frame_at(i));
    no_encoder.encode_frame(seq.frame_at(i));
  }
  EXPECT_EQ(air_encoder.ops().me_invocations, no_encoder.ops().me_invocations);
}

TEST(PgopPolicy, SweepsColumnsLeftToRight) {
  PgopPolicy pgop(3);
  // Frame 1: columns 0-2; frame 2: 3-5; frame 3: 6-8; frame 4: 9-10;
  // frame 5: wraps to 0-2 again (11 columns in QCIF).
  codec::FrameEncodeInfo info;
  info.type = FrameType::kInter;
  info.mb_cols = 11;
  info.mb_rows = 9;

  EXPECT_TRUE(pgop.force_intra_pre_me(1, 0, 4));
  EXPECT_TRUE(pgop.force_intra_pre_me(1, 2, 0));
  EXPECT_FALSE(pgop.force_intra_pre_me(1, 3, 0));
  pgop.on_frame_encoded(info);
  EXPECT_EQ(pgop.sweep_start(), 3);
  EXPECT_FALSE(pgop.force_intra_pre_me(2, 2, 0));
  EXPECT_TRUE(pgop.force_intra_pre_me(2, 4, 8));
  pgop.on_frame_encoded(info);
  pgop.on_frame_encoded(info);
  EXPECT_EQ(pgop.sweep_start(), 9);
  EXPECT_TRUE(pgop.force_intra_pre_me(4, 10, 0));
  pgop.on_frame_encoded(info);
  EXPECT_EQ(pgop.sweep_start(), 0);  // wrapped
}

TEST(PgopPolicy, IntraFrameRestartsSweep) {
  PgopPolicy pgop(2);
  codec::FrameEncodeInfo inter;
  inter.type = FrameType::kInter;
  inter.mb_cols = 11;
  inter.mb_rows = 9;
  pgop.on_frame_encoded(inter);
  pgop.on_frame_encoded(inter);
  EXPECT_EQ(pgop.sweep_start(), 4);
  codec::FrameEncodeInfo intra = inter;
  intra.type = FrameType::kIntra;
  pgop.on_frame_encoded(intra);
  EXPECT_EQ(pgop.sweep_start(), 0);
}

TEST(PgopPolicy, StrideBackCatchesLeakingVectors) {
  PgopPolicy pgop(3);
  codec::FrameEncodeInfo info;
  info.type = FrameType::kInter;
  info.mb_cols = 11;
  info.mb_rows = 9;
  pgop.on_frame_encoded(info);  // sweep_start now 3: columns 0-2 are clean

  std::vector<MbMeInfo> me(99);
  for (auto& m : me) {
    m.searched = true;
    m.mv = codec::MotionVector{0, 0};
    m.sad = 100;
  }
  // MB (2, 0) points right into the dirty region (x >= 48 after +16 span).
  me[2].mv = codec::MotionVector{5, 0};
  // MB (1, 0) stays within clean columns even with its vector.
  me[1].mv = codec::MotionVector{-5, 0};

  std::vector<std::uint8_t> force(99, 0);
  // Refresh band MBs (cols 3-5) would be pre-ME intra; mark them to mimic
  // the encoder.
  for (int my = 0; my < 9; ++my) {
    for (int mx = 3; mx < 6; ++mx) force[my * 11 + mx] = 1;
  }
  pgop.select_post_me(2, me, 11, 9, &force);
  EXPECT_EQ(force[2], 1) << "leaking MB must be stride-back refreshed";
  EXPECT_EQ(force[1], 0);
  EXPECT_EQ(force[0], 0);
  EXPECT_GE(pgop.stride_back_count(), 1u);
}

TEST(PgopPolicy, ColocatedVectorAtCleanDirtyBoundaryLeaks) {
  // An MB in the last clean column with zero motion still touches its own
  // column only — zero vector must NOT trigger stride back.
  PgopPolicy pgop(1);
  codec::FrameEncodeInfo info;
  info.type = FrameType::kInter;
  info.mb_cols = 11;
  info.mb_rows = 9;
  pgop.on_frame_encoded(info);  // sweep_start = 1, clean = column 0

  std::vector<MbMeInfo> me(99);
  for (auto& m : me) {
    m.searched = true;
    m.sad = 10;
  }
  me[0].mv = codec::MotionVector{0, 0};   // stays in column 0
  std::vector<std::uint8_t> force(99, 0);
  pgop.select_post_me(1, me, 11, 9, &force);
  EXPECT_EQ(force[0], 0);

  me[0].mv = codec::MotionVector{1, 0};   // reaches 1 px into column 1
  std::fill(force.begin(), force.end(), 0);
  pgop.select_post_me(1, me, 11, 9, &force);
  EXPECT_EQ(force[0], 1);
}

TEST(PgopPolicy, EncoderSkipsMeForRefreshColumns) {
  PgopPolicy pgop(3);
  Encoder encoder(EncoderConfig{}, &pgop);
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  encoder.encode_frame(seq.frame_at(0));
  auto before = encoder.ops().me_invocations;
  encoder.encode_frame(seq.frame_at(1));
  auto delta = encoder.ops().me_invocations - before;
  // 99 MBs, 27 in the refresh band skip ME.
  EXPECT_EQ(delta, 99u - 27u);
}

TEST(PgopPolicy, FullSweepRefreshesEveryColumn) {
  PgopPolicy pgop(3);
  codec::FrameEncodeInfo info;
  info.type = FrameType::kInter;
  info.mb_cols = 11;
  info.mb_rows = 9;
  std::vector<bool> refreshed(11, false);
  for (int frame = 1; frame <= 4; ++frame) {
    for (int col = 0; col < 11; ++col) {
      if (pgop.force_intra_pre_me(frame, col, 0)) refreshed[col] = true;
    }
    pgop.on_frame_encoded(info);
  }
  for (int col = 0; col < 11; ++col) {
    EXPECT_TRUE(refreshed[col]) << "column " << col;
  }
}

TEST(PgopPolicy, ResetRestartsSweep) {
  PgopPolicy pgop(4);
  codec::FrameEncodeInfo info;
  info.type = FrameType::kInter;
  info.mb_cols = 11;
  info.mb_rows = 9;
  pgop.on_frame_encoded(info);
  EXPECT_NE(pgop.sweep_start(), 0);
  pgop.reset();
  EXPECT_EQ(pgop.sweep_start(), 0);
}

}  // namespace
}  // namespace pbpair::resilience
