// End-to-end pipeline and experiment-harness tests: the system-level
// behaviours every figure bench relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptation.h"
#include "net/loss_model.h"
#include "sim/pipeline.h"
#include "sim/report.h"

namespace pbpair::sim {
namespace {

PipelineConfig short_config(int frames = 30) {
  PipelineConfig config;
  config.frames = frames;
  return config;
}

core::PbpairConfig pbpair_config(double th, double plr) {
  core::PbpairConfig c;
  c.intra_th = th;
  c.plr = plr;
  return c;
}

TEST(Pipeline, LosslessChannelGivesCleanQuality) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineResult r = run_pipeline(seq, SchemeSpec::no_resilience(), nullptr,
                                  short_config());
  EXPECT_GT(r.avg_psnr_db, 30.0);
  EXPECT_EQ(r.concealed_mbs, 0u);
  EXPECT_EQ(r.channel.packets_dropped, 0u);
  for (const FrameTrace& f : r.frames) EXPECT_FALSE(f.lost);
}

TEST(Pipeline, LossDegradesQuality) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineResult clean = run_pipeline(seq, SchemeSpec::no_resilience(),
                                      nullptr, short_config());
  net::UniformFrameLoss loss(0.2, 42);
  PipelineResult lossy = run_pipeline(seq, SchemeSpec::no_resilience(), &loss,
                                      short_config());
  EXPECT_LT(lossy.avg_psnr_db, clean.avg_psnr_db - 2.0);
  EXPECT_GT(lossy.total_bad_pixels, clean.total_bad_pixels);
  EXPECT_GT(lossy.concealed_mbs, 0u);
}

TEST(Pipeline, DeterministicForSameSeed) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  net::UniformFrameLoss loss_a(0.1, 7);
  net::UniformFrameLoss loss_b(0.1, 7);
  PipelineResult a = run_pipeline(seq, SchemeSpec::pbpair(pbpair_config(0.9, 0.1)),
                                  &loss_a, short_config());
  PipelineResult b = run_pipeline(seq, SchemeSpec::pbpair(pbpair_config(0.9, 0.1)),
                                  &loss_b, short_config());
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_DOUBLE_EQ(a.avg_psnr_db, b.avg_psnr_db);
  EXPECT_EQ(a.total_bad_pixels, b.total_bad_pixels);
}

TEST(Pipeline, SchemeLabelsReadLikeThePaper) {
  EXPECT_EQ(SchemeSpec::no_resilience().label(), "NO");
  EXPECT_EQ(SchemeSpec::gop(3).label(), "GOP-3");
  EXPECT_EQ(SchemeSpec::air(24).label(), "AIR-24");
  EXPECT_EQ(SchemeSpec::pgop(3).label(), "PGOP-3");
  EXPECT_EQ(SchemeSpec::pbpair(pbpair_config(0.9, 0.1)).label(), "PBPAIR");
}

TEST(Pipeline, RefreshSchemesRecoverFasterThanNo) {
  // Drop frame 5 entirely; compare the tail PSNR (frames 20..29) — with a
  // refresh scheme the error is cleaned, without it the error lingers.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  auto tail_psnr = [&seq](const SchemeSpec& scheme) {
    net::ScriptedFrameLoss loss({5});
    PipelineResult r = run_pipeline(seq, scheme, &loss, short_config(30));
    double sum = 0;
    for (int i = 20; i < 30; ++i) sum += r.frames[i].psnr_db;
    return sum / 10.0;
  };
  double none = tail_psnr(SchemeSpec::no_resilience());
  double pbpair = tail_psnr(SchemeSpec::pbpair(pbpair_config(0.93, 0.10)));
  double gop = tail_psnr(SchemeSpec::gop(8));
  double pgop = tail_psnr(SchemeSpec::pgop(2));
  EXPECT_GT(pbpair, none + 1.0);
  EXPECT_GT(gop, none + 1.0);
  EXPECT_GT(pgop, none + 1.0);
}

TEST(Pipeline, PbpairUsesLessEnergyThanAirAtSimilarIntraRate) {
  // The headline mechanism: AIR pays ME for every MB; PBPAIR skips ME for
  // its refresh MBs. At comparable intra rates PBPAIR's ME energy is lower.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(40);
  PipelineResult air =
      run_pipeline(seq, SchemeSpec::air(24), nullptr, config);
  PipelineResult pbpair = run_pipeline(
      seq, SchemeSpec::pbpair(pbpair_config(0.97, 0.10)), nullptr, config);
  EXPECT_LT(pbpair.encode_energy.me_j, air.encode_energy.me_j);
  EXPECT_LT(pbpair.encode_energy.total_j(), air.encode_energy.total_j());
}

TEST(Pipeline, MoreIntraMeansBiggerFilesLessEncodeEnergy) {
  // §4.3's trade-off curve in two points.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(40);
  PipelineResult low = run_pipeline(
      seq, SchemeSpec::pbpair(pbpair_config(0.55, 0.10)), nullptr, config);
  PipelineResult high = run_pipeline(
      seq, SchemeSpec::pbpair(pbpair_config(0.995, 0.10)), nullptr, config);
  EXPECT_GT(high.total_intra_mbs, low.total_intra_mbs);
  EXPECT_GT(high.total_bytes, low.total_bytes);
  EXPECT_LT(high.encode_energy.total_j(), low.encode_energy.total_j());
}

TEST(Pipeline, TxEnergyTracksBytes) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  PipelineResult r = run_pipeline(seq, SchemeSpec::no_resilience(), nullptr,
                                  short_config());
  EXPECT_GT(r.tx_energy_j, 0.0);
  EXPECT_NEAR(r.tx_energy_j,
              energy::tx_energy_j(r.channel.bytes_sent, energy::ipaq_h5555()),
              1e-12);
}

TEST(Pipeline, PreFrameHookDrivesAdaptation) {
  // Raise Intra_Th sharply at frame 10 and watch the intra count jump.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(20);
  config.pre_frame = [](int index, codec::RefreshPolicy& policy) {
    auto* pbpair = dynamic_cast<core::PbpairPolicy*>(&policy);
    ASSERT_NE(pbpair, nullptr);
    pbpair->set_intra_th(index >= 10 ? 0.999 : 0.2);
  };
  PipelineResult r = run_pipeline(
      seq, SchemeSpec::pbpair(pbpair_config(0.2, 0.1)), nullptr, config);
  int early = 0, late = 0;
  for (int i = 1; i < 10; ++i) early += r.frames[i].intra_mbs;
  for (int i = 10; i < 20; ++i) late += r.frames[i].intra_mbs;
  EXPECT_GT(late, early * 3);
}

TEST(Pipeline, FrameSourceOverloadMatchesSequenceOverload) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  PipelineResult a = run_pipeline(seq, SchemeSpec::no_resilience(), nullptr,
                                  short_config(10));
  PipelineResult b = run_pipeline([&seq](int i) { return seq.frame_at(i); },
                                  SchemeSpec::no_resilience(), nullptr,
                                  short_config(10));
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

TEST(Calibration, FindsSizeMatchingIntraTh) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(25);
  // Target: PGOP-2's encoded size.
  PipelineResult target =
      run_pipeline(seq, SchemeSpec::pgop(2), nullptr, config);
  double th = calibrate_intra_th(seq, pbpair_config(0.9, 0.10),
                                 target.total_bytes, config);
  PipelineResult matched = run_pipeline(
      seq, SchemeSpec::pbpair(pbpair_config(th, 0.10)), nullptr, config);
  double ratio = static_cast<double>(matched.total_bytes) /
                 static_cast<double>(target.total_bytes);
  EXPECT_GT(ratio, 0.80);
  EXPECT_LT(ratio, 1.25);
}

TEST(Calibration, ConvergesTowardTargetSize) {
  // Bisection against a target that is itself an achievable PBPAIR size:
  // more iterations can only tighten the best-so-far error (the midpoint
  // sequence of a longer run extends the shorter one), and the calibrated
  // threshold must land near the target size.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(15);
  PipelineResult target = run_pipeline(
      seq, SchemeSpec::pbpair(pbpair_config(0.7, 0.10)), nullptr, config);

  double prev_err = -1.0;
  for (int iterations : {2, 5, 9}) {
    double th = calibrate_intra_th(seq, pbpair_config(0.7, 0.10),
                                   target.total_bytes, config, 0.0, 1.0,
                                   iterations);
    PipelineResult r = run_pipeline(
        seq, SchemeSpec::pbpair(pbpair_config(th, 0.10)), nullptr, config);
    double err = std::abs(static_cast<double>(r.total_bytes) -
                          static_cast<double>(target.total_bytes));
    if (prev_err >= 0) {
      EXPECT_LE(err, prev_err) << iterations;
    }
    prev_err = err;
  }
  // The deepest search must sit close to the target size.
  EXPECT_LT(prev_err, 0.10 * static_cast<double>(target.total_bytes));
}

TEST(CalibrationDeathTest, RejectsInvertedBounds) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  PipelineConfig config = short_config(2);
  EXPECT_DEATH(calibrate_intra_th(seq, pbpair_config(0.9, 0.10),
                                  /*target_bytes=*/1000, config, /*lo=*/0.9,
                                  /*hi=*/0.2),
               "lo <= hi");
}

TEST(Calibration, SizeIsMonotoneInIntraTh) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  PipelineConfig config = short_config(20);
  std::uint64_t prev = 0;
  for (double th : {0.2, 0.9, 0.999}) {
    PipelineResult r = run_pipeline(
        seq, SchemeSpec::pbpair(pbpair_config(th, 0.10)), nullptr, config);
    EXPECT_GE(r.total_bytes, prev) << "th " << th;
    prev = r.total_bytes;
  }
}

// --- Adaptation controller ---

TEST(Adaptation, HoldIntraRateLowersThresholdWhenPlrRises) {
  core::AdaptationConfig config;
  config.goal = core::AdaptationGoal::kHoldIntraRate;
  config.base_intra_th = 0.85;
  config.base_plr = 0.10;
  config.plr_coupling = 1.0;
  core::PowerAwareController controller(config);
  EXPECT_DOUBLE_EQ(controller.intra_th(), 0.85);
  controller.on_plr_update(0.20);  // PLR up 10 points
  EXPECT_NEAR(controller.intra_th(), 0.75, 1e-9);
  controller.on_plr_update(0.05);  // PLR below baseline
  EXPECT_NEAR(controller.intra_th(), 0.90, 1e-9);
}

TEST(Adaptation, HoldIntraRateClampsToValidRange) {
  core::AdaptationConfig config;
  config.base_intra_th = 0.9;
  config.base_plr = 0.10;
  config.plr_coupling = 5.0;
  core::PowerAwareController controller(config);
  controller.on_plr_update(1.0);
  EXPECT_GE(controller.intra_th(), 0.0);
  controller.on_plr_update(0.0);
  EXPECT_LE(controller.intra_th(), 1.0);
}

TEST(Adaptation, BudgetModeRaisesThresholdWhenOverBudget) {
  core::AdaptationConfig config;
  config.goal = core::AdaptationGoal::kMaxResilienceInBudget;
  config.base_intra_th = 0.80;
  config.energy_budget_j = 10.0;
  config.planned_frames = 100;
  core::PowerAwareController controller(config);
  // 50 frames used 8 J -> projected 16 J > 10 J: tighten.
  controller.on_energy_update(8.0, 50);
  EXPECT_GT(controller.intra_th(), 0.80);
  double tightened = controller.intra_th();
  // Now comfortably under budget: relax toward base, never below it.
  controller.on_energy_update(2.0, 60);
  EXPECT_LT(controller.intra_th(), tightened);
  for (int i = 0; i < 50; ++i) controller.on_energy_update(2.0, 70);
  EXPECT_GE(controller.intra_th(), 0.80);
}

TEST(Adaptation, BudgetModeIgnoresPlrCoupling) {
  core::AdaptationConfig config;
  config.goal = core::AdaptationGoal::kMaxResilienceInBudget;
  config.base_intra_th = 0.80;
  config.energy_budget_j = 10.0;
  config.planned_frames = 100;
  core::PowerAwareController controller(config);
  controller.on_plr_update(0.5);
  EXPECT_DOUBLE_EQ(controller.intra_th(), 0.80);
  EXPECT_DOUBLE_EQ(controller.last_plr(), 0.5);
}

TEST(Adaptation, ClosedLoopKeepsIntraRateStableUnderPlrSwings) {
  // End-to-end §3.2 check: with kHoldIntraRate the per-frame intra count
  // under PLR 0.05 vs 0.25 stays in a narrow band, while a fixed-threshold
  // PBPAIR diverges strongly.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);

  auto intra_with = [&seq](double plr, bool adapt) {
    core::AdaptationConfig aconfig;
    aconfig.base_intra_th = 0.92;
    aconfig.base_plr = 0.10;
    aconfig.plr_coupling = 0.6;
    core::PowerAwareController controller(aconfig);
    PipelineConfig config;
    config.frames = 40;
    config.pre_frame = [&, adapt](int, codec::RefreshPolicy& policy) {
      auto* p = dynamic_cast<core::PbpairPolicy*>(&policy);
      p->set_plr(plr);
      if (adapt) {
        controller.on_plr_update(plr);
        p->set_intra_th(controller.intra_th());
      }
    };
    PipelineResult r = run_pipeline(
        seq, SchemeSpec::pbpair(pbpair_config(0.92, plr)), nullptr, config);
    return static_cast<double>(r.total_intra_mbs);
  };

  double fixed_low = intra_with(0.05, false);
  double fixed_high = intra_with(0.25, false);
  double adapt_low = intra_with(0.05, true);
  double adapt_high = intra_with(0.25, true);
  double fixed_swing = fixed_high / std::max(fixed_low, 1.0);
  double adapt_swing = adapt_high / std::max(adapt_low, 1.0);
  EXPECT_LT(adapt_swing, fixed_swing);
}

// --- Report tables ---

TEST(Report, TableAlignsAndPrints) {
  Table table({"scheme", "psnr"});
  table.add_row({"PBPAIR", "31.2"});
  table.add_row({"GOP-3", "29.8"});
  EXPECT_EQ(table.rows().size(), 2u);
  // Smoke: print to a scratch file and verify content lands there.
  std::FILE* f = std::fopen("/tmp/pbpair_table_test.txt", "w+");
  ASSERT_NE(f, nullptr);
  table.print(f);
  table.print_csv(f);
  long size = std::ftell(f);
  EXPECT_GT(size, 40);
  std::fclose(f);
  std::remove("/tmp/pbpair_table_test.txt");
}

TEST(Report, FormatBuildsStrings) {
  EXPECT_EQ(format("%s-%d", "GOP", 3), "GOP-3");
  EXPECT_EQ(format("%.2f", 1.2345), "1.23");
}

}  // namespace
}  // namespace pbpair::sim
