// Arena-backed ref-counted buffers (common/buffer.h): sharing, slicing,
// copy-on-write, slab recycling, the copy ledger, and thread safety.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/buffer.h"

namespace pbpair::common {
namespace {

std::vector<std::uint8_t> pattern(std::size_t size) {
  std::vector<std::uint8_t> out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 31u + 7u);
  }
  return out;
}

TEST(BufferArena, AllocateWriteReleaseReachesZeroLive) {
  BufferArena arena;
  {
    BufferRef ref = arena.allocate(100);
    ASSERT_EQ(ref.size(), 100u);
    std::uint8_t* bytes = ref.mutable_data();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>(i);
    }
    EXPECT_EQ(ref[42], 42u);
    EXPECT_EQ(arena.live_allocations(), 1u);
  }
  EXPECT_EQ(arena.live_allocations(), 0u);
  EXPECT_EQ(arena.stats().allocations, 1u);
  EXPECT_EQ(arena.stats().bytes_allocated, 100u);
}

TEST(BufferArena, ZeroSizeAllocationHasNoBacking) {
  BufferArena arena;
  BufferRef ref = arena.allocate(0);
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(arena.live_allocations(), 0u);
  EXPECT_EQ(arena.stats().allocations, 0u);
}

TEST(BufferRef, CopySharesStorageWithoutCopyingBytes) {
  BufferArena arena;
  const std::vector<std::uint8_t> bytes = pattern(64);
  BufferRef a = arena.copy(bytes.data(), bytes.size());
  const CopyLedgerSnapshot before = copy_ledger();
  BufferRef b = a;  // refcount bump, no memcpy
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(copy_ledger().copied_bytes, before.copied_bytes);
  EXPECT_EQ(arena.live_allocations(), 1u);  // one allocation, two refs
  EXPECT_EQ(b, bytes);
}

TEST(BufferRef, MutableDataUnsharesWhenShared) {
  BufferArena arena;
  const std::vector<std::uint8_t> bytes = pattern(32);
  BufferRef a = arena.copy(bytes.data(), bytes.size());
  BufferRef b = a;
  b.mutable_data()[0] = 0xFF;  // copy-on-write: a must not see this
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_EQ(a, bytes);
  EXPECT_EQ(b[0], 0xFF);
  // Exclusive mutation is in place: no further unshare.
  const std::uint8_t* data = b.data();
  b.mutable_data()[1] = 0xEE;
  EXPECT_EQ(b.data(), data);
}

TEST(BufferRef, SliceSharesAndCowProtectsTheParent) {
  BufferArena arena;
  const std::vector<std::uint8_t> bytes = pattern(100);
  BufferRef whole = arena.copy(bytes.data(), bytes.size());
  BufferRef part = whole.slice(10, 20);
  ASSERT_EQ(part.size(), 20u);
  EXPECT_TRUE(part.shares_storage_with(whole));
  EXPECT_EQ(part.data(), whole.data() + 10);
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_EQ(part[i], bytes[10 + i]);
  }
  part.mutable_data()[0] = 0xAA;  // unshares: the parent keeps its bytes
  EXPECT_FALSE(part.shares_storage_with(whole));
  EXPECT_EQ(whole, bytes);
}

TEST(BufferRef, ResizeShrinkNarrowsInPlaceGrowZeroFills) {
  BufferArena arena;
  const std::vector<std::uint8_t> bytes = pattern(80);
  BufferRef ref = arena.copy(bytes.data(), bytes.size());
  const std::uint8_t* data = ref.data();
  ref.resize(10);
  EXPECT_EQ(ref.size(), 10u);
  EXPECT_EQ(ref.data(), data);  // shrink never moves bytes
  // Exclusive grow back within the original capacity stays in place and
  // zero-fills the reclaimed tail (std::vector::resize semantics).
  ref.resize(40);
  EXPECT_EQ(ref.data(), data);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(ref[i], bytes[i]);
  for (std::size_t i = 10; i < 40; ++i) EXPECT_EQ(ref[i], 0u);
  // Growing a SHARED ref must leave the other holder untouched.
  BufferRef twin = ref;
  ref.resize(200);
  EXPECT_FALSE(ref.shares_storage_with(twin));
  EXPECT_EQ(twin.size(), 40u);
  EXPECT_EQ(twin.data(), data);
}

TEST(BufferRef, AppendContiguousSlicesWidensWithoutCopy) {
  BufferArena arena;
  const std::vector<std::uint8_t> bytes = pattern(90);
  BufferRef whole = arena.copy(bytes.data(), bytes.size());
  BufferRef head = whole.slice(0, 30);
  BufferRef tail = whole.slice(30, 60);
  const CopyLedgerSnapshot before = copy_ledger();
  head.append(tail);  // directly continues head: the view just widens
  EXPECT_EQ(head.size(), 90u);
  EXPECT_TRUE(head.shares_storage_with(whole));
  EXPECT_EQ(copy_ledger().copied_bytes, before.copied_bytes);
  EXPECT_EQ(head, bytes);
  // Appending to an empty ref shares instead of copying too.
  BufferRef empty;
  empty.append(tail);
  EXPECT_TRUE(empty.shares_storage_with(whole));
  EXPECT_EQ(copy_ledger().copied_bytes, before.copied_bytes);
}

TEST(BufferRef, AppendDisjointAllocationsConcatenates) {
  BufferArena arena;
  const std::vector<std::uint8_t> first = pattern(25);
  std::vector<std::uint8_t> second(17, 0x5C);
  BufferRef a = arena.copy(first.data(), first.size());
  BufferRef b = arena.copy(second.data(), second.size());
  a.append(b);
  std::vector<std::uint8_t> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, second);  // the source is untouched
}

TEST(BufferRef, VectorInteropAndEquality) {
  const std::vector<std::uint8_t> bytes = pattern(48);
  BufferRef ref = bytes;  // implicit: copies into the scratch arena
  EXPECT_EQ(ref, bytes);
  EXPECT_EQ(bytes, ref);
  EXPECT_EQ(ref.to_vector(), bytes);
  std::vector<std::uint8_t> other = bytes;
  other[5] ^= 1;
  EXPECT_NE(ref, other);
  BufferRef same = bytes;
  EXPECT_EQ(ref, same);                          // value equality...
  EXPECT_FALSE(ref.shares_storage_with(same));   // ...not storage identity
  ref.assign(other.begin(), other.end());
  EXPECT_EQ(ref, other);
  ref.assign(std::size_t{7}, std::uint8_t{0x11});
  EXPECT_EQ(ref, std::vector<std::uint8_t>(7, 0x11));
  ref.clear();
  EXPECT_TRUE(ref.empty());
}

TEST(BufferArena, SlabsRecycleToASteadyState) {
  // Tiny slabs force turnover: with every allocation released before the
  // next slab retires, the pool must reuse drained slabs instead of
  // growing without bound.
  BufferArena arena(1024);
  for (int i = 0; i < 200; ++i) {
    BufferRef a = arena.allocate(300);
    BufferRef b = arena.allocate(300);
    a.mutable_data()[0] = static_cast<std::uint8_t>(i);
    b.mutable_data()[0] = static_cast<std::uint8_t>(i + 1);
  }
  const BufferArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.allocations, 400u);
  EXPECT_GT(stats.slabs_recycled, 0u);
  // 400 * 300B through 1KB slabs: without recycling this needs ~120 slabs.
  EXPECT_LE(stats.slabs_created, 4u);
  EXPECT_EQ(arena.live_allocations(), 0u);
}

TEST(BufferArena, CopyChargesTheLedger) {
  BufferArena arena;
  const std::vector<std::uint8_t> bytes = pattern(500);
  const CopyLedgerSnapshot before = copy_ledger();
  BufferRef ref = arena.copy(bytes.data(), bytes.size());
  const CopyLedgerSnapshot after = copy_ledger();
  EXPECT_EQ(after.copied_bytes - before.copied_bytes, 500u);
  EXPECT_EQ(ref, bytes);
}

TEST(BufferArena, ConcurrentShareSliceReleaseIsClean) {
  // The wire path shares payload refs across the fault injector's
  // duplicates and the FEC window queue; under SessionManager those
  // lifetimes end on whichever worker drains the session. Hammer the
  // refcounts from many threads and require an exact zero at the end
  // (ASan + the arena destructor check make any miscount fatal).
  BufferArena arena;
  const std::vector<std::uint8_t> bytes = pattern(4096);
  BufferRef base = arena.copy(bytes.data(), bytes.size());
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&base, &bytes, t] {
      for (int i = 0; i < 2000; ++i) {
        BufferRef copy = base;
        BufferRef part =
            copy.slice(static_cast<std::size_t>((t * 131 + i) % 2048), 64);
        std::uint64_t sum = 0;
        for (std::uint8_t byte : part) sum += byte;
        if (i % 64 == 0) {
          // An occasional COW in the storm must never touch `base`.
          part.mutable_data()[0] = static_cast<std::uint8_t>(sum);
        }
      }
      // Threads only read `bytes`; base must still match it afterwards.
      (void)bytes;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(base, bytes);
  EXPECT_EQ(arena.live_allocations(), 1u);
  base.clear();
  EXPECT_EQ(arena.live_allocations(), 0u);
}

}  // namespace
}  // namespace pbpair::common
