// Live-telemetry tests (DESIGN.md §10): the health state machine and its
// hysteresis, the perturbation-free invariant (health tracking on vs off
// is byte-identical), the Prometheus renderer (golden file + round-trip),
// the HTTP exporter, and the structured log stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/json.h"
#include "net/loss_model.h"
#include "obs/health.h"
#include "obs/http_exporter.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "sim/pipeline.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// --- health state machine ------------------------------------------------

obs::FrameHealthSample sample_with_plr(double plr, double psnr_db = 40.0) {
  obs::FrameHealthSample s;
  s.psnr_db = psnr_db;
  s.bytes = 1000;
  s.packets_sent = 100;
  s.packets_delivered =
      static_cast<std::uint32_t>(100.5 - plr * 100.0);  // round
  s.intra_mbs = 10;
  s.total_mbs = 99;
  s.energy_j = 0.004;
  return s;
}

TEST(Health, WarmupHoldsHealthyThenEscalatesImmediately) {
  obs::HealthConfig config;
  config.window_frames = 4;
  config.warmup_frames = 3;
  obs::SessionHealth health("t0", config);

  // Warmup: terrible PLR must not trip the state machine yet.
  health.on_frame(sample_with_plr(1.0));
  health.on_frame(sample_with_plr(1.0));
  EXPECT_EQ(health.snapshot().state, obs::HealthState::kHealthy);

  // First post-warmup frame: windowed PLR is way past critical-enter, and
  // escalation skips DEGRADED entirely (one transition, not two).
  health.on_frame(sample_with_plr(1.0));
  obs::HealthSnapshot snap = health.snapshot();
  EXPECT_EQ(snap.state, obs::HealthState::kCritical);
  EXPECT_EQ(snap.transitions, 1u);
  EXPECT_NEAR(snap.eff_plr, 1.0, 1e-12);
}

TEST(Health, DeEscalationIsStepwiseWithHysteresis) {
  obs::HealthConfig config;
  config.window_frames = 3;
  config.warmup_frames = 0;
  obs::SessionHealth health("t1", config);

  for (int i = 0; i < 3; ++i) health.on_frame(sample_with_plr(0.5));
  ASSERT_EQ(health.snapshot().state, obs::HealthState::kCritical);

  // Perfect frames flush the window; recovery must pass through DEGRADED
  // (critical -> degraded on one frame, degraded -> healthy on a later
  // one), never jump straight back.
  std::vector<obs::HealthState> states;
  for (int i = 0; i < 4; ++i) {
    health.on_frame(sample_with_plr(0.0));
    states.push_back(health.snapshot().state);
  }
  EXPECT_EQ(states.front(), obs::HealthState::kCritical);  // window not clean
  ASSERT_EQ(states.back(), obs::HealthState::kHealthy);
  bool saw_degraded = false;
  for (obs::HealthState s : states) {
    if (s == obs::HealthState::kDegraded) saw_degraded = true;
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_EQ(health.snapshot().transitions, 3u);  // up, down, down
}

TEST(Health, HoversInsideHysteresisBandWithoutFlapping) {
  obs::HealthConfig config;
  config.window_frames = 5;
  config.warmup_frames = 0;
  obs::SessionHealth health("t2", config);

  // 20% loss: enters DEGRADED (>= 0.10), stays below critical (0.25).
  for (int i = 0; i < 5; ++i) health.on_frame(sample_with_plr(0.2));
  ASSERT_EQ(health.snapshot().state, obs::HealthState::kDegraded);
  const std::uint64_t transitions = health.snapshot().transitions;

  // 8% loss sits between degraded-exit (0.07) and degraded-enter (0.10):
  // the state must hold, with zero further transitions.
  for (int i = 0; i < 10; ++i) {
    health.on_frame(sample_with_plr(0.08));
    EXPECT_EQ(health.snapshot().state, obs::HealthState::kDegraded);
  }
  EXPECT_EQ(health.snapshot().transitions, transitions);

  // Clean frames push the window under 0.07: now it recovers.
  for (int i = 0; i < 5; ++i) health.on_frame(sample_with_plr(0.0));
  EXPECT_EQ(health.snapshot().state, obs::HealthState::kHealthy);
}

TEST(Health, PsnrThresholdsDriveStateToo) {
  obs::HealthConfig config;
  config.window_frames = 3;
  config.warmup_frames = 0;
  obs::SessionHealth health("t3", config);

  for (int i = 0; i < 3; ++i) health.on_frame(sample_with_plr(0.0, 23.0));
  EXPECT_EQ(health.snapshot().state, obs::HealthState::kCritical)
      << "PSNR below critical-enter (24 dB) must escalate";
  // 25 dB is above critical-exit (26)? No: 25 < 26, still critical.
  for (int i = 0; i < 3; ++i) health.on_frame(sample_with_plr(0.0, 25.0));
  EXPECT_EQ(health.snapshot().state, obs::HealthState::kCritical);
  // 40 dB clears both exits.
  for (int i = 0; i < 3; ++i) health.on_frame(sample_with_plr(0.0, 40.0));
  health.on_frame(sample_with_plr(0.0, 40.0));
  EXPECT_EQ(health.snapshot().state, obs::HealthState::kHealthy);
}

TEST(Health, TransitionCallbackSeesLabelAndEdge) {
  obs::HealthConfig config;
  config.window_frames = 2;
  config.warmup_frames = 0;
  std::vector<std::tuple<std::string, obs::HealthState, obs::HealthState>>
      edges;
  config.on_transition = [&edges](const std::string& label,
                                  obs::HealthState from, obs::HealthState to,
                                  const obs::HealthSnapshot&) {
    edges.emplace_back(label, from, to);
  };
  obs::SessionHealth health("cb", config);
  for (int i = 0; i < 2; ++i) health.on_frame(sample_with_plr(0.15));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(std::get<0>(edges[0]), "cb");
  EXPECT_EQ(std::get<1>(edges[0]), obs::HealthState::kHealthy);
  EXPECT_EQ(std::get<2>(edges[0]), obs::HealthState::kDegraded);
}

TEST(Health, EnergyEstimatorsProjectLifetime) {
  obs::HealthConfig config;
  config.window_frames = 4;
  config.frame_rate_hz = 30.0;
  config.battery_capacity_j = 100.0;
  obs::SessionHealth health("en", config);
  for (int i = 0; i < 4; ++i) health.on_frame(sample_with_plr(0.0));
  obs::HealthSnapshot snap = health.snapshot();
  EXPECT_NEAR(snap.energy_j_per_frame, 0.004, 1e-12);
  EXPECT_NEAR(snap.battery_remaining_j, 100.0 - 4 * 0.004, 1e-9);
  // remaining / (J/frame * fps)
  EXPECT_NEAR(snap.projected_lifetime_s, snap.battery_remaining_j / 0.12,
              1e-6);
  EXPECT_NEAR(snap.intra_ratio, 10.0 / 99.0, 1e-12);
}

TEST(Health, RegistryRendersHealthzJson) {
  obs::HealthRegistry registry;
  auto a = registry.create("s\"one", obs::HealthConfig{});
  auto b = registry.create("s-two", obs::HealthConfig{});
  a->on_frame(sample_with_plr(0.0));
  b->on_frame(sample_with_plr(0.0));

  common::JsonValue doc;
  std::string error;
  ASSERT_TRUE(common::JsonValue::parse(registry.healthz_json(), &doc, &error))
      << error;  // hostile label must stay valid JSON
  const common::JsonValue* sessions = doc.find("sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_EQ(sessions->size(), 2u);
  EXPECT_EQ(doc.find("states")->number_at("healthy", -1), 2.0);
  EXPECT_EQ(doc.find("states")->number_at("degraded", -1), 0.0);
}

// --- the invariant: health tracking reads, never perturbs ----------------

std::string digest(const sim::PipelineResult& r) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "%llu %.17g %llu %llu %llu %.17g %.17g\n",
                static_cast<unsigned long long>(r.total_bytes), r.avg_psnr_db,
                static_cast<unsigned long long>(r.total_bad_pixels),
                static_cast<unsigned long long>(r.total_intra_mbs),
                static_cast<unsigned long long>(r.concealed_mbs),
                r.encode_energy.total_j(), r.tx_energy_j);
  out += buf;
  for (const sim::FrameTrace& f : r.frames) {
    std::snprintf(buf, sizeof(buf), "%d %zu %d %d %.17g %llu\n", f.index,
                  f.bytes, f.intra_mbs, f.lost ? 1 : 0, f.psnr_db,
                  static_cast<unsigned long long>(f.bad_pixels));
    out += buf;
  }
  return out;
}

TEST(HealthInvariant, TrackingDoesNotChangeBitstreamReportOrJoules) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.9;
  pbpair.plr = 0.10;

  auto run_once = [&](bool health_on) {
    sim::PipelineConfig config;
    config.frames = 8;
    config.encoder.qp = 10;
    config.encoder.search.range = 4;
    if (health_on) config.health = obs::HealthConfig{};
    net::UniformFrameLoss loss(0.10, /*seed=*/2005);
    return digest(sim::run_pipeline(seq, sim::SchemeSpec::pbpair(pbpair),
                                    &loss, config));
  };

  const std::string off = run_once(false);
  const std::string with_health = run_once(true);
  EXPECT_EQ(off, with_health);

  // Also with the metrics layer collecting (the serve configuration).
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  const std::string with_metrics = run_once(true);
  obs::set_enabled(was_enabled);
  obs::Registry::global().reset_all();
  EXPECT_EQ(off, with_metrics);
}

// --- Prometheus renderer -------------------------------------------------

void fill_sample_registry(obs::Registry* registry) {
  registry->counter("encoder.frames").add(42);
  registry->counter("session.s000.frames").add(7);
  registry->counter("session.s001.frames").add(9);
  registry->gauge("session.s000.psnr_db").set(36.5);
  registry->histogram("stage.encode_ns").observe(100);  // bucket le=256
  registry->histogram("stage.encode_ns").observe(300);  // bucket le=512
}

TEST(Prometheus, RenderMatchesGoldenFile) {
  obs::Registry registry;
  fill_sample_registry(&registry);
  const std::string golden =
      read_file(std::string(PBPAIR_TEST_GOLDEN_DIR) + "/prometheus.txt");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(obs::render_prometheus(registry), golden);
}

TEST(Prometheus, RenderParseRoundTrip) {
  obs::Registry registry;
  fill_sample_registry(&registry);
  std::vector<obs::PromSample> samples;
  ASSERT_TRUE(
      obs::parse_prometheus_text(obs::render_prometheus(registry), &samples));

  double s001_frames = -1, s000_psnr = -1, plain = -1, hist_count = -1;
  for (const obs::PromSample& s : samples) {
    if (s.family == "pbpair_session_frames_total" && s.session == "s001") {
      s001_frames = s.value;
    }
    if (s.family == "pbpair_session_psnr_db" && s.session == "s000") {
      s000_psnr = s.value;
    }
    if (s.family == "pbpair_encoder_frames_total") plain = s.value;
    if (s.family == "pbpair_stage_encode_ns_count") hist_count = s.value;
  }
  EXPECT_EQ(s001_frames, 9.0);
  EXPECT_EQ(s000_psnr, 36.5);
  EXPECT_EQ(plain, 42.0);
  EXPECT_EQ(hist_count, 2.0);
}

TEST(Prometheus, SessionLabelsEscapeHostileCharacters) {
  obs::Registry registry;
  // Labels come from scheme labels / CLI input; a quote or backslash must
  // not corrupt the exposition.
  registry.counter("session.s\"evil\\label.frames").add(3);
  const std::string text = obs::render_prometheus(registry);
  EXPECT_NE(text.find("session=\"s\\\"evil\\\\label\""), std::string::npos);

  std::vector<obs::PromSample> samples;
  ASSERT_TRUE(obs::parse_prometheus_text(text, &samples));
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].session, "s\"evil\\label");  // round-trips
  EXPECT_EQ(samples[0].value, 3.0);
}

// --- HTTP exporter -------------------------------------------------------

TEST(HttpExporter, ServesMetricsByteIdenticallyAcrossScrapes) {
  obs::Registry registry;
  fill_sample_registry(&registry);
  obs::HttpExporter exporter;
  ASSERT_TRUE(exporter.start(0, [&registry](const std::string& path) {
    obs::HttpResponse response;
    if (path == "/metrics") {
      response.body = obs::render_prometheus(registry);
    } else if (path == "/healthz") {
      response.content_type = "application/json";
      response.body = "{\"sessions\": []}";
    } else {
      response.status = 404;
      response.body = "not found\n";
    }
    return response;
  }));
  ASSERT_GT(exporter.port(), 0);  // kernel-assigned ephemeral port

  std::string first, second, health, missing;
  int status = 0;
  ASSERT_TRUE(
      obs::http_get("127.0.0.1", exporter.port(), "/metrics", &first,
                    &status));
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(
      obs::http_get("127.0.0.1", exporter.port(), "/metrics", &second));
  // Idle deterministic server: two scrapes must be byte-identical.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, obs::render_prometheus(registry));

  ASSERT_TRUE(obs::http_get("127.0.0.1", exporter.port(), "/healthz",
                            &health, &status));
  EXPECT_EQ(status, 200);
  common::JsonValue doc;
  EXPECT_TRUE(common::JsonValue::parse(health, &doc));

  ASSERT_TRUE(obs::http_get("127.0.0.1", exporter.port(), "/nope", &missing,
                            &status));
  EXPECT_EQ(status, 404);

  exporter.stop();
  EXPECT_FALSE(exporter.running());
  // After stop, connections fail cleanly.
  EXPECT_FALSE(
      obs::http_get("127.0.0.1", exporter.port(), "/metrics", &first));
}

// --- structured logging --------------------------------------------------

class ScopedLogConfig {
 public:
  ScopedLogConfig() = default;
  ~ScopedLogConfig() {
    obs::close_log_json();
    obs::set_log_min_level(obs::LogLevel::kWarn);
    obs::set_log_deterministic(false);
  }
};

TEST(Log, DeterministicJsonlRecordsParseAndOmitTimestamps) {
  ScopedLogConfig restore;
  const std::string path = temp_path("log_det.jsonl");
  obs::set_log_deterministic(true);
  obs::set_log_min_level(obs::LogLevel::kInfo);
  ASSERT_TRUE(obs::set_log_json_path(path));

  PB_LOG_INFO("frame %d done", 7);
  PB_LOG_WARN("hostile \"msg\" with \\ and\nnewline");
  PB_LOG_DEBUG("below min level: dropped");
  obs::close_log_json();

  std::istringstream lines(read_file(path));
  std::string line;
  std::vector<common::JsonValue> records;
  while (std::getline(lines, line)) {
    common::JsonValue record;
    std::string error;
    ASSERT_TRUE(common::JsonValue::parse(line, &record, &error))
        << error << " in: " << line;
    records.push_back(std::move(record));
  }
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].find("ts"), nullptr);  // deterministic: no clock
  EXPECT_EQ(records[0].string_at("level"), "info");
  EXPECT_EQ(records[0].string_at("msg"), "frame 7 done");
  EXPECT_NE(records[0].string_at("site").find("test_telemetry.cpp:"),
            std::string::npos);
  EXPECT_EQ(records[1].string_at("level"), "warn");
  EXPECT_EQ(records[1].string_at("msg"),
            "hostile \"msg\" with \\ and\nnewline");
  std::remove(path.c_str());
}

TEST(Log, WallClockModeEmitsTimestamps) {
  ScopedLogConfig restore;
  const std::string path = temp_path("log_ts.jsonl");
  ASSERT_TRUE(obs::set_log_json_path(path));
  PB_LOG_ERROR("one error");
  obs::close_log_json();

  common::JsonValue record;
  std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  ASSERT_TRUE(common::JsonValue::parse(
      text.substr(0, text.find('\n')), &record));
  ASSERT_NE(record.find("ts"), nullptr);
  EXPECT_GT(record.find("ts")->as_number(), 0.0);
  std::remove(path.c_str());
}

TEST(Log, TokenBucketRateLimitsHotSites) {
  ScopedLogConfig restore;
  const std::string path = temp_path("log_burst.jsonl");
  obs::set_log_min_level(obs::LogLevel::kInfo);
  ASSERT_TRUE(obs::set_log_json_path(path));

  const std::uint64_t suppressed_before = obs::log_suppressed_total();
  for (int i = 0; i < 100; ++i) {
    PB_LOG_INFO("hot loop %d", i);  // one site, hammered
  }
  obs::close_log_json();

  // Burst is 8 and refill 2/s: a fast loop of 100 gets only a handful
  // through; the rest are counted, not written.
  std::istringstream lines(read_file(path));
  std::string line;
  int written = 0;
  while (std::getline(lines, line)) ++written;
  EXPECT_LT(written, 20);
  EXPECT_GE(written, 1);
  EXPECT_GT(obs::log_suppressed_total(), suppressed_before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pbpair
