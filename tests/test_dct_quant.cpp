// Tests for the integer DCT/IDCT, quantizer, zig-zag, and block coder.
#include <gtest/gtest.h>

#include <cstring>

#include "codec/block_coder.h"
#include "codec/dct.h"
#include "codec/quant.h"
#include "codec/zigzag.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "energy/op_counters.h"

namespace pbpair::codec {
namespace {

TEST(Zigzag, IsAPermutation) {
  bool seen[64] = {};
  for (int i = 0; i < 64; ++i) {
    ASSERT_GE(kZigzag[i], 0);
    ASSERT_LT(kZigzag[i], 64);
    EXPECT_FALSE(seen[kZigzag[i]]);
    seen[kZigzag[i]] = true;
  }
}

TEST(Zigzag, InverseIsConsistent) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(kZigzagInverse[kZigzag[i]], i);
  }
}

TEST(Zigzag, KnownPrefix) {
  // Standard 8x8 scan starts 0, 1, 8, 16, 9, 2, 3, 10 ...
  EXPECT_EQ(kZigzag[0], 0);
  EXPECT_EQ(kZigzag[1], 1);
  EXPECT_EQ(kZigzag[2], 8);
  EXPECT_EQ(kZigzag[3], 16);
  EXPECT_EQ(kZigzag[4], 9);
  EXPECT_EQ(kZigzag[5], 2);
  EXPECT_EQ(kZigzag[6], 3);
  EXPECT_EQ(kZigzag[7], 10);
  EXPECT_EQ(kZigzag[63], 63);
}

TEST(Dct, FlatBlockHasOnlyDc) {
  std::int16_t in[64];
  std::int16_t out[64];
  for (auto& v : in) v = 128;
  forward_dct_8x8(in, out);
  // DC of the orthonormal DCT-II is 8 * mean = 1024 for mean 128.
  EXPECT_NEAR(out[0], 1024, 1);
  for (int i = 1; i < 64; ++i) EXPECT_EQ(out[i], 0) << "coeff " << i;
}

TEST(Dct, ZeroBlockStaysZero) {
  std::int16_t in[64] = {};
  std::int16_t out[64];
  forward_dct_8x8(in, out);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 0);
  inverse_dct_8x8(in, out);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], 0);
}

TEST(Dct, RoundTripErrorIsTiny) {
  common::Pcg32 rng(314);
  std::int64_t max_err = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::int16_t in[64], coeffs[64], back[64];
    for (auto& v : in) v = static_cast<std::int16_t>(rng.next_below(256));
    forward_dct_8x8(in, coeffs);
    inverse_dct_8x8(coeffs, back);
    for (int i = 0; i < 64; ++i) {
      max_err = std::max<std::int64_t>(max_err, common::iabs(in[i] - back[i]));
    }
  }
  // Coefficients are stored as integers, so each carries up to 0.5 of
  // rounding error; the worst-case spatial accumulation over 64 basis
  // functions is ~6 gray levels (same envelope real integer codecs have).
  EXPECT_LE(max_err, 6);
}

TEST(Dct, RoundTripForResidualRange) {
  common::Pcg32 rng(315);
  for (int trial = 0; trial < 20; ++trial) {
    std::int16_t in[64], coeffs[64], back[64];
    for (auto& v : in) v = static_cast<std::int16_t>(rng.next_in_range(-255, 255));
    forward_dct_8x8(in, coeffs);
    inverse_dct_8x8(coeffs, back);
    for (int i = 0; i < 64; ++i) {
      ASSERT_LE(common::iabs(in[i] - back[i]), 6);
    }
  }
}

TEST(Dct, LinearityApproximatelyHolds) {
  common::Pcg32 rng(316);
  std::int16_t a[64], b[64], sum[64], fa[64], fb[64], fsum[64];
  for (int i = 0; i < 64; ++i) {
    a[i] = static_cast<std::int16_t>(rng.next_in_range(-100, 100));
    b[i] = static_cast<std::int16_t>(rng.next_in_range(-100, 100));
    sum[i] = static_cast<std::int16_t>(a[i] + b[i]);
  }
  forward_dct_8x8(a, fa);
  forward_dct_8x8(b, fb);
  forward_dct_8x8(sum, fsum);
  for (int i = 0; i < 64; ++i) {
    EXPECT_LE(common::iabs(fsum[i] - (fa[i] + fb[i])), 2) << "coeff " << i;
  }
}

TEST(Dct, HorizontalEdgeProducesVerticalFrequencies) {
  // Top half 0, bottom half 200: energy lands in column 0 (v=0) rows u>0.
  std::int16_t in[64];
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) in[y * 8 + x] = y < 4 ? 0 : 200;
  }
  std::int16_t out[64];
  forward_dct_8x8(in, out);
  EXPECT_NEAR(out[0], 800, 2);  // DC = 8 * mean = 8 * 100
  EXPECT_GT(common::iabs(out[1 * 8 + 0]), 100);  // strong (u=1, v=0)
  EXPECT_EQ(out[0 * 8 + 1], 0);                  // no horizontal variation
}

TEST(Dct, EnergyIsPreserved) {
  // Orthonormal transform: sum of squares preserved (Parseval).
  common::Pcg32 rng(317);
  std::int16_t in[64], out[64];
  for (auto& v : in) v = static_cast<std::int16_t>(rng.next_in_range(-200, 200));
  forward_dct_8x8(in, out);
  double e_in = 0, e_out = 0;
  for (int i = 0; i < 64; ++i) {
    e_in += static_cast<double>(in[i]) * in[i];
    e_out += static_cast<double>(out[i]) * out[i];
  }
  EXPECT_NEAR(e_out / e_in, 1.0, 0.01);
}

// --- Quantizer ---

TEST(Quant, IntraDcRoundTripsWithinStep) {
  for (int dc = 8; dc <= 2032; dc += 97) {
    int level = quantize_intra_dc(dc);
    int rec = dequantize_intra_dc(level);
    EXPECT_LE(common::iabs(rec - dc), 4) << "dc " << dc;
  }
}

TEST(Quant, IntraDcLevelBounds) {
  EXPECT_EQ(quantize_intra_dc(0), 1);     // clamps up (level 0 reserved)
  EXPECT_EQ(quantize_intra_dc(2047), 254);
}

class QuantRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QuantRoundTrip, ReconstructionWithinQuantizerStep) {
  const int qp = GetParam();
  common::Pcg32 rng(400 + qp);
  for (int trial = 0; trial < 200; ++trial) {
    int coeff = rng.next_in_range(-2000, 2000);
    for (bool intra : {false, true}) {
      int level = quantize_coeff(coeff, qp, intra);
      int rec = dequantize_coeff(level, qp);
      if (level == 0) continue;
      if (common::iabs(level) == kMaxLevel) {
        // Saturated level (|coeff| beyond the 127-level range of the
        // bitstream, reachable only at very small QP): reconstruction
        // clips toward zero by design; only the sign must survive.
        EXPECT_EQ(rec > 0, coeff > 0);
        continue;
      }
      // Reconstruction error bounded by ~1.5 steps (dead zone included).
      EXPECT_LE(common::iabs(rec - coeff), 3 * qp + 1)
          << "qp " << qp << " coeff " << coeff << " intra " << intra;
      EXPECT_EQ(rec > 0, coeff > 0);
    }
  }
}

TEST_P(QuantRoundTrip, InterDeadZoneZeroesSmallCoeffs) {
  const int qp = GetParam();
  // |coeff| below ~2.5*qp quantizes to 0 in inter mode (dead zone).
  EXPECT_EQ(quantize_coeff(qp, qp, /*intra=*/false), 0);
  EXPECT_EQ(quantize_coeff(-qp, qp, /*intra=*/false), 0);
}

TEST_P(QuantRoundTrip, LevelsAreClamped) {
  const int qp = GetParam();
  int level = quantize_coeff(2047, qp, /*intra=*/true);
  EXPECT_LE(level, kMaxLevel);
  level = quantize_coeff(-2047, qp, /*intra=*/true);
  EXPECT_GE(level, -kMaxLevel);
}

INSTANTIATE_TEST_SUITE_P(QpSweep, QuantRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 13, 16, 22, 31));

TEST(Quant, OddificationRule) {
  // QP odd: |rec| = qp*(2|level|+1); QP even: minus 1.
  EXPECT_EQ(dequantize_coeff(2, 5), 5 * 5);       // 5*(4+1) = 25
  EXPECT_EQ(dequantize_coeff(2, 6), 6 * 5 - 1);   // 29
  EXPECT_EQ(dequantize_coeff(-2, 5), -25);
  EXPECT_EQ(dequantize_coeff(0, 9), 0);
}

TEST(Quant, BlockQuantCountsNonzeros) {
  energy::OpCounters ops;
  std::int16_t block[64] = {};
  block[0] = 800;   // intra DC
  block[5] = 300;
  block[9] = -4;    // below dead zone at qp 10 -> 0 in inter, also 0 intra
  int nz = quantize_block(block, 10, /*intra=*/true, ops);
  EXPECT_EQ(nz, 2);  // DC + coeff 5
  EXPECT_EQ(ops.quant_coeffs, 64u);
}

TEST(Quant, BlockDequantMetersOps) {
  energy::OpCounters ops;
  std::int16_t block[64] = {};
  block[0] = 100;
  dequantize_block(block, 10, /*intra=*/true, ops);
  EXPECT_EQ(ops.dequant_coeffs, 64u);
  EXPECT_EQ(block[0], 800);
}

// --- Block coder ---

TEST(BlockCoder, InterBlockRoundTrips) {
  std::int16_t block[64] = {};
  block[0] = 5;
  block[kZigzag[3]] = -2;
  block[kZigzag[20]] = 1;
  BitWriter writer;
  encode_block(writer, block, /*intra=*/false);
  auto bytes = writer.finish();
  BitReader reader(bytes);
  std::int16_t got[64];
  ASSERT_TRUE(decode_block(reader, got, /*intra=*/false));
  EXPECT_EQ(0, std::memcmp(block, got, sizeof(block)));
}

TEST(BlockCoder, IntraBlockWithNoAcRoundTrips) {
  std::int16_t block[64] = {};
  block[0] = 77;  // DC level only
  BitWriter writer;
  encode_block(writer, block, /*intra=*/true);
  auto bytes = writer.finish();
  EXPECT_LE(bytes.size(), 2u);  // 8-bit DC + 1 flag bit
  BitReader reader(bytes);
  std::int16_t got[64];
  ASSERT_TRUE(decode_block(reader, got, /*intra=*/true));
  EXPECT_EQ(0, std::memcmp(block, got, sizeof(block)));
}

class BlockCoderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BlockCoderFuzz, RandomSparseBlocksRoundTrip) {
  const int density_percent = GetParam();
  common::Pcg32 rng(500 + density_percent);
  for (int trial = 0; trial < 100; ++trial) {
    for (bool intra : {false, true}) {
      std::int16_t block[64] = {};
      if (intra) block[0] = static_cast<std::int16_t>(1 + rng.next_below(254));
      bool any = intra;
      for (int i = intra ? 1 : 0; i < 64; ++i) {
        if (rng.next_below(100) < static_cast<std::uint32_t>(density_percent)) {
          int level = rng.next_in_range(-127, 127);
          if (level == 0) level = 1;
          block[i] = static_cast<std::int16_t>(level);
          any = true;
        }
      }
      if (!any) continue;  // inter block with nothing coded is not written
      BitWriter writer;
      encode_block(writer, block, intra);
      auto bytes = writer.finish();
      BitReader reader(bytes);
      std::int16_t got[64];
      ASSERT_TRUE(decode_block(reader, got, intra));
      ASSERT_EQ(0, std::memcmp(block, got, sizeof(block)))
          << "density " << density_percent << " intra " << intra;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Density, BlockCoderFuzz,
                         ::testing::Values(2, 5, 10, 25, 50, 90));

TEST(BlockCoder, TruncatedStreamFails) {
  std::int16_t block[64] = {};
  block[kZigzag[63]] = 3;  // long run forces several bits
  BitWriter writer;
  encode_block(writer, block, /*intra=*/false);
  auto bytes = writer.finish();
  bytes.resize(bytes.size() / 2);
  BitReader reader(bytes);
  std::int16_t got[64];
  EXPECT_FALSE(decode_block(reader, got, /*intra=*/false));
}

TEST(BlockCoder, BlockIsEmptyRespectsIntraDc) {
  std::int16_t block[64] = {};
  EXPECT_TRUE(block_is_empty(block, false));
  block[0] = 10;
  EXPECT_FALSE(block_is_empty(block, false));
  EXPECT_TRUE(block_is_empty(block, true));  // DC ignored for intra
  block[1] = 1;
  EXPECT_FALSE(block_is_empty(block, true));
}

}  // namespace
}  // namespace pbpair::codec
