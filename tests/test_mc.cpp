// Tests for half-pel motion compensation and its codec integration.
#include <gtest/gtest.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/mc.h"
#include "video/metrics.h"
#include "video/sequence.h"

namespace pbpair::codec {
namespace {

video::Plane gradient_plane(int w, int h) {
  video::Plane plane(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      plane.set(x, y, static_cast<std::uint8_t>((x * 3 + y * 5) & 0xFF));
    }
  }
  return plane;
}

TEST(Mc, FullPelPredictionIsVerbatimCopy) {
  video::Plane ref = gradient_plane(64, 64);
  std::uint8_t pred[16 * 16];
  energy::OpCounters ops;
  predict_block(ref, 2 * 8, 2 * 12, 16, 16, pred, ops);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_EQ(pred[y * 16 + x], ref.at(8 + x, 12 + y));
    }
  }
  EXPECT_EQ(ops.mc_pixels, 256u);
  EXPECT_EQ(ops.mc_halfpel_pixels, 0u);
}

TEST(Mc, HorizontalHalfPelAveragesNeighbors) {
  video::Plane ref(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      ref.set(x, y, static_cast<std::uint8_t>(x * 7 % 251));
    }
  }
  std::uint8_t pred[8 * 8];
  energy::OpCounters ops;
  predict_block(ref, 2 * 4 + 1, 2 * 4, 8, 8, pred, ops);  // half right
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      int expected = (ref.at(4 + x, 4 + y) + ref.at(5 + x, 4 + y) + 1) >> 1;
      ASSERT_EQ(pred[y * 8 + x], expected);
    }
  }
  EXPECT_EQ(ops.mc_halfpel_pixels, 64u);
}

TEST(Mc, VerticalHalfPelAveragesNeighbors) {
  video::Plane ref = gradient_plane(32, 32);
  std::uint8_t pred[8 * 8];
  energy::OpCounters ops;
  predict_block(ref, 2 * 4, 2 * 4 + 1, 8, 8, pred, ops);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      int expected = (ref.at(4 + x, 4 + y) + ref.at(4 + x, 5 + y) + 1) >> 1;
      ASSERT_EQ(pred[y * 8 + x], expected);
    }
  }
}

TEST(Mc, CenterHalfPelAveragesFourNeighbors) {
  video::Plane ref = gradient_plane(32, 32);
  std::uint8_t pred[8 * 8];
  energy::OpCounters ops;
  predict_block(ref, 2 * 4 + 1, 2 * 4 + 1, 8, 8, pred, ops);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      int expected = (ref.at(4 + x, 4 + y) + ref.at(5 + x, 4 + y) +
                      ref.at(4 + x, 5 + y) + ref.at(5 + x, 5 + y) + 2) >>
                     2;
      ASSERT_EQ(pred[y * 8 + x], expected);
    }
  }
}

TEST(Mc, EdgeReadsAreClamped) {
  video::Plane ref(32, 32, 0);
  for (int y = 0; y < 32; ++y) ref.set(31, y, 200);  // bright last column
  std::uint8_t pred[8 * 8];
  energy::OpCounters ops;
  // Block whose +1 interpolation reads fall past the right edge.
  predict_block(ref, 2 * 24 + 1, 0, 8, 8, pred, ops);
  // Rightmost predicted column: (ref(31,y) + clamped ref(32,y)) / 2 = 200.
  for (int y = 0; y < 8; ++y) ASSERT_EQ(pred[y * 8 + 7], 200);
}

TEST(Mc, ChromaMvDerivation) {
  // H.263 rule: halve the luma vector; any fractional part rounds to the
  // half-pel position. (Units: half-pel in the respective plane.)
  EXPECT_EQ(chroma_mv(MotionVector{0, 0}), (MotionVector{0, 0}));
  EXPECT_EQ(chroma_mv(MotionVector{4, 0}).x, 2);    // 2 px luma -> 1 px chroma
  EXPECT_EQ(chroma_mv(MotionVector{2, 0}).x, 1);    // 1 px -> 0.5 px
  EXPECT_EQ(chroma_mv(MotionVector{1, 0}).x, 1);    // 0.5 px -> 0.5 px
  EXPECT_EQ(chroma_mv(MotionVector{3, 0}).x, 1);    // 1.5 px -> 0.5 px
  EXPECT_EQ(chroma_mv(MotionVector{6, 0}).x, 3);    // 3 px -> 1.5 px
  EXPECT_EQ(chroma_mv(MotionVector{8, 0}).x, 4);    // 4 px -> 2 px
  EXPECT_EQ(chroma_mv(MotionVector{-4, -2}), (MotionVector{-2, -1}));
  EXPECT_EQ(chroma_mv(MotionVector{-3, 0}).x, -1);
}

TEST(Mc, HalfpelSadMatchesPrediction) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  video::YuvFrame cur = seq.frame_at(1);
  video::YuvFrame ref = seq.frame_at(0);
  energy::OpCounters ops;
  // SAD via the half-pel path at an odd position must equal a manual SAD
  // against the interpolated prediction.
  const int px = 48, py = 48, mvx = 3, mvy = -1;  // half-pel units
  std::uint8_t pred[16 * 16];
  predict_block(ref.y(), px * 2 + mvx, py * 2 + mvy, 16, 16, pred, ops);
  std::int64_t manual = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      manual += std::abs(static_cast<int>(cur.y().at(px + x, py + y)) -
                         pred[y * 16 + x]);
    }
  }
  std::int64_t sad = sad_16x16_halfpel(cur.y(), px, py, ref.y(),
                                       px * 2 + mvx, py * 2 + mvy,
                                       INT64_MAX, ops);
  EXPECT_EQ(sad, manual);
  EXPECT_GT(ops.sad_halfpel_ops, 0u);
}

TEST(Mc, HalfpelMotionVectorHelpers) {
  EXPECT_EQ(halfpel_floor(5), 2);
  EXPECT_EQ(halfpel_floor(4), 2);
  EXPECT_EQ(halfpel_floor(-1), -1);
  EXPECT_EQ(halfpel_floor(-2), -1);
  EXPECT_EQ(halfpel_span(4), 16);
  EXPECT_EQ(halfpel_span(5), 17);
  EXPECT_TRUE((MotionVector{1, 0}).is_half_pel());
  EXPECT_FALSE(MotionVector::from_pixels(3, -2).is_half_pel());
}

// --- Codec-level integration ---

TEST(McIntegration, HalfPelImprovesCompressionOnPanningContent) {
  // Garden pans ~2.5 px/frame: the true motion is half-pel, so half-pel
  // vectors shrink residuals and the bitstream.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  auto total_bytes = [&seq](bool half_pel) {
    NoRefreshPolicy policy;
    EncoderConfig config;
    config.search.half_pel = half_pel;
    Encoder encoder(config, &policy);
    std::uint64_t bytes = 0;
    for (int i = 0; i < 6; ++i) {
      bytes += encoder.encode_frame(seq.frame_at(i)).size_bytes();
    }
    return bytes;
  };
  std::uint64_t without = total_bytes(false);
  std::uint64_t with = total_bytes(true);
  EXPECT_LT(with, without);
}

TEST(McIntegration, HalfPelVectorsActuallyOccur) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  encoder.encode_frame(seq.frame_at(0));
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(1));
  int half_pel_mbs = 0;
  for (const MbEncodeRecord& r : frame.mb_records) {
    if (r.mode == MbMode::kInter && r.mv.is_half_pel()) ++half_pel_mbs;
  }
  // Garden's vertical drift is 0.25 px/frame: the best approximation for
  // many MBs is a half-pel vector. (The horizontal pan lands on full
  // pixels frame-to-frame, so it does not contribute.)
  EXPECT_GT(half_pel_mbs, 20);
}

TEST(McIntegration, LockstepHoldsWithHalfPelVectors) {
  // The decisive invariant: decoder reproduces the encoder reconstruction
  // bit-exactly even when half-pel prediction and differential MVs are in
  // heavy use (garden forces both).
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  Decoder decoder(DecoderConfig{});
  for (int i = 0; i < 5; ++i) {
    EncodedFrame frame = encoder.encode_frame(seq.frame_at(i));
    ASSERT_EQ(decoder.decode_frame(frame), encoder.reconstructed())
        << "frame " << i;
  }
}

TEST(McIntegration, DifferentialMvCodingShrinksCoherentMotion) {
  // With a global pan, neighboring MBs share the same vector, so MVDs are
  // mostly zero and cheaper than absolute vectors would be. Verify the MV
  // bit cost indirectly: garden P-frame inter-MB bits with prediction must
  // beat a build where the predictor is suppressed. We emulate "no
  // prediction" by measuring the entropy cost difference of the vectors.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kGardenLike);
  NoRefreshPolicy policy;
  Encoder encoder(EncoderConfig{}, &policy);
  encoder.encode_frame(seq.frame_at(0));
  EncodedFrame frame = encoder.encode_frame(seq.frame_at(1));
  // Count how many inter MBs repeat their left neighbor's vector.
  int repeats = 0, inters = 0;
  for (int my = 0; my < frame.mb_rows; ++my) {
    for (int mx = 1; mx < frame.mb_cols; ++mx) {
      const MbEncodeRecord& cur = frame.mb_records[my * frame.mb_cols + mx];
      const MbEncodeRecord& left =
          frame.mb_records[my * frame.mb_cols + mx - 1];
      if (cur.mode != MbMode::kInter) continue;
      ++inters;
      if (left.mode == MbMode::kInter && left.mv == cur.mv) ++repeats;
    }
  }
  ASSERT_GT(inters, 40);
  // The pan makes the field strongly coherent; most vectors repeat.
  EXPECT_GT(repeats * 2, inters);
}

}  // namespace
}  // namespace pbpair::codec
