// Sharded session engine under stress: the MPMC run queues, rendezvous
// pinning, admission shedding, and the 512-session slice-1 determinism
// contract (DESIGN.md §15).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "net/loss_model.h"
#include "obs/health.h"
#include "sim/admission.h"
#include "sim/session_manager.h"
#include "video/frame.h"

namespace pbpair::sim {
namespace {

// Same %.17g idiom as test_session_manager.cpp: any bit difference in any
// reported field shows up as a string difference.
std::string serialize(const std::vector<PipelineResult>& results) {
  std::string out;
  char buf[256];
  for (const PipelineResult& r : results) {
    std::snprintf(buf, sizeof(buf), "total %llu %.17g %llu %llu %llu\n",
                  static_cast<unsigned long long>(r.total_bytes),
                  r.avg_psnr_db,
                  static_cast<unsigned long long>(r.total_bad_pixels),
                  static_cast<unsigned long long>(r.total_intra_mbs),
                  static_cast<unsigned long long>(r.concealed_mbs));
    out += buf;
    for (const FrameTrace& f : r.frames) {
      std::snprintf(buf, sizeof(buf), "f %d %zu %d %d %.17g %llu\n", f.index,
                    f.bytes, f.intra_mbs, f.lost ? 1 : 0, f.psnr_db,
                    static_cast<unsigned long long>(f.bad_pixels));
      out += buf;
    }
  }
  return out;
}

// 32x32 (2x2 macroblocks) synthetic frames: big enough to exercise the
// full pipeline, small enough that a 512-session fleet runs in seconds.
video::YuvFrame tiny_frame(int index, int phase) {
  video::YuvFrame frame(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      frame.y().set(x, y,
                    static_cast<std::uint8_t>(
                        (x * 3 + y * 5 + index * 7 + phase * 11) & 0xff));
    }
  }
  frame.u().fill(static_cast<std::uint8_t>(128 + phase));
  frame.v().fill(static_cast<std::uint8_t>(64 + index));
  return frame;
}

std::vector<SessionSpec> tiny_specs(int sessions, int frames) {
  std::vector<SessionSpec> specs;
  specs.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    SessionSpec spec;
    if (i % 2 == 0) {
      core::PbpairConfig pbpair;
      pbpair.intra_th = 0.9;
      pbpair.plr = 0.10;
      spec.scheme = SchemeSpec::pbpair(pbpair);
    } else {
      spec.scheme = SchemeSpec::gop(4);
    }
    spec.config.frames = frames;
    spec.config.encoder.width = 32;
    spec.config.encoder.height = 32;
    const int phase = i % 17;
    spec.source = [phase](int index) { return tiny_frame(index, phase); };
    const std::uint64_t seed = 77 + static_cast<std::uint64_t>(i);
    spec.make_loss = [seed] {
      return std::make_unique<net::UniformFrameLoss>(0.2, seed);
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(MpmcQueue, FifoAndBoundedSingleThread) {
  common::MpmcQueue<std::uint32_t> queue(4);
  EXPECT_EQ(queue.size_approx(), 0u);
  std::uint32_t value = 0;
  EXPECT_FALSE(queue.try_pop(&value));
  for (std::uint32_t i = 1; i <= 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99)) << "queue is bounded at its capacity";
  EXPECT_EQ(queue.size_approx(), 4u);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(queue.try_pop(&value));
    EXPECT_EQ(value, i) << "single-threaded pops come out in push order";
  }
  EXPECT_FALSE(queue.try_pop(&value));
  // Wrap around the ring a few times: sequence numbers must keep working.
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(queue.try_push(static_cast<std::uint32_t>(round)));
    ASSERT_TRUE(queue.try_pop(&value));
    EXPECT_EQ(value, static_cast<std::uint32_t>(round));
  }
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  common::MpmcQueue<std::uint32_t> queue(5);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99));
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint32_t kPerProducer = 5000;
  common::MpmcQueue<std::uint32_t> queue(256);
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue] {
      for (std::uint32_t i = 1; i <= kPerProducer; ++i) {
        while (!queue.try_push(i)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint32_t value = 0;
      for (;;) {
        if (queue.try_pop(&value)) {
          consumed_sum.fetch_add(value, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire)) {
          if (!queue.try_pop(&value)) break;
          consumed_sum.fetch_add(value, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const std::uint64_t per_producer_sum =
      static_cast<std::uint64_t>(kPerProducer) * (kPerProducer + 1) / 2;
  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum.load(), kProducers * per_producer_sum);
}

TEST(RendezvousShard, StableAndInRange) {
  for (std::size_t shards : {1u, 2u, 3u, 8u}) {
    for (std::size_t i = 0; i < 100; ++i) {
      const std::string label = SessionManager::default_label(i, 100);
      const std::size_t shard = rendezvous_shard(label, shards);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, rendezvous_shard(label, shards))
          << "pinning must be a pure function of the label";
    }
  }
}

TEST(RendezvousShard, CoversAllShardsAndMovesMinimally) {
  constexpr std::size_t kShards = 8;
  std::set<std::size_t> used;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::string label = SessionManager::default_label(i, 1000);
    const std::size_t at8 = rendezvous_shard(label, kShards);
    used.insert(at8);
    // The HRW property: dropping the last shard only moves sessions that
    // were pinned to it — everyone else keeps their shard.
    const std::size_t at7 = rendezvous_shard(label, kShards - 1);
    if (at8 < kShards - 1) {
      EXPECT_EQ(at7, at8) << label;
    } else {
      ++moved;
    }
  }
  EXPECT_EQ(used.size(), kShards) << "1000 labels should land on all shards";
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 1000 / 4) << "roughly 1/8 of sessions should move";
}

// The tentpole contract at stress scale: 512 sessions, slice 1 (maximum
// rescheduling — every session requeues after every frame), 8 worker
// shards with stealing, byte-identical to the 1-thread reference.
TEST(ShardedServing, Stress512SessionsSliceOneEightThreads) {
  const int kSessions = 512;
  const int kFrames = 3;
  SessionManagerOptions reference_options;
  reference_options.threads = 1;
  const std::string reference = serialize(
      SessionManager(tiny_specs(kSessions, kFrames)).run(reference_options));

  SessionManagerOptions options;
  options.threads = 8;
  options.frames_per_slice = 1;
  const std::string sharded = serialize(
      SessionManager(tiny_specs(kSessions, kFrames)).run(options));
  EXPECT_EQ(sharded, reference);
}

// The per-shard live cap (what bounds a 10k fleet's memory) trickles
// construction but must not change a single reported bit.
TEST(ShardedServing, LiveCapDoesNotChangeResults) {
  obs::HealthRegistry::global().clear();
  const int kSessions = 64;
  const int kFrames = 3;
  SessionManagerOptions plain;
  plain.threads = 1;
  const std::string reference = serialize(
      SessionManager(tiny_specs(kSessions, kFrames)).run(plain));

  SessionManagerOptions capped;
  capped.threads = 8;
  capped.frames_per_slice = 1;
  AdmissionConfig admission;
  admission.max_live_per_shard = 2;
  capped.admission = admission;
  AdmissionReport report;
  const std::vector<PipelineResult> results =
      SessionManager(tiny_specs(kSessions, kFrames)).run(capped, &report);
  // Beyond the cap, sessions are QUEUED (still served, construction
  // deferred), never shed — nothing sheddable is in this fleet.
  EXPECT_EQ(report.shed, 0u);
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.queued, 0u);
  EXPECT_EQ(report.accepted + report.queued,
            static_cast<std::size_t>(kSessions));
  EXPECT_EQ(serialize(results), reference);
}

// Shedding must be deterministic: same specs, same config, same fleet
// state => the same sessions are shed every run, only sheddable sessions
// are ever shed, and shed sessions leave empty results.
TEST(ShardedServing, ShedDecisionsAreDeterministic) {
  obs::HealthRegistry::global().clear();
  const int kSessions = 48;
  const int kFrames = 2;
  auto make = [&] {
    std::vector<SessionSpec> specs = tiny_specs(kSessions, kFrames);
    for (int i = 0; i < kSessions; ++i) specs[i].sheddable = (i % 2 == 0);
    return specs;
  };
  SessionManagerOptions options;
  options.threads = 4;
  options.frames_per_slice = 1;
  AdmissionConfig admission;
  admission.shed_queue_depth = 4;
  options.admission = admission;

  AdmissionReport first;
  const std::vector<PipelineResult> results_a =
      SessionManager(make()).run(options, &first);
  AdmissionReport second;
  const std::vector<PipelineResult> results_b =
      SessionManager(make()).run(options, &second);

  ASSERT_EQ(first.decisions.size(), static_cast<std::size_t>(kSessions));
  EXPECT_EQ(first.decisions, second.decisions);
  EXPECT_GT(first.shed, 0u) << "depth 4 x 4 shards must shed some of 48";
  EXPECT_GT(first.accepted, 0u);
  EXPECT_EQ(first.accepted + first.queued + first.shed,
            static_cast<std::size_t>(kSessions));
  for (int i = 0; i < kSessions; ++i) {
    const bool shed = first.decisions[i] == AdmitDecision::kShed;
    EXPECT_EQ(results_a[i].frames.empty(), shed) << "i=" << i;
    if (shed) {
      EXPECT_EQ(i % 2, 0) << "only sheddable sessions may be shed, i=" << i;
    }
  }
  EXPECT_EQ(serialize(results_a), serialize(results_b));
}

}  // namespace
}  // namespace pbpair::sim
