// Parallel sweep determinism: a fig5-style sweep must produce
// byte-identical reports at thread counts 1, 2, and 8 — per-task loss
// models are seeded deterministically and every run is self-contained, so
// scheduling order cannot leak into results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "net/loss_model.h"
#include "sim/parallel_sweep.h"
#include "video/sequence.h"

namespace pbpair {
namespace {

// Serializes every field that reaches a report: per-frame traces, totals,
// op counters, and the derived joules. Doubles are rendered with %.17g so
// any bit difference shows up.
std::string serialize(const std::vector<sim::PipelineResult>& results) {
  std::string out;
  char buf[256];
  for (const sim::PipelineResult& r : results) {
    std::snprintf(buf, sizeof(buf), "total %llu %.17g %llu %llu %llu\n",
                  static_cast<unsigned long long>(r.total_bytes),
                  r.avg_psnr_db,
                  static_cast<unsigned long long>(r.total_bad_pixels),
                  static_cast<unsigned long long>(r.total_intra_mbs),
                  static_cast<unsigned long long>(r.concealed_mbs));
    out += buf;
    std::snprintf(buf, sizeof(buf), "ops %llu %llu %llu %llu %llu\n",
                  static_cast<unsigned long long>(r.encoder_ops.sad_pixel_ops),
                  static_cast<unsigned long long>(r.encoder_ops.sad_halfpel_ops),
                  static_cast<unsigned long long>(r.encoder_ops.dct_blocks),
                  static_cast<unsigned long long>(r.encoder_ops.quant_coeffs),
                  static_cast<unsigned long long>(r.encoder_ops.bits_written));
    out += buf;
    std::snprintf(buf, sizeof(buf), "energy %.17g %.17g\n",
                  r.encode_energy.total_j(), r.tx_energy_j);
    out += buf;
    for (const sim::FrameTrace& f : r.frames) {
      std::snprintf(buf, sizeof(buf), "f %d %zu %d %d %.17g %llu\n", f.index,
                    f.bytes, f.intra_mbs, f.lost ? 1 : 0, f.psnr_db,
                    static_cast<unsigned long long>(f.bad_pixels));
      out += buf;
    }
  }
  return out;
}

std::vector<sim::SweepTask> fig5_style_tasks(
    const std::vector<video::YuvFrame>& clip) {
  const int frames = static_cast<int>(clip.size());
  sim::PipelineConfig config;
  config.frames = frames;
  config.encoder.qp = 10;
  config.encoder.search.range = 7;

  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.9;
  pbpair.plr = 0.10;
  std::vector<sim::SchemeSpec> schemes = {
      sim::SchemeSpec::no_resilience(), sim::SchemeSpec::pbpair(pbpair),
      sim::SchemeSpec::pgop(3), sim::SchemeSpec::gop(3),
      sim::SchemeSpec::air(24)};

  std::vector<sim::SweepTask> tasks;
  for (const sim::SchemeSpec& scheme : schemes) {
    sim::SweepTask task;
    task.scheme = scheme;
    task.config = config;
    task.source = [&clip](int i) { return clip[static_cast<std::size_t>(i)]; };
    task.make_loss = [] {
      return std::make_unique<net::UniformFrameLoss>(0.10, /*seed=*/2005);
    };
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(ParallelSweep, Fig5StyleSweepByteIdenticalAt1_2_8Threads) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  std::vector<video::YuvFrame> clip;
  for (int i = 0; i < 12; ++i) clip.push_back(seq.frame_at(i));
  std::vector<sim::SweepTask> tasks = fig5_style_tasks(clip);

  std::string baseline;
  for (int threads : {1, 2, 8}) {
    sim::SweepOptions options;
    options.threads = threads;
    std::string report = serialize(sim::run_parallel_sweep(tasks, options));
    if (threads == 1) {
      baseline = report;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(baseline, report) << "thread count " << threads;
    }
  }
}

TEST(ParallelSweep, LosslessTasksAllowNullFactory) {
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kAkiyoLike);
  std::vector<video::YuvFrame> clip;
  for (int i = 0; i < 6; ++i) clip.push_back(seq.frame_at(i));

  sim::SweepTask task;
  task.scheme = sim::SchemeSpec::gop(3);
  task.config.frames = static_cast<int>(clip.size());
  task.source = [&clip](int i) { return clip[static_cast<std::size_t>(i)]; };
  std::vector<sim::PipelineResult> results =
      sim::run_parallel_sweep({task, task}, sim::SweepOptions{2});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].total_bytes, results[1].total_bytes);
  EXPECT_EQ(results[0].channel.packets_dropped, 0u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  common::parallel_for(hits.size(), 8, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SubmitAndWaitAllDrains) {
  common::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_all();
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace pbpair
