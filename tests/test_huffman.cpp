// Tests for canonical Huffman construction and the codec VLC tables.
#include <gtest/gtest.h>

#include "codec/huffman.h"
#include "codec/vlc_tables.h"
#include "common/rng.h"

namespace pbpair::codec {
namespace {

TEST(Huffman, TwoSymbolCodeIsOneBit) {
  HuffmanCode code({10, 20});
  EXPECT_EQ(code.length(0), 1);
  EXPECT_EQ(code.length(1), 1);
  EXPECT_TRUE(code.is_prefix_free());
}

TEST(Huffman, SkewedFrequenciesGiveShorterCodes) {
  HuffmanCode code({1000, 100, 10, 1});
  EXPECT_LE(code.length(0), code.length(1));
  EXPECT_LE(code.length(1), code.length(2));
  EXPECT_LE(code.length(2), code.length(3));
}

TEST(Huffman, UniformFrequenciesGiveBalancedCode) {
  HuffmanCode code(std::vector<std::uint64_t>(8, 5));
  for (int s = 0; s < 8; ++s) EXPECT_EQ(code.length(s), 3);
}

TEST(Huffman, AllSymbolsRoundTrip) {
  HuffmanCode code({50, 30, 10, 5, 3, 1, 1});
  for (int s = 0; s < code.symbol_count(); ++s) {
    BitWriter writer;
    code.encode(writer, s);
    auto bytes = writer.finish();
    BitReader reader(bytes);
    int got = -1;
    ASSERT_TRUE(code.decode(reader, &got));
    EXPECT_EQ(got, s);
  }
}

TEST(Huffman, StreamOfSymbolsRoundTrips) {
  HuffmanCode code({100, 50, 25, 12, 6, 3, 2, 1});
  common::Pcg32 rng(9);
  std::vector<int> symbols;
  BitWriter writer;
  for (int i = 0; i < 1000; ++i) {
    int s = static_cast<int>(rng.next_below(8));
    symbols.push_back(s);
    code.encode(writer, s);
  }
  auto bytes = writer.finish();
  BitReader reader(bytes);
  for (int expected : symbols) {
    int got = -1;
    ASSERT_TRUE(code.decode(reader, &got));
    ASSERT_EQ(got, expected);
  }
}

TEST(Huffman, PrefixFreeForRandomFrequencies) {
  common::Pcg32 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.next_below(60));
    std::vector<std::uint64_t> freqs(n);
    for (auto& f : freqs) f = 1 + rng.next_below(100000);
    HuffmanCode code(freqs);
    EXPECT_TRUE(code.is_prefix_free()) << "trial " << trial;
  }
}

TEST(Huffman, KraftEqualityHolds) {
  // Huffman lengths always satisfy sum 2^-len == 1 (complete code).
  HuffmanCode code({7, 5, 2, 2, 1, 1});
  double kraft = 0.0;
  for (int s = 0; s < code.symbol_count(); ++s) {
    kraft += 1.0 / static_cast<double>(1u << code.length(s));
  }
  EXPECT_DOUBLE_EQ(kraft, 1.0);
}

TEST(Huffman, ConstructionIsDeterministic) {
  std::vector<std::uint64_t> freqs = {5, 5, 5, 5, 3, 3, 2};
  HuffmanCode a(freqs);
  HuffmanCode b(freqs);
  for (int s = 0; s < a.symbol_count(); ++s) {
    EXPECT_EQ(a.length(s), b.length(s));
  }
}

TEST(Huffman, TruncatedInputFails) {
  HuffmanCode code({1, 1, 1, 1});  // 2-bit codes
  std::vector<std::uint8_t> empty;
  BitReader reader(empty);
  int s;
  EXPECT_FALSE(code.decode(reader, &s));
}

// --- CoeffVlc (TCOEF analogue) ---

TEST(CoeffVlc, TableIsPrefixFree) {
  EXPECT_TRUE(coeff_vlc().table().is_prefix_free());
}

struct CoeffCase {
  bool last;
  int run;
  int level;
};

class CoeffVlcRoundTrip : public ::testing::TestWithParam<CoeffCase> {};

TEST_P(CoeffVlcRoundTrip, EncodesAndDecodes) {
  const CoeffCase& c = GetParam();
  BitWriter writer;
  coeff_vlc().encode(writer, CoeffEvent{c.last, c.run, c.level});
  auto bytes = writer.finish();
  BitReader reader(bytes);
  CoeffEvent got{};
  ASSERT_TRUE(coeff_vlc().decode(reader, &got));
  EXPECT_EQ(got.last, c.last);
  EXPECT_EQ(got.run, c.run);
  EXPECT_EQ(got.level, c.level);
}

INSTANTIATE_TEST_SUITE_P(
    TableAndEscape, CoeffVlcRoundTrip,
    ::testing::Values(CoeffCase{false, 0, 1}, CoeffCase{false, 0, -1},
                      CoeffCase{true, 0, 1}, CoeffCase{false, 5, 2},
                      CoeffCase{true, 10, 3}, CoeffCase{false, 10, -3},
                      // escape cases: run or |level| beyond the table
                      CoeffCase{false, 11, 1}, CoeffCase{true, 30, 1},
                      CoeffCase{false, 0, 4}, CoeffCase{true, 0, -90},
                      CoeffCase{false, 62, 127}, CoeffCase{true, 62, -127}));

TEST(CoeffVlc, AllTableEventsRoundTrip) {
  for (int last = 0; last <= 1; ++last) {
    for (int run = 0; run <= 10; ++run) {
      for (int level = 1; level <= 3; ++level) {
        for (int sign = -1; sign <= 1; sign += 2) {
          CoeffEvent event{last != 0, run, sign * level};
          BitWriter writer;
          coeff_vlc().encode(writer, event);
          auto bytes = writer.finish();
          BitReader reader(bytes);
          CoeffEvent got{};
          ASSERT_TRUE(coeff_vlc().decode(reader, &got));
          ASSERT_EQ(got.last, event.last);
          ASSERT_EQ(got.run, event.run);
          ASSERT_EQ(got.level, event.level);
        }
      }
    }
  }
}

TEST(CoeffVlc, CommonEventsCostFewerBits) {
  auto bits_for = [](CoeffEvent e) {
    BitWriter writer;
    coeff_vlc().encode(writer, e);
    return writer.bit_count();
  };
  // (run 0, level 1) is the most common event in low-bitrate video; it must
  // be cheaper than rarer events and much cheaper than escapes.
  EXPECT_LT(bits_for({false, 0, 1}), bits_for({false, 5, 2}));
  EXPECT_LT(bits_for({false, 0, 1}), bits_for({false, 20, 10}));
}

// --- CbpVlc ---

TEST(CbpVlc, TableIsPrefixFree) {
  EXPECT_TRUE(cbp_vlc().table().is_prefix_free());
}

TEST(CbpVlc, AllPatternsRoundTrip) {
  for (int cbp = 0; cbp < 64; ++cbp) {
    BitWriter writer;
    cbp_vlc().encode(writer, cbp);
    auto bytes = writer.finish();
    BitReader reader(bytes);
    int got = -1;
    ASSERT_TRUE(cbp_vlc().decode(reader, &got));
    ASSERT_EQ(got, cbp);
  }
}

TEST(CbpVlc, SparsePatternsAreCheaper) {
  auto bits_for = [](int cbp) {
    BitWriter writer;
    cbp_vlc().encode(writer, cbp);
    return writer.bit_count();
  };
  EXPECT_LE(bits_for(0x00), bits_for(0x0F));  // nothing vs all luma
  EXPECT_LE(bits_for(0x01), bits_for(0x3F));  // one block vs everything
}

}  // namespace
}  // namespace pbpair::codec
