// Regression locks on the paper's headline shapes.
//
// The benches print the full tables; these tests pin the *orderings* the
// reproduction stands on, at reduced frame counts so they stay fast. If a
// codec or policy change breaks one of these, the repository no longer
// reproduces the paper — that should fail CI, not be discovered by eye.
#include <gtest/gtest.h>

#include "net/loss_model.h"
#include "sim/pipeline.h"

namespace pbpair {
namespace {

struct Fig5Setup {
  sim::PipelineResult no, pbpair, pgop, gop, air;
};

/// Runs the Figure 5 experiment (size-calibrated, PLR 10%) on one clip at
/// `frames` frames with the paper's full-search encoder.
Fig5Setup run_fig5(video::SequenceKind kind, int frames) {
  sim::PipelineConfig config;
  config.frames = frames;
  config.encoder.qp = 10;
  config.encoder.search.strategy = codec::SearchStrategy::kFullSearch;
  config.encoder.search.range = 7;
  video::SyntheticSequence seq = video::make_paper_sequence(kind);

  sim::PipelineResult pgop_clean =
      sim::run_pipeline(seq, sim::SchemeSpec::pgop(3), nullptr, config);
  core::PbpairConfig pc;
  pc.plr = 0.10;
  pc.intra_th = sim::calibrate_intra_th(seq, pc, pgop_clean.total_bytes,
                                        config);

  auto run = [&](const sim::SchemeSpec& scheme) {
    net::UniformFrameLoss loss(0.10, 2005);
    return sim::run_pipeline(seq, scheme, &loss, config);
  };
  Fig5Setup out;
  out.no = run(sim::SchemeSpec::no_resilience());
  out.pbpair = run(sim::SchemeSpec::pbpair(pc));
  out.pgop = run(sim::SchemeSpec::pgop(3));
  out.gop = run(sim::SchemeSpec::gop(3));
  out.air = run(sim::SchemeSpec::air(24));
  return out;
}

class PaperShapes : public ::testing::Test {
 protected:
  // One shared run per suite: these assertions all read the same data.
  static const Fig5Setup& foreman() {
    static const Fig5Setup setup =
        run_fig5(video::SequenceKind::kForemanLike, 60);
    return setup;
  }
};

TEST_F(PaperShapes, Fig5dEnergyOrdering) {
  // The paper's central result: PBPAIR < PGOP, GOP < AIR ~= NO.
  const Fig5Setup& s = foreman();
  double pbpair = s.pbpair.encode_energy.total_j();
  EXPECT_LT(pbpair, s.pgop.encode_energy.total_j());
  EXPECT_LT(pbpair, s.gop.encode_energy.total_j());
  EXPECT_LT(pbpair, 0.9 * s.air.encode_energy.total_j());
  EXPECT_LT(s.pgop.encode_energy.total_j(),
            0.95 * s.air.encode_energy.total_j());
}

TEST_F(PaperShapes, AirEnergyEqualsNoEnergy) {
  // "AIR consumes a similar amount of the encoding energy [as] without any
  // error resilient scheme since AIR decides the encoding mode after
  // motion estimation" (§4.2).
  const Fig5Setup& s = foreman();
  EXPECT_NEAR(s.air.encode_energy.total_j() / s.no.encode_energy.total_j(),
              1.0, 0.08);
  EXPECT_EQ(s.air.encoder_ops.me_invocations, s.no.encoder_ops.me_invocations);
}

TEST_F(PaperShapes, Fig5cSizesAreCalibrated) {
  const Fig5Setup& s = foreman();
  double ratio = static_cast<double>(s.pbpair.total_bytes) /
                 static_cast<double>(s.pgop.total_bytes);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST_F(PaperShapes, Fig5abRefreshSchemesBeatNoUnderLoss) {
  const Fig5Setup& s = foreman();
  for (const sim::PipelineResult* r : {&s.pbpair, &s.pgop, &s.gop}) {
    EXPECT_GT(r->avg_psnr_db, s.no.avg_psnr_db + 2.0);
    EXPECT_LT(r->total_bad_pixels * 3, s.no.total_bad_pixels);
  }
  // PBPAIR's quality must tie the best baseline (within half a dB).
  double best_baseline =
      std::max({s.pgop.avg_psnr_db, s.gop.avg_psnr_db, s.air.avg_psnr_db});
  EXPECT_GT(s.pbpair.avg_psnr_db, best_baseline - 0.5);
}

TEST(PaperShapesFig6, GopCollapsesForAWholeGopAfterIFrameLoss) {
  // e7 of Fig 6: losing a GOP I-frame leaves the decoder without a valid
  // reference until the next one.
  sim::PipelineConfig config;
  config.frames = 30;
  config.encoder.qp = 10;
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  net::ScriptedFrameLoss loss({9});  // GOP-8's second I-frame
  sim::PipelineResult gop = sim::run_pipeline(seq, sim::SchemeSpec::gop(8),
                                              &loss, config);
  double before = gop.frames[8].psnr_db;
  // Every frame until the next I-frame (18) stays degraded...
  for (int f = 9; f < 18; ++f) {
    EXPECT_LT(gop.frames[f].psnr_db, before - 2.0) << "frame " << f;
  }
  // ...and the I-frame at 18 snaps back.
  EXPECT_GT(gop.frames[18].psnr_db, before - 2.0);
}

TEST(PaperShapesFig6, GopBitstreamIsBurstyMbSchemesAreNot) {
  sim::PipelineConfig config;
  config.frames = 30;
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  auto burstiness = [&](const sim::SchemeSpec& scheme) {
    sim::PipelineResult r = sim::run_pipeline(seq, scheme, nullptr, config);
    std::uint64_t sum = 0;
    std::size_t max_bytes = 0;
    for (const sim::FrameTrace& f : r.frames) {
      if (f.index == 0) continue;
      sum += f.bytes;
      max_bytes = std::max(max_bytes, f.bytes);
    }
    return static_cast<double>(max_bytes) * (config.frames - 1) / sum;
  };
  core::PbpairConfig pc;
  pc.intra_th = 0.95;
  pc.plr = 0.1;
  double gop = burstiness(sim::SchemeSpec::gop(8));
  double pgop = burstiness(sim::SchemeSpec::pgop(1));
  double pbpair = burstiness(sim::SchemeSpec::pbpair(pc));
  EXPECT_GT(gop, 1.7 * pgop);
  EXPECT_GT(gop, 1.7 * pbpair);
}

TEST(PaperShapesSec43, TradeoffMonotonicities) {
  // §4.3 in three assertions: intra count rises with Intra_Th; size rises
  // with it; encode energy falls with it.
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  sim::PipelineConfig config;
  config.frames = 25;
  config.encoder.search.strategy = codec::SearchStrategy::kFullSearch;
  config.encoder.search.range = 7;
  std::uint64_t prev_intra = 0, prev_size = 0;
  double prev_energy = 1e9;
  for (double th : {0.5, 0.95, 1.0}) {
    core::PbpairConfig pc;
    pc.intra_th = th;
    pc.plr = 0.10;
    sim::PipelineResult r = sim::run_pipeline(
        seq, sim::SchemeSpec::pbpair(pc), nullptr, config);
    EXPECT_GE(r.total_intra_mbs, prev_intra) << th;
    EXPECT_GE(r.total_bytes, prev_size) << th;
    EXPECT_LE(r.encode_energy.total_j(), prev_energy) << th;
    prev_intra = r.total_intra_mbs;
    prev_size = r.total_bytes;
    prev_energy = r.encode_energy.total_j();
  }
}

}  // namespace
}  // namespace pbpair
