// SessionManager: N concurrent sessions, deterministic at any worker count
// and any scheduling interleaving (DESIGN.md §9).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "net/loss_model.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "sim/session_manager.h"

namespace pbpair::sim {
namespace {

// Same %.17g idiom as test_parallel_sweep.cpp: any bit difference in any
// reported field shows up as a string difference.
std::string serialize(const std::vector<PipelineResult>& results) {
  std::string out;
  char buf[256];
  for (const PipelineResult& r : results) {
    std::snprintf(buf, sizeof(buf), "total %llu %.17g %llu %llu %llu\n",
                  static_cast<unsigned long long>(r.total_bytes),
                  r.avg_psnr_db,
                  static_cast<unsigned long long>(r.total_bad_pixels),
                  static_cast<unsigned long long>(r.total_intra_mbs),
                  static_cast<unsigned long long>(r.concealed_mbs));
    out += buf;
    std::snprintf(buf, sizeof(buf), "energy %.17g %.17g\n",
                  r.encode_energy.total_j(), r.tx_energy_j);
    out += buf;
    for (const FrameTrace& f : r.frames) {
      std::snprintf(buf, sizeof(buf), "f %d %zu %d %d %.17g %llu\n", f.index,
                    f.bytes, f.intra_mbs, f.lost ? 1 : 0, f.psnr_db,
                    static_cast<unsigned long long>(f.bad_pixels));
      out += buf;
    }
  }
  return out;
}

// A mixed fleet: three clips x three schemes, per-session seeded loss.
std::vector<SessionSpec> mixed_specs(int sessions, int frames) {
  const video::SequenceKind kinds[3] = {video::SequenceKind::kForemanLike,
                                        video::SequenceKind::kAkiyoLike,
                                        video::SequenceKind::kGardenLike};
  std::vector<SessionSpec> specs;
  for (int i = 0; i < sessions; ++i) {
    SessionSpec spec;
    if (i % 3 == 0) {
      core::PbpairConfig pbpair;
      pbpair.intra_th = 0.9;
      pbpair.plr = 0.10;
      spec.scheme = SchemeSpec::pbpair(pbpair);
    } else if (i % 3 == 1) {
      spec.scheme = SchemeSpec::gop(3);
    } else {
      spec.scheme = SchemeSpec::air(24);
    }
    spec.config.frames = frames;
    video::SyntheticSequence seq = video::make_paper_sequence(kinds[i % 3]);
    spec.source = [seq](int index) { return seq.frame_at(index); };
    const std::uint64_t seed = 2005 + static_cast<std::uint64_t>(i);
    spec.make_loss = [seed] {
      return std::make_unique<net::UniformFrameLoss>(0.15, seed);
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(SessionManager, ByteIdenticalAcrossThreadsAndSlicing) {
  const int kSessions = 5;
  const int kFrames = 8;

  SessionManagerOptions reference_options;
  reference_options.threads = 1;
  std::vector<PipelineResult> reference =
      SessionManager(mixed_specs(kSessions, kFrames)).run(reference_options);
  const std::string reference_report = serialize(reference);
  const std::string reference_aggregate =
      SessionManager::aggregate(reference).to_json();

  for (int threads : {1, 2, 8}) {
    for (int slice : {0, 1, 3, 7}) {
      SessionManagerOptions options;
      options.threads = threads;
      options.frames_per_slice = slice;
      std::vector<PipelineResult> results =
          SessionManager(mixed_specs(kSessions, kFrames)).run(options);
      EXPECT_EQ(serialize(results), reference_report)
          << "threads=" << threads << " slice=" << slice;
      EXPECT_EQ(SessionManager::aggregate(results).to_json(),
                reference_aggregate)
          << "threads=" << threads << " slice=" << slice;
    }
  }
}

TEST(SessionManager, ResultsMatchStandaloneRunPipeline) {
  const int kSessions = 4;
  const int kFrames = 10;
  SessionManagerOptions options;
  options.threads = 4;
  options.frames_per_slice = 2;
  std::vector<PipelineResult> managed =
      SessionManager(mixed_specs(kSessions, kFrames)).run(options);
  ASSERT_EQ(managed.size(), static_cast<std::size_t>(kSessions));

  // Hosting inside the manager must not change a single reported bit
  // relative to running each spec through the plain shim.
  std::vector<SessionSpec> specs = mixed_specs(kSessions, kFrames);
  for (int i = 0; i < kSessions; ++i) {
    std::unique_ptr<net::LossModel> loss = specs[i].make_loss();
    PipelineResult standalone = run_pipeline(specs[i].source, specs[i].scheme,
                                             loss.get(), specs[i].config);
    EXPECT_EQ(serialize({standalone}), serialize({managed[i]})) << "i=" << i;
  }
}

TEST(SessionManager, AggregateIsComputedInSessionOrder) {
  std::vector<PipelineResult> results =
      SessionManager(mixed_specs(3, 6)).run();
  SessionAggregate agg = SessionManager::aggregate(results);
  EXPECT_EQ(agg.sessions, 3u);
  EXPECT_EQ(agg.total_frames, 18u);

  std::uint64_t bytes = 0;
  double psnr = 0.0;
  for (const PipelineResult& r : results) {
    bytes += r.total_bytes;
    psnr += r.avg_psnr_db;
  }
  EXPECT_EQ(agg.total_bytes, bytes);
  EXPECT_DOUBLE_EQ(agg.mean_psnr_db, psnr / 3.0);

  const std::string json = agg.to_json();
  EXPECT_NE(json.find("\"sessions\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_frames\": 18"), std::string::npos);
}

TEST(SessionManager, HealthTrackingIsByteIdenticalOnVsOff) {
  const int kSessions = 4;
  const int kFrames = 8;

  // Reference: health off, serial.
  SessionManagerOptions reference_options;
  reference_options.threads = 1;
  const std::string reference = serialize(
      SessionManager(mixed_specs(kSessions, kFrames)).run(reference_options));

  // Health tracking on (the `pbpair serve` configuration), with and
  // without the metrics layer, across thread counts and slicing: enabling
  // live telemetry must not change one reported bit.
  for (const bool metrics_on : {false, true}) {
    obs::Registry::global().reset_all();
    obs::set_enabled(metrics_on);
    for (int threads : {1, 2, 8}) {
      for (int slice : {0, 3}) {
        obs::HealthRegistry::global().clear();
        std::vector<SessionSpec> specs = mixed_specs(kSessions, kFrames);
        for (SessionSpec& spec : specs) {
          spec.config.health = obs::HealthConfig{};
        }
        SessionManagerOptions options;
        options.threads = threads;
        options.frames_per_slice = slice;
        EXPECT_EQ(serialize(SessionManager(std::move(specs)).run(options)),
                  reference)
            << "metrics=" << metrics_on << " threads=" << threads
            << " slice=" << slice;
        // The trackers really ran: every session has its frame count.
        const auto sessions = obs::HealthRegistry::global().sessions();
        ASSERT_EQ(sessions.size(), static_cast<std::size_t>(kSessions));
        for (const auto& session : sessions) {
          EXPECT_EQ(session->snapshot().frames,
                    static_cast<std::uint64_t>(kFrames));
        }
      }
    }
  }
  obs::set_enabled(false);
  obs::Registry::global().reset_all();
  obs::HealthRegistry::global().clear();
}

TEST(SessionManager, PerSessionObsCountersUseLabels) {
  obs::Registry::global().reset_all();
  obs::set_enabled(true);

  const int kFrames = 5;
  std::vector<SessionSpec> specs = mixed_specs(2, kFrames);
  specs[1].label = "gold";  // explicit label; spec 0 falls back to "s000"
  SessionManagerOptions options;
  options.threads = 2;
  SessionManager(std::move(specs)).run(options);

  obs::set_enabled(false);
  EXPECT_EQ(obs::counter(obs::session_metric("s000", "frames")).value(),
            static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(obs::counter(obs::session_metric("gold", "frames")).value(),
            static_cast<std::uint64_t>(kFrames));
  EXPECT_GT(obs::counter(obs::session_metric("gold", "bytes")).value(), 0u);
  EXPECT_GT(
      obs::counter(obs::session_metric("gold", "packets_sent")).value(), 0u);
  EXPECT_GT(obs::counter(obs::session_metric("gold", "mbs")).value(), 0u);
  EXPECT_GT(obs::counter(obs::session_metric("gold", "energy_uj")).value(),
            0u);
  obs::Registry::global().reset_all();
}

// Regression: to_json used a fixed 512-byte snprintf buffer, so counters
// big enough to overflow it (10k-session fleets, or any pathological
// double) silently truncated the string into invalid JSON. The rewritten
// formatter has no length ceiling — huge values must round-trip through
// the JSON parser.
TEST(SessionManager, AggregateToJsonRoundTripsHugeValues) {
  SessionAggregate agg;
  agg.sessions = 10000;
  agg.total_frames = 3000000;
  agg.total_bytes = ~0ull;
  agg.total_bad_pixels = ~0ull;
  agg.total_intra_mbs = ~0ull;
  agg.concealed_mbs = ~0ull;
  agg.packets_sent = ~0ull;
  agg.packets_dropped = ~0ull;
  agg.mean_psnr_db = 1e300;  // %.6f renders this as 300+ digits
  agg.encode_energy_j = 1e250;
  agg.tx_energy_j = 12345.678901;

  const std::string json = agg.to_json();
  EXPECT_GT(json.size(), 512u) << "must exceed the old truncation ceiling";
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '}');

  common::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(common::JsonValue::parse(json, &parsed, &error)) << error;
  EXPECT_DOUBLE_EQ(parsed.number_at("sessions", 0.0), 10000.0);
  EXPECT_DOUBLE_EQ(parsed.number_at("total_frames", 0.0), 3000000.0);
  EXPECT_DOUBLE_EQ(parsed.number_at("total_bytes", 0.0),
                   static_cast<double>(~0ull));
  EXPECT_DOUBLE_EQ(parsed.number_at("mean_psnr_db", 0.0), 1e300);
  EXPECT_DOUBLE_EQ(parsed.number_at("encode_energy_j", 0.0), 1e250);
  EXPECT_DOUBLE_EQ(parsed.number_at("tx_energy_j", 0.0), 12345.678901);
}

// Regression: default labels were hard-wired to "s%03zu", so at >= 1000
// sessions "s1000" sorted before "s999" and label-keyed listings (metrics
// dumps, monitor rows) interleaved fleets out of order. The width now
// grows with the fleet.
TEST(SessionManager, DefaultLabelsSortLexicographicallyUpTo1500) {
  const std::size_t kCount = 1500;
  std::vector<std::string> labels;
  labels.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    labels.push_back(SessionManager::default_label(i, kCount));
  }
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()))
      << "lexicographic label order must equal numeric session order";
  EXPECT_EQ(std::set<std::string>(labels.begin(), labels.end()).size(),
            kCount)
      << "labels must be unique";
  EXPECT_EQ(labels.front(), "s0000");
  EXPECT_EQ(labels.back(), "s1499");

  // Historical floor: fleets up to 1000 keep the three-digit "s000" form
  // that dashboards, monitor filters, and committed goldens grep for.
  EXPECT_EQ(SessionManager::default_label(0, 1), "s000");
  EXPECT_EQ(SessionManager::default_label(0, 1000), "s000");
  EXPECT_EQ(SessionManager::default_label(999, 1000), "s999");
  EXPECT_EQ(SessionManager::default_label(0, 1001), "s0000");
  EXPECT_EQ(SessionManager::default_label(9999, 10000), "s9999");
}

}  // namespace
}  // namespace pbpair::sim
