// Packet-level FEC (net/fec.h, DESIGN.md §12): field arithmetic, the MDS
// recovery guarantee (exhaustively for small windows, randomized against
// an independent reference solver for large ones), wire robustness, the
// pipeline stages, and the joint Intra_Th/FEC-rate controller.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/adaptation.h"
#include "net/fec.h"
#include "net/gf256.h"
#include "net/loss_model.h"
#include "net/packetizer.h"
#include "sim/session.h"
#include "sim/session_manager.h"

namespace pbpair::net {
namespace {

using common::Pcg32;

// --- reference GF(256) arithmetic ---------------------------------------
// Independent of the table implementation under test: carry-less
// "Russian peasant" multiply reduced by the same primitive polynomial.

std::uint8_t ref_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t x = a;
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= static_cast<std::uint8_t>(x);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
    b >>= 1;
  }
  return result;
}

TEST(Gf256, MulMatchesReferenceExhaustively) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf256_mul(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)),
                ref_mul(static_cast<std::uint8_t>(a),
                        static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256, EveryNonzeroElementHasAnInverse) {
  for (int a = 1; a < 256; ++a) {
    const std::uint8_t inv = gf256_inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256_mul(static_cast<std::uint8_t>(a), inv), 1) << a;
    EXPECT_EQ(gf256_div(1, static_cast<std::uint8_t>(a)), inv) << a;
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: 2^i for i in [0,255) hits every
  // nonzero element exactly once, and 2^255 wraps to 1.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const std::uint8_t v = gf256_exp(i);
    EXPECT_FALSE(seen[v]) << "2^" << i << " repeated";
    seen[v] = true;
  }
  EXPECT_FALSE(seen[0]);
  EXPECT_EQ(gf256_exp(255), gf256_exp(0));
}

TEST(Gf256, AddmulMatchesPerByteMul) {
  Pcg32 rng(2026, 1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint8_t c = static_cast<std::uint8_t>(rng.next_u32());
    std::vector<std::uint8_t> dst(97), src(97);
    for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next_u32());
    for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_u32());
    std::vector<std::uint8_t> expected = dst;
    for (std::size_t i = 0; i < src.size(); ++i) {
      expected[i] ^= ref_mul(src[i], c);
    }
    gf256_addmul(dst.data(), src.data(), c, dst.size());
    EXPECT_EQ(dst, expected) << "c=" << static_cast<int>(c);

    std::vector<std::uint8_t> scaled = src;
    gf256_scale(scaled.data(), c, scaled.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_EQ(scaled[i], ref_mul(src[i], c));
    }
  }
}

// --- window construction helpers ----------------------------------------

std::vector<Packet> make_media_packets(int count, Pcg32& rng,
                                       std::uint16_t base_sequence = 100,
                                       bool vary_sizes = true) {
  std::vector<Packet> packets;
  for (int i = 0; i < count; ++i) {
    Packet p;
    p.header.sequence = static_cast<std::uint16_t>(base_sequence + i);
    p.header.timestamp = 7;
    p.header.ssrc = 0x5005;
    p.header.frame_type = 1;
    p.header.qp = 10;
    p.header.first_gob = static_cast<std::uint8_t>(i);
    p.header.num_gobs = 1;
    p.header.marker = i == count - 1;
    const std::uint32_t len = vary_sizes ? 20 + rng.next_below(200) : 64;
    p.payload.resize(len);
    std::uint8_t* bytes = p.payload.mutable_data();
    for (std::uint32_t j = 0; j < len; ++j) {
      bytes[j] = static_cast<std::uint8_t>(rng.next_u32());
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

std::string packet_key(const Packet& p) {
  std::string key(reinterpret_cast<const char*>(serialize_packet(p).data()),
                  p.wire_size());
  return key;
}

// --- MDS recovery: exhaustive for k <= 4 --------------------------------

// Every loss pattern of at most m packets (data AND repair) over the
// k+m window must recover every lost data packet, for both schemes.
TEST(FecRecovery, ExhaustiveSmallWindowsEveryErasurePattern) {
  Pcg32 rng(2026, 2);
  for (int k = 1; k <= 4; ++k) {
    for (int m = 1; m <= 4; ++m) {
      const FecScheme schemes[] = {FecScheme::kXorParity,
                                   FecScheme::kReedSolomon};
      for (FecScheme scheme : schemes) {
        if (scheme == FecScheme::kXorParity && m != 1) continue;
        FecConfig config;
        config.scheme = scheme;
        config.k = k;
        config.m = m;
        FecEncoder encoder(config);
        std::vector<Packet> window = make_media_packets(k, rng);
        std::vector<std::string> original;
        for (const Packet& p : window) original.push_back(packet_key(p));
        ASSERT_EQ(encoder.protect(&window), m);
        const int n = k + m;

        // Every subset of [0, n) with <= m elements, via bitmask.
        for (unsigned mask = 0; mask < (1u << n); ++mask) {
          if (__builtin_popcount(mask) > m) continue;
          std::vector<Packet> delivered;
          for (int i = 0; i < n; ++i) {
            if ((mask & (1u << i)) == 0) delivered.push_back(window[i]);
          }
          FecDecoder decoder;
          std::vector<Packet> out = decoder.process(std::move(delivered));
          ASSERT_EQ(out.size(), static_cast<std::size_t>(k))
              << "k=" << k << " m=" << m << " mask=" << mask;
          for (int i = 0; i < k; ++i) {
            ASSERT_EQ(packet_key(out[i]), original[i])
                << "k=" << k << " m=" << m << " mask=" << mask << " i=" << i;
            const bool was_lost = (mask & (1u << i)) != 0;
            ASSERT_EQ(out[i].recovered, was_lost);
          }
          ASSERT_EQ(decoder.stats().windows_unrecoverable, 0u);
        }
      }
    }
  }
}

TEST(FecRecovery, LossBeyondMIsCountedUnrecoverable) {
  Pcg32 rng(2026, 3);
  FecConfig config;
  config.k = 4;
  config.m = 2;
  FecEncoder encoder(config);
  std::vector<Packet> window = make_media_packets(4, rng);
  encoder.protect(&window);
  // Lose 3 data packets with only 2 repairs: nothing recoverable.
  std::vector<Packet> delivered = {window[3], window[4], window[5]};
  FecDecoder decoder;
  std::vector<Packet> out = decoder.process(std::move(delivered));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(decoder.stats().windows_unrecoverable, 1u);
  EXPECT_EQ(decoder.stats().packets_recovered, 0u);
}

// --- MDS recovery: randomized large windows vs a reference solver -------

// The reference recovers the missing symbols with its OWN Gaussian
// elimination built on ref_mul (no shared field code), from the same
// surviving data + repair symbols the decoder under test sees.
std::vector<std::vector<std::uint8_t>> reference_recover(
    const std::vector<std::vector<std::uint8_t>>& data_symbols,
    const std::vector<int>& missing,
    const std::vector<std::pair<int, std::vector<std::uint8_t>>>& repairs,
    FecScheme scheme) {
  const std::size_t e = missing.size();
  const std::size_t len = data_symbols[0].size();
  auto coeff = [&](int r, int i) -> std::uint8_t {
    if (scheme == FecScheme::kXorParity) return 1;
    return fec_cauchy_coefficient(r, i);
  };
  // rhs_r = repair_r - sum over PRESENT data of c(r,i)*data_i.
  std::vector<std::vector<std::uint8_t>> rhs;
  std::vector<std::vector<std::uint8_t>> a;
  for (std::size_t r = 0; r < e; ++r) {
    std::vector<std::uint8_t> b = repairs[r].second;
    for (int i = 0; i < static_cast<int>(data_symbols.size()); ++i) {
      if (std::find(missing.begin(), missing.end(), i) != missing.end()) {
        continue;
      }
      for (std::size_t t = 0; t < len; ++t) {
        b[t] ^= ref_mul(data_symbols[static_cast<std::size_t>(i)][t],
                        coeff(repairs[r].first, i));
      }
    }
    rhs.push_back(std::move(b));
    std::vector<std::uint8_t> row(e);
    for (std::size_t t = 0; t < e; ++t) {
      row[t] = coeff(repairs[r].first, missing[t]);
    }
    a.push_back(std::move(row));
  }
  // Plain Gauss-Jordan with ref_mul only.
  auto ref_inv = [&](std::uint8_t x) -> std::uint8_t {
    for (int y = 1; y < 256; ++y) {
      if (ref_mul(x, static_cast<std::uint8_t>(y)) == 1) {
        return static_cast<std::uint8_t>(y);
      }
    }
    ADD_FAILURE() << "no inverse for " << static_cast<int>(x);
    return 0;
  };
  for (std::size_t col = 0; col < e; ++col) {
    std::size_t pivot = col;
    while (pivot < e && a[pivot][col] == 0) ++pivot;
    EXPECT_LT(pivot, e) << "reference matrix singular";
    std::swap(a[col], a[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    const std::uint8_t inv = ref_inv(a[col][col]);
    for (std::size_t t = 0; t < e; ++t) a[col][t] = ref_mul(a[col][t], inv);
    for (std::size_t t = 0; t < len; ++t) {
      rhs[col][t] = ref_mul(rhs[col][t], inv);
    }
    for (std::size_t r = 0; r < e; ++r) {
      if (r == col || a[r][col] == 0) continue;
      const std::uint8_t c = a[r][col];
      for (std::size_t t = 0; t < e; ++t) {
        a[r][t] = static_cast<std::uint8_t>(a[r][t] ^ ref_mul(c, a[col][t]));
      }
      for (std::size_t t = 0; t < len; ++t) {
        rhs[r][t] = static_cast<std::uint8_t>(rhs[r][t] ^
                                              ref_mul(c, rhs[col][t]));
      }
    }
  }
  return rhs;
}

TEST(FecRecovery, RandomizedKOfNMatchesReferenceSolver) {
  Pcg32 rng(2026, 4);
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 1 + static_cast<int>(rng.next_below(kMaxFecK));
    const int m = 1 + static_cast<int>(rng.next_below(kMaxFecM));
    FecConfig config;
    config.k = k;
    config.m = m;
    FecEncoder encoder(config);
    std::vector<Packet> window =
        make_media_packets(k, rng, static_cast<std::uint16_t>(
                                       rng.next_u32() & 0xFFFF));
    std::vector<std::string> original;
    for (const Packet& p : window) original.push_back(packet_key(p));
    ASSERT_EQ(encoder.protect(&window), m);

    // Symbols exactly as the encoder framed them, for the reference.
    std::size_t symbol_len = 0;
    for (int i = 0; i < k; ++i) {
      symbol_len = std::max(symbol_len, window[static_cast<std::size_t>(
                                            i)].wire_size() + 2);
    }
    std::vector<std::vector<std::uint8_t>> data_symbols;
    for (int i = 0; i < k; ++i) {
      const std::vector<std::uint8_t> wire = serialize_packet(window[i]);
      std::vector<std::uint8_t> sym;
      sym.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
      sym.push_back(static_cast<std::uint8_t>(wire.size() & 0xFF));
      sym.insert(sym.end(), wire.begin(), wire.end());
      sym.resize(symbol_len, 0);
      data_symbols.push_back(std::move(sym));
    }

    // Lose e <= m random data packets; keep e random repairs.
    const int e = 1 + static_cast<int>(rng.next_below(
                          static_cast<std::uint32_t>(std::min(k, m))));
    std::vector<int> order(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) order[static_cast<std::size_t>(i)] = i;
    for (int i = k - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.next_below(static_cast<std::uint32_t>(i + 1))]);
    }
    std::vector<int> missing(order.begin(), order.begin() + e);
    std::sort(missing.begin(), missing.end());
    std::vector<int> repair_order(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) repair_order[static_cast<std::size_t>(i)] = i;
    for (int i = m - 1; i > 0; --i) {
      std::swap(repair_order[static_cast<std::size_t>(i)],
                repair_order[rng.next_below(static_cast<std::uint32_t>(i + 1))]);
    }
    std::vector<int> surviving_repairs(repair_order.begin(),
                                       repair_order.begin() + e);
    std::sort(surviving_repairs.begin(), surviving_repairs.end());

    std::vector<Packet> delivered;
    for (int i = 0; i < k; ++i) {
      if (std::find(missing.begin(), missing.end(), i) == missing.end()) {
        delivered.push_back(window[static_cast<std::size_t>(i)]);
      }
    }
    std::vector<std::pair<int, std::vector<std::uint8_t>>> repair_symbols;
    for (int r : surviving_repairs) {
      const Packet& repair = window[static_cast<std::size_t>(k + r)];
      delivered.push_back(repair);
      repair_symbols.emplace_back(
          r, std::vector<std::uint8_t>(
                 repair.payload.begin() +
                     static_cast<std::ptrdiff_t>(kFecRepairHeaderSize),
                 repair.payload.end()));
    }

    FecDecoder decoder;
    std::vector<Packet> out = decoder.process(std::move(delivered));
    ASSERT_EQ(out.size(), static_cast<std::size_t>(k))
        << "trial " << trial << " k=" << k << " m=" << m << " e=" << e;
    for (int i = 0; i < k; ++i) {
      ASSERT_EQ(packet_key(out[static_cast<std::size_t>(i)]),
                original[static_cast<std::size_t>(i)])
          << "trial " << trial;
    }

    // And the decoder's output must equal what the reference solver says
    // the missing symbols were.
    const std::vector<std::vector<std::uint8_t>> ref = reference_recover(
        data_symbols, missing, repair_symbols, config.scheme);
    for (std::size_t t = 0; t < missing.size(); ++t) {
      ASSERT_EQ(ref[t], data_symbols[static_cast<std::size_t>(missing[t])])
          << "reference disagrees with ground truth, trial " << trial;
    }
  }
}

// --- encoder wire behaviour ---------------------------------------------

TEST(FecEncoder, WindowsNeverSpanFramesAndLastWindowIsShort) {
  Pcg32 rng(2026, 5);
  FecConfig config;
  config.k = 4;
  config.m = 2;
  FecEncoder encoder(config);
  std::vector<Packet> packets = make_media_packets(10, rng);
  ASSERT_EQ(encoder.protect(&packets), 6);  // ceil(10/4)=3 windows x m=2
  ASSERT_EQ(packets.size(), 16u);
  EXPECT_EQ(encoder.stats().windows, 3u);
  EXPECT_EQ(encoder.stats().media_packets, 10u);
  // Repair headers: two windows of k=4, one short window of k=2.
  std::vector<int> ks;
  for (std::size_t i = 10; i < packets.size(); ++i) {
    const Packet& repair = packets[i];
    EXPECT_TRUE(repair.is_fec_repair());
    EXPECT_EQ(repair.header.ssrc, packets[0].header.ssrc + 2);
    FecRepairHeader header;
    ASSERT_TRUE(parse_repair_header(repair, &header));
    ks.push_back(header.k);
  }
  EXPECT_EQ(ks, (std::vector<int>{4, 4, 4, 4, 2, 2}));
  // Media marker bit still on the last MEDIA packet, not a repair one.
  EXPECT_TRUE(packets[9].header.marker);
}

TEST(FecEncoder, SetMChangesFutureWindowsAndXorCapsAtOne) {
  Pcg32 rng(2026, 6);
  FecConfig config;
  config.k = 4;
  config.m = 3;
  FecEncoder encoder(config);
  std::vector<Packet> frame1 = make_media_packets(4, rng);
  EXPECT_EQ(encoder.protect(&frame1), 3);
  encoder.set_m(1);
  std::vector<Packet> frame2 = make_media_packets(4, rng);
  EXPECT_EQ(encoder.protect(&frame2), 1);
  encoder.set_m(0);  // disables protection entirely
  std::vector<Packet> frame3 = make_media_packets(4, rng);
  EXPECT_EQ(encoder.protect(&frame3), 0);
  encoder.set_m(99);  // clamped
  EXPECT_EQ(encoder.m(), kMaxFecM);

  FecConfig xor_config;
  xor_config.scheme = FecScheme::kXorParity;
  xor_config.k = 4;
  xor_config.m = 1;
  FecEncoder xor_encoder(xor_config);
  xor_encoder.set_m(5);
  EXPECT_EQ(xor_encoder.m(), 1);
}

// --- hostile repair packets ---------------------------------------------

TEST(FecDecoder, MalformedRepairHeadersAreCountedNotFatal) {
  Pcg32 rng(2026, 7);
  FecConfig config;
  config.k = 3;
  config.m = 1;
  FecEncoder encoder(config);
  std::vector<Packet> window = make_media_packets(3, rng);
  encoder.protect(&window);

  auto expect_invalid = [](Packet repair) {
    FecDecoder decoder;
    std::vector<Packet> out = decoder.process({std::move(repair)});
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(decoder.stats().repair_packets_invalid, 1u);
    EXPECT_EQ(decoder.stats().packets_recovered, 0u);
  };

  Packet repair = window[3];
  {  // k out of bounds
    Packet p = repair;
    p.payload.mutable_data()[1] = kMaxFecK + 1;
    expect_invalid(std::move(p));
  }
  {  // m out of bounds
    Packet p = repair;
    p.payload.mutable_data()[2] = kMaxFecM + 1;
    expect_invalid(std::move(p));
  }
  {  // repair_index >= m
    Packet p = repair;
    p.payload.mutable_data()[3] = p.payload[2];
    expect_invalid(std::move(p));
  }
  {  // unknown scheme
    Packet p = repair;
    p.payload.mutable_data()[0] = 9;
    expect_invalid(std::move(p));
  }
  {  // truncated symbol
    Packet p = repair;
    p.payload.resize(p.payload.size() - 3);
    expect_invalid(std::move(p));
  }
  {  // payload shorter than the fixed header
    Packet p = repair;
    p.payload.resize(4);
    expect_invalid(std::move(p));
  }
}

TEST(FecDecoder, DuplicateRepairPacketsAddNothing) {
  Pcg32 rng(2026, 8);
  FecConfig config;
  config.k = 3;
  config.m = 1;
  FecEncoder encoder(config);
  std::vector<Packet> window = make_media_packets(3, rng);
  encoder.protect(&window);
  const std::string lost_key = packet_key(window[1]);
  // Deliver: packet 0, packet 2, repair, repair (duplicated).
  std::vector<Packet> delivered = {window[0], window[2], window[3],
                                   window[3]};
  FecDecoder decoder;
  std::vector<Packet> out = decoder.process(std::move(delivered));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(packet_key(out[1]), lost_key);
  EXPECT_TRUE(out[1].recovered);
  EXPECT_EQ(decoder.stats().packets_recovered, 1u);
}

TEST(FecDecoder, StaleWindowIdNeverInventsPackets) {
  Pcg32 rng(2026, 9);
  FecConfig config;
  config.k = 2;
  config.m = 1;
  FecEncoder encoder(config);
  std::vector<Packet> window = make_media_packets(2, rng);
  encoder.protect(&window);
  // Repoint the repair's base_sequence far away from any delivered media:
  // both "data packets" of that forged window are missing, which exceeds
  // m=1 and must be unrecoverable — never a fabricated packet.
  Packet stale = window[2];
  stale.payload.mutable_data()[4] = 0xBE;
  stale.payload.mutable_data()[5] = 0xEF;
  FecDecoder decoder;
  std::vector<Packet> out =
      decoder.process({window[0], window[1], std::move(stale)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(decoder.stats().packets_recovered, 0u);
  EXPECT_EQ(decoder.stats().windows_unrecoverable, 1u);
}

// --- pipeline stages -----------------------------------------------------

sim::SessionSpec fec_session_spec(int frames, double loss_rate,
                                  std::uint64_t seed) {
  sim::SessionSpec spec;
  core::PbpairConfig pbpair;
  pbpair.intra_th = 0.9;
  pbpair.plr = 0.10;
  spec.scheme = sim::SchemeSpec::pbpair(pbpair);
  spec.config.frames = frames;
  video::SyntheticSequence seq =
      video::make_paper_sequence(video::SequenceKind::kForemanLike);
  spec.source = [seq](int index) { return seq.frame_at(index); };
  spec.make_loss = [loss_rate, seed]() -> std::unique_ptr<net::LossModel> {
    if (loss_rate <= 0.0) return nullptr;
    return std::make_unique<net::BernoulliPacketLoss>(loss_rate, seed);
  };
  return spec;
}

TEST(FecPipeline, RecoversLossesAndReportsNetworkPlr) {
  sim::SessionSpec spec = fec_session_spec(30, 0.25, 77);
  // Small MTU so frames span several packets and windows fill up.
  spec.config.packetizer.mtu = 256;
  FecConfig fec;
  fec.k = 4;
  fec.m = 2;
  spec.config.fec = fec;
  double max_plr = 0.0;
  std::uint32_t cumulative_lost = 0;
  spec.config.on_feedback = [&](int, const ReceiverReport& report,
                                codec::RefreshPolicy&) {
    max_plr = std::max(max_plr, report.fraction_lost_as_double());
    cumulative_lost = report.cumulative_lost;
  };
  sim::StreamSession session(spec.source, spec.scheme, spec.make_loss(),
                             spec.config);
  ASSERT_NE(session.fec_encoder(), nullptr);
  ASSERT_NE(session.fec_decoder(), nullptr);
  session.run_to_end();
  sim::PipelineResult result = session.take_result();
  EXPECT_GT(result.fec_encode.repair_packets, 0u);
  EXPECT_GT(result.fec_decode.packets_recovered, 0u);
  // The feedback loop must keep seeing the NETWORK loss rate even though
  // the decoder-side stream was largely repaired: with 25% Bernoulli drop
  // the RTCP reports keep counting wire losses (fraction_lost is
  // per-interval, so assert the peak and the cumulative count).
  EXPECT_GT(max_plr, 0.10);
  EXPECT_GT(cumulative_lost, 0u);

  // And recovery actually reduced frame loss vs the same run without FEC.
  sim::SessionSpec bare = fec_session_spec(30, 0.25, 77);
  bare.config.packetizer.mtu = 256;
  sim::StreamSession bare_session(bare.source, bare.scheme, bare.make_loss(),
                                  bare.config);
  bare_session.run_to_end();
  sim::PipelineResult bare_result = bare_session.take_result();
  auto lost_frames = [](const sim::PipelineResult& r) {
    int lost = 0;
    for (const sim::FrameTrace& f : r.frames) lost += f.lost ? 1 : 0;
    return lost;
  };
  EXPECT_LT(lost_frames(result), lost_frames(bare_result));
}

std::string serialize(const std::vector<sim::PipelineResult>& results) {
  std::string out;
  char buf[256];
  for (const sim::PipelineResult& r : results) {
    std::snprintf(buf, sizeof(buf), "total %llu %.17g %llu %llu %llu\n",
                  static_cast<unsigned long long>(r.total_bytes),
                  r.avg_psnr_db,
                  static_cast<unsigned long long>(r.total_bad_pixels),
                  static_cast<unsigned long long>(r.total_intra_mbs),
                  static_cast<unsigned long long>(r.concealed_mbs));
    out += buf;
    std::snprintf(buf, sizeof(buf), "energy %.17g %.17g\n",
                  r.encode_energy.total_j(), r.tx_energy_j);
    out += buf;
    for (const sim::FrameTrace& f : r.frames) {
      std::snprintf(buf, sizeof(buf), "f %d %zu %d %d %.17g %llu %d %d\n",
                    f.index, f.bytes, f.intra_mbs, f.lost ? 1 : 0, f.psnr_db,
                    static_cast<unsigned long long>(f.bad_pixels),
                    f.fec_repair_sent, f.fec_recovered);
      out += buf;
    }
  }
  return out;
}

// FEC "off" must mean OFF: config.fec = m=0 produces the same stage list
// and byte-identical results as config.fec unset, at 1, 2 and 8 worker
// threads (DESIGN.md §12.5 — the all-off config is free).
TEST(FecPipeline, DisabledFecIsByteIdenticalToNoStage) {
  auto make_specs = [](bool with_disabled_fec) {
    std::vector<sim::SessionSpec> specs;
    for (int i = 0; i < 4; ++i) {
      sim::SessionSpec spec = fec_session_spec(
          6, 0.15, 2005 + static_cast<std::uint64_t>(i));
      if (with_disabled_fec) {
        FecConfig fec;
        fec.m = 0;  // enabled() == false: no stages, no behavior change
        spec.config.fec = fec;
      }
      specs.push_back(std::move(spec));
    }
    return specs;
  };

  sim::SessionManagerOptions reference_options;
  reference_options.threads = 1;
  const std::string reference = serialize(
      sim::SessionManager(make_specs(false)).run(reference_options));

  for (int threads : {1, 2, 8}) {
    sim::SessionManagerOptions options;
    options.threads = threads;
    const std::string with_disabled = serialize(
        sim::SessionManager(make_specs(true)).run(options));
    EXPECT_EQ(with_disabled, reference) << "threads=" << threads;
  }

  // Stage-list identity, stated directly.
  sim::SessionSpec spec = fec_session_spec(2, 0.0, 1);
  FecConfig fec;
  fec.m = 0;
  spec.config.fec = fec;
  sim::StreamSession session(spec.source, spec.scheme, nullptr, spec.config);
  EXPECT_EQ(session.fec_encoder(), nullptr);
  for (const sim::FrameStage& stage : session.stages()) {
    EXPECT_NE(stage.name, "fec_encode");
    EXPECT_NE(stage.name, "fec_decode");
  }
}

// --- joint Intra_Th / FEC-rate controller -------------------------------

TEST(JointController, ResidualPlrIsSoundAtTheEdges) {
  using core::JointPowerAwareController;
  // m = 0 is exactly the raw loss rate.
  EXPECT_DOUBLE_EQ(JointPowerAwareController::residual_plr(0.1, 8, 0), 0.1);
  EXPECT_DOUBLE_EQ(JointPowerAwareController::residual_plr(0.0, 8, 3), 0.0);
  EXPECT_DOUBLE_EQ(JointPowerAwareController::residual_plr(1.0, 8, 3), 1.0);
  // More repair monotonically reduces residual loss.
  double prev = 1.0;
  for (int m = 0; m <= 8; ++m) {
    const double r = JointPowerAwareController::residual_plr(0.2, 8, m);
    EXPECT_LE(r, prev) << "m=" << m;
    EXPECT_GE(r, 0.0);
    prev = r;
  }
  // And FEC always helps: residual < raw for any m >= 1.
  EXPECT_LT(JointPowerAwareController::residual_plr(0.2, 8, 1), 0.2);
}

TEST(JointController, PlrPicksSmallestSufficientM) {
  core::JointAdaptationConfig config;
  config.fec_k = 8;
  config.target_residual_plr = 0.02;
  core::JointPowerAwareController controller(config);

  controller.on_plr_update(0.0);
  EXPECT_EQ(controller.fec_m(), 0);  // lossless: no repair overhead

  controller.on_plr_update(0.05);
  const int m_low = controller.fec_m();
  controller.on_plr_update(0.30);
  const int m_high = controller.fec_m();
  EXPECT_GT(m_low, 0);
  EXPECT_GE(m_high, m_low);
  // The chosen m actually meets the target (or is the cap).
  EXPECT_LE(core::JointPowerAwareController::residual_plr(0.05, 8, m_low),
            config.target_residual_plr);

  // Intra_Th reacts to the RESIDUAL loss, so with FEC soaking up the
  // loss it stays near base even when the raw PLR is well above base_plr.
  EXPECT_NEAR(controller.intra_th(),
              config.base_intra_th + config.plr_coupling * config.base_plr -
                  config.plr_coupling *
                      core::JointPowerAwareController::residual_plr(
                          0.30, 8, m_high),
              1e-12);
}

TEST(JointController, EnergyPressureShedsFecBeforeIntraTh) {
  core::JointAdaptationConfig config;
  config.fec_k = 8;
  config.energy_budget_j = 100.0;
  config.planned_frames = 100;
  core::JointPowerAwareController controller(config);
  controller.on_plr_update(0.30);  // heavy loss: wants several repairs
  const int m_before = controller.fec_m();
  ASSERT_GT(m_before, 1);
  const double intra_before = controller.intra_th();

  // Projected 2 J/frame on a 1 J/frame budget: over budget.
  controller.on_energy_update(/*spent_j=*/20.0, /*frames_done=*/10);
  EXPECT_EQ(controller.fec_m(), m_before - 1);
  EXPECT_DOUBLE_EQ(controller.intra_th(), intra_before);  // FEC shed first

  // Keep pressing until FEC is exhausted; only then Intra_Th climbs.
  for (int i = 0; i < 16 && controller.fec_m() > 0; ++i) {
    controller.on_energy_update(20.0, 10);
  }
  EXPECT_EQ(controller.fec_m(), 0);
  const double intra_at_zero_fec = controller.intra_th();
  controller.on_energy_update(20.0, 10);
  EXPECT_GT(controller.intra_th(), intra_at_zero_fec);

  // Comfortable headroom restores protection before relaxing intra.
  controller.on_energy_update(/*spent_j=*/2.0, /*frames_done=*/10);
  EXPECT_GT(controller.fec_m_cap(), 0);
}

}  // namespace
}  // namespace pbpair::net
