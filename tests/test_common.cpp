// Tests for common utilities: deterministic RNG, Q16 fixed point, math.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/fixed.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace pbpair::common {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(1234);
  Pcg32 b(1234);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(7, 1);
  Pcg32 b(7, 2);
  bool any_different = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u32() != b.next_u32()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Pcg32, NextBelowStaysInRange) {
  Pcg32 rng(99);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Pcg32, NextBelowCoversAllValues) {
  Pcg32 rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, NextInRangeInclusiveBounds) {
  Pcg32 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(21);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, BernoulliMatchesRate) {
  Pcg32 rng(31);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bernoulli(0.1)) ++hits;
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(Pcg32, BernoulliDegenerateProbabilities) {
  Pcg32 rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
    EXPECT_FALSE(rng.next_bernoulli(-0.5));
    EXPECT_TRUE(rng.next_bernoulli(1.5));
  }
}

TEST(Q16, ConversionRoundTrips) {
  for (double v : {0.0, 0.25, 0.5, 0.75, 1.0, 0.1, 0.9}) {
    EXPECT_NEAR(q16_to_double(q16_from_double(v)), v, 1e-4);
  }
}

TEST(Q16, ConversionClamps) {
  EXPECT_EQ(q16_from_double(-0.5), 0u);
  EXPECT_EQ(q16_from_double(1.5), kQ16One);
}

TEST(Q16, MulMatchesDoubleMul) {
  for (double a : {0.0, 0.1, 0.5, 0.99, 1.0}) {
    for (double b : {0.0, 0.2, 0.5, 1.0}) {
      Q16 got = q16_mul(q16_from_double(a), q16_from_double(b));
      EXPECT_NEAR(q16_to_double(got), a * b, 2e-4) << a << "*" << b;
    }
  }
}

TEST(Q16, MulStaysInUnitInterval) {
  EXPECT_LE(q16_mul(kQ16One, kQ16One), kQ16One);
  EXPECT_EQ(q16_mul(0, kQ16One), 0u);
}

TEST(Q16, AddSaturates) {
  EXPECT_EQ(q16_add_sat(kQ16One, kQ16One), kQ16One);
  EXPECT_EQ(q16_add_sat(q16_from_double(0.6), q16_from_double(0.6)), kQ16One);
  EXPECT_EQ(q16_add_sat(q16_from_double(0.25), q16_from_double(0.25)),
            q16_from_double(0.5));
}

TEST(Q16, Complement) {
  EXPECT_EQ(q16_complement(0), kQ16One);
  EXPECT_EQ(q16_complement(kQ16One), 0u);
  EXPECT_EQ(q16_complement(q16_from_double(0.25)), q16_from_double(0.75));
}

TEST(Q16, RatioClamped) {
  EXPECT_EQ(q16_ratio_clamped(1, 2), kQ16One / 2);
  EXPECT_EQ(q16_ratio_clamped(5, 5), kQ16One);
  EXPECT_EQ(q16_ratio_clamped(7, 5), kQ16One);  // clamps above 1
  EXPECT_EQ(q16_ratio_clamped(3, 0), kQ16One);  // 0 denominator convention
  EXPECT_EQ(q16_ratio_clamped(0, 9), 0u);
}

TEST(MathUtil, Clamp) {
  EXPECT_EQ(clamp(5, 0, 10), 5);
  EXPECT_EQ(clamp(-5, 0, 10), 0);
  EXPECT_EQ(clamp(15, 0, 10), 10);
}

TEST(MathUtil, ClampPixel) {
  EXPECT_EQ(clamp_pixel(-1), 0);
  EXPECT_EQ(clamp_pixel(0), 0);
  EXPECT_EQ(clamp_pixel(128), 128);
  EXPECT_EQ(clamp_pixel(255), 255);
  EXPECT_EQ(clamp_pixel(300), 255);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(MathUtil, Iabs) {
  EXPECT_EQ(iabs(5), 5);
  EXPECT_EQ(iabs(-5), 5);
  EXPECT_EQ(iabs(0), 0);
}

TEST(MathUtil, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(255 * 255), 255u);
  EXPECT_EQ(isqrt(1000000), 1000u);
}

class IsqrtProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsqrtProperty, FloorSquareRootInvariant) {
  std::uint64_t v = GetParam();
  std::uint64_t root = isqrt(v);
  EXPECT_LE(root * root, v);
  EXPECT_GT((root + 1) * (root + 1), v);
}

INSTANTIATE_TEST_SUITE_P(Values, IsqrtProperty,
                         ::testing::Values(0ull, 1ull, 2ull, 99ull, 100ull,
                                           65535ull, 65536ull, 1234567ull,
                                           0xFFFFFFFFull, 0x123456789ull));

}  // namespace
}  // namespace pbpair::common
