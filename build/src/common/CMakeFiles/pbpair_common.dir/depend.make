# Empty dependencies file for pbpair_common.
# This may be replaced when dependencies are built.
