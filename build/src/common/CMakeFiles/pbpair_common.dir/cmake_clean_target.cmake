file(REMOVE_RECURSE
  "libpbpair_common.a"
)
