file(REMOVE_RECURSE
  "CMakeFiles/pbpair_common.dir/rng.cpp.o"
  "CMakeFiles/pbpair_common.dir/rng.cpp.o.d"
  "libpbpair_common.a"
  "libpbpair_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
