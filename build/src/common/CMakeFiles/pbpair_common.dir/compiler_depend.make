# Empty compiler generated dependencies file for pbpair_common.
# This may be replaced when dependencies are built.
