file(REMOVE_RECURSE
  "libpbpair_core.a"
)
