
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/correctness_matrix.cpp" "src/core/CMakeFiles/pbpair_core.dir/correctness_matrix.cpp.o" "gcc" "src/core/CMakeFiles/pbpair_core.dir/correctness_matrix.cpp.o.d"
  "/root/repo/src/core/operating_points.cpp" "src/core/CMakeFiles/pbpair_core.dir/operating_points.cpp.o" "gcc" "src/core/CMakeFiles/pbpair_core.dir/operating_points.cpp.o.d"
  "/root/repo/src/core/pbpair_policy.cpp" "src/core/CMakeFiles/pbpair_core.dir/pbpair_policy.cpp.o" "gcc" "src/core/CMakeFiles/pbpair_core.dir/pbpair_policy.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/pbpair_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/pbpair_core.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/pbpair_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pbpair_video.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pbpair_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pbpair_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
