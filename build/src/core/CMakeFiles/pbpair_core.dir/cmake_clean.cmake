file(REMOVE_RECURSE
  "CMakeFiles/pbpair_core.dir/correctness_matrix.cpp.o"
  "CMakeFiles/pbpair_core.dir/correctness_matrix.cpp.o.d"
  "CMakeFiles/pbpair_core.dir/operating_points.cpp.o"
  "CMakeFiles/pbpair_core.dir/operating_points.cpp.o.d"
  "CMakeFiles/pbpair_core.dir/pbpair_policy.cpp.o"
  "CMakeFiles/pbpair_core.dir/pbpair_policy.cpp.o.d"
  "CMakeFiles/pbpair_core.dir/similarity.cpp.o"
  "CMakeFiles/pbpair_core.dir/similarity.cpp.o.d"
  "libpbpair_core.a"
  "libpbpair_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
