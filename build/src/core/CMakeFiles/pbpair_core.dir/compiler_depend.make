# Empty compiler generated dependencies file for pbpair_core.
# This may be replaced when dependencies are built.
