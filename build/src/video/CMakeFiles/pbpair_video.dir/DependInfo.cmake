
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/frame.cpp" "src/video/CMakeFiles/pbpair_video.dir/frame.cpp.o" "gcc" "src/video/CMakeFiles/pbpair_video.dir/frame.cpp.o.d"
  "/root/repo/src/video/metrics.cpp" "src/video/CMakeFiles/pbpair_video.dir/metrics.cpp.o" "gcc" "src/video/CMakeFiles/pbpair_video.dir/metrics.cpp.o.d"
  "/root/repo/src/video/noise.cpp" "src/video/CMakeFiles/pbpair_video.dir/noise.cpp.o" "gcc" "src/video/CMakeFiles/pbpair_video.dir/noise.cpp.o.d"
  "/root/repo/src/video/sequence.cpp" "src/video/CMakeFiles/pbpair_video.dir/sequence.cpp.o" "gcc" "src/video/CMakeFiles/pbpair_video.dir/sequence.cpp.o.d"
  "/root/repo/src/video/yuv_io.cpp" "src/video/CMakeFiles/pbpair_video.dir/yuv_io.cpp.o" "gcc" "src/video/CMakeFiles/pbpair_video.dir/yuv_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbpair_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
