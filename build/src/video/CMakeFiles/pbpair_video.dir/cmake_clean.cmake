file(REMOVE_RECURSE
  "CMakeFiles/pbpair_video.dir/frame.cpp.o"
  "CMakeFiles/pbpair_video.dir/frame.cpp.o.d"
  "CMakeFiles/pbpair_video.dir/metrics.cpp.o"
  "CMakeFiles/pbpair_video.dir/metrics.cpp.o.d"
  "CMakeFiles/pbpair_video.dir/noise.cpp.o"
  "CMakeFiles/pbpair_video.dir/noise.cpp.o.d"
  "CMakeFiles/pbpair_video.dir/sequence.cpp.o"
  "CMakeFiles/pbpair_video.dir/sequence.cpp.o.d"
  "CMakeFiles/pbpair_video.dir/yuv_io.cpp.o"
  "CMakeFiles/pbpair_video.dir/yuv_io.cpp.o.d"
  "libpbpair_video.a"
  "libpbpair_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
