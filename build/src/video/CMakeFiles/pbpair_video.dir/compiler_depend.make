# Empty compiler generated dependencies file for pbpair_video.
# This may be replaced when dependencies are built.
