file(REMOVE_RECURSE
  "libpbpair_video.a"
)
