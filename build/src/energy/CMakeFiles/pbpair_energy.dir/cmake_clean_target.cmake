file(REMOVE_RECURSE
  "libpbpair_energy.a"
)
