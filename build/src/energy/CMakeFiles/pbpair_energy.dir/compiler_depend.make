# Empty compiler generated dependencies file for pbpair_energy.
# This may be replaced when dependencies are built.
