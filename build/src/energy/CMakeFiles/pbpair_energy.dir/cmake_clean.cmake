file(REMOVE_RECURSE
  "CMakeFiles/pbpair_energy.dir/energy_model.cpp.o"
  "CMakeFiles/pbpair_energy.dir/energy_model.cpp.o.d"
  "libpbpair_energy.a"
  "libpbpair_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
