# Empty dependencies file for pbpair_codec.
# This may be replaced when dependencies are built.
