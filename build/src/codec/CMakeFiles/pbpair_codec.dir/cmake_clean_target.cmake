file(REMOVE_RECURSE
  "libpbpair_codec.a"
)
