file(REMOVE_RECURSE
  "CMakeFiles/pbpair_codec.dir/bitstream.cpp.o"
  "CMakeFiles/pbpair_codec.dir/bitstream.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/block_coder.cpp.o"
  "CMakeFiles/pbpair_codec.dir/block_coder.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/container.cpp.o"
  "CMakeFiles/pbpair_codec.dir/container.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/dct.cpp.o"
  "CMakeFiles/pbpair_codec.dir/dct.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/deblock.cpp.o"
  "CMakeFiles/pbpair_codec.dir/deblock.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/decoder.cpp.o"
  "CMakeFiles/pbpair_codec.dir/decoder.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/encoder.cpp.o"
  "CMakeFiles/pbpair_codec.dir/encoder.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/golomb.cpp.o"
  "CMakeFiles/pbpair_codec.dir/golomb.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/huffman.cpp.o"
  "CMakeFiles/pbpair_codec.dir/huffman.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/mc.cpp.o"
  "CMakeFiles/pbpair_codec.dir/mc.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/motion_search.cpp.o"
  "CMakeFiles/pbpair_codec.dir/motion_search.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/quant.cpp.o"
  "CMakeFiles/pbpair_codec.dir/quant.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/sad.cpp.o"
  "CMakeFiles/pbpair_codec.dir/sad.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/vlc_tables.cpp.o"
  "CMakeFiles/pbpair_codec.dir/vlc_tables.cpp.o.d"
  "CMakeFiles/pbpair_codec.dir/zigzag.cpp.o"
  "CMakeFiles/pbpair_codec.dir/zigzag.cpp.o.d"
  "libpbpair_codec.a"
  "libpbpair_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
