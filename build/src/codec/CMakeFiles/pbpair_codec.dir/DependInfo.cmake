
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/bitstream.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/bitstream.cpp.o.d"
  "/root/repo/src/codec/block_coder.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/block_coder.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/block_coder.cpp.o.d"
  "/root/repo/src/codec/container.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/container.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/container.cpp.o.d"
  "/root/repo/src/codec/dct.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/dct.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/dct.cpp.o.d"
  "/root/repo/src/codec/deblock.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/deblock.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/deblock.cpp.o.d"
  "/root/repo/src/codec/decoder.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/decoder.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/decoder.cpp.o.d"
  "/root/repo/src/codec/encoder.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/encoder.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/encoder.cpp.o.d"
  "/root/repo/src/codec/golomb.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/golomb.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/golomb.cpp.o.d"
  "/root/repo/src/codec/huffman.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/huffman.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/huffman.cpp.o.d"
  "/root/repo/src/codec/mc.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/mc.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/mc.cpp.o.d"
  "/root/repo/src/codec/motion_search.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/motion_search.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/motion_search.cpp.o.d"
  "/root/repo/src/codec/quant.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/quant.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/quant.cpp.o.d"
  "/root/repo/src/codec/sad.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/sad.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/sad.cpp.o.d"
  "/root/repo/src/codec/vlc_tables.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/vlc_tables.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/vlc_tables.cpp.o.d"
  "/root/repo/src/codec/zigzag.cpp" "src/codec/CMakeFiles/pbpair_codec.dir/zigzag.cpp.o" "gcc" "src/codec/CMakeFiles/pbpair_codec.dir/zigzag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbpair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pbpair_video.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pbpair_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
