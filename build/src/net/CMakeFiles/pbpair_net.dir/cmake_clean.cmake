file(REMOVE_RECURSE
  "CMakeFiles/pbpair_net.dir/channel.cpp.o"
  "CMakeFiles/pbpair_net.dir/channel.cpp.o.d"
  "CMakeFiles/pbpair_net.dir/feedback.cpp.o"
  "CMakeFiles/pbpair_net.dir/feedback.cpp.o.d"
  "CMakeFiles/pbpair_net.dir/loss_model.cpp.o"
  "CMakeFiles/pbpair_net.dir/loss_model.cpp.o.d"
  "CMakeFiles/pbpair_net.dir/packet.cpp.o"
  "CMakeFiles/pbpair_net.dir/packet.cpp.o.d"
  "CMakeFiles/pbpair_net.dir/packetizer.cpp.o"
  "CMakeFiles/pbpair_net.dir/packetizer.cpp.o.d"
  "CMakeFiles/pbpair_net.dir/rtcp.cpp.o"
  "CMakeFiles/pbpair_net.dir/rtcp.cpp.o.d"
  "libpbpair_net.a"
  "libpbpair_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
