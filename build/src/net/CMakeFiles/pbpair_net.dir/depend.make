# Empty dependencies file for pbpair_net.
# This may be replaced when dependencies are built.
