
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/pbpair_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/pbpair_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/feedback.cpp" "src/net/CMakeFiles/pbpair_net.dir/feedback.cpp.o" "gcc" "src/net/CMakeFiles/pbpair_net.dir/feedback.cpp.o.d"
  "/root/repo/src/net/loss_model.cpp" "src/net/CMakeFiles/pbpair_net.dir/loss_model.cpp.o" "gcc" "src/net/CMakeFiles/pbpair_net.dir/loss_model.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/pbpair_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/pbpair_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/packetizer.cpp" "src/net/CMakeFiles/pbpair_net.dir/packetizer.cpp.o" "gcc" "src/net/CMakeFiles/pbpair_net.dir/packetizer.cpp.o.d"
  "/root/repo/src/net/rtcp.cpp" "src/net/CMakeFiles/pbpair_net.dir/rtcp.cpp.o" "gcc" "src/net/CMakeFiles/pbpair_net.dir/rtcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbpair_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/pbpair_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pbpair_video.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pbpair_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
