file(REMOVE_RECURSE
  "libpbpair_net.a"
)
