file(REMOVE_RECURSE
  "libpbpair_sim.a"
)
