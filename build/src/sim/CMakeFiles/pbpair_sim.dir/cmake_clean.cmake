file(REMOVE_RECURSE
  "CMakeFiles/pbpair_sim.dir/pipeline.cpp.o"
  "CMakeFiles/pbpair_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/pbpair_sim.dir/report.cpp.o"
  "CMakeFiles/pbpair_sim.dir/report.cpp.o.d"
  "CMakeFiles/pbpair_sim.dir/scheme.cpp.o"
  "CMakeFiles/pbpair_sim.dir/scheme.cpp.o.d"
  "libpbpair_sim.a"
  "libpbpair_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
