# Empty dependencies file for pbpair_sim.
# This may be replaced when dependencies are built.
