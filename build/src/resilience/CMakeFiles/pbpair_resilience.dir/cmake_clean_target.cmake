file(REMOVE_RECURSE
  "libpbpair_resilience.a"
)
