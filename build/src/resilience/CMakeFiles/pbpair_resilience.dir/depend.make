# Empty dependencies file for pbpair_resilience.
# This may be replaced when dependencies are built.
