file(REMOVE_RECURSE
  "CMakeFiles/pbpair_resilience.dir/air_policy.cpp.o"
  "CMakeFiles/pbpair_resilience.dir/air_policy.cpp.o.d"
  "CMakeFiles/pbpair_resilience.dir/pgop_policy.cpp.o"
  "CMakeFiles/pbpair_resilience.dir/pgop_policy.cpp.o.d"
  "libpbpair_resilience.a"
  "libpbpair_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
