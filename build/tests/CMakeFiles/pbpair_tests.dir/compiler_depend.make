# Empty compiler generated dependencies file for pbpair_tests.
# This may be replaced when dependencies are built.
