
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitstream.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_bitstream.cpp.o.d"
  "/root/repo/tests/test_codec.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_codec.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_codec.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_composition.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_composition.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_composition.cpp.o.d"
  "/root/repo/tests/test_concealment.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_concealment.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_concealment.cpp.o.d"
  "/root/repo/tests/test_dct_quant.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_dct_quant.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_dct_quant.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_huffman.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_huffman.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_huffman.cpp.o.d"
  "/root/repo/tests/test_mc.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_mc.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_mc.cpp.o.d"
  "/root/repo/tests/test_motion.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_motion.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_motion.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_paper_shapes.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_paper_shapes.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_paper_shapes.cpp.o.d"
  "/root/repo/tests/test_pbpair.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_pbpair.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_pbpair.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_rate_control.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_rate_control.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_rate_control.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_rtcp.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_rtcp.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_rtcp.cpp.o.d"
  "/root/repo/tests/test_tools.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_tools.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_tools.cpp.o.d"
  "/root/repo/tests/test_video.cpp" "tests/CMakeFiles/pbpair_tests.dir/test_video.cpp.o" "gcc" "tests/CMakeFiles/pbpair_tests.dir/test_video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pbpair_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pbpair_core.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/pbpair_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbpair_net.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/pbpair_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pbpair_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pbpair_video.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pbpair_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
