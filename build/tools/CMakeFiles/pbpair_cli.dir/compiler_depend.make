# Empty compiler generated dependencies file for pbpair_cli.
# This may be replaced when dependencies are built.
