file(REMOVE_RECURSE
  "CMakeFiles/pbpair_cli.dir/pbpair_cli.cpp.o"
  "CMakeFiles/pbpair_cli.dir/pbpair_cli.cpp.o.d"
  "pbpair"
  "pbpair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
