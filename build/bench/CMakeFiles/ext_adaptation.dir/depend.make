# Empty dependencies file for ext_adaptation.
# This may be replaced when dependencies are built.
