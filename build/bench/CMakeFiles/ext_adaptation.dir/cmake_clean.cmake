file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptation.dir/ext_adaptation.cpp.o"
  "CMakeFiles/ext_adaptation.dir/ext_adaptation.cpp.o.d"
  "ext_adaptation"
  "ext_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
