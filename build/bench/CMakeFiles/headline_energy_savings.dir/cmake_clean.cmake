file(REMOVE_RECURSE
  "CMakeFiles/headline_energy_savings.dir/headline_energy_savings.cpp.o"
  "CMakeFiles/headline_energy_savings.dir/headline_energy_savings.cpp.o.d"
  "headline_energy_savings"
  "headline_energy_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_energy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
