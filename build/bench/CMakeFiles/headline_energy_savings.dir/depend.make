# Empty dependencies file for headline_energy_savings.
# This may be replaced when dependencies are built.
