# Empty dependencies file for fig5_comparison.
# This may be replaced when dependencies are built.
