file(REMOVE_RECURSE
  "CMakeFiles/sec44_quality_vs_resiliency.dir/sec44_quality_vs_resiliency.cpp.o"
  "CMakeFiles/sec44_quality_vs_resiliency.dir/sec44_quality_vs_resiliency.cpp.o.d"
  "sec44_quality_vs_resiliency"
  "sec44_quality_vs_resiliency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_quality_vs_resiliency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
