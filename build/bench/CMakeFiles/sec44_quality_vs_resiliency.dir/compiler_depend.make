# Empty compiler generated dependencies file for sec44_quality_vs_resiliency.
# This may be replaced when dependencies are built.
