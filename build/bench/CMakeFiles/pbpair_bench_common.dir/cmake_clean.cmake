file(REMOVE_RECURSE
  "../lib/libpbpair_bench_common.a"
  "../lib/libpbpair_bench_common.pdb"
  "CMakeFiles/pbpair_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/pbpair_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbpair_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
