file(REMOVE_RECURSE
  "../lib/libpbpair_bench_common.a"
)
