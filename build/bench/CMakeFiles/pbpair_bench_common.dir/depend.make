# Empty dependencies file for pbpair_bench_common.
# This may be replaced when dependencies are built.
