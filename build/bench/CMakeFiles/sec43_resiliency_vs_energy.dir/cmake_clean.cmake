file(REMOVE_RECURSE
  "CMakeFiles/sec43_resiliency_vs_energy.dir/sec43_resiliency_vs_energy.cpp.o"
  "CMakeFiles/sec43_resiliency_vs_energy.dir/sec43_resiliency_vs_energy.cpp.o.d"
  "sec43_resiliency_vs_energy"
  "sec43_resiliency_vs_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_resiliency_vs_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
