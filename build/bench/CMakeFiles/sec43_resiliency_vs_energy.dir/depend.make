# Empty dependencies file for sec43_resiliency_vs_energy.
# This may be replaced when dependencies are built.
