# Empty dependencies file for transcode_yuv.
# This may be replaced when dependencies are built.
