file(REMOVE_RECURSE
  "CMakeFiles/transcode_yuv.dir/transcode_yuv.cpp.o"
  "CMakeFiles/transcode_yuv.dir/transcode_yuv.cpp.o.d"
  "transcode_yuv"
  "transcode_yuv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcode_yuv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
