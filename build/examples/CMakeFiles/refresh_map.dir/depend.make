# Empty dependencies file for refresh_map.
# This may be replaced when dependencies are built.
