file(REMOVE_RECURSE
  "CMakeFiles/refresh_map.dir/refresh_map.cpp.o"
  "CMakeFiles/refresh_map.dir/refresh_map.cpp.o.d"
  "refresh_map"
  "refresh_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refresh_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
