# Empty dependencies file for battery_aware_streaming.
# This may be replaced when dependencies are built.
