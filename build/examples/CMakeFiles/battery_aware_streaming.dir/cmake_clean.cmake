file(REMOVE_RECURSE
  "CMakeFiles/battery_aware_streaming.dir/battery_aware_streaming.cpp.o"
  "CMakeFiles/battery_aware_streaming.dir/battery_aware_streaming.cpp.o.d"
  "battery_aware_streaming"
  "battery_aware_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_aware_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
