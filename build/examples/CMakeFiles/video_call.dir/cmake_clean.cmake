file(REMOVE_RECURSE
  "CMakeFiles/video_call.dir/video_call.cpp.o"
  "CMakeFiles/video_call.dir/video_call.cpp.o.d"
  "video_call"
  "video_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
