
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/video_call.cpp" "examples/CMakeFiles/video_call.dir/video_call.cpp.o" "gcc" "examples/CMakeFiles/video_call.dir/video_call.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pbpair_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pbpair_core.dir/DependInfo.cmake"
  "/root/repo/build/src/resilience/CMakeFiles/pbpair_resilience.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pbpair_net.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/pbpair_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/pbpair_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/pbpair_video.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pbpair_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
