# Empty dependencies file for video_call.
# This may be replaced when dependencies are built.
