// pbpair — command-line front end to the library.
//
//   pbpair encode --in clip.yuv --width 176 --height 144 --out clip.pbs
//                 [--qp 10] [--intra-th 0.9] [--plr 0.1] [--scheme pbpair|
//                  no|gop-N|air-N|pgop-N] [--rate-kbps K] [--deblocking]
//   pbpair decode --in clip.pbs --out clip.yuv [--deblocking]
//   pbpair simulate [--clip foreman|akiyo|garden] [--frames 120]
//                   [--plr 0.1] [--scheme ...] [--intra-th 0.9]
//                   [--mtu 1400] [--seed 2005] [--qp 10] [--crc]
//                   [--trace] [--trace-json t.json] [--metrics-json m.json]
//                   [--frame-trace f.jsonl] [--deterministic]
//   pbpair serve    --sessions N [--frames 60] [--plr 0.1] [--scheme ...]
//                   [--intra-th 0.9] [--threads T] [--slice K] [--rtt R]
//                   [--seed 2005] [--qp 10] [--crc] [--metrics-port P|auto]
//                   [--metrics-linger SEC]
//   pbpair monitor  --port P [--host H] [--interval SEC]
//                   | --from scrape1.txt --to scrape2.txt [--interval SEC]
//   pbpair fuzz     [--seed 2005] [--iters 2000] [--fuzz-target all|...]
//                   [--crash-dir DIR]
//
// encode/decode work on real raw 4:2:0 material through the PBS container;
// simulate runs the full lossy pipeline on a synthetic clip and prints the
// result row; serve multiplexes N concurrent stream sessions (clips
// rotating over the paper's three, per-session seeds) across the worker
// pool and prints per-session rows plus the deterministic aggregate
// (DESIGN.md §9). The observability flags (DESIGN.md §8) enable the
// metrics/trace layer: --trace turns it on (as does PBPAIR_TRACE=1), the
// *-json flags export what was collected, and --deterministic restricts
// the metrics JSON to the counters that are a pure function of the
// workload. Live telemetry (DESIGN.md §10): serve tracks per-session
// health and, with --metrics-port, exposes GET /metrics (Prometheus text)
// and GET /healthz on 127.0.0.1; monitor scrapes twice and prints the
// per-session delta table. --log-json / --verbose / --log-level control
// the structured log stream (obs/log.h).
//
// Hostile-byte handling (DESIGN.md §11): the --fault-* flags on simulate
// and serve insert a seeded net::FaultInjector after the loss model (bit
// flips, truncation, header corruption, duplication, reordering), monitor
// prints a damage line when fault counters moved between scrapes, and
// `pbpair fuzz` replays the seeded robustness campaign that CI runs under
// ASan/UBSan.
//
// Wire integrity (DESIGN.md §13): --crc puts an 8-byte CRC64 trailer on
// every packet and inserts the verify_integrity stage, so damage that
// reaches the receiver is classified corrupted (net.crc.corrupted) rather
// than folded into loss. monitor then grows lost/s + corrupt/s columns and
// a wire line with CRC verdict rates and net.wire.ns p50/p99 latency.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "codec/container.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/rate_control.h"
#include "common/args.h"
#include "common/json.h"
#include "net/loss_model.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/http_exporter.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "net/fault_injector.h"
#include "sim/fuzzer.h"
#include "sim/pipeline.h"
#include "sim/report.h"
#include "sim/session_manager.h"
#include "video/yuv_io.h"

using namespace pbpair;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: pbpair <encode|decode|simulate|serve|monitor|fuzz> [--flags]\n"
      "  encode   --in f.yuv --width W --height H --out f.pbs\n"
      "           [--qp N] [--scheme S] [--intra-th X] [--plr X]\n"
      "           [--rate-kbps K] [--deblocking]\n"
      "  decode   --in f.pbs --out f.yuv [--deblocking]\n"
      "  simulate [--clip C] [--frames N] [--plr X] [--scheme S]\n"
      "           [--intra-th X] [--mtu N] [--seed N] [--qp N] [--crc]\n"
      "           [--trace] [--trace-json FILE] [--metrics-json FILE]\n"
      "           [--frame-trace FILE] [--deterministic]\n"
      "  serve    --sessions N [--frames N] [--plr X] [--scheme S]\n"
      "           [--intra-th X] [--threads T] [--slice K] [--rtt R]\n"
      "           [--seed N] [--qp N] [--crc] [--metrics-port P|auto]\n"
      "           [--metrics-linger SEC] [--flight-dir DIR]\n"
      "           [--admit-live N] [--admit-queue N] [--sheddable]\n"
      "           (admission: --admit-live caps constructed sessions per\n"
      "           shard, --admit-queue sheds/queues past that pinned depth,\n"
      "           --sheddable marks sessions DEGRADED-eligible for shedding)\n"
      "           (exporter also serves /healthz and /flightrecorder[/S])\n"
      "  monitor  --port P [--host H] [--interval SEC] [--json]\n"
      "           | --from scrape1.txt --to scrape2.txt [--interval SEC]\n"
      "  fuzz     [--seed N] [--iters N] [--crash-dir DIR]\n"
      "           [--fuzz-target all|bitreader|decoder|depacketize|\n"
      "                         packet|fec|wire|prometheus|json]\n"
      "  common:  [--log-json FILE] [--log-level debug|info|warn|error]\n"
      "           [--verbose]\n"
      "  faults (simulate/serve): [--fault-bit-flip X] [--fault-truncate X]\n"
      "           [--fault-header X] [--fault-duplicate X]\n"
      "           [--fault-reorder X] [--fault-seed N]\n"
      "  fec (simulate/serve): [--fec-m M] [--fec-k K] [--fec-scheme xor|rs]\n"
      "           (m=0, the default, disables the FEC stages entirely)\n"
      "  wire (simulate/serve): [--crc] frames every packet with a CRC64\n"
      "           trailer; corrupted deliveries drop to erasures and are\n"
      "           counted apart from losses (off keeps the classic bytes)\n"
      "  schemes: pbpair (default), no, gop-N, air-N, pgop-N\n");
  return 2;
}

/// Applies the shared logging flags: --verbose (info level), --log-level,
/// --log-json FILE, and --deterministic (reproducible records).
bool apply_log_flags(const common::ArgParser& args) {
  if (args.has("verbose")) obs::set_log_min_level(obs::LogLevel::kInfo);
  const std::string level = args.get("log-level");
  if (level == "debug") {
    obs::set_log_min_level(obs::LogLevel::kDebug);
  } else if (level == "info") {
    obs::set_log_min_level(obs::LogLevel::kInfo);
  } else if (level == "warn") {
    obs::set_log_min_level(obs::LogLevel::kWarn);
  } else if (level == "error") {
    obs::set_log_min_level(obs::LogLevel::kError);
  } else if (!level.empty()) {
    std::fprintf(stderr, "unknown --log-level %s\n", level.c_str());
    return false;
  }
  if (args.has("deterministic")) obs::set_log_deterministic(true);
  const std::string log_json = args.get("log-json");
  if (!log_json.empty() && !obs::set_log_json_path(log_json)) {
    std::fprintf(stderr, "cannot open %s for logging\n", log_json.c_str());
    return false;
  }
  return true;
}

/// Reads the --fault-* flags into PipelineConfig::faults. Returns the
/// configured injector (unset when every probability is zero, keeping the
/// pipeline byte-identical to a build without the injector).
void apply_fault_flags(const common::ArgParser& args,
                       sim::PipelineConfig* config) {
  net::FaultInjectorConfig faults;
  faults.p_bit_flip = args.get_double("fault-bit-flip", 0.0);
  faults.p_truncate = args.get_double("fault-truncate", 0.0);
  faults.p_header_corrupt = args.get_double("fault-header", 0.0);
  faults.p_duplicate = args.get_double("fault-duplicate", 0.0);
  faults.p_reorder = args.get_double("fault-reorder", 0.0);
  faults.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  if (faults.enabled()) config->faults = faults;
}

/// Reads the --fec-* flags into PipelineConfig::fec. --fec-m 0 (the
/// default) leaves the optional unset, so the stage list — and every
/// output byte — matches a FEC-free build. Returns false on a bad value.
bool apply_fec_flags(const common::ArgParser& args,
                     sim::PipelineConfig* config) {
  net::FecConfig fec;
  fec.m = args.get_int("fec-m", 0);
  fec.k = args.get_int("fec-k", 8);
  const std::string scheme = args.get("fec-scheme", "rs");
  if (scheme == "rs") {
    fec.scheme = net::FecScheme::kReedSolomon;
  } else if (scheme == "xor") {
    fec.scheme = net::FecScheme::kXorParity;
  } else {
    std::fprintf(stderr, "unknown --fec-scheme %s (want xor|rs)\n",
                 scheme.c_str());
    return false;
  }
  if (fec.m < 0 || fec.m > static_cast<int>(net::kMaxFecM) ||
      fec.k < 1 || fec.k > static_cast<int>(net::kMaxFecK) ||
      (fec.scheme == net::FecScheme::kXorParity && fec.m > 1)) {
    std::fprintf(stderr,
                 "bad FEC geometry: --fec-k in [1,%d], --fec-m in [0,%d], "
                 "xor allows m<=1\n",
                 static_cast<int>(net::kMaxFecK),
                 static_cast<int>(net::kMaxFecM));
    return false;
  }
  if (fec.enabled()) config->fec = fec;
  return true;
}

/// Surfaces span-buffer overflow after a trace export: a truncated trace
/// silently missing spans is worse than a loud one.
void warn_if_spans_dropped() {
  const std::uint64_t dropped =
      obs::counter("obs.trace.dropped").value();
  if (dropped > 0) {
    std::printf("warning: %llu spans dropped (buffer full); trace is "
                "truncated\n",
                static_cast<unsigned long long>(dropped));
  }
}

/// Parses "pbpair" / "no" / "gop-3" / "air-24" / "pgop-1" etc.
bool parse_scheme(const std::string& text, double intra_th, double plr,
                  sim::SchemeSpec* spec) {
  if (text == "pbpair" || text.empty()) {
    core::PbpairConfig config;
    config.intra_th = intra_th;
    config.plr = plr;
    *spec = sim::SchemeSpec::pbpair(config);
    return true;
  }
  if (text == "no") {
    *spec = sim::SchemeSpec::no_resilience();
    return true;
  }
  auto dash = text.find('-');
  if (dash == std::string::npos) return false;
  std::string kind = text.substr(0, dash);
  int param = std::atoi(text.c_str() + dash + 1);
  if (param <= 0) return false;
  if (kind == "gop") {
    *spec = sim::SchemeSpec::gop(param);
  } else if (kind == "air") {
    *spec = sim::SchemeSpec::air(param);
  } else if (kind == "pgop") {
    *spec = sim::SchemeSpec::pgop(param);
  } else {
    return false;
  }
  return true;
}

int cmd_encode(const common::ArgParser& args) {
  const std::string in = args.get("in");
  const std::string out = args.get("out");
  const int width = args.get_int("width", 176);
  const int height = args.get_int("height", 144);
  if (in.empty() || out.empty()) return usage();
  if (width % 16 != 0 || height % 16 != 0 || width <= 0 || height <= 0) {
    std::fprintf(stderr, "width/height must be positive multiples of 16\n");
    return 1;
  }

  std::vector<video::YuvFrame> frames = video::read_yuv_file(in, width, height);
  if (frames.empty()) {
    std::fprintf(stderr, "no %dx%d frames readable from %s\n", width, height,
                 in.c_str());
    return 1;
  }

  sim::SchemeSpec scheme;
  if (!parse_scheme(args.get("scheme", "pbpair"),
                    args.get_double("intra-th", 0.9),
                    args.get_double("plr", 0.1), &scheme)) {
    return usage();
  }
  auto policy = sim::make_policy(scheme, width / 16, height / 16);

  codec::EncoderConfig econfig;
  econfig.width = width;
  econfig.height = height;
  econfig.qp = args.get_int("qp", 10);
  econfig.deblocking = args.has("deblocking");
  codec::Encoder encoder(econfig, policy.get());

  std::unique_ptr<codec::RateController> rate;
  if (args.has("rate-kbps")) {
    codec::RateControlConfig rconfig;
    rconfig.target_kbps = args.get_double("rate-kbps", 64.0);
    rconfig.initial_qp = econfig.qp;
    rate = std::make_unique<codec::RateController>(rconfig);
  }

  codec::ContainerWriter writer(
      out, codec::ContainerHeader{width, height, econfig.qp});
  if (!writer.is_open()) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::uint64_t bytes = 0;
  for (const video::YuvFrame& frame : frames) {
    if (rate) encoder.set_qp(rate->qp());
    codec::EncodedFrame encoded = encoder.encode_frame(frame);
    if (rate) {
      rate->on_frame_encoded(encoded.size_bytes(),
                             encoded.type == codec::FrameType::kIntra);
    }
    bytes += encoded.size_bytes();
    if (!writer.write_frame(encoded)) {
      std::fprintf(stderr, "write error on %s\n", out.c_str());
      return 1;
    }
  }
  if (!writer.close()) return 1;
  std::printf("encoded %zu frames (%s, QP %d%s) -> %s, %.1f KB\n",
              frames.size(), scheme.label().c_str(), econfig.qp,
              rate ? ", rate-controlled" : "", out.c_str(), bytes / 1024.0);
  return 0;
}

int cmd_decode(const common::ArgParser& args) {
  const std::string in = args.get("in");
  const std::string out = args.get("out");
  if (in.empty() || out.empty()) return usage();
  codec::ContainerReader reader(in);
  if (!reader.is_open()) {
    std::fprintf(stderr, "cannot read container %s\n", in.c_str());
    return 1;
  }
  codec::DecoderConfig dconfig;
  dconfig.width = reader.header().width;
  dconfig.height = reader.header().height;
  dconfig.deblocking = args.has("deblocking");
  codec::Decoder decoder(dconfig);
  std::vector<video::YuvFrame> frames;
  codec::ReceivedFrame frame;
  while (reader.read_frame(&frame)) {
    frames.push_back(decoder.decode_frame(frame));
  }
  if (frames.empty()) {
    std::fprintf(stderr, "no frames decoded from %s\n", in.c_str());
    return 1;
  }
  if (!video::write_yuv_file(out, frames)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("decoded %zu frames of %dx%d -> %s\n", frames.size(),
              dconfig.width, dconfig.height, out.c_str());
  return 0;
}

int cmd_simulate(const common::ArgParser& args) {
  if (!apply_log_flags(args)) return 1;
  video::SequenceKind kind = video::SequenceKind::kForemanLike;
  std::string clip = args.get("clip", "foreman");
  if (clip == "akiyo") kind = video::SequenceKind::kAkiyoLike;
  if (clip == "garden") kind = video::SequenceKind::kGardenLike;

  const double plr = args.get_double("plr", 0.10);
  sim::SchemeSpec scheme;
  if (!parse_scheme(args.get("scheme", "pbpair"),
                    args.get_double("intra-th", 0.9), plr, &scheme)) {
    return usage();
  }

  // Observability: --trace (or PBPAIR_TRACE=1) turns the layer on; any
  // export flag implies it, since an empty trace helps nobody.
  const std::string trace_json = args.get("trace-json");
  const std::string metrics_json = args.get("metrics-json");
  const std::string frame_trace = args.get("frame-trace");
  if (args.has("trace") || !trace_json.empty() || !metrics_json.empty() ||
      !frame_trace.empty()) {
    obs::set_enabled(true);
    obs::set_thread_name("pbpair-simulate");
  }

  sim::PipelineConfig config;
  config.frames = args.get_int("frames", 120);
  config.encoder.qp = args.get_int("qp", 10);
  config.packetizer.mtu = static_cast<std::size_t>(args.get_int("mtu", 1400));
  config.frame_trace_path = frame_trace;
  config.frame_trace_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2005));
  apply_fault_flags(args, &config);
  if (!apply_fec_flags(args, &config)) return 2;
  // Leaving the optional unset (no --crc) keeps the stage list and every
  // output byte identical to a build without wire framing.
  if (args.has("crc")) config.wire = net::WireConfig{};

  video::SyntheticSequence sequence = video::make_paper_sequence(kind);
  net::UniformFrameLoss loss(plr, static_cast<std::uint64_t>(
                                      args.get_int("seed", 2005)));
  sim::PipelineResult r = sim::run_pipeline(sequence, scheme, &loss, config);

  if (!metrics_json.empty()) {
    std::FILE* f = std::fopen(metrics_json.c_str(), "w");
    if (f == nullptr) {
      PB_LOG_ERROR("cannot write %s", metrics_json.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n",
                 obs::Registry::global()
                     .to_json(/*deterministic=*/args.has("deterministic"))
                     .c_str());
    std::fclose(f);
    std::printf("metrics -> %s\n", metrics_json.c_str());
  }
  if (!trace_json.empty()) {
    if (!obs::write_chrome_trace(trace_json)) {
      PB_LOG_ERROR("cannot write %s", trace_json.c_str());
      return 1;
    }
    std::printf("trace -> %s (%zu spans)\n", trace_json.c_str(),
                obs::trace_span_count());
    warn_if_spans_dropped();
  }
  if (!frame_trace.empty()) {
    std::printf("frame trace -> %s\n", frame_trace.c_str());
  }

  sim::Table table({"scheme", "clip", "PLR", "PSNR_dB", "bad_px_M", "size_KB",
                    "encode_J", "tx_J"});
  table.add_row(
      {scheme.label(), clip, sim::format("%.2f", plr),
       sim::format("%.2f", r.avg_psnr_db),
       sim::format("%.3f", static_cast<double>(r.total_bad_pixels) / 1e6),
       sim::format("%.1f", static_cast<double>(r.total_bytes) / 1024.0),
       sim::format("%.3f", r.encode_energy.total_j()),
       sim::format("%.3f", r.tx_energy_j)});
  table.print();
  // FEC line: only when the stages ran, so a FEC-free run keeps the
  // classic output byte-for-byte.
  if (config.fec.has_value()) {
    std::printf(
        "fec: windows %llu  repair sent %llu (%.1f KB)  recovered %llu  "
        "unrecoverable windows %llu\n",
        static_cast<unsigned long long>(r.fec_encode.windows),
        static_cast<unsigned long long>(r.fec_encode.repair_packets),
        static_cast<double>(r.fec_encode.repair_bytes) / 1024.0,
        static_cast<unsigned long long>(r.fec_decode.packets_recovered),
        static_cast<unsigned long long>(r.fec_decode.windows_unrecoverable));
  }
  // CRC line, same deal: only a --crc run prints it.
  if (config.wire.has_value()) {
    std::printf(
        "crc: packets checked %llu  corrupted %llu (dropped to erasures)\n",
        static_cast<unsigned long long>(r.wire.packets_checked),
        static_cast<unsigned long long>(r.wire.crc_corrupted));
  }
  return 0;
}

int cmd_serve(const common::ArgParser& args) {
  if (!apply_log_flags(args)) return 1;
  const int sessions = args.get_int("sessions", 0);
  if (sessions <= 0) {
    PB_LOG_ERROR("serve needs --sessions N (N >= 1)");
    return usage();
  }
  const int frames = args.get_int("frames", 60);
  const double plr = args.get_double("plr", 0.10);
  const int rtt = args.get_int("rtt", 0);
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2005));

  sim::SchemeSpec scheme;
  if (!parse_scheme(args.get("scheme", "pbpair"),
                    args.get_double("intra-th", 0.9), plr, &scheme)) {
    return usage();
  }

  // Clips rotate over the paper's three so a multi-session mix exercises
  // the full motion-activity spectrum; each session gets its own seed.
  const video::SequenceKind kinds[] = {video::SequenceKind::kForemanLike,
                                       video::SequenceKind::kAkiyoLike,
                                       video::SequenceKind::kGardenLike};
  const char* kind_names[] = {"foreman", "akiyo", "garden"};

  // Live telemetry (DESIGN.md §10). Health tracking is always on in serve
  // — it only reads per-frame results, so outputs stay byte-identical
  // (tests/test_session_manager.cpp). The exporter is opt-in:
  // --metrics-port P binds 127.0.0.1:P, "auto" takes a kernel-assigned
  // ephemeral port (printed for scripts to parse), 0 (default) disables.
  const std::string metrics_port_arg = args.get("metrics-port", "0");
  const bool metrics_auto = metrics_port_arg == "auto";
  const int metrics_port =
      metrics_auto ? 0 : std::atoi(metrics_port_arg.c_str());
  const bool metrics_on = metrics_auto || metrics_port > 0;
  const int metrics_linger = args.get_int("metrics-linger", 0);

  // Post-mortem dumps (DESIGN.md §14): with --flight-dir, a session that
  // transitions to CRITICAL writes its flight-recorder ring to
  // DIR/flight_<label>.jsonl automatically.
  const std::string flight_dir = args.get("flight-dir");
  if (!flight_dir.empty()) {
    obs::FlightRegistry::global().set_dump_dir(flight_dir);
  }

  obs::HttpExporter exporter;
  if (metrics_on) {
    // /metrics is only useful with the metrics layer collecting.
    obs::set_enabled(true);
    obs::set_thread_name("pbpair-serve");
    const bool ok = exporter.start(metrics_port, [](const std::string& path) {
      obs::HttpResponse response;
      if (path == "/metrics") {
        response.body = obs::render_prometheus();
      } else if (path == "/healthz") {
        response.content_type = "application/json";
        response.body = obs::HealthRegistry::global().healthz_json() + "\n";
      } else if (path == "/flightrecorder") {
        // Index: the labels a /flightrecorder/<label> read can target.
        response.content_type = "application/json";
        std::string body = "{\"sessions\": [";
        bool first = true;
        for (const std::string& label :
             obs::FlightRegistry::global().labels()) {
          if (!first) body += ", ";
          first = false;
          body += "\"" + common::json_escape(label) + "\"";
        }
        body += "]}\n";
        response.body = std::move(body);
      } else if (path.compare(0, 16, "/flightrecorder/") == 0) {
        const std::string label = path.substr(16);
        const obs::FlightRecorder* recorder =
            obs::FlightRegistry::global().find(label);
        if (recorder == nullptr) {
          response.status = 404;
          response.content_type = "text/plain";
          response.body = "no flight recorder for session \"" + label +
                          "\"\n";
        } else {
          response.content_type = "application/x-ndjson";
          response.body = recorder->dump_jsonl();
        }
      } else {
        response.status = 404;
        response.content_type = "text/plain";
        response.body = "not found\n";
      }
      return response;
    });
    if (!ok) {
      PB_LOG_ERROR("cannot bind metrics port %d", metrics_port);
      return 1;
    }
    // Parsed by scripts (CI's monitor smoke) to find an "auto" port.
    std::printf("metrics: listening on 127.0.0.1:%d\n", exporter.port());
    std::fflush(stdout);
  }

  std::vector<sim::SessionSpec> specs;
  specs.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    sim::SessionSpec spec;
    spec.scheme = scheme;
    spec.config.frames = frames;
    spec.config.encoder.qp = args.get_int("qp", 10);
    spec.config.health = obs::HealthConfig{};
    apply_fault_flags(args, &spec.config);
    if (!apply_fec_flags(args, &spec.config)) return 2;
    if (args.has("crc")) spec.config.wire = net::WireConfig{};
    if (spec.config.faults.has_value()) {
      // Per-session offset so concurrent sessions damage independently.
      spec.config.faults->seed += static_cast<std::uint64_t>(i);
    }
    if (rtt > 0 && scheme.kind == sim::SchemeKind::kPbpair) {
      // Close the §3.2 loop per session: RTCP receiver reports reach the
      // probability model after the configured RTT.
      spec.config.feedback_rtt_frames = rtt;
      spec.config.on_feedback = [](int, const net::ReceiverReport& report,
                                   codec::RefreshPolicy& policy) {
        if (auto* p = dynamic_cast<core::PbpairPolicy*>(&policy)) {
          p->set_plr(report.fraction_lost_as_double());
        }
      };
    }
    // --sheddable marks every session DEGRADED-eligible: admission may
    // shed it under fleet pressure instead of serving it.
    spec.sheddable = args.has("sheddable");
    video::SyntheticSequence sequence =
        video::make_paper_sequence(kinds[i % 3]);
    spec.source = [sequence](int f) { return sequence.frame_at(f); };
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    spec.make_loss = [plr, seed] {
      return std::make_unique<net::UniformFrameLoss>(plr, seed);
    };
    specs.push_back(std::move(spec));
  }

  sim::SessionManager manager(std::move(specs));
  sim::SessionManagerOptions options;
  options.threads = args.get_int("threads", 0);
  options.frames_per_slice = args.get_int("slice", 0);
  // Admission control / load shedding (DESIGN.md §15): any of the three
  // flags enables the policy; without them every session is admitted and
  // construction is uncapped, exactly the pre-admission behaviour.
  const int admit_live = args.get_int("admit-live", 0);
  const int admit_queue = args.get_int("admit-queue", 0);
  if (admit_live > 0 || admit_queue > 0 || args.has("sheddable")) {
    sim::AdmissionConfig admission;
    admission.max_live_per_shard =
        admit_live > 0 ? static_cast<std::size_t>(admit_live) : 0;
    admission.shed_queue_depth =
        admit_queue > 0 ? static_cast<std::size_t>(admit_queue) : 0;
    options.admission = admission;
  }
  sim::AdmissionReport admission_report;
  std::vector<sim::PipelineResult> results =
      manager.run(options, &admission_report);
  if (options.admission.has_value()) {
    std::printf("admission: accepted %zu, queued %zu, shed %zu\n",
                admission_report.accepted, admission_report.queued,
                admission_report.shed);
  }

  if (sessions <= 16) {
    // With --crc the table splits wire damage out of loss: lost_pkts stays
    // the channel drops, crc_bad is what arrived corrupted.
    const bool crc_on = args.has("crc");
    std::vector<std::string> header = {"session", "clip",      "scheme",
                                       "PSNR_dB", "size_KB",   "lost_pkts",
                                       "encode_J", "tx_J"};
    if (crc_on) header.insert(header.begin() + 6, "crc_bad");
    sim::Table table(std::move(header));
    for (int i = 0; i < sessions; ++i) {
      const sim::PipelineResult& r = results[static_cast<std::size_t>(i)];
      const std::string label = sim::SessionManager::default_label(
          static_cast<std::size_t>(i), static_cast<std::size_t>(sessions));
      const bool shed =
          options.admission.has_value() &&
          admission_report.decisions[static_cast<std::size_t>(i)] ==
              sim::AdmitDecision::kShed;
      std::vector<std::string> row = {
          label, kind_names[i % 3], shed ? "(shed)" : scheme.label(),
          sim::format("%.2f", r.avg_psnr_db),
          sim::format("%.1f", static_cast<double>(r.total_bytes) / 1024.0),
          sim::format("%llu", static_cast<unsigned long long>(
                                  r.channel.packets_dropped)),
          sim::format("%.3f", r.encode_energy.total_j()),
          sim::format("%.3f", r.tx_energy_j)};
      if (crc_on) {
        row.insert(row.begin() + 6,
                   sim::format("%llu", static_cast<unsigned long long>(
                                           r.wire.crc_corrupted)));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }
  sim::SessionAggregate agg = sim::SessionManager::aggregate(results);
  std::printf("aggregate: %s\n", agg.to_json().c_str());
  std::fflush(stdout);
  if (metrics_on && metrics_linger > 0) {
    // Keep serving final /metrics & /healthz so scrapers (curl, monitor)
    // launched against a short run still get their two samples.
    std::this_thread::sleep_for(std::chrono::seconds(metrics_linger));
  }
  exporter.stop();
  return 0;
}

// --- pbpair monitor ------------------------------------------------------

bool read_text_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// Per-session values pulled out of one /metrics scrape.
struct MonitorSample {
  std::map<std::string, double> values;  // metric family -> value
  double get(const std::string& family) const {
    auto it = values.find(family);
    return it == values.end() ? 0.0 : it->second;
  }
};

/// session label -> its samples, for the families monitor consumes.
std::map<std::string, MonitorSample> index_scrape(const std::string& text,
                                                  bool* ok) {
  std::map<std::string, MonitorSample> by_session;
  std::vector<obs::PromSample> samples;
  *ok = obs::parse_prometheus_text(text, &samples);
  for (const obs::PromSample& s : samples) {
    if (s.session.empty()) continue;
    by_session[s.session].values[s.family] = s.value;
  }
  return by_session;
}

/// Unlabeled family -> value (the process-global counters, e.g. the fault
/// injector's net.fault.* and the depacketizer's drop counters).
std::map<std::string, double> index_globals(const std::string& text) {
  std::map<std::string, double> values;
  std::vector<obs::PromSample> samples;
  if (!obs::parse_prometheus_text(text, &samples)) return values;
  for (const obs::PromSample& s : samples) {
    if (s.session.empty()) values[s.family] = s.value;
  }
  return values;
}

int cmd_monitor(const common::ArgParser& args) {
  if (!apply_log_flags(args)) return 1;
  const std::string from = args.get("from");
  const std::string to = args.get("to");
  const std::string host = args.get("host", "127.0.0.1");
  const int port = args.get_int("port", 0);
  const bool json_mode = args.has("json");
  const double interval = args.get_double("interval", 2.0);
  if (interval <= 0.0) {
    PB_LOG_ERROR("--interval must be positive");
    return 1;
  }

  std::string scrape1, scrape2;
  if (!from.empty() || !to.empty()) {
    // Offline mode: two saved /metrics scrapes, `interval` seconds apart.
    if (from.empty() || to.empty()) {
      PB_LOG_ERROR("monitor needs both --from and --to (or --port)");
      return usage();
    }
    if (!read_text_file(from, &scrape1)) {
      PB_LOG_ERROR("cannot read %s", from.c_str());
      return 1;
    }
    if (!read_text_file(to, &scrape2)) {
      PB_LOG_ERROR("cannot read %s", to.c_str());
      return 1;
    }
  } else {
    if (port <= 0) {
      PB_LOG_ERROR("monitor needs --port P (or --from/--to files)");
      return usage();
    }
    int status = 0;
    if (!obs::http_get(host, port, "/metrics", &scrape1, &status) ||
        status != 200) {
      PB_LOG_ERROR("scrape of http://%s:%d/metrics failed (status %d)",
                   host.c_str(), port, status);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    if (!obs::http_get(host, port, "/metrics", &scrape2, &status) ||
        status != 200) {
      PB_LOG_ERROR("second scrape of http://%s:%d/metrics failed (status %d)",
                   host.c_str(), port, status);
      return 1;
    }
  }

  bool ok1 = false, ok2 = false;
  std::map<std::string, MonitorSample> before = index_scrape(scrape1, &ok1);
  std::map<std::string, MonitorSample> after = index_scrape(scrape2, &ok2);
  if (!ok1 || !ok2) {
    PB_LOG_ERROR("malformed Prometheus text in scrape");
    return 1;
  }
  if (after.empty()) {
    std::printf("no per-session samples in scrape\n");
    return 1;
  }

  // CRC-framed sessions (DESIGN.md §13) export a crc_corrupted counter
  // (present even at zero), which splits wire damage out of loss: lost/s
  // counts packets that never arrived, corrupt/s the ones that arrived but
  // failed their CRC64 trailer. Without it the classic table is printed
  // unchanged.
  bool crc_on = false;
  for (const auto& [label, now] : after) {
    crc_on = crc_on ||
             now.values.count("pbpair_session_crc_corrupted_total") > 0;
  }
  std::vector<std::string> header = {"session", "frames/s", "PSNR_dB",
                                     "eff_PLR"};
  if (crc_on) {
    header.push_back("lost/s");
    header.push_back("corrupt/s");
  }
  header.insert(header.end(), {"intra", "J/frame", "health"});
  sim::Table table(std::move(header));
  for (const auto& [label, now] : after) {
    const MonitorSample& then = before.count(label)
                                    ? before.at(label)
                                    : MonitorSample{};
    const double d_frames = now.get("pbpair_session_frames_total") -
                            then.get("pbpair_session_frames_total");
    const double d_sent = now.get("pbpair_session_packets_sent_total") -
                          then.get("pbpair_session_packets_sent_total");
    const double d_delivered =
        now.get("pbpair_session_packets_delivered_total") -
        then.get("pbpair_session_packets_delivered_total");
    const double d_intra = now.get("pbpair_session_intra_mbs_total") -
                           then.get("pbpair_session_intra_mbs_total");
    const double d_mbs = now.get("pbpair_session_mbs_total") -
                         then.get("pbpair_session_mbs_total");
    const double d_uj = now.get("pbpair_session_energy_uj_total") -
                        then.get("pbpair_session_energy_uj_total");
    const double eff_plr = d_sent > 0 ? 1.0 - d_delivered / d_sent : 0.0;
    const int state =
        static_cast<int>(now.get("pbpair_session_health_state") + 0.5);
    if (json_mode) {
      // One JSONL object per session per refresh, stable schema (the
      // lost/corrupt rates are present even without --crc, at zero) so
      // downstream pipelines never branch on table shape.
      const double d_corrupt =
          now.get("pbpair_session_crc_corrupted_total") -
          then.get("pbpair_session_crc_corrupted_total");
      std::printf(
          "{\"session\": \"%s\", \"frames_per_s\": %.3f, "
          "\"psnr_db\": %.2f, \"eff_plr\": %.4f, \"lost_per_s\": %.3f, "
          "\"corrupt_per_s\": %.3f, \"intra_ratio\": %.4f, "
          "\"j_per_frame\": %.6f, \"health\": \"%s\"}\n",
          common::json_escape(label).c_str(), d_frames / interval,
          now.get("pbpair_session_psnr_db"), eff_plr,
          (d_sent - d_delivered) / interval, d_corrupt / interval,
          d_mbs > 0 ? d_intra / d_mbs : 0.0,
          d_frames > 0 ? d_uj / 1e6 / d_frames : 0.0,
          obs::health_state_name(static_cast<obs::HealthState>(state)));
      continue;
    }
    std::vector<std::string> row = {
        label, sim::format("%.1f", d_frames / interval),
        sim::format("%.2f", now.get("pbpair_session_psnr_db")),
        sim::format("%.3f", eff_plr)};
    if (crc_on) {
      const double d_corrupt =
          now.get("pbpair_session_crc_corrupted_total") -
          then.get("pbpair_session_crc_corrupted_total");
      const double d_lost = d_sent - d_delivered;
      row.push_back(sim::format("%.1f", d_lost / interval));
      row.push_back(sim::format("%.1f", d_corrupt / interval));
    }
    row.push_back(sim::format("%.3f", d_mbs > 0 ? d_intra / d_mbs : 0.0));
    row.push_back(
        sim::format("%.4f", d_frames > 0 ? d_uj / 1e6 / d_frames : 0.0));
    row.push_back(
        obs::health_state_name(static_cast<obs::HealthState>(state)));
    table.add_row(std::move(row));
  }
  if (json_mode) {
    // Machine mode is per-session JSONL only: the damage/wire summary
    // lines below are human-format prose and would corrupt the stream.
    std::fflush(stdout);
    return 0;
  }
  table.print();

  // Damage line (DESIGN.md §11): printed only when the fault-injection /
  // hardening counters moved between the scrapes, so a clean channel
  // keeps the classic output.
  const std::map<std::string, double> g_then = index_globals(scrape1);
  const std::map<std::string, double> g_now = index_globals(scrape2);
  const auto delta = [&](const char* family) {
    const auto then_it = g_then.find(family);
    const auto now_it = g_now.find(family);
    return (now_it == g_now.end() ? 0.0 : now_it->second) -
           (then_it == g_then.end() ? 0.0 : then_it->second);
  };
  const double d_bits = delta("pbpair_net_fault_bits_flipped_total");
  const double d_hdrs = delta("pbpair_net_fault_headers_corrupted_total");
  const double d_trunc = delta("pbpair_net_fault_payloads_truncated_total");
  const double d_dup = delta("pbpair_net_fault_packets_duplicated_total");
  const double d_reord = delta("pbpair_net_fault_packets_reordered_total");
  const double d_unparse = delta("pbpair_net_fault_dropped_unparseable_total");
  const double d_badhdr = delta("pbpair_net_dropped_bad_header_total");
  const double d_orphan =
      delta("pbpair_net_dropped_orphan_continuation_total");
  if (d_bits + d_hdrs + d_trunc + d_dup + d_reord + d_unparse + d_badhdr +
          d_orphan >
      0.0) {
    std::printf(
        "damage/s: bits %.1f  hdr_corrupt %.1f  truncated %.1f  dup %.1f  "
        "reorder %.1f  unparseable %.1f  bad_hdr_drop %.1f  "
        "orphan_drop %.1f\n",
        d_bits / interval, d_hdrs / interval, d_trunc / interval,
        d_dup / interval, d_reord / interval, d_unparse / interval,
        d_badhdr / interval, d_orphan / interval);
  }

  // Wire line (DESIGN.md §13): CRC verdict rates plus the per-packet
  // net.wire.ns latency quantiles, from the histogram's cumulative bucket
  // deltas. Printed only when packets were CRC-checked between the
  // scrapes, so a CRC-off serve keeps the classic output.
  const double d_crc_ok = delta("pbpair_net_crc_ok_total");
  const double d_crc_bad = delta("pbpair_net_crc_corrupted_total");
  if (d_crc_ok + d_crc_bad > 0.0) {
    // (le upper bound, delta of the cumulative count), sorted by le. The
    // parser keeps non-session labels on the family string, so bucket
    // families look like `pbpair_net_wire_ns_bucket{le="1024"}`.
    const std::string bucket_prefix = "pbpair_net_wire_ns_bucket{le=\"";
    std::map<double, double> buckets;
    for (const auto& [family, value] : g_now) {
      if (family.compare(0, bucket_prefix.size(), bucket_prefix) != 0) {
        continue;
      }
      std::string le_text = family.substr(bucket_prefix.size());
      le_text.resize(le_text.find('"'));
      const double le =
          le_text == "+Inf" ? 1e308 : std::atof(le_text.c_str());
      const auto then_it = g_then.find(family);
      buckets[le] =
          value - (then_it == g_then.end() ? 0.0 : then_it->second);
    }
    const double d_count = delta("pbpair_net_wire_ns_count");
    const auto quantile = [&](double q) {
      for (const auto& [le, cumulative] : buckets) {
        if (cumulative >= q * d_count) return le;
      }
      return 1e308;
    };
    std::printf("wire/s: crc_ok %.1f  crc_corrupt %.1f", d_crc_ok / interval,
                d_crc_bad / interval);
    if (d_count > 0.0 && !buckets.empty()) {
      const double p50 = quantile(0.50);
      const double p99 = quantile(0.99);
      std::printf("  p50<=%s  p99<=%s",
                  p50 >= 1e308 ? ">max" : sim::format("%.0fns", p50).c_str(),
                  p99 >= 1e308 ? ">max" : sim::format("%.0fns", p99).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

// --- pbpair fuzz ---------------------------------------------------------

int cmd_fuzz(const common::ArgParser& args) {
  if (!apply_log_flags(args)) return 1;
  sim::FuzzOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
  options.iterations = args.get_int("iters", 2000);
  options.target = args.get("fuzz-target", "all");
  options.crash_dir = args.get("crash-dir");
  if (options.iterations <= 0) {
    PB_LOG_ERROR("--iters must be positive");
    return 1;
  }

  sim::FuzzReport report;
  if (!sim::run_fuzz(options, &report)) {
    PB_LOG_ERROR("unknown --fuzz-target %s", options.target.c_str());
    return usage();
  }
  // Reaching this line IS the verdict: a contract violation would have
  // aborted (PB_CHECK) or tripped the sanitizers before we got here.
  for (const auto& [name, count] : report.iterations_per_target) {
    std::printf("fuzz %-12s %llu iterations\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("fuzz ok: %llu iterations (seed %llu), %llu MBs concealed, "
              "%llu hostile inputs rejected by parsers\n",
              static_cast<unsigned long long>(report.total_iterations),
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(report.decoder_concealed_mbs),
              static_cast<unsigned long long>(report.parse_rejects));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  common::ArgParser args(argc - 1, argv + 1);

  int result;
  if (command == "encode") {
    result = cmd_encode(args);
  } else if (command == "decode") {
    result = cmd_decode(args);
  } else if (command == "simulate") {
    result = cmd_simulate(args);
  } else if (command == "serve") {
    result = cmd_serve(args);
  } else if (command == "monitor") {
    result = cmd_monitor(args);
  } else if (command == "fuzz") {
    result = cmd_fuzz(args);
  } else {
    return usage();
  }
  for (const std::string& flag : args.unknown_flags()) {
    std::fprintf(stderr, "warning: unrecognized flag --%s\n", flag.c_str());
  }
  return result;
}
