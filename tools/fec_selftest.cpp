// fec_selftest — dependency-free GF(256)/Reed–Solomon property check.
//
// Verifies the FEC stack's arithmetic and recovery guarantees with no
// gtest dependency, so the CI aarch64 cross-compile job can execute it
// under qemu-user next to kernel_selftest: the field tables against an
// independent carry-less reference multiply (exhaustively), inverses,
// generator order, the big-endian repair wire format against fixed
// known-answer bytes (catches byte-order bugs off-x86), and randomized
// any-k-of-(k+m) window recovery for both schemes. Exit 0 = all
// properties hold; exit 1 = failure (details on stdout).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/fec.h"
#include "net/gf256.h"
#include "net/packet.h"

using namespace pbpair;

namespace {

int g_failures = 0;

void fail(const char* what) {
  std::printf("FAIL: %s\n", what);
  ++g_failures;
}

// Carry-less "Russian peasant" multiply over the same primitive
// polynomial — shares no code with the log/exp tables under test.
std::uint8_t ref_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t x = a;
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= static_cast<std::uint8_t>(x);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
    b >>= 1;
  }
  return result;
}

void check_field() {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      if (net::gf256_mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)) !=
          ref_mul(static_cast<std::uint8_t>(a),
                  static_cast<std::uint8_t>(b))) {
        fail("gf256_mul disagrees with reference multiply");
        return;
      }
    }
  }
  for (int a = 1; a < 256; ++a) {
    if (net::gf256_mul(static_cast<std::uint8_t>(a),
                       net::gf256_inv(static_cast<std::uint8_t>(a))) != 1) {
      fail("gf256_inv is not a multiplicative inverse");
      return;
    }
  }
  bool seen[256] = {false};
  for (unsigned i = 0; i < 255; ++i) {
    const std::uint8_t v = net::gf256_exp(i);
    if (v == 0 || seen[v]) {
      fail("generator 2 does not have full order 255");
      return;
    }
    seen[v] = true;
  }
  std::printf("field    tables match reference; all inverses ok\n");
}

void check_wire_format() {
  // Fixed known-answer vector: the repair payload header must serialize
  // to these exact big-endian bytes on EVERY architecture.
  net::FecRepairHeader header;
  header.scheme = static_cast<std::uint8_t>(net::FecScheme::kReedSolomon);
  header.k = 5;
  header.m = 3;
  header.repair_index = 2;
  header.base_sequence = 0xABCD;
  header.symbol_len = 4;
  const std::vector<std::uint8_t> symbol = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::vector<std::uint8_t> payload =
      net::serialize_repair_payload(header, symbol);
  const std::uint8_t expected[] = {0x02, 0x05, 0x03, 0x02, 0xAB, 0xCD,
                                   0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF};
  if (payload.size() != sizeof(expected) ||
      std::memcmp(payload.data(), expected, sizeof(expected)) != 0) {
    fail("repair payload wire bytes are not the big-endian known answer");
  }
  net::Packet packet;
  packet.header.payload_type = net::kPayloadTypeFec;
  packet.payload = payload;
  net::FecRepairHeader parsed;
  if (!net::parse_repair_header(packet, &parsed) ||
      parsed.scheme != header.scheme || parsed.k != header.k ||
      parsed.m != header.m || parsed.repair_index != header.repair_index ||
      parsed.base_sequence != header.base_sequence ||
      parsed.symbol_len != header.symbol_len) {
    fail("repair header does not round-trip through parse");
  }
  // Hostile geometry must be rejected, not trusted.
  net::Packet bad = packet;
  bad.payload.mutable_data()[1] = net::kMaxFecK + 1;
  if (net::parse_repair_header(bad, &parsed)) {
    fail("out-of-bounds k accepted by parse_repair_header");
  }
  bad = packet;
  bad.payload.resize(bad.payload.size() - 1);
  if (net::parse_repair_header(bad, &parsed)) {
    fail("truncated repair payload accepted by parse_repair_header");
  }
  std::printf("wire     big-endian known-answer + hostile rejects ok\n");
}

std::vector<net::Packet> make_window(int k, common::Pcg32& rng) {
  std::vector<net::Packet> packets;
  for (int i = 0; i < k; ++i) {
    net::Packet p;
    p.header.sequence = static_cast<std::uint16_t>(1000 + i);
    p.header.timestamp = 9;
    p.header.ssrc = 0x5005;
    p.header.num_gobs = 1;
    p.header.marker = i == k - 1;
    p.payload.resize(8 + rng.next_below(120));
    std::uint8_t* bytes = p.payload.mutable_data();
    for (std::size_t j = 0; j < p.payload.size(); ++j) {
      bytes[j] = static_cast<std::uint8_t>(rng.next_u32());
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

void check_recovery() {
  common::Pcg32 rng(20260808, 1);
  for (int trial = 0; trial < 120; ++trial) {
    const bool use_xor = trial % 4 == 0;
    net::FecConfig config;
    config.scheme =
        use_xor ? net::FecScheme::kXorParity : net::FecScheme::kReedSolomon;
    config.k = 1 + static_cast<int>(rng.next_below(net::kMaxFecK));
    config.m = use_xor
                   ? 1
                   : 1 + static_cast<int>(rng.next_below(net::kMaxFecM));
    net::FecEncoder encoder(config);
    std::vector<net::Packet> window = make_window(config.k, rng);
    std::vector<std::vector<std::uint8_t>> original;
    for (const net::Packet& p : window) {
      original.push_back(net::serialize_packet(p));
    }
    if (encoder.protect(&window) != config.m) {
      fail("encoder did not append m repair packets");
      return;
    }

    // Lose e <= min(k, m) random data packets and all but e repairs.
    const int e = 1 + static_cast<int>(rng.next_below(static_cast<std::uint32_t>(
                          std::min(config.k, config.m))));
    std::vector<int> data_order(static_cast<std::size_t>(config.k));
    for (int i = 0; i < config.k; ++i) data_order[i] = i;
    for (int i = config.k - 1; i > 0; --i) {
      std::swap(data_order[i],
                data_order[rng.next_below(static_cast<std::uint32_t>(i + 1))]);
    }
    std::vector<int> repair_order(static_cast<std::size_t>(config.m));
    for (int i = 0; i < config.m; ++i) repair_order[i] = i;
    for (int i = config.m - 1; i > 0; --i) {
      std::swap(repair_order[i],
                repair_order[rng.next_below(static_cast<std::uint32_t>(i + 1))]);
    }
    std::vector<net::Packet> delivered;
    for (int i = 0; i < config.k; ++i) {
      if (std::find(data_order.begin(), data_order.begin() + e, i) ==
          data_order.begin() + e) {
        delivered.push_back(window[static_cast<std::size_t>(i)]);
      }
    }
    for (int r = 0; r < e; ++r) {
      delivered.push_back(
          window[static_cast<std::size_t>(config.k + repair_order[r])]);
    }

    net::FecDecoder decoder;
    const std::vector<net::Packet> out =
        decoder.process(std::move(delivered));
    if (out.size() != static_cast<std::size_t>(config.k)) {
      std::printf("  trial %d: k=%d m=%d e=%d got %zu packets\n", trial,
                  config.k, config.m, e, out.size());
      fail("recovery did not restore the full window");
      return;
    }
    for (int i = 0; i < config.k; ++i) {
      if (net::serialize_packet(out[static_cast<std::size_t>(i)]) !=
          original[static_cast<std::size_t>(i)]) {
        std::printf("  trial %d: k=%d m=%d e=%d packet %d differs\n", trial,
                    config.k, config.m, e, i);
        fail("recovered packet is not bit-identical to the original");
        return;
      }
    }
  }
  std::printf("recover  120 randomized any-k-of-(k+m) windows bit-exact\n");
}

}  // namespace

int main() {
  check_field();
  check_wire_format();
  check_recovery();
  std::printf(g_failures == 0 ? "fec_selftest: OK\n"
                              : "fec_selftest: %d failures\n",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
