// kernel_selftest — dependency-free cross-backend equivalence check.
//
// Verifies that every supported backend reproduces the scalar reference
// bit-for-bit on every kernel in the dispatch table: SAD values, early-exit
// row counts, batched-SAD lanes, half-pel phases, DCT/IDCT coefficients,
// quant levels and nonzero counts, MC predictions, and residual blocks.
//
// This is deliberately NOT a gtest binary: it is the smoke test the CI
// aarch64 cross-compile job runs under qemu-user, where only the standard
// library exists for the target. It registers with ctest in every build
// mode, so the same binary guards native runs too. Exit 0 = all backends
// bit-identical; exit 1 = mismatch (details on stdout).
#include <cstdio>
#include <cstring>
#include <vector>

#include "codec/kernels/kernels.h"
#include "codec/quant.h"
#include "common/rng.h"

using namespace pbpair;
using codec::kernels::Backend;
using codec::kernels::KernelTable;

namespace {

constexpr int kStride = 61;  // odd: exercises every load alignment
constexpr int kRows = 96;

struct Field {
  std::vector<std::uint8_t> data;
  explicit Field(std::uint64_t seed) : data(kStride * kRows) {
    common::Pcg32 rng(seed);
    for (std::uint8_t& p : data) {
      p = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  const std::uint8_t* at(int x, int y) const {
    return data.data() + static_cast<std::size_t>(y) * kStride + x;
  }
};

int g_failures = 0;

void fail(const char* backend, const char* kernel, int trial) {
  std::printf("MISMATCH: %s disagrees with scalar on %s (trial %d)\n",
              backend, kernel, trial);
  ++g_failures;
}

void check_backend(const KernelTable& scalar, const KernelTable& simd) {
  const Field cur(1), ref(2);
  common::Pcg32 rng(3);

  for (int trial = 0; trial < 300; ++trial) {
    const int cx = rng.next_in_range(0, kStride - 17);
    const int cy = rng.next_in_range(0, kRows - 17);
    const int rx = rng.next_in_range(0, kStride - 17);
    const int ry = rng.next_in_range(0, kRows - 17);
    std::int64_t cutoff;
    switch (trial % 4) {
      case 0: cutoff = rng.next_in_range(-5, 5); break;
      case 1: cutoff = rng.next_in_range(1, 4000); break;
      case 2: cutoff = rng.next_in_range(4000, 40000); break;
      default: cutoff = 1'000'000; break;
    }

    if (scalar.sad_16x16(cur.at(cx, cy), kStride, ref.at(rx, ry), kStride) !=
        simd.sad_16x16(cur.at(cx, cy), kStride, ref.at(rx, ry), kStride)) {
      fail(simd.name, "sad_16x16", trial);
    }
    if (scalar.sad_self_16x16(cur.at(cx, cy), kStride) !=
        simd.sad_self_16x16(cur.at(cx, cy), kStride)) {
      fail(simd.name, "sad_self_16x16", trial);
    }
    int want_rows = -1, got_rows = -1;
    std::int64_t want =
        scalar.sad_16x16_cutoff(cur.at(cx, cy), kStride, ref.at(rx, ry),
                                kStride, cutoff, &want_rows);
    std::int64_t got = simd.sad_16x16_cutoff(
        cur.at(cx, cy), kStride, ref.at(rx, ry), kStride, cutoff, &got_rows);
    if (want != got || want_rows != got_rows) {
      fail(simd.name, "sad_16x16_cutoff", trial);
    }

    const int hx = trial & 1;
    const int hy = (trial >> 1) & 1;
    want = scalar.sad_16x16_hpel_cutoff(cur.at(cx, cy), kStride,
                                        ref.at(rx, ry), kStride, hx, hy,
                                        cutoff, &want_rows);
    got = simd.sad_16x16_hpel_cutoff(cur.at(cx, cy), kStride, ref.at(rx, ry),
                                     kStride, hx, hy, cutoff, &got_rows);
    if (want != got || want_rows != got_rows) {
      fail(simd.name, "sad_16x16_hpel_cutoff", trial);
    }

    const std::uint8_t* refs[8];
    std::int64_t lane_want[8], lane4[4], lane8[8];
    for (int i = 0; i < 8; ++i) {
      refs[i] = ref.at((rx + 3 * i) % (kStride - 16),
                       (ry + 5 * i) % (kRows - 16));
      lane_want[i] = scalar.sad_16x16(cur.at(cx, cy), kStride, refs[i],
                                      kStride);
    }
    simd.sad_16x16_x4(cur.at(cx, cy), kStride, refs, kStride, lane4);
    simd.sad_16x16_x8(cur.at(cx, cy), kStride, refs, kStride, lane8);
    for (int i = 0; i < 4; ++i) {
      if (lane_want[i] != lane4[i]) fail(simd.name, "sad_16x16_x4", trial);
    }
    for (int i = 0; i < 8; ++i) {
      if (lane_want[i] != lane8[i]) fail(simd.name, "sad_16x16_x8", trial);
    }

    const int w = trial % 2 == 0 ? 16 : 8;
    std::uint8_t pred_want[16 * 16], pred_got[16 * 16];
    scalar.mc_predict(ref.at(rx, ry), kStride, pred_want, w, w, hx, hy);
    simd.mc_predict(ref.at(rx, ry), kStride, pred_got, w, w, hx, hy);
    if (std::memcmp(pred_want, pred_got, static_cast<std::size_t>(w) * w) !=
        0) {
      fail(simd.name, "mc_predict", trial);
    }

    std::int16_t res_want[64], res_got[64];
    scalar.sub_pred_8x8(cur.at(cx, cy), kStride, ref.at(rx, ry), kStride,
                        res_want);
    simd.sub_pred_8x8(cur.at(cx, cy), kStride, ref.at(rx, ry), kStride,
                      res_got);
    if (std::memcmp(res_want, res_got, sizeof(res_want)) != 0) {
      fail(simd.name, "sub_pred_8x8", trial);
    }
    std::int16_t residual[64];
    for (std::int16_t& v : residual) {
      v = static_cast<std::int16_t>(rng.next_in_range(-2048, 2047));
    }
    std::uint8_t px_want[64], px_got[64];
    scalar.add_pred_8x8(px_want, 8, ref.at(rx, ry), kStride, residual);
    simd.add_pred_8x8(px_got, 8, ref.at(rx, ry), kStride, residual);
    if (std::memcmp(px_want, px_got, sizeof(px_want)) != 0) {
      fail(simd.name, "add_pred_8x8", trial);
    }

    std::int16_t block[64], dct_want[64], dct_got[64];
    const int lo = trial % 3 == 0 ? 0 : (trial % 3 == 1 ? -255 : -2048);
    const int hi = trial % 3 == 0 ? 255 : (trial % 3 == 1 ? 255 : 2047);
    for (std::int16_t& v : block) {
      v = static_cast<std::int16_t>(rng.next_in_range(lo, hi));
    }
    scalar.forward_dct_8x8(block, dct_want);
    simd.forward_dct_8x8(block, dct_got);
    if (std::memcmp(dct_want, dct_got, sizeof(dct_want)) != 0) {
      fail(simd.name, "forward_dct_8x8", trial);
    }
    scalar.inverse_dct_8x8(block, dct_want);
    simd.inverse_dct_8x8(block, dct_got);
    if (std::memcmp(dct_want, dct_got, sizeof(dct_want)) != 0) {
      fail(simd.name, "inverse_dct_8x8", trial);
    }

    const int qp = codec::kMinQp +
                   trial % (codec::kMaxQp - codec::kMinQp + 1);
    const bool intra = (trial & 1) != 0;
    const int first = intra ? 1 : 0;
    std::int16_t q_want[64], q_got[64];
    std::memcpy(q_want, block, sizeof(block));
    std::memcpy(q_got, block, sizeof(block));
    const int nz_want = scalar.quantize_ac(q_want, first, qp, intra);
    const int nz_got = simd.quantize_ac(q_got, first, qp, intra);
    if (nz_want != nz_got ||
        std::memcmp(q_want, q_got, sizeof(q_want)) != 0) {
      fail(simd.name, "quantize_ac", trial);
    }
    scalar.dequantize_ac(q_want, first, qp);
    simd.dequantize_ac(q_got, first, qp);
    if (std::memcmp(q_want, q_got, sizeof(q_want)) != 0) {
      fail(simd.name, "dequantize_ac", trial);
    }
  }
}

}  // namespace

int main() {
  const KernelTable& scalar = codec::kernels::scalar_table();
  for (Backend backend : codec::kernels::supported_backends()) {
    const KernelTable* table = codec::kernels::table_for(backend);
    if (table == nullptr) {
      std::printf("FAIL: supported backend %s has no table\n",
                  codec::kernels::backend_name(backend));
      return 1;
    }
    if (backend == Backend::kScalar) continue;
    const int before = g_failures;
    check_backend(scalar, *table);
    std::printf("%-8s %s\n", table->name,
                g_failures == before ? "bit-identical to scalar" : "FAILED");
  }
  if (codec::kernels::supported_backends().size() == 1) {
    std::printf("scalar backend only on this machine; dispatch sanity ok\n");
  }
  std::printf(g_failures == 0 ? "kernel_selftest: OK\n"
                              : "kernel_selftest: %d mismatches\n",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
