// check_bench_regression — CI gate over BENCH_*.json reports.
//
//   check_bench_regression --baseline BENCH_kernels.json
//                          --current build/BENCH_kernels.json
//                          [--threshold 0.25] [--mode kernels|fec|wire]
//
// Mode "kernels" (default) diffs per-kernel ns/call numbers and exits 1
// when any grew by more than the threshold (default +25%) or a baseline
// kernel vanished from the current report. Mode "fec" diffs the
// BENCH_fec.json trade-off matrix row by row: recovery_rate may not fall
// more than the threshold ABSOLUTE below the baseline, j_per_frame may
// not grow more than the threshold RELATIVE above it, and a vanished row
// fails while a row with no committed baseline only warns. Mode "wire"
// diffs BENCH_wire.json the same way: copy_reduction may not fall more
// than the threshold ABSOLUTE below the baseline (packets_per_s is
// wall-clock and never gated). Mode "obs" diffs BENCH_obs.json: the
// bump/* rows' ns_per_op and the pipeline/* rows' overhead_ratio may not
// grow more than the threshold RELATIVE above the baseline (both are
// wall-clock, so CI uses a generous threshold). Mode "sessions" diffs
// BENCH_sessions.json scaling-curve rows: sessions_per_sec may not fall
// below current * (1 + threshold) under the baseline (throughput floor)
// and p99_frame_ms may not grow more than the threshold RELATIVE above
// it (latency ceiling; the p99 comes from log2-bucket histograms, so CI
// gates with threshold >= 1.0 to allow one power-of-two bucket jump).
// Exit 2 = usage/parse error.
// Better-than-baseline results are reported but never fail — baselines
// are refreshed by re-running the bench and committing the new file.
#include <cstdio>
#include <string>

#include "common/args.h"
#include "common/json.h"
#include "obs/bench_compare.h"
#include "sim/report.h"

using namespace pbpair;

int main(int argc, char** argv) {
  common::ArgParser args(argc, argv);
  const std::string baseline_path = args.get("baseline");
  const std::string current_path = args.get("current");
  const double threshold = args.get_double("threshold", 0.25);
  const std::string mode = args.get("mode", "kernels");
  if (baseline_path.empty() || current_path.empty() || threshold < 0.0 ||
      (mode != "kernels" && mode != "fec" && mode != "wire" &&
       mode != "obs" && mode != "sessions")) {
    std::fprintf(
        stderr,
        "usage: check_bench_regression --baseline FILE --current "
        "FILE [--threshold 0.25] [--mode kernels|fec|wire|obs|sessions]\n");
    return 2;
  }

  common::JsonValue baseline, current;
  std::string error;
  if (!common::parse_json_file(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "baseline %s: %s\n", baseline_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!common::parse_json_file(current_path, &current, &error)) {
    std::fprintf(stderr, "current %s: %s\n", current_path.c_str(),
                 error.c_str());
    return 2;
  }

  if (mode == "fec") {
    obs::FecComparison comparison =
        obs::compare_fec_reports(baseline, current, threshold);
    if (comparison.deltas.empty() && comparison.missing_rows.empty()) {
      std::fprintf(stderr, "no comparable fec_rows found in %s\n",
                   baseline_path.c_str());
      return 2;
    }
    sim::Table table(
        {"row", "field", "baseline", "current", "delta", "verdict"});
    for (const obs::FecDelta& d : comparison.deltas) {
      const bool relative = d.field == "j_per_frame";
      table.add_row(
          {d.row, d.field, sim::format("%.4f", d.baseline),
           sim::format("%.4f", d.current),
           relative ? sim::format("%+.1f%%", d.baseline > 0.0
                                                 ? (d.current / d.baseline -
                                                    1.0) * 100.0
                                                 : 0.0)
                    : sim::format("%+.3f", d.current - d.baseline),
           d.regression ? "REGRESSION" : "ok"});
    }
    table.print();
    for (const std::string& name : comparison.missing_rows) {
      std::printf("MISSING: row \"%s\" is in the baseline but not in the "
                  "current report\n",
                  name.c_str());
    }
    for (const std::string& name : comparison.unknown_rows) {
      std::printf("WARNING: row \"%s\" has no baseline yet (measured but "
                  "not gated; refresh %s to start gating it)\n",
                  name.c_str(), baseline_path.c_str());
    }
    if (!comparison.ok()) {
      std::printf("FAIL: FEC recovery_rate / J-per-frame regression beyond "
                  "threshold %.2f (or missing row) vs %s\n",
                  threshold, baseline_path.c_str());
      return 1;
    }
    std::printf("OK: all FEC rows within threshold %.2f of the baseline\n",
                threshold);
    return 0;
  }

  if (mode == "wire") {
    obs::WireComparison comparison =
        obs::compare_wire_reports(baseline, current, threshold);
    if (comparison.deltas.empty() && comparison.missing_rows.empty()) {
      std::fprintf(stderr, "no comparable wire_rows found in %s\n",
                   baseline_path.c_str());
      return 2;
    }
    sim::Table table(
        {"row", "field", "baseline", "current", "delta", "verdict"});
    for (const obs::WireDelta& d : comparison.deltas) {
      table.add_row({d.row, d.field, sim::format("%.4f", d.baseline),
                     sim::format("%.4f", d.current),
                     sim::format("%+.3f", d.current - d.baseline),
                     d.regression ? "REGRESSION" : "ok"});
    }
    table.print();
    for (const std::string& name : comparison.missing_rows) {
      std::printf("MISSING: row \"%s\" is in the baseline but not in the "
                  "current report\n",
                  name.c_str());
    }
    for (const std::string& name : comparison.unknown_rows) {
      std::printf("WARNING: row \"%s\" has no baseline yet (measured but "
                  "not gated; refresh %s to start gating it)\n",
                  name.c_str(), baseline_path.c_str());
    }
    if (!comparison.ok()) {
      std::printf("FAIL: copy_reduction regression beyond threshold %.2f "
                  "(or missing row) vs %s\n",
                  threshold, baseline_path.c_str());
      return 1;
    }
    std::printf("OK: all wire rows within threshold %.2f of the baseline\n",
                threshold);
    return 0;
  }

  if (mode == "obs") {
    obs::ObsComparison comparison =
        obs::compare_obs_reports(baseline, current, threshold);
    if (comparison.deltas.empty() && comparison.missing_rows.empty()) {
      std::fprintf(stderr, "no comparable obs_rows found in %s\n",
                   baseline_path.c_str());
      return 2;
    }
    sim::Table table(
        {"row", "field", "baseline", "current", "delta", "verdict"});
    for (const obs::ObsDelta& d : comparison.deltas) {
      table.add_row(
          {d.row, d.field, sim::format("%.4f", d.baseline),
           sim::format("%.4f", d.current),
           sim::format("%+.1f%%", d.baseline > 0.0
                                      ? (d.current / d.baseline - 1.0) * 100.0
                                      : 0.0),
           d.regression ? "REGRESSION" : "ok"});
    }
    table.print();
    for (const std::string& name : comparison.missing_rows) {
      std::printf("MISSING: row \"%s\" is in the baseline but not in the "
                  "current report\n",
                  name.c_str());
    }
    for (const std::string& name : comparison.unknown_rows) {
      std::printf("WARNING: row \"%s\" has no baseline yet (measured but "
                  "not gated; refresh %s to start gating it)\n",
                  name.c_str(), baseline_path.c_str());
    }
    if (!comparison.ok()) {
      std::printf("FAIL: obs ns_per_op / overhead_ratio regression beyond "
                  "threshold %.2f (or missing row) vs %s\n",
                  threshold, baseline_path.c_str());
      return 1;
    }
    std::printf("OK: all obs rows within threshold %.2f of the baseline\n",
                threshold);
    return 0;
  }

  if (mode == "sessions") {
    obs::SessionsComparison comparison =
        obs::compare_sessions_reports(baseline, current, threshold);
    if (comparison.deltas.empty() && comparison.missing_rows.empty()) {
      std::fprintf(stderr, "no comparable sessions_rows found in %s\n",
                   baseline_path.c_str());
      return 2;
    }
    sim::Table table(
        {"row", "field", "baseline", "current", "delta", "verdict"});
    for (const obs::SessionsDelta& d : comparison.deltas) {
      table.add_row(
          {d.row, d.field, sim::format("%.3f", d.baseline),
           sim::format("%.3f", d.current),
           sim::format("%+.1f%%", d.baseline > 0.0
                                      ? (d.current / d.baseline - 1.0) * 100.0
                                      : 0.0),
           d.regression ? "REGRESSION" : "ok"});
    }
    table.print();
    for (const std::string& name : comparison.missing_rows) {
      std::printf("MISSING: row \"%s\" is in the baseline but not in the "
                  "current report\n",
                  name.c_str());
    }
    for (const std::string& name : comparison.unknown_rows) {
      std::printf("WARNING: row \"%s\" has no baseline yet (measured but "
                  "not gated; refresh %s to start gating it)\n",
                  name.c_str(), baseline_path.c_str());
    }
    if (!comparison.ok()) {
      std::printf("FAIL: sessions/sec floor or p99 frame-latency ceiling "
                  "breached beyond threshold %.2f (or missing row) vs %s\n",
                  threshold, baseline_path.c_str());
      return 1;
    }
    std::printf(
        "OK: all sessions rows within threshold %.2f of the baseline\n",
        threshold);
    return 0;
  }

  obs::BenchComparison comparison =
      obs::compare_bench_reports(baseline, current, threshold);
  if (comparison.deltas.empty() && comparison.missing_kernels.empty()) {
    std::fprintf(stderr, "no comparable kernels found in %s\n",
                 baseline_path.c_str());
    return 2;
  }

  sim::Table table({"kernel", "field", "baseline_ns", "current_ns", "ratio",
                    "verdict"});
  for (const obs::BenchDelta& d : comparison.deltas) {
    table.add_row({d.kernel, d.field, sim::format("%.2f", d.baseline_ns),
                   sim::format("%.2f", d.current_ns),
                   sim::format("%.3fx", d.ratio()),
                   d.regression ? "REGRESSION" : "ok"});
  }
  table.print();
  for (const std::string& name : comparison.missing_kernels) {
    std::printf("MISSING: kernel \"%s\" is in the baseline but not in the "
                "current report\n",
                name.c_str());
  }
  for (const std::string& name : comparison.unknown_kernels) {
    std::printf("WARNING: kernel \"%s\" has no baseline row yet (measured "
                "but not gated; refresh %s to start gating it)\n",
                name.c_str(), baseline_path.c_str());
  }

  if (!comparison.ok()) {
    std::printf("FAIL: ns/call regression beyond +%.0f%% (or missing "
                "kernel) vs %s\n",
                threshold * 100.0, baseline_path.c_str());
    return 1;
  }
  std::printf("OK: all kernels within +%.0f%% of the baseline\n",
              threshold * 100.0);
  return 0;
}
