// check_bench_regression — CI gate over BENCH_kernels.json.
//
//   check_bench_regression --baseline BENCH_kernels.json
//                          --current build/BENCH_kernels.json
//                          [--threshold 0.25]
//
// Diffs the fresh report against the committed baseline and exits 1 when
// any kernel's ns/call grew by more than the threshold (default +25%) or a
// baseline kernel vanished from the current report. Exit 2 = usage/parse
// error. Faster-than-baseline results are reported but never fail — the
// committed baseline is refreshed by re-running bench/micro_kernels and
// committing the new file.
#include <cstdio>
#include <string>

#include "common/args.h"
#include "common/json.h"
#include "obs/bench_compare.h"
#include "sim/report.h"

using namespace pbpair;

int main(int argc, char** argv) {
  common::ArgParser args(argc, argv);
  const std::string baseline_path = args.get("baseline");
  const std::string current_path = args.get("current");
  const double threshold = args.get_double("threshold", 0.25);
  if (baseline_path.empty() || current_path.empty() || threshold < 0.0) {
    std::fprintf(stderr,
                 "usage: check_bench_regression --baseline FILE --current "
                 "FILE [--threshold 0.25]\n");
    return 2;
  }

  common::JsonValue baseline, current;
  std::string error;
  if (!common::parse_json_file(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "baseline %s: %s\n", baseline_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!common::parse_json_file(current_path, &current, &error)) {
    std::fprintf(stderr, "current %s: %s\n", current_path.c_str(),
                 error.c_str());
    return 2;
  }

  obs::BenchComparison comparison =
      obs::compare_bench_reports(baseline, current, threshold);
  if (comparison.deltas.empty() && comparison.missing_kernels.empty()) {
    std::fprintf(stderr, "no comparable kernels found in %s\n",
                 baseline_path.c_str());
    return 2;
  }

  sim::Table table({"kernel", "field", "baseline_ns", "current_ns", "ratio",
                    "verdict"});
  for (const obs::BenchDelta& d : comparison.deltas) {
    table.add_row({d.kernel, d.field, sim::format("%.2f", d.baseline_ns),
                   sim::format("%.2f", d.current_ns),
                   sim::format("%.3fx", d.ratio()),
                   d.regression ? "REGRESSION" : "ok"});
  }
  table.print();
  for (const std::string& name : comparison.missing_kernels) {
    std::printf("MISSING: kernel \"%s\" is in the baseline but not in the "
                "current report\n",
                name.c_str());
  }
  for (const std::string& name : comparison.unknown_kernels) {
    std::printf("WARNING: kernel \"%s\" has no baseline row yet (measured "
                "but not gated; refresh %s to start gating it)\n",
                name.c_str(), baseline_path.c_str());
  }

  if (!comparison.ok()) {
    std::printf("FAIL: ns/call regression beyond +%.0f%% (or missing "
                "kernel) vs %s\n",
                threshold * 100.0, baseline_path.c_str());
    return 1;
  }
  std::printf("OK: all kernels within +%.0f%% of the baseline\n",
              threshold * 100.0);
  return 0;
}
