#include "resilience/pgop_policy.h"

#include "codec/motion.h"

namespace pbpair::resilience {

bool PgopPolicy::force_intra_pre_me(int frame_index, int mb_x, int mb_y) {
  (void)frame_index;
  (void)mb_y;
  // Refresh band: columns [sweep_start, sweep_start + n). The band never
  // wraps mid-frame; a sweep that reaches the right edge restarts at 0 on
  // the next frame (on_frame_encoded advances it).
  return mb_x >= sweep_start_ && mb_x < sweep_start_ + n_;
}

void PgopPolicy::select_post_me(int frame_index,
                                const std::vector<codec::MbMeInfo>& me_info,
                                int mb_cols, int mb_rows,
                                std::vector<std::uint8_t>* force_intra) {
  (void)frame_index;
  // Stride back: in the previous decoded frame, columns [0, sweep_start)
  // are clean (refreshed earlier in this sweep). An inter MB inside the
  // clean region whose reference block extends to x >= sweep_start*16
  // would predict from the dirty region, so it is refreshed as well.
  const int dirty_x = sweep_start_ * 16;
  if (sweep_start_ == 0) return;  // sweep just began: no clean region yet
  for (int my = 0; my < mb_rows; ++my) {
    for (int mx = 0; mx < sweep_start_; ++mx) {
      const int i = my * mb_cols + mx;
      if (!me_info[i].searched || (*force_intra)[i]) continue;
      const codec::MotionVector mv = me_info[i].mv;  // half-pel units
      const int ref_right =
          mx * 16 + codec::halfpel_floor(mv.x) + codec::halfpel_span(mv.x);
      if (ref_right > dirty_x) {
        (*force_intra)[i] = 1;
        ++stride_back_count_;
      }
    }
  }
}

void PgopPolicy::on_frame_encoded(const codec::FrameEncodeInfo& info) {
  if (info.type != codec::FrameType::kInter) {
    // An I-frame refreshes everything; restart the sweep.
    sweep_start_ = 0;
    return;
  }
  sweep_start_ += n_;
  if (sweep_start_ >= info.mb_cols) sweep_start_ = 0;
}

}  // namespace pbpair::resilience
