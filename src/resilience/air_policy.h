// AIR-N: adaptive intra refresh (MPEG-4 style, refs [5,6] of the paper).
//
// After motion estimation has run for the whole frame, the N macroblocks
// with the highest SAD — the most active image regions, where propagated
// errors are most visible — are re-coded intra. Because the decision is
// taken *after* ME, AIR pays the full motion-estimation cost for every MB:
// the paper observes its encoding energy is essentially that of the
// no-resilience encoder.
#pragma once

#include <vector>

#include "codec/refresh_policy.h"
#include "common/check.h"

namespace pbpair::resilience {

class AirPolicy final : public codec::RefreshPolicy {
 public:
  /// `refresh_mbs`: N in the paper's AIR-N notation.
  explicit AirPolicy(int refresh_mbs) : n_(refresh_mbs) {
    PB_CHECK(refresh_mbs >= 0);
  }

  const char* name() const override { return "AIR"; }

  void select_post_me(int frame_index,
                      const std::vector<codec::MbMeInfo>& me_info, int mb_cols,
                      int mb_rows,
                      std::vector<std::uint8_t>* force_intra) override;

 private:
  int n_;
};

}  // namespace pbpair::resilience
