// GOP-N: periodic I-frame refresh (the classic group-of-pictures scheme).
//
// GOP-N codes one I-frame followed by N P-frames. The I-frame cleans all
// propagated errors at once, but (a) I-frames are several times larger than
// P-frames, producing the bit-rate spikes of Fig. 6(b), and (b) losing an
// I-frame leaves the decoder without a valid reference for the next N
// frames — the e7 event of Fig. 6(a).
#pragma once

#include "codec/refresh_policy.h"
#include "common/check.h"

namespace pbpair::resilience {

class GopPolicy final : public codec::RefreshPolicy {
 public:
  /// `p_frames_per_i`: N in the paper's GOP-N notation (I:P ratio 1:N).
  explicit GopPolicy(int p_frames_per_i) : n_(p_frames_per_i) {
    PB_CHECK(p_frames_per_i >= 1);
  }

  const char* name() const override { return "GOP"; }

  bool want_intra_frame(int frame_index) override {
    return frame_index % (n_ + 1) == 0;
  }

  int period() const { return n_ + 1; }

 private:
  int n_;
};

}  // namespace pbpair::resilience
