#include "resilience/air_policy.h"

#include <algorithm>

namespace pbpair::resilience {

void AirPolicy::select_post_me(int frame_index,
                               const std::vector<codec::MbMeInfo>& me_info,
                               int mb_cols, int mb_rows,
                               std::vector<std::uint8_t>* force_intra) {
  (void)frame_index;
  (void)mb_rows;
  (void)mb_cols;
  // Rank searched MBs by SAD, highest first; deterministic tie-break on
  // index so identical inputs give identical refresh maps.
  std::vector<int> order;
  order.reserve(me_info.size());
  for (int i = 0; i < static_cast<int>(me_info.size()); ++i) {
    if (me_info[i].searched) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&me_info](int a, int b) {
    if (me_info[a].sad != me_info[b].sad) return me_info[a].sad > me_info[b].sad;
    return a < b;
  });
  int marked = 0;
  for (int idx : order) {
    if (marked >= n_) break;
    if (!(*force_intra)[idx]) {
      (*force_intra)[idx] = 1;
      ++marked;
    }
  }
}

}  // namespace pbpair::resilience
