// PGOP-N: progressive group of pictures (refs [3,4] of the paper).
//
// Instead of whole I-frames, PGOP refreshes N columns of intra MBs per
// P-frame, sweeping left to right; after ceil(mb_cols/N) frames every MB
// has been refreshed and the sweep restarts. Columns being refreshed skip
// motion estimation (they are intra by construction), but PGOP must also
// prevent errors from leaking *around* the refresh wall: an MB in the
// already-refreshed (clean) region whose motion vector reaches into the
// not-yet-refreshed (dirty) region would re-import propagated errors. PGOP
// intra-codes those MBs too — the "stride back" MBs — and those DO require
// motion estimation first, which is why PGOP's energy stays above PBPAIR's
// (paper §4.2).
#pragma once

#include <vector>

#include "codec/refresh_policy.h"
#include "common/check.h"

namespace pbpair::resilience {

class PgopPolicy final : public codec::RefreshPolicy {
 public:
  /// `columns_per_frame`: N in the paper's PGOP-N notation.
  explicit PgopPolicy(int columns_per_frame) : n_(columns_per_frame) {
    PB_CHECK(columns_per_frame >= 1);
  }

  const char* name() const override { return "PGOP"; }

  bool force_intra_pre_me(int frame_index, int mb_x, int mb_y) override;

  void select_post_me(int frame_index,
                      const std::vector<codec::MbMeInfo>& me_info, int mb_cols,
                      int mb_rows,
                      std::vector<std::uint8_t>* force_intra) override;

  void on_frame_encoded(const codec::FrameEncodeInfo& info) override;

  void reset() override { sweep_start_ = 0; }

  /// First column of the current refresh band (exposed for tests).
  int sweep_start() const { return sweep_start_; }

  /// Number of stride-back MBs forced so far (exposed for tests/stats).
  std::uint64_t stride_back_count() const { return stride_back_count_; }

 private:
  int n_;
  int sweep_start_ = 0;  // leftmost column of the band refreshed this frame
  std::uint64_t stride_back_count_ = 0;
};

}  // namespace pbpair::resilience
