// 8x8 block coefficient (de)serialization: zig-zag scan + run/level/last
// events through the coefficient VLC.
#pragma once

#include <cstdint>

#include "codec/bitstream.h"

namespace pbpair::codec {

/// Encodes a quantized block (raster order). When `intra` is true, block[0]
/// is the intra DC level and is written as a fixed 8-bit field (H.263
/// INTRADC style); AC coefficients follow as events. When false, all 64
/// coefficients are event-coded. The caller must only invoke this for
/// blocks that are coded (intra blocks always are; inter blocks need at
/// least one nonzero level, per the CBP).
void encode_block(BitWriter& writer, const std::int16_t* block, bool intra);

/// Decodes into `block` (raster order, zero-filled first).
/// Returns false on malformed or truncated input.
bool decode_block(BitReader& reader, std::int16_t* block, bool intra);

/// True if all (intra: AC-only) coefficients of the block are zero, i.e.
/// the inter block would not be coded / intra block has no AC events.
bool block_is_empty(const std::int16_t* block, bool intra);

}  // namespace pbpair::codec
