// The H.263-style frame encoder with pluggable intra-refresh policy.
//
// Macroblock layer (P-frame):
//   COD u(1)            1 = skipped (copy co-located reference MB)
//   if coded:
//     mode u(1)         0 = inter, 1 = intra
//     inter: mv_x se, mv_y se, CBP (Huffman), coded blocks (run/level/last)
//     intra: 6 blocks, each INTRADC u(8) + has-AC u(1) + AC events
//
// The encoder maintains the standard reconstruction loop: prediction
// references the *reconstructed* previous frame (what a lossless-channel
// decoder would hold), so encoder and decoder stay in lockstep until a
// transmission loss makes them diverge — which is exactly the error-
// propagation mechanism the refresh policies fight.
#pragma once

#include <memory>
#include <vector>

#include "codec/bitstream.h"
#include "codec/quant.h"
#include "codec/motion_search.h"
#include "codec/refresh_policy.h"
#include "codec/syntax.h"
#include "energy/op_counters.h"
#include "video/frame.h"

namespace pbpair::codec {

struct EncoderConfig {
  int width = video::kQcifWidth;
  int height = video::kQcifHeight;
  int qp = 10;  // quantizer, 1..31
  MotionSearchConfig search{};
  /// SAD_Th in the paper's pseudo code (Fig. 4): intra is chosen when
  /// SAD_mv - SAD_Th > SAD_self. 500 is the classic TMN value.
  std::int64_t intra_sad_bias = 500;

  /// In-loop deblocking (codec/deblock.h). MUST match the decoder's
  /// setting, or their reconstruction loops diverge.
  bool deblocking = false;
};

class Encoder {
 public:
  /// `policy` must outlive the encoder; it is consulted for every frame.
  Encoder(const EncoderConfig& config, RefreshPolicy* policy);

  /// Encodes the next frame of the sequence.
  EncodedFrame encode_frame(const video::YuvFrame& frame);

  /// The encoder's reconstruction of the last encoded frame (what a
  /// decoder on a lossless channel would output).
  const video::YuvFrame& reconstructed() const { return recon_; }

  /// Cumulative metered operations (the energy model's input).
  const energy::OpCounters& ops() const { return ops_; }

  const EncoderConfig& config() const { return config_; }
  int frames_encoded() const { return frame_index_; }

  /// Changes the quantizer for subsequent frames (rate-control hook).
  void set_qp(int qp) {
    PB_CHECK(qp >= kMinQp && qp <= kMaxQp);
    config_.qp = qp;
  }

  /// Restarts the sequence (frame counter, references, counters, policy).
  void reset();

 private:
  struct MbCoding {
    MbMode mode = MbMode::kSkip;
    MotionVector mv{};                // half-pel units
    std::int16_t blocks[6][64] = {};  // quantized levels, raster order
    int cbp = 0;                      // bit b => block b has nonzero levels
    // Motion-compensated predictions, formed once in encode_mb_inter and
    // reused by reconstruct_mb (valid for kInter only).
    std::uint8_t pred_y[16 * 16] = {};
    std::uint8_t pred_u[8 * 8] = {};
    std::uint8_t pred_v[8 * 8] = {};
  };

  void encode_mb_intra(const video::YuvFrame& frame, int mb_x, int mb_y,
                       MbCoding* coding);
  void encode_mb_inter(const video::YuvFrame& frame, int mb_x, int mb_y,
                       MotionVector mv, MbCoding* coding);
  void write_mb(BitWriter& writer, const MbCoding& coding, bool intra_frame,
                MotionVector* mv_predictor);
  void reconstruct_mb(const MbCoding& coding, int mb_x, int mb_y);

  EncoderConfig config_;
  RefreshPolicy* policy_;
  int frame_index_ = 0;

  video::YuvFrame recon_;       // reconstruction of the current frame
  video::YuvFrame ref_;         // reconstruction of the previous frame
  video::YuvFrame prev_original_;
  bool have_prev_original_ = false;

  energy::OpCounters ops_;
};

}  // namespace pbpair::codec
