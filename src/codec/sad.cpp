#include "codec/sad.h"

#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::codec {

std::int64_t sad_16x16(const video::Plane& cur, int cx, int cy,
                       const video::Plane& ref, int rx, int ry,
                       energy::OpCounters& ops) {
  PB_DCHECK(cx >= 0 && cy >= 0 && cx + 16 <= cur.width() &&
            cy + 16 <= cur.height());
  PB_DCHECK(rx >= 0 && ry >= 0 && rx + 16 <= ref.width() &&
            ry + 16 <= ref.height());
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur.row(cy + y) + cx;
    const std::uint8_t* rrow = ref.row(ry + y) + rx;
    for (int x = 0; x < 16; ++x) {
      sad += common::iabs(static_cast<int>(crow[x]) - static_cast<int>(rrow[x]));
    }
  }
  ops.sad_pixel_ops += 256;
  return sad;
}

std::int64_t sad_16x16_cutoff(const video::Plane& cur, int cx, int cy,
                              const video::Plane& ref, int rx, int ry,
                              std::int64_t cutoff, energy::OpCounters& ops) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur.row(cy + y) + cx;
    const std::uint8_t* rrow = ref.row(ry + y) + rx;
    for (int x = 0; x < 16; ++x) {
      sad += common::iabs(static_cast<int>(crow[x]) - static_cast<int>(rrow[x]));
    }
    ops.sad_pixel_ops += 16;
    if (sad >= cutoff) return sad;  // cannot become the best candidate
  }
  return sad;
}

std::int64_t sad_self_16x16(const video::Plane& cur, int cx, int cy,
                            energy::OpCounters& ops) {
  std::int64_t sum = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur.row(cy + y) + cx;
    for (int x = 0; x < 16; ++x) sum += crow[x];
  }
  int mean = static_cast<int>(sum / 256);
  std::int64_t dev = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur.row(cy + y) + cx;
    for (int x = 0; x < 16; ++x) {
      dev += common::iabs(static_cast<int>(crow[x]) - mean);
    }
  }
  ops.sad_pixel_ops += 256;
  return dev;
}

}  // namespace pbpair::codec
