#include "codec/sad.h"

#include "codec/kernels/kernels.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace pbpair::codec {

// The kernels (scalar or SIMD, see codec/kernels/) return values that are
// bit-identical across backends; the energy metering below is analytic
// (pixels visited, rows completed), so OpCounters never depend on which
// backend ran.

std::int64_t sad_16x16(const video::Plane& cur, int cx, int cy,
                       const video::Plane& ref, int rx, int ry,
                       energy::OpCounters& ops) {
  PB_DCHECK(cx >= 0 && cy >= 0 && cx + 16 <= cur.width() &&
            cy + 16 <= cur.height());
  PB_DCHECK(rx >= 0 && ry >= 0 && rx + 16 <= ref.width() &&
            ry + 16 <= ref.height());
  std::int64_t sad = kernels::active().sad_16x16(
      cur.row(cy) + cx, cur.width(), ref.row(ry) + rx, ref.width());
  ops.sad_pixel_ops += 256;
  if (obs::enabled()) {
    static obs::Counter* c_calls = &obs::counter("encoder.sad_calls");
    c_calls->add(1);
  }
  return sad;
}

std::int64_t sad_16x16_cutoff(const video::Plane& cur, int cx, int cy,
                              const video::Plane& ref, int rx, int ry,
                              std::int64_t cutoff, energy::OpCounters& ops) {
  PB_DCHECK(cx >= 0 && cy >= 0 && cx + 16 <= cur.width() &&
            cy + 16 <= cur.height());
  PB_DCHECK(rx >= 0 && ry >= 0 && rx + 16 <= ref.width() &&
            ry + 16 <= ref.height());
  int rows = 0;
  std::int64_t sad = kernels::active().sad_16x16_cutoff(
      cur.row(cy) + cx, cur.width(), ref.row(ry) + rx, ref.width(), cutoff,
      &rows);
  ops.sad_pixel_ops += 16 * static_cast<std::uint64_t>(rows);
  if (obs::enabled()) {
    static obs::Counter* c_calls = &obs::counter("encoder.sad_calls");
    static obs::Counter* c_early = &obs::counter("encoder.sad_early_exits");
    c_calls->add(1);
    if (rows < 16) c_early->add(1);
  }
  return sad;
}

std::int64_t sad_self_16x16(const video::Plane& cur, int cx, int cy,
                            energy::OpCounters& ops) {
  PB_DCHECK(cx >= 0 && cy >= 0 && cx + 16 <= cur.width() &&
            cy + 16 <= cur.height());
  std::int64_t dev =
      kernels::active().sad_self_16x16(cur.row(cy) + cx, cur.width());
  ops.sad_pixel_ops += 256;
  return dev;
}

}  // namespace pbpair::codec
