#include "codec/deblock.h"

#include "common/math_util.h"

namespace pbpair::codec {
namespace {

/// Annex J's up-down ramp: passes small discontinuities (likely coding
/// noise) through the correction, kills large ones (likely real edges).
int up_down_ramp(int x, int strength) {
  int magnitude = common::iabs(x);
  int reduced = magnitude - common::clamp(2 * (magnitude - strength), 0,
                                          magnitude);
  return x >= 0 ? reduced : -reduced;
}

void filter_vertical_edges(video::Plane& plane, int strength) {
  // Edges between columns x-1 | x for x = 8, 16, ...
  for (int x = 8; x < plane.width(); x += 8) {
    for (int y = 0; y < plane.height(); ++y) {
      std::uint8_t* row = plane.row(y);
      int a = row[x - 2];
      int b = row[x - 1];
      int c = row[x];
      int d = row[x + 1 < plane.width() ? x + 1 : x];
      int delta = deblock_delta(a, b, c, d, strength);
      row[x - 1] = common::clamp_pixel(b + delta);
      row[x] = common::clamp_pixel(c - delta);
    }
  }
}

void filter_horizontal_edges(video::Plane& plane, int strength) {
  for (int y = 8; y < plane.height(); y += 8) {
    std::uint8_t* rm2 = plane.row(y - 2);
    std::uint8_t* rm1 = plane.row(y - 1);
    std::uint8_t* r0 = plane.row(y);
    std::uint8_t* rp1 = plane.row(y + 1 < plane.height() ? y + 1 : y);
    for (int x = 0; x < plane.width(); ++x) {
      int delta = deblock_delta(rm2[x], rm1[x], r0[x], rp1[x], strength);
      rm1[x] = common::clamp_pixel(rm1[x] + delta);
      r0[x] = common::clamp_pixel(r0[x] - delta);
    }
  }
}

}  // namespace

int deblock_strength(int qp) { return common::clamp(qp / 2 + 1, 1, 12); }

int deblock_delta(int a, int b, int c, int d, int strength) {
  // Annex J's boundary-discontinuity estimate from the 4-tap stencil.
  int d_raw = (a - 4 * b + 4 * c - d) / 8;
  return up_down_ramp(d_raw, strength);
}

void deblock_frame(video::YuvFrame& frame, int qp) {
  const int strength = deblock_strength(qp);
  filter_vertical_edges(frame.y(), strength);
  filter_horizontal_edges(frame.y(), strength);
  filter_vertical_edges(frame.u(), strength);
  filter_horizontal_edges(frame.u(), strength);
  filter_vertical_edges(frame.v(), strength);
  filter_horizontal_edges(frame.v(), strength);
}

}  // namespace pbpair::codec
