#include "codec/container.h"

#include <cstdio>

#include "common/check.h"

namespace pbpair::codec {
namespace {

constexpr char kMagic[4] = {'P', 'B', 'P', 'R'};
constexpr std::uint16_t kVersion = 1;

bool write_u16(std::FILE* f, std::uint16_t v) {
  std::uint8_t bytes[2] = {static_cast<std::uint8_t>(v & 0xFF),
                           static_cast<std::uint8_t>(v >> 8)};
  return std::fwrite(bytes, 1, 2, f) == 2;
}

bool write_u32(std::FILE* f, std::uint32_t v) {
  std::uint8_t bytes[4] = {static_cast<std::uint8_t>(v & 0xFF),
                           static_cast<std::uint8_t>((v >> 8) & 0xFF),
                           static_cast<std::uint8_t>((v >> 16) & 0xFF),
                           static_cast<std::uint8_t>((v >> 24) & 0xFF)};
  return std::fwrite(bytes, 1, 4, f) == 4;
}

bool read_u16(std::FILE* f, std::uint16_t* v) {
  std::uint8_t bytes[2];
  if (std::fread(bytes, 1, 2, f) != 2) return false;
  *v = static_cast<std::uint16_t>(bytes[0] | (bytes[1] << 8));
  return true;
}

bool read_u32(std::FILE* f, std::uint32_t* v) {
  std::uint8_t bytes[4];
  if (std::fread(bytes, 1, 4, f) != 4) return false;
  *v = static_cast<std::uint32_t>(bytes[0]) |
       (static_cast<std::uint32_t>(bytes[1]) << 8) |
       (static_cast<std::uint32_t>(bytes[2]) << 16) |
       (static_cast<std::uint32_t>(bytes[3]) << 24);
  return true;
}

}  // namespace

ContainerWriter::ContainerWriter(const std::string& path,
                                 const ContainerHeader& header) {
  PB_CHECK(header.width > 0 && header.height > 0);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  ok_ = std::fwrite(kMagic, 1, 4, file_) == 4 && write_u16(file_, kVersion) &&
        write_u16(file_, static_cast<std::uint16_t>(header.width)) &&
        write_u16(file_, static_cast<std::uint16_t>(header.height)) &&
        write_u16(file_, static_cast<std::uint16_t>(header.initial_qp));
}

ContainerWriter::~ContainerWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ContainerWriter::write_frame(const EncodedFrame& frame) {
  if (file_ == nullptr || !ok_) return false;
  PB_CHECK(!frame.gob_offsets.empty());
  const std::size_t begin = frame.gob_offsets[0];
  const std::size_t len = frame.bytes.size() - begin;
  ok_ = write_u32(file_, static_cast<std::uint32_t>(len)) &&
        std::fputc(frame.type == FrameType::kIntra ? 0 : 1, file_) != EOF &&
        std::fputc(frame.qp, file_) != EOF &&
        std::fwrite(frame.bytes.data() + begin, 1, len, file_) == len;
  return ok_;
}

bool ContainerWriter::close() {
  if (file_ == nullptr) return false;
  bool ok = ok_ && std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  return ok;
}

ContainerReader::ContainerReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return;
  char magic[4];
  std::uint16_t version = 0, width = 0, height = 0, qp = 0;
  bool ok = std::fread(magic, 1, 4, file_) == 4 && magic[0] == 'P' &&
            magic[1] == 'B' && magic[2] == 'P' && magic[3] == 'R' &&
            read_u16(file_, &version) && version == kVersion &&
            read_u16(file_, &width) && read_u16(file_, &height) &&
            read_u16(file_, &qp) && width % 16 == 0 && height % 16 == 0 &&
            width > 0 && height > 0;
  if (!ok) {
    std::fclose(file_);
    file_ = nullptr;
    return;
  }
  header_.width = width;
  header_.height = height;
  header_.initial_qp = qp;
}

ContainerReader::~ContainerReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ContainerReader::read_frame(ReceivedFrame* frame) {
  if (file_ == nullptr) return false;
  std::uint32_t len = 0;
  if (!read_u32(file_, &len)) return false;  // EOF
  int type = std::fgetc(file_);
  int qp = std::fgetc(file_);
  if (type == EOF || qp == EOF || qp < 1 || qp > 31 || len == 0 ||
      len > (1u << 24)) {
    return false;
  }
  frame->frame_index = frame_index_++;
  frame->type = type == 0 ? FrameType::kIntra : FrameType::kInter;
  frame->qp = qp;
  frame->any_data = true;
  frame->spans.clear();
  ReceivedFrame::GobSpan span;
  span.first_gob = 0;
  span.bytes.resize(len);
  if (std::fread(span.bytes.mutable_data(), 1, len, file_) != len) {
    return false;
  }
  frame->spans.push_back(std::move(span));
  return true;
}

}  // namespace pbpair::codec
