#include "codec/quant.h"

#include "codec/kernels/kernels.h"
#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::codec {

int quantize_intra_dc(int coeff) {
  int level = (coeff + 4) / 8;  // round to nearest step of 8
  return common::clamp(level, 1, 254);
}

int dequantize_intra_dc(int level) { return level * 8; }

int quantize_coeff(int coeff, int qp, bool intra) {
  PB_CHECK(qp >= kMinQp && qp <= kMaxQp);
  int magnitude = common::iabs(coeff);
  int level;
  if (intra) {
    level = magnitude / (2 * qp);
  } else {
    level = (magnitude - qp / 2) / (2 * qp);
    if (level < 0) level = 0;
  }
  level = common::clamp(level, 0, kMaxLevel);
  return coeff >= 0 ? level : -level;
}

int dequantize_coeff(int level, int qp) {
  if (level == 0) return 0;
  int magnitude = common::iabs(level);
  int rec = qp * (2 * magnitude + 1);
  if (qp % 2 == 0) rec -= 1;
  rec = common::clamp(rec, 0, 2047);
  return level > 0 ? rec : -rec;
}

// Block-level entry points dispatch to the kernel layer (codec/kernels/);
// quant_coeffs metering is analytic so it is backend-independent.

int quantize_block(std::int16_t* block, int qp, bool intra,
                   energy::OpCounters& ops) {
  PB_CHECK(qp >= kMinQp && qp <= kMaxQp);
  int nonzero = 0;
  int start = 0;
  int dc = 0;
  if (intra) {
    dc = quantize_intra_dc(block[0]);
    ++nonzero;  // intra DC is always coded
    start = 1;
  }
  nonzero += kernels::active().quantize_ac(block, start, qp, intra);
  if (intra) block[0] = static_cast<std::int16_t>(dc);
  ops.quant_coeffs += 64;
  return nonzero;
}

void dequantize_block(std::int16_t* block, int qp, bool intra,
                      energy::OpCounters& ops) {
  int start = 0;
  int dc = 0;
  if (intra) {
    dc = dequantize_intra_dc(block[0]);
    start = 1;
  }
  kernels::active().dequantize_ac(block, start, qp);
  if (intra) block[0] = static_cast<std::int16_t>(dc);
  ops.dequant_coeffs += 64;
}

}  // namespace pbpair::codec
