// The H.263-style decoder with GOB-level loss concealment.
//
// The decoder consumes `ReceivedFrame`s assembled by the network layer:
// whichever GOBs (MB rows) arrived are parsed and reconstructed; missing
// GOBs — and entirely lost frames — are concealed by copying the
// co-located pixels from the decoder's previous output (the paper's
// "simple copy scheme", §4.1). After a loss, the decoder's reference
// diverges from the encoder's, and the error propagates through inter
// prediction until intra refresh cleans it — the effect the refresh
// policies are designed to bound.
#pragma once

#include <vector>

#include "codec/bitstream.h"
#include "codec/motion.h"
#include "codec/syntax.h"
#include "energy/op_counters.h"
#include "video/frame.h"

namespace pbpair::codec {

/// What the decoder does with macroblocks it never received (paper §3.1.3:
/// the concealment choice is what the similarity factor models).
enum class ConcealmentMode {
  kCopyPrevious,        // copy the co-located MB (the paper's §4.1 choice)
  kMotionCompensated,   // reuse the co-located MB's previous motion vector
  kFreezeGray,          // blank to mid-gray (models a concealment-less decoder)
};

struct DecoderConfig {
  int width = video::kQcifWidth;
  int height = video::kQcifHeight;
  ConcealmentMode concealment = ConcealmentMode::kCopyPrevious;
  /// In-loop deblocking; must match the encoder's setting (stream-level
  /// agreement, like frame geometry).
  bool deblocking = false;
};

class Decoder {
 public:
  explicit Decoder(const DecoderConfig& config);

  /// Decodes (with concealment) the next frame. Returns the reconstructed
  /// output; the reference is updated for subsequent frames.
  ///
  /// Robustness contract (DESIGN.md §11, enforced by `pbpair fuzz` and
  /// tests/test_robustness.cpp): `received` is UNTRUSTED. Any byte
  /// sequence in any span, any qp, any frame type, any first_gob yields a
  /// full-size concealed frame — never undefined behaviour, an
  /// out-of-bounds access, or an abort — and the decoder stays usable for
  /// the next frame. Out-of-range qp is clamped to [kMinQp, kMaxQp];
  /// out-of-range first_gob spans are ignored; parse failures conceal the
  /// rest of the GOB.
  const video::YuvFrame& decode_frame(const ReceivedFrame& received);

  /// Convenience for lossless-channel use: decodes an EncodedFrame as if
  /// every GOB arrived.
  const video::YuvFrame& decode_frame(const EncodedFrame& encoded);

  const video::YuvFrame& current() const { return recon_; }
  const energy::OpCounters& ops() const { return ops_; }

  /// Count of MBs concealed so far (lost GOBs and parse failures).
  std::uint64_t concealed_mbs() const { return concealed_mbs_; }

  void reset();

 private:
  /// Parses and reconstructs one GOB span; conceals MBs it cannot parse.
  void decode_span(const ReceivedFrame::GobSpan& span, FrameType type, int qp,
                   std::vector<std::uint8_t>* row_done);
  /// Parses one MB at (mb_x, mb_y); returns false on bitstream error.
  /// `mv_predictor` carries the differential-MV state within one GOB.
  bool decode_mb(BitReader& reader, FrameType type, int qp, int mb_x,
                 int mb_y, MotionVector* mv_predictor);
  void conceal_mb(int mb_x, int mb_y);
  void conceal_row(int mb_y);

  DecoderConfig config_;
  video::YuvFrame recon_;  // frame being built / last output
  video::YuvFrame ref_;    // previous output
  // Per-MB vectors of the previous decoded frame (half-pel), used by
  // motion-compensated concealment; zero vectors for intra/skip/concealed.
  std::vector<MotionVector> prev_mv_field_;
  std::vector<MotionVector> mv_field_;
  energy::OpCounters ops_;
  std::uint64_t concealed_mbs_ = 0;
};

}  // namespace pbpair::codec
