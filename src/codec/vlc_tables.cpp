#include "codec/vlc_tables.h"

#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "codec/golomb.h"
#include "codec/quant.h"

namespace pbpair::codec {
namespace {

// Frequency model for (last, run, |level|) events. Shaped like H.263's
// TCOEF statistics: probability decays geometrically in run and level;
// last=1 events are rarer than last=0 within a block but always present.
std::uint64_t event_frequency(bool last, int run, int level_mag) {
  // Base weight decays by ~x0.6 per run step and ~x0.25 per level step.
  std::uint64_t w = 1u << 20;
  for (int r = 0; r < run; ++r) w = (w * 6) / 10;
  for (int l = 1; l < level_mag; ++l) w /= 4;
  if (last) w /= 3;
  return w == 0 ? 1 : w;
}

// Frequency model for 6-bit CBP patterns: sparse patterns (few coded
// blocks) dominate at low bitrates; luma blocks are coded more often than
// chroma.
std::uint64_t cbp_frequency(int cbp) {
  int luma_bits = 0, chroma_bits = 0;
  for (int b = 0; b < 4; ++b) luma_bits += (cbp >> b) & 1;
  for (int b = 4; b < 6; ++b) chroma_bits += (cbp >> b) & 1;
  std::uint64_t w = 1u << 20;
  for (int i = 0; i < luma_bits; ++i) w = (w * 45) / 100;
  for (int i = 0; i < chroma_bits; ++i) w = (w * 20) / 100;
  return w == 0 ? 1 : w;
}

}  // namespace

int CoeffVlc::symbol_of(bool last, int run, int level_mag) const {
  PB_DCHECK(run >= 0 && run <= kMaxTableRun);
  PB_DCHECK(level_mag >= 1 && level_mag <= kMaxTableLevel);
  return ((last ? 1 : 0) * (kMaxTableRun + 1) + run) * kMaxTableLevel +
         (level_mag - 1);
}

CoeffVlc::CoeffVlc()
    : code_([] {
        std::vector<std::uint64_t> freqs;
        freqs.reserve(kTableEvents + 1);
        for (int last = 0; last <= 1; ++last) {
          for (int run = 0; run <= kMaxTableRun; ++run) {
            for (int lvl = 1; lvl <= kMaxTableLevel; ++lvl) {
              freqs.push_back(event_frequency(last != 0, run, lvl));
            }
          }
        }
        freqs.push_back(1u << 14);  // escape symbol
        return freqs;
      }()) {}

void CoeffVlc::encode(BitWriter& writer, const CoeffEvent& event) const {
  PB_CHECK(event.level != 0 && event.run >= 0 && event.run <= 63);
  int mag = common::iabs(event.level);
  PB_CHECK(mag <= kMaxLevel);
  if (event.run <= kMaxTableRun && mag <= kMaxTableLevel) {
    code_.encode(writer, symbol_of(event.last, event.run, mag));
    writer.put_bit(event.level < 0);
    return;
  }
  // Escape: last bit, run as ue, level as se.
  code_.encode(writer, kTableEvents);
  writer.put_bit(event.last);
  put_ue(writer, static_cast<std::uint32_t>(event.run));
  put_se(writer, event.level);
}

bool CoeffVlc::decode(BitReader& reader, CoeffEvent* event) const {
  int symbol = 0;
  if (!code_.decode(reader, &symbol)) return false;
  if (symbol == kTableEvents) {
    bool last = false;
    std::uint32_t run = 0;
    std::int32_t level = 0;
    if (!reader.get_bit(&last)) return false;
    if (!get_ue(reader, &run)) return false;
    if (!get_se(reader, &level)) return false;
    if (run > 63 || level == 0 || common::iabs(level) > kMaxLevel) return false;
    *event = CoeffEvent{last, static_cast<int>(run), level};
    return true;
  }
  int level_mag = symbol % kMaxTableLevel + 1;
  int rest = symbol / kMaxTableLevel;
  int run = rest % (kMaxTableRun + 1);
  bool last = rest / (kMaxTableRun + 1) != 0;
  bool negative = false;
  if (!reader.get_bit(&negative)) return false;
  *event = CoeffEvent{last, run, negative ? -level_mag : level_mag};
  return true;
}

CbpVlc::CbpVlc()
    : code_([] {
        std::vector<std::uint64_t> freqs(64);
        for (int cbp = 0; cbp < 64; ++cbp) freqs[cbp] = cbp_frequency(cbp);
        return freqs;
      }()) {}

void CbpVlc::encode(BitWriter& writer, int cbp) const {
  PB_CHECK(cbp >= 0 && cbp < 64);
  code_.encode(writer, cbp);
}

bool CbpVlc::decode(BitReader& reader, int* cbp) const {
  return code_.decode(reader, cbp);
}

const CoeffVlc& coeff_vlc() {
  static const CoeffVlc instance;
  return instance;
}

const CbpVlc& cbp_vlc() {
  static const CbpVlc instance;
  return instance;
}

}  // namespace pbpair::codec
