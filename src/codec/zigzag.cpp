#include "codec/zigzag.h"

namespace pbpair::codec {
namespace {

std::array<int, 64> build_zigzag() {
  std::array<int, 64> scan{};
  int idx = 0;
  for (int d = 0; d < 15; ++d) {  // anti-diagonals
    if (d % 2 == 0) {
      // Walk up-right.
      for (int row = (d < 8 ? d : 7); row >= 0 && d - row < 8; --row) {
        scan[idx++] = row * 8 + (d - row);
      }
    } else {
      // Walk down-left.
      for (int col = (d < 8 ? d : 7); col >= 0 && d - col < 8; --col) {
        scan[idx++] = (d - col) * 8 + col;
      }
    }
  }
  return scan;
}

std::array<int, 64> build_inverse(const std::array<int, 64>& scan) {
  std::array<int, 64> inv{};
  for (int i = 0; i < 64; ++i) inv[scan[i]] = i;
  return inv;
}

}  // namespace

const std::array<int, 64> kZigzag = build_zigzag();
const std::array<int, 64> kZigzagInverse = build_inverse(kZigzag);

}  // namespace pbpair::codec
