// Backend detection and the active-table dispatch slot.
#include "codec/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/log.h"

namespace pbpair::codec::kernels {

// Defined in the per-ISA translation units; return nullptr when the
// backend was compiled out (wrong architecture).
const KernelTable* sse2_table_or_null();
const KernelTable* avx2_table_or_null();
const KernelTable* avx512_table_or_null();
const KernelTable* neon_table_or_null();

namespace {

constexpr Backend kAllBackends[] = {Backend::kScalar, Backend::kSse2,
                                    Backend::kAvx2, Backend::kAvx512,
                                    Backend::kNeon};

bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      // The kernels use 512-bit integer ops plus the BW/DQ/VL extensions
      // (every AVX-512 server/client core since Skylake-X has all four).
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is architecturally mandatory on AArch64
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* detect_default() {
  // Env override first: PBPAIR_KERNELS=scalar|sse2|avx2|avx512|neon pins a
  // backend (unknown or unsupported values fall back to auto, with a
  // warning).
  const char* env = std::getenv("PBPAIR_KERNELS");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    for (Backend backend : kAllBackends) {
      if (std::strcmp(env, backend_name(backend)) == 0) {
        if (const KernelTable* table = table_for(backend)) return table;
      }
    }
    PB_LOG_WARN(
        "PBPAIR_KERNELS=%s unknown or unsupported on this CPU; "
        "auto-selecting",
        env);
  }
  const KernelTable* best = &scalar_table();
  for (Backend backend : kAllBackends) {
    if (const KernelTable* table = table_for(backend)) best = table;
  }
  return best;
}

std::atomic<const KernelTable*>& active_slot() {
  static std::atomic<const KernelTable*> slot{detect_default()};
  return slot;
}

}  // namespace

const KernelTable* table_for(Backend backend) {
  if (!cpu_supports(backend)) return nullptr;
  switch (backend) {
    case Backend::kScalar:
      return &scalar_table();
    case Backend::kSse2:
      return sse2_table_or_null();
    case Backend::kAvx2:
      return avx2_table_or_null();
    case Backend::kAvx512:
      return avx512_table_or_null();
    case Backend::kNeon:
      return neon_table_or_null();
  }
  return nullptr;
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> backends;
  for (Backend backend : kAllBackends) {
    if (table_for(backend) != nullptr) backends.push_back(backend);
  }
  return backends;
}

const KernelTable& active() {
  return *active_slot().load(std::memory_order_acquire);
}

bool set_active(Backend backend) {
  const KernelTable* table = table_for(backend);
  if (table == nullptr) return false;
  active_slot().store(table, std::memory_order_release);
  return true;
}

Backend active_backend() { return active().backend; }

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

const char* kernel_name(KernelId id) {
  switch (id) {
    case KernelId::kSad16x16:
      return "sad_16x16";
    case KernelId::kSad16x16Cutoff:
      return "sad_16x16_cutoff";
    case KernelId::kSadSelf16x16:
      return "sad_self_16x16";
    case KernelId::kSad16x16X4:
      return "sad_16x16_x4";
    case KernelId::kSad16x16X8:
      return "sad_16x16_x8";
    case KernelId::kSad16x16HpelCutoff:
      return "sad_16x16_hpel_cutoff";
    case KernelId::kForwardDct8x8:
      return "forward_dct_8x8";
    case KernelId::kInverseDct8x8:
      return "inverse_dct_8x8";
    case KernelId::kQuantizeAc:
      return "quantize_ac";
    case KernelId::kDequantizeAc:
      return "dequantize_ac";
    case KernelId::kMcPredict:
      return "mc_predict";
    case KernelId::kSubPred8x8:
      return "sub_pred_8x8";
    case KernelId::kAddPred8x8:
      return "add_pred_8x8";
    case KernelId::kCount:
      break;
  }
  return "unknown";
}

}  // namespace pbpair::codec::kernels
