// Backend detection and the active-table dispatch slot.
#include "codec/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/log.h"

namespace pbpair::codec::kernels {

// Defined in kernels_sse2.cpp / kernels_avx2.cpp; return nullptr when the
// backend was compiled out (non-x86 builds).
const KernelTable* sse2_table_or_null();
const KernelTable* avx2_table_or_null();

namespace {

constexpr Backend kAllBackends[] = {Backend::kScalar, Backend::kSse2,
                                    Backend::kAvx2};

bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* detect_default() {
  // Env override first: PBPAIR_KERNELS=scalar|sse2|avx2 pins a backend
  // (unknown or unsupported values fall back to auto, with a warning).
  const char* env = std::getenv("PBPAIR_KERNELS");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    for (Backend backend : kAllBackends) {
      if (std::strcmp(env, backend_name(backend)) == 0) {
        if (const KernelTable* table = table_for(backend)) return table;
      }
    }
    PB_LOG_WARN(
        "PBPAIR_KERNELS=%s unknown or unsupported on this CPU; "
        "auto-selecting",
        env);
  }
  const KernelTable* best = &scalar_table();
  for (Backend backend : kAllBackends) {
    if (const KernelTable* table = table_for(backend)) best = table;
  }
  return best;
}

std::atomic<const KernelTable*>& active_slot() {
  static std::atomic<const KernelTable*> slot{detect_default()};
  return slot;
}

}  // namespace

const KernelTable* table_for(Backend backend) {
  if (!cpu_supports(backend)) return nullptr;
  switch (backend) {
    case Backend::kScalar:
      return &scalar_table();
    case Backend::kSse2:
      return sse2_table_or_null();
    case Backend::kAvx2:
      return avx2_table_or_null();
  }
  return nullptr;
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> backends;
  for (Backend backend : kAllBackends) {
    if (table_for(backend) != nullptr) backends.push_back(backend);
  }
  return backends;
}

const KernelTable& active() {
  return *active_slot().load(std::memory_order_acquire);
}

bool set_active(Backend backend) {
  const KernelTable* table = table_for(backend);
  if (table == nullptr) return false;
  active_slot().store(table, std::memory_order_release);
  return true;
}

Backend active_backend() { return active().backend; }

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace pbpair::codec::kernels
