// AVX2 kernels. Compiled with -mavx2 (see src/codec/CMakeLists.txt); the
// dispatcher only hands this table out when the running CPU reports AVX2.
//
// Bit-exactness notes (each proven against the scalar reference in
// tests/test_kernels.cpp):
//  - SAD: VPSADBW is an exact sum of absolute byte differences; integer
//    addition is associative, so lane order cannot change the total. The
//    cutoff variant keeps the scalar per-row termination points, and the
//    batched x4/x8 kernels compute full sums whose per-candidate totals
//    equal the scalar loop's.
//  - DCT/IDCT: the VPMADDWD formulation documented in kernels_x86_128.inl,
//    widened to 8 lanes — exact int32 arithmetic end to end, including the
//    Q28 rounding identity, so no int64 lanes and no scalar tail.
//  - Quant: division by 2*qp is replaced by the magic-multiply
//    floor(n * (floor(2^18 / d) + 1) >> 18), which equals floor(n / d) for
//    all n <= 4095, d <= 62: the rounding error n*e/2^18 < 4096/2^18 is
//    below the smallest distance 1/62 from a rational n/d to the next
//    integer. DCT output is clamped to [-2048, 2047], so every codec
//    input is in range.
//  - Half-pel/MC/residual kernels come from kernels_x86_128.inl, compiled
//    here with VEX encodings.
#include "codec/kernels/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "codec/kernels/dct_tables.h"
#include "codec/quant.h"
#include "common/check.h"

namespace pbpair::codec::kernels {
namespace {

#include "codec/kernels/kernels_x86_128.inl"

inline __m128i load_row128(const std::uint8_t* base, int stride, int y) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(
      base + static_cast<std::ptrdiff_t>(y) * stride));
}

inline std::int64_t hsum_sad256(__m256i acc) {
  return x86_sad_hsum(_mm_add_epi64(_mm256_castsi256_si128(acc),
                                    _mm256_extracti128_si256(acc, 1)));
}

std::int64_t sad_16x16_avx2(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride) {
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < 16; y += 2) {
    __m256i c = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(cur, cur_stride, y)),
        load_row128(cur, cur_stride, y + 1), 1);
    __m256i r = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(ref, ref_stride, y)),
        load_row128(ref, ref_stride, y + 1), 1);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, r));
  }
  return hsum_sad256(acc);
}

std::int64_t sad_16x16_cutoff_avx2(const std::uint8_t* cur, int cur_stride,
                                   const std::uint8_t* ref, int ref_stride,
                                   std::int64_t cutoff, int* rows_processed) {
  // Row-at-a-time: the scalar loop re-checks the cutoff after every row,
  // and the metered row count must match it exactly, so no row pairing.
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    __m128i c = load_row128(cur, cur_stride, y);
    __m128i r = load_row128(ref, ref_stride, y);
    sad += x86_sad_hsum(_mm_sad_epu8(c, r));
    if (sad >= cutoff) {
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_self_16x16_avx2(const std::uint8_t* cur, int cur_stride) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  for (int y = 0; y < 16; y += 2) {
    __m256i c = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(cur, cur_stride, y)),
        load_row128(cur, cur_stride, y + 1), 1);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, zero));
  }
  const std::int64_t sum = hsum_sad256(acc);
  const int mean = static_cast<int>(sum / 256);  // fits a byte
  const __m256i vmean = _mm256_set1_epi8(static_cast<char>(mean));
  __m256i dev = zero;
  for (int y = 0; y < 16; y += 2) {
    __m256i c = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(cur, cur_stride, y)),
        load_row128(cur, cur_stride, y + 1), 1);
    dev = _mm256_add_epi64(dev, _mm256_sad_epu8(c, vmean));
  }
  return hsum_sad256(dev);
}

// ---------------------------------------------------------------------------
// Batched SAD: 2 candidates per 256-bit accumulator, shared current rows.
// ---------------------------------------------------------------------------

void sad_16x16_x4_avx2(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* const refs[4], int ref_stride,
                       std::int64_t sads[4]) {
  __m256i acc01 = _mm256_setzero_si256();
  __m256i acc23 = _mm256_setzero_si256();
  for (int y = 0; y < 16; ++y) {
    __m128i c128 = load_row128(cur, cur_stride, y);
    __m256i c = _mm256_inserti128_si256(_mm256_castsi128_si256(c128), c128, 1);
    const std::ptrdiff_t roff = static_cast<std::ptrdiff_t>(y) * ref_stride;
    __m256i r01 = _mm256_inserti128_si256(
        _mm256_castsi128_si256(x86_loadu(refs[0] + roff)),
        x86_loadu(refs[1] + roff), 1);
    __m256i r23 = _mm256_inserti128_si256(
        _mm256_castsi128_si256(x86_loadu(refs[2] + roff)),
        x86_loadu(refs[3] + roff), 1);
    acc01 = _mm256_add_epi64(acc01, _mm256_sad_epu8(c, r01));
    acc23 = _mm256_add_epi64(acc23, _mm256_sad_epu8(c, r23));
  }
  sads[0] = x86_sad_hsum(_mm256_castsi256_si128(acc01));
  sads[1] = x86_sad_hsum(_mm256_extracti128_si256(acc01, 1));
  sads[2] = x86_sad_hsum(_mm256_castsi256_si128(acc23));
  sads[3] = x86_sad_hsum(_mm256_extracti128_si256(acc23, 1));
}

void sad_16x16_x8_avx2(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* const refs[8], int ref_stride,
                       std::int64_t sads[8]) {
  __m256i acc[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                    _mm256_setzero_si256(), _mm256_setzero_si256()};
  for (int y = 0; y < 16; ++y) {
    __m128i c128 = load_row128(cur, cur_stride, y);
    __m256i c = _mm256_inserti128_si256(_mm256_castsi128_si256(c128), c128, 1);
    const std::ptrdiff_t roff = static_cast<std::ptrdiff_t>(y) * ref_stride;
    for (int i = 0; i < 4; ++i) {
      __m256i r = _mm256_inserti128_si256(
          _mm256_castsi128_si256(x86_loadu(refs[2 * i] + roff)),
          x86_loadu(refs[2 * i + 1] + roff), 1);
      acc[i] = _mm256_add_epi64(acc[i], _mm256_sad_epu8(c, r));
    }
  }
  for (int i = 0; i < 4; ++i) {
    sads[2 * i] = x86_sad_hsum(_mm256_castsi256_si128(acc[i]));
    sads[2 * i + 1] = x86_sad_hsum(_mm256_extracti128_si256(acc[i], 1));
  }
}

// ---------------------------------------------------------------------------
// DCT: 8-lane VPMADDWD formulation (math documented in kernels_x86_128.inl)
// ---------------------------------------------------------------------------

inline __m256i avx2_dct_table(const std::int32_t* p) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
}

inline __m256i avx2_q28_round(__m256i k) {
  const __m256i bias = _mm256_set1_epi32(1 << 12);
  return _mm256_add_epi32(_mm256_srai_epi32(_mm256_add_epi32(k, bias), 13),
                          _mm256_srai_epi32(k, 31));
}

// Packs two 8-lane int32 rows into one 16-lane int16 register in row order
// and applies the coefficient clamp. |values| <= 13451, so PACKS never
// saturates before the explicit clamp.
inline __m256i avx2_clamp_rows(__m256i r0, __m256i r1) {
  __m256i packed = _mm256_permute4x64_epi64(_mm256_packs_epi32(r0, r1),
                                            _MM_SHUFFLE(3, 1, 2, 0));
  return _mm256_min_epi16(
      _mm256_max_epi16(packed, _mm256_set1_epi16(-2048)),
      _mm256_set1_epi16(2047));
}

void forward_dct_8x8_avx2(const std::int16_t* input, std::int16_t* output) {
  const __m256i half = _mm256_set1_epi32(1 << 14);
  const __m256i mask16 = _mm256_set1_epi32(0xFFFF);
  // Pass A (rows): Y[x][v] = sum_y in[x][y] * B[v][y]; each int16 y-pair of
  // row x broadcasts against the pair-interleaved basis rows.
  __m256i yv[8];
  for (int x = 0; x < 8; ++x) {
    __m256i acc = _mm256_setzero_si256();
    for (int q = 0; q < 4; ++q) {
      std::int32_t pair;
      std::memcpy(&pair, input + x * 8 + 2 * q, sizeof(pair));
      acc = _mm256_add_epi32(
          acc, _mm256_madd_epi16(_mm256_set1_epi32(pair),
                                 avx2_dct_table(kDctPairs.row[q])));
    }
    yv[x] = acc;
  }
  // Split Y = hi * 2^15 + lo (both int16-exact) and interleave adjacent x.
  __m256i hp[4], lp[4];
  for (int p = 0; p < 4; ++p) {
    __m256i h0 = _mm256_srai_epi32(_mm256_add_epi32(yv[2 * p], half), 15);
    __m256i l0 = _mm256_sub_epi32(yv[2 * p], _mm256_slli_epi32(h0, 15));
    __m256i h1 = _mm256_srai_epi32(_mm256_add_epi32(yv[2 * p + 1], half), 15);
    __m256i l1 = _mm256_sub_epi32(yv[2 * p + 1], _mm256_slli_epi32(h1, 15));
    hp[p] = _mm256_or_si256(_mm256_and_si256(h0, mask16),
                            _mm256_slli_epi32(h1, 16));
    lp[p] = _mm256_or_si256(_mm256_and_si256(l0, mask16),
                            _mm256_slli_epi32(l1, 16));
  }
  // Pass B: F[u][v] = sum_x B[u][x] * Y[x][v]; Q28 finish in int32.
  for (int u = 0; u < 8; u += 2) {
    __m256i rounded[2];
    for (int k = 0; k < 2; ++k) {
      __m256i fh = _mm256_setzero_si256();
      __m256i fl = _mm256_setzero_si256();
      for (int p = 0; p < 4; ++p) {
        __m256i w = _mm256_set1_epi32(kDctPairs.row[p][u + k]);
        fh = _mm256_add_epi32(fh, _mm256_madd_epi16(hp[p], w));
        fl = _mm256_add_epi32(fl, _mm256_madd_epi16(lp[p], w));
      }
      rounded[k] =
          avx2_q28_round(_mm256_add_epi32(fh, _mm256_srai_epi32(fl, 15)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(output + u * 8),
                        avx2_clamp_rows(rounded[0], rounded[1]));
  }
}

void inverse_dct_8x8_avx2(const std::int16_t* input, std::int16_t* output) {
  const __m256i half = _mm256_set1_epi32(1 << 14);
  // Pass 1: tmp[x][v] = sum_u B[u][x] * F[u][v]; interleave input-row pairs
  // over u so VPMADDWD consumes (F[2p][v], F[2p+1][v]) per lane.
  __m256i ilv[4];
  for (int p = 0; p < 4; ++p) {
    __m128i r0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(input + (2 * p) * 8));
    __m128i r1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(input + (2 * p + 1) * 8));
    ilv[p] = _mm256_inserti128_si256(
        _mm256_castsi128_si256(_mm_unpacklo_epi16(r0, r1)),
        _mm_unpackhi_epi16(r0, r1), 1);
  }
  for (int x = 0; x < 8; x += 2) {
    __m256i rounded[2];
    for (int k = 0; k < 2; ++k) {
      __m256i t = _mm256_setzero_si256();
      for (int p = 0; p < 4; ++p) {
        t = _mm256_add_epi32(
            t, _mm256_madd_epi16(_mm256_set1_epi32(kDctPairs.col[p][x + k]),
                                 ilv[p]));
      }
      // Split hi/lo, pack pairs through the stack, broadcast against the
      // basis column-pair vectors: X[x][y] = sum_v tmp[x][v] * B[v][y].
      __m256i th = _mm256_srai_epi32(_mm256_add_epi32(t, half), 15);
      __m256i tl = _mm256_sub_epi32(t, _mm256_slli_epi32(th, 15));
      alignas(32) std::int32_t buf[8];
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(buf),
          _mm256_permute4x64_epi64(_mm256_packs_epi32(th, tl),
                                   _MM_SHUFFLE(3, 1, 2, 0)));
      __m256i xh = _mm256_setzero_si256();
      __m256i xl = _mm256_setzero_si256();
      for (int q = 0; q < 4; ++q) {
        __m256i bv = avx2_dct_table(kDctPairs.col[q]);
        xh = _mm256_add_epi32(
            xh, _mm256_madd_epi16(_mm256_set1_epi32(buf[q]), bv));
        xl = _mm256_add_epi32(
            xl, _mm256_madd_epi16(_mm256_set1_epi32(buf[4 + q]), bv));
      }
      rounded[k] =
          avx2_q28_round(_mm256_add_epi32(xh, _mm256_srai_epi32(xl, 15)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(output + x * 8),
                        avx2_clamp_rows(rounded[0], rounded[1]));
  }
}

// ---------------------------------------------------------------------------
// Quantization
// ---------------------------------------------------------------------------

// Restores 16 int32 lane-pairs to the original int16 element order after
// _mm256_packs_epi32's within-128-lane interleave.
inline __m256i pack_epi32_ordered(__m256i lo, __m256i hi) {
  return _mm256_permute4x64_epi64(_mm256_packs_epi32(lo, hi),
                                  _MM_SHUFFLE(3, 1, 2, 0));
}

int quantize_ac_avx2(std::int16_t* block, int first, int qp, bool intra) {
  PB_DCHECK(first == 0 || first == 1);
  PB_CHECK(qp >= kMinQp && qp <= kMaxQp);
  const int d = 2 * qp;
  const __m256i vmagic = _mm256_set1_epi32((1 << 18) / d + 1);
  const __m256i vbias = _mm256_set1_epi32(intra ? 0 : qp / 2);
  const __m256i vmax = _mm256_set1_epi32(kMaxLevel);
  const __m256i zero = _mm256_setzero_si256();
  const std::int16_t saved_dc = block[0];

  auto level_of = [&](__m256i x) {
    __m256i mag = _mm256_abs_epi32(x);
    __m256i num = _mm256_max_epi32(_mm256_sub_epi32(mag, vbias), zero);
    __m256i lvl = _mm256_srli_epi32(_mm256_mullo_epi32(num, vmagic), 18);
    lvl = _mm256_min_epi32(lvl, vmax);
    return _mm256_sign_epi32(lvl, x);  // negates for x<0, zeroes for x==0
  };

  int nonzero = 0;
  for (int i = 0; i < 64; i += 16) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + i));
    __m256i xlo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v));
    __m256i xhi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(v, 1));
    __m256i packed = pack_epi32_ordered(level_of(xlo), level_of(xhi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + i), packed);
    std::uint32_t zero_mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi16(packed, zero)));
    if (i == 0 && first == 1) zero_mask |= 0x3u;  // DC slot doesn't count
    nonzero += 16 - __builtin_popcount(zero_mask) / 2;
  }
  if (first == 1) block[0] = saved_dc;
  return nonzero;
}

void dequantize_ac_avx2(std::int16_t* block, int first, int qp) {
  PB_DCHECK(first == 0 || first == 1);
  const __m256i vqp = _mm256_set1_epi32(qp);
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i veven = _mm256_set1_epi32(qp % 2 == 0 ? 1 : 0);
  const __m256i vmax = _mm256_set1_epi32(2047);
  const std::int16_t saved_dc = block[0];

  auto rec_of = [&](__m256i x) {
    __m256i mag = _mm256_abs_epi32(x);
    // |REC| = QP * (2|LEVEL| + 1), minus 1 when QP is even (oddification).
    __m256i rec = _mm256_mullo_epi32(
        vqp, _mm256_add_epi32(_mm256_slli_epi32(mag, 1), vone));
    rec = _mm256_min_epi32(_mm256_sub_epi32(rec, veven), vmax);
    return _mm256_sign_epi32(rec, x);  // LEVEL==0 reconstructs to 0
  };

  for (int i = 0; i < 64; i += 16) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + i));
    __m256i xlo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v));
    __m256i xhi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(v, 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + i),
                        pack_epi32_ordered(rec_of(xlo), rec_of(xhi)));
  }
  if (first == 1) block[0] = saved_dc;
}

}  // namespace

const KernelTable* avx2_table_or_null() {
  static const KernelTable table = [] {
    KernelTable t = scalar_table();
    t.backend = Backend::kAvx2;
    t.name = "avx2";
    auto adopt = [&t](KernelId id) {
      t.origin[static_cast<int>(id)] = Backend::kAvx2;
    };
    t.sad_16x16 = &sad_16x16_avx2;
    adopt(KernelId::kSad16x16);
    t.sad_16x16_cutoff = &sad_16x16_cutoff_avx2;
    adopt(KernelId::kSad16x16Cutoff);
    t.sad_self_16x16 = &sad_self_16x16_avx2;
    adopt(KernelId::kSadSelf16x16);
    t.sad_16x16_x4 = &sad_16x16_x4_avx2;
    adopt(KernelId::kSad16x16X4);
    t.sad_16x16_x8 = &sad_16x16_x8_avx2;
    adopt(KernelId::kSad16x16X8);
    t.sad_16x16_hpel_cutoff = &sad_16x16_hpel_cutoff_128;
    adopt(KernelId::kSad16x16HpelCutoff);
    t.forward_dct_8x8 = &forward_dct_8x8_avx2;
    adopt(KernelId::kForwardDct8x8);
    t.inverse_dct_8x8 = &inverse_dct_8x8_avx2;
    adopt(KernelId::kInverseDct8x8);
    t.quantize_ac = &quantize_ac_avx2;
    adopt(KernelId::kQuantizeAc);
    t.dequantize_ac = &dequantize_ac_avx2;
    adopt(KernelId::kDequantizeAc);
    t.mc_predict = &mc_predict_128;
    adopt(KernelId::kMcPredict);
    t.sub_pred_8x8 = &sub_pred_8x8_128;
    adopt(KernelId::kSubPred8x8);
    t.add_pred_8x8 = &add_pred_8x8_128;
    adopt(KernelId::kAddPred8x8);
    return t;
  }();
  return &table;
}

}  // namespace pbpair::codec::kernels

#else  // !defined(__AVX2__)

namespace pbpair::codec::kernels {
const KernelTable* avx2_table_or_null() { return nullptr; }
}  // namespace pbpair::codec::kernels

#endif
