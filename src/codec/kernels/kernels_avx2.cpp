// AVX2 kernels. Compiled with -mavx2 (see src/codec/CMakeLists.txt); the
// dispatcher only hands this table out when the running CPU reports AVX2.
//
// Bit-exactness notes (each proven against the scalar reference in
// tests/test_kernels.cpp):
//  - SAD: VPSADBW is an exact sum of absolute byte differences; integer
//    addition is associative, so lane order cannot change the total. The
//    cutoff variant keeps the scalar per-row termination points.
//  - DCT: pass 1 products fit int32 (|basis * input| <= 8035 * 2048) so
//    VPMULLD matches the scalar int32 arithmetic; pass 2 accumulates
//    int32 x int32 products in int64 lanes via VPMULDQ, again exact.
//  - Quant: division by 2*qp is replaced by the magic-multiply
//    floor(n * (floor(2^18 / d) + 1) >> 18), which equals floor(n / d) for
//    all n <= 4095, d <= 62: the rounding error n*e/2^18 < 4096/2^18 is
//    below the smallest distance 1/62 from a rational n/d to the next
//    integer. DCT output is clamped to [-2048, 2047], so every codec
//    input is in range.
#include "codec/kernels/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "codec/kernels/dct_tables.h"
#include "codec/quant.h"
#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::codec::kernels {
namespace {

inline __m128i load_row128(const std::uint8_t* base, int stride, int y) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(
      base + static_cast<std::ptrdiff_t>(y) * stride));
}

inline std::int64_t hsum_sad128(__m128i acc) {
  return _mm_cvtsi128_si64(acc) +
         _mm_cvtsi128_si64(_mm_srli_si128(acc, 8));
}

inline std::int64_t hsum_sad256(__m256i acc) {
  return hsum_sad128(_mm_add_epi64(_mm256_castsi256_si128(acc),
                                   _mm256_extracti128_si256(acc, 1)));
}

std::int64_t sad_16x16_avx2(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride) {
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < 16; y += 2) {
    __m256i c = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(cur, cur_stride, y)),
        load_row128(cur, cur_stride, y + 1), 1);
    __m256i r = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(ref, ref_stride, y)),
        load_row128(ref, ref_stride, y + 1), 1);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, r));
  }
  return hsum_sad256(acc);
}

std::int64_t sad_16x16_cutoff_avx2(const std::uint8_t* cur, int cur_stride,
                                   const std::uint8_t* ref, int ref_stride,
                                   std::int64_t cutoff, int* rows_processed) {
  // Row-at-a-time: the scalar loop re-checks the cutoff after every row,
  // and the metered row count must match it exactly, so no row pairing.
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    __m128i c = load_row128(cur, cur_stride, y);
    __m128i r = load_row128(ref, ref_stride, y);
    sad += hsum_sad128(_mm_sad_epu8(c, r));
    if (sad >= cutoff) {
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_self_16x16_avx2(const std::uint8_t* cur, int cur_stride) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  for (int y = 0; y < 16; y += 2) {
    __m256i c = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(cur, cur_stride, y)),
        load_row128(cur, cur_stride, y + 1), 1);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, zero));
  }
  const std::int64_t sum = hsum_sad256(acc);
  const int mean = static_cast<int>(sum / 256);  // fits a byte
  const __m256i vmean = _mm256_set1_epi8(static_cast<char>(mean));
  __m256i dev = zero;
  for (int y = 0; y < 16; y += 2) {
    __m256i c = _mm256_inserti128_si256(
        _mm256_castsi128_si256(load_row128(cur, cur_stride, y)),
        load_row128(cur, cur_stride, y + 1), 1);
    dev = _mm256_add_epi64(dev, _mm256_sad_epu8(c, vmean));
  }
  return hsum_sad256(dev);
}

// ---------------------------------------------------------------------------
// DCT
// ---------------------------------------------------------------------------

struct DctVecTables {
  // fwd_col_*[y]: basis column y split across int64 lanes, low dword holds
  // the int32 value VPMULDQ reads: {B[0][y]..B[3][y]} / {B[4][y]..B[7][y]}.
  __m256i fwd_col_lo[8];
  __m256i fwd_col_hi[8];
  // inv_row_*[v]: basis row v, {B[v][0]..B[v][3]} / {B[v][4]..B[v][7]}.
  __m256i inv_row_lo[8];
  __m256i inv_row_hi[8];
};

const DctVecTables& dct_vec_tables() {
  static const DctVecTables tables = [] {
    DctVecTables t;
    for (int i = 0; i < 8; ++i) {
      t.fwd_col_lo[i] = _mm256_set_epi64x(kDctBasis[3][i], kDctBasis[2][i],
                                          kDctBasis[1][i], kDctBasis[0][i]);
      t.fwd_col_hi[i] = _mm256_set_epi64x(kDctBasis[7][i], kDctBasis[6][i],
                                          kDctBasis[5][i], kDctBasis[4][i]);
      t.inv_row_lo[i] = _mm256_set_epi64x(kDctBasis[i][3], kDctBasis[i][2],
                                          kDctBasis[i][1], kDctBasis[i][0]);
      t.inv_row_hi[i] = _mm256_set_epi64x(kDctBasis[i][7], kDctBasis[i][6],
                                          kDctBasis[i][5], kDctBasis[i][4]);
    }
    return t;
  }();
  return tables;
}

// Shared pass-2 tail: 8 int64 accumulators -> rounded, clamped int16 row.
inline void finish_q28_row(__m256i acc_lo, __m256i acc_hi,
                           std::int16_t* out) {
  alignas(32) std::int64_t vals[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(vals), acc_lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(vals + 4), acc_hi);
  for (int i = 0; i < 8; ++i) {
    std::int64_t acc = vals[i];
    std::int64_t rounded = (acc + (acc >= 0 ? (1 << 27) : -(1 << 27))) >> 28;
    out[i] = static_cast<std::int16_t>(
        common::clamp<std::int64_t>(rounded, -2048, 2047));
  }
}

void forward_dct_8x8_avx2(const std::int16_t* input, std::int16_t* output) {
  // Widen the 8 input rows once: in32[x] = row x over y, as int32 lanes.
  __m256i in32[8];
  for (int x = 0; x < 8; ++x) {
    in32[x] = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(input + x * 8)));
  }
  // Pass 1 (columns): tmp[u][y] = sum_x B[u][x] * in[x][y], int32 exact.
  alignas(32) std::int32_t tmp[64];
  for (int u = 0; u < 8; ++u) {
    __m256i acc = _mm256_setzero_si256();
    for (int x = 0; x < 8; ++x) {
      acc = _mm256_add_epi32(
          acc, _mm256_mullo_epi32(in32[x], _mm256_set1_epi32(kDctBasis[u][x])));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + u * 8), acc);
  }
  // Pass 2 (rows): F[u][v] = sum_y tmp[u][y] * B[v][y] in int64 lanes.
  const DctVecTables& t = dct_vec_tables();
  for (int u = 0; u < 8; ++u) {
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (int y = 0; y < 8; ++y) {
      __m256i tv = _mm256_set1_epi64x(tmp[u * 8 + y]);
      acc_lo = _mm256_add_epi64(acc_lo, _mm256_mul_epi32(tv, t.fwd_col_lo[y]));
      acc_hi = _mm256_add_epi64(acc_hi, _mm256_mul_epi32(tv, t.fwd_col_hi[y]));
    }
    finish_q28_row(acc_lo, acc_hi, output + u * 8);
  }
}

void inverse_dct_8x8_avx2(const std::int16_t* input, std::int16_t* output) {
  __m256i in32[8];
  for (int u = 0; u < 8; ++u) {
    in32[u] = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(input + u * 8)));
  }
  // Pass 1: tmp[x][v] = sum_u B[u][x] * F[u][v].
  alignas(32) std::int32_t tmp[64];
  for (int x = 0; x < 8; ++x) {
    __m256i acc = _mm256_setzero_si256();
    for (int u = 0; u < 8; ++u) {
      acc = _mm256_add_epi32(
          acc, _mm256_mullo_epi32(in32[u], _mm256_set1_epi32(kDctBasis[u][x])));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + x * 8), acc);
  }
  // Pass 2: X[x][y] = sum_v tmp[x][v] * B[v][y].
  const DctVecTables& t = dct_vec_tables();
  for (int x = 0; x < 8; ++x) {
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (int v = 0; v < 8; ++v) {
      __m256i tv = _mm256_set1_epi64x(tmp[x * 8 + v]);
      acc_lo = _mm256_add_epi64(acc_lo, _mm256_mul_epi32(tv, t.inv_row_lo[v]));
      acc_hi = _mm256_add_epi64(acc_hi, _mm256_mul_epi32(tv, t.inv_row_hi[v]));
    }
    finish_q28_row(acc_lo, acc_hi, output + x * 8);
  }
}

// ---------------------------------------------------------------------------
// Quantization
// ---------------------------------------------------------------------------

// Restores 16 int32 lane-pairs to the original int16 element order after
// _mm256_packs_epi32's within-128-lane interleave.
inline __m256i pack_epi32_ordered(__m256i lo, __m256i hi) {
  return _mm256_permute4x64_epi64(_mm256_packs_epi32(lo, hi),
                                  _MM_SHUFFLE(3, 1, 2, 0));
}

int quantize_ac_avx2(std::int16_t* block, int first, int qp, bool intra) {
  PB_DCHECK(first == 0 || first == 1);
  PB_CHECK(qp >= kMinQp && qp <= kMaxQp);
  const int d = 2 * qp;
  const __m256i vmagic = _mm256_set1_epi32((1 << 18) / d + 1);
  const __m256i vbias = _mm256_set1_epi32(intra ? 0 : qp / 2);
  const __m256i vmax = _mm256_set1_epi32(kMaxLevel);
  const __m256i zero = _mm256_setzero_si256();
  const std::int16_t saved_dc = block[0];

  auto level_of = [&](__m256i x) {
    __m256i mag = _mm256_abs_epi32(x);
    __m256i num = _mm256_max_epi32(_mm256_sub_epi32(mag, vbias), zero);
    __m256i lvl = _mm256_srli_epi32(_mm256_mullo_epi32(num, vmagic), 18);
    lvl = _mm256_min_epi32(lvl, vmax);
    return _mm256_sign_epi32(lvl, x);  // negates for x<0, zeroes for x==0
  };

  int nonzero = 0;
  for (int i = 0; i < 64; i += 16) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + i));
    __m256i xlo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v));
    __m256i xhi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(v, 1));
    __m256i packed = pack_epi32_ordered(level_of(xlo), level_of(xhi));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + i), packed);
    std::uint32_t zero_mask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi16(packed, zero)));
    if (i == 0 && first == 1) zero_mask |= 0x3u;  // DC slot doesn't count
    nonzero += 16 - __builtin_popcount(zero_mask) / 2;
  }
  if (first == 1) block[0] = saved_dc;
  return nonzero;
}

void dequantize_ac_avx2(std::int16_t* block, int first, int qp) {
  PB_DCHECK(first == 0 || first == 1);
  const __m256i vqp = _mm256_set1_epi32(qp);
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i veven = _mm256_set1_epi32(qp % 2 == 0 ? 1 : 0);
  const __m256i vmax = _mm256_set1_epi32(2047);
  const std::int16_t saved_dc = block[0];

  auto rec_of = [&](__m256i x) {
    __m256i mag = _mm256_abs_epi32(x);
    // |REC| = QP * (2|LEVEL| + 1), minus 1 when QP is even (oddification).
    __m256i rec = _mm256_mullo_epi32(
        vqp, _mm256_add_epi32(_mm256_slli_epi32(mag, 1), vone));
    rec = _mm256_min_epi32(_mm256_sub_epi32(rec, veven), vmax);
    return _mm256_sign_epi32(rec, x);  // LEVEL==0 reconstructs to 0
  };

  for (int i = 0; i < 64; i += 16) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + i));
    __m256i xlo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v));
    __m256i xhi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(v, 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + i),
                        pack_epi32_ordered(rec_of(xlo), rec_of(xhi)));
  }
  if (first == 1) block[0] = saved_dc;
}

}  // namespace

const KernelTable* avx2_table_or_null() {
  static const KernelTable table = {
      Backend::kAvx2,
      "avx2",
      &sad_16x16_avx2,
      &sad_16x16_cutoff_avx2,
      &sad_self_16x16_avx2,
      &forward_dct_8x8_avx2,
      &inverse_dct_8x8_avx2,
      &quantize_ac_avx2,
      &dequantize_ac_avx2,
  };
  return &table;
}

}  // namespace pbpair::codec::kernels

#else  // !defined(__AVX2__)

namespace pbpair::codec::kernels {
const KernelTable* avx2_table_or_null() { return nullptr; }
}  // namespace pbpair::codec::kernels

#endif
