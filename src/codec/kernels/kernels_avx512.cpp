// AVX-512 kernels (F+BW+DQ+VL). Compiled with -mavx512* when the compiler
// supports it (see src/codec/CMakeLists.txt); the dispatcher only hands
// this table out after a runtime CPUID check for all four extensions.
//
// The 512-bit wins here are the batched-SAD wavefront kernels (four 16-byte
// candidate rows per VPSADBW) and quant/dequant (16 int32 lanes per op with
// mask-register sign handling instead of VPSIGND). The DCT, half-pel, and
// single-SAD kernels inherit the AVX2 implementations — recorded as such in
// the per-kernel origin — because 8x8 transforms and row-at-a-time cutoff
// loops don't widen profitably past 256 bits.
#include "codec/kernels/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include "codec/quant.h"
#include "common/check.h"

namespace pbpair::codec::kernels {

// Defined in kernels_avx2.cpp; the AVX-512 table inherits its kernels.
const KernelTable* avx2_table_or_null();

namespace {

inline __m128i load_row128(const std::uint8_t* base, std::ptrdiff_t off) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + off));
}

// Sums the 8 int64 VPSADBW partials of one zmm into per-candidate SADs:
// lanes (2i, 2i+1) belong to the 16-byte row block of candidate i.
inline void store_sads_x4(__m512i acc, std::int64_t* sads) {
  alignas(64) std::int64_t v[8];
  _mm512_store_si512(reinterpret_cast<__m512i*>(v), acc);
  for (int i = 0; i < 4; ++i) sads[i] = v[2 * i] + v[2 * i + 1];
}

void sad_16x16_x4_avx512(const std::uint8_t* cur, int cur_stride,
                         const std::uint8_t* const refs[4], int ref_stride,
                         std::int64_t sads[4]) {
  __m512i acc = _mm512_setzero_si512();
  for (int y = 0; y < 16; ++y) {
    const std::ptrdiff_t coff = static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::ptrdiff_t roff = static_cast<std::ptrdiff_t>(y) * ref_stride;
    __m512i c = _mm512_broadcast_i32x4(load_row128(cur, coff));
    __m512i r = _mm512_castsi128_si512(load_row128(refs[0], roff));
    r = _mm512_inserti32x4(r, load_row128(refs[1], roff), 1);
    r = _mm512_inserti32x4(r, load_row128(refs[2], roff), 2);
    r = _mm512_inserti32x4(r, load_row128(refs[3], roff), 3);
    acc = _mm512_add_epi64(acc, _mm512_sad_epu8(c, r));
  }
  store_sads_x4(acc, sads);
}

void sad_16x16_x8_avx512(const std::uint8_t* cur, int cur_stride,
                         const std::uint8_t* const refs[8], int ref_stride,
                         std::int64_t sads[8]) {
  __m512i acc_lo = _mm512_setzero_si512();
  __m512i acc_hi = _mm512_setzero_si512();
  for (int y = 0; y < 16; ++y) {
    const std::ptrdiff_t coff = static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::ptrdiff_t roff = static_cast<std::ptrdiff_t>(y) * ref_stride;
    __m512i c = _mm512_broadcast_i32x4(load_row128(cur, coff));
    __m512i r0 = _mm512_castsi128_si512(load_row128(refs[0], roff));
    r0 = _mm512_inserti32x4(r0, load_row128(refs[1], roff), 1);
    r0 = _mm512_inserti32x4(r0, load_row128(refs[2], roff), 2);
    r0 = _mm512_inserti32x4(r0, load_row128(refs[3], roff), 3);
    __m512i r1 = _mm512_castsi128_si512(load_row128(refs[4], roff));
    r1 = _mm512_inserti32x4(r1, load_row128(refs[5], roff), 1);
    r1 = _mm512_inserti32x4(r1, load_row128(refs[6], roff), 2);
    r1 = _mm512_inserti32x4(r1, load_row128(refs[7], roff), 3);
    acc_lo = _mm512_add_epi64(acc_lo, _mm512_sad_epu8(c, r0));
    acc_hi = _mm512_add_epi64(acc_hi, _mm512_sad_epu8(c, r1));
  }
  store_sads_x4(acc_lo, sads);
  store_sads_x4(acc_hi, sads + 4);
}

// ---------------------------------------------------------------------------
// Quantization: one 16-lane int32 vector per 16 coefficients, sign and
// zeroing via mask registers (AVX-512 has no VPSIGND).
// ---------------------------------------------------------------------------

int quantize_ac_avx512(std::int16_t* block, int first, int qp, bool intra) {
  PB_DCHECK(first == 0 || first == 1);
  PB_CHECK(qp >= kMinQp && qp <= kMaxQp);
  const int d = 2 * qp;
  const __m512i vmagic = _mm512_set1_epi32((1 << 18) / d + 1);
  const __m512i vbias = _mm512_set1_epi32(intra ? 0 : qp / 2);
  const __m512i vmax = _mm512_set1_epi32(kMaxLevel);
  const __m512i zero = _mm512_setzero_si512();
  const std::int16_t saved_dc = block[0];

  int nonzero = 0;
  for (int i = 0; i < 64; i += 16) {
    __m512i x = _mm512_cvtepi16_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + i)));
    __m512i mag = _mm512_abs_epi32(x);
    __m512i num = _mm512_max_epi32(_mm512_sub_epi32(mag, vbias), zero);
    __m512i lvl = _mm512_srli_epi32(_mm512_mullo_epi32(num, vmagic), 18);
    lvl = _mm512_min_epi32(lvl, vmax);
    const __mmask16 neg = _mm512_cmplt_epi32_mask(x, zero);
    lvl = _mm512_mask_sub_epi32(lvl, neg, zero, lvl);
    __mmask16 nz = _mm512_test_epi32_mask(lvl, lvl);
    if (i == 0 && first == 1) nz &= static_cast<__mmask16>(0xFFFE);
    nonzero += __builtin_popcount(static_cast<unsigned>(nz));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + i),
                        _mm512_cvtepi32_epi16(lvl));
  }
  if (first == 1) block[0] = saved_dc;
  return nonzero;
}

void dequantize_ac_avx512(std::int16_t* block, int first, int qp) {
  PB_DCHECK(first == 0 || first == 1);
  const __m512i vqp = _mm512_set1_epi32(qp);
  const __m512i vone = _mm512_set1_epi32(1);
  const __m512i veven = _mm512_set1_epi32(qp % 2 == 0 ? 1 : 0);
  const __m512i vmax = _mm512_set1_epi32(2047);
  const __m512i zero = _mm512_setzero_si512();
  const std::int16_t saved_dc = block[0];

  for (int i = 0; i < 64; i += 16) {
    __m512i x = _mm512_cvtepi16_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(block + i)));
    __m512i mag = _mm512_abs_epi32(x);
    // |REC| = QP * (2|LEVEL| + 1), minus 1 when QP is even (oddification).
    __m512i rec = _mm512_mullo_epi32(
        vqp, _mm512_add_epi32(_mm512_slli_epi32(mag, 1), vone));
    rec = _mm512_min_epi32(_mm512_sub_epi32(rec, veven), vmax);
    const __mmask16 neg = _mm512_cmplt_epi32_mask(x, zero);
    rec = _mm512_mask_sub_epi32(rec, neg, zero, rec);
    // LEVEL == 0 reconstructs to 0, not to QP - even.
    rec = _mm512_maskz_mov_epi32(_mm512_test_epi32_mask(x, x), rec);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(block + i),
                        _mm512_cvtepi32_epi16(rec));
  }
  if (first == 1) block[0] = saved_dc;
}

}  // namespace

const KernelTable* avx512_table_or_null() {
  static const KernelTable table = [] {
    // Inherit everything AVX2 provides (origin records carry over), then
    // override the slots where 512-bit lanes genuinely pay off.
    const KernelTable* base = avx2_table_or_null();
    KernelTable t = base != nullptr ? *base : scalar_table();
    t.backend = Backend::kAvx512;
    t.name = "avx512";
    auto adopt = [&t](KernelId id) {
      t.origin[static_cast<int>(id)] = Backend::kAvx512;
    };
    t.sad_16x16_x4 = &sad_16x16_x4_avx512;
    adopt(KernelId::kSad16x16X4);
    t.sad_16x16_x8 = &sad_16x16_x8_avx512;
    adopt(KernelId::kSad16x16X8);
    t.quantize_ac = &quantize_ac_avx512;
    adopt(KernelId::kQuantizeAc);
    t.dequantize_ac = &dequantize_ac_avx512;
    adopt(KernelId::kDequantizeAc);
    return t;
  }();
  return &table;
}

}  // namespace pbpair::codec::kernels

#else  // !AVX-512 F+BW+DQ+VL

namespace pbpair::codec::kernels {
const KernelTable* avx512_table_or_null() { return nullptr; }
}  // namespace pbpair::codec::kernels

#endif
