// Scalar reference kernels. These are the ground truth: every SIMD backend
// must reproduce their outputs (and early-exit row counts) bit-for-bit,
// which tests/test_kernels.cpp verifies exhaustively.
#include "codec/kernels/kernels.h"

#include "codec/kernels/dct_tables.h"
#include "codec/quant.h"
#include "common/math_util.h"

namespace pbpair::codec::kernels {
namespace {

std::int64_t sad_16x16_scalar(const std::uint8_t* cur, int cur_stride,
                              const std::uint8_t* ref, int ref_stride) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* rrow = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    for (int x = 0; x < 16; ++x) {
      sad += common::iabs(static_cast<int>(crow[x]) - static_cast<int>(rrow[x]));
    }
  }
  return sad;
}

std::int64_t sad_16x16_cutoff_scalar(const std::uint8_t* cur, int cur_stride,
                                     const std::uint8_t* ref, int ref_stride,
                                     std::int64_t cutoff,
                                     int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* rrow = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    for (int x = 0; x < 16; ++x) {
      sad += common::iabs(static_cast<int>(crow[x]) - static_cast<int>(rrow[x]));
    }
    if (sad >= cutoff) {  // cannot become the best candidate
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_self_16x16_scalar(const std::uint8_t* cur, int cur_stride) {
  std::int64_t sum = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    for (int x = 0; x < 16; ++x) sum += crow[x];
  }
  int mean = static_cast<int>(sum / 256);
  std::int64_t dev = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    for (int x = 0; x < 16; ++x) {
      dev += common::iabs(static_cast<int>(crow[x]) - mean);
    }
  }
  return dev;
}

void sad_16x16_x4_scalar(const std::uint8_t* cur, int cur_stride,
                         const std::uint8_t* const refs[4], int ref_stride,
                         std::int64_t sads[4]) {
  for (int i = 0; i < 4; ++i) {
    sads[i] = sad_16x16_scalar(cur, cur_stride, refs[i], ref_stride);
  }
}

void sad_16x16_x8_scalar(const std::uint8_t* cur, int cur_stride,
                         const std::uint8_t* const refs[8], int ref_stride,
                         std::int64_t sads[8]) {
  for (int i = 0; i < 8; ++i) {
    sads[i] = sad_16x16_scalar(cur, cur_stride, refs[i], ref_stride);
  }
}

// Mirrors sample_halfpel in codec/mc.cpp, on raw rows with the clamping
// already resolved by the wrapper: a = floor sample, b = +hx neighbor,
// c = +hy neighbor, d = diagonal.
std::int64_t sad_16x16_hpel_cutoff_scalar(const std::uint8_t* cur,
                                          int cur_stride,
                                          const std::uint8_t* ref,
                                          int ref_stride, int hx, int hy,
                                          std::int64_t cutoff,
                                          int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* r0 = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    const std::uint8_t* r1 =
        ref + static_cast<std::ptrdiff_t>(y + hy) * ref_stride;
    for (int x = 0; x < 16; ++x) {
      int p;
      if (hx == 0 && hy == 0) {
        p = r0[x];
      } else if (hy == 0) {
        p = (r0[x] + r0[x + 1] + 1) >> 1;
      } else if (hx == 0) {
        p = (r0[x] + r1[x] + 1) >> 1;
      } else {
        p = (r0[x] + r0[x + 1] + r1[x] + r1[x + 1] + 2) >> 2;
      }
      sad += common::iabs(static_cast<int>(crow[x]) - p);
    }
    if (sad >= cutoff) {
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

void mc_predict_scalar(const std::uint8_t* src, int src_stride,
                       std::uint8_t* dst, int w, int h, int hx, int hy) {
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* r0 = src + static_cast<std::ptrdiff_t>(y) * src_stride;
    const std::uint8_t* r1 =
        src + static_cast<std::ptrdiff_t>(y + hy) * src_stride;
    std::uint8_t* drow = dst + static_cast<std::ptrdiff_t>(y) * w;
    for (int x = 0; x < w; ++x) {
      int p;
      if (hx == 0 && hy == 0) {
        p = r0[x];
      } else if (hy == 0) {
        p = (r0[x] + r0[x + 1] + 1) >> 1;
      } else if (hx == 0) {
        p = (r0[x] + r1[x] + 1) >> 1;
      } else {
        p = (r0[x] + r0[x + 1] + r1[x] + r1[x + 1] + 2) >> 2;
      }
      drow[x] = static_cast<std::uint8_t>(p);
    }
  }
}

void sub_pred_8x8_scalar(const std::uint8_t* cur, int cur_stride,
                         const std::uint8_t* pred, int pred_stride,
                         std::int16_t* residual) {
  for (int y = 0; y < 8; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* prow =
        pred + static_cast<std::ptrdiff_t>(y) * pred_stride;
    for (int x = 0; x < 8; ++x) {
      residual[y * 8 + x] =
          static_cast<std::int16_t>(static_cast<int>(crow[x]) -
                                    static_cast<int>(prow[x]));
    }
  }
}

void add_pred_8x8_scalar(std::uint8_t* dst, int dst_stride,
                         const std::uint8_t* pred, int pred_stride,
                         const std::int16_t* residual) {
  for (int y = 0; y < 8; ++y) {
    std::uint8_t* drow = dst + static_cast<std::ptrdiff_t>(y) * dst_stride;
    const std::uint8_t* prow =
        pred + static_cast<std::ptrdiff_t>(y) * pred_stride;
    for (int x = 0; x < 8; ++x) {
      int v = static_cast<int>(prow[x]) + residual[y * 8 + x];
      drow[x] = static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  }
}

void forward_dct_8x8_scalar(const std::int16_t* input, std::int16_t* output) {
  // Pass 1 (columns): tmp[u][y] = sum_x B[u][x] * in[x][y].
  std::int32_t tmp[64];
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      std::int32_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += kDctBasis[u][x] * static_cast<std::int32_t>(input[x * 8 + y]);
      }
      tmp[u * 8 + y] = acc;  // |acc| <= 8 * 8035 * 2048 fits easily
    }
  }
  // Pass 2 (rows): F[u][v] = sum_y tmp[u][y] * B[v][y], then drop Q28.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<std::int64_t>(tmp[u * 8 + y]) * kDctBasis[v][y];
      }
      // Round and rescale from Q28 to integer coefficients.
      std::int64_t rounded = (acc + (acc >= 0 ? (1 << 27) : -(1 << 27))) >> 28;
      output[u * 8 + v] = static_cast<std::int16_t>(
          common::clamp<std::int64_t>(rounded, -2048, 2047));
    }
  }
}

void inverse_dct_8x8_scalar(const std::int16_t* input, std::int16_t* output) {
  // Pass 1: tmp[x][v] = sum_u B[u][x] * F[u][v] (B^T * F).
  std::int32_t tmp[64];
  for (int x = 0; x < 8; ++x) {
    for (int v = 0; v < 8; ++v) {
      std::int32_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += kDctBasis[u][x] * static_cast<std::int32_t>(input[u * 8 + v]);
      }
      tmp[x * 8 + v] = acc;
    }
  }
  // Pass 2: X[x][y] = sum_v tmp[x][v] * B[v][y], drop Q28.
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += static_cast<std::int64_t>(tmp[x * 8 + v]) * kDctBasis[v][y];
      }
      std::int64_t rounded = (acc + (acc >= 0 ? (1 << 27) : -(1 << 27))) >> 28;
      output[x * 8 + y] = static_cast<std::int16_t>(
          common::clamp<std::int64_t>(rounded, -2048, 2047));
    }
  }
}

int quantize_ac_scalar(std::int16_t* block, int first, int qp, bool intra) {
  int nonzero = 0;
  for (int i = first; i < 64; ++i) {
    int level = quantize_coeff(block[i], qp, intra);
    block[i] = static_cast<std::int16_t>(level);
    if (level != 0) ++nonzero;
  }
  return nonzero;
}

void dequantize_ac_scalar(std::int16_t* block, int first, int qp) {
  for (int i = first; i < 64; ++i) {
    block[i] = static_cast<std::int16_t>(dequantize_coeff(block[i], qp));
  }
}

KernelTable make_scalar_table() {
  KernelTable t;
  t.backend = Backend::kScalar;
  t.name = "scalar";
  t.sad_16x16 = &sad_16x16_scalar;
  t.sad_16x16_cutoff = &sad_16x16_cutoff_scalar;
  t.sad_self_16x16 = &sad_self_16x16_scalar;
  t.sad_16x16_x4 = &sad_16x16_x4_scalar;
  t.sad_16x16_x8 = &sad_16x16_x8_scalar;
  t.sad_16x16_hpel_cutoff = &sad_16x16_hpel_cutoff_scalar;
  t.forward_dct_8x8 = &forward_dct_8x8_scalar;
  t.inverse_dct_8x8 = &inverse_dct_8x8_scalar;
  t.quantize_ac = &quantize_ac_scalar;
  t.dequantize_ac = &dequantize_ac_scalar;
  t.mc_predict = &mc_predict_scalar;
  t.sub_pred_8x8 = &sub_pred_8x8_scalar;
  t.add_pred_8x8 = &add_pred_8x8_scalar;
  for (int i = 0; i < kNumKernels; ++i) t.origin[i] = Backend::kScalar;
  return t;
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table = make_scalar_table();
  return table;
}

}  // namespace pbpair::codec::kernels
