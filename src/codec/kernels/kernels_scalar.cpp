// Scalar reference kernels. These are the ground truth: every SIMD backend
// must reproduce their outputs (and early-exit row counts) bit-for-bit,
// which tests/test_kernels.cpp verifies exhaustively.
#include "codec/kernels/kernels.h"

#include "codec/kernels/dct_tables.h"
#include "codec/quant.h"
#include "common/math_util.h"

namespace pbpair::codec::kernels {
namespace {

std::int64_t sad_16x16_scalar(const std::uint8_t* cur, int cur_stride,
                              const std::uint8_t* ref, int ref_stride) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* rrow = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    for (int x = 0; x < 16; ++x) {
      sad += common::iabs(static_cast<int>(crow[x]) - static_cast<int>(rrow[x]));
    }
  }
  return sad;
}

std::int64_t sad_16x16_cutoff_scalar(const std::uint8_t* cur, int cur_stride,
                                     const std::uint8_t* ref, int ref_stride,
                                     std::int64_t cutoff,
                                     int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* rrow = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    for (int x = 0; x < 16; ++x) {
      sad += common::iabs(static_cast<int>(crow[x]) - static_cast<int>(rrow[x]));
    }
    if (sad >= cutoff) {  // cannot become the best candidate
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_self_16x16_scalar(const std::uint8_t* cur, int cur_stride) {
  std::int64_t sum = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    for (int x = 0; x < 16; ++x) sum += crow[x];
  }
  int mean = static_cast<int>(sum / 256);
  std::int64_t dev = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* crow = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    for (int x = 0; x < 16; ++x) {
      dev += common::iabs(static_cast<int>(crow[x]) - mean);
    }
  }
  return dev;
}

void forward_dct_8x8_scalar(const std::int16_t* input, std::int16_t* output) {
  // Pass 1 (columns): tmp[u][y] = sum_x B[u][x] * in[x][y].
  std::int32_t tmp[64];
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      std::int32_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += kDctBasis[u][x] * static_cast<std::int32_t>(input[x * 8 + y]);
      }
      tmp[u * 8 + y] = acc;  // |acc| <= 8 * 8035 * 2048 fits easily
    }
  }
  // Pass 2 (rows): F[u][v] = sum_y tmp[u][y] * B[v][y], then drop Q28.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<std::int64_t>(tmp[u * 8 + y]) * kDctBasis[v][y];
      }
      // Round and rescale from Q28 to integer coefficients.
      std::int64_t rounded = (acc + (acc >= 0 ? (1 << 27) : -(1 << 27))) >> 28;
      output[u * 8 + v] = static_cast<std::int16_t>(
          common::clamp<std::int64_t>(rounded, -2048, 2047));
    }
  }
}

void inverse_dct_8x8_scalar(const std::int16_t* input, std::int16_t* output) {
  // Pass 1: tmp[x][v] = sum_u B[u][x] * F[u][v] (B^T * F).
  std::int32_t tmp[64];
  for (int x = 0; x < 8; ++x) {
    for (int v = 0; v < 8; ++v) {
      std::int32_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += kDctBasis[u][x] * static_cast<std::int32_t>(input[u * 8 + v]);
      }
      tmp[x * 8 + v] = acc;
    }
  }
  // Pass 2: X[x][y] = sum_v tmp[x][v] * B[v][y], drop Q28.
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += static_cast<std::int64_t>(tmp[x * 8 + v]) * kDctBasis[v][y];
      }
      std::int64_t rounded = (acc + (acc >= 0 ? (1 << 27) : -(1 << 27))) >> 28;
      output[x * 8 + y] = static_cast<std::int16_t>(
          common::clamp<std::int64_t>(rounded, -2048, 2047));
    }
  }
}

int quantize_ac_scalar(std::int16_t* block, int first, int qp, bool intra) {
  int nonzero = 0;
  for (int i = first; i < 64; ++i) {
    int level = quantize_coeff(block[i], qp, intra);
    block[i] = static_cast<std::int16_t>(level);
    if (level != 0) ++nonzero;
  }
  return nonzero;
}

void dequantize_ac_scalar(std::int16_t* block, int first, int qp) {
  for (int i = first; i < 64; ++i) {
    block[i] = static_cast<std::int16_t>(dequantize_coeff(block[i], qp));
  }
}

constexpr KernelTable kScalarTable = {
    Backend::kScalar,
    "scalar",
    &sad_16x16_scalar,
    &sad_16x16_cutoff_scalar,
    &sad_self_16x16_scalar,
    &forward_dct_8x8_scalar,
    &inverse_dct_8x8_scalar,
    &quantize_ac_scalar,
    &dequantize_ac_scalar,
};

}  // namespace

const KernelTable& scalar_table() { return kScalarTable; }

}  // namespace pbpair::codec::kernels
