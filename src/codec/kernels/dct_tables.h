// The shared Q14 DCT-II basis matrix, used by every DCT kernel backend so
// they agree coefficient-for-coefficient.
#pragma once

#include <cstdint>

namespace pbpair::codec::kernels {

// kDctBasis[u][x] = round(16384 * C(u)/2 * cos((2x+1)*u*pi/16)) with
// C(0)=1/sqrt(2), C(u>0)=1. The 2-D transform is F = B * X * B^T; the
// inverse is X = B^T * F * B (B is orthonormal up to the Q14 scale).
// Intermediates: pass 1 fits int32 (|acc| <= 8*8035*2048), pass 2
// accumulates in int64 and drops the Q28 scale with rounding.
inline constexpr int kDctBasis[8][8] = {
    {5793, 5793, 5793, 5793, 5793, 5793, 5793, 5793},
    {8035, 6811, 4551, 1598, -1598, -4551, -6811, -8035},
    {7568, 3135, -3135, -7568, -7568, -3135, 3135, 7568},
    {6811, -1598, -8035, -4551, 4551, 8035, 1598, -6811},
    {5793, -5793, -5793, 5793, 5793, -5793, -5793, 5793},
    {4551, -8035, 1598, 6811, -6811, -1598, 8035, -4551},
    {3135, -7568, 7568, -3135, -3135, 7568, -7568, 3135},
    {1598, -4551, 6811, -8035, 8035, -6811, 4551, -1598},
};

// Largest possible magnitude of a one-dimensional transform intermediate
// for inputs bounded by 2048: max_u sum_x |B[u][x]| * 2048. Row u=1 has the
// largest absolute sum (2*(8035+6811+4551+1598) = 41990); rounded up to a
// loose bound used in the overflow proofs below.
inline constexpr long kDctPass1Bound = 46344L * 2048L;  // < 2^27

// Pair-interleaved views of the basis for pmaddwd/vmlal-style kernels: one
// int32 holds two adjacent int16 basis entries (low half first), so a
// single multiply-add instruction computes a[2p]*b[2p] + a[2p+1]*b[2p+1]
// exactly (|pair sum| <= 2*8035*32767 < 2^31 for any int16 operand).
constexpr std::int32_t dct_pack_pair(int lo, int hi) {
  return static_cast<std::int32_t>(
      (static_cast<std::uint32_t>(lo) & 0xFFFFu) |
      (static_cast<std::uint32_t>(hi) << 16));
}

struct DctPairTables {
  // row[p][r] = pack(B[r][2p], B[r][2p+1]) — adjacent entries of basis
  // row r. Used as a vector over r (forward pass A: input pairs over y
  // against every output frequency v) and as scalars (forward pass B:
  // weight pairs over x for output row u).
  alignas(32) std::int32_t row[4][8];
  // col[p][x] = pack(B[2p][x], B[2p+1][x]) — vertically adjacent entries
  // of basis column x. Used as scalars (inverse pass 1: weight pairs over
  // u) and as a vector over y (inverse pass 2: basis pairs over v).
  alignas(32) std::int32_t col[4][8];
};

inline constexpr DctPairTables kDctPairs = [] {
  DctPairTables t{};
  for (int p = 0; p < 4; ++p) {
    for (int r = 0; r < 8; ++r) {
      t.row[p][r] = dct_pack_pair(kDctBasis[r][2 * p], kDctBasis[r][2 * p + 1]);
      t.col[p][r] = dct_pack_pair(kDctBasis[2 * p][r], kDctBasis[2 * p + 1][r]);
    }
  }
  return t;
}();

// Narrow (int16) copies of the basis for widening multiply-accumulate
// kernels (NEON vmlal_s16): every entry fits int16, and int16 x int16
// products accumulate exactly in int32 lanes.
struct DctBasis16 {
  alignas(16) std::int16_t rows[8][8];  // rows[u][x] = B[u][x]
  alignas(16) std::int16_t cols[8][8];  // cols[x][u] = B[u][x] (transpose)
};

inline constexpr DctBasis16 kDctBasis16 = [] {
  DctBasis16 t{};
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      t.rows[u][x] = static_cast<std::int16_t>(kDctBasis[u][x]);
      t.cols[x][u] = static_cast<std::int16_t>(kDctBasis[u][x]);
    }
  }
  return t;
}();

}  // namespace pbpair::codec::kernels
