// The shared Q14 DCT-II basis matrix, used by every DCT kernel backend so
// they agree coefficient-for-coefficient.
#pragma once

namespace pbpair::codec::kernels {

// kDctBasis[u][x] = round(16384 * C(u)/2 * cos((2x+1)*u*pi/16)) with
// C(0)=1/sqrt(2), C(u>0)=1. The 2-D transform is F = B * X * B^T; the
// inverse is X = B^T * F * B (B is orthonormal up to the Q14 scale).
// Intermediates: pass 1 fits int32 (|acc| <= 8*8035*2048), pass 2
// accumulates in int64 and drops the Q28 scale with rounding.
inline constexpr int kDctBasis[8][8] = {
    {5793, 5793, 5793, 5793, 5793, 5793, 5793, 5793},
    {8035, 6811, 4551, 1598, -1598, -4551, -6811, -8035},
    {7568, 3135, -3135, -7568, -7568, -3135, 3135, 7568},
    {6811, -1598, -8035, -4551, 4551, 8035, 1598, -6811},
    {5793, -5793, -5793, 5793, 5793, -5793, -5793, 5793},
    {4551, -8035, 1598, 6811, -6811, -1598, 8035, -4551},
    {3135, -7568, 7568, -3135, -3135, 7568, -7568, 3135},
    {1598, -4551, 6811, -8035, 8035, -6811, 4551, -1598},
};

}  // namespace pbpair::codec::kernels
