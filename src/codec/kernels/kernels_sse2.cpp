// SSE2 kernels. PSADBW computes the sum of absolute byte differences
// exactly, so the SAD kernels return the same integers as the scalar loop;
// the cutoff variant keeps the scalar's per-row termination points so the
// metered row count is identical too. DCT and quant need SSE4.1+ integer
// multiplies to stay bit-exact, so on a bare-SSE2 selection they fall back
// to the scalar reference (the dispatch table is per-kernel).
#include "codec/kernels/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace pbpair::codec::kernels {
namespace {

inline std::int64_t hsum_sad(__m128i acc) {
  // PSADBW leaves two 16-bit sums in the low words of each 64-bit half.
  return _mm_cvtsi128_si64(acc) +
         _mm_cvtsi128_si64(_mm_srli_si128(acc, 8));
}

std::int64_t sad_16x16_sse2(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride) {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < 16; ++y) {
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride));
    __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        ref + static_cast<std::ptrdiff_t>(y) * ref_stride));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
  }
  return hsum_sad(acc);
}

std::int64_t sad_16x16_cutoff_sse2(const std::uint8_t* cur, int cur_stride,
                                   const std::uint8_t* ref, int ref_stride,
                                   std::int64_t cutoff, int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride));
    __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        ref + static_cast<std::ptrdiff_t>(y) * ref_stride));
    sad += hsum_sad(_mm_sad_epu8(c, r));
    if (sad >= cutoff) {  // same row boundary the scalar loop checks at
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_self_16x16_sse2(const std::uint8_t* cur, int cur_stride) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  for (int y = 0; y < 16; ++y) {
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(c, zero));
  }
  std::int64_t sum = hsum_sad(acc);
  // Truncated mean, exactly like the scalar reference; it fits a byte, so
  // PSADBW against the broadcast mean is |p - mean| exactly.
  const int mean = static_cast<int>(sum / 256);
  const __m128i vmean = _mm_set1_epi8(static_cast<char>(mean));
  __m128i dev = zero;
  for (int y = 0; y < 16; ++y) {
    __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride));
    dev = _mm_add_epi64(dev, _mm_sad_epu8(c, vmean));
  }
  return hsum_sad(dev);
}

}  // namespace

const KernelTable* sse2_table_or_null() {
  // Function-local static: initialized on first use, so referencing the
  // scalar table's function pointers never races static init order.
  static const KernelTable table = {
      Backend::kSse2,
      "sse2",
      &sad_16x16_sse2,
      &sad_16x16_cutoff_sse2,
      &sad_self_16x16_sse2,
      scalar_table().forward_dct_8x8,
      scalar_table().inverse_dct_8x8,
      scalar_table().quantize_ac,
      scalar_table().dequantize_ac,
  };
  return &table;
}

}  // namespace pbpair::codec::kernels

#else  // !defined(__SSE2__)

namespace pbpair::codec::kernels {
const KernelTable* sse2_table_or_null() { return nullptr; }
}  // namespace pbpair::codec::kernels

#endif
