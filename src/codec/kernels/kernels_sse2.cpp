// SSE2 kernels. PSADBW computes the sum of absolute byte differences
// exactly, so the SAD kernels return the same integers as the scalar loop;
// the cutoff variant keeps the scalar's per-row termination points so the
// metered row count is identical too. The DCT/IDCT use the PMADDWD
// formulation from kernels_x86_128.inl (exact, see proofs there). Quant and
// dequant need SSE4.1+ integer multiplies to stay bit-exact, so on a
// bare-SSE2 selection they fall back to the scalar reference — recorded
// honestly in the table's per-kernel origin.
#include "codec/kernels/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstring>

#include "codec/kernels/dct_tables.h"

namespace pbpair::codec::kernels {
namespace {

#define PBPAIR_X86_128_DCT 1
#define PBPAIR_X86_128_SADX 1
#include "codec/kernels/kernels_x86_128.inl"
#undef PBPAIR_X86_128_SADX
#undef PBPAIR_X86_128_DCT

std::int64_t sad_16x16_sse2(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride) {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < 16; ++y) {
    __m128i c = x86_loadu(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    __m128i r = x86_loadu(ref + static_cast<std::ptrdiff_t>(y) * ref_stride);
    acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
  }
  return x86_sad_hsum(acc);
}

std::int64_t sad_16x16_cutoff_sse2(const std::uint8_t* cur, int cur_stride,
                                   const std::uint8_t* ref, int ref_stride,
                                   std::int64_t cutoff, int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    __m128i c = x86_loadu(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    __m128i r = x86_loadu(ref + static_cast<std::ptrdiff_t>(y) * ref_stride);
    sad += x86_sad_hsum(_mm_sad_epu8(c, r));
    if (sad >= cutoff) {  // same row boundary the scalar loop checks at
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_self_16x16_sse2(const std::uint8_t* cur, int cur_stride) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  for (int y = 0; y < 16; ++y) {
    __m128i c = x86_loadu(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    acc = _mm_add_epi64(acc, _mm_sad_epu8(c, zero));
  }
  std::int64_t sum = x86_sad_hsum(acc);
  // Truncated mean, exactly like the scalar reference; it fits a byte, so
  // PSADBW against the broadcast mean is |p - mean| exactly.
  const int mean = static_cast<int>(sum / 256);
  const __m128i vmean = _mm_set1_epi8(static_cast<char>(mean));
  __m128i dev = zero;
  for (int y = 0; y < 16; ++y) {
    __m128i c = x86_loadu(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    dev = _mm_add_epi64(dev, _mm_sad_epu8(c, vmean));
  }
  return x86_sad_hsum(dev);
}

}  // namespace

const KernelTable* sse2_table_or_null() {
  // Function-local static: initialized on first use, so referencing the
  // scalar table's function pointers never races static init order.
  static const KernelTable table = [] {
    KernelTable t = scalar_table();
    t.backend = Backend::kSse2;
    t.name = "sse2";
    auto adopt = [&t](KernelId id) {
      t.origin[static_cast<int>(id)] = Backend::kSse2;
    };
    t.sad_16x16 = &sad_16x16_sse2;
    adopt(KernelId::kSad16x16);
    t.sad_16x16_cutoff = &sad_16x16_cutoff_sse2;
    adopt(KernelId::kSad16x16Cutoff);
    t.sad_self_16x16 = &sad_self_16x16_sse2;
    adopt(KernelId::kSadSelf16x16);
    t.sad_16x16_x4 = &sad_16x16_x4_128;
    adopt(KernelId::kSad16x16X4);
    t.sad_16x16_x8 = &sad_16x16_x8_128;
    adopt(KernelId::kSad16x16X8);
    t.sad_16x16_hpel_cutoff = &sad_16x16_hpel_cutoff_128;
    adopt(KernelId::kSad16x16HpelCutoff);
    t.forward_dct_8x8 = &forward_dct_8x8_128;
    adopt(KernelId::kForwardDct8x8);
    t.inverse_dct_8x8 = &inverse_dct_8x8_128;
    adopt(KernelId::kInverseDct8x8);
    t.mc_predict = &mc_predict_128;
    adopt(KernelId::kMcPredict);
    t.sub_pred_8x8 = &sub_pred_8x8_128;
    adopt(KernelId::kSubPred8x8);
    t.add_pred_8x8 = &add_pred_8x8_128;
    adopt(KernelId::kAddPred8x8);
    // quantize_ac / dequantize_ac stay on the scalar reference: exact
    // division needs SSE4.1 PMULLD. Their origin stays kScalar.
    return t;
  }();
  return &table;
}

}  // namespace pbpair::codec::kernels

#else  // !defined(__SSE2__)

namespace pbpair::codec::kernels {
const KernelTable* sse2_table_or_null() { return nullptr; }
}  // namespace pbpair::codec::kernels

#endif
