// Pixel-kernel dispatch: scalar reference vs SIMD implementations.
//
// Every hot inner loop of the codec (SAD — single, batched, and half-pel —
// DCT/IDCT, quant/dequant, and motion-compensated prediction) is a kernel
// behind a function-pointer table selected once at startup from the CPU's
// capabilities (overridable with
// PBPAIR_KERNELS=scalar|sse2|avx2|avx512|neon|auto).
//
// The critical invariant: a kernel computes EXACTLY the same result as the
// scalar reference — same values, same early-exit row counts — and carries
// NO energy metering of its own. `energy::OpCounters` accounting lives in
// the public wrappers (codec/sad.h, codec/quant.h, codec/mc.h) and is
// derived analytically (pixels visited, rows processed before cutoff), so
// the energy model is bit-identical no matter which backend ran. This is
// what lets the reproduction be fast without perturbing the paper's
// numbers.
//
// Every table also records, per kernel slot, which backend's implementation
// actually fills it (`origin`). A backend that lacks a vector path for some
// kernel inherits the scalar (or a lower backend's) function — and the
// origin record makes that fallback visible to benches and tests, so a
// no-op vector path can never masquerade as a speedup.
//
// Kernels operate on raw rows (pointer + stride in pixels) so they carry no
// dependency on video::Plane; bounds checking is the wrappers' job.
#pragma once

#include <cstdint>
#include <vector>

namespace pbpair::codec::kernels {

enum class Backend {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
  kNeon = 4,
};

inline constexpr int kNumBackends = 5;

/// One entry per KernelTable function-pointer slot, used to index the
/// per-kernel `origin` record.
enum class KernelId {
  kSad16x16 = 0,
  kSad16x16Cutoff,
  kSadSelf16x16,
  kSad16x16X4,
  kSad16x16X8,
  kSad16x16HpelCutoff,
  kForwardDct8x8,
  kInverseDct8x8,
  kQuantizeAc,
  kDequantizeAc,
  kMcPredict,
  kSubPred8x8,
  kAddPred8x8,
  kCount,
};

inline constexpr int kNumKernels = static_cast<int>(KernelId::kCount);

struct KernelTable {
  Backend backend = Backend::kScalar;
  const char* name = "scalar";

  /// SAD over a full 16x16 block. Strides are in pixels.
  std::int64_t (*sad_16x16)(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride);

  /// SAD with per-row early termination: after each completed row the
  /// partial sum is compared against `cutoff` and the kernel returns as
  /// soon as sum >= cutoff. `*rows_processed` is set to the number of rows
  /// fully accumulated (1..16) — the wrapper meters 16 pixels per row, so
  /// this count must be identical across backends (it is: every backend
  /// checks the cutoff at the same row boundaries as the scalar loop).
  std::int64_t (*sad_16x16_cutoff)(const std::uint8_t* cur, int cur_stride,
                                   const std::uint8_t* ref, int ref_stride,
                                   std::int64_t cutoff, int* rows_processed);

  /// Deviation of a 16x16 block from its own (truncated) mean.
  std::int64_t (*sad_self_16x16)(const std::uint8_t* cur, int cur_stride);

  /// Batched full SADs: scores 4 (or 8) candidate reference blocks against
  /// ONE current block per call, x264 sad_x4-style. No cutoff — the batched
  /// motion-search wavefront (codec/motion_search.cpp) replays the scalar
  /// early-exit accounting on top of these totals, so the kernels stay
  /// branch-free and share the current-block rows across candidates.
  void (*sad_16x16_x4)(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* const refs[4], int ref_stride,
                       std::int64_t sads[4]);
  void (*sad_16x16_x8)(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* const refs[8], int ref_stride,
                       std::int64_t sads[8]);

  /// Fused half-pel interpolation + SAD with the scalar per-row cutoff.
  /// `ref` points at the FULL-PEL floor position; hx/hy in {0,1} select the
  /// interpolation phase ((a+b+1)>>1 one-dimensional halves,
  /// (a+b+c+d+2)>>2 for the center). Reads hx extra columns / hy extra
  /// rows past the 16x16 block; the wrapper (codec/mc.cpp) guarantees those
  /// reads are in bounds, building an edge-clamped patch when they are not.
  std::int64_t (*sad_16x16_hpel_cutoff)(const std::uint8_t* cur,
                                        int cur_stride,
                                        const std::uint8_t* ref,
                                        int ref_stride, int hx, int hy,
                                        std::int64_t cutoff,
                                        int* rows_processed);

  /// 8x8 forward/inverse DCT, bit-identical to the Q14 integer reference
  /// in kernels_scalar.cpp for all inputs in [-2048, 2047] (every codec
  /// input: pixels, residuals, clamped coefficients). Integer accumulation
  /// is exact, so SIMD lane reordering cannot change the result.
  void (*forward_dct_8x8)(const std::int16_t* input, std::int16_t* output);
  void (*inverse_dct_8x8)(const std::int16_t* input, std::int16_t* output);

  /// Quantizes block[first..64) in place (H.263 rules, see codec/quant.h);
  /// returns the number of nonzero levels produced. block[0..first) is
  /// left untouched. Requires |block[i]| <= 4095 (DCT output is clamped to
  /// [-2048, 2047], so every codec input satisfies this; the SIMD exact
  /// division-by-2*qp trick is proven for that range).
  int (*quantize_ac)(std::int16_t* block, int first, int qp, bool intra);

  /// Dequantizes block[first..64) in place; block[0..first) untouched.
  void (*dequantize_ac)(std::int16_t* block, int first, int qp);

  /// Builds a w x h prediction block (dst stride == w, w in {8, 16}) from
  /// `src`, which points at the FULL-PEL floor position. hx/hy select the
  /// half-pel phase exactly as in sad_16x16_hpel_cutoff; phase (0,0) is a
  /// plain copy. Reads w+hx columns and h+hy rows — the wrapper
  /// (codec/mc.cpp) guarantees bounds / builds the clamped edge patch.
  void (*mc_predict)(const std::uint8_t* src, int src_stride,
                     std::uint8_t* dst, int w, int h, int hx, int hy);

  /// residual[64] = cur 8x8 block - pred 8x8 block (row-major int16).
  void (*sub_pred_8x8)(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* pred, int pred_stride,
                       std::int16_t* residual);

  /// dst 8x8 block = clamp_to_[0,255](pred + residual).
  void (*add_pred_8x8)(std::uint8_t* dst, int dst_stride,
                       const std::uint8_t* pred, int pred_stride,
                       const std::int16_t* residual);

  /// origin[i]: the backend whose implementation fills kernel slot i. A
  /// slot whose origin differs from `backend` is a fallback (e.g. SSE2
  /// lacks the integer multiplies quantize needs, so its quantize_ac slot
  /// has origin kScalar). bench/micro_kernels reports this per kernel.
  Backend origin[kNumKernels] = {};

  Backend origin_of(KernelId id) const {
    return origin[static_cast<int>(id)];
  }
};

/// The scalar reference table (always available; the other backends are
/// validated against it in tests/test_kernels.cpp).
const KernelTable& scalar_table();

/// Table for a specific backend, or nullptr when the backend was compiled
/// out or the running CPU lacks the instruction set.
const KernelTable* table_for(Backend backend);

/// Backends usable on this CPU, in ascending preference order
/// (scalar first).
std::vector<Backend> supported_backends();

/// The table in use. Selected on first call: the best supported backend,
/// unless the PBPAIR_KERNELS environment variable
/// (scalar|sse2|avx2|avx512|neon|auto) names another one.
const KernelTable& active();

/// Switches the active table; returns false (and keeps the current table)
/// when `backend` is unsupported. Intended for tests and benchmarks; safe
/// to call concurrently with readers (atomic pointer swap), but switching
/// mid-encode mixes backends within one frame — callers should switch at
/// run boundaries.
bool set_active(Backend backend);

Backend active_backend();

const char* backend_name(Backend backend);

const char* kernel_name(KernelId id);

}  // namespace pbpair::codec::kernels
