// Pixel-kernel dispatch: scalar reference vs SIMD implementations.
//
// Every hot inner loop of the codec (SAD, DCT/IDCT, quant/dequant) is a
// kernel behind a function-pointer table selected once at startup from the
// CPU's capabilities (overridable with PBPAIR_KERNELS=scalar|sse2|avx2).
//
// The critical invariant: a kernel computes EXACTLY the same result as the
// scalar reference — same values, same early-exit row counts — and carries
// NO energy metering of its own. `energy::OpCounters` accounting lives in
// the public wrappers (codec/sad.h, codec/quant.h) and is derived
// analytically (pixels visited, rows processed before cutoff), so the
// energy model is bit-identical no matter which backend ran. This is what
// lets the reproduction be fast without perturbing the paper's numbers.
//
// Kernels operate on raw rows (pointer + stride in pixels) so they carry no
// dependency on video::Plane; bounds checking is the wrappers' job.
#pragma once

#include <cstdint>
#include <vector>

namespace pbpair::codec::kernels {

enum class Backend {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

struct KernelTable {
  Backend backend = Backend::kScalar;
  const char* name = "scalar";

  /// SAD over a full 16x16 block. Strides are in pixels.
  std::int64_t (*sad_16x16)(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride);

  /// SAD with per-row early termination: after each completed row the
  /// partial sum is compared against `cutoff` and the kernel returns as
  /// soon as sum >= cutoff. `*rows_processed` is set to the number of rows
  /// fully accumulated (1..16) — the wrapper meters 16 pixels per row, so
  /// this count must be identical across backends (it is: every backend
  /// checks the cutoff at the same row boundaries as the scalar loop).
  std::int64_t (*sad_16x16_cutoff)(const std::uint8_t* cur, int cur_stride,
                                   const std::uint8_t* ref, int ref_stride,
                                   std::int64_t cutoff, int* rows_processed);

  /// Deviation of a 16x16 block from its own (truncated) mean.
  std::int64_t (*sad_self_16x16)(const std::uint8_t* cur, int cur_stride);

  /// 8x8 forward/inverse DCT, bit-identical to the Q14 integer reference
  /// in kernels_scalar.cpp (integer accumulation is exact, so SIMD lane
  /// reordering cannot change the result).
  void (*forward_dct_8x8)(const std::int16_t* input, std::int16_t* output);
  void (*inverse_dct_8x8)(const std::int16_t* input, std::int16_t* output);

  /// Quantizes block[first..64) in place (H.263 rules, see codec/quant.h);
  /// returns the number of nonzero levels produced. block[0..first) is
  /// left untouched. Requires |block[i]| <= 4095 (DCT output is clamped to
  /// [-2048, 2047], so every codec input satisfies this; the SIMD exact
  /// division-by-2*qp trick is proven for that range).
  int (*quantize_ac)(std::int16_t* block, int first, int qp, bool intra);

  /// Dequantizes block[first..64) in place; block[0..first) untouched.
  void (*dequantize_ac)(std::int16_t* block, int first, int qp);
};

/// The scalar reference table (always available; the other backends are
/// validated against it in tests/test_kernels.cpp).
const KernelTable& scalar_table();

/// Table for a specific backend, or nullptr when the backend was compiled
/// out or the running CPU lacks the instruction set.
const KernelTable* table_for(Backend backend);

/// Backends usable on this CPU, in ascending preference order
/// (scalar first).
std::vector<Backend> supported_backends();

/// The table in use. Selected on first call: the best supported backend,
/// unless the PBPAIR_KERNELS environment variable (scalar|sse2|avx2|auto)
/// names another one.
const KernelTable& active();

/// Switches the active table; returns false (and keeps the current table)
/// when `backend` is unsupported. Intended for tests and benchmarks; safe
/// to call concurrently with readers (atomic pointer swap), but switching
/// mid-encode mixes backends within one frame — callers should switch at
/// run boundaries.
bool set_active(Backend backend);

Backend active_backend();

const char* backend_name(Backend backend);

}  // namespace pbpair::codec::kernels
