// 128-bit (SSE2-instruction-set) kernel implementations, shared between the
// SSE2 and AVX2 translation units.
//
// This file is #included INSIDE an anonymous namespace of each backend's
// .cpp, so every function here gets internal linkage and is compiled with
// that TU's ISA flags (plain SSE2 encodings in kernels_sse2.cpp, VEX
// encodings in kernels_avx2.cpp). That is deliberate: it sidesteps the ODR
// hazard of inline functions compiled under different -m flags, and it
// means the AVX2 table's 128-bit kernels still benefit from VEX three-
// operand forms.
//
// Only SSE2 intrinsics may be used here. Sections that a TU does not need
// are gated with PBPAIR_X86_128_DCT / PBPAIR_X86_128_SADX (the AVX2 TU has
// its own 256-bit DCT and batched-SAD kernels).
//
// Exactness notes:
//  - PAVGB computes (a + b + 1) >> 1 exactly — the H.263 half-pel formula.
//  - The center phase (a+b+c+d+2)>>2 is NOT a composition of averages
//    (pavgb(pavgb(a,b), pavgb(c,d)) rounds differently), so it widens to
//    16-bit lanes instead.
//  - PMADDWD multiplies int16 pairs into exact int32 sums; the DCT below
//    reproduces the scalar Q28 arithmetic bit-for-bit (see the overflow
//    proofs inline).

inline std::int64_t x86_sad_hsum(__m128i acc) {
  return _mm_cvtsi128_si64(acc) + _mm_cvtsi128_si64(_mm_srli_si128(acc, 8));
}

inline __m128i x86_loadu(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

// ---------------------------------------------------------------------------
// Half-pel interpolation + fused SAD
// ---------------------------------------------------------------------------

// One interpolated 16-pixel row. r0 points at the full-pel floor row, r1 at
// the row below it (only read when HY == 1).
template <int HX, int HY>
inline __m128i x86_hpel_row16(const std::uint8_t* r0, const std::uint8_t* r1) {
  if constexpr (HX == 0 && HY == 0) {
    return x86_loadu(r0);
  } else if constexpr (HX == 1 && HY == 0) {
    return _mm_avg_epu8(x86_loadu(r0), x86_loadu(r0 + 1));
  } else if constexpr (HX == 0 && HY == 1) {
    return _mm_avg_epu8(x86_loadu(r0), x86_loadu(r1));
  } else {
    const __m128i zero = _mm_setzero_si128();
    const __m128i two = _mm_set1_epi16(2);
    __m128i a = x86_loadu(r0), b = x86_loadu(r0 + 1);
    __m128i c = x86_loadu(r1), d = x86_loadu(r1 + 1);
    __m128i lo = _mm_add_epi16(
        _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero)),
        _mm_add_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(d, zero)));
    __m128i hi = _mm_add_epi16(
        _mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(b, zero)),
        _mm_add_epi16(_mm_unpackhi_epi8(c, zero), _mm_unpackhi_epi8(d, zero)));
    lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
    hi = _mm_srli_epi16(_mm_add_epi16(hi, two), 2);
    return _mm_packus_epi16(lo, hi);
  }
}

// Same for an 8-pixel row; loads stay within the 8+HX guaranteed columns.
template <int HX, int HY>
inline __m128i x86_hpel_row8(const std::uint8_t* r0, const std::uint8_t* r1) {
  auto load8 = [](const std::uint8_t* p) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  };
  if constexpr (HX == 0 && HY == 0) {
    return load8(r0);
  } else if constexpr (HX == 1 && HY == 0) {
    return _mm_avg_epu8(load8(r0), load8(r0 + 1));
  } else if constexpr (HX == 0 && HY == 1) {
    return _mm_avg_epu8(load8(r0), load8(r1));
  } else {
    const __m128i zero = _mm_setzero_si128();
    const __m128i two = _mm_set1_epi16(2);
    __m128i sum = _mm_add_epi16(
        _mm_add_epi16(_mm_unpacklo_epi8(load8(r0), zero),
                      _mm_unpacklo_epi8(load8(r0 + 1), zero)),
        _mm_add_epi16(_mm_unpacklo_epi8(load8(r1), zero),
                      _mm_unpacklo_epi8(load8(r1 + 1), zero)));
    sum = _mm_srli_epi16(_mm_add_epi16(sum, two), 2);
    return _mm_packus_epi16(sum, sum);
  }
}

template <int HX, int HY>
std::int64_t x86_sad_16x16_hpel_cutoff(const std::uint8_t* cur, int cur_stride,
                                       const std::uint8_t* ref, int ref_stride,
                                       std::int64_t cutoff,
                                       int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* r0 = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    const std::uint8_t* r1 = r0 + (HY != 0 ? ref_stride : 0);
    __m128i p = x86_hpel_row16<HX, HY>(r0, r1);
    __m128i c = x86_loadu(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    sad += x86_sad_hsum(_mm_sad_epu8(c, p));
    if (sad >= cutoff) {  // same row boundary the scalar loop checks at
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_16x16_hpel_cutoff_128(const std::uint8_t* cur, int cur_stride,
                                       const std::uint8_t* ref, int ref_stride,
                                       int hx, int hy, std::int64_t cutoff,
                                       int* rows_processed) {
  if (hx == 0 && hy == 0) {
    return x86_sad_16x16_hpel_cutoff<0, 0>(cur, cur_stride, ref, ref_stride,
                                           cutoff, rows_processed);
  }
  if (hy == 0) {
    return x86_sad_16x16_hpel_cutoff<1, 0>(cur, cur_stride, ref, ref_stride,
                                           cutoff, rows_processed);
  }
  if (hx == 0) {
    return x86_sad_16x16_hpel_cutoff<0, 1>(cur, cur_stride, ref, ref_stride,
                                           cutoff, rows_processed);
  }
  return x86_sad_16x16_hpel_cutoff<1, 1>(cur, cur_stride, ref, ref_stride,
                                         cutoff, rows_processed);
}

// ---------------------------------------------------------------------------
// Motion-compensated prediction
// ---------------------------------------------------------------------------

template <int W, int HX, int HY>
void x86_mc_predict(const std::uint8_t* src, int src_stride, std::uint8_t* dst,
                    int h) {
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* r0 = src + static_cast<std::ptrdiff_t>(y) * src_stride;
    const std::uint8_t* r1 = r0 + (HY != 0 ? src_stride : 0);
    std::uint8_t* drow = dst + static_cast<std::ptrdiff_t>(y) * W;
    if constexpr (W == 16) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(drow),
                       x86_hpel_row16<HX, HY>(r0, r1));
    } else {
      _mm_storel_epi64(reinterpret_cast<__m128i*>(drow),
                       x86_hpel_row8<HX, HY>(r0, r1));
    }
  }
}

void mc_predict_128(const std::uint8_t* src, int src_stride, std::uint8_t* dst,
                    int w, int h, int hx, int hy) {
  const int key = (w == 16 ? 4 : 0) | (hx << 1) | hy;
  switch (key) {
    case 0:
      return x86_mc_predict<8, 0, 0>(src, src_stride, dst, h);
    case 1:
      return x86_mc_predict<8, 0, 1>(src, src_stride, dst, h);
    case 2:
      return x86_mc_predict<8, 1, 0>(src, src_stride, dst, h);
    case 3:
      return x86_mc_predict<8, 1, 1>(src, src_stride, dst, h);
    case 4:
      return x86_mc_predict<16, 0, 0>(src, src_stride, dst, h);
    case 5:
      return x86_mc_predict<16, 0, 1>(src, src_stride, dst, h);
    case 6:
      return x86_mc_predict<16, 1, 0>(src, src_stride, dst, h);
    default:
      return x86_mc_predict<16, 1, 1>(src, src_stride, dst, h);
  }
}

// ---------------------------------------------------------------------------
// Residual formation / reconstruction
// ---------------------------------------------------------------------------

void sub_pred_8x8_128(const std::uint8_t* cur, int cur_stride,
                      const std::uint8_t* pred, int pred_stride,
                      std::int16_t* residual) {
  const __m128i zero = _mm_setzero_si128();
  for (int y = 0; y < 8; ++y) {
    __m128i c = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride));
    __m128i p = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
        pred + static_cast<std::ptrdiff_t>(y) * pred_stride));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(residual + y * 8),
                     _mm_sub_epi16(_mm_unpacklo_epi8(c, zero),
                                   _mm_unpacklo_epi8(p, zero)));
  }
}

void add_pred_8x8_128(std::uint8_t* dst, int dst_stride,
                      const std::uint8_t* pred, int pred_stride,
                      const std::int16_t* residual) {
  const __m128i zero = _mm_setzero_si128();
  for (int y = 0; y < 8; ++y) {
    __m128i p = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
        pred + static_cast<std::ptrdiff_t>(y) * pred_stride));
    __m128i r = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(residual + y * 8));
    // pred + residual fits int16 (pred <= 255, |residual| <= 2048); PACKUSWB
    // then saturates to [0, 255], which IS the scalar clamp.
    __m128i sum = _mm_add_epi16(_mm_unpacklo_epi8(p, zero), r);
    _mm_storel_epi64(
        reinterpret_cast<__m128i*>(dst +
                                   static_cast<std::ptrdiff_t>(y) * dst_stride),
        _mm_packus_epi16(sum, sum));
  }
}

// ---------------------------------------------------------------------------
// Batched SAD (SSE2 table only; the AVX2 TU has 256-bit versions)
// ---------------------------------------------------------------------------

#if defined(PBPAIR_X86_128_SADX)

void sad_16x16_x4_128(const std::uint8_t* cur, int cur_stride,
                      const std::uint8_t* const refs[4], int ref_stride,
                      std::int64_t sads[4]) {
  __m128i acc0 = _mm_setzero_si128(), acc1 = acc0, acc2 = acc0, acc3 = acc0;
  for (int y = 0; y < 16; ++y) {
    const std::ptrdiff_t roff = static_cast<std::ptrdiff_t>(y) * ref_stride;
    __m128i c = x86_loadu(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    acc0 = _mm_add_epi64(acc0, _mm_sad_epu8(c, x86_loadu(refs[0] + roff)));
    acc1 = _mm_add_epi64(acc1, _mm_sad_epu8(c, x86_loadu(refs[1] + roff)));
    acc2 = _mm_add_epi64(acc2, _mm_sad_epu8(c, x86_loadu(refs[2] + roff)));
    acc3 = _mm_add_epi64(acc3, _mm_sad_epu8(c, x86_loadu(refs[3] + roff)));
  }
  sads[0] = x86_sad_hsum(acc0);
  sads[1] = x86_sad_hsum(acc1);
  sads[2] = x86_sad_hsum(acc2);
  sads[3] = x86_sad_hsum(acc3);
}

void sad_16x16_x8_128(const std::uint8_t* cur, int cur_stride,
                      const std::uint8_t* const refs[8], int ref_stride,
                      std::int64_t sads[8]) {
  sad_16x16_x4_128(cur, cur_stride, refs, ref_stride, sads);
  sad_16x16_x4_128(cur, cur_stride, refs + 4, ref_stride, sads + 4);
}

#endif  // PBPAIR_X86_128_SADX

// ---------------------------------------------------------------------------
// 8x8 DCT / IDCT, 128-bit PMADDWD formulation (SSE2 table only)
// ---------------------------------------------------------------------------
//
// Strategy (identical math to the 256-bit AVX2 version, two 4-lane halves):
//
// Forward, pass A (rows): Y[x][v] = sum_y in[x][y] * B[v][y]. Input row x
// is contiguous int16, so each y-pair broadcast against the pair-
// interleaved basis row table gives exact int32 partial sums via PMADDWD
// (|in| <= 2048, |B| <= 8035: pair sums < 2^26).
//
// Pass B (columns): F[u][v] = sum_x B[u][x] * Y[x][v] with int32 Y
// (|Y| <= 41990 * 2048 < 2^27). Split Y = hi * 2^15 + lo with
// hi = (Y + 2^14) >> 15 (hi in [-2897, 2897], lo in [-2^14, 2^14)), both
// int16-exact, and run PMADDWD on each half:
// |F_hi| <= 41990 * 2897 < 2^27, |F_lo| <= 41990 * 2^14 < 2^30.
//
// Q28 finish entirely in int32: with K = F_hi + (F_lo >> 15) =
// floor(acc / 2^15), the scalar round-half-away-from-zero
// (acc + sign(acc) * 2^27) >> 28 equals ((K + 2^12) >> 13) + (K < 0 ? -1 : 0)
// (floor-of-floor identity; sign(acc) == sign(K)). |result| <= 13451, so
// PACKS saturation never triggers and the final [-2048, 2047] clamp is done
// on int16 lanes.
//
// The inverse transposes the data flow: pass 1 interleaves input-row pairs
// over u against the packed basis-column table; pass 2 splits tmp hi/lo,
// packs the pairs through the stack, and broadcasts them against the basis
// column-pair vectors. All bounds shrink (inputs |F| <= 2048, column
// abs-sums <= 43284), so the same 32-bit proofs hold.

#if defined(PBPAIR_X86_128_DCT)

inline __m128i x86_q28_round(__m128i k) {
  const __m128i bias = _mm_set1_epi32(1 << 12);
  return _mm_add_epi32(_mm_srai_epi32(_mm_add_epi32(k, bias), 13),
                       _mm_srai_epi32(k, 31));
}

inline __m128i x86_clamp_coeffs(__m128i a, __m128i b) {
  __m128i row = _mm_packs_epi32(a, b);
  return _mm_min_epi16(_mm_max_epi16(row, _mm_set1_epi16(-2048)),
                       _mm_set1_epi16(2047));
}

inline __m128i x86_dct_table(const std::int32_t* p) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
}

void forward_dct_8x8_128(const std::int16_t* input, std::int16_t* output) {
  const __m128i half = _mm_set1_epi32(1 << 14);
  const __m128i mask16 = _mm_set1_epi32(0xFFFF);
  // Pass A: ya[x] holds Y[x][0..3], yb[x] holds Y[x][4..7].
  __m128i ya[8], yb[8];
  for (int x = 0; x < 8; ++x) {
    __m128i acc_a = _mm_setzero_si128();
    __m128i acc_b = _mm_setzero_si128();
    for (int q = 0; q < 4; ++q) {
      std::int32_t pair;
      std::memcpy(&pair, input + x * 8 + 2 * q, sizeof(pair));
      __m128i w = _mm_set1_epi32(pair);
      acc_a = _mm_add_epi32(
          acc_a, _mm_madd_epi16(w, x86_dct_table(&kDctPairs.row[q][0])));
      acc_b = _mm_add_epi32(
          acc_b, _mm_madd_epi16(w, x86_dct_table(&kDctPairs.row[q][4])));
    }
    ya[x] = acc_a;
    yb[x] = acc_b;
  }
  // Split hi/lo and interleave adjacent x into int16 pairs per int32 lane.
  __m128i hpa[4], hpb[4], lpa[4], lpb[4];
  for (int p = 0; p < 4; ++p) {
    auto split_pair = [&](const __m128i* y, __m128i* hp, __m128i* lp) {
      __m128i h0 = _mm_srai_epi32(_mm_add_epi32(y[2 * p], half), 15);
      __m128i l0 = _mm_sub_epi32(y[2 * p], _mm_slli_epi32(h0, 15));
      __m128i h1 = _mm_srai_epi32(_mm_add_epi32(y[2 * p + 1], half), 15);
      __m128i l1 = _mm_sub_epi32(y[2 * p + 1], _mm_slli_epi32(h1, 15));
      hp[p] = _mm_or_si128(_mm_and_si128(h0, mask16), _mm_slli_epi32(h1, 16));
      lp[p] = _mm_or_si128(_mm_and_si128(l0, mask16), _mm_slli_epi32(l1, 16));
    };
    split_pair(ya, hpa, lpa);
    split_pair(yb, hpb, lpb);
  }
  // Pass B + Q28 finish, one output row per u.
  for (int u = 0; u < 8; ++u) {
    __m128i fh_a = _mm_setzero_si128(), fl_a = fh_a;
    __m128i fh_b = fh_a, fl_b = fh_a;
    for (int p = 0; p < 4; ++p) {
      __m128i w = _mm_set1_epi32(kDctPairs.row[p][u]);
      fh_a = _mm_add_epi32(fh_a, _mm_madd_epi16(hpa[p], w));
      fl_a = _mm_add_epi32(fl_a, _mm_madd_epi16(lpa[p], w));
      fh_b = _mm_add_epi32(fh_b, _mm_madd_epi16(hpb[p], w));
      fl_b = _mm_add_epi32(fl_b, _mm_madd_epi16(lpb[p], w));
    }
    __m128i k_a = _mm_add_epi32(fh_a, _mm_srai_epi32(fl_a, 15));
    __m128i k_b = _mm_add_epi32(fh_b, _mm_srai_epi32(fl_b, 15));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(output + u * 8),
                     x86_clamp_coeffs(x86_q28_round(k_a), x86_q28_round(k_b)));
  }
}

void inverse_dct_8x8_128(const std::int16_t* input, std::int16_t* output) {
  const __m128i half = _mm_set1_epi32(1 << 14);
  // Pass 1: interleave input-row pairs over u; ilv_a = lanes v 0..3.
  __m128i ilv_a[4], ilv_b[4];
  for (int p = 0; p < 4; ++p) {
    __m128i r0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(input + (2 * p) * 8));
    __m128i r1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(input + (2 * p + 1) * 8));
    ilv_a[p] = _mm_unpacklo_epi16(r0, r1);
    ilv_b[p] = _mm_unpackhi_epi16(r0, r1);
  }
  for (int x = 0; x < 8; x += 2) {
    __m128i rounded[2][2];  // [k][half]: output rows x and x+1
    for (int k = 0; k < 2; ++k) {
      // tmp[x][v] = sum_u B[u][x] * F[u][v], exact int32.
      __m128i ta = _mm_setzero_si128(), tb = _mm_setzero_si128();
      for (int p = 0; p < 4; ++p) {
        __m128i w = _mm_set1_epi32(kDctPairs.col[p][x + k]);
        ta = _mm_add_epi32(ta, _mm_madd_epi16(ilv_a[p], w));
        tb = _mm_add_epi32(tb, _mm_madd_epi16(ilv_b[p], w));
      }
      // Split hi/lo and pack the pairs (t[2q], t[2q+1]) through the stack
      // so they can be broadcast against the basis column-pair vectors.
      __m128i ha = _mm_srai_epi32(_mm_add_epi32(ta, half), 15);
      __m128i la = _mm_sub_epi32(ta, _mm_slli_epi32(ha, 15));
      __m128i hb = _mm_srai_epi32(_mm_add_epi32(tb, half), 15);
      __m128i lb = _mm_sub_epi32(tb, _mm_slli_epi32(hb, 15));
      alignas(16) std::int32_t bh[4], bl[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(bh), _mm_packs_epi32(ha, hb));
      _mm_store_si128(reinterpret_cast<__m128i*>(bl), _mm_packs_epi32(la, lb));
      // Pass 2: X[x][y] = sum_v tmp[x][v] * B[v][y].
      __m128i xh_a = _mm_setzero_si128(), xl_a = xh_a;
      __m128i xh_b = xh_a, xl_b = xh_a;
      for (int q = 0; q < 4; ++q) {
        __m128i ba = x86_dct_table(&kDctPairs.col[q][0]);
        __m128i bb = x86_dct_table(&kDctPairs.col[q][4]);
        __m128i wh = _mm_set1_epi32(bh[q]);
        __m128i wl = _mm_set1_epi32(bl[q]);
        xh_a = _mm_add_epi32(xh_a, _mm_madd_epi16(wh, ba));
        xh_b = _mm_add_epi32(xh_b, _mm_madd_epi16(wh, bb));
        xl_a = _mm_add_epi32(xl_a, _mm_madd_epi16(wl, ba));
        xl_b = _mm_add_epi32(xl_b, _mm_madd_epi16(wl, bb));
      }
      __m128i k_a = _mm_add_epi32(xh_a, _mm_srai_epi32(xl_a, 15));
      __m128i k_b = _mm_add_epi32(xh_b, _mm_srai_epi32(xl_b, 15));
      rounded[k][0] = x86_q28_round(k_a);
      rounded[k][1] = x86_q28_round(k_b);
    }
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(output + x * 8),
        x86_clamp_coeffs(rounded[0][0], rounded[0][1]));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(output + (x + 1) * 8),
        x86_clamp_coeffs(rounded[1][0], rounded[1][1]));
  }
}

#endif  // PBPAIR_X86_128_DCT
