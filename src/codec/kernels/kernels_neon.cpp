// NEON (AArch64 AdvSIMD) kernels. AdvSIMD is architecturally mandatory on
// AArch64, so there is no runtime feature check — the dispatcher offers
// this table on every arm64 build. CI cross-compiles this TU with
// aarch64-linux-gnu-g++ and smoke-tests it under qemu-user so it cannot rot
// on x86-only development machines.
//
// Bit-exactness notes:
//  - SAD: VABD/VADDLV sum absolute byte differences exactly; the cutoff
//    variant keeps the scalar per-row termination points.
//  - Half-pel: VRHADD computes (a + b + 1) >> 1 exactly; the center phase
//    widens to 16-bit lanes for (a+b+c+d+2)>>2 (rounding-average
//    composition would differ from the scalar formula).
//  - DCT/IDCT: VMLAL.S16 widens int16 x int16 products into exact int32
//    accumulators; intermediates use the same hi/lo 2^15-split as the x86
//    PMADDWD kernels (overflow proofs in kernels_x86_128.inl), and the Q28
//    finish uses the identical int32 rounding identity.
//  - Quant: the magic-multiply exact-division trick from the AVX2 kernel
//    (proof there); products fit int32 for every codec input.
#include "codec/kernels/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "codec/kernels/dct_tables.h"
#include "codec/quant.h"
#include "common/check.h"

namespace pbpair::codec::kernels {
namespace {

std::int64_t sad_16x16_neon(const std::uint8_t* cur, int cur_stride,
                            const std::uint8_t* ref, int ref_stride) {
  // Each u16 lane accumulates <= 16 rows * 2 bytes * 255 = 8160: no wrap.
  uint16x8_t acc = vdupq_n_u16(0);
  for (int y = 0; y < 16; ++y) {
    uint8x16_t c = vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    uint8x16_t r = vld1q_u8(ref + static_cast<std::ptrdiff_t>(y) * ref_stride);
    acc = vpadalq_u8(acc, vabdq_u8(c, r));
  }
  return static_cast<std::int64_t>(vaddlvq_u16(acc));
}

std::int64_t sad_16x16_cutoff_neon(const std::uint8_t* cur, int cur_stride,
                                   const std::uint8_t* ref, int ref_stride,
                                   std::int64_t cutoff, int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    uint8x16_t c = vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    uint8x16_t r = vld1q_u8(ref + static_cast<std::ptrdiff_t>(y) * ref_stride);
    sad += vaddlvq_u8(vabdq_u8(c, r));
    if (sad >= cutoff) {  // same row boundary the scalar loop checks at
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_self_16x16_neon(const std::uint8_t* cur, int cur_stride) {
  uint16x8_t acc = vdupq_n_u16(0);
  for (int y = 0; y < 16; ++y) {
    uint8x16_t c = vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    acc = vpadalq_u8(acc, c);
  }
  const std::int64_t sum = vaddlvq_u16(acc);
  const int mean = static_cast<int>(sum / 256);  // truncated, fits a byte
  const uint8x16_t vmean = vdupq_n_u8(static_cast<std::uint8_t>(mean));
  uint16x8_t dev = vdupq_n_u16(0);
  for (int y = 0; y < 16; ++y) {
    uint8x16_t c = vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    dev = vpadalq_u8(dev, vabdq_u8(c, vmean));
  }
  return static_cast<std::int64_t>(vaddlvq_u16(dev));
}

void sad_16x16_x4_neon(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* const refs[4], int ref_stride,
                       std::int64_t sads[4]) {
  uint16x8_t acc0 = vdupq_n_u16(0), acc1 = acc0, acc2 = acc0, acc3 = acc0;
  for (int y = 0; y < 16; ++y) {
    const std::ptrdiff_t roff = static_cast<std::ptrdiff_t>(y) * ref_stride;
    uint8x16_t c = vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    acc0 = vpadalq_u8(acc0, vabdq_u8(c, vld1q_u8(refs[0] + roff)));
    acc1 = vpadalq_u8(acc1, vabdq_u8(c, vld1q_u8(refs[1] + roff)));
    acc2 = vpadalq_u8(acc2, vabdq_u8(c, vld1q_u8(refs[2] + roff)));
    acc3 = vpadalq_u8(acc3, vabdq_u8(c, vld1q_u8(refs[3] + roff)));
  }
  sads[0] = vaddlvq_u16(acc0);
  sads[1] = vaddlvq_u16(acc1);
  sads[2] = vaddlvq_u16(acc2);
  sads[3] = vaddlvq_u16(acc3);
}

void sad_16x16_x8_neon(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* const refs[8], int ref_stride,
                       std::int64_t sads[8]) {
  sad_16x16_x4_neon(cur, cur_stride, refs, ref_stride, sads);
  sad_16x16_x4_neon(cur, cur_stride, refs + 4, ref_stride, sads + 4);
}

// ---------------------------------------------------------------------------
// Half-pel interpolation + MC
// ---------------------------------------------------------------------------

template <int HX, int HY>
inline uint8x16_t neon_hpel_row16(const std::uint8_t* r0,
                                  const std::uint8_t* r1) {
  if constexpr (HX == 0 && HY == 0) {
    return vld1q_u8(r0);
  } else if constexpr (HX == 1 && HY == 0) {
    return vrhaddq_u8(vld1q_u8(r0), vld1q_u8(r0 + 1));
  } else if constexpr (HX == 0 && HY == 1) {
    return vrhaddq_u8(vld1q_u8(r0), vld1q_u8(r1));
  } else {
    uint8x16_t a = vld1q_u8(r0), b = vld1q_u8(r0 + 1);
    uint8x16_t c = vld1q_u8(r1), d = vld1q_u8(r1 + 1);
    uint16x8_t lo = vaddq_u16(
        vaddl_u8(vget_low_u8(a), vget_low_u8(b)),
        vaddl_u8(vget_low_u8(c), vget_low_u8(d)));
    uint16x8_t hi = vaddq_u16(vaddl_u8(vget_high_u8(a), vget_high_u8(b)),
                              vaddl_u8(vget_high_u8(c), vget_high_u8(d)));
    lo = vshrq_n_u16(vaddq_u16(lo, vdupq_n_u16(2)), 2);
    hi = vshrq_n_u16(vaddq_u16(hi, vdupq_n_u16(2)), 2);
    return vcombine_u8(vmovn_u16(lo), vmovn_u16(hi));
  }
}

template <int HX, int HY>
inline uint8x8_t neon_hpel_row8(const std::uint8_t* r0,
                                const std::uint8_t* r1) {
  if constexpr (HX == 0 && HY == 0) {
    return vld1_u8(r0);
  } else if constexpr (HX == 1 && HY == 0) {
    return vrhadd_u8(vld1_u8(r0), vld1_u8(r0 + 1));
  } else if constexpr (HX == 0 && HY == 1) {
    return vrhadd_u8(vld1_u8(r0), vld1_u8(r1));
  } else {
    uint16x8_t sum = vaddq_u16(vaddl_u8(vld1_u8(r0), vld1_u8(r0 + 1)),
                               vaddl_u8(vld1_u8(r1), vld1_u8(r1 + 1)));
    sum = vshrq_n_u16(vaddq_u16(sum, vdupq_n_u16(2)), 2);
    return vmovn_u16(sum);
  }
}

template <int HX, int HY>
std::int64_t neon_sad_hpel(const std::uint8_t* cur, int cur_stride,
                           const std::uint8_t* ref, int ref_stride,
                           std::int64_t cutoff, int* rows_processed) {
  std::int64_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const std::uint8_t* r0 = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    const std::uint8_t* r1 = r0 + (HY != 0 ? ref_stride : 0);
    uint8x16_t p = neon_hpel_row16<HX, HY>(r0, r1);
    uint8x16_t c = vld1q_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    sad += vaddlvq_u8(vabdq_u8(c, p));
    if (sad >= cutoff) {
      *rows_processed = y + 1;
      return sad;
    }
  }
  *rows_processed = 16;
  return sad;
}

std::int64_t sad_16x16_hpel_cutoff_neon(const std::uint8_t* cur,
                                        int cur_stride,
                                        const std::uint8_t* ref,
                                        int ref_stride, int hx, int hy,
                                        std::int64_t cutoff,
                                        int* rows_processed) {
  if (hx == 0 && hy == 0) {
    return neon_sad_hpel<0, 0>(cur, cur_stride, ref, ref_stride, cutoff,
                               rows_processed);
  }
  if (hy == 0) {
    return neon_sad_hpel<1, 0>(cur, cur_stride, ref, ref_stride, cutoff,
                               rows_processed);
  }
  if (hx == 0) {
    return neon_sad_hpel<0, 1>(cur, cur_stride, ref, ref_stride, cutoff,
                               rows_processed);
  }
  return neon_sad_hpel<1, 1>(cur, cur_stride, ref, ref_stride, cutoff,
                             rows_processed);
}

template <int W, int HX, int HY>
void neon_mc_predict(const std::uint8_t* src, int src_stride,
                     std::uint8_t* dst, int h) {
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* r0 = src + static_cast<std::ptrdiff_t>(y) * src_stride;
    const std::uint8_t* r1 = r0 + (HY != 0 ? src_stride : 0);
    std::uint8_t* drow = dst + static_cast<std::ptrdiff_t>(y) * W;
    if constexpr (W == 16) {
      vst1q_u8(drow, neon_hpel_row16<HX, HY>(r0, r1));
    } else {
      vst1_u8(drow, neon_hpel_row8<HX, HY>(r0, r1));
    }
  }
}

void mc_predict_neon(const std::uint8_t* src, int src_stride,
                     std::uint8_t* dst, int w, int h, int hx, int hy) {
  const int key = (w == 16 ? 4 : 0) | (hx << 1) | hy;
  switch (key) {
    case 0:
      return neon_mc_predict<8, 0, 0>(src, src_stride, dst, h);
    case 1:
      return neon_mc_predict<8, 0, 1>(src, src_stride, dst, h);
    case 2:
      return neon_mc_predict<8, 1, 0>(src, src_stride, dst, h);
    case 3:
      return neon_mc_predict<8, 1, 1>(src, src_stride, dst, h);
    case 4:
      return neon_mc_predict<16, 0, 0>(src, src_stride, dst, h);
    case 5:
      return neon_mc_predict<16, 0, 1>(src, src_stride, dst, h);
    case 6:
      return neon_mc_predict<16, 1, 0>(src, src_stride, dst, h);
    default:
      return neon_mc_predict<16, 1, 1>(src, src_stride, dst, h);
  }
}

void sub_pred_8x8_neon(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* pred, int pred_stride,
                       std::int16_t* residual) {
  for (int y = 0; y < 8; ++y) {
    uint8x8_t c = vld1_u8(cur + static_cast<std::ptrdiff_t>(y) * cur_stride);
    uint8x8_t p = vld1_u8(pred + static_cast<std::ptrdiff_t>(y) * pred_stride);
    vst1q_s16(residual + y * 8,
              vreinterpretq_s16_u16(vsubl_u8(c, p)));
  }
}

void add_pred_8x8_neon(std::uint8_t* dst, int dst_stride,
                       const std::uint8_t* pred, int pred_stride,
                       const std::int16_t* residual) {
  for (int y = 0; y < 8; ++y) {
    uint8x8_t p = vld1_u8(pred + static_cast<std::ptrdiff_t>(y) * pred_stride);
    int16x8_t sum = vaddq_s16(vreinterpretq_s16_u16(vmovl_u8(p)),
                              vld1q_s16(residual + y * 8));
    // VQMOVUN saturates int16 -> [0, 255], which IS the scalar clamp.
    vst1_u8(dst + static_cast<std::ptrdiff_t>(y) * dst_stride,
            vqmovun_s16(sum));
  }
}

// ---------------------------------------------------------------------------
// DCT / IDCT via widening multiply-accumulate (VMLAL.S16)
// ---------------------------------------------------------------------------

inline int32x4_t neon_q28_round(int32x4_t k) {
  // ((K + 2^12) >> 13) + (K < 0 ? -1 : 0): same identity as the x86 path.
  return vaddq_s32(vshrq_n_s32(vaddq_s32(k, vdupq_n_s32(1 << 12)), 13),
                   vshrq_n_s32(k, 31));
}

inline int16x8_t neon_clamp_coeffs(int32x4_t a, int32x4_t b) {
  // |rounded| <= 13451, so the narrowing is exact; clamp on int16 lanes.
  int16x8_t row = vcombine_s16(vmovn_s32(a), vmovn_s32(b));
  return vminq_s16(vmaxq_s16(row, vdupq_n_s16(-2048)), vdupq_n_s16(2047));
}

void forward_dct_8x8_neon(const std::int16_t* input, std::int16_t* output) {
  // Pass A (rows): Y[x][v] = sum_y in[x][y] * B[v][y]; scalar input sample
  // times the transposed-basis column vector, exact int32.
  int32x4_t ya[8], yb[8];
  for (int x = 0; x < 8; ++x) {
    const std::int16_t* in = input + x * 8;
    int32x4_t acc_a = vdupq_n_s32(0), acc_b = acc_a;
    for (int y = 0; y < 8; ++y) {
      int16x8_t bcol = vld1q_s16(kDctBasis16.cols[y]);  // B[v][y] over v
      acc_a = vmlal_n_s16(acc_a, vget_low_s16(bcol), in[y]);
      acc_b = vmlal_n_s16(acc_b, vget_high_s16(bcol), in[y]);
    }
    ya[x] = acc_a;
    yb[x] = acc_b;
  }
  // Split Y = hi * 2^15 + lo, both int16-exact (see kernels_x86_128.inl).
  int16x4_t ha[8], la[8], hb[8], lb[8];
  for (int x = 0; x < 8; ++x) {
    int32x4_t h_a = vshrq_n_s32(vaddq_s32(ya[x], vdupq_n_s32(1 << 14)), 15);
    int32x4_t h_b = vshrq_n_s32(vaddq_s32(yb[x], vdupq_n_s32(1 << 14)), 15);
    ha[x] = vmovn_s32(h_a);
    hb[x] = vmovn_s32(h_b);
    la[x] = vmovn_s32(vsubq_s32(ya[x], vshlq_n_s32(h_a, 15)));
    lb[x] = vmovn_s32(vsubq_s32(yb[x], vshlq_n_s32(h_b, 15)));
  }
  // Pass B: F[u][v] = sum_x B[u][x] * Y[x][v], Q28 finish in int32.
  for (int u = 0; u < 8; ++u) {
    int32x4_t fh_a = vdupq_n_s32(0), fl_a = fh_a, fh_b = fh_a, fl_b = fh_a;
    for (int x = 0; x < 8; ++x) {
      const std::int16_t w = kDctBasis16.rows[u][x];
      fh_a = vmlal_n_s16(fh_a, ha[x], w);
      fl_a = vmlal_n_s16(fl_a, la[x], w);
      fh_b = vmlal_n_s16(fh_b, hb[x], w);
      fl_b = vmlal_n_s16(fl_b, lb[x], w);
    }
    int32x4_t k_a = vaddq_s32(fh_a, vshrq_n_s32(fl_a, 15));
    int32x4_t k_b = vaddq_s32(fh_b, vshrq_n_s32(fl_b, 15));
    vst1q_s16(output + u * 8,
              neon_clamp_coeffs(neon_q28_round(k_a), neon_q28_round(k_b)));
  }
}

void inverse_dct_8x8_neon(const std::int16_t* input, std::int16_t* output) {
  // Pass 1: tmp[x][v] = sum_u B[u][x] * F[u][v]; input rows are contiguous
  // int16, so accumulate them scaled by the transposed basis weights.
  int32x4_t ta[8], tb[8];
  for (int x = 0; x < 8; ++x) {
    ta[x] = vdupq_n_s32(0);
    tb[x] = vdupq_n_s32(0);
  }
  for (int u = 0; u < 8; ++u) {
    int16x8_t frow = vld1q_s16(input + u * 8);
    int16x4_t f_lo = vget_low_s16(frow);
    int16x4_t f_hi = vget_high_s16(frow);
    for (int x = 0; x < 8; ++x) {
      const std::int16_t w = kDctBasis16.cols[x][u];  // B[u][x]
      ta[x] = vmlal_n_s16(ta[x], f_lo, w);
      tb[x] = vmlal_n_s16(tb[x], f_hi, w);
    }
  }
  // Pass 2: X[x][y] = sum_v tmp[x][v] * B[v][y] with tmp split hi/lo; the
  // weights are scalars, so bounce them through a small stack array.
  for (int x = 0; x < 8; ++x) {
    int32x4_t h_a = vshrq_n_s32(vaddq_s32(ta[x], vdupq_n_s32(1 << 14)), 15);
    int32x4_t h_b = vshrq_n_s32(vaddq_s32(tb[x], vdupq_n_s32(1 << 14)), 15);
    alignas(16) std::int16_t th[8], tl[8];
    vst1q_s16(th, vcombine_s16(vmovn_s32(h_a), vmovn_s32(h_b)));
    vst1q_s16(tl, vcombine_s16(
                      vmovn_s32(vsubq_s32(ta[x], vshlq_n_s32(h_a, 15))),
                      vmovn_s32(vsubq_s32(tb[x], vshlq_n_s32(h_b, 15)))));
    int32x4_t xh_a = vdupq_n_s32(0), xl_a = xh_a, xh_b = xh_a, xl_b = xh_a;
    for (int v = 0; v < 8; ++v) {
      int16x8_t brow = vld1q_s16(kDctBasis16.rows[v]);  // B[v][y] over y
      xh_a = vmlal_n_s16(xh_a, vget_low_s16(brow), th[v]);
      xh_b = vmlal_n_s16(xh_b, vget_high_s16(brow), th[v]);
      xl_a = vmlal_n_s16(xl_a, vget_low_s16(brow), tl[v]);
      xl_b = vmlal_n_s16(xl_b, vget_high_s16(brow), tl[v]);
    }
    int32x4_t k_a = vaddq_s32(xh_a, vshrq_n_s32(xl_a, 15));
    int32x4_t k_b = vaddq_s32(xh_b, vshrq_n_s32(xl_b, 15));
    vst1q_s16(output + x * 8,
              neon_clamp_coeffs(neon_q28_round(k_a), neon_q28_round(k_b)));
  }
}

// ---------------------------------------------------------------------------
// Quantization (magic-multiply exact division; proof in kernels_avx2.cpp)
// ---------------------------------------------------------------------------

int quantize_ac_neon(std::int16_t* block, int first, int qp, bool intra) {
  PB_DCHECK(first == 0 || first == 1);
  PB_CHECK(qp >= kMinQp && qp <= kMaxQp);
  const int d = 2 * qp;
  const int32x4_t vmagic = vdupq_n_s32((1 << 18) / d + 1);
  const int32x4_t vbias = vdupq_n_s32(intra ? 0 : qp / 2);
  const int32x4_t vmax = vdupq_n_s32(kMaxLevel);
  const int32x4_t zero = vdupq_n_s32(0);
  const std::int16_t saved_dc = block[0];

  auto level_of = [&](int32x4_t x) {
    int32x4_t mag = vabsq_s32(x);
    int32x4_t num = vmaxq_s32(vsubq_s32(mag, vbias), zero);
    int32x4_t lvl = vshrq_n_s32(vmulq_s32(num, vmagic), 18);
    lvl = vminq_s32(lvl, vmax);
    // Negate where x < 0 (x == 0 already yields level 0).
    uint32x4_t neg = vcltq_s32(x, zero);
    return vbslq_s32(neg, vnegq_s32(lvl), lvl);
  };

  uint16x8_t nz_counts = vdupq_n_u16(0);
  for (int i = 0; i < 64; i += 8) {
    int16x8_t v = vld1q_s16(block + i);
    int32x4_t lo = level_of(vmovl_s16(vget_low_s16(v)));
    int32x4_t hi = level_of(vmovl_s16(vget_high_s16(v)));
    int16x8_t packed = vcombine_s16(vmovn_s32(lo), vmovn_s32(hi));
    vst1q_s16(block + i, packed);
    // vtst yields all-ones (== -1) per nonzero lane; subtracting counts.
    nz_counts = vsubq_u16(nz_counts,
                          vreinterpretq_u16_s16(vreinterpretq_s16_u16(
                              vtstq_s16(packed, packed))));
  }
  int nonzero = static_cast<int>(vaddvq_u16(nz_counts));
  if (first == 1) {
    // The DC slot was processed but does not count (and is restored).
    if (quantize_coeff(saved_dc, qp, intra) != 0) --nonzero;
    block[0] = saved_dc;
  }
  return nonzero;
}

void dequantize_ac_neon(std::int16_t* block, int first, int qp) {
  PB_DCHECK(first == 0 || first == 1);
  const int32x4_t vqp = vdupq_n_s32(qp);
  const int32x4_t vone = vdupq_n_s32(1);
  const int32x4_t veven = vdupq_n_s32(qp % 2 == 0 ? 1 : 0);
  const int32x4_t vmax = vdupq_n_s32(2047);
  const int32x4_t zero = vdupq_n_s32(0);
  const std::int16_t saved_dc = block[0];

  auto rec_of = [&](int32x4_t x) {
    int32x4_t mag = vabsq_s32(x);
    // |REC| = QP * (2|LEVEL| + 1), minus 1 when QP is even (oddification).
    int32x4_t rec =
        vmulq_s32(vqp, vaddq_s32(vshlq_n_s32(mag, 1), vone));
    rec = vminq_s32(vsubq_s32(rec, veven), vmax);
    uint32x4_t neg = vcltq_s32(x, zero);
    rec = vbslq_s32(neg, vnegq_s32(rec), rec);
    // LEVEL == 0 reconstructs to 0, not to QP - even.
    return vbslq_s32(vceqq_s32(x, zero), zero, rec);
  };

  for (int i = 0; i < 64; i += 8) {
    int16x8_t v = vld1q_s16(block + i);
    int32x4_t lo = rec_of(vmovl_s16(vget_low_s16(v)));
    int32x4_t hi = rec_of(vmovl_s16(vget_high_s16(v)));
    vst1q_s16(block + i, vcombine_s16(vmovn_s32(lo), vmovn_s32(hi)));
  }
  if (first == 1) block[0] = saved_dc;
}

}  // namespace

const KernelTable* neon_table_or_null() {
  static const KernelTable table = [] {
    KernelTable t = scalar_table();
    t.backend = Backend::kNeon;
    t.name = "neon";
    for (int i = 0; i < kNumKernels; ++i) t.origin[i] = Backend::kNeon;
    t.sad_16x16 = &sad_16x16_neon;
    t.sad_16x16_cutoff = &sad_16x16_cutoff_neon;
    t.sad_self_16x16 = &sad_self_16x16_neon;
    t.sad_16x16_x4 = &sad_16x16_x4_neon;
    t.sad_16x16_x8 = &sad_16x16_x8_neon;
    t.sad_16x16_hpel_cutoff = &sad_16x16_hpel_cutoff_neon;
    t.forward_dct_8x8 = &forward_dct_8x8_neon;
    t.inverse_dct_8x8 = &inverse_dct_8x8_neon;
    t.quantize_ac = &quantize_ac_neon;
    t.dequantize_ac = &dequantize_ac_neon;
    t.mc_predict = &mc_predict_neon;
    t.sub_pred_8x8 = &sub_pred_8x8_neon;
    t.add_pred_8x8 = &add_pred_8x8_neon;
    return t;
  }();
  return &table;
}

}  // namespace pbpair::codec::kernels

#else  // !defined(__aarch64__)

namespace pbpair::codec::kernels {
const KernelTable* neon_table_or_null() { return nullptr; }
}  // namespace pbpair::codec::kernels

#endif
