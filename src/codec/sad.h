// Sum-of-absolute-differences primitives, metered for the energy model.
#pragma once

#include <cstdint>

#include "energy/op_counters.h"
#include "video/frame.h"

namespace pbpair::codec {

/// SAD between the 16x16 luma block of `cur` at (cx, cy) and the block of
/// `ref` at (rx, ry). Both blocks must be fully inside their planes.
/// Meters 256 sad_pixel_ops.
std::int64_t sad_16x16(const video::Plane& cur, int cx, int cy,
                       const video::Plane& ref, int rx, int ry,
                       energy::OpCounters& ops);

/// SAD with early termination: stops (returning a value >= `cutoff`) once
/// the partial sum exceeds `cutoff`. Meters only the pixels actually read.
std::int64_t sad_16x16_cutoff(const video::Plane& cur, int cx, int cy,
                              const video::Plane& ref, int rx, int ry,
                              std::int64_t cutoff, energy::OpCounters& ops);

/// Deviation of the block from its own mean: SAD_self = sum |p - mean(p)|.
/// This is H.263 TMN's "A" value used in the intra/inter decision, and the
/// paper's SAD_self. Meters 256 sad_pixel_ops (plus the mean pass is folded
/// into the same cost).
std::int64_t sad_self_16x16(const video::Plane& cur, int cx, int cy,
                            energy::OpCounters& ops);

}  // namespace pbpair::codec
