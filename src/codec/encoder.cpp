#include "codec/encoder.h"

#include "codec/block_coder.h"
#include "codec/block_io.h"
#include "codec/dct.h"
#include "codec/deblock.h"
#include "codec/golomb.h"
#include "codec/kernels/kernels.h"
#include "codec/mc.h"
#include "codec/quant.h"
#include "codec/vlc_tables.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::codec {
namespace {

/// residual = cur 8x8 block at (cx, cy) minus prediction rows (row-major,
/// stride `pred_stride`, origin at (ox, oy) inside the prediction buffer).
void subtract_pred(const video::Plane& cur, int cx, int cy,
                   const std::uint8_t* pred, int pred_stride, int ox, int oy,
                   std::int16_t* residual) {
  kernels::active().sub_pred_8x8(cur.row(cy) + cx, cur.width(),
                                 pred + oy * pred_stride + ox, pred_stride,
                                 residual);
}

/// dst 8x8 block at (x, y) = clamp(pred + residual).
void add_pred(video::Plane& dst, int x, int y, const std::uint8_t* pred,
              int pred_stride, int ox, int oy, const std::int16_t* residual) {
  kernels::active().add_pred_8x8(dst.row(y) + x, dst.width(),
                                 pred + oy * pred_stride + ox, pred_stride,
                                 residual);
}

/// dst 8x8 block = prediction rows verbatim.
void copy_pred(video::Plane& dst, int x, int y, const std::uint8_t* pred,
               int pred_stride, int ox, int oy) {
  for (int row = 0; row < 8; ++row) {
    std::uint8_t* d = dst.row(y + row) + x;
    const std::uint8_t* p = pred + (oy + row) * pred_stride + ox;
    for (int col = 0; col < 8; ++col) d[col] = p[col];
  }
}

}  // namespace

Encoder::Encoder(const EncoderConfig& config, RefreshPolicy* policy)
    : config_(config),
      policy_(policy),
      recon_(config.width, config.height),
      ref_(config.width, config.height),
      prev_original_(config.width, config.height) {
  PB_CHECK(policy != nullptr);
  PB_CHECK(config.qp >= kMinQp && config.qp <= kMaxQp);
  ref_.fill_gray();
}

void Encoder::reset() {
  frame_index_ = 0;
  have_prev_original_ = false;
  ref_.fill_gray();
  ops_.reset();
  policy_->reset();
}

void Encoder::encode_mb_intra(const video::YuvFrame& frame, int mb_x, int mb_y,
                              MbCoding* coding) {
  coding->mode = MbMode::kIntra;
  coding->mv = MotionVector{};
  const int lx = mb_x * 16;
  const int ly = mb_y * 16;
  std::int16_t spatial[64];
  for (int b = 0; b < 6; ++b) {
    if (b < 4) {
      extract_block(frame.y(), lx + (b % 2) * 8, ly + (b / 2) * 8, spatial);
    } else if (b == 4) {
      extract_block(frame.u(), mb_x * 8, mb_y * 8, spatial);
    } else {
      extract_block(frame.v(), mb_x * 8, mb_y * 8, spatial);
    }
    forward_dct_8x8(spatial, coding->blocks[b]);
    ops_.dct_blocks += 1;
    quantize_block(coding->blocks[b], config_.qp, /*intra=*/true, ops_);
    // Intra blocks are always coded (DC is mandatory); CBP tracks AC-only
    // emptiness just for statistics, the bitstream uses the in-block flag.
    coding->cbp |= 1 << b;
  }
}

void Encoder::encode_mb_inter(const video::YuvFrame& frame, int mb_x, int mb_y,
                              MotionVector mv, MbCoding* coding) {
  coding->mode = MbMode::kInter;
  coding->mv = mv;
  const int lx = mb_x * 16;
  const int ly = mb_y * 16;

  // Form the predictions once (half-pel aware); residual coding and
  // reconstruction both read these buffers.
  predict_block(ref_.y(), lx * 2 + mv.x, ly * 2 + mv.y, 16, 16,
                coding->pred_y, ops_);
  const MotionVector cmv = chroma_mv(mv);
  predict_block(ref_.u(), mb_x * 8 * 2 + cmv.x, mb_y * 8 * 2 + cmv.y, 8, 8,
                coding->pred_u, ops_);
  predict_block(ref_.v(), mb_x * 8 * 2 + cmv.x, mb_y * 8 * 2 + cmv.y, 8, 8,
                coding->pred_v, ops_);

  std::int16_t residual[64];
  for (int b = 0; b < 6; ++b) {
    if (b < 4) {
      subtract_pred(frame.y(), lx + (b % 2) * 8, ly + (b / 2) * 8,
                    coding->pred_y, 16, (b % 2) * 8, (b / 2) * 8, residual);
    } else {
      subtract_pred(b == 4 ? frame.u() : frame.v(), mb_x * 8, mb_y * 8,
                    b == 4 ? coding->pred_u : coding->pred_v, 8, 0, 0,
                    residual);
    }
    forward_dct_8x8(residual, coding->blocks[b]);
    ops_.dct_blocks += 1;
    int nonzero =
        quantize_block(coding->blocks[b], config_.qp, /*intra=*/false, ops_);
    if (nonzero > 0) coding->cbp |= 1 << b;
  }
  if (coding->cbp == 0 && mv.is_zero()) {
    coding->mode = MbMode::kSkip;
  }
}

void Encoder::write_mb(BitWriter& writer, const MbCoding& coding,
                       bool intra_frame, MotionVector* mv_predictor) {
  if (!intra_frame) {
    if (coding.mode == MbMode::kSkip) {
      writer.put_bit(true);  // COD = 1: not coded
      *mv_predictor = MotionVector{};
      return;
    }
    writer.put_bit(false);                              // COD = 0
    writer.put_bit(coding.mode == MbMode::kIntra);      // mode
  } else {
    PB_CHECK(coding.mode == MbMode::kIntra);
  }
  if (coding.mode == MbMode::kIntra) {
    for (int b = 0; b < 6; ++b) {
      encode_block(writer, coding.blocks[b], /*intra=*/true);
    }
    *mv_predictor = MotionVector{};
    return;
  }
  // Differential MV coding: predictor is the previous inter MB's vector in
  // this GOB row (resync-safe: rows reset it), (0,0) after skip/intra.
  put_se(writer, coding.mv.x - mv_predictor->x);
  put_se(writer, coding.mv.y - mv_predictor->y);
  *mv_predictor = coding.mv;
  cbp_vlc().encode(writer, coding.cbp);
  for (int b = 0; b < 6; ++b) {
    if ((coding.cbp >> b) & 1) {
      encode_block(writer, coding.blocks[b], /*intra=*/false);
    }
  }
}

void Encoder::reconstruct_mb(const MbCoding& coding, int mb_x, int mb_y) {
  const int lx = mb_x * 16;
  const int ly = mb_y * 16;
  std::int16_t levels[64];
  std::int16_t spatial[64];

  if (coding.mode == MbMode::kSkip) {
    copy_region(ref_.y(), lx, ly, recon_.y(), lx, ly, 16, 16);
    copy_region(ref_.u(), mb_x * 8, mb_y * 8, recon_.u(), mb_x * 8, mb_y * 8,
                8, 8);
    copy_region(ref_.v(), mb_x * 8, mb_y * 8, recon_.v(), mb_x * 8, mb_y * 8,
                8, 8);
    ops_.mc_pixels += 256 + 2 * 64;
    return;
  }

  if (coding.mode == MbMode::kIntra) {
    for (int b = 0; b < 6; ++b) {
      video::Plane& dst =
          b < 4 ? recon_.y() : (b == 4 ? recon_.u() : recon_.v());
      int bx = b < 4 ? lx + (b % 2) * 8 : mb_x * 8;
      int by = b < 4 ? ly + (b / 2) * 8 : mb_y * 8;
      for (int i = 0; i < 64; ++i) levels[i] = coding.blocks[b][i];
      dequantize_block(levels, config_.qp, /*intra=*/true, ops_);
      inverse_dct_8x8(levels, spatial);
      ops_.idct_blocks += 1;
      store_block(dst, bx, by, spatial);
    }
    return;
  }

  // Inter: prediction buffers were formed during encode_mb_inter.
  for (int b = 0; b < 6; ++b) {
    const bool coded = ((coding.cbp >> b) & 1) != 0;
    video::Plane& dst = b < 4 ? recon_.y() : (b == 4 ? recon_.u() : recon_.v());
    const std::uint8_t* pred =
        b < 4 ? coding.pred_y : (b == 4 ? coding.pred_u : coding.pred_v);
    int stride = b < 4 ? 16 : 8;
    int ox = b < 4 ? (b % 2) * 8 : 0;
    int oy = b < 4 ? (b / 2) * 8 : 0;
    int bx = b < 4 ? lx + (b % 2) * 8 : mb_x * 8;
    int by = b < 4 ? ly + (b / 2) * 8 : mb_y * 8;
    if (coded) {
      for (int i = 0; i < 64; ++i) levels[i] = coding.blocks[b][i];
      dequantize_block(levels, config_.qp, /*intra=*/false, ops_);
      inverse_dct_8x8(levels, spatial);
      ops_.idct_blocks += 1;
      add_pred(dst, bx, by, pred, stride, ox, oy, spatial);
    } else {
      copy_pred(dst, bx, by, pred, stride, ox, oy);
    }
  }
}

EncodedFrame Encoder::encode_frame(const video::YuvFrame& frame) {
  PB_CHECK(frame.width() == config_.width && frame.height() == config_.height);
  const int mb_cols = frame.mb_cols();
  const int mb_rows = frame.mb_rows();
  const int mb_count = mb_cols * mb_rows;

  // Observability: spans/counters/stage clocks only READ — they never feed
  // back into coding decisions, so the bitstream is byte-identical with
  // tracing on or off (tests/test_obs.cpp holds this invariant).
  const bool tracing = obs::enabled();
  obs::ScopedSpan frame_span("encoder.encode_frame", frame_index_, "frame");
  std::int64_t me_ns = 0, transform_ns = 0, vlc_ns = 0, recon_ns = 0;
  auto staged = [tracing](std::int64_t* acc, auto&& body) {
    if (!tracing) {
      body();
      return;
    }
    const std::int64_t t0 = obs::trace_now_ns();
    body();
    *acc += obs::trace_now_ns() - t0;
  };

  const bool intra_frame =
      frame_index_ == 0 || policy_->want_intra_frame(frame_index_);

  std::vector<std::uint8_t> force_intra(mb_count, 0);
  std::vector<MbMeInfo> me_info(mb_count);
  std::vector<std::int64_t> sad_self(mb_count, -1);

  if (!intra_frame) {
    const std::int64_t me_t0 = tracing ? obs::trace_now_ns() : 0;
    MePenaltyFn penalty;
    if (policy_->has_me_penalty()) {
      penalty = [this](int mb_x, int mb_y, MotionVector mv) {
        return policy_->me_penalty(mb_x, mb_y, mv);
      };
    }
    for (int my = 0; my < mb_rows; ++my) {
      for (int mx = 0; mx < mb_cols; ++mx) {
        const int i = my * mb_cols + mx;
        if (policy_->force_intra_pre_me(frame_index_, mx, my)) {
          force_intra[i] = 1;
          continue;  // the paper's early decision: no ME for this MB
        }
        MotionResult result = search_motion(frame.y(), ref_.y(), mx, my,
                                            config_.search, penalty, ops_);
        me_info[i].searched = true;
        me_info[i].mv = result.mv;
        me_info[i].sad = result.sad;
        me_info[i].sad_zero = result.sad_zero;
      }
    }
    policy_->select_post_me(frame_index_, me_info, mb_cols, mb_rows,
                            &force_intra);
    if (tracing) {
      me_ns = obs::trace_now_ns() - me_t0;
      obs::record_span("encoder.me_search", me_t0, me_ns, frame_index_,
                       "frame");
    }
  }

  EncodedFrame out;
  out.frame_index = frame_index_;
  out.type = intra_frame ? FrameType::kIntra : FrameType::kInter;
  out.qp = config_.qp;
  out.mb_cols = mb_cols;
  out.mb_rows = mb_rows;
  out.mb_records.resize(mb_count);

  BitWriter writer;
  writer.put_bits(static_cast<std::uint32_t>(frame_index_ & 0xFF), 8);
  writer.put_bit(out.type == FrameType::kInter);
  writer.put_bits(static_cast<std::uint32_t>(config_.qp), 5);
  writer.align();

  for (int my = 0; my < mb_rows; ++my) {
    writer.align();
    out.gob_offsets.push_back(static_cast<std::uint32_t>(writer.byte_offset()));
    writer.put_bits(static_cast<std::uint32_t>(my), 8);  // GOB header
    MotionVector mv_predictor{};  // resets at every GOB (resync point)
    for (int mx = 0; mx < mb_cols; ++mx) {
      const int i = my * mb_cols + mx;
      const std::uint64_t bits_before = writer.bit_count();

      MbCoding coding;
      staged(&transform_ns, [&] {
        if (intra_frame || force_intra[i]) {
          encode_mb_intra(frame, mx, my, &coding);
        } else {
          // Encoder-efficiency intra decision (paper Fig. 4): if inter
          // coding would cost more bits than intra, use intra even for a
          // healthy MB.
          sad_self[i] = sad_self_16x16(frame.y(), mx * 16, my * 16, ops_);
          if (me_info[i].sad - config_.intra_sad_bias > sad_self[i]) {
            encode_mb_intra(frame, mx, my, &coding);
          } else {
            encode_mb_inter(frame, mx, my, me_info[i].mv, &coding);
          }
        }
      });
      staged(&vlc_ns,
             [&] { write_mb(writer, coding, intra_frame, &mv_predictor); });
      staged(&recon_ns, [&] { reconstruct_mb(coding, mx, my); });

      MbEncodeRecord& record = out.mb_records[i];
      record.mode = coding.mode;
      record.mv = coding.mode == MbMode::kInter ? coding.mv : MotionVector{};
      record.sad_mv = me_info[i].searched ? me_info[i].sad : -1;
      record.sad_zero = me_info[i].searched ? me_info[i].sad_zero : -1;
      record.sad_self = sad_self[i];
      record.pre_me_intra = force_intra[i] != 0 && !me_info[i].searched;
      record.bits = static_cast<std::uint32_t>(writer.bit_count() - bits_before);

      switch (coding.mode) {
        case MbMode::kIntra: ops_.intra_mbs += 1; break;
        case MbMode::kInter: ops_.inter_mbs += 1; break;
        case MbMode::kSkip: ops_.skip_mbs += 1; break;
      }
    }
  }

  out.bytes = writer.finish();
  ops_.bits_written += static_cast<std::uint64_t>(out.bytes.size()) * 8;
  ops_.frames += 1;

  // In-loop deblocking: filter the reconstruction before it becomes the
  // next frame's reference (the decoder mirrors this exactly).
  if (config_.deblocking) deblock_frame(recon_, config_.qp);

  FrameEncodeInfo info;
  info.frame_index = frame_index_;
  info.type = out.type;
  info.mb_cols = mb_cols;
  info.mb_rows = mb_rows;
  info.mb_records = &out.mb_records;
  info.original = &frame;
  info.prev_original = have_prev_original_ ? &prev_original_ : nullptr;
  info.ops = &ops_;
  policy_->on_frame_encoded(info);

  if (tracing) {
    std::uint64_t intra = 0, inter = 0, skip = 0, me_skipped = 0,
                  me_searched = 0;
    for (const MbEncodeRecord& record : out.mb_records) {
      switch (record.mode) {
        case MbMode::kIntra: ++intra; break;
        case MbMode::kInter: ++inter; break;
        case MbMode::kSkip: ++skip; break;
      }
      if (record.pre_me_intra) ++me_skipped;
      if (record.sad_mv >= 0) ++me_searched;
    }
    // Registry lookups are mutex-guarded; cache the handles (stable for
    // the process lifetime) so the per-frame flush stays cheap.
    static obs::Counter* c_frames = &obs::counter("encoder.frames");
    static obs::Counter* c_frames_intra = &obs::counter("encoder.frames_intra");
    static obs::Counter* c_mb_intra = &obs::counter("encoder.mb_intra");
    static obs::Counter* c_mb_inter = &obs::counter("encoder.mb_inter");
    static obs::Counter* c_mb_skip = &obs::counter("encoder.mb_skip");
    static obs::Counter* c_me_skipped = &obs::counter("encoder.mb_me_skipped");
    static obs::Counter* c_me_searched =
        &obs::counter("encoder.mb_me_searched");
    static obs::Counter* c_bits = &obs::counter("encoder.bits_written");
    static obs::Histogram* h_me = &obs::histogram("encoder.me_ns");
    static obs::Histogram* h_transform =
        &obs::histogram("encoder.transform_quant_ns");
    static obs::Histogram* h_vlc = &obs::histogram("encoder.vlc_ns");
    static obs::Histogram* h_recon = &obs::histogram("encoder.recon_ns");
    c_frames->add(1);
    if (intra_frame) c_frames_intra->add(1);
    c_mb_intra->add(intra);
    c_mb_inter->add(inter);
    c_mb_skip->add(skip);
    c_me_skipped->add(me_skipped);
    c_me_searched->add(me_searched);
    c_bits->add(static_cast<std::uint64_t>(out.bytes.size()) * 8);
    if (!intra_frame) h_me->observe(me_ns);
    h_transform->observe(transform_ns);
    h_vlc->observe(vlc_ns);
    h_recon->observe(recon_ns);
    // Last-frame intra ratio (the paper's Intra_Th lever in action);
    // gauges are stripped from deterministic output.
    obs::gauge("encoder.intra_mb_ratio")
        .set(static_cast<double>(intra) / static_cast<double>(mb_count));
  }

  // Advance references for the next frame.
  ref_ = recon_;
  prev_original_ = frame;
  have_prev_original_ = true;
  ++frame_index_;
  return out;
}

}  // namespace pbpair::codec
