#include "codec/motion_search.h"

#include "codec/mc.h"
#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::codec {
namespace {

struct SearchContext {
  const video::Plane& cur;
  const video::Plane& ref;
  int px;  // MB top-left in pixels
  int py;
  // Valid FULL-PEL vector bounds, in pixels.
  int min_dx, max_dx, min_dy, max_dy;
  const MePenaltyFn* penalty;
  energy::OpCounters* ops;

  bool in_bounds_pixels(int dx, int dy) const {
    return dx >= min_dx && dx <= max_dx && dy >= min_dy && dy <= max_dy;
  }

  std::int64_t penalty_of(MotionVector mv, int mb_x, int mb_y) const {
    if (penalty != nullptr && *penalty) return (*penalty)(mb_x, mb_y, mv);
    return 0;
  }

  /// Evaluates one FULL-PEL candidate (dx, dy in pixels); returns its cost.
  std::int64_t evaluate(int dx, int dy, std::int64_t best_cost,
                        std::int64_t* out_sad, int mb_x, int mb_y) const {
    std::int64_t pen = penalty_of(MotionVector::from_pixels(dx, dy), mb_x, mb_y);
    // Early-out cutoff: the SAD alone only needs to reach best_cost - pen.
    std::int64_t cutoff = best_cost - pen;
    if (cutoff <= 0) {
      // Penalty already disqualifies the candidate; spend no SAD work.
      *out_sad = 0;
      return best_cost;  // "not better" sentinel
    }
    std::int64_t sad = sad_16x16_cutoff(cur, px, py, ref, px + dx, py + dy,
                                        cutoff, *ops);
    *out_sad = sad;
    return sad + pen;
  }
};

void full_search(const SearchContext& ctx, int mb_x, int mb_y,
                 MotionResult& best) {
  for (int dy = ctx.min_dy; dy <= ctx.max_dy; ++dy) {
    for (int dx = ctx.min_dx; dx <= ctx.max_dx; ++dx) {
      if (dx == 0 && dy == 0) continue;  // seeded before dispatch
      std::int64_t sad = 0;
      std::int64_t cost = ctx.evaluate(dx, dy, best.cost, &sad, mb_x, mb_y);
      ++best.candidates;
      if (cost < best.cost) {
        best.cost = cost;
        best.sad = sad;
        best.mv = MotionVector::from_pixels(dx, dy);
      }
    }
  }
}

void diamond_search(const SearchContext& ctx, int mb_x, int mb_y,
                    MotionResult& best) {
  // Large diamond search pattern descent, then small diamond refinement,
  // all in full-pel steps.
  struct Step {
    int dx, dy;
  };
  static constexpr Step kLarge[] = {{0, -2}, {-1, -1}, {1, -1}, {-2, 0},
                                    {2, 0},  {-1, 1},  {1, 1},  {0, 2}};
  static constexpr Step kSmall[] = {{0, -1}, {-1, 0}, {1, 0}, {0, 1}};

  auto try_pixels = [&](int dx, int dy) {
    if (!ctx.in_bounds_pixels(dx, dy)) return false;
    std::int64_t sad = 0;
    std::int64_t cost = ctx.evaluate(dx, dy, best.cost, &sad, mb_x, mb_y);
    ++best.candidates;
    if (cost < best.cost) {
      best.cost = cost;
      best.sad = sad;
      best.mv = MotionVector::from_pixels(dx, dy);
      return true;
    }
    return false;
  };

  bool improved = true;
  int iterations = 0;
  while (improved && iterations < 64) {
    improved = false;
    int cx = halfpel_floor(best.mv.x);
    int cy = halfpel_floor(best.mv.y);
    for (Step step : kLarge) improved |= try_pixels(cx + step.dx, cy + step.dy);
    ++iterations;
  }
  int cx = halfpel_floor(best.mv.x);
  int cy = halfpel_floor(best.mv.y);
  for (Step step : kSmall) try_pixels(cx + step.dx, cy + step.dy);
}

void halfpel_refine(const SearchContext& ctx, int mb_x, int mb_y,
                    MotionResult& best) {
  // The 8 half-pel neighbors of the full-pel winner (TMN refinement).
  const MotionVector center = best.mv;
  for (int dy2 = -1; dy2 <= 1; ++dy2) {
    for (int dx2 = -1; dx2 <= 1; ++dx2) {
      if (dx2 == 0 && dy2 == 0) continue;
      MotionVector mv{center.x + dx2, center.y + dy2};
      // Keep the *floor* position inside the full-pel bounds so the
      // interpolation only ever clamps on its +1 edge reads.
      if (!ctx.in_bounds_pixels(halfpel_floor(mv.x), halfpel_floor(mv.y))) {
        continue;
      }
      std::int64_t pen = ctx.penalty_of(mv, mb_x, mb_y);
      std::int64_t cutoff = best.cost - pen;
      if (cutoff <= 0) {
        ++best.candidates;
        continue;
      }
      std::int64_t sad = sad_16x16_halfpel(ctx.cur, ctx.px, ctx.py, ctx.ref,
                                           ctx.px * 2 + mv.x,
                                           ctx.py * 2 + mv.y, cutoff,
                                           *ctx.ops);
      ++best.candidates;
      if (sad + pen < best.cost) {
        best.cost = sad + pen;
        best.sad = sad;
        best.mv = mv;
      }
    }
  }
}

}  // namespace

MotionResult search_motion(const video::Plane& cur, const video::Plane& ref,
                           int mb_x, int mb_y, const MotionSearchConfig& config,
                           const MePenaltyFn& penalty,
                           energy::OpCounters& ops) {
  PB_CHECK(cur.same_size(ref));
  PB_CHECK(config.range >= 0 && config.range <= 31);
  const int px = mb_x * kMbSize;
  const int py = mb_y * kMbSize;
  PB_CHECK(px + kMbSize <= cur.width() && py + kMbSize <= cur.height());

  SearchContext ctx{
      cur,
      ref,
      px,
      py,
      common::clamp(-config.range, -px, 0),
      common::clamp(config.range, 0, ref.width() - kMbSize - px),
      common::clamp(-config.range, -py, 0),
      common::clamp(config.range, 0, ref.height() - kMbSize - py),
      &penalty,
      &ops,
  };

  ops.me_invocations += 1;

  // Seed with the exact zero-vector candidate: both strategies start here,
  // and its SAD doubles as the co-located similarity input (motion.h).
  MotionResult best;
  best.sad_zero = sad_16x16(cur, px, py, ref, px, py, ops);
  best.mv = MotionVector{0, 0};
  best.sad = best.sad_zero;
  best.cost = best.sad_zero - config.zero_mv_bias;
  if (best.cost < 0) best.cost = 0;
  if (penalty) best.cost += penalty(mb_x, mb_y, MotionVector{0, 0});
  best.candidates = 1;

  switch (config.strategy) {
    case SearchStrategy::kFullSearch:
      full_search(ctx, mb_x, mb_y, best);
      break;
    case SearchStrategy::kDiamondSearch:
      diamond_search(ctx, mb_x, mb_y, best);
      break;
  }
  if (config.half_pel) {
    halfpel_refine(ctx, mb_x, mb_y, best);
  }
  return best;
}

}  // namespace pbpair::codec
