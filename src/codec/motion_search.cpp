#include "codec/motion_search.h"

#include "codec/kernels/kernels.h"
#include "codec/mc.h"
#include "codec/sad.h"
#include "common/check.h"
#include "common/math_util.h"
#include "obs/metrics.h"

namespace pbpair::codec {
namespace {

struct SearchContext {
  const video::Plane& cur;
  const video::Plane& ref;
  int px;  // MB top-left in pixels
  int py;
  // Valid FULL-PEL vector bounds, in pixels.
  int min_dx, max_dx, min_dy, max_dy;
  const MePenaltyFn* penalty;
  energy::OpCounters* ops;

  bool in_bounds_pixels(int dx, int dy) const {
    return dx >= min_dx && dx <= max_dx && dy >= min_dy && dy <= max_dy;
  }

  std::int64_t penalty_of(MotionVector mv, int mb_x, int mb_y) const {
    if (penalty != nullptr && *penalty) return (*penalty)(mb_x, mb_y, mv);
    return 0;
  }

  /// Evaluates one FULL-PEL candidate (dx, dy in pixels); returns its cost.
  /// Sequential path, used when the active backend has no genuine batched
  /// SAD kernel (bit-identical to the batched scorer either way).
  std::int64_t evaluate(int dx, int dy, std::int64_t best_cost,
                        std::int64_t* out_sad, int mb_x, int mb_y) const {
    std::int64_t pen = penalty_of(MotionVector::from_pixels(dx, dy), mb_x, mb_y);
    // Early-out cutoff: the SAD alone only needs to reach best_cost - pen.
    std::int64_t cutoff = best_cost - pen;
    if (cutoff <= 0) {
      // Penalty already disqualifies the candidate; spend no SAD work.
      *out_sad = 0;
      return best_cost;  // "not better" sentinel
    }
    std::int64_t sad = sad_16x16_cutoff(cur, px, py, ref, px + dx, py + dy,
                                        cutoff, *ops);
    *out_sad = sad;
    return sad + pen;
  }
};

// Batching trades the per-candidate early exit for multi-candidate vector
// throughput; that only pays when the table brings a real vector kernel.
// The scalar table's batched slot is just eight sequential full SADs, which
// would turn the early-exit-heavy search into strictly more work.
bool use_batched_sads() {
  return kernels::active().origin_of(kernels::KernelId::kSad16x16X4) !=
         kernels::Backend::kScalar;
}

// Scores full-pel candidates through the batched SAD kernels while
// reproducing the sequential scalar search bit for bit.
//
// Candidates are staged in scalar evaluation order and scored eight (or
// four) at a time with the multi-candidate kernels, which compute full
// 16-row SADs with no early exit. The staged batch is then REPLAYED in
// order against the evolving best cost:
//
//   - cutoff <= 0: the penalty alone disqualifies the candidate; the scalar
//     path spent no SAD work and touched no counters, so neither does the
//     replay (the batch's wasted rows are wall-clock only — the energy
//     model meters algorithmic work, not the machine's).
//   - batched SAD < cutoff: the scalar cutoff loop would have completed all
//     16 rows (partial sums are monotonically nondecreasing, so they cannot
//     reach the cutoff before the total does) and returned this exact
//     value. Metering is the full 256 pixels and one sad_calls tick.
//   - batched SAD >= cutoff: the scalar loop early-exited on some row with
//     some partial sum, and both the row count (energy) and the exit
//     (observability) are part of the contract. The replay re-runs the
//     metered cutoff wrapper, which terminates on the same row the scalar
//     search did.
//
// Penalties are evaluated during the replay, after earlier candidates have
// updated best.cost — identical to the scalar candidate loop. Batches may
// span row boundaries of a full search; only the staging order matters.
class BatchScorer {
 public:
  BatchScorer(const SearchContext& ctx, int mb_x, int mb_y, MotionResult& best)
      : ctx_(ctx), mb_x_(mb_x), mb_y_(mb_y), best_(best) {}

  /// Stages one in-bounds full-pel candidate (scalar evaluation order).
  void add(int dx, int dy) {
    dx_[n_] = dx;
    dy_[n_] = dy;
    refs_[n_] = ctx_.ref.row(ctx_.py + dy) + ctx_.px + dx;
    if (++n_ == 8) replay();
  }

  /// Scores any staged remainder; returns whether any candidate staged
  /// since the last finish() improved the best cost.
  bool finish() {
    replay();
    const bool improved = improved_;
    improved_ = false;
    return improved;
  }

 private:
  void replay() {
    if (n_ == 0) return;
    const kernels::KernelTable& kt = kernels::active();
    const std::uint8_t* cur = ctx_.cur.row(ctx_.py) + ctx_.px;
    const int cur_stride = ctx_.cur.width();
    const int ref_stride = ctx_.ref.width();
    std::int64_t sads[8];
    if (n_ == 8) {
      kt.sad_16x16_x8(cur, cur_stride, refs_, ref_stride, sads);
    } else if (n_ >= 4) {
      kt.sad_16x16_x4(cur, cur_stride, refs_, ref_stride, sads);
      for (int i = 4; i < n_; ++i) {
        sads[i] = kt.sad_16x16(cur, cur_stride, refs_[i], ref_stride);
      }
    } else {
      for (int i = 0; i < n_; ++i) {
        sads[i] = kt.sad_16x16(cur, cur_stride, refs_[i], ref_stride);
      }
    }

    for (int i = 0; i < n_; ++i) {
      const MotionVector mv = MotionVector::from_pixels(dx_[i], dy_[i]);
      const std::int64_t pen = ctx_.penalty_of(mv, mb_x_, mb_y_);
      const std::int64_t cutoff = best_.cost - pen;
      ++best_.candidates;
      if (cutoff <= 0) continue;
      std::int64_t sad;
      if (sads[i] < cutoff) {
        sad = sads[i];
        ctx_.ops->sad_pixel_ops += 256;
        if (obs::enabled()) {
          static obs::Counter* c_calls = &obs::counter("encoder.sad_calls");
          c_calls->add(1);
        }
      } else {
        sad = sad_16x16_cutoff(ctx_.cur, ctx_.px, ctx_.py, ctx_.ref,
                               ctx_.px + dx_[i], ctx_.py + dy_[i], cutoff,
                               *ctx_.ops);
      }
      const std::int64_t cost = sad + pen;
      if (cost < best_.cost) {
        best_.cost = cost;
        best_.sad = sad;
        best_.mv = mv;
        improved_ = true;
      }
    }
    n_ = 0;
  }

  const SearchContext& ctx_;
  const int mb_x_;
  const int mb_y_;
  MotionResult& best_;
  int n_ = 0;
  bool improved_ = false;
  int dx_[8];
  int dy_[8];
  const std::uint8_t* refs_[8];
};

void full_search(const SearchContext& ctx, int mb_x, int mb_y,
                 MotionResult& best) {
  if (!use_batched_sads()) {
    for (int dy = ctx.min_dy; dy <= ctx.max_dy; ++dy) {
      for (int dx = ctx.min_dx; dx <= ctx.max_dx; ++dx) {
        if (dx == 0 && dy == 0) continue;  // seeded before dispatch
        std::int64_t sad = 0;
        std::int64_t cost = ctx.evaluate(dx, dy, best.cost, &sad, mb_x, mb_y);
        ++best.candidates;
        if (cost < best.cost) {
          best.cost = cost;
          best.sad = sad;
          best.mv = MotionVector::from_pixels(dx, dy);
        }
      }
    }
    return;
  }
  BatchScorer batch(ctx, mb_x, mb_y, best);
  for (int dy = ctx.min_dy; dy <= ctx.max_dy; ++dy) {
    for (int dx = ctx.min_dx; dx <= ctx.max_dx; ++dx) {
      if (dx == 0 && dy == 0) continue;  // seeded before dispatch
      batch.add(dx, dy);
    }
  }
  batch.finish();
}

void diamond_search(const SearchContext& ctx, int mb_x, int mb_y,
                    MotionResult& best) {
  // Large diamond search pattern descent, then small diamond refinement,
  // all in full-pel steps. The scalar loop computed the diamond center
  // before trying its 8 neighbors, so each iteration's candidate set is
  // fixed up front — exactly the shape the batched scorer needs.
  struct Step {
    int dx, dy;
  };
  static constexpr Step kLarge[] = {{0, -2}, {-1, -1}, {1, -1}, {-2, 0},
                                    {2, 0},  {-1, 1},  {1, 1},  {0, 2}};
  static constexpr Step kSmall[] = {{0, -1}, {-1, 0}, {1, 0}, {0, 1}};

  if (!use_batched_sads()) {
    auto try_pixels = [&](int dx, int dy) {
      if (!ctx.in_bounds_pixels(dx, dy)) return false;
      std::int64_t sad = 0;
      std::int64_t cost = ctx.evaluate(dx, dy, best.cost, &sad, mb_x, mb_y);
      ++best.candidates;
      if (cost < best.cost) {
        best.cost = cost;
        best.sad = sad;
        best.mv = MotionVector::from_pixels(dx, dy);
        return true;
      }
      return false;
    };
    bool improved = true;
    int iterations = 0;
    while (improved && iterations < 64) {
      improved = false;
      int cx = halfpel_floor(best.mv.x);
      int cy = halfpel_floor(best.mv.y);
      for (Step step : kLarge) improved |= try_pixels(cx + step.dx, cy + step.dy);
      ++iterations;
    }
    int cx = halfpel_floor(best.mv.x);
    int cy = halfpel_floor(best.mv.y);
    for (Step step : kSmall) try_pixels(cx + step.dx, cy + step.dy);
    return;
  }

  BatchScorer batch(ctx, mb_x, mb_y, best);
  bool improved = true;
  int iterations = 0;
  while (improved && iterations < 64) {
    int cx = halfpel_floor(best.mv.x);
    int cy = halfpel_floor(best.mv.y);
    for (Step step : kLarge) {
      // Out-of-bounds neighbors are dropped before the candidate counter,
      // exactly like the scalar try_pixels guard.
      if (ctx.in_bounds_pixels(cx + step.dx, cy + step.dy)) {
        batch.add(cx + step.dx, cy + step.dy);
      }
    }
    improved = batch.finish();
    ++iterations;
  }
  int cx = halfpel_floor(best.mv.x);
  int cy = halfpel_floor(best.mv.y);
  for (Step step : kSmall) {
    if (ctx.in_bounds_pixels(cx + step.dx, cy + step.dy)) {
      batch.add(cx + step.dx, cy + step.dy);
    }
  }
  batch.finish();
}

void halfpel_refine(const SearchContext& ctx, int mb_x, int mb_y,
                    MotionResult& best) {
  // The 8 half-pel neighbors of the full-pel winner (TMN refinement).
  const MotionVector center = best.mv;
  for (int dy2 = -1; dy2 <= 1; ++dy2) {
    for (int dx2 = -1; dx2 <= 1; ++dx2) {
      if (dx2 == 0 && dy2 == 0) continue;
      MotionVector mv{center.x + dx2, center.y + dy2};
      // Keep the *floor* position inside the full-pel bounds so the
      // interpolation only ever clamps on its +1 edge reads.
      if (!ctx.in_bounds_pixels(halfpel_floor(mv.x), halfpel_floor(mv.y))) {
        continue;
      }
      std::int64_t pen = ctx.penalty_of(mv, mb_x, mb_y);
      std::int64_t cutoff = best.cost - pen;
      if (cutoff <= 0) {
        ++best.candidates;
        continue;
      }
      std::int64_t sad = sad_16x16_halfpel(ctx.cur, ctx.px, ctx.py, ctx.ref,
                                           ctx.px * 2 + mv.x,
                                           ctx.py * 2 + mv.y, cutoff,
                                           *ctx.ops);
      ++best.candidates;
      if (sad + pen < best.cost) {
        best.cost = sad + pen;
        best.sad = sad;
        best.mv = mv;
      }
    }
  }
}

}  // namespace

MotionResult search_motion(const video::Plane& cur, const video::Plane& ref,
                           int mb_x, int mb_y, const MotionSearchConfig& config,
                           const MePenaltyFn& penalty,
                           energy::OpCounters& ops) {
  PB_CHECK(cur.same_size(ref));
  PB_CHECK(config.range >= 0 && config.range <= 31);
  const int px = mb_x * kMbSize;
  const int py = mb_y * kMbSize;
  PB_CHECK(px + kMbSize <= cur.width() && py + kMbSize <= cur.height());

  SearchContext ctx{
      cur,
      ref,
      px,
      py,
      common::clamp(-config.range, -px, 0),
      common::clamp(config.range, 0, ref.width() - kMbSize - px),
      common::clamp(-config.range, -py, 0),
      common::clamp(config.range, 0, ref.height() - kMbSize - py),
      &penalty,
      &ops,
  };

  ops.me_invocations += 1;

  // Seed with the exact zero-vector candidate: both strategies start here,
  // and its SAD doubles as the co-located similarity input (motion.h).
  MotionResult best;
  best.sad_zero = sad_16x16(cur, px, py, ref, px, py, ops);
  best.mv = MotionVector{0, 0};
  best.sad = best.sad_zero;
  best.cost = best.sad_zero - config.zero_mv_bias;
  if (best.cost < 0) best.cost = 0;
  if (penalty) best.cost += penalty(mb_x, mb_y, MotionVector{0, 0});
  best.candidates = 1;

  switch (config.strategy) {
    case SearchStrategy::kFullSearch:
      full_search(ctx, mb_x, mb_y, best);
      break;
    case SearchStrategy::kDiamondSearch:
      diamond_search(ctx, mb_x, mb_y, best);
      break;
  }
  if (config.half_pel) {
    halfpel_refine(ctx, mb_x, mb_y, best);
  }
  return best;
}

}  // namespace pbpair::codec
