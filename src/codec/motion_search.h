// Block motion search with a pluggable candidate cost.
//
// The cost of candidate v is SAD(v) + penalty(v), where the penalty hook is
// how PBPAIR injects its probability-of-correctness term (§3.1.2 / Fig. 3):
// a candidate pointing into likely-damaged reference area gets penalized
// even if its SAD is the lowest. Baseline schemes use a zero penalty.
//
// The search runs in two stages, like the TMN reference encoder:
//  1. full-pel stage, either:
//     - kFullSearch: exhaustive over the +/-range pixel window (the
//       reference H.263 encoder's default; expensive, energy-hungry), or
//     - kDiamondSearch: large/small diamond descent (embedded-realistic);
//  2. optional half-pel refinement (config.half_pel): the 8 interpolated
//     neighbors of the full-pel winner.
// Vectors are in half-pel units (codec/motion.h). Full-pel candidates are
// restricted so the reference block stays inside the frame; half-pel
// interpolation edge-clamps (codec/mc.h).
#pragma once

#include <cstdint>
#include <functional>

#include "codec/motion.h"
#include "codec/sad.h"
#include "energy/op_counters.h"
#include "video/frame.h"

namespace pbpair::codec {

enum class SearchStrategy {
  kFullSearch,
  kDiamondSearch,
};

struct MotionSearchConfig {
  SearchStrategy strategy = SearchStrategy::kDiamondSearch;
  int range = 15;        // max |mv| component in PIXELS
  bool half_pel = true;  // H.263 half-pel refinement stage
  /// Cost advantage of the (0,0) candidate (TMN's value is 100): without
  /// it, half-pel interpolation's noise-smoothing makes tiny nonzero
  /// vectors beat the zero vector on static content, destroying skip mode.
  std::int64_t zero_mv_bias = 100;
};

/// Extra cost (same scale as SAD) for predicting from `mv`'s reference
/// region; receives the MB coordinates (in MB units) and the candidate in
/// half-pel units.
using MePenaltyFn =
    std::function<std::int64_t(int mb_x, int mb_y, MotionVector mv)>;

/// Searches for the best-cost vector for the MB at (mb_x, mb_y) (MB units)
/// of `cur` against reference `ref`. `penalty` may be null (zero penalty).
/// Meters SAD work and the search invocation into `ops`.
MotionResult search_motion(const video::Plane& cur, const video::Plane& ref,
                           int mb_x, int mb_y, const MotionSearchConfig& config,
                           const MePenaltyFn& penalty,
                           energy::OpCounters& ops);

}  // namespace pbpair::codec
