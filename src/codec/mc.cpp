#include "codec/mc.h"

#include "codec/kernels/kernels.h"
#include "common/math_util.h"

namespace pbpair::codec {
namespace {

/// One interpolated sample at half-pel position (x2, y2), edge-clamped.
/// Reference implementation; the hot paths below go through the kernel
/// table and only fall back to per-sample clamping near plane edges.
inline int sample_halfpel(const video::Plane& ref, int x2, int y2) {
  const int x = x2 >> 1;
  const int y = y2 >> 1;
  const bool hx = (x2 & 1) != 0;
  const bool hy = (y2 & 1) != 0;
  if (!hx && !hy) return ref.at_clamped(x, y);
  if (hx && !hy) {
    return (ref.at_clamped(x, y) + ref.at_clamped(x + 1, y) + 1) >> 1;
  }
  if (!hx) {
    return (ref.at_clamped(x, y) + ref.at_clamped(x, y + 1) + 1) >> 1;
  }
  return (ref.at_clamped(x, y) + ref.at_clamped(x + 1, y) +
          ref.at_clamped(x, y + 1) + ref.at_clamped(x + 1, y + 1) + 2) >>
         2;
}

/// Fast path: fully aligned full-pel copy with in-bounds rows.
bool full_pel_in_bounds(const video::Plane& ref, int x2, int y2, int w,
                        int h) {
  if ((x2 & 1) != 0 || (y2 & 1) != 0) return false;
  int x = x2 >> 1;
  int y = y2 >> 1;
  return x >= 0 && y >= 0 && x + w <= ref.width() && y + h <= ref.height();
}

// A half-pel interpolation at floor position (x, y) with phase (hx, hy)
// reads the (w + hx) x (h + hy) pixel footprint starting at (x, y); the
// vector kernels additionally load one full extra column/row regardless of
// phase, so they are only pointed at the plane when the (w + 1) x (h + 1)
// envelope is inside it.
bool hpel_kernel_in_bounds(const video::Plane& ref, int x, int y, int w,
                           int h) {
  return x >= 0 && y >= 0 && x + w + 1 <= ref.width() &&
         y + h + 1 <= ref.height();
}

// Edge-clamped gather used when the interpolation footprint leaves the
// plane: materializes the (w + 1) x (h + 1) envelope with replicated border
// pixels so the same vector kernel still runs — bit-identical to clamping
// inside the sample loop, since clamping each source pixel before the
// bilinear average equals clamping inside it.
struct ClampedPatch {
  static constexpr int kStride = 24;  // >= 16 + 1 envelope, padded
  std::uint8_t pixels[(16 + 1) * kStride];

  ClampedPatch(const video::Plane& ref, int x, int y, int w, int h) {
    for (int row = 0; row <= h; ++row) {
      std::uint8_t* dst = pixels + static_cast<std::ptrdiff_t>(row) * kStride;
      for (int col = 0; col <= w; ++col) {
        dst[col] =
            static_cast<std::uint8_t>(ref.at_clamped(x + col, y + row));
      }
    }
  }
};

}  // namespace

void predict_block(const video::Plane& ref, int x2, int y2, int w, int h,
                   std::uint8_t* pred, energy::OpCounters& ops) {
  const kernels::KernelTable& kt = kernels::active();
  if (full_pel_in_bounds(ref, x2, y2, w, h)) {
    const int x = x2 >> 1;
    const int y = y2 >> 1;
    if (w == 8 || w == 16) {
      kt.mc_predict(ref.row(y) + x, ref.width(), pred, w, h, /*hx=*/0,
                    /*hy=*/0);
    } else {
      for (int row = 0; row < h; ++row) {
        const std::uint8_t* src = ref.row(y + row) + x;
        std::uint8_t* dst = pred + static_cast<std::ptrdiff_t>(row) * w;
        for (int col = 0; col < w; ++col) dst[col] = src[col];
      }
    }
    ops.mc_pixels += static_cast<std::uint64_t>(w) * h;
    return;
  }
  // Everything else — genuine half-pel phases AND out-of-bounds full-pel
  // positions — is metered as interpolated prediction, exactly like the
  // original per-sample loop that handled both.
  const int x = x2 >> 1;
  const int y = y2 >> 1;
  const int hx = x2 & 1;
  const int hy = y2 & 1;
  if (w == 8 || w == 16) {
    if (hpel_kernel_in_bounds(ref, x, y, w, h)) {
      kt.mc_predict(ref.row(y) + x, ref.width(), pred, w, h, hx, hy);
    } else {
      ClampedPatch patch(ref, x, y, w, h);
      kt.mc_predict(patch.pixels, ClampedPatch::kStride, pred, w, h, hx, hy);
    }
  } else {
    for (int row = 0; row < h; ++row) {
      std::uint8_t* dst = pred + static_cast<std::ptrdiff_t>(row) * w;
      for (int col = 0; col < w; ++col) {
        dst[col] = static_cast<std::uint8_t>(
            sample_halfpel(ref, x2 + 2 * col, y2 + 2 * row));
      }
    }
  }
  ops.mc_halfpel_pixels += static_cast<std::uint64_t>(w) * h;
}

MotionVector chroma_mv(MotionVector luma) {
  auto derive = [](int v) {
    int sign = v < 0 ? -1 : 1;
    int magnitude = common::iabs(v);
    // Full chroma pixels when the luma vector is a multiple of 4 half-pels
    // (one full chroma pixel); otherwise round to the half-pel position.
    int half = magnitude % 4 == 0 ? magnitude / 2 : (magnitude / 4) * 2 + 1;
    return sign * half;
  };
  return MotionVector{derive(luma.x), derive(luma.y)};
}

std::int64_t sad_16x16_halfpel(const video::Plane& cur, int cx, int cy,
                               const video::Plane& ref, int rx2, int ry2,
                               std::int64_t cutoff, energy::OpCounters& ops) {
  const kernels::KernelTable& kt = kernels::active();
  const int x = rx2 >> 1;
  const int y = ry2 >> 1;
  const int hx = rx2 & 1;
  const int hy = ry2 & 1;
  const std::uint8_t* cur_base = cur.row(cy) + cx;
  int rows = 0;
  std::int64_t sad;
  if (hpel_kernel_in_bounds(ref, x, y, 16, 16)) {
    sad = kt.sad_16x16_hpel_cutoff(cur_base, cur.width(), ref.row(y) + x,
                                   ref.width(), hx, hy, cutoff, &rows);
  } else {
    ClampedPatch patch(ref, x, y, 16, 16);
    sad = kt.sad_16x16_hpel_cutoff(cur_base, cur.width(), patch.pixels,
                                   ClampedPatch::kStride, hx, hy, cutoff,
                                   &rows);
  }
  // The scalar loop metered 16 ops per row *including* the row whose
  // running SAD tripped the cutoff; rows_processed counts exactly those.
  ops.sad_halfpel_ops += static_cast<std::uint64_t>(rows) * 16;
  return sad;
}

}  // namespace pbpair::codec
