#include "codec/mc.h"

#include "common/math_util.h"

namespace pbpair::codec {
namespace {

/// One interpolated sample at half-pel position (x2, y2), edge-clamped.
inline int sample_halfpel(const video::Plane& ref, int x2, int y2) {
  const int x = x2 >> 1;
  const int y = y2 >> 1;
  const bool hx = (x2 & 1) != 0;
  const bool hy = (y2 & 1) != 0;
  if (!hx && !hy) return ref.at_clamped(x, y);
  if (hx && !hy) {
    return (ref.at_clamped(x, y) + ref.at_clamped(x + 1, y) + 1) >> 1;
  }
  if (!hx) {
    return (ref.at_clamped(x, y) + ref.at_clamped(x, y + 1) + 1) >> 1;
  }
  return (ref.at_clamped(x, y) + ref.at_clamped(x + 1, y) +
          ref.at_clamped(x, y + 1) + ref.at_clamped(x + 1, y + 1) + 2) >>
         2;
}

/// Fast path: fully aligned full-pel copy with in-bounds rows.
bool full_pel_in_bounds(const video::Plane& ref, int x2, int y2, int w,
                        int h) {
  if ((x2 & 1) != 0 || (y2 & 1) != 0) return false;
  int x = x2 >> 1;
  int y = y2 >> 1;
  return x >= 0 && y >= 0 && x + w <= ref.width() && y + h <= ref.height();
}

}  // namespace

void predict_block(const video::Plane& ref, int x2, int y2, int w, int h,
                   std::uint8_t* pred, energy::OpCounters& ops) {
  if (full_pel_in_bounds(ref, x2, y2, w, h)) {
    const int x = x2 >> 1;
    const int y = y2 >> 1;
    for (int row = 0; row < h; ++row) {
      const std::uint8_t* src = ref.row(y + row) + x;
      std::uint8_t* dst = pred + static_cast<std::ptrdiff_t>(row) * w;
      for (int col = 0; col < w; ++col) dst[col] = src[col];
    }
    ops.mc_pixels += static_cast<std::uint64_t>(w) * h;
    return;
  }
  for (int row = 0; row < h; ++row) {
    std::uint8_t* dst = pred + static_cast<std::ptrdiff_t>(row) * w;
    for (int col = 0; col < w; ++col) {
      dst[col] = static_cast<std::uint8_t>(
          sample_halfpel(ref, x2 + 2 * col, y2 + 2 * row));
    }
  }
  ops.mc_halfpel_pixels += static_cast<std::uint64_t>(w) * h;
}

MotionVector chroma_mv(MotionVector luma) {
  auto derive = [](int v) {
    int sign = v < 0 ? -1 : 1;
    int magnitude = common::iabs(v);
    // Full chroma pixels when the luma vector is a multiple of 4 half-pels
    // (one full chroma pixel); otherwise round to the half-pel position.
    int half = magnitude % 4 == 0 ? magnitude / 2 : (magnitude / 4) * 2 + 1;
    return sign * half;
  };
  return MotionVector{derive(luma.x), derive(luma.y)};
}

std::int64_t sad_16x16_halfpel(const video::Plane& cur, int cx, int cy,
                               const video::Plane& ref, int rx2, int ry2,
                               std::int64_t cutoff, energy::OpCounters& ops) {
  std::int64_t sad = 0;
  for (int row = 0; row < 16; ++row) {
    const std::uint8_t* crow = cur.row(cy + row) + cx;
    for (int col = 0; col < 16; ++col) {
      sad += common::iabs(static_cast<int>(crow[col]) -
                          sample_halfpel(ref, rx2 + 2 * col, ry2 + 2 * row));
    }
    ops.sad_halfpel_ops += 16;
    if (sad >= cutoff) return sad;
  }
  return sad;
}

}  // namespace pbpair::codec
