// Simple reactive rate control (TMN-flavored).
//
// The paper notes PBPAIR is "independent from any other encoder and/or
// decoder side control mechanisms (i.e. rate control, channel coding,
// etc.)" (§5) — this controller demonstrates that: it adjusts QP from the
// running bit budget and composes with any refresh policy. One QP step per
// frame, proportional to the buffer error, with an I-frame allowance so a
// GOP refresh does not whipsaw the quantizer.
#pragma once

#include <cstdint>

#include "codec/quant.h"
#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::codec {

struct RateControlConfig {
  double target_kbps = 64.0;   // channel rate the stream must fit
  double frame_rate = 25.0;    // frames per second
  int initial_qp = 10;
  int min_qp = kMinQp;
  int max_qp = kMaxQp;
  /// Fraction of the per-frame budget an I-frame may exceed before the
  /// controller reacts (I-frames are legitimately several times larger).
  double intra_allowance = 3.0;
};

class RateController {
 public:
  explicit RateController(const RateControlConfig& config)
      : config_(config), qp_(config.initial_qp) {
    PB_CHECK(config.target_kbps > 0 && config.frame_rate > 0);
    PB_CHECK(config.min_qp >= kMinQp && config.max_qp <= kMaxQp &&
             config.min_qp <= config.max_qp);
    PB_CHECK(config.initial_qp >= config.min_qp &&
             config.initial_qp <= config.max_qp);
  }

  int qp() const { return qp_; }

  /// Per-frame bit budget implied by the target rate.
  double frame_budget_bytes() const {
    return config_.target_kbps * 1000.0 / 8.0 / config_.frame_rate;
  }

  /// Smoothed fullness of the virtual buffer, in frame budgets
  /// (positive = over target).
  double buffer_fullness() const { return buffer_; }

  /// Feed the size of the frame just encoded; adjusts QP for the next one.
  void on_frame_encoded(std::size_t bytes, bool intra_frame) {
    const double budget = frame_budget_bytes();
    double used = static_cast<double>(bytes);
    if (intra_frame) {
      // Spread the I-frame's legitimate excess over the allowance window.
      used = used / config_.intra_allowance;
    }
    buffer_ += (used - budget) / budget;
    // Leaky buffer: the channel drains one budget per frame regardless.
    buffer_ = common::clamp(buffer_, -8.0, 8.0);

    if (buffer_ > 0.5) {
      qp_ = common::clamp(qp_ + (buffer_ > 2.0 ? 2 : 1), config_.min_qp,
                          config_.max_qp);
    } else if (buffer_ < -0.5) {
      qp_ = common::clamp(qp_ - (buffer_ < -2.0 ? 2 : 1), config_.min_qp,
                          config_.max_qp);
    }
  }

  void reset() {
    qp_ = config_.initial_qp;
    buffer_ = 0.0;
  }

 private:
  RateControlConfig config_;
  int qp_;
  double buffer_ = 0.0;
};

}  // namespace pbpair::codec
