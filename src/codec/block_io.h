// 8x8 block <-> plane copy helpers shared by encoder and decoder.
#pragma once

#include <cstdint>

#include "common/math_util.h"
#include "video/frame.h"

namespace pbpair::codec {

/// Copies the 8x8 block at (x, y) from `plane` into `block` (row-major).
inline void extract_block(const video::Plane& plane, int x, int y,
                          std::int16_t* block) {
  for (int row = 0; row < 8; ++row) {
    const std::uint8_t* src = plane.row(y + row) + x;
    for (int col = 0; col < 8; ++col) {
      block[row * 8 + col] = static_cast<std::int16_t>(src[col]);
    }
  }
}

/// Writes an 8x8 block of sample values (clamped to [0,255]) at (x, y).
inline void store_block(video::Plane& plane, int x, int y,
                        const std::int16_t* block) {
  for (int row = 0; row < 8; ++row) {
    std::uint8_t* dst = plane.row(y + row) + x;
    for (int col = 0; col < 8; ++col) {
      dst[col] = common::clamp_pixel(block[row * 8 + col]);
    }
  }
}

/// Computes `cur - pred` for an 8x8 block: residual[i] in [-255, 255].
inline void subtract_block(const video::Plane& cur, int cx, int cy,
                           const video::Plane& pred, int px, int py,
                           std::int16_t* residual) {
  for (int row = 0; row < 8; ++row) {
    const std::uint8_t* c = cur.row(cy + row) + cx;
    const std::uint8_t* p = pred.row(py + row) + px;
    for (int col = 0; col < 8; ++col) {
      residual[row * 8 + col] =
          static_cast<std::int16_t>(static_cast<int>(c[col]) - p[col]);
    }
  }
}

/// Writes `pred + residual` (clamped) into `dst` at (x, y); `pred` is read
/// at (px, py).
inline void add_block(video::Plane& dst, int x, int y,
                      const video::Plane& pred, int px, int py,
                      const std::int16_t* residual) {
  for (int row = 0; row < 8; ++row) {
    std::uint8_t* d = dst.row(y + row) + x;
    const std::uint8_t* p = pred.row(py + row) + px;
    for (int col = 0; col < 8; ++col) {
      d[col] = common::clamp_pixel(static_cast<int>(p[col]) +
                                   residual[row * 8 + col]);
    }
  }
}

/// Copies a wxh region between same-size planes.
inline void copy_region(const video::Plane& src, int sx, int sy,
                        video::Plane& dst, int dx, int dy, int w, int h) {
  for (int row = 0; row < h; ++row) {
    const std::uint8_t* s = src.row(sy + row) + sx;
    std::uint8_t* d = dst.row(dy + row) + dx;
    for (int col = 0; col < w; ++col) d[col] = s[col];
  }
}

/// Chroma motion vector derived from a luma vector (half resolution,
/// truncated toward zero — must match between encoder and decoder).
inline int chroma_mv_component(int luma) { return luma / 2; }

}  // namespace pbpair::codec
