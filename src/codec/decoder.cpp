#include "codec/decoder.h"

#include "codec/block_coder.h"
#include "codec/block_io.h"
#include "codec/dct.h"
#include "codec/deblock.h"
#include "codec/golomb.h"
#include "codec/kernels/kernels.h"
#include "codec/mc.h"
#include "codec/quant.h"
#include "codec/vlc_tables.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::codec {

Decoder::Decoder(const DecoderConfig& config)
    : config_(config),
      recon_(config.width, config.height),
      ref_(config.width, config.height),
      prev_mv_field_(static_cast<std::size_t>(config.width / 16) *
                     (config.height / 16)),
      mv_field_(prev_mv_field_.size()) {
  ref_.fill_gray();
  recon_.fill_gray();
}

void Decoder::reset() {
  ref_.fill_gray();
  recon_.fill_gray();
  std::fill(prev_mv_field_.begin(), prev_mv_field_.end(), MotionVector{});
  std::fill(mv_field_.begin(), mv_field_.end(), MotionVector{});
  ops_.reset();
  concealed_mbs_ = 0;
}

void Decoder::conceal_mb(int mb_x, int mb_y) {
  const std::size_t idx =
      static_cast<std::size_t>(mb_y) * (config_.width / 16) + mb_x;
  switch (config_.concealment) {
    case ConcealmentMode::kFreezeGray: {
      for (int y = 0; y < 16; ++y) {
        std::uint8_t* row = recon_.y().row(mb_y * 16 + y) + mb_x * 16;
        for (int x = 0; x < 16; ++x) row[x] = 128;
      }
      for (int y = 0; y < 8; ++y) {
        std::uint8_t* u = recon_.u().row(mb_y * 8 + y) + mb_x * 8;
        std::uint8_t* v = recon_.v().row(mb_y * 8 + y) + mb_x * 8;
        for (int x = 0; x < 8; ++x) u[x] = v[x] = 128;
      }
      break;
    }
    case ConcealmentMode::kMotionCompensated: {
      // Temporal motion reuse: predict with the vector the co-located MB
      // used last frame — on coherent motion (pans) this tracks the scene
      // instead of smearing it.
      MotionVector mv = prev_mv_field_[idx];
      std::uint8_t pred_y[16 * 16], pred_u[8 * 8], pred_v[8 * 8];
      predict_block(ref_.y(), mb_x * 32 + mv.x, mb_y * 32 + mv.y, 16, 16,
                    pred_y, ops_);
      MotionVector cmv = chroma_mv(mv);
      predict_block(ref_.u(), mb_x * 16 + cmv.x, mb_y * 16 + cmv.y, 8, 8,
                    pred_u, ops_);
      predict_block(ref_.v(), mb_x * 16 + cmv.x, mb_y * 16 + cmv.y, 8, 8,
                    pred_v, ops_);
      for (int y = 0; y < 16; ++y) {
        std::uint8_t* row = recon_.y().row(mb_y * 16 + y) + mb_x * 16;
        for (int x = 0; x < 16; ++x) row[x] = pred_y[y * 16 + x];
      }
      for (int y = 0; y < 8; ++y) {
        std::uint8_t* u = recon_.u().row(mb_y * 8 + y) + mb_x * 8;
        std::uint8_t* v = recon_.v().row(mb_y * 8 + y) + mb_x * 8;
        for (int x = 0; x < 8; ++x) {
          u[x] = pred_u[y * 8 + x];
          v[x] = pred_v[y * 8 + x];
        }
      }
      mv_field_[idx] = mv;  // keep tracking through repeated losses
      break;
    }
    case ConcealmentMode::kCopyPrevious:
      copy_region(ref_.y(), mb_x * 16, mb_y * 16, recon_.y(), mb_x * 16,
                  mb_y * 16, 16, 16);
      copy_region(ref_.u(), mb_x * 8, mb_y * 8, recon_.u(), mb_x * 8,
                  mb_y * 8, 8, 8);
      copy_region(ref_.v(), mb_x * 8, mb_y * 8, recon_.v(), mb_x * 8,
                  mb_y * 8, 8, 8);
      break;
  }
  ++concealed_mbs_;
  if (obs::enabled()) {
    static obs::Counter* c = &obs::counter("decoder.concealed_mbs");
    c->add(1);
  }
}

void Decoder::conceal_row(int mb_y) {
  for (int mx = 0; mx < config_.width / 16; ++mx) conceal_mb(mx, mb_y);
}

bool Decoder::decode_mb(BitReader& reader, FrameType type, int qp, int mb_x,
                        int mb_y, MotionVector* mv_predictor) {
  bool intra_mb = type == FrameType::kIntra;
  MotionVector mv{};
  int cbp = 0x3F;

  if (type == FrameType::kInter) {
    bool cod = false;
    if (!reader.get_bit(&cod)) return false;
    if (cod) {
      // Skipped MB: copy co-located from reference.
      copy_region(ref_.y(), mb_x * 16, mb_y * 16, recon_.y(), mb_x * 16,
                  mb_y * 16, 16, 16);
      copy_region(ref_.u(), mb_x * 8, mb_y * 8, recon_.u(), mb_x * 8,
                  mb_y * 8, 8, 8);
      copy_region(ref_.v(), mb_x * 8, mb_y * 8, recon_.v(), mb_x * 8,
                  mb_y * 8, 8, 8);
      ops_.mc_pixels += 256 + 2 * 64;
      *mv_predictor = MotionVector{};
      mv_field_[static_cast<std::size_t>(mb_y) * (config_.width / 16) + mb_x] =
          MotionVector{};
      return true;
    }
    bool mode_intra = false;
    if (!reader.get_bit(&mode_intra)) return false;
    intra_mb = mode_intra;
    if (!intra_mb) {
      std::int32_t dx = 0, dy = 0;
      if (!get_se(reader, &dx) || !get_se(reader, &dy)) return false;
      mv = MotionVector{mv_predictor->x + dx, mv_predictor->y + dy};
      // Validate: the floor reference block must lie inside the frame
      // (half-pel interpolation only clamps on its +1 edge reads).
      int fx = mb_x * 16 + halfpel_floor(mv.x);
      int fy = mb_y * 16 + halfpel_floor(mv.y);
      if (fx < 0 || fx + 16 > config_.width || fy < 0 ||
          fy + 16 > config_.height) {
        return false;
      }
      *mv_predictor = mv;
      if (!cbp_vlc().decode(reader, &cbp)) return false;
    } else {
      *mv_predictor = MotionVector{};
    }
  }
  mv_field_[static_cast<std::size_t>(mb_y) * (config_.width / 16) + mb_x] =
      intra_mb ? MotionVector{} : mv;

  std::int16_t levels[64];
  std::int16_t spatial[64];
  const int lx = mb_x * 16;
  const int ly = mb_y * 16;

  if (intra_mb) {
    for (int b = 0; b < 6; ++b) {
      video::Plane& dst =
          b < 4 ? recon_.y() : (b == 4 ? recon_.u() : recon_.v());
      int bx = b < 4 ? lx + (b % 2) * 8 : mb_x * 8;
      int by = b < 4 ? ly + (b / 2) * 8 : mb_y * 8;
      if (!decode_block(reader, levels, /*intra=*/true)) return false;
      dequantize_block(levels, qp, /*intra=*/true, ops_);
      inverse_dct_8x8(levels, spatial);
      ops_.idct_blocks += 1;
      store_block(dst, bx, by, spatial);
    }
    return true;
  }

  // Inter MB: form predictions exactly like the encoder (codec/mc.h).
  std::uint8_t pred_y[16 * 16];
  std::uint8_t pred_u[8 * 8];
  std::uint8_t pred_v[8 * 8];
  predict_block(ref_.y(), lx * 2 + mv.x, ly * 2 + mv.y, 16, 16, pred_y, ops_);
  const MotionVector cmv = chroma_mv(mv);
  predict_block(ref_.u(), mb_x * 8 * 2 + cmv.x, mb_y * 8 * 2 + cmv.y, 8, 8,
                pred_u, ops_);
  predict_block(ref_.v(), mb_x * 8 * 2 + cmv.x, mb_y * 8 * 2 + cmv.y, 8, 8,
                pred_v, ops_);

  for (int b = 0; b < 6; ++b) {
    video::Plane& dst = b < 4 ? recon_.y() : (b == 4 ? recon_.u() : recon_.v());
    const std::uint8_t* pred = b < 4 ? pred_y : (b == 4 ? pred_u : pred_v);
    int stride = b < 4 ? 16 : 8;
    int ox = b < 4 ? (b % 2) * 8 : 0;
    int oy = b < 4 ? (b / 2) * 8 : 0;
    int bx = b < 4 ? lx + (b % 2) * 8 : mb_x * 8;
    int by = b < 4 ? ly + (b / 2) * 8 : mb_y * 8;
    if ((cbp >> b) & 1) {
      if (!decode_block(reader, levels, /*intra=*/false)) return false;
      dequantize_block(levels, qp, /*intra=*/false, ops_);
      inverse_dct_8x8(levels, spatial);
      ops_.idct_blocks += 1;
      kernels::active().add_pred_8x8(dst.row(by) + bx, dst.width(),
                                     pred + oy * stride + ox, stride,
                                     spatial);
    } else {
      for (int row = 0; row < 8; ++row) {
        std::uint8_t* d = dst.row(by + row) + bx;
        const std::uint8_t* p = pred + (oy + row) * stride + ox;
        for (int col = 0; col < 8; ++col) d[col] = p[col];
      }
    }
  }
  return true;
}

void Decoder::decode_span(const ReceivedFrame::GobSpan& span, FrameType type,
                          int qp, std::vector<std::uint8_t>* row_done) {
  const int mb_cols = config_.width / 16;
  const int mb_rows = config_.height / 16;
  BitReader reader(span.bytes.data(), span.bytes.size());
  int gob = span.first_gob;
  while (gob < mb_rows && !reader.exhausted()) {
    std::uint32_t header = 0;
    if (!reader.get_bits(8, &header)) return;
    if (static_cast<int>(header) != gob) {
      // Sync mismatch: the span is corrupt from here on; stop parsing it.
      if (obs::enabled()) {
        static obs::Counter* c = &obs::counter("decoder.corrupt_gobs");
        c->add(1);
      }
      return;
    }
    MotionVector mv_predictor{};  // differential-MV state resets per GOB
    for (int mx = 0; mx < mb_cols; ++mx) {
      if (!decode_mb(reader, type, qp, mx, gob, &mv_predictor)) {
        // Parse failure mid-GOB: conceal the rest of this row and give up
        // on the span (we lost entropy-coder sync).
        if (obs::enabled()) {
          static obs::Counter* c = &obs::counter("decoder.truncated_gobs");
          c->add(1);
        }
        for (int cx = mx; cx < mb_cols; ++cx) conceal_mb(cx, gob);
        (*row_done)[gob] = 1;
        return;
      }
    }
    (*row_done)[gob] = 1;
    reader.align();
    ++gob;
  }
}

const video::YuvFrame& Decoder::decode_frame(const ReceivedFrame& received) {
  const int mb_rows = config_.height / 16;
  std::vector<std::uint8_t> row_done(mb_rows, 0);
  // A corrupt packet header can claim any qp byte; clamp into the codec's
  // legal range so dequantization and deblocking stay well-defined.
  const int qp = common::clamp(received.qp, kMinQp, kMaxQp);

  obs::ScopedSpan span_("decoder.decode_frame", received.frame_index, "frame");
  if (obs::enabled()) {
    static obs::Counter* c_frames = &obs::counter("decoder.frames");
    static obs::Counter* c_lost = &obs::counter("decoder.lost_frames");
    c_frames->add(1);
    if (!received.any_data) c_lost->add(1);
  }

  if (received.any_data) {
    for (const ReceivedFrame::GobSpan& span : received.spans) {
      if (span.first_gob < 0 || span.first_gob >= mb_rows) continue;
      decode_span(span, received.type, qp, &row_done);
    }
  }
  for (int row = 0; row < mb_rows; ++row) {
    if (!row_done[row]) conceal_row(row);
  }
  if (config_.deblocking) deblock_frame(recon_, qp);
  ops_.frames += 1;
  ref_ = recon_;
  prev_mv_field_ = mv_field_;
  return recon_;
}

const video::YuvFrame& Decoder::decode_frame(const EncodedFrame& encoded) {
  ReceivedFrame received;
  received.frame_index = encoded.frame_index;
  received.type = encoded.type;
  received.qp = encoded.qp;
  received.any_data = true;
  ReceivedFrame::GobSpan span;
  span.first_gob = 0;
  PB_CHECK(!encoded.gob_offsets.empty() && encoded.gob_offsets[0] > 0);
  span.bytes.assign(
      encoded.bytes.data() + encoded.gob_offsets[0],
      encoded.bytes.data() + encoded.bytes.size());
  received.spans.push_back(std::move(span));
  return decode_frame(received);
}

}  // namespace pbpair::codec
