// Bit-level writer/reader for the H.263-style bitstream.
//
// The writer emits MSB-first into a byte buffer; the reader consumes the
// same layout. Byte alignment is explicit (`align()`) because GOB resync
// points must fall on byte boundaries so the packetizer can fragment an
// encoded frame without re-writing any bits (see codec/encoder.h and
// net/packetizer.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pbpair::codec {

class BitWriter {
 public:
  BitWriter() = default;

  /// Writes the low `count` bits of `value`, MSB first. count in [0, 32].
  void put_bits(std::uint32_t value, int count);

  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  /// Pads with zero bits to the next byte boundary (no-op if aligned).
  void align();

  bool byte_aligned() const { return bit_count_ % 8 == 0; }

  /// Total bits written so far.
  std::uint64_t bit_count() const { return bit_count_; }

  /// Finishes the stream (aligns) and returns the bytes.
  std::vector<std::uint8_t> finish();

  /// Byte offset of the current (aligned) position. Requires alignment.
  std::size_t byte_offset() const {
    PB_CHECK(byte_aligned());
    return bytes_.size();
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t acc_ = 0;   // bits accumulated, left-aligned count in acc_bits_
  int acc_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}

  /// Reads `count` bits MSB-first. Returns false on underrun (stream
  /// truncated — the caller treats the rest of the GOB as lost).
  bool get_bits(int count, std::uint32_t* out);

  bool get_bit(bool* out) {
    std::uint32_t v = 0;
    if (!get_bits(1, &v)) return false;
    *out = v != 0;
    return true;
  }

  /// Skips to the next byte boundary.
  void align() { bit_pos_ = (bit_pos_ + 7) & ~std::uint64_t{7}; }

  std::uint64_t bit_pos() const { return bit_pos_; }
  std::uint64_t bits_remaining() const {
    std::uint64_t total = static_cast<std::uint64_t>(size_) * 8;
    return bit_pos_ >= total ? 0 : total - bit_pos_;
  }
  bool exhausted() const { return bits_remaining() == 0; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::uint64_t bit_pos_ = 0;
};

}  // namespace pbpair::codec
