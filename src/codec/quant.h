// H.263-style scalar quantization (clause 6.2 of the recommendation).
//
// Intra DC uses a fixed step of 8 (coded 1..254). All other coefficients
// use step 2*QP with a dead zone for inter blocks. Reconstruction follows
// the H.263 "oddification" rule, which avoids zero-centered drift:
//   |REC| = QP * (2*|LEVEL| + 1)          (QP odd)
//   |REC| = QP * (2*|LEVEL| + 1) - 1      (QP even)
#pragma once

#include <cstdint>

#include "energy/op_counters.h"

namespace pbpair::codec {

inline constexpr int kMinQp = 1;
inline constexpr int kMaxQp = 31;
inline constexpr int kMaxLevel = 127;

/// Quantizes the intra DC coefficient (step 8, level clamped to [1, 254]).
int quantize_intra_dc(int coeff);

/// Reconstructs the intra DC coefficient from its level.
int dequantize_intra_dc(int level);

/// Quantizes one AC (or inter DC) coefficient.
/// `intra` selects the no-dead-zone intra rule.
int quantize_coeff(int coeff, int qp, bool intra);

/// Reconstructs one AC (or inter DC) coefficient.
int dequantize_coeff(int level, int qp);

/// Quantizes a full 64-coefficient block in place (raster order).
/// block[0] is treated as intra DC when `intra` is true. Returns the number
/// of nonzero levels, and meters quant_coeffs into `ops`.
int quantize_block(std::int16_t* block, int qp, bool intra,
                   energy::OpCounters& ops);

/// Dequantizes a full block in place; meters dequant_coeffs.
void dequantize_block(std::int16_t* block, int qp, bool intra,
                      energy::OpCounters& ops);

}  // namespace pbpair::codec
