// Intra-refresh policy interface: the extension point where error-resilient
// coding schemes plug into the encoder.
//
// The hooks map directly onto where the schemes under study act (paper §3):
//  - want_intra_frame      : GOP inserts periodic I-frames here.
//  - force_intra_pre_me    : PBPAIR's early decision (σ < Intra_Th) and
//                            PGOP's refresh columns — the encoder SKIPS
//                            motion estimation for these MBs, which is the
//                            energy lever the paper exploits.
//  - me_penalty            : PBPAIR's probability-of-correctness term in
//                            the motion-vector cost (§3.1.2).
//  - select_post_me        : decisions that need ME results — AIR's top-N
//                            SAD selection and PGOP's stride-back MBs.
//  - on_frame_encoded      : post-frame state updates — PBPAIR recomputes
//                            the correctness matrix C^k here (§3.1.3).
#pragma once

#include <cstdint>
#include <vector>

#include "codec/motion.h"
#include "codec/syntax.h"
#include "energy/op_counters.h"
#include "video/frame.h"

namespace pbpair::codec {

/// Motion-estimation outcome for one MB, input to select_post_me.
struct MbMeInfo {
  bool searched = false;      // false: pre-ME intra (no ME ran) or skipped
  MotionVector mv{};
  std::int64_t sad = -1;
  std::int64_t sad_zero = -1;  // exact SAD of the co-located candidate
};

/// Everything a policy may want to observe after a frame is encoded.
struct FrameEncodeInfo {
  int frame_index = 0;
  FrameType type = FrameType::kIntra;
  int mb_cols = 0;
  int mb_rows = 0;
  const std::vector<MbEncodeRecord>* mb_records = nullptr;
  const video::YuvFrame* original = nullptr;       // current source frame
  const video::YuvFrame* prev_original = nullptr;  // nullptr for frame 0
  energy::OpCounters* ops = nullptr;  // meter policy-side work here
};

class RefreshPolicy {
 public:
  virtual ~RefreshPolicy() = default;

  virtual const char* name() const = 0;

  /// Should frame `frame_index` be coded as an I-frame? The default codes
  /// only frame 0 intra (the paper starts from an error-free frame).
  virtual bool want_intra_frame(int frame_index) { return frame_index == 0; }

  /// Pre-ME early decision: returning true forces intra coding for this MB
  /// and skips motion estimation entirely.
  virtual bool force_intra_pre_me(int frame_index, int mb_x, int mb_y) {
    (void)frame_index;
    (void)mb_x;
    (void)mb_y;
    return false;
  }

  /// Extra motion-candidate cost (same scale as SAD); 0 = pure-SAD search.
  virtual std::int64_t me_penalty(int mb_x, int mb_y, MotionVector mv) const {
    (void)mb_x;
    (void)mb_y;
    (void)mv;
    return 0;
  }

  /// True if me_penalty is nontrivial (lets the encoder skip the hook).
  virtual bool has_me_penalty() const { return false; }

  /// Post-ME selection: mark additional MBs intra in `force_intra`
  /// (size mb_cols*mb_rows, row-major; entries already true must stay true).
  virtual void select_post_me(int frame_index,
                              const std::vector<MbMeInfo>& me_info,
                              int mb_cols, int mb_rows,
                              std::vector<std::uint8_t>* force_intra) {
    (void)frame_index;
    (void)me_info;
    (void)mb_cols;
    (void)mb_rows;
    (void)force_intra;
  }

  /// Observation hook after the frame's bits are final.
  virtual void on_frame_encoded(const FrameEncodeInfo& info) { (void)info; }

  /// Resets any internal state (new sequence).
  virtual void reset() {}
};

/// The paper's "NO" configuration: no resilience, pure coding efficiency.
class NoRefreshPolicy final : public RefreshPolicy {
 public:
  const char* name() const override { return "NO"; }
};

}  // namespace pbpair::codec
