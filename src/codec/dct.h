// 8x8 integer DCT / inverse DCT.
//
// All arithmetic is integer (the paper's implementation is fixed-point
// because the target PDAs have no FPU): the DCT basis is stored as a Q12
// integer matrix and the two separable passes accumulate in 32/64-bit
// integers. Encoder reconstruction and decoder use the *same* inverse, so
// a lossless channel reproduces the encoder's reconstruction bit-exactly —
// several tests and the error-propagation experiments rely on this.
#pragma once

#include <cstdint>

namespace pbpair::codec {

/// Forward DCT. `input` is 64 spatial samples (row-major, range fits in
/// int16: pixels 0..255 or prediction residuals -255..255), `output` is 64
/// transform coefficients, range approximately [-2048, 2047] for in-range
/// input.
void forward_dct_8x8(const std::int16_t* input, std::int16_t* output);

/// Inverse DCT. Output values are clamped to [-2048, 2047]; the caller adds
/// prediction and clamps to pixel range.
void inverse_dct_8x8(const std::int16_t* input, std::int16_t* output);

}  // namespace pbpair::codec
