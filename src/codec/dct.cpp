#include "codec/dct.h"

#include "common/math_util.h"

namespace pbpair::codec {
namespace {

// Q14 DCT-II basis matrix: kBasis[u][x] = round(16384 * C(u)/2 *
// cos((2x+1)*u*pi/16)) with C(0)=1/sqrt(2), C(u>0)=1. The 2-D transform is
// F = B * X * B^T; the inverse is X = B^T * F * B (B is orthonormal up to
// the Q14 scale). Intermediates: pass 1 fits int32 (|acc| <= 8*8035*2048),
// pass 2 accumulates in int64 and drops the Q28 scale with rounding.
constexpr int kBasis[8][8] = {
    {5793, 5793, 5793, 5793, 5793, 5793, 5793, 5793},
    {8035, 6811, 4551, 1598, -1598, -4551, -6811, -8035},
    {7568, 3135, -3135, -7568, -7568, -3135, 3135, 7568},
    {6811, -1598, -8035, -4551, 4551, 8035, 1598, -6811},
    {5793, -5793, -5793, 5793, 5793, -5793, -5793, 5793},
    {4551, -8035, 1598, 6811, -6811, -1598, 8035, -4551},
    {3135, -7568, 7568, -3135, -3135, 7568, -7568, 3135},
    {1598, -4551, 6811, -8035, 8035, -6811, 4551, -1598},
};

}  // namespace

void forward_dct_8x8(const std::int16_t* input, std::int16_t* output) {
  // Pass 1 (columns): tmp[u][y] = sum_x B[u][x] * in[x][y]. Keep Q12.
  std::int32_t tmp[64];
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      std::int32_t acc = 0;
      for (int x = 0; x < 8; ++x) {
        acc += kBasis[u][x] * static_cast<std::int32_t>(input[x * 8 + y]);
      }
      tmp[u * 8 + y] = acc;  // |acc| <= 8 * 2048 * 2048 fits easily
    }
  }
  // Pass 2 (rows): F[u][v] = sum_y tmp[u][y] * B[v][y], then drop Q28.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      std::int64_t acc = 0;
      for (int y = 0; y < 8; ++y) {
        acc += static_cast<std::int64_t>(tmp[u * 8 + y]) * kBasis[v][y];
      }
      // Round and rescale from Q28 to integer coefficients.
      std::int64_t rounded = (acc + (acc >= 0 ? (1 << 27) : -(1 << 27))) >> 28;
      output[u * 8 + v] = static_cast<std::int16_t>(
          common::clamp<std::int64_t>(rounded, -2048, 2047));
    }
  }
}

void inverse_dct_8x8(const std::int16_t* input, std::int16_t* output) {
  // Pass 1: tmp[x][v] = sum_u B[u][x] * F[u][v] (B^T * F).
  std::int32_t tmp[64];
  for (int x = 0; x < 8; ++x) {
    for (int v = 0; v < 8; ++v) {
      std::int32_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += kBasis[u][x] * static_cast<std::int32_t>(input[u * 8 + v]);
      }
      tmp[x * 8 + v] = acc;
    }
  }
  // Pass 2: X[x][y] = sum_v tmp[x][v] * B[v][y], drop Q28.
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      std::int64_t acc = 0;
      for (int v = 0; v < 8; ++v) {
        acc += static_cast<std::int64_t>(tmp[x * 8 + v]) * kBasis[v][y];
      }
      std::int64_t rounded = (acc + (acc >= 0 ? (1 << 27) : -(1 << 27))) >> 28;
      output[x * 8 + y] = static_cast<std::int16_t>(
          common::clamp<std::int64_t>(rounded, -2048, 2047));
    }
  }
}

}  // namespace pbpair::codec
