#include "codec/dct.h"

#include "codec/kernels/kernels.h"

namespace pbpair::codec {

// The reference implementation lives in kernels/kernels_scalar.cpp; SIMD
// backends (kernels/kernels_avx2.cpp) are bit-identical because all DCT
// arithmetic is exact integer math — see kernels/kernels.h.

void forward_dct_8x8(const std::int16_t* input, std::int16_t* output) {
  kernels::active().forward_dct_8x8(input, output);
}

void inverse_dct_8x8(const std::int16_t* input, std::int16_t* output) {
  kernels::active().inverse_dct_8x8(input, output);
}

}  // namespace pbpair::codec
