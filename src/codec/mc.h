// Half-pel motion compensation (H.263 clause 6.1.2 style).
//
// Predictions are formed with bilinear interpolation at half-pel positions
// ((a+b+1)>>1 for one-dimensional halves, (a+b+c+d+2)>>2 for the center).
// All reference reads are edge-clamped, so every syntactically valid vector
// is safely decodable; encoder and decoder share these functions, which is
// what keeps their reconstruction loops in lockstep.
#pragma once

#include <cstdint>

#include "codec/motion.h"
#include "energy/op_counters.h"
#include "video/frame.h"

namespace pbpair::codec {

/// Builds a w x h prediction block from `ref` at half-pel position
/// (x2, y2) (half-pel units, i.e. pixel position (x2/2, y2/2)).
/// `pred` is row-major w*h. Meters mc_pixels / mc_halfpel_pixels.
void predict_block(const video::Plane& ref, int x2, int y2, int w, int h,
                   std::uint8_t* pred, energy::OpCounters& ops);

/// Chroma motion vector (chroma-plane half-pel units) derived from a luma
/// half-pel vector with the H.263 rounding rule: the luma vector is halved
/// and any fractional part rounds to the half-pel position.
MotionVector chroma_mv(MotionVector luma);

/// SAD between the 16x16 block of `cur` at (cx, cy) and the half-pel
/// interpolated reference block at half-pel position (rx2, ry2), with
/// cutoff-based early termination. Meters sad_halfpel_ops.
std::int64_t sad_16x16_halfpel(const video::Plane& cur, int cx, int cy,
                               const video::Plane& ref, int rx2, int ry2,
                               std::int64_t cutoff, energy::OpCounters& ops);

}  // namespace pbpair::codec
