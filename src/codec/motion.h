// Motion vector types shared by the search, encoder, decoder, and the
// PBPAIR probability machinery.
#pragma once

#include <cstdint>

namespace pbpair::codec {

/// Motion vector in HALF-PEL units (H.263's resolution): x == 2 means one
/// full luma pixel to the right, x == 1 means half a pixel. Integer-pel
/// search produces even components; the half-pel refinement step adds the
/// odd ones.
struct MotionVector {
  int x = 0;
  int y = 0;

  bool operator==(const MotionVector&) const = default;
  bool is_zero() const { return x == 0 && y == 0; }
  bool is_half_pel() const { return (x & 1) != 0 || (y & 1) != 0; }

  /// Full-pel vector from pixel displacement.
  static MotionVector from_pixels(int px, int py) {
    return MotionVector{px * 2, py * 2};
  }
};

/// Floor of a half-pel component in pixels (works for negatives).
constexpr int halfpel_floor(int v) { return v >> 1; }

/// Width in pixels of the reference span a half-pel component touches:
/// 16 for full-pel, 17 when interpolation reads one extra column/row.
constexpr int halfpel_span(int v) { return 16 + ((v & 1) != 0 ? 1 : 0); }

/// Result of one block motion search.
struct MotionResult {
  MotionVector mv{};
  std::int64_t sad = 0;        // plain SAD of the chosen candidate
  std::int64_t cost = 0;       // SAD + policy penalty of the chosen candidate
  std::uint64_t candidates = 0;  // candidates evaluated (for energy metering)
  /// Exact SAD of the (0,0) candidate — the co-located block. Always
  /// evaluated first; PBPAIR reuses it as the similarity-factor input so
  /// the probability update costs no extra SAD work for searched MBs.
  std::int64_t sad_zero = -1;
};

inline constexpr int kMbSize = 16;

}  // namespace pbpair::codec
