#include "codec/bitstream.h"

namespace pbpair::codec {

void BitWriter::put_bits(std::uint32_t value, int count) {
  PB_CHECK(count >= 0 && count <= 32);
  if (count == 0) return;
  if (count < 32) {
    PB_DCHECK((value >> count) == 0);
    value &= (1u << count) - 1;
  }
  bit_count_ += static_cast<std::uint64_t>(count);
  // Feed bits into the accumulator MSB-first, flushing full bytes.
  for (int i = count - 1; i >= 0; --i) {
    acc_ = (acc_ << 1) | ((value >> i) & 1u);
    if (++acc_bits_ == 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      acc_bits_ = 0;
    }
  }
}

void BitWriter::align() {
  if (acc_bits_ > 0) {
    put_bits(0, 8 - acc_bits_);
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  align();
  return std::move(bytes_);
}

bool BitReader::get_bits(int count, std::uint32_t* out) {
  PB_CHECK(count >= 0 && count <= 32);
  if (static_cast<std::uint64_t>(count) > bits_remaining()) return false;
  std::uint32_t result = 0;
  for (int i = 0; i < count; ++i) {
    std::uint64_t byte_idx = bit_pos_ >> 3;
    int bit_idx = 7 - static_cast<int>(bit_pos_ & 7);
    result = (result << 1) | ((data_[byte_idx] >> bit_idx) & 1u);
    ++bit_pos_;
  }
  *out = result;
  return true;
}

}  // namespace pbpair::codec
