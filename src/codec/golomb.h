// Exponential-Golomb codes over BitWriter/BitReader.
//
// Used for motion-vector differences and as the escape path of the
// coefficient VLC. ue() is the classic unsigned Exp-Golomb code
// (1, 010, 011, 00100, ...); se() maps signed values with the H.26x zigzag
// convention 0, 1, -1, 2, -2, ...
#pragma once

#include <cstdint>

#include "codec/bitstream.h"

namespace pbpair::codec {

/// Writes unsigned Exp-Golomb. value in [0, 2^31 - 2].
void put_ue(BitWriter& writer, std::uint32_t value);

/// Reads unsigned Exp-Golomb; false on malformed/truncated input.
bool get_ue(BitReader& reader, std::uint32_t* out);

/// Writes signed Exp-Golomb (0, 1, -1, 2, -2, ... mapping).
void put_se(BitWriter& writer, std::int32_t value);

/// Reads signed Exp-Golomb; false on malformed/truncated input.
bool get_se(BitReader& reader, std::int32_t* out);

/// Number of bits put_ue would emit for `value`.
int ue_bit_length(std::uint32_t value);

}  // namespace pbpair::codec
