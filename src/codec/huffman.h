// Static Huffman code construction for the entropy-coding tables.
//
// H.263 defines hand-tuned VLC tables (MCBPC, CBPY, TCOEF). Rather than
// transcribing the standard's tables — our bitstream is H.263-*style*, not
// bit-compatible — we build canonical Huffman codes from fixed frequency
// models that reflect typical low-bitrate video statistics (vlc_tables.cpp).
// Encoder and decoder construct identical codes from the same model, so the
// tables never appear in the bitstream.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/bitstream.h"

namespace pbpair::codec {

/// A canonical Huffman code over symbols 0..n-1.
class HuffmanCode {
 public:
  /// Builds the code from per-symbol frequencies (one entry per symbol;
  /// every frequency must be >= 1 so every symbol is encodable).
  /// Construction is deterministic: ties are broken by symbol index.
  explicit HuffmanCode(const std::vector<std::uint64_t>& frequencies);

  int symbol_count() const { return static_cast<int>(lengths_.size()); }

  /// Code length in bits for `symbol`.
  int length(int symbol) const { return lengths_[symbol]; }

  /// Writes the code for `symbol`.
  void encode(BitWriter& writer, int symbol) const;

  /// Reads one symbol; false on truncated input.
  bool decode(BitReader& reader, int* symbol) const;

  /// True if no codeword is a prefix of another (sanity check for tests).
  bool is_prefix_free() const;

 private:
  void assign_canonical_codes();

  std::vector<int> lengths_;          // per-symbol code length
  std::vector<std::uint32_t> codes_;  // per-symbol canonical code bits
  // Canonical decode tables indexed by code length (1..max):
  std::vector<std::uint32_t> first_code_at_len_;
  std::vector<int> first_index_at_len_;
  std::vector<int> sorted_symbols_;   // symbols sorted by (length, symbol)
  int max_length_ = 0;
};

}  // namespace pbpair::codec
