#include "codec/huffman.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace pbpair::codec {
namespace {

struct Node {
  std::uint64_t freq;
  int order;       // deterministic tie-break: creation order
  int symbol;      // >= 0 for leaves, -1 for internal
  int left = -1;   // indices into the node pool
  int right = -1;
};

}  // namespace

HuffmanCode::HuffmanCode(const std::vector<std::uint64_t>& frequencies) {
  const int n = static_cast<int>(frequencies.size());
  PB_CHECK(n >= 2);
  lengths_.assign(n, 0);
  codes_.assign(n, 0);

  // Build the Huffman tree with a min-heap. Tie-break on creation order so
  // the construction is fully deterministic.
  std::vector<Node> pool;
  pool.reserve(2 * static_cast<std::size_t>(n));
  auto cmp = [&pool](int a, int b) {
    if (pool[a].freq != pool[b].freq) return pool[a].freq > pool[b].freq;
    return pool[a].order > pool[b].order;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int s = 0; s < n; ++s) {
    PB_CHECK_MSG(frequencies[s] >= 1, "huffman frequency must be >= 1");
    pool.push_back(Node{frequencies[s], s, s});
    heap.push(s);
  }
  int order = n;
  while (heap.size() > 1) {
    int a = heap.top();
    heap.pop();
    int b = heap.top();
    heap.pop();
    pool.push_back(Node{pool[a].freq + pool[b].freq, order++, -1, a, b});
    heap.push(static_cast<int>(pool.size()) - 1);
  }

  // Depth-first traversal to extract code lengths (iterative).
  std::vector<std::pair<int, int>> stack;  // (node index, depth)
  stack.emplace_back(heap.top(), 0);
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = pool[idx];
    if (node.symbol >= 0) {
      lengths_[node.symbol] = depth == 0 ? 1 : depth;  // degenerate n==1 guard
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }

  assign_canonical_codes();
}

void HuffmanCode::assign_canonical_codes() {
  const int n = symbol_count();
  sorted_symbols_.resize(n);
  for (int s = 0; s < n; ++s) sorted_symbols_[s] = s;
  std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
            [this](int a, int b) {
              if (lengths_[a] != lengths_[b]) return lengths_[a] < lengths_[b];
              return a < b;
            });
  max_length_ = lengths_[sorted_symbols_.back()];
  PB_CHECK(max_length_ <= 31);

  first_code_at_len_.assign(max_length_ + 1, 0);
  first_index_at_len_.assign(max_length_ + 1, -1);

  std::uint32_t code = 0;
  int prev_len = 0;
  for (int i = 0; i < n; ++i) {
    int s = sorted_symbols_[i];
    int len = lengths_[s];
    code <<= (len - prev_len);
    if (first_index_at_len_[len] < 0) {
      first_index_at_len_[len] = i;
      first_code_at_len_[len] = code;
    }
    codes_[s] = code;
    ++code;
    prev_len = len;
  }
}

void HuffmanCode::encode(BitWriter& writer, int symbol) const {
  PB_CHECK(symbol >= 0 && symbol < symbol_count());
  writer.put_bits(codes_[symbol], lengths_[symbol]);
}

bool HuffmanCode::decode(BitReader& reader, int* symbol) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= max_length_; ++len) {
    bool bit = false;
    if (!reader.get_bit(&bit)) return false;
    code = (code << 1) | (bit ? 1u : 0u);
    int first_idx = first_index_at_len_[len];
    if (first_idx < 0) continue;
    std::uint32_t first_code = first_code_at_len_[len];
    // Count of codes at this length: scan is avoided by checking the next
    // occupied length's start index.
    int next_idx = symbol_count();
    for (int l2 = len + 1; l2 <= max_length_; ++l2) {
      if (first_index_at_len_[l2] >= 0) {
        next_idx = first_index_at_len_[l2];
        break;
      }
    }
    int count = next_idx - first_idx;
    if (code >= first_code && code < first_code + static_cast<std::uint32_t>(count)) {
      *symbol = sorted_symbols_[first_idx + (code - first_code)];
      return true;
    }
  }
  return false;
}

bool HuffmanCode::is_prefix_free() const {
  const int n = symbol_count();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      if (lengths_[a] <= lengths_[b]) {
        std::uint32_t prefix = codes_[b] >> (lengths_[b] - lengths_[a]);
        if (prefix == codes_[a]) return false;
      }
    }
  }
  return true;
}

}  // namespace pbpair::codec
