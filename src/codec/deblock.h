// In-loop deblocking filter (H.263 Annex J flavor).
//
// Block-based DCT coding at coarse QP leaves visible discontinuities at
// 8x8 block boundaries. The filter smooths each boundary with a ramp
// limited by a QP-derived strength, so real edges survive while
// quantization seams fade. It runs identically in the encoder's
// reconstruction loop and in the decoder (after each frame, before the
// frame becomes a reference) — enabling it on only one side would break
// the lockstep invariant, so it is a stream-level configuration
// (EncoderConfig::deblocking / DecoderConfig::deblocking must match).
#pragma once

#include "video/frame.h"

namespace pbpair::codec {

/// Filter strength for a quantizer value (grows with QP; coarser
/// quantization leaves bigger seams).
int deblock_strength(int qp);

/// Filters all internal 8-aligned block edges of every plane in place.
void deblock_frame(video::YuvFrame& frame, int qp);

/// Exposed for tests: filters one 4-pixel stencil (A B | C D across a
/// block edge), returning the delta applied to B (and subtracted from C).
int deblock_delta(int a, int b, int c, int d, int strength);

}  // namespace pbpair::codec
