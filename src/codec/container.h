// PBS — a minimal file container for PBPAIR bitstreams.
//
// Layout (all integers little-endian):
//   header : magic "PBPR" | u16 version | u16 width | u16 height | u16 qp0
//   frame  : u32 payload_len | u8 type | u8 qp | payload (GOB data,
//            starting at the first GOB — the picture header is regenerated
//            from the record fields on read)
// This is the storage analogue of the RTP payload format: enough metadata
// per frame to decode it standalone, nothing more.
#pragma once

#include <string>
#include <vector>

#include "codec/syntax.h"

namespace pbpair::codec {

struct ContainerHeader {
  int width = 0;
  int height = 0;
  int initial_qp = 0;
};

class ContainerWriter {
 public:
  /// Opens `path` for writing and emits the header. is_open() reports
  /// failure.
  ContainerWriter(const std::string& path, const ContainerHeader& header);
  ~ContainerWriter();

  ContainerWriter(const ContainerWriter&) = delete;
  ContainerWriter& operator=(const ContainerWriter&) = delete;

  bool is_open() const { return file_ != nullptr; }

  /// Appends one encoded frame. Returns false on I/O error.
  bool write_frame(const EncodedFrame& frame);

  /// Flushes and closes; returns false if any write failed.
  bool close();

 private:
  std::FILE* file_ = nullptr;
  bool ok_ = true;
};

class ContainerReader {
 public:
  explicit ContainerReader(const std::string& path);
  ~ContainerReader();

  ContainerReader(const ContainerReader&) = delete;
  ContainerReader& operator=(const ContainerReader&) = delete;

  bool is_open() const { return file_ != nullptr; }
  const ContainerHeader& header() const { return header_; }

  /// Reads the next frame into decoder-ready form. Returns false at EOF or
  /// on a malformed record.
  bool read_frame(ReceivedFrame* frame);

 private:
  std::FILE* file_ = nullptr;
  ContainerHeader header_;
  int frame_index_ = 0;
};

}  // namespace pbpair::codec
