// Entropy-coding tables for the macroblock and block layers.
//
// Modeled on H.263's TCOEF/CBPY/MCBPC structure: common (LAST, RUN, LEVEL)
// coefficient events and common coded-block-patterns get short Huffman
// codes; everything else takes an escape into Exp-Golomb. The Huffman codes
// are built once from fixed frequency models typical of low-bitrate video
// (heavily skewed toward small runs, |level| 1..2, and sparse CBPs).
#pragma once

#include <cstdint>

#include "codec/bitstream.h"
#include "codec/huffman.h"

namespace pbpair::codec {

/// One run-length coefficient event: RUN zeros, then LEVEL, LAST marks the
/// final event of a block.
struct CoeffEvent {
  bool last;
  int run;    // 0..63
  int level;  // nonzero, [-kMaxLevel, kMaxLevel]
};

/// Coefficient-event VLC (the TCOEF analogue).
class CoeffVlc {
 public:
  CoeffVlc();

  void encode(BitWriter& writer, const CoeffEvent& event) const;
  bool decode(BitReader& reader, CoeffEvent* event) const;

  /// Exposed for table tests.
  const HuffmanCode& table() const { return code_; }

 private:
  // Symbols 0..(kTableEvents-1) map to (last, run, |level|) triples from
  // the frequency model, each followed by a sign bit. The final symbol is
  // the escape (explicit last bit + ue(run) + se(level)).
  static constexpr int kMaxTableRun = 10;
  static constexpr int kMaxTableLevel = 3;
  static constexpr int kTableEvents = 2 * (kMaxTableRun + 1) * kMaxTableLevel;

  int symbol_of(bool last, int run, int level_mag) const;

  HuffmanCode code_;
};

/// Coded-block-pattern VLC: 6-bit pattern (bit b set => block b of the MB
/// has coded coefficients; blocks ordered Y0..Y3, U, V).
class CbpVlc {
 public:
  CbpVlc();

  void encode(BitWriter& writer, int cbp) const;
  bool decode(BitReader& reader, int* cbp) const;

  const HuffmanCode& table() const { return code_; }

 private:
  HuffmanCode code_;
};

/// Process-wide shared instances (construction is deterministic).
const CoeffVlc& coeff_vlc();
const CbpVlc& cbp_vlc();

}  // namespace pbpair::codec
