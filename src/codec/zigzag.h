// Zig-zag coefficient scan order (identical to H.263/MPEG 8x8 scan).
#pragma once

#include <array>

namespace pbpair::codec {

/// kZigzag[i] is the raster index (row*8+col) of the i-th coefficient in
/// scan order; kZigzagInverse is the inverse permutation.
extern const std::array<int, 64> kZigzag;
extern const std::array<int, 64> kZigzagInverse;

}  // namespace pbpair::codec
