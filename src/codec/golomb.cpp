#include "codec/golomb.h"

namespace pbpair::codec {
namespace {

int bit_width(std::uint32_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace

void put_ue(BitWriter& writer, std::uint32_t value) {
  PB_CHECK(value < 0xFFFFFFFFu);
  std::uint32_t v = value + 1;
  int width = bit_width(v);
  // width-1 leading zeros, then the value itself (whose MSB is the 1).
  writer.put_bits(0, width - 1);
  writer.put_bits(v, width);
}

bool get_ue(BitReader& reader, std::uint32_t* out) {
  int zeros = 0;
  for (;;) {
    bool bit = false;
    if (!reader.get_bit(&bit)) return false;
    if (bit) break;
    if (++zeros > 31) return false;  // malformed: would overflow
  }
  std::uint32_t suffix = 0;
  if (!reader.get_bits(zeros, &suffix)) return false;
  *out = ((1u << zeros) | suffix) - 1;
  return true;
}

void put_se(BitWriter& writer, std::int32_t value) {
  // 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4, ...
  std::uint32_t mapped =
      value > 0 ? (static_cast<std::uint32_t>(value) * 2 - 1)
                : (static_cast<std::uint32_t>(-static_cast<std::int64_t>(value)) * 2);
  put_ue(writer, mapped);
}

bool get_se(BitReader& reader, std::int32_t* out) {
  std::uint32_t mapped = 0;
  if (!get_ue(reader, &mapped)) return false;
  if (mapped % 2 == 1) {
    *out = static_cast<std::int32_t>((mapped + 1) / 2);
  } else {
    *out = -static_cast<std::int32_t>(mapped / 2);
  }
  return true;
}

int ue_bit_length(std::uint32_t value) {
  return 2 * bit_width(value + 1) - 1;
}

}  // namespace pbpair::codec
