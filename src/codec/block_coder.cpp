#include "codec/block_coder.h"

#include <cstring>

#include "common/check.h"
#include "codec/vlc_tables.h"
#include "codec/zigzag.h"

namespace pbpair::codec {

void encode_block(BitWriter& writer, const std::int16_t* block, bool intra) {
  int start = 0;
  if (intra) {
    int dc = block[0];
    PB_CHECK(dc >= 1 && dc <= 254);
    writer.put_bits(static_cast<std::uint32_t>(dc), 8);
    start = 1;
  }
  // Find the last nonzero coefficient in scan order.
  int last_nz = -1;
  for (int i = start; i < 64; ++i) {
    if (block[kZigzag[i]] != 0) last_nz = i;
  }
  if (last_nz < 0) {
    PB_CHECK_MSG(intra, "inter block with no coefficients must not be coded");
    // Intra block with no AC energy: a single "no AC" flag bit.
    writer.put_bit(false);
    return;
  }
  if (intra) writer.put_bit(true);  // has-AC flag

  const CoeffVlc& vlc = coeff_vlc();
  int run = 0;
  for (int i = start; i <= last_nz; ++i) {
    int level = block[kZigzag[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    vlc.encode(writer, CoeffEvent{i == last_nz, run, level});
    run = 0;
  }
}

bool decode_block(BitReader& reader, std::int16_t* block, bool intra) {
  std::memset(block, 0, 64 * sizeof(std::int16_t));
  int start = 0;
  if (intra) {
    std::uint32_t dc = 0;
    if (!reader.get_bits(8, &dc)) return false;
    if (dc < 1 || dc > 254) return false;
    block[0] = static_cast<std::int16_t>(dc);
    start = 1;
    bool has_ac = false;
    if (!reader.get_bit(&has_ac)) return false;
    if (!has_ac) return true;
  }
  const CoeffVlc& vlc = coeff_vlc();
  int pos = start;
  for (;;) {
    CoeffEvent event{};
    if (!vlc.decode(reader, &event)) return false;
    pos += event.run;
    if (pos >= 64) return false;  // run overflows the block: corrupt stream
    block[kZigzag[pos]] = static_cast<std::int16_t>(event.level);
    ++pos;
    if (event.last) return true;
  }
}

bool block_is_empty(const std::int16_t* block, bool intra) {
  for (int i = intra ? 1 : 0; i < 64; ++i) {
    if (block[i] != 0) return false;
  }
  return true;
}

}  // namespace pbpair::codec
