// Bitstream-level frame representations shared by encoder, decoder, and
// the network layer.
//
// Layout of an encoded frame:
//   picture header : frame_index u(8), type u(1), qp u(5), byte-align
//   per MB row (one GOB per row), each starting byte-aligned:
//     gob header   : gob_index u(8)
//     mb_cols macroblocks (see encoder.cpp for the MB layer)
//
// GOBs start byte-aligned so the packetizer can fragment a frame at GOB
// boundaries without touching the entropy-coded payload, and each GOB is
// independently decodable given the picture-level fields (frame index,
// type, QP) that the RTP-style packet header repeats — this mirrors RFC
// 2190 mode B packetization of H.263.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/motion.h"
#include "common/buffer.h"

namespace pbpair::codec {

enum class FrameType : std::uint8_t {
  kIntra,  // I-frame: every MB intra
  kInter,  // P-frame: per-MB skip / inter / intra
};

enum class MbMode : std::uint8_t {
  kSkip,   // COD=1: copy co-located MB from the reference
  kInter,  // motion-compensated prediction + residual
  kIntra,  // standalone intra coding (the refresh mechanism)
};

/// Per-MB encoding outcome, consumed by refresh policies (PBPAIR's
/// correctness update needs modes, vectors, and SADs) and by the harness
/// for statistics.
struct MbEncodeRecord {
  MbMode mode = MbMode::kSkip;
  MotionVector mv{};            // valid for kInter (kSkip implies (0,0))
  std::int64_t sad_mv = -1;     // SAD of the chosen vector; -1 if no search
  std::int64_t sad_zero = -1;   // SAD of the co-located candidate; -1 if no search
  std::int64_t sad_self = -1;   // deviation from own mean; -1 if not computed
  bool pre_me_intra = false;    // intra forced before ME (ME skipped)
  std::uint32_t bits = 0;       // bits this MB contributed
};

/// A fully encoded frame plus the side metadata the pipeline needs.
struct EncodedFrame {
  int frame_index = 0;
  FrameType type = FrameType::kIntra;
  int qp = 0;
  int mb_cols = 0;
  int mb_rows = 0;

  std::vector<std::uint8_t> bytes;
  /// Byte offset of each GOB (== MB row) within `bytes`. Size mb_rows.
  std::vector<std::uint32_t> gob_offsets;
  std::vector<MbEncodeRecord> mb_records;  // size mb_cols * mb_rows

  std::size_t size_bytes() const { return bytes.size(); }
  int intra_mb_count() const {
    int n = 0;
    for (const MbEncodeRecord& r : mb_records) {
      if (r.mode == MbMode::kIntra) ++n;
    }
    return n;
  }
};

/// What the receiver managed to assemble for one frame: the picture-level
/// fields plus whichever GOBs arrived. A completely lost frame has
/// `any_data == false`.
struct ReceivedFrame {
  int frame_index = 0;
  FrameType type = FrameType::kIntra;
  int qp = 0;
  bool any_data = false;

  struct GobSpan {
    int first_gob = 0;
    // Contiguous GOBs starting at first_gob. An arena-backed slice: the
    // depacketizer hands out views into the delivered packet payloads
    // instead of copying the bitstream a third time.
    common::BufferRef bytes;
  };
  std::vector<GobSpan> spans;
};

}  // namespace pbpair::codec
