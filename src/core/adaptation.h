// Power-aware parameter adaptation (paper §3.2).
//
// PBPAIR's operating point is (Intra_Th, α): raising Intra_Th (or seeing a
// higher PLR) produces more intra MBs, which means MORE resilience, LESS
// encoding energy (ME skipped), but a LARGER bitstream. The paper sketches
// two closed-loop uses of this trade-off; this controller implements both:
//
//  - kHoldIntraRate ("compression-efficiency mode"): when network feedback
//    reports a PLR change, shift Intra_Th in the opposite direction so the
//    number of intra MBs — and hence the bit rate — stays roughly constant
//    ("adapting the Intra_Th by the amount of the PLR increase can generate
//    similar number of intra macro blocks", §3.2).
//
//  - kMaxResilienceInBudget: keep Intra_Th as high as the remaining energy
//    budget allows. If the projected session energy exceeds the budget,
//    raise Intra_Th (intra coding is cheaper); when comfortably under
//    budget, relax back toward the user's base expectation.
#pragma once

#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::core {

enum class AdaptationGoal {
  kHoldIntraRate,
  kMaxResilienceInBudget,
};

struct AdaptationConfig {
  AdaptationGoal goal = AdaptationGoal::kHoldIntraRate;

  double base_intra_th = 0.85;  // the user's resiliency expectation
  double base_plr = 0.10;       // PLR at which base_intra_th was chosen

  /// dIntra_Th/dPLR used by kHoldIntraRate. With the Formula (3)
  /// approximation σ decays by factor (1-α) per frame, so a PLR increase
  /// of Δ lowers σ^k by ≈ k·Δ after k frames; coupling ≈ refresh period
  /// keeps the below-threshold count stable. 1.0 is a robust default.
  double plr_coupling = 1.0;

  /// Energy budget for kMaxResilienceInBudget (Joules over the session).
  double energy_budget_j = 0.0;
  int planned_frames = 0;

  double step = 0.02;  // per-update Intra_Th adjustment
};

class PowerAwareController {
 public:
  explicit PowerAwareController(const AdaptationConfig& config)
      : config_(config), intra_th_(config.base_intra_th) {
    PB_CHECK(config.base_intra_th >= 0.0 && config.base_intra_th <= 1.0);
    if (config.goal == AdaptationGoal::kMaxResilienceInBudget) {
      PB_CHECK(config.energy_budget_j > 0.0 && config.planned_frames > 0);
    }
  }

  double intra_th() const { return intra_th_; }

  /// Receiver feedback: the measured packet-loss rate changed.
  void on_plr_update(double plr) {
    last_plr_ = plr;
    if (config_.goal == AdaptationGoal::kHoldIntraRate) {
      // PLR up ⇒ σ decays faster ⇒ same threshold would mark more MBs
      // intra; lower the threshold to compensate (and vice versa).
      intra_th_ = common::clamp(
          config_.base_intra_th -
              config_.plr_coupling * (plr - config_.base_plr),
          0.0, 1.0);
    }
  }

  /// Energy telemetry: total Joules spent after `frames_done` frames.
  void on_energy_update(double spent_j, int frames_done) {
    if (config_.goal != AdaptationGoal::kMaxResilienceInBudget ||
        frames_done <= 0) {
      return;
    }
    double projected =
        spent_j * static_cast<double>(config_.planned_frames) / frames_done;
    if (projected > config_.energy_budget_j) {
      // Over budget: more intra (higher threshold) cuts ME energy.
      intra_th_ = common::clamp(intra_th_ + config_.step, 0.0, 1.0);
    } else if (projected < 0.9 * config_.energy_budget_j &&
               intra_th_ > config_.base_intra_th) {
      // Comfortably under: relax toward the user's base expectation.
      intra_th_ = common::clamp(intra_th_ - config_.step,
                                config_.base_intra_th, 1.0);
    }
  }

  double last_plr() const { return last_plr_; }

 private:
  AdaptationConfig config_;
  double intra_th_;
  double last_plr_ = -1.0;
};

}  // namespace pbpair::core
