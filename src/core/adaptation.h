// Power-aware parameter adaptation (paper §3.2).
//
// PBPAIR's operating point is (Intra_Th, α): raising Intra_Th (or seeing a
// higher PLR) produces more intra MBs, which means MORE resilience, LESS
// encoding energy (ME skipped), but a LARGER bitstream. The paper sketches
// two closed-loop uses of this trade-off; this controller implements both:
//
//  - kHoldIntraRate ("compression-efficiency mode"): when network feedback
//    reports a PLR change, shift Intra_Th in the opposite direction so the
//    number of intra MBs — and hence the bit rate — stays roughly constant
//    ("adapting the Intra_Th by the amount of the PLR increase can generate
//    similar number of intra macro blocks", §3.2).
//
//  - kMaxResilienceInBudget: keep Intra_Th as high as the remaining energy
//    budget allows. If the projected session energy exceeds the budget,
//    raise Intra_Th (intra coding is cheaper); when comfortably under
//    budget, relax back toward the user's base expectation.
#pragma once

#include "common/check.h"
#include "common/math_util.h"

namespace pbpair::core {

enum class AdaptationGoal {
  kHoldIntraRate,
  kMaxResilienceInBudget,
};

struct AdaptationConfig {
  AdaptationGoal goal = AdaptationGoal::kHoldIntraRate;

  double base_intra_th = 0.85;  // the user's resiliency expectation
  double base_plr = 0.10;       // PLR at which base_intra_th was chosen

  /// dIntra_Th/dPLR used by kHoldIntraRate. With the Formula (3)
  /// approximation σ decays by factor (1-α) per frame, so a PLR increase
  /// of Δ lowers σ^k by ≈ k·Δ after k frames; coupling ≈ refresh period
  /// keeps the below-threshold count stable. 1.0 is a robust default.
  double plr_coupling = 1.0;

  /// Energy budget for kMaxResilienceInBudget (Joules over the session).
  double energy_budget_j = 0.0;
  int planned_frames = 0;

  double step = 0.02;  // per-update Intra_Th adjustment
};

class PowerAwareController {
 public:
  explicit PowerAwareController(const AdaptationConfig& config)
      : config_(config), intra_th_(config.base_intra_th) {
    PB_CHECK(config.base_intra_th >= 0.0 && config.base_intra_th <= 1.0);
    if (config.goal == AdaptationGoal::kMaxResilienceInBudget) {
      PB_CHECK(config.energy_budget_j > 0.0 && config.planned_frames > 0);
    }
  }

  double intra_th() const { return intra_th_; }

  /// Receiver feedback: the measured packet-loss rate changed.
  void on_plr_update(double plr) {
    last_plr_ = plr;
    if (config_.goal == AdaptationGoal::kHoldIntraRate) {
      // PLR up ⇒ σ decays faster ⇒ same threshold would mark more MBs
      // intra; lower the threshold to compensate (and vice versa).
      intra_th_ = common::clamp(
          config_.base_intra_th -
              config_.plr_coupling * (plr - config_.base_plr),
          0.0, 1.0);
    }
  }

  /// Energy telemetry: total Joules spent after `frames_done` frames.
  void on_energy_update(double spent_j, int frames_done) {
    if (config_.goal != AdaptationGoal::kMaxResilienceInBudget ||
        frames_done <= 0) {
      return;
    }
    double projected =
        spent_j * static_cast<double>(config_.planned_frames) / frames_done;
    if (projected > config_.energy_budget_j) {
      // Over budget: more intra (higher threshold) cuts ME energy.
      intra_th_ = common::clamp(intra_th_ + config_.step, 0.0, 1.0);
    } else if (projected < 0.9 * config_.energy_budget_j &&
               intra_th_ > config_.base_intra_th) {
      // Comfortably under: relax toward the user's base expectation.
      intra_th_ = common::clamp(intra_th_ - config_.step,
                                config_.base_intra_th, 1.0);
    }
  }

  double last_plr() const { return last_plr_; }

 private:
  AdaptationConfig config_;
  double intra_th_;
  double last_plr_ = -1.0;
};

/// Joint Intra_Th + FEC-rate control (DESIGN.md §12.4).
///
/// With packet-level FEC in the pipeline there are two resilience knobs
/// spending two different energies: repair packets spend TRANSMIT joules,
/// intra refresh spends (negative) ENCODE joules but inflates the
/// bitstream. The joint policy:
///
///  1. PLR feedback picks the smallest m whose predicted residual loss
///     (the binomial tail of the (k+m)-packet window) meets
///     `target_residual_plr`, capped by whatever the energy loop allows.
///  2. Intra_Th then compensates for the RESIDUAL loss the decoder will
///     actually see — not the raw network PLR — via the same
///     hold-intra-rate rule as PowerAwareController. FEC soaking up loss
///     lets Intra_Th stay near the compression-efficient base point.
///  3. When projected energy exceeds the budget, FEC sheds first (repair
///     bytes are pure overhead; dropping m is instant and reversible);
///     only at m == 0 does Intra_Th start climbing (intra is cheaper to
///     ENCODE). Under budget, the cap relaxes before Intra_Th returns to
///     base.
struct JointAdaptationConfig {
  double base_intra_th = 0.85;  // the user's resiliency expectation
  double base_plr = 0.10;       // residual PLR base_intra_th was chosen at
  double plr_coupling = 1.0;    // dIntra_Th / dResidualPLR
  double step = 0.02;           // per-update Intra_Th adjustment

  int fec_k = 8;                 // window size the session's encoder uses
  int max_fec_m = 8;             // net::kMaxFecM unless the scheme caps it
  double target_residual_plr = 0.02;  // post-recovery loss the FEC aims for

  double energy_budget_j = 0.0;  // 0 disables the energy loop
  int planned_frames = 0;
};

class JointPowerAwareController {
 public:
  explicit JointPowerAwareController(const JointAdaptationConfig& config)
      : config_(config),
        intra_th_(config.base_intra_th),
        m_cap_(config.max_fec_m) {
    PB_CHECK(config.base_intra_th >= 0.0 && config.base_intra_th <= 1.0);
    PB_CHECK(config.fec_k >= 1);
    PB_CHECK(config.max_fec_m >= 0);
    PB_CHECK(config.target_residual_plr >= 0.0);
    if (config.energy_budget_j > 0.0) PB_CHECK(config.planned_frames > 0);
  }

  /// Expected fraction of DATA packets still lost after decoding a
  /// (k+m)-window against i.i.d. per-packet loss `plr`: a window with i
  /// losses recovers fully for i <= m, and loses i·k/(k+m) data packets
  /// in expectation otherwise. m = 0 reduces to `plr` exactly.
  static double residual_plr(double plr, int k, int m) {
    PB_CHECK(k >= 1 && m >= 0);
    const double p = common::clamp(plr, 0.0, 1.0);
    if (m == 0 || p == 0.0) return p;
    if (p == 1.0) return 1.0;
    const int n = k + m;
    // Walk the binomial pmf; accumulate E[i · 1{i > m}] / n.
    double pmf = 1.0;  // C(n,0) p^0 q^n, scaled up incrementally
    for (int i = 0; i < n; ++i) pmf *= (1.0 - p);
    double expected_excess = 0.0;
    for (int i = 1; i <= n; ++i) {
      pmf *= static_cast<double>(n - i + 1) / static_cast<double>(i) * p /
             (1.0 - p);
      if (i > m) expected_excess += pmf * static_cast<double>(i);
    }
    return expected_excess / static_cast<double>(n);
  }

  /// Receiver feedback: measured NETWORK packet-loss rate changed.
  void on_plr_update(double plr) {
    last_plr_ = plr;
    desired_m_ = pick_m(plr);
    fec_m_ = common::clamp(desired_m_, 0, m_cap_);
    const double residual = residual_plr(plr, config_.fec_k, fec_m_);
    intra_th_ = common::clamp(
        config_.base_intra_th -
            config_.plr_coupling * (residual - config_.base_plr),
        0.0, 1.0);
  }

  /// Corruption-aware feedback (CRC wire format): `erasure_plr` is the
  /// total unusable-packet rate (true losses plus CRC-dropped corruption —
  /// the RR's fraction_lost, which is what the FEC window must survive);
  /// `corrupted_plr` is the portion of it that was verified corruption.
  /// Before CRC framing, bit-flipped packets parsed fine and decoded as
  /// garbage without ever entering the loss rate — this overload is where
  /// the residual-PLR model finally sees them.
  void on_plr_update(double erasure_plr, double corrupted_plr) {
    last_corrupted_plr_ = common::clamp(corrupted_plr, 0.0, 1.0);
    on_plr_update(erasure_plr);
  }

  /// Energy telemetry: total Joules spent after `frames_done` frames.
  void on_energy_update(double spent_j, int frames_done) {
    if (config_.energy_budget_j <= 0.0 || frames_done <= 0) return;
    const double projected = spent_j *
                             static_cast<double>(config_.planned_frames) /
                             frames_done;
    if (projected > config_.energy_budget_j) {
      if (fec_m_ > 0) {
        // Shed transmit energy first: one fewer repair packet per window.
        m_cap_ = fec_m_ - 1;
        fec_m_ = m_cap_;
      } else {
        // No FEC left to shed; intra coding cuts ME energy.
        intra_th_ = common::clamp(intra_th_ + config_.step, 0.0, 1.0);
      }
    } else if (projected < 0.9 * config_.energy_budget_j) {
      if (m_cap_ < config_.max_fec_m && m_cap_ < desired_m_) {
        // Headroom: restore protection before relaxing intra refresh.
        ++m_cap_;
        fec_m_ = common::clamp(desired_m_, 0, m_cap_);
      } else if (intra_th_ > config_.base_intra_th) {
        intra_th_ = common::clamp(intra_th_ - config_.step,
                                  config_.base_intra_th, 1.0);
      }
    }
  }

  double intra_th() const { return intra_th_; }
  int fec_m() const { return fec_m_; }
  int fec_m_cap() const { return m_cap_; }
  double last_plr() const { return last_plr_; }
  /// -1 until a corruption-aware update arrives.
  double last_corrupted_plr() const { return last_corrupted_plr_; }

 private:
  /// Smallest m in [0, max_fec_m] whose predicted residual loss meets the
  /// target; max_fec_m when none does (best effort under heavy loss).
  int pick_m(double plr) const {
    for (int m = 0; m <= config_.max_fec_m; ++m) {
      if (residual_plr(plr, config_.fec_k, m) <= config_.target_residual_plr) {
        return m;
      }
    }
    return config_.max_fec_m;
  }

  JointAdaptationConfig config_;
  double intra_th_;
  int fec_m_ = 0;
  int desired_m_ = 0;
  int m_cap_;
  double last_plr_ = -1.0;
  double last_corrupted_plr_ = -1.0;
};

}  // namespace pbpair::core
