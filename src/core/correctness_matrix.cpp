#include "core/correctness_matrix.h"

#include <algorithm>

#include "common/math_util.h"

namespace pbpair::core {

common::Q16 CorrectnessMatrix::min_over_region(int px, int py, int w,
                                               int h) const {
  // The region [px, px+w) x [py, py+h) overlaps between one and four MBs
  // (six for 17-px half-pel spans at MB boundaries). Clamp to the frame so
  // border vectors behave.
  int first_col = common::clamp(px / 16, 0, cols_ - 1);
  int first_row = common::clamp(py / 16, 0, rows_ - 1);
  int last_col = common::clamp((px + w - 1) / 16, 0, cols_ - 1);
  int last_row = common::clamp((py + h - 1) / 16, 0, rows_ - 1);
  common::Q16 min_sigma = common::kQ16One;
  for (int row = first_row; row <= last_row; ++row) {
    for (int col = first_col; col <= last_col; ++col) {
      min_sigma = std::min(min_sigma, at(col, row));
    }
  }
  return min_sigma;
}

void CorrectnessMatrix::reset() {
  std::fill(sigma_.begin(), sigma_.end(), common::kQ16One);
}

double CorrectnessMatrix::average() const {
  double sum = 0.0;
  for (common::Q16 s : sigma_) sum += common::q16_to_double(s);
  return sum / static_cast<double>(sigma_.size());
}

int CorrectnessMatrix::count_below(common::Q16 threshold) const {
  int count = 0;
  for (common::Q16 s : sigma_) {
    if (s < threshold) ++count;
  }
  return count;
}

}  // namespace pbpair::core
