// PBPAIR — Probability Based Power Aware Intra Refresh (paper §3).
//
// The scheme plugs into the encoder through the RefreshPolicy hooks:
//
//  1. Encoding-mode selection BEFORE motion estimation (§3.1.1): an MB
//     whose probability of correctness σ^{k-1} has decayed below the
//     user-set Intra_Th is coded intra and its motion estimation is
//     skipped outright. This early decision is PBPAIR's energy lever — ME
//     is the dominant encoder cost — and simultaneously its resilience
//     lever, since intra coding stops error propagation.
//
//  2. Probability-aware motion estimation (§3.1.2, Fig. 3): inter MBs pick
//     their vector by cost SAD(v) + λ·(1 − σ_min(reference region of v)),
//     so a low-SAD candidate inside likely-damaged reference area loses to
//     a slightly-worse candidate from trustworthy area. (The paper defers
//     the exact formula to tech report [15], which is not public; this
//     linear-penalty form matches the stated intent — see DESIGN.md §2.)
//
//  3. Correctness update AFTER the frame (§3.1.3):
//       inter: σ^k = (1−α)·min(σ^{k-1} of related MBs) + α·sim·σ^{k-1}  (1)
//       intra: σ^k = (1−α)·1 + α·sim·σ^{k-1}                            (2)
//     where α is the packet-loss rate, "related MBs" are the MBs the
//     chosen vector predicts from, and sim is the concealment-dependent
//     similarity factor (core/similarity.h). Skipped MBs are inter with a
//     zero vector. All arithmetic is Q16 fixed point.
#pragma once

#include <memory>

#include "codec/refresh_policy.h"
#include "common/fixed.h"
#include "core/correctness_matrix.h"
#include "core/similarity.h"

namespace pbpair::core {

struct PbpairConfig {
  /// User expectation of error-resiliency level, in [0,1]. 0 disables
  /// refresh entirely (pure compression efficiency); 1 forces every MB
  /// intra (maximum robustness). §3.1 / §4.3.
  double intra_th = 0.85;

  /// Packet loss rate α the probability model assumes. In a live system
  /// this comes from receiver feedback (see set_plr / PowerAwareController).
  double plr = 0.10;

  /// λ of the ME penalty: extra cost (SAD scale) charged when predicting
  /// from a region with σ_min = 0; scales linearly in (1 − σ_min). The
  /// default penalizes a fully-suspect reference about as much as one
  /// quantizer step of extra distortion on a 16x16 block.
  std::int64_t me_penalty_scale = 2048;

  /// Ablation switch: disable the §3.1.2 ME term (mode selection only).
  bool use_me_penalty = true;

  /// Concealment-dependent similarity factor; null selects the paper's
  /// copy-concealment model.
  std::shared_ptr<const SimilarityModel> similarity;
};

class PbpairPolicy final : public codec::RefreshPolicy {
 public:
  PbpairPolicy(int mb_cols, int mb_rows, const PbpairConfig& config);

  const char* name() const override { return "PBPAIR"; }

  bool force_intra_pre_me(int frame_index, int mb_x, int mb_y) override;
  std::int64_t me_penalty(int mb_x, int mb_y,
                          codec::MotionVector mv) const override;
  bool has_me_penalty() const override;
  void on_frame_encoded(const codec::FrameEncodeInfo& info) override;
  void reset() override;

  /// Live parameter updates (network feedback / power-aware adaptation,
  /// §3.2). Values are clamped to their valid ranges.
  void set_intra_th(double intra_th);
  void set_plr(double plr);
  double intra_th() const { return common::q16_to_double(intra_th_q16_); }
  double plr() const { return common::q16_to_double(alpha_q16_); }

  /// The model state, exposed for tests, telemetry, and the adaptation
  /// controller's resiliency estimate.
  const CorrectnessMatrix& matrix() const { return matrix_; }

 private:
  PbpairConfig config_;
  common::Q16 intra_th_q16_;
  common::Q16 alpha_q16_;
  std::shared_ptr<const SimilarityModel> similarity_;
  CorrectnessMatrix matrix_;  // C^{k-1} during frame k's decisions
};

}  // namespace pbpair::core
