// Operating-point exploration (the paper's design-space pitch).
//
// "Our approach allows system designers to evaluate various operating
// points in terms of error resilient level and energy consumption over a
// wide range of system operating conditions" (abstract). This module turns
// that sentence into an API: sweep (Intra_Th, PLR) through the full
// pipeline, collect (resilience, quality, bit rate, energy) per point, and
// mark the Pareto-efficient set under a chosen objective pair.
#pragma once

#include <functional>
#include <vector>

namespace pbpair::core {

/// One evaluated operating point.
struct OperatingPoint {
  double intra_th = 0.0;
  double plr = 0.0;

  // Measured outcomes (filled by the evaluator).
  double avg_psnr_db = 0.0;
  double bad_pixels_m = 0.0;      // millions, lower is better
  double size_kb = 0.0;           // encoded bitstream
  double encode_energy_j = 0.0;
  double total_energy_j = 0.0;    // encode + transmit
  double intra_mbs_per_frame = 0.0;

  bool pareto_efficient = false;  // set by mark_pareto_frontier
};

/// Evaluator callback: fills the measured fields of a point in place.
/// (The sim layer provides one that runs the full pipeline; tests inject
/// synthetic evaluators.)
using PointEvaluator = std::function<void(OperatingPoint&)>;

/// Evaluates the cross product of thresholds x loss rates.
std::vector<OperatingPoint> explore_operating_points(
    const std::vector<double>& intra_ths, const std::vector<double>& plrs,
    const PointEvaluator& evaluate);

/// Marks the points that are Pareto-efficient for (maximize quality,
/// minimize cost), where quality and cost are extracted by the accessors.
/// A point is dominated if another point has >= quality and <= cost with
/// at least one strict inequality. Returns the efficient count.
int mark_pareto_frontier(
    std::vector<OperatingPoint>& points,
    const std::function<double(const OperatingPoint&)>& quality,
    const std::function<double(const OperatingPoint&)>& cost);

}  // namespace pbpair::core
