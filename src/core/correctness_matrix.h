// The probability-of-correctness matrix C^k (paper §3.1).
//
// One Q16 probability σ_{i,j} per macroblock, modeling how likely the
// decoder's copy of that MB is correct given the packet-loss rate and the
// prediction structure used so far. For QCIF this is the paper's 9x11
// matrix; the implementation is sized from the frame geometry. Everything
// is fixed-point (Q16) — see common/fixed.h.
#pragma once

#include <vector>

#include "common/check.h"
#include "common/fixed.h"

namespace pbpair::core {

class CorrectnessMatrix {
 public:
  CorrectnessMatrix(int mb_cols, int mb_rows)
      : cols_(mb_cols),
        rows_(mb_rows),
        sigma_(static_cast<std::size_t>(mb_cols) * mb_rows,
               common::kQ16One) {
    PB_CHECK(mb_cols > 0 && mb_rows > 0);
  }

  int cols() const { return cols_; }
  int rows() const { return rows_; }

  common::Q16 at(int mb_x, int mb_y) const {
    PB_DCHECK(mb_x >= 0 && mb_x < cols_ && mb_y >= 0 && mb_y < rows_);
    return sigma_[static_cast<std::size_t>(mb_y) * cols_ + mb_x];
  }
  void set(int mb_x, int mb_y, common::Q16 value) {
    PB_DCHECK(mb_x >= 0 && mb_x < cols_ && mb_y >= 0 && mb_y < rows_);
    PB_DCHECK(value <= common::kQ16One);
    sigma_[static_cast<std::size_t>(mb_y) * cols_ + mb_x] = value;
  }

  /// min(σ of related MBs): minimum σ over the macroblocks overlapped by
  /// the w x h luma region whose top-left corner is at pixel (px, py)
  /// (17-wide/tall for half-pel vectors, whose interpolation reads one
  /// extra row/column). This is the "related MBs" term of Formula (1) — a
  /// motion-compensated prediction is only as trustworthy as the least
  /// trustworthy MB it touches.
  common::Q16 min_over_region(int px, int py, int w = 16, int h = 16) const;

  /// Resets every entry to 1.0 ("start from an error-free image frame").
  void reset();

  /// Average probability over all MBs (resiliency telemetry, in [0,1]).
  double average() const;

  /// Number of MBs with σ below `threshold`.
  int count_below(common::Q16 threshold) const;

 private:
  int cols_;
  int rows_;
  std::vector<common::Q16> sigma_;
};

}  // namespace pbpair::core
