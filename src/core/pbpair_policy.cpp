#include "core/pbpair_policy.h"

#include "common/math_util.h"

namespace pbpair::core {

using common::kQ16One;
using common::Q16;

PbpairPolicy::PbpairPolicy(int mb_cols, int mb_rows,
                           const PbpairConfig& config)
    : config_(config),
      intra_th_q16_(common::q16_from_double(config.intra_th)),
      alpha_q16_(common::q16_from_double(config.plr)),
      similarity_(config.similarity
                      ? config.similarity
                      : std::make_shared<const CopyConcealmentSimilarity>()),
      matrix_(mb_cols, mb_rows) {}

void PbpairPolicy::reset() { matrix_.reset(); }

void PbpairPolicy::set_intra_th(double intra_th) {
  intra_th_q16_ = common::q16_from_double(intra_th);
}

void PbpairPolicy::set_plr(double plr) {
  alpha_q16_ = common::q16_from_double(plr);
}

bool PbpairPolicy::force_intra_pre_me(int frame_index, int mb_x, int mb_y) {
  (void)frame_index;
  // The paper's Fig. 4: σ^{k-1} < Intra_Th ⇒ intra, no motion estimation.
  return matrix_.at(mb_x, mb_y) < intra_th_q16_;
}

bool PbpairPolicy::has_me_penalty() const {
  return config_.use_me_penalty && config_.me_penalty_scale > 0;
}

std::int64_t PbpairPolicy::me_penalty(int mb_x, int mb_y,
                                      codec::MotionVector mv) const {
  // penalty(v) = λ · (1 − σ_min(reference region of v)); mv is half-pel.
  Q16 sigma_min = matrix_.min_over_region(
      mb_x * 16 + codec::halfpel_floor(mv.x),
      mb_y * 16 + codec::halfpel_floor(mv.y), codec::halfpel_span(mv.x),
      codec::halfpel_span(mv.y));
  Q16 distrust = common::q16_complement(sigma_min);
  return (config_.me_penalty_scale * static_cast<std::int64_t>(distrust)) >>
         16;
}

void PbpairPolicy::on_frame_encoded(const codec::FrameEncodeInfo& info) {
  PB_CHECK(info.mb_records != nullptr && info.original != nullptr &&
           info.ops != nullptr);
  const Q16 alpha = alpha_q16_;
  const Q16 not_alpha = common::q16_complement(alpha);

  // C^k is computed from C^{k-1}; Formula (1)'s min() reads the OLD matrix,
  // so build the new values into a copy before swapping.
  CorrectnessMatrix next = matrix_;
  for (int my = 0; my < info.mb_rows; ++my) {
    for (int mx = 0; mx < info.mb_cols; ++mx) {
      const codec::MbEncodeRecord& record =
          (*info.mb_records)[static_cast<std::size_t>(my) * info.mb_cols + mx];
      const Q16 sigma_prev = matrix_.at(mx, my);
      const Q16 sim = similarity_->similarity_with_hint(
          *info.original, info.prev_original, mx, my, record.sad_zero,
          *info.ops);
      // α · sim · σ^{k-1}: the erroneous-transmission branch, weighted by
      // how well copy concealment would stand in for the lost data.
      const Q16 loss_term = common::q16_mul(alpha, common::q16_mul(sim, sigma_prev));

      Q16 clean_term;
      if (record.mode == codec::MbMode::kIntra) {
        // Formula (2): an intra MB arriving intact is correct by itself.
        clean_term = not_alpha;  // (1-α) · 1
      } else {
        // Formula (1): an inter/skip MB arriving intact is only as correct
        // as the region it predicts from (skip predicts from itself).
        const codec::MotionVector mv =
            record.mode == codec::MbMode::kInter ? record.mv
                                                 : codec::MotionVector{};
        const Q16 sigma_related = matrix_.min_over_region(
            mx * 16 + codec::halfpel_floor(mv.x),
            my * 16 + codec::halfpel_floor(mv.y), codec::halfpel_span(mv.x),
            codec::halfpel_span(mv.y));
        clean_term = common::q16_mul(not_alpha, sigma_related);
      }
      next.set(mx, my, common::q16_add_sat(clean_term, loss_term));
    }
  }
  matrix_ = next;
}

}  // namespace pbpair::core
