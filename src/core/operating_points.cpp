#include "core/operating_points.h"

#include "common/check.h"

namespace pbpair::core {

std::vector<OperatingPoint> explore_operating_points(
    const std::vector<double>& intra_ths, const std::vector<double>& plrs,
    const PointEvaluator& evaluate) {
  PB_CHECK(!intra_ths.empty() && !plrs.empty());
  PB_CHECK(static_cast<bool>(evaluate));
  std::vector<OperatingPoint> points;
  points.reserve(intra_ths.size() * plrs.size());
  for (double plr : plrs) {
    for (double th : intra_ths) {
      OperatingPoint point;
      point.intra_th = th;
      point.plr = plr;
      evaluate(point);
      points.push_back(point);
    }
  }
  return points;
}

int mark_pareto_frontier(
    std::vector<OperatingPoint>& points,
    const std::function<double(const OperatingPoint&)>& quality,
    const std::function<double(const OperatingPoint&)>& cost) {
  int efficient = 0;
  for (OperatingPoint& candidate : points) {
    bool dominated = false;
    for (const OperatingPoint& other : points) {
      if (&other == &candidate) continue;
      bool geq_quality = quality(other) >= quality(candidate);
      bool leq_cost = cost(other) <= cost(candidate);
      bool strictly_better = quality(other) > quality(candidate) ||
                             cost(other) < cost(candidate);
      if (geq_quality && leq_cost && strictly_better) {
        dominated = true;
        break;
      }
    }
    candidate.pareto_efficient = !dominated;
    if (!dominated) ++efficient;
  }
  return efficient;
}

}  // namespace pbpair::core
