#include "core/similarity.h"

#include "codec/sad.h"
#include "common/check.h"

namespace pbpair::core {

CopyConcealmentSimilarity::CopyConcealmentSimilarity(int full_scale_diff)
    : full_scale_diff_(full_scale_diff) {
  PB_CHECK(full_scale_diff >= 1 && full_scale_diff <= 255);
}

common::Q16 CopyConcealmentSimilarity::from_sad(std::int64_t sad) const {
  std::uint64_t scale = 256ull * static_cast<std::uint64_t>(full_scale_diff_);
  if (static_cast<std::uint64_t>(sad) >= scale) return 0;
  return common::kQ16One -
         common::q16_ratio_clamped(static_cast<std::uint64_t>(sad), scale);
}

common::Q16 CopyConcealmentSimilarity::similarity(const video::YuvFrame& cur,
                                                  const video::YuvFrame* prev,
                                                  int mb_x, int mb_y,
                                                  energy::OpCounters& ops) const {
  if (prev == nullptr) return common::kQ16One;
  std::int64_t sad = codec::sad_16x16(cur.y(), mb_x * 16, mb_y * 16, prev->y(),
                                      mb_x * 16, mb_y * 16, ops);
  return from_sad(sad);
}

common::Q16 CopyConcealmentSimilarity::similarity_with_hint(
    const video::YuvFrame& cur, const video::YuvFrame* prev, int mb_x,
    int mb_y, std::int64_t sad_zero_hint, energy::OpCounters& ops) const {
  // NOTE: the hint is the SAD against the previous *reconstructed* frame
  // (the ME reference), while the pure path compares originals. At
  // encoding quality the difference is a few gray levels per pixel --
  // negligible against full_scale_diff_ -- and reusing it makes the
  // probability update free for searched MBs (paper counts ME as the
  // dominant cost precisely because everything else reuses its work).
  if (sad_zero_hint >= 0) return from_sad(sad_zero_hint);
  return similarity(cur, prev, mb_x, mb_y, ops);
}

}  // namespace pbpair::core
