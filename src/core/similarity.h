// Similarity factor models (paper §3.1.3).
//
// The α-weighted term of Formulas (1) and (2) multiplies σ^{k-1} by a
// "similarity factor between m^k and m^{k-1}" that depends on the error
// concealment the decoder uses: if a lost MB is concealed by copying the
// co-located MB of the previous frame, the concealment is good exactly when
// the two MBs are similar — so the factor is derived from their SAD. The
// paper notes other concealment schemes plug in by swapping this factor;
// that is the SimilarityModel interface.
#pragma once

#include <cstdint>
#include <memory>

#include "common/fixed.h"
#include "energy/op_counters.h"
#include "video/frame.h"

namespace pbpair::core {

class SimilarityModel {
 public:
  virtual ~SimilarityModel() = default;

  virtual const char* name() const = 0;

  /// Similarity (Q16, [0,1]) between MB (mb_x, mb_y) of `cur` and the
  /// co-located MB of `prev`. `prev` may be null (no previous frame), in
  /// which case the model returns its no-reference default. Work done here
  /// is metered into `ops` — the paper counts the similarity computation
  /// as encoder-side cost.
  virtual common::Q16 similarity(const video::YuvFrame& cur,
                                 const video::YuvFrame* prev, int mb_x,
                                 int mb_y, energy::OpCounters& ops) const = 0;

  /// Like similarity(), but with the co-located SAD already known
  /// (`sad_zero_hint` >= 0): the encoder's motion search always evaluates
  /// the (0,0) candidate, so for searched MBs the factor comes for free.
  /// SAD-based models override this to skip the recomputation; the default
  /// ignores the hint.
  virtual common::Q16 similarity_with_hint(const video::YuvFrame& cur,
                                           const video::YuvFrame* prev,
                                           int mb_x, int mb_y,
                                           std::int64_t sad_zero_hint,
                                           energy::OpCounters& ops) const {
    (void)sad_zero_hint;
    return similarity(cur, prev, mb_x, mb_y, ops);
  }
};

/// Copy-from-previous concealment (the paper's §4.1 choice): similarity is
/// 1 - SAD/(256*full_scale_diff), floored at 0. `full_scale_diff` is the
/// mean per-pixel difference treated as "completely dissimilar".
class CopyConcealmentSimilarity final : public SimilarityModel {
 public:
  explicit CopyConcealmentSimilarity(int full_scale_diff = 48);

  const char* name() const override { return "copy-concealment"; }

  common::Q16 similarity(const video::YuvFrame& cur,
                         const video::YuvFrame* prev, int mb_x, int mb_y,
                         energy::OpCounters& ops) const override;

  common::Q16 similarity_with_hint(const video::YuvFrame& cur,
                                   const video::YuvFrame* prev, int mb_x,
                                   int mb_y, std::int64_t sad_zero_hint,
                                   energy::OpCounters& ops) const override;

  /// The SAD -> similarity mapping shared by both entry points.
  common::Q16 from_sad(std::int64_t sad) const;

 private:
  int full_scale_diff_;
};

/// The Formula (3) approximation: "no similarity between consecutive
/// frames" — the factor is always 0, so σ^k decays as (1-α)^k for an
/// all-inter sequence. Used as the cheap-compute ablation.
class NoSimilarity final : public SimilarityModel {
 public:
  const char* name() const override { return "none"; }

  common::Q16 similarity(const video::YuvFrame&, const video::YuvFrame*, int,
                         int, energy::OpCounters&) const override {
    return 0;
  }
};

/// Constant factor: models concealment whose quality does not depend on
/// content (e.g. freeze-to-gray gives a uniformly poor, fixed factor).
class ConstantSimilarity final : public SimilarityModel {
 public:
  explicit ConstantSimilarity(common::Q16 value) : value_(value) {}

  const char* name() const override { return "constant"; }

  common::Q16 similarity(const video::YuvFrame&, const video::YuvFrame*, int,
                         int, energy::OpCounters&) const override {
    return value_;
  }

 private:
  common::Q16 value_;
};

}  // namespace pbpair::core
