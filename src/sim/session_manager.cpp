#include "sim/session_manager.h"

#include <atomic>
#include <chrono>
#include <climits>
#include <cstdio>
#include <thread>

#include "common/check.h"
#include "common/mpmc_queue.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel_sweep.h"
#include "sim/report.h"

namespace pbpair::sim {
namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<StreamSession> build_session(const SessionSpec& spec,
                                             const std::string& label) {
  std::unique_ptr<net::LossModel> loss;
  if (spec.make_loss) loss = spec.make_loss();
  return std::make_unique<StreamSession>(spec.source, spec.scheme,
                                         std::move(loss), spec.config, label);
}

/// One worker's shard: two bounded MPMC queues of session slot indices
/// plus the live-session accounting the admission cap rides on. `active`
/// holds constructed sessions between slices, `pending` holds admitted
/// sessions not yet constructed. Both queues are sized to hold every
/// session pinned to the shard, so a self-requeue can never fail.
struct Shard {
  std::unique_ptr<common::MpmcQueue<std::uint32_t>> active;
  std::unique_ptr<common::MpmcQueue<std::uint32_t>> pending;
  /// Constructed-but-unfinished sessions pinned here (stealing executes
  /// elsewhere but the session still counts against its pinned shard).
  std::atomic<std::size_t> live{0};
  std::size_t live_cap = 0;  // 0 = uncapped
  obs::Histogram* frame_ns = nullptr;  // "sim.shard.<k>.frame_ns"
};

/// Reserves a live ticket on `shard` (respecting its cap) and pops one
/// pending slot. The ticket is taken FIRST so the cap is never exceeded,
/// and returned if the queue turned out to be empty.
bool take_pending(Shard& shard, std::uint32_t* slot) {
  for (;;) {
    std::size_t live = shard.live.load(std::memory_order_relaxed);
    if (shard.live_cap > 0 && live >= shard.live_cap) return false;
    if (shard.live.compare_exchange_weak(live, live + 1,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
  if (shard.pending->try_pop(slot)) return true;
  shard.live.fetch_sub(1, std::memory_order_relaxed);
  return false;
}

}  // namespace

SessionManager::SessionManager(std::vector<SessionSpec> specs)
    : specs_(std::move(specs)) {
  PB_CHECK(!specs_.empty());
}

std::string SessionManager::default_label(std::size_t index,
                                          std::size_t count) {
  int width = 1;
  for (std::size_t v = count > 0 ? count - 1 : 0; v >= 10; v /= 10) ++width;
  if (width < 3) width = 3;  // "s000": the historical floor
  char buf[32];
  std::snprintf(buf, sizeof(buf), "s%0*zu", width, index);
  return buf;
}

std::vector<PipelineResult> SessionManager::run(
    const SessionManagerOptions& options, AdmissionReport* admission_report) {
  const int threads =
      options.threads <= 0 ? sweep_thread_count() : options.threads;
  const std::size_t shard_count = static_cast<std::size_t>(threads);
  const int slice = options.frames_per_slice;
  std::vector<PipelineResult> results(specs_.size());
  PB_LOG_INFO("session manager: %zu sessions, %d shards, %s", specs_.size(),
              threads,
              slice <= 0 ? "throughput mode" : "serving mode");

  // --- admission: serial, in session-index order, before any work runs.
  // Pinning and every accept/queue/shed decision are a pure function of
  // (specs, config, health-registry state at entry), so the outcome is
  // identical at any thread count given the same shard count... pinning
  // depends on shard count, but per-session RESULTS never do.
  std::vector<std::string> labels(specs_.size());
  std::vector<std::size_t> pinned_shard(specs_.size(), 0);
  std::vector<std::size_t> pinned_depth(shard_count, 0);
  std::vector<std::vector<std::uint32_t>> assignments(shard_count);
  SessionAdmission admission(options.admission.value_or(AdmissionConfig{}));
  admission.sample_fleet();
  AdmissionReport report;
  report.decisions.resize(specs_.size(), AdmitDecision::kAccepted);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    labels[i] = specs_[i].label.empty()
                    ? default_label(i, specs_.size())
                    : specs_[i].label;
    const std::size_t shard = rendezvous_shard(labels[i], shard_count);
    pinned_shard[i] = shard;
    const AdmitDecision decision =
        options.admission.has_value()
            ? admission.admit(i, labels[i], specs_[i].sheddable, shard,
                              pinned_depth[shard])
            : AdmitDecision::kAccepted;
    report.decisions[i] = decision;
    if (decision == AdmitDecision::kShed) {
      ++report.shed;
      continue;  // results[i] stays default-constructed
    }
    decision == AdmitDecision::kQueued ? ++report.queued : ++report.accepted;
    ++pinned_depth[shard];
    assignments[shard].push_back(static_cast<std::uint32_t>(i));
  }
  if (report.shed > 0) {
    PB_LOG_INFO("admission: accepted %zu, queued %zu, shed %zu",
                report.accepted, report.queued, report.shed);
  }

  // --- shard setup. Queue capacity >= pinned count so requeues (active)
  // and the initial fill (pending) can never be rejected.
  const bool obs_on = obs::enabled();
  std::vector<Shard> shards(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    const std::size_t depth = assignments[k].size();
    shards[k].active =
        std::make_unique<common::MpmcQueue<std::uint32_t>>(depth + 1);
    shards[k].pending =
        std::make_unique<common::MpmcQueue<std::uint32_t>>(depth + 1);
    shards[k].live_cap =
        options.admission.has_value() ? admission.config().max_live_per_shard
                                      : 0;
    if (obs_on) {
      shards[k].frame_ns =
          &obs::histogram(format("sim.shard.%02zu.frame_ns", k));
    }
    for (const std::uint32_t slot : assignments[k]) {
      PB_CHECK(shards[k].pending->try_push(slot));
    }
  }

  // --- the engine. Sessions construct lazily on first execution, advance
  // `slice` frames per execution (to completion when slice <= 0), requeue
  // to their PINNED shard's active queue, and are destroyed the moment
  // their result is taken — releasing arena and codec state mid-run.
  std::vector<std::unique_ptr<StreamSession>> sessions(specs_.size());
  std::atomic<std::size_t> remaining{report.accepted + report.queued};

  auto execute = [&](std::size_t worker, std::uint32_t slot) {
    obs::ScopedSpan span(slice <= 0 ? "session.run" : "session.slice",
                         static_cast<std::int64_t>(slot), "session");
    std::unique_ptr<StreamSession>& session = sessions[slot];
    if (!session) session = build_session(specs_[slot], labels[slot]);
    int steps = slice <= 0 ? INT_MAX : slice;
    while (steps-- > 0 && !session->done()) {
      if (obs_on) {
        const Clock::time_point t0 = Clock::now();
        session->step();
        shards[worker].frame_ns->observe(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
      } else {
        session->step();
      }
    }
    if (session->done()) {
      results[slot] = session->take_result();
      session.reset();
      shards[pinned_shard[slot]].live.fetch_sub(1, std::memory_order_relaxed);
      PB_LOG_INFO("session %u finished: %zu frames, %.2f dB", slot,
                  results[slot].frames.size(), results[slot].avg_psnr_db);
      remaining.fetch_sub(1, std::memory_order_release);
    } else {
      PB_CHECK(shards[pinned_shard[slot]].active->try_push(slot));
    }
  };

  // Own active first (hot session, no build cost), then own pending
  // (gated by the live cap), then steal — actives before pendings, so a
  // drained shard helps finish in-flight work before materializing more.
  auto try_get = [&](std::size_t worker, std::uint32_t* slot) {
    if (shards[worker].active->try_pop(slot)) return true;
    if (take_pending(shards[worker], slot)) return true;
    for (std::size_t off = 1; off < shard_count; ++off) {
      const std::size_t j = (worker + off) % shard_count;
      if (shards[j].active->try_pop(slot)) return true;
    }
    for (std::size_t off = 1; off < shard_count; ++off) {
      const std::size_t j = (worker + off) % shard_count;
      if (take_pending(shards[j], slot)) return true;
    }
    return false;
  };

  auto worker_loop = [&](std::size_t worker) {
    std::uint32_t slot = 0;
    while (remaining.load(std::memory_order_acquire) > 0) {
      if (try_get(worker, &slot)) {
        execute(worker, slot);
      } else {
        // All queues momentarily empty but sessions are still in flight
        // on other workers; yield until one requeues or finishes.
        std::this_thread::yield();
      }
    }
  };

  if (shard_count == 1) {
    worker_loop(0);  // serial fast path: no thread spawn
  } else {
    std::vector<std::thread> workers;
    workers.reserve(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) {
      workers.emplace_back(worker_loop, k);
    }
    for (std::thread& t : workers) t.join();
  }

  if (admission_report != nullptr) *admission_report = std::move(report);
  return results;
}

SessionAggregate SessionManager::aggregate(
    const std::vector<PipelineResult>& results) {
  SessionAggregate agg;
  for (const PipelineResult& r : results) {
    if (r.frames.empty()) continue;  // shed at admission: no contribution
    ++agg.sessions;
    agg.total_frames += r.frames.size();
    agg.total_bytes += r.total_bytes;
    agg.total_bad_pixels += r.total_bad_pixels;
    agg.total_intra_mbs += r.total_intra_mbs;
    agg.concealed_mbs += r.concealed_mbs;
    agg.packets_sent += r.channel.packets_sent;
    agg.packets_dropped += r.channel.packets_dropped;
    agg.mean_psnr_db += r.avg_psnr_db;
    agg.encode_energy_j += r.encode_energy.total_j();
    agg.tx_energy_j += r.tx_energy_j;
  }
  if (agg.sessions > 0) {
    agg.mean_psnr_db /= static_cast<double>(agg.sessions);
  }
  return agg;
}

std::string SessionAggregate::to_json() const {
  // sim::format grows to fit (the old fixed 512-byte snprintf buffer
  // silently truncated — invalid JSON — once counters went 10k-session
  // large).
  return format(
      "{\"sessions\": %llu, \"total_frames\": %llu, \"total_bytes\": %llu, "
      "\"total_bad_pixels\": %llu, \"total_intra_mbs\": %llu, "
      "\"concealed_mbs\": %llu, \"packets_sent\": %llu, "
      "\"packets_dropped\": %llu, \"mean_psnr_db\": %.6f, "
      "\"encode_energy_j\": %.6f, \"tx_energy_j\": %.6f}",
      static_cast<unsigned long long>(sessions),
      static_cast<unsigned long long>(total_frames),
      static_cast<unsigned long long>(total_bytes),
      static_cast<unsigned long long>(total_bad_pixels),
      static_cast<unsigned long long>(total_intra_mbs),
      static_cast<unsigned long long>(concealed_mbs),
      static_cast<unsigned long long>(packets_sent),
      static_cast<unsigned long long>(packets_dropped), mean_psnr_db,
      encode_energy_j, tx_energy_j);
}

}  // namespace pbpair::sim
