#include "sim/session_manager.h"

#include <cstdio>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel_sweep.h"

namespace pbpair::sim {
namespace {

std::string default_label(std::size_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "s%03zu", index);
  return buf;
}

std::unique_ptr<StreamSession> build_session(const SessionSpec& spec,
                                             std::size_t index) {
  std::unique_ptr<net::LossModel> loss;
  if (spec.make_loss) loss = spec.make_loss();
  return std::make_unique<StreamSession>(
      spec.source, spec.scheme, std::move(loss), spec.config,
      spec.label.empty() ? default_label(index) : spec.label);
}

}  // namespace

SessionManager::SessionManager(std::vector<SessionSpec> specs)
    : specs_(std::move(specs)) {
  PB_CHECK(!specs_.empty());
}

std::vector<PipelineResult> SessionManager::run(
    const SessionManagerOptions& options) {
  const int threads =
      options.threads <= 0 ? sweep_thread_count() : options.threads;
  std::vector<PipelineResult> results(specs_.size());
  PB_LOG_INFO("session manager: %zu sessions, %d threads, %s", specs_.size(),
              threads,
              options.frames_per_slice <= 0 ? "throughput mode"
                                            : "serving mode");

  if (options.frames_per_slice <= 0) {
    // Throughput mode: one task per session, fanned out like a sweep.
    common::parallel_for(
        specs_.size(), threads, [this, &results](std::size_t i) {
          obs::ScopedSpan span("session.run", static_cast<std::int64_t>(i),
                               "session");
          std::unique_ptr<StreamSession> session =
              build_session(specs_[i], i);
          session->run_to_end();
          results[i] = session->take_result();
          PB_LOG_INFO("session %zu finished: %zu frames, %.2f dB", i,
                      results[i].frames.size(), results[i].avg_psnr_db);
        });
    return results;
  }

  // Serving mode: every session advances `frames_per_slice` frames per
  // scheduled task and requeues itself, so all sessions progress
  // concurrently regardless of the worker count. Sessions are built up
  // front (in index order) and each is only ever touched by the one task
  // holding it, so no session-level locking is needed.
  std::vector<std::unique_ptr<StreamSession>> sessions;
  sessions.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    sessions.push_back(build_session(specs_[i], i));
  }

  common::ThreadPool pool(threads);
  const int slice = options.frames_per_slice;
  std::function<void(std::size_t)> advance = [&](std::size_t i) {
    obs::ScopedSpan span("session.slice", static_cast<std::int64_t>(i),
                         "session");
    StreamSession& session = *sessions[i];
    for (int k = 0; k < slice && !session.done(); ++k) session.step();
    if (session.done()) {
      results[i] = session.take_result();
      PB_LOG_INFO("session %zu finished: %zu frames, %.2f dB", i,
                  results[i].frames.size(), results[i].avg_psnr_db);
    } else {
      pool.submit([&advance, i] { advance(i); });
    }
  };
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    pool.submit([&advance, i] { advance(i); });
  }
  pool.wait_all();
  return results;
}

SessionAggregate SessionManager::aggregate(
    const std::vector<PipelineResult>& results) {
  SessionAggregate agg;
  agg.sessions = results.size();
  for (const PipelineResult& r : results) {
    agg.total_frames += r.frames.size();
    agg.total_bytes += r.total_bytes;
    agg.total_bad_pixels += r.total_bad_pixels;
    agg.total_intra_mbs += r.total_intra_mbs;
    agg.concealed_mbs += r.concealed_mbs;
    agg.packets_sent += r.channel.packets_sent;
    agg.packets_dropped += r.channel.packets_dropped;
    agg.mean_psnr_db += r.avg_psnr_db;
    agg.encode_energy_j += r.encode_energy.total_j();
    agg.tx_energy_j += r.tx_energy_j;
  }
  if (!results.empty()) {
    agg.mean_psnr_db /= static_cast<double>(results.size());
  }
  return agg;
}

std::string SessionAggregate::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"sessions\": %llu, \"total_frames\": %llu, \"total_bytes\": %llu, "
      "\"total_bad_pixels\": %llu, \"total_intra_mbs\": %llu, "
      "\"concealed_mbs\": %llu, \"packets_sent\": %llu, "
      "\"packets_dropped\": %llu, \"mean_psnr_db\": %.6f, "
      "\"encode_energy_j\": %.6f, \"tx_energy_j\": %.6f}",
      static_cast<unsigned long long>(sessions),
      static_cast<unsigned long long>(total_frames),
      static_cast<unsigned long long>(total_bytes),
      static_cast<unsigned long long>(total_bad_pixels),
      static_cast<unsigned long long>(total_intra_mbs),
      static_cast<unsigned long long>(concealed_mbs),
      static_cast<unsigned long long>(packets_sent),
      static_cast<unsigned long long>(packets_dropped), mean_psnr_db,
      encode_energy_j, tx_energy_j);
  return buf;
}

}  // namespace pbpair::sim
