// Multi-session serving: N concurrent StreamSessions over the shared
// thread pool.
//
// Each SessionSpec is self-contained — its own frame source, scheme,
// config, deterministically seeded loss-model factory, and obs metrics
// label — so sessions never share mutable state and the results are
// byte-identical at any worker count and any scheduling interleaving
// (tests/test_session_manager.cpp asserts 1/2/8 threads and several
// frames_per_slice values produce the same serialized reports).
//
// Two scheduling modes:
//  - frames_per_slice == 0: each session runs to completion as one task
//    (throughput mode, minimal scheduling overhead);
//  - frames_per_slice > 0: sessions advance K frames per task and requeue
//    themselves, so many more sessions than workers make progress
//    concurrently — the serving pattern a latency-bound deployment needs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/loss_model.h"
#include "sim/session.h"

namespace pbpair::sim {

/// Everything one hosted session needs. `make_loss` (nullable) is invoked
/// inside the worker so each session owns a freshly seeded model.
struct SessionSpec {
  SchemeSpec scheme;
  PipelineConfig config;
  FrameSource source;
  std::function<std::unique_ptr<net::LossModel>()> make_loss;
  /// obs metrics label ("session.<label>.*"); empty selects "s<index>".
  std::string label;
};

struct SessionManagerOptions {
  /// Worker threads; <= 0 selects sweep_thread_count().
  int threads = 0;
  /// Frames per scheduled slice; 0 runs each session to completion in one
  /// task. Results are identical either way.
  int frames_per_slice = 0;
};

/// Deterministic aggregate over a multi-session run, computed in session
/// order (never scheduling order).
struct SessionAggregate {
  std::uint64_t sessions = 0;
  std::uint64_t total_frames = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_bad_pixels = 0;
  std::uint64_t total_intra_mbs = 0;
  std::uint64_t concealed_mbs = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  double mean_psnr_db = 0.0;     // mean of per-session averages
  double encode_energy_j = 0.0;  // summed over sessions
  double tx_energy_j = 0.0;

  /// One-line JSON rendering with fixed field order and %.6f doubles —
  /// byte-identical for byte-identical results.
  std::string to_json() const;
};

class SessionManager {
 public:
  explicit SessionManager(std::vector<SessionSpec> specs);

  std::size_t session_count() const { return specs_.size(); }

  /// Runs every session to completion; results[i] belongs to specs[i].
  std::vector<PipelineResult> run(const SessionManagerOptions& options = {});

  /// Aggregates results in index order.
  static SessionAggregate aggregate(const std::vector<PipelineResult>& results);

 private:
  std::vector<SessionSpec> specs_;
};

}  // namespace pbpair::sim
