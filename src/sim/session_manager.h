// Multi-session serving: N concurrent StreamSessions over per-core shards.
//
// Each SessionSpec is self-contained — its own frame source, scheme,
// config, deterministically seeded loss-model factory, and obs metrics
// label — so sessions never share mutable state and the results are
// byte-identical at any worker count and any scheduling interleaving
// (tests/test_session_manager.cpp asserts 1/2/8 threads and several
// frames_per_slice values produce the same serialized reports;
// tests/test_sharded_serving.cpp stresses 512+ sessions at slice 1).
//
// Engine shape (DESIGN.md §15): one shard per worker thread, each owning
// two bounded lock-free MPMC queues (common/mpmc_queue.h) — `pending`
// holds admitted-but-not-yet-constructed session slots, `active` holds
// constructed sessions between slices. Sessions are pinned to a shard at
// admit time by rendezvous hash on label (sim/admission.h), construct
// lazily on first execution, requeue to their own shard after each slice,
// and are destroyed the moment they finish (arena and codec state are
// released mid-run, which is what lets a 10k-session fleet run in the
// memory of `threads * max_live_per_shard` sessions). A worker drains its
// own shard first and steals from a neighbour only when its queues are
// empty. Determinism survives all of it because the queues order
// *scheduling*, never results: each session's frame sequence is a pure
// function of its spec.
//
// Two scheduling modes:
//  - frames_per_slice == 0: each session runs to completion on its first
//    execution (throughput mode, minimal scheduling overhead);
//  - frames_per_slice > 0: sessions advance K frames per execution and
//    requeue, so many more sessions than workers make progress
//    concurrently — the serving pattern a latency-bound deployment needs.
//
// Admission control (SessionManagerOptions::admission) gates entry:
// sheddable sessions are dropped under fleet health pressure or shard
// depth, and the per-shard live cap turns "10k sessions admitted" into a
// bounded-memory trickle. See sim/admission.h for the policy inputs.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/loss_model.h"
#include "sim/admission.h"
#include "sim/session.h"

namespace pbpair::sim {

/// Everything one hosted session needs. `make_loss` (nullable) is invoked
/// inside the worker so each session owns a freshly seeded model.
struct SessionSpec {
  SchemeSpec scheme;
  PipelineConfig config;
  FrameSource source;
  std::function<std::unique_ptr<net::LossModel>()> make_loss;
  /// obs metrics label ("session.<label>.*"); empty selects
  /// SessionManager::default_label(index, fleet size).
  std::string label;
  /// DEGRADED-eligible: admission control may shed this session under
  /// fleet pressure instead of serving it. Never shed when false.
  bool sheddable = false;
};

struct SessionManagerOptions {
  /// Worker threads == shards; <= 0 selects sweep_thread_count().
  int threads = 0;
  /// Frames per scheduled slice; 0 runs each session to completion in one
  /// execution. Results are identical either way.
  int frames_per_slice = 0;
  /// Admission policy; unset admits every session unconditionally (and
  /// leaves live-session construction uncapped), preserving the
  /// pre-admission behaviour bit for bit.
  std::optional<AdmissionConfig> admission;
};

/// Deterministic aggregate over a multi-session run, computed in session
/// order (never scheduling order). Shed sessions (empty results) are
/// excluded from every total.
struct SessionAggregate {
  std::uint64_t sessions = 0;
  std::uint64_t total_frames = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_bad_pixels = 0;
  std::uint64_t total_intra_mbs = 0;
  std::uint64_t concealed_mbs = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_dropped = 0;
  double mean_psnr_db = 0.0;     // mean of per-session averages
  double encode_energy_j = 0.0;  // summed over sessions
  double tx_energy_j = 0.0;

  /// One-line JSON rendering with fixed field order and %.6f doubles —
  /// byte-identical for byte-identical results, with no length ceiling
  /// (10k-session counters used to truncate the old fixed buffer).
  std::string to_json() const;
};

class SessionManager {
 public:
  explicit SessionManager(std::vector<SessionSpec> specs);

  std::size_t session_count() const { return specs_.size(); }

  /// Label an unlabeled spec at `index` gets in a fleet of `count`:
  /// "s<index>" zero-padded to max(3, digits(count-1)) digits, so
  /// lexicographic label order equals numeric session order at any fleet
  /// size (a 10k fleet pads to 4+ digits; "s999" < "s1000" would not
  /// sort).
  static std::string default_label(std::size_t index, std::size_t count);

  /// Runs every admitted session to completion; results[i] belongs to
  /// specs[i] (a shed session leaves a default-constructed result). When
  /// `admission_report` is non-null it receives the per-spec decisions.
  std::vector<PipelineResult> run(const SessionManagerOptions& options = {},
                                  AdmissionReport* admission_report = nullptr);

  /// Aggregates results in index order, skipping shed (empty) entries.
  static SessionAggregate aggregate(const std::vector<PipelineResult>& results);

 private:
  std::vector<SessionSpec> specs_;
};

}  // namespace pbpair::sim
