#include "sim/session.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "net/loss_model.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::sim {
namespace {

// One FrameTrace as a JSONL row. Deterministic fields only: no clocks, no
// pointers — reruns with the same seed produce a byte-identical file. The
// FEC and wire fields appear only when the session has those stages, so a
// FEC-off, CRC-off run stays byte-identical to a build without either.
void append_frame_trace_jsonl(std::ofstream& out, const FrameTrace& trace,
                              bool fec, bool wire) {
  char psnr[32];
  std::snprintf(psnr, sizeof(psnr), "%.4f", trace.psnr_db);
  out << "{\"frame\":" << trace.index << ",\"type\":\""
      << (trace.type == codec::FrameType::kIntra ? "I" : "P")
      << "\",\"qp\":" << trace.qp << ",\"bytes\":" << trace.bytes
      << ",\"intra_mbs\":" << trace.intra_mbs
      << ",\"pre_me_intra_mbs\":" << trace.pre_me_intra_mbs
      << ",\"lost\":" << (trace.lost ? "true" : "false")
      << ",\"psnr_db\":" << psnr << ",\"bad_pixels\":" << trace.bad_pixels;
  if (fec) {
    out << ",\"fec_repair\":" << trace.fec_repair_sent
        << ",\"fec_recovered\":" << trace.fec_recovered
        << ",\"fec_unrecoverable\":" << trace.fec_unrecoverable_windows;
  }
  if (wire) {
    out << ",\"crc_corrupted\":" << trace.crc_corrupted;
  }
  out << "}\n";
}

}  // namespace

StreamSession::StreamSession(FrameSource source, const SchemeSpec& scheme,
                             net::LossModel* loss,
                             const PipelineConfig& config, std::string label)
    : scheme_(scheme),
      config_(config),
      source_(std::move(source)),
      label_(std::move(label)) {
  if (loss == nullptr) {
    no_loss_ = std::make_unique<net::NoLoss>();
    loss = no_loss_.get();
  }
  channel_ = std::make_unique<net::Channel>(loss);
  init();
}

StreamSession::StreamSession(FrameSource source, const SchemeSpec& scheme,
                             std::unique_ptr<net::LossModel> loss,
                             const PipelineConfig& config, std::string label)
    : scheme_(scheme),
      config_(config),
      source_(std::move(source)),
      label_(std::move(label)),
      owned_loss_(std::move(loss)) {
  net::LossModel* model = owned_loss_.get();
  if (model == nullptr) {
    no_loss_ = std::make_unique<net::NoLoss>();
    model = no_loss_.get();
  }
  channel_ = std::make_unique<net::Channel>(model);
  init();
}

StreamSession::~StreamSession() {
  if (frame_trace_out_ != nullptr && frame_trace_out_->is_open()) {
    frame_trace_out_->flush();
    frame_trace_out_->close();
  }
}

void StreamSession::init() {
  PB_CHECK(config_.frames > 0);
  const int mb_cols = config_.encoder.width / 16;
  const int mb_rows = config_.encoder.height / 16;
  mbs_per_frame_ = mb_cols * mb_rows;
  if (!label_.empty()) {
    flight_ = obs::FlightRegistry::global().create(label_);
  }
  if (config_.health.has_value()) {
    obs::HealthConfig health_config = *config_.health;
    if (flight_ != nullptr) {
      // Wrap (don't replace) any user transition hook: record the
      // transition in the flight ring and, when the session goes
      // CRITICAL with a dump dir configured, write the post-mortem
      // JSONL right at the moment of failure. Captures the registry-
      // owned recorder pointer, never `this` — sessions stay movable.
      obs::FlightRecorder* flight = flight_;
      auto user_hook = health_config.on_transition;
      health_config.on_transition =
          [flight, user_hook](const std::string& label, obs::HealthState from,
                              obs::HealthState to,
                              const obs::HealthSnapshot& snap) {
            flight->record(obs::FlightEvent::kHealthTransition,
                           static_cast<std::int32_t>(snap.frames),
                           static_cast<std::int64_t>(from),
                           static_cast<std::int64_t>(to));
            if (to == obs::HealthState::kCritical) {
              const std::string dir = obs::FlightRegistry::global().dump_dir();
              if (!dir.empty()) {
                const std::string path = dir + "/flight_" + label + ".jsonl";
                if (flight->dump_to_path(path)) {
                  PB_LOG_WARN("session %s went CRITICAL; flight dump at %s",
                              label.c_str(), path.c_str());
                } else {
                  PB_LOG_WARN("session %s went CRITICAL; flight dump to %s "
                              "failed",
                              label.c_str(), path.c_str());
                }
              }
            }
            if (user_hook) user_hook(label, from, to, snap);
          };
    }
    health_ = obs::HealthRegistry::global().create(
        label_.empty() ? "default" : label_, health_config);
  }

  policy_ = make_policy(scheme_, mb_cols, mb_rows);
  encoder_ = std::make_unique<codec::Encoder>(config_.encoder, policy_.get());
  decoder_ = std::make_unique<codec::Decoder>(codec::DecoderConfig{
      config_.encoder.width, config_.encoder.height, config_.concealment});
  // One arena per session: payload refs never cross sessions, so the
  // SessionManager's threads never contend on each other's slabs.
  const bool crc_on = config_.wire.has_value() && config_.wire->enabled();
  arena_ = std::make_unique<net::BufferArena>();
  net::PacketizerConfig packetizer_config = config_.packetizer;
  packetizer_config.crc = crc_on;
  packetizer_ =
      std::make_unique<net::Packetizer>(packetizer_config, arena_.get());
  if (config_.rate_control.has_value()) rate_.emplace(*config_.rate_control);

  if (config_.on_feedback) {
    plr_estimator_ = std::make_unique<net::PlrEstimator>();
    report_builder_ = std::make_unique<net::ReceiverReportBuilder>(
        /*reporter_ssrc=*/config_.packetizer.ssrc + 1,
        /*reportee_ssrc=*/config_.packetizer.ssrc);
    feedback_queue_ =
        std::make_unique<net::DelayedFeedback<net::ReceiverReport>>(
            config_.feedback_rtt_frames);
    PB_CHECK(config_.feedback_interval_frames > 0);
  }

  result_.frames.reserve(static_cast<std::size_t>(config_.frames));

  if (!config_.frame_trace_path.empty()) {
    frame_trace_out_ = std::make_unique<std::ofstream>(
        config_.frame_trace_path, std::ios::out | std::ios::trunc);
    PB_CHECK(frame_trace_out_->is_open());
    write_frame_trace_header();
  }

  // The default Fig. 1 stage list. Lambdas take the session as a
  // parameter (no `this` capture) so sessions stay movable.
  stages_.push_back(
      {"encode", [](FrameContext& ctx, StreamSession& s) {
         {
           obs::ScopedSpan span("pipeline.encode", ctx.index, "frame");
           ctx.encoded = s.encoder_->encode_frame(ctx.original);
         }
         if (s.rate_) {
           s.rate_->on_frame_encoded(
               ctx.encoded.size_bytes(),
               ctx.encoded.type == codec::FrameType::kIntra);
         }
       }});
  stages_.push_back({"packetize", [](FrameContext& ctx, StreamSession& s) {
                       ctx.packets = s.packetizer_->packetize(ctx.encoded);
                     }});
  // FEC protection sits between the packetizer and the channel, so repair
  // packets ride the same lossy wire (and the same transmit-energy meter)
  // as the media they protect. With config_.fec unset or m == 0 neither
  // stage exists and the session is byte-identical to a FEC-free build.
  if (config_.fec.has_value() && config_.fec->enabled()) {
    fec_encoder_ =
        std::make_unique<net::FecEncoder>(*config_.fec, arena_.get());
    fec_decoder_ = std::make_unique<net::FecDecoder>(arena_.get(), crc_on);
    stages_.push_back({"fec_encode", [](FrameContext& ctx, StreamSession& s) {
                         ctx.media_packets_sent =
                             static_cast<int>(ctx.packets.size());
                         ctx.trace.fec_repair_sent =
                             s.fec_encoder_->protect(&ctx.packets);
                       }});
  }
  stages_.push_back({"transmit", [](FrameContext& ctx, StreamSession& s) {
                       obs::ScopedSpan span("pipeline.transmit", ctx.index,
                                            "frame");
                       ctx.delivered = s.channel_->transmit(ctx.packets);
                     }});
  // Adversarial byte damage rides between the loss model and the
  // depacketizer, exactly where a hostile network sits. Only built when
  // asked for: with config_.faults unset the stage list — and therefore
  // every output byte — is identical to a faultless build.
  if (config_.faults.has_value() && config_.faults->enabled()) {
    net::FaultInjectorConfig faults_config = *config_.faults;
    faults_config.expect_crc = crc_on;  // parse-side only: same RNG draws
    fault_injector_ = std::make_unique<net::FaultInjector>(faults_config);
    stages_.push_back(
        {"inject_faults", [](FrameContext& ctx, StreamSession& s) {
           ctx.delivered = s.fault_injector_->apply(std::move(ctx.delivered));
         }});
  }
  // CRC verification sits where the receiver first trusts the bytes:
  // after every source of wire damage (channel, fault injector), BEFORE
  // fec_decode — a corrupted packet must become an ERASURE the FEC can
  // repair, never a poisoned equation in its solve. Off (the default)
  // the stage does not exist and the session is byte-identical to a
  // build without wire framing.
  if (crc_on) {
    stages_.push_back(
        {"verify_integrity", [](FrameContext& ctx, StreamSession& s) {
           std::vector<net::Packet> kept;
           kept.reserve(ctx.delivered.size());
           for (net::Packet& packet : ctx.delivered) {
             s.wire_stats_.packets_checked += 1;
             if (packet.crc_present && packet.crc_ok) {
               kept.push_back(std::move(packet));
               continue;
             }
             s.wire_stats_.crc_corrupted += 1;
             s.crc_corrupted_interval_ += 1;
             ctx.trace.crc_corrupted += 1;
           }
           if (obs::enabled()) {
             static obs::Counter* c_ok = &obs::counter("net.crc.ok");
             static obs::Counter* c_bad = &obs::counter("net.crc.corrupted");
             c_ok->add(kept.size());
             c_bad->add(ctx.delivered.size() - kept.size());
           }
           ctx.delivered = std::move(kept);
         }});
  }
  if (fec_decoder_ != nullptr) {
    stages_.push_back(
        {"fec_decode", [](FrameContext& ctx, StreamSession& s) {
           const net::FecDecoderStats before = s.fec_decoder_->stats();
           ctx.delivered = s.fec_decoder_->process(std::move(ctx.delivered));
           const net::FecDecoderStats& after = s.fec_decoder_->stats();
           ctx.trace.fec_recovered = static_cast<int>(
               after.packets_recovered - before.packets_recovered);
           ctx.trace.fec_unrecoverable_windows = static_cast<int>(
               after.windows_unrecoverable - before.windows_unrecoverable);
         }});
  }
  stages_.push_back({"depacketize", [](FrameContext& ctx, StreamSession&) {
                       ctx.received =
                           net::depacketize(ctx.delivered, ctx.index);
                     }});
  stages_.push_back({"decode", [](FrameContext& ctx, StreamSession& s) {
                       obs::ScopedSpan span("pipeline.decode", ctx.index,
                                            "frame");
                       ctx.output = &s.decoder_->decode_frame(ctx.received);
                     }});
  stages_.push_back(
      {"measure", [](FrameContext& ctx, StreamSession& s) {
         FrameTrace& trace = ctx.trace;
         trace.index = ctx.index;
         trace.qp = ctx.encoded.qp;
         trace.type = ctx.encoded.type;
         trace.bytes = ctx.encoded.size_bytes();
         trace.intra_mbs = ctx.encoded.intra_mb_count();
         for (const codec::MbEncodeRecord& record : ctx.encoded.mb_records) {
           if (record.pre_me_intra) ++trace.pre_me_intra_mbs;
         }
         trace.packets_sent = static_cast<int>(ctx.packets.size());
         trace.packets_delivered = static_cast<int>(ctx.delivered.size());
         // With FEC stages, `delivered` holds the post-recovery media
         // stream (repair consumed, reconstructions spliced in): a frame
         // is lost only if a media packet is STILL missing. Without them,
         // media_packets_sent is -1 and this is the historical formula.
         const std::size_t media_sent =
             ctx.media_packets_sent >= 0
                 ? static_cast<std::size_t>(ctx.media_packets_sent)
                 : ctx.packets.size();
         trace.lost = ctx.delivered.size() != media_sent;
         trace.psnr_db = video::psnr_luma(ctx.original, *ctx.output);
         trace.bad_pixels = video::bad_pixel_count(
             ctx.original, *ctx.output, s.config_.bad_pixel_threshold);
       }});
}

std::size_t StreamSession::stage_index(const std::string& name) const {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == name) return i;
  }
  PB_CHECK(false && "unknown stage name");
  return stages_.size();
}

void StreamSession::insert_stage_before(const std::string& name,
                                        FrameStage stage) {
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(
                                       stage_index(name)),
                 std::move(stage));
}

void StreamSession::insert_stage_after(const std::string& name,
                                       FrameStage stage) {
  stages_.insert(stages_.begin() + static_cast<std::ptrdiff_t>(
                                       stage_index(name) + 1),
                 std::move(stage));
}

void StreamSession::replace_stage(const std::string& name, FrameStage stage) {
  stages_[stage_index(name)] = std::move(stage);
}

void StreamSession::remove_stage(const std::string& name) {
  stages_.erase(stages_.begin() +
                static_cast<std::ptrdiff_t>(stage_index(name)));
}

void StreamSession::write_frame_trace_header() {
  std::ofstream& out = *frame_trace_out_;
  out << "{\"header\":{\"scheme\":\"" << scheme_.label()
      << "\",\"seed\":" << config_.frame_trace_seed
      << ",\"width\":" << config_.encoder.width
      << ",\"height\":" << config_.encoder.height
      << ",\"frames\":" << config_.frames;
  if (config_.fec.has_value() && config_.fec->enabled()) {
    out << ",\"fec\":{\"scheme\":"
        << static_cast<int>(config_.fec->scheme)
        << ",\"k\":" << config_.fec->k << ",\"m\":" << config_.fec->m << "}";
  }
  if (config_.wire.has_value() && config_.wire->enabled()) {
    out << ",\"wire\":{\"crc\":true}";
  }
  out << "}}\n";
}

void StreamSession::deliver_due_feedback(int frame) {
  for (const net::ReceiverReport& report : feedback_queue_->take_due(frame)) {
    if (flight_ != nullptr) {
      flight_->record(obs::FlightEvent::kPlrUpdate, frame,
                      report.fraction_lost, report.fraction_corrupted);
    }
    config_.on_feedback(frame, report, *policy_);
  }
}

void StreamSession::observe_delivery(const FrameContext& ctx) {
  for (const net::Packet& packet : ctx.delivered) {
    // The feedback loop reports NETWORK loss: a packet the FEC decoder
    // reconstructed was still lost on the wire, so it must stay invisible
    // here (and repair packets live in their own sequence space). Without
    // FEC stages neither predicate ever fires.
    if (packet.recovered || packet.is_fec_repair()) continue;
    plr_estimator_->on_packet_received(packet.header.sequence);
    highest_sequence_ = packet.header.sequence;
  }
  if ((ctx.index + 1) % config_.feedback_interval_frames == 0) {
    // CRC-dropped packets are sequence gaps to the estimator, so
    // fraction_lost already covers them; the corruption split tells the
    // sender how much of that loss was verified corruption. Both args
    // are zero without the verify_integrity stage, which keeps the
    // serialized report byte-identical to the pre-CRC layout.
    net::ReceiverReport report =
        report_builder_->build(*plr_estimator_, highest_sequence_,
                               crc_corrupted_interval_,
                               wire_stats_.crc_corrupted);
    crc_corrupted_interval_ = 0;
    // Round-trip the RFC 3550 wire format so the loop exercises exactly
    // what a real receiver would put on the wire.
    net::ReceiverReport parsed;
    PB_CHECK(net::parse_receiver_report(net::serialize_receiver_report(report),
                                        &parsed));
    feedback_queue_->push(ctx.index, parsed);
  }
}

const FrameTrace& StreamSession::step() {
  PB_CHECK(!done());
  const int i = next_frame_;
  obs::ScopedSpan frame_span("pipeline.frame", i, "frame");
  if (feedback_queue_ != nullptr) deliver_due_feedback(i);
  if (config_.pre_frame) config_.pre_frame(i, *policy_);
  if (rate_) encoder_->set_qp(rate_->qp());

  FrameContext ctx;
  ctx.index = i;
  ctx.original = source_(i);
  for (const FrameStage& stage : stages_) stage.run(ctx, *this);

  if (feedback_queue_ != nullptr) observe_delivery(ctx);
  accumulate(ctx.trace);
  next_frame_ = i + 1;
  return result_.frames.back();
}

void StreamSession::accumulate(const FrameTrace& trace) {
  psnr_sum_ += trace.psnr_db;
  result_.total_bytes += trace.bytes;
  result_.total_bad_pixels += trace.bad_pixels;
  result_.total_intra_mbs += static_cast<std::uint64_t>(trace.intra_mbs);
  if (frame_trace_out_ != nullptr && frame_trace_out_->is_open()) {
    append_frame_trace_jsonl(
        *frame_trace_out_, trace, fec_encoder_ != nullptr,
        config_.wire.has_value() && config_.wire->enabled());
  }
  result_.frames.push_back(trace);
  update_telemetry(trace);
}

void StreamSession::update_telemetry(const FrameTrace& trace) {
  if (flight_ != nullptr) {
    // Always-on breadcrumbs (a few ns each, no clock, no allocation):
    // enough recent context to reconstruct WHY a session degraded from
    // the post-mortem dump alone.
    flight_->record(obs::FlightEvent::kFrameEncoded, trace.index,
                    static_cast<std::int64_t>(trace.bytes), trace.intra_mbs);
    flight_->record(obs::FlightEvent::kFrameDecoded, trace.index,
                    static_cast<std::int64_t>(trace.psnr_db * 1000.0),
                    static_cast<std::int64_t>(trace.bad_pixels));
    if (trace.lost) {
      flight_->record(obs::FlightEvent::kFrameLost, trace.index,
                      trace.packets_sent - trace.packets_delivered,
                      trace.packets_sent);
    }
    if (trace.crc_corrupted > 0) {
      flight_->record(obs::FlightEvent::kCrcCorruption, trace.index,
                      trace.crc_corrupted, trace.packets_sent);
    }
    if (trace.fec_repair_sent > 0) {
      flight_->record(obs::FlightEvent::kFecDecision, trace.index,
                      trace.fec_repair_sent,
                      trace.packets_sent - trace.fec_repair_sent);
    }
  }

  const bool want_counters = !label_.empty() && obs::enabled();
  if (!want_counters && health_ == nullptr) return;

  // Joules attributable to this frame: delta of the cumulative analytic
  // energy (encode ops + transmitted bytes). Reads only — the energy
  // model is a pure function of counters the codec updates anyway.
  const double energy_total_j =
      encode_energy(encoder_->ops(), *config_.profile).total_j() +
      energy::tx_energy_j(channel_->stats().bytes_sent, *config_.profile);
  const double frame_energy_j = energy_total_j - energy_reported_j_;
  energy_reported_j_ = energy_total_j;

  if (want_counters) {
    // Resolve the handles once per session (name build + map lookup),
    // then every frame is a handful of lock-free shard bumps.
    if (c_frames_ == nullptr) {
      c_frames_ = &obs::counter(obs::session_metric(label_, "frames"));
      c_bytes_ = &obs::counter(obs::session_metric(label_, "bytes"));
      c_lost_frames_ =
          &obs::counter(obs::session_metric(label_, "lost_frames"));
      c_packets_sent_ =
          &obs::counter(obs::session_metric(label_, "packets_sent"));
      c_packets_delivered_ =
          &obs::counter(obs::session_metric(label_, "packets_delivered"));
      c_intra_mbs_ = &obs::counter(obs::session_metric(label_, "intra_mbs"));
      c_mbs_ = &obs::counter(obs::session_metric(label_, "mbs"));
      // Present (even at zero) whenever CRC framing is on, so the monitor
      // can show a corrupted column per session; absent when off to keep
      // the metric namespace byte-identical to a pre-CRC build.
      if (config_.wire.has_value() && config_.wire->enabled()) {
        c_crc_corrupted_ =
            &obs::counter(obs::session_metric(label_, "crc_corrupted"));
      }
      c_energy_uj_ = &obs::counter(obs::session_metric(label_, "energy_uj"));
    }
    c_frames_->add(1);
    c_bytes_->add(trace.bytes);
    if (trace.lost) c_lost_frames_->add(1);
    c_packets_sent_->add(static_cast<std::uint64_t>(trace.packets_sent));
    c_packets_delivered_->add(
        static_cast<std::uint64_t>(trace.packets_delivered));
    c_intra_mbs_->add(static_cast<std::uint64_t>(trace.intra_mbs));
    c_mbs_->add(static_cast<std::uint64_t>(mbs_per_frame_));
    if (c_crc_corrupted_ != nullptr) {
      c_crc_corrupted_->add(static_cast<std::uint64_t>(trace.crc_corrupted));
    }
    // Energy as an integer microjoule counter (counters are uint64):
    // emit the delta of the rounded cumulative total so the counter
    // tracks it without accumulating rounding drift.
    const std::uint64_t total_uj =
        static_cast<std::uint64_t>(energy_total_j * 1e6);
    c_energy_uj_->add(total_uj - energy_reported_uj_);
    energy_reported_uj_ = total_uj;
  }

  if (health_ != nullptr) {
    obs::FrameHealthSample sample;
    sample.psnr_db = trace.psnr_db;
    sample.bytes = trace.bytes;
    sample.packets_sent = static_cast<std::uint32_t>(trace.packets_sent);
    sample.packets_delivered =
        static_cast<std::uint32_t>(trace.packets_delivered);
    sample.intra_mbs = static_cast<std::uint32_t>(trace.intra_mbs);
    sample.total_mbs = static_cast<std::uint32_t>(mbs_per_frame_);
    sample.energy_j = frame_energy_j;
    health_->on_frame(sample);
  }
}

void StreamSession::run_to_end() {
  while (!done()) step();
}

PipelineResult StreamSession::take_result() {
  PB_CHECK(done());
  if (!finalized_) {
    finalized_ = true;
    result_.avg_psnr_db = psnr_sum_ / config_.frames;
    result_.encoder_ops = encoder_->ops();
    result_.encode_energy = encode_energy(encoder_->ops(), *config_.profile);
    result_.channel = channel_->stats();
    result_.tx_energy_j =
        energy::tx_energy_j(channel_->stats().bytes_sent, *config_.profile);
    result_.concealed_mbs = decoder_->concealed_mbs();
    if (fec_encoder_ != nullptr) result_.fec_encode = fec_encoder_->stats();
    if (fec_decoder_ != nullptr) result_.fec_decode = fec_decoder_->stats();
    result_.wire = wire_stats_;
    if (frame_trace_out_ != nullptr && frame_trace_out_->is_open()) {
      frame_trace_out_->flush();
      frame_trace_out_->close();
    }
  }
  return std::move(result_);
}

}  // namespace pbpair::sim
