#include "sim/pipeline.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "codec/decoder.h"
#include "net/loss_model.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pbpair::sim {
namespace {

// One FrameTrace as a JSONL row. Deterministic fields only: no clocks, no
// pointers — reruns with the same seed produce a byte-identical file.
void append_frame_trace_jsonl(std::ofstream& out, const FrameTrace& trace) {
  char psnr[32];
  std::snprintf(psnr, sizeof(psnr), "%.4f", trace.psnr_db);
  out << "{\"frame\":" << trace.index << ",\"type\":\""
      << (trace.type == codec::FrameType::kIntra ? "I" : "P")
      << "\",\"qp\":" << trace.qp << ",\"bytes\":" << trace.bytes
      << ",\"intra_mbs\":" << trace.intra_mbs
      << ",\"pre_me_intra_mbs\":" << trace.pre_me_intra_mbs
      << ",\"lost\":" << (trace.lost ? "true" : "false")
      << ",\"psnr_db\":" << psnr << ",\"bad_pixels\":" << trace.bad_pixels
      << "}\n";
}

}  // namespace

PipelineResult run_pipeline(const FrameSource& source,
                            const SchemeSpec& scheme, net::LossModel* loss,
                            const PipelineConfig& config) {
  PB_CHECK(config.frames > 0);
  const int mb_cols = config.encoder.width / 16;
  const int mb_rows = config.encoder.height / 16;

  std::unique_ptr<codec::RefreshPolicy> policy =
      make_policy(scheme, mb_cols, mb_rows);
  codec::Encoder encoder(config.encoder, policy.get());
  codec::Decoder decoder(codec::DecoderConfig{
      config.encoder.width, config.encoder.height, config.concealment});
  net::Packetizer packetizer(config.packetizer);
  net::NoLoss no_loss;
  net::Channel channel(loss != nullptr ? loss : &no_loss);

  std::optional<codec::RateController> rate;
  if (config.rate_control.has_value()) rate.emplace(*config.rate_control);

  PipelineResult result;
  result.frames.reserve(static_cast<std::size_t>(config.frames));
  double psnr_sum = 0.0;

  std::ofstream frame_trace_out;
  if (!config.frame_trace_path.empty()) {
    frame_trace_out.open(config.frame_trace_path,
                         std::ios::out | std::ios::trunc);
    PB_CHECK(frame_trace_out.is_open());
  }

  for (int i = 0; i < config.frames; ++i) {
    obs::ScopedSpan frame_span("pipeline.frame", i, "frame");
    if (config.pre_frame) config.pre_frame(i, *policy);
    if (rate) encoder.set_qp(rate->qp());

    video::YuvFrame original = source(i);
    codec::EncodedFrame encoded = [&] {
      obs::ScopedSpan s("pipeline.encode", i, "frame");
      return encoder.encode_frame(original);
    }();
    if (rate) {
      rate->on_frame_encoded(encoded.size_bytes(),
                             encoded.type == codec::FrameType::kIntra);
    }

    std::vector<net::Packet> packets = packetizer.packetize(encoded);
    std::vector<net::Packet> delivered = [&] {
      obs::ScopedSpan s("pipeline.transmit", i, "frame");
      return channel.transmit(packets);
    }();
    codec::ReceivedFrame received = net::depacketize(delivered, i);
    const video::YuvFrame& output = [&]() -> const video::YuvFrame& {
      obs::ScopedSpan s("pipeline.decode", i, "frame");
      return decoder.decode_frame(received);
    }();

    FrameTrace trace;
    trace.index = i;
    trace.qp = encoded.qp;
    trace.type = encoded.type;
    trace.bytes = encoded.size_bytes();
    trace.intra_mbs = encoded.intra_mb_count();
    for (const codec::MbEncodeRecord& record : encoded.mb_records) {
      if (record.pre_me_intra) ++trace.pre_me_intra_mbs;
    }
    trace.lost = delivered.size() != packets.size();
    trace.psnr_db = video::psnr_luma(original, output);
    trace.bad_pixels =
        video::bad_pixel_count(original, output, config.bad_pixel_threshold);

    psnr_sum += trace.psnr_db;
    result.total_bytes += trace.bytes;
    result.total_bad_pixels += trace.bad_pixels;
    result.total_intra_mbs += static_cast<std::uint64_t>(trace.intra_mbs);
    if (frame_trace_out.is_open()) {
      append_frame_trace_jsonl(frame_trace_out, trace);
    }
    result.frames.push_back(trace);
  }

  result.avg_psnr_db = psnr_sum / config.frames;
  result.encoder_ops = encoder.ops();
  result.encode_energy = encode_energy(encoder.ops(), *config.profile);
  result.channel = channel.stats();
  result.tx_energy_j =
      energy::tx_energy_j(channel.stats().bytes_sent, *config.profile);
  result.concealed_mbs = decoder.concealed_mbs();
  return result;
}

PipelineResult run_pipeline(const video::SyntheticSequence& sequence,
                            const SchemeSpec& scheme, net::LossModel* loss,
                            const PipelineConfig& config) {
  return run_pipeline(
      [&sequence](int i) { return sequence.frame_at(i); }, scheme, loss,
      config);
}

core::PointEvaluator make_pipeline_evaluator(
    const video::SyntheticSequence& sequence, const PipelineConfig& config,
    std::uint64_t seed) {
  return [&sequence, config, seed](core::OperatingPoint& point) {
    core::PbpairConfig pbpair;
    pbpair.intra_th = point.intra_th;
    pbpair.plr = point.plr;
    net::UniformFrameLoss loss(point.plr, seed);
    PipelineResult r = run_pipeline(sequence, SchemeSpec::pbpair(pbpair),
                                    &loss, config);
    point.avg_psnr_db = r.avg_psnr_db;
    point.bad_pixels_m = static_cast<double>(r.total_bad_pixels) / 1e6;
    point.size_kb = static_cast<double>(r.total_bytes) / 1024.0;
    point.encode_energy_j = r.encode_energy.total_j();
    point.total_energy_j = r.total_energy_j();
    point.intra_mbs_per_frame =
        static_cast<double>(r.total_intra_mbs) / config.frames;
  };
}

double calibrate_intra_th(const video::SyntheticSequence& sequence,
                          const core::PbpairConfig& base_config,
                          std::uint64_t target_bytes,
                          const PipelineConfig& config, double lo, double hi,
                          int iterations) {
  PB_CHECK(lo <= hi);
  // Encoded size grows monotonically with Intra_Th (more intra MBs), so a
  // bisection on the lossless-channel size converges.
  double best_th = lo;
  double best_err = -1.0;
  for (int iter = 0; iter < iterations; ++iter) {
    double mid = 0.5 * (lo + hi);
    core::PbpairConfig candidate = base_config;
    candidate.intra_th = mid;
    PipelineResult r = run_pipeline(sequence, SchemeSpec::pbpair(candidate),
                                    nullptr, config);
    double err = std::abs(static_cast<double>(r.total_bytes) -
                          static_cast<double>(target_bytes));
    if (best_err < 0 || err < best_err) {
      best_err = err;
      best_th = mid;
    }
    if (r.total_bytes > target_bytes) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best_th;
}

}  // namespace pbpair::sim
