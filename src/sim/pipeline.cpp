#include "sim/pipeline.h"

#include <cmath>

#include "common/check.h"
#include "net/loss_model.h"
#include "sim/session.h"

namespace pbpair::sim {

PipelineResult run_pipeline(const FrameSource& source,
                            const SchemeSpec& scheme, net::LossModel* loss,
                            const PipelineConfig& config) {
  StreamSession session(source, scheme, loss, config);
  session.run_to_end();
  return session.take_result();
}

PipelineResult run_pipeline(const video::SyntheticSequence& sequence,
                            const SchemeSpec& scheme, net::LossModel* loss,
                            const PipelineConfig& config) {
  return run_pipeline(
      [&sequence](int i) { return sequence.frame_at(i); }, scheme, loss,
      config);
}

core::PointEvaluator make_pipeline_evaluator(
    const video::SyntheticSequence& sequence, const PipelineConfig& config,
    std::uint64_t seed) {
  // `sequence` is captured by value: the returned evaluator is often
  // stored and invoked long after the caller's sequence is gone, and a
  // reference capture would dangle (sequences are small — four scalars).
  return [sequence, config, seed](core::OperatingPoint& point) {
    core::PbpairConfig pbpair;
    pbpair.intra_th = point.intra_th;
    pbpair.plr = point.plr;
    net::UniformFrameLoss loss(point.plr, seed);
    PipelineResult r = run_pipeline(sequence, SchemeSpec::pbpair(pbpair),
                                    &loss, config);
    point.avg_psnr_db = r.avg_psnr_db;
    point.bad_pixels_m = static_cast<double>(r.total_bad_pixels) / 1e6;
    point.size_kb = static_cast<double>(r.total_bytes) / 1024.0;
    point.encode_energy_j = r.encode_energy.total_j();
    point.total_energy_j = r.total_energy_j();
    point.intra_mbs_per_frame =
        static_cast<double>(r.total_intra_mbs) / config.frames;
  };
}

double calibrate_intra_th(const video::SyntheticSequence& sequence,
                          const core::PbpairConfig& base_config,
                          std::uint64_t target_bytes,
                          const PipelineConfig& config, double lo, double hi,
                          int iterations) {
  PB_CHECK(lo <= hi);
  // Encoded size grows monotonically with Intra_Th (more intra MBs), so a
  // bisection on the lossless-channel size converges.
  double best_th = lo;
  double best_err = -1.0;
  for (int iter = 0; iter < iterations; ++iter) {
    double mid = 0.5 * (lo + hi);
    core::PbpairConfig candidate = base_config;
    candidate.intra_th = mid;
    PipelineResult r = run_pipeline(sequence, SchemeSpec::pbpair(candidate),
                                    nullptr, config);
    double err = std::abs(static_cast<double>(r.total_bytes) -
                          static_cast<double>(target_bytes));
    if (best_err < 0 || err < best_err) {
      best_err = err;
      best_th = mid;
    }
    if (r.total_bytes > target_bytes) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best_th;
}

}  // namespace pbpair::sim
