// Admission control and load shedding for the sharded session engine.
//
// The paper's controller degrades gracefully under pressure by spending
// fewer bits/joules per frame; the serving layer needs the same reflex at
// the fleet level. SessionAdmission sits in front of SessionManager::run()
// (and `pbpair serve`): every new session is pinned to a shard by
// rendezvous hash on its label, then admitted, queued, or shed based on
// two deterministic inputs — the per-shard depth of already-pinned
// sessions and the obs::HealthRegistry aggregate state sampled once at
// run start. DEGRADED-eligible (sheddable) sessions are shed before any
// CRITICAL shard accepts new work; non-sheddable sessions are never
// dropped, only queued behind the shard's live-session cap.
//
// Decisions are a pure function of (specs, config, starting registry
// state), evaluated serially in session-index order — so a fixed seed
// reproduces the exact accept/queue/shed pattern at any thread count
// (tests/test_sharded_serving.cpp asserts this).
//
// Outcomes are observable three ways: sim.admit.accepted / sim.admit.shed
// / sim.admit.queued counters, one kSessionShed flight-recorder event per
// shed session under the "admission" ring, and the AdmissionReport
// returned to the caller.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/health.h"

namespace pbpair::sim {

struct AdmissionConfig {
  /// Per-shard cap on concurrently-constructed sessions. Beyond it a new
  /// session is admitted but QUEUED: the engine defers building it until
  /// a live slot on its shard frees up (this is what keeps 10k admitted
  /// sessions from materializing 10k arenas at once). 0 = uncapped.
  std::size_t max_live_per_shard = 0;
  /// Per-shard pinned-depth watermark: a new session landing on a shard
  /// already holding this many is shed when sheddable, queued otherwise.
  /// 0 disables depth-based shedding.
  std::size_t shed_queue_depth = 0;
  /// Shed sheddable sessions while the fleet aggregate shows any CRITICAL
  /// session — shed DEGRADED-eligible work before a critical shard takes
  /// more.
  bool shed_on_critical = true;
  /// Shed sheddable sessions once the fleet's DEGRADED+CRITICAL fraction
  /// reaches this threshold. 1.0 (with no critical sessions) disables.
  double shed_pressure = 1.0;
};

enum class AdmitDecision { kAccepted = 0, kQueued = 1, kShed = 2 };

/// "accepted" / "queued" / "shed".
const char* admit_decision_name(AdmitDecision decision);

/// Per-run admission outcome; decisions[i] belongs to spec i.
struct AdmissionReport {
  std::vector<AdmitDecision> decisions;
  std::size_t accepted = 0;
  std::size_t queued = 0;
  std::size_t shed = 0;
};

/// Shard pinning: highest-random-weight (rendezvous) hash of the session
/// label over `shards` buckets. Stable in both directions — adding a
/// shard moves only the sessions that rehash to it, and the same label
/// always lands on the same shard for a given shard count — and purely
/// label-driven, so pinning is deterministic in session order.
std::size_t rendezvous_shard(const std::string& label, std::size_t shards);

class SessionAdmission {
 public:
  explicit SessionAdmission(AdmissionConfig config);

  /// Samples the fleet aggregate from obs::HealthRegistry::global().
  /// Called once per run, BEFORE any new session executes, so every
  /// decision in the run sees the same fleet state.
  void sample_fleet();

  /// Decides for session `slot` (label `label`) targeting `shard` whose
  /// pinned depth is `pinned_depth`. Bumps sim.admit.* counters and, on
  /// shed, appends a kSessionShed event to the "admission" flight ring.
  AdmitDecision admit(std::size_t slot, const std::string& label,
                      bool sheddable, std::size_t shard,
                      std::size_t pinned_depth);

  const AdmissionConfig& config() const { return config_; }
  const obs::HealthStateCounts& fleet() const { return fleet_; }

 private:
  AdmissionConfig config_;
  obs::HealthStateCounts fleet_;
};

}  // namespace pbpair::sim
