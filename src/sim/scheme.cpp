#include "sim/scheme.h"

#include "common/check.h"
#include "resilience/air_policy.h"
#include "resilience/gop_policy.h"
#include "resilience/pgop_policy.h"

namespace pbpair::sim {

std::string SchemeSpec::label() const {
  switch (kind) {
    case SchemeKind::kNoResilience: return "NO";
    case SchemeKind::kPbpair: return "PBPAIR";
    case SchemeKind::kPgop: return "PGOP-" + std::to_string(param);
    case SchemeKind::kGop: return "GOP-" + std::to_string(param);
    case SchemeKind::kAir: return "AIR-" + std::to_string(param);
  }
  return "?";
}

SchemeSpec SchemeSpec::no_resilience() { return SchemeSpec{}; }

SchemeSpec SchemeSpec::gop(int p_frames_per_i) {
  SchemeSpec s;
  s.kind = SchemeKind::kGop;
  s.param = p_frames_per_i;
  return s;
}

SchemeSpec SchemeSpec::air(int refresh_mbs) {
  SchemeSpec s;
  s.kind = SchemeKind::kAir;
  s.param = refresh_mbs;
  return s;
}

SchemeSpec SchemeSpec::pgop(int columns) {
  SchemeSpec s;
  s.kind = SchemeKind::kPgop;
  s.param = columns;
  return s;
}

SchemeSpec SchemeSpec::pbpair(const core::PbpairConfig& config) {
  SchemeSpec s;
  s.kind = SchemeKind::kPbpair;
  s.pbpair_config = config;
  return s;
}

std::unique_ptr<codec::RefreshPolicy> make_policy(const SchemeSpec& spec,
                                                  int mb_cols, int mb_rows) {
  switch (spec.kind) {
    case SchemeKind::kNoResilience:
      return std::make_unique<codec::NoRefreshPolicy>();
    case SchemeKind::kPbpair:
      return std::make_unique<core::PbpairPolicy>(mb_cols, mb_rows,
                                                  spec.pbpair_config);
    case SchemeKind::kPgop:
      return std::make_unique<resilience::PgopPolicy>(spec.param);
    case SchemeKind::kGop:
      return std::make_unique<resilience::GopPolicy>(spec.param);
    case SchemeKind::kAir:
      return std::make_unique<resilience::AirPolicy>(spec.param);
  }
  PB_CHECK_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace pbpair::sim
