// The end-to-end video-communication pipeline (paper Fig. 1):
//
//   source frames -> encoder (with refresh policy) -> RTP packetizer
//   -> lossy channel -> depacketizer -> decoder (with concealment)
//   -> quality metrics vs the original frames
//
// plus the energy model over the encoder's metered operations. Every
// experiment in the paper's evaluation is one or more pipeline runs with
// different (scheme, sequence, loss model, device) choices.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include <optional>

#include "codec/decoder.h"
#include "core/operating_points.h"
#include "codec/encoder.h"
#include "codec/rate_control.h"
#include "energy/energy_model.h"
#include "net/channel.h"
#include "net/fault_injector.h"
#include "net/fec.h"
#include "net/packetizer.h"
#include "net/rtcp.h"
#include "obs/health.h"
#include "sim/scheme.h"
#include "video/metrics.h"
#include "video/sequence.h"

namespace pbpair::sim {

struct PipelineConfig {
  codec::EncoderConfig encoder{};
  net::PacketizerConfig packetizer{};
  codec::ConcealmentMode concealment = codec::ConcealmentMode::kCopyPrevious;
  int frames = 300;  // the paper's clips are 300 frames
  const energy::DeviceProfile* profile = &energy::ipaq_h5555();
  int bad_pixel_threshold = video::kDefaultBadPixelThreshold;

  /// Optional rate control: when set, QP tracks the target bit rate
  /// instead of staying fixed at encoder.qp.
  std::optional<codec::RateControlConfig> rate_control;

  /// Optional per-frame hook, called BEFORE encoding frame `index` with
  /// the live policy — the adaptation experiments adjust Intra_Th here.
  std::function<void(int index, codec::RefreshPolicy& policy)> pre_frame;

  /// Closed-loop RTCP feedback (§3.2). When `on_feedback` is set, the
  /// session runs a receiver-side PlrEstimator over the delivered packets,
  /// builds an RFC 3550 receiver report every `feedback_interval_frames`
  /// frames, and delivers it through a net::DelayedFeedback queue
  /// `feedback_rtt_frames` frames later — BEFORE `pre_frame` of the frame
  /// it becomes due on. RTT 0 delivers a report generated after frame i
  /// ahead of frame i+1 (feedback can never precede the loss it observes).
  std::function<void(int index, const net::ReceiverReport& report,
                     codec::RefreshPolicy& policy)>
      on_feedback;
  int feedback_rtt_frames = 0;
  int feedback_interval_frames = 1;

  /// When non-empty, every FrameTrace is appended to this file as one JSON
  /// object per line (JSONL), after a header line recording the scheme
  /// label, `frame_trace_seed`, and frame geometry. Only deterministic
  /// fields are written — no wall-clock timing — so reruns with the same
  /// seed produce byte-identical files.
  std::string frame_trace_path;

  /// Recorded verbatim in the frame-trace header (the channel seed the run
  /// used); it does not influence the simulation itself.
  std::uint64_t frame_trace_seed = 0;

  /// Live health tracking (obs/health.h). When set, the session feeds one
  /// obs::SessionHealth per frame (registered in
  /// obs::HealthRegistry::global() under the session's label) with
  /// windowed PSNR / effective PLR / bitrate / intra-ratio / energy-drain
  /// estimators and the HEALTHY->DEGRADED->CRITICAL state machine.
  /// Tracking only reads deterministic per-frame results, so outputs stay
  /// byte-identical with it on or off (tests/test_telemetry.cpp).
  std::optional<obs::HealthConfig> health;

  /// Adversarial byte damage (net/fault_injector.h). When set with any
  /// probability > 0, the session inserts an "inject_faults" stage after
  /// "transmit" that bit-flips / truncates / corrupts / duplicates /
  /// reorders the delivered packets deterministically from faults->seed.
  /// Unset (or all-zero) leaves the pipeline untouched — reports stay
  /// byte-identical to a build without the injector.
  std::optional<net::FaultInjectorConfig> faults;

  /// Packet-level forward error correction (net/fec.h). When set with
  /// m > 0, the session inserts a "fec_encode" stage after "packetize"
  /// (appends repair packets per window of k media packets) and a
  /// "fec_decode" stage before "depacketize" (consumes surviving repair
  /// packets, reconstructs missing media, splices it back in by sequence).
  /// Repair packets traverse the channel and the fault injector like any
  /// other wire bytes, so their transmit energy and their exposure to
  /// hostile damage are both real. Unset (or m == 0) leaves the stage
  /// list — and every output byte — identical to a FEC-free build
  /// (tests/test_fec.cpp asserts this at 1, 2 and 8 threads).
  std::optional<net::FecConfig> fec;

  /// Wire-format integrity (net/packet.h). When set with crc on, every
  /// outgoing packet carries a CRC64 trailer (the packetizer spends
  /// kCrcTrailerSize of each MTU on it), and the session inserts a
  /// "verify_integrity" stage after the channel/fault stages and BEFORE
  /// fec_decode: packets whose trailer is missing or mismatched are
  /// dropped as CORRUPTED (net.crc.corrupted) — they become erasures FEC
  /// can repair, instead of garbage the decoder conceals — and the
  /// corrupted-vs-lost split rides the RTCP corruption extension back to
  /// the sender. Unset (or crc off) leaves the stage list and every
  /// output byte identical to a build without wire framing
  /// (tests/test_wire.cpp asserts this at 1, 2 and 8 threads).
  std::optional<net::WireConfig> wire;
};

/// Per-frame trace row (Fig. 6 plots these directly).
struct FrameTrace {
  int index = 0;
  int qp = 0;
  codec::FrameType type = codec::FrameType::kIntra;
  std::size_t bytes = 0;       // encoded frame size
  int intra_mbs = 0;
  int pre_me_intra_mbs = 0;    // intra MBs that skipped motion estimation
  int packets_sent = 0;        // offered to the channel
  int packets_delivered = 0;   // survived it
  bool lost = false;           // at least one MEDIA packet missing post-FEC
  double psnr_db = 0.0;        // decoder output vs original
  std::uint64_t bad_pixels = 0;

  // FEC accounting (all zero when PipelineConfig::fec is unset).
  int fec_repair_sent = 0;          // repair packets appended this frame
  int fec_recovered = 0;            // media packets reconstructed
  int fec_unrecoverable_windows = 0;  // windows whose losses exceeded m

  // Wire integrity accounting (zero when PipelineConfig::wire is unset).
  int crc_corrupted = 0;  // packets dropped by verify_integrity this frame
};

struct PipelineResult {
  std::vector<FrameTrace> frames;

  // Totals.
  std::uint64_t total_bytes = 0;  // encoded bitstream ("file size")
  double avg_psnr_db = 0.0;
  std::uint64_t total_bad_pixels = 0;
  std::uint64_t total_intra_mbs = 0;
  std::uint64_t concealed_mbs = 0;

  energy::OpCounters encoder_ops;
  energy::EnergyBreakdown encode_energy;  // on the configured device
  double tx_energy_j = 0.0;
  net::ChannelStats channel;

  // FEC totals (default-initialized when PipelineConfig::fec is unset).
  net::FecEncoderStats fec_encode;
  net::FecDecoderStats fec_decode;

  // Wire-integrity totals (zero when PipelineConfig::wire is unset).
  net::WireStats wire;

  double total_energy_j() const {
    return encode_energy.total_j() + tx_energy_j;
  }
};

/// A frame source: frame_at(i) for i in [0, frames).
using FrameSource = std::function<video::YuvFrame(int)>;

/// Runs the full pipeline. `loss` may be null (lossless channel).
///
/// This is a thin shim over sim::StreamSession (sim/session.h): it builds
/// one session with the default stage list, steps it to completion, and
/// returns the result — byte-identical (bitstream, report, joules) to the
/// pre-session monolithic loop, which tests/test_session.cpp asserts
/// against a hand-rolled reference loop.
PipelineResult run_pipeline(const FrameSource& source,
                            const SchemeSpec& scheme, net::LossModel* loss,
                            const PipelineConfig& config);

/// Convenience overload for the synthetic sequences.
PipelineResult run_pipeline(const video::SyntheticSequence& sequence,
                            const SchemeSpec& scheme, net::LossModel* loss,
                            const PipelineConfig& config);

/// Builds a core::PointEvaluator that measures each (Intra_Th, PLR)
/// operating point by running the full pipeline on `sequence` with the
/// paper's uniform frame-discard channel at the point's own PLR
/// (seeded deterministically from `seed`). The evaluator captures a copy
/// of `sequence`, so it stays valid after the caller's sequence is gone.
core::PointEvaluator make_pipeline_evaluator(
    const video::SyntheticSequence& sequence, const PipelineConfig& config,
    std::uint64_t seed = 2005);

/// Picks the Intra_Th giving an encoded size closest to `target_bytes`
/// under a lossless channel (the paper matches PBPAIR's compression ratio
/// to the baselines before comparing quality/energy: §4.2 "We choose
/// Intra_Th that gives similar compression ratio with PGOP-3, GOP-3 and
/// AIR-24"). Binary search over Intra_Th in [lo, hi].
double calibrate_intra_th(const video::SyntheticSequence& sequence,
                          const core::PbpairConfig& base_config,
                          std::uint64_t target_bytes,
                          const PipelineConfig& config, double lo = 0.0,
                          double hi = 1.0, int iterations = 9);

}  // namespace pbpair::sim
