#include "sim/fuzzer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <utility>
#include <vector>

#include "codec/bitstream.h"
#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/golomb.h"
#include "common/check.h"
#include "common/json.h"
#include "common/rng.h"
#include "net/fault_injector.h"
#include "net/fec.h"
#include "net/packetizer.h"
#include "obs/flight_recorder.h"
#include "obs/prometheus.h"
#include "video/sequence.h"

namespace pbpair::sim {
namespace {

using common::Pcg32;

// --- shared mutation helpers --------------------------------------------

std::vector<std::uint8_t> random_bytes(Pcg32& rng, std::uint32_t max_len) {
  std::vector<std::uint8_t> bytes(rng.next_below(max_len + 1));
  for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
  return bytes;
}

void flip_bits(Pcg32& rng, std::vector<std::uint8_t>* bytes, int flips) {
  if (bytes->empty()) return;
  const std::uint32_t total_bits =
      static_cast<std::uint32_t>(bytes->size() * 8);
  for (int i = 0; i < flips; ++i) {
    const std::uint32_t bit = rng.next_below(total_bits);
    (*bytes)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

std::string mutate_text(Pcg32& rng, const std::string& base) {
  std::string text = base;
  const int edits = 1 + static_cast<int>(rng.next_below(8));
  for (int i = 0; i < edits && !text.empty(); ++i) {
    const std::uint32_t pos =
        rng.next_below(static_cast<std::uint32_t>(text.size()));
    switch (rng.next_below(4)) {
      case 0:  // overwrite with a random byte
        text[pos] = static_cast<char>(rng.next_u32());
        break;
      case 1:  // delete (erase clamps past-the-end counts)
        text.erase(pos, 1 + rng.next_below(4));
        break;
      case 2:  // insert noise
        text.insert(pos, 1 + rng.next_below(4),
                    static_cast<char>(rng.next_u32()));
        break;
      case 3:  // truncate
        text.resize(pos);
        break;
    }
  }
  return text;
}

// --- corpus: valid encoded frames, built once ---------------------------

struct Corpus {
  std::vector<codec::EncodedFrame> frames;  // mixed I/P, foreman-like

  static const Corpus& instance() {
    static const Corpus corpus;
    return corpus;
  }

  const codec::EncodedFrame& pick(Pcg32& rng) const {
    return frames[rng.next_below(static_cast<std::uint32_t>(frames.size()))];
  }

 private:
  Corpus() {
    const video::SyntheticSequence seq =
        video::make_paper_sequence(video::SequenceKind::kForemanLike);
    codec::NoRefreshPolicy policy;
    codec::Encoder encoder(codec::EncoderConfig{}, &policy);
    for (int i = 0; i < 6; ++i) {
      frames.push_back(encoder.encode_frame(seq.frame_at(i)));
    }
  }
};

std::vector<std::uint8_t> gob_payload(const codec::EncodedFrame& frame) {
  return std::vector<std::uint8_t>(frame.bytes.begin() + frame.gob_offsets[0],
                                   frame.bytes.end());
}

// --- targets -------------------------------------------------------------

void fuzz_bitreader_case(Pcg32& rng) {
  const std::vector<std::uint8_t> bytes = random_bytes(rng, 256);
  codec::BitReader reader(bytes);
  const int ops = 1 + static_cast<int>(rng.next_below(200));
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t before = reader.bits_remaining();
    switch (rng.next_below(5)) {
      case 0: {
        const int count = static_cast<int>(rng.next_below(33));
        std::uint32_t v = 0;
        const bool ok = reader.get_bits(count, &v);
        // Contract: success iff enough bits remained, and exactly
        // `count` bits consumed on success.
        PB_CHECK(ok == (static_cast<std::uint64_t>(count) <= before));
        if (ok) {
          PB_CHECK(reader.bits_remaining() ==
                   before - static_cast<std::uint64_t>(count));
          if (count < 32) PB_CHECK((v >> count) == 0);
        }
        break;
      }
      case 1: {
        bool bit = false;
        PB_CHECK(reader.get_bit(&bit) == (before >= 1));
        break;
      }
      case 2:
        reader.align();
        PB_CHECK(reader.bit_pos() % 8 == 0);
        break;
      case 3: {
        std::uint32_t v = 0;
        codec::get_ue(reader, &v);  // may fail; must never over-read
        break;
      }
      case 4: {
        std::int32_t v = 0;
        codec::get_se(reader, &v);
        break;
      }
    }
    PB_CHECK(reader.bits_remaining() <= before);
  }
}

void fuzz_decoder_case(Pcg32& rng, codec::Decoder& decoder) {
  const Corpus& corpus = Corpus::instance();

  codec::ReceivedFrame received;
  received.frame_index = static_cast<int>(rng.next_below(1000));
  received.type = rng.next_below(2) == 0 ? codec::FrameType::kIntra
                                         : codec::FrameType::kInter;
  received.qp = static_cast<int>(rng.next_below(256));  // mostly out of range
  received.any_data = true;

  const int spans = 1 + static_cast<int>(rng.next_below(3));
  for (int s = 0; s < spans; ++s) {
    codec::ReceivedFrame::GobSpan span;
    span.first_gob = static_cast<int>(rng.next_below(16)) - 3;
    switch (rng.next_below(5)) {
      case 0:  // valid payload under hostile metadata
        span.bytes = gob_payload(corpus.pick(rng));
        break;
      case 1: {  // bit-flipped valid payload
        std::vector<std::uint8_t> noisy = gob_payload(corpus.pick(rng));
        flip_bits(rng, &noisy, 1 + static_cast<int>(rng.next_below(64)));
        span.bytes = noisy;
        break;
      }
      case 2:  // truncated valid payload
        span.bytes = gob_payload(corpus.pick(rng));
        span.bytes.resize(
            rng.next_below(static_cast<std::uint32_t>(span.bytes.size() + 1)));
        break;
      case 3: {  // splice of two valid payloads
        std::vector<std::uint8_t> a = gob_payload(corpus.pick(rng));
        const std::vector<std::uint8_t> b = gob_payload(corpus.pick(rng));
        a.resize(rng.next_below(static_cast<std::uint32_t>(a.size() + 1)));
        const std::size_t cut =
            rng.next_below(static_cast<std::uint32_t>(b.size() + 1));
        a.insert(a.end(), b.begin() + static_cast<std::ptrdiff_t>(cut),
                 b.end());
        span.bytes = std::move(a);
        break;
      }
      case 4:  // pure garbage
        span.bytes = random_bytes(rng, 2048);
        break;
    }
    received.spans.push_back(std::move(span));
  }

  const video::YuvFrame& out = decoder.decode_frame(received);
  PB_CHECK(out.width() == video::kQcifWidth &&
           out.height() == video::kQcifHeight);
}

void fuzz_depacketize_case(Pcg32& rng, net::Packetizer& packetizer,
                           codec::Decoder& decoder) {
  const Corpus& corpus = Corpus::instance();
  const codec::EncodedFrame& base = corpus.pick(rng);
  std::vector<net::Packet> packets = packetizer.packetize(base);

  // Structural damage: drop / duplicate / shuffle.
  std::vector<net::Packet> stream;
  for (net::Packet& packet : packets) {
    if (rng.next_bernoulli(0.15)) continue;                  // dropped
    if (rng.next_bernoulli(0.10)) stream.push_back(packet);  // duplicated
    stream.push_back(std::move(packet));
  }
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    if (rng.next_bernoulli(0.2)) std::swap(stream[i], stream[i + 1]);
  }
  // Byte-level damage, through the wire-honest injector.
  net::FaultInjectorConfig faults;
  faults.seed = rng.next_u32();
  faults.p_bit_flip = 0.3;
  faults.p_truncate = 0.15;
  faults.p_header_corrupt = 0.2;
  net::FaultInjector injector(faults);
  stream = injector.apply(std::move(stream));
  // Occasionally splice in a fully alien packet.
  if (rng.next_bernoulli(0.2)) {
    net::Packet alien;
    alien.header.sequence = static_cast<std::uint16_t>(rng.next_u32());
    alien.header.timestamp = rng.next_u32();
    alien.header.first_gob = static_cast<std::uint8_t>(rng.next_u32());
    alien.header.num_gobs = static_cast<std::uint8_t>(rng.next_u32());
    alien.payload = random_bytes(rng, 512);
    stream.insert(stream.begin() + static_cast<std::ptrdiff_t>(rng.next_below(
                      static_cast<std::uint32_t>(stream.size() + 1))),
                  std::move(alien));
  }

  const codec::ReceivedFrame received =
      net::depacketize(stream, base.frame_index);
  for (const codec::ReceivedFrame::GobSpan& span : received.spans) {
    PB_CHECK(span.first_gob >= 0 && span.first_gob <= 255);
  }
  const video::YuvFrame& out = decoder.decode_frame(received);
  PB_CHECK(out.width() == video::kQcifWidth &&
           out.height() == video::kQcifHeight);
}

std::uint64_t fuzz_packet_case(Pcg32& rng) {
  std::uint64_t rejects = 0;
  // Random wire bytes through the parser.
  const std::vector<std::uint8_t> wire = random_bytes(rng, 64);
  net::Packet parsed;
  if (!net::parse_packet(wire, &parsed)) ++rejects;

  // Serialize/parse round-trip of an arbitrary header must be exact.
  net::Packet p;
  p.header.sequence = static_cast<std::uint16_t>(rng.next_u32());
  p.header.timestamp = rng.next_u32();
  p.header.ssrc = rng.next_u32();
  p.header.marker = rng.next_below(2) == 1;
  p.header.payload_type = rng.next_below(2) == 0 ? net::kPayloadTypeH263
                                                 : net::kPayloadTypeFec;
  p.header.frame_type = static_cast<std::uint8_t>(rng.next_u32());
  p.header.qp = static_cast<std::uint8_t>(rng.next_u32());
  p.header.first_gob = static_cast<std::uint8_t>(rng.next_u32());
  p.header.num_gobs = static_cast<std::uint8_t>(rng.next_u32());
  p.payload = random_bytes(rng, 256);
  net::Packet q;
  PB_CHECK(net::parse_packet(net::serialize_packet(p), &q));
  PB_CHECK(q.header.sequence == p.header.sequence &&
           q.header.timestamp == p.header.timestamp &&
           q.header.ssrc == p.header.ssrc &&
           q.header.marker == p.header.marker &&
           q.header.payload_type == p.header.payload_type &&
           q.header.frame_type == p.header.frame_type &&
           q.header.qp == p.header.qp &&
           q.header.first_gob == p.header.first_gob &&
           q.header.num_gobs == p.header.num_gobs && q.payload == p.payload);
  return rejects;
}

std::uint64_t fuzz_fec_case(Pcg32& rng, net::Packetizer& packetizer) {
  const Corpus& corpus = Corpus::instance();

  // Honest protected windows first, so the decoder has real structure to
  // chew on (random geometry: both schemes, short last windows).
  net::FecConfig config;
  config.scheme = rng.next_below(2) == 0 ? net::FecScheme::kXorParity
                                         : net::FecScheme::kReedSolomon;
  config.k = 1 + static_cast<int>(rng.next_below(net::kMaxFecK));
  config.m = config.scheme == net::FecScheme::kXorParity
                 ? 1
                 : 1 + static_cast<int>(rng.next_below(net::kMaxFecM));
  net::FecEncoder encoder(config);
  std::vector<net::Packet> packets = packetizer.packetize(corpus.pick(rng));
  encoder.protect(&packets);

  // Structural damage: drop / duplicate / adjacent swaps.
  std::vector<net::Packet> stream;
  for (net::Packet& packet : packets) {
    if (rng.next_bernoulli(0.2)) continue;                   // dropped
    if (rng.next_bernoulli(0.10)) stream.push_back(packet);  // duplicated
    stream.push_back(std::move(packet));
  }
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    if (rng.next_bernoulli(0.2)) std::swap(stream[i], stream[i + 1]);
  }

  // Targeted repair mutations: forged k/m/index geometry, truncated or
  // padded symbols, stale window ids pointing at sequences that never
  // existed.
  for (net::Packet& packet : stream) {
    if (!packet.is_fec_repair() || packet.payload.empty()) continue;
    if (rng.next_bernoulli(0.3)) {
      const std::uint32_t pos = rng.next_below(
          static_cast<std::uint32_t>(std::min<std::size_t>(
              packet.payload.size(), net::kFecRepairHeaderSize)));
      packet.payload.mutable_data()[pos] =
          static_cast<std::uint8_t>(rng.next_u32());
    }
    if (rng.next_bernoulli(0.15)) {  // truncate the symbol
      packet.payload.resize(rng.next_below(
          static_cast<std::uint32_t>(packet.payload.size() + 1)));
    }
    if (rng.next_bernoulli(0.1) && packet.payload.size() >= 6) {
      // Stale window id.
      std::uint8_t* bytes = packet.payload.mutable_data();
      bytes[4] = static_cast<std::uint8_t>(rng.next_u32());
      bytes[5] = static_cast<std::uint8_t>(rng.next_u32());
    }
  }
  // Byte-level damage through the wire-honest injector (hits media and
  // repair packets alike, including the RTP payload-type bits).
  net::FaultInjectorConfig faults;
  faults.seed = rng.next_u32();
  faults.p_bit_flip = 0.2;
  faults.p_truncate = 0.1;
  faults.p_header_corrupt = 0.15;
  net::FaultInjector injector(faults);
  stream = injector.apply(std::move(stream));
  // Occasionally a pure-garbage "repair" packet.
  if (rng.next_bernoulli(0.25)) {
    net::Packet alien;
    alien.header.payload_type = net::kPayloadTypeFec;
    alien.header.sequence = static_cast<std::uint16_t>(rng.next_u32());
    alien.header.timestamp = rng.next_u32();
    alien.payload = random_bytes(rng, 512);
    stream.insert(stream.begin() + static_cast<std::ptrdiff_t>(rng.next_below(
                      static_cast<std::uint32_t>(stream.size() + 1))),
                  std::move(alien));
  }

  net::FecDecoder fec_decoder;
  const std::vector<net::Packet> out = fec_decoder.process(std::move(stream));
  // Contract: repair packets never propagate downstream, and the decoder
  // never fabricates repair-typed media.
  for (const net::Packet& packet : out) {
    PB_CHECK(!packet.is_fec_repair());
  }
  const net::FecDecoderStats& stats = fec_decoder.stats();
  PB_CHECK(stats.repair_packets_invalid <= stats.repair_packets_seen);
  return stats.repair_packets_invalid;
}

std::uint64_t fuzz_wire_case(Pcg32& rng, net::Packetizer& packetizer) {
  const Corpus& corpus = Corpus::instance();
  std::uint64_t rejects = 0;

  // Random bytes through the CRC-expecting parser: reject or classify,
  // never crash.
  {
    const std::vector<std::uint8_t> garbage = random_bytes(rng, 64);
    net::Packet parsed;
    if (!net::parse_packet(garbage, &parsed, /*expect_crc=*/true)) ++rejects;
  }

  std::vector<net::Packet> packets = packetizer.packetize(corpus.pick(rng));
  PB_CHECK(!packets.empty());
  const net::Packet& pick =
      packets[rng.next_below(static_cast<std::uint32_t>(packets.size()))];
  const std::vector<std::uint8_t> wire = net::serialize_packet(pick);

  // An intact CRC frame round-trips clean.
  {
    net::Packet parsed;
    PB_CHECK(net::parse_packet(wire, &parsed, /*expect_crc=*/true));
    PB_CHECK(parsed.crc_present && parsed.crc_ok);
    PB_CHECK(parsed.payload == pick.payload);
  }

  // Hostile trailer/body: CRC64 detects EVERY single-bit error, so any
  // one-bit flip that leaves the X bit itself alone must parse as
  // corrupted (or not parse at all) — whether it hit the header, the
  // payload, or the trailer.
  {
    const std::uint32_t bit =
        rng.next_below(static_cast<std::uint32_t>(wire.size() * 8));
    std::vector<std::uint8_t> flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const bool x_bit_hit = bit / 8 == 0 && (1u << (bit % 8)) == 0x10u;
    net::Packet parsed;
    if (net::parse_packet(flipped, &parsed, /*expect_crc=*/true) &&
        !x_bit_hit) {
      PB_CHECK(parsed.crc_present);
      PB_CHECK(!parsed.crc_ok);
    }
  }

  // Truncated frames: chopping any tail byte off a CRC frame must never
  // parse clean (the recomputed CRC covers a different byte span than
  // whatever 8 bytes now sit at the end).
  {
    const std::size_t cut =
        rng.next_below(static_cast<std::uint32_t>(wire.size()));
    const std::vector<std::uint8_t> truncated(
        wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    net::Packet parsed;
    if (!net::parse_packet(truncated, &parsed, /*expect_crc=*/true)) {
      ++rejects;
    } else {
      PB_CHECK(parsed.crc_present && !parsed.crc_ok);
    }
  }

  // Refcount abuse: duplicated packets share one payload allocation.
  // Drive the twins through the wire-honest injector — copy-on-corrupt
  // must unshare the damaged twin, never scribble on the survivor — then
  // touch every surviving payload byte so ASan validates the storage.
  {
    std::vector<net::Packet> stream;
    for (net::Packet& packet : packets) {
      if (rng.next_bernoulli(0.5)) stream.push_back(packet);  // shared twin
      stream.push_back(std::move(packet));
    }
    net::FaultInjectorConfig faults;
    faults.seed = rng.next_u32();
    faults.p_bit_flip = 0.3;
    faults.p_truncate = 0.15;
    faults.p_header_corrupt = 0.2;
    faults.p_duplicate = 0.2;
    faults.expect_crc = true;
    net::FaultInjector injector(faults);
    stream = injector.apply(std::move(stream));
    std::uint64_t checksum = 0;
    for (const net::Packet& packet : stream) {
      for (const std::uint8_t b : packet.payload) checksum += b;
      if (!packet.crc_ok) ++rejects;
    }
    // Consuming the sum keeps the walk observable; it cannot reach
    // UINT64_MAX (that would take 2^56 payload bytes).
    PB_CHECK(checksum != ~std::uint64_t{0});
  }
  return rejects;
}

// Representative exposition text covering every shape the renderer
// emits: plain counters, session labels, histogram buckets, +Inf.
const char kPromCorpus[] =
    "# HELP pbpair_decoder_frames_total frames\n"
    "# TYPE pbpair_decoder_frames_total counter\n"
    "pbpair_decoder_frames_total 1200\n"
    "pbpair_session_frames_total{session=\"s000\"} 48\n"
    "pbpair_session_psnr_db{session=\"s0\\\"0\"} 33.8125\n"
    "pbpair_encode_ns_bucket{le=\"1024\"} 17\n"
    "pbpair_encode_ns_bucket{le=\"+Inf\"} 43\n"
    "pbpair_encode_ns_sum 91234\n"
    "pbpair_encode_ns_count 43\n";

std::uint64_t fuzz_prometheus_case(Pcg32& rng) {
  std::string text;
  if (rng.next_below(4) == 0) {
    const std::vector<std::uint8_t> raw = random_bytes(rng, 512);
    text.assign(raw.begin(), raw.end());
  } else {
    text = mutate_text(rng, kPromCorpus);
  }
  std::vector<obs::PromSample> samples;
  if (!obs::parse_prometheus_text(text, &samples)) return 1;
  // Walk every accepted sample so ASan validates the string storage; the
  // parsed names cannot outgrow the input that produced them.
  std::size_t touched = 0;
  for (const obs::PromSample& s : samples) {
    touched += s.family.size() + s.session.size();
  }
  PB_CHECK(touched <= text.size() + samples.size());
  return 0;
}

const char kJsonCorpus[] =
    "{\"header\":{\"scheme\":\"pbpair(0.9)\",\"seed\":2005,\"arr\":"
    "[1,2.5,-3e4,true,false,null,\"\\u00e9\\n\"],\"nested\":{\"a\":"
    "{\"b\":{\"c\":[{\"d\":1}]}}}},\"frames\":[{\"frame\":0,\"psnr_db\":"
    "31.4159,\"lost\":false},{\"frame\":1,\"psnr_db\":30.0,\"lost\":true}]}";

std::uint64_t walk_json(const common::JsonValue& value) {
  std::uint64_t nodes = 1;
  for (const common::JsonValue& item : value.items()) nodes += walk_json(item);
  for (const auto& member : value.members()) {
    nodes += member.first.size() + walk_json(member.second);
  }
  return nodes;
}

std::uint64_t fuzz_json_case(Pcg32& rng) {
  std::string text;
  switch (rng.next_below(4)) {
    case 0: {
      const std::vector<std::uint8_t> raw = random_bytes(rng, 512);
      text.assign(raw.begin(), raw.end());
      break;
    }
    case 1: {
      // Deep nesting: must parse-fail at the depth cap, not blow the
      // stack (the 256-level bound in common/json.cpp).
      const std::size_t depth = 200 + rng.next_below(400);
      if (rng.next_below(2) == 0) {
        text.assign(depth, '[');
      } else {
        for (std::size_t i = 0; i < depth; ++i) text += "{\"k\":";
      }
      break;
    }
    default:
      text = mutate_text(rng, kJsonCorpus);
      break;
  }
  common::JsonValue value;
  std::string error;
  if (!common::JsonValue::parse(text, &value, &error)) return 1;
  PB_CHECK(walk_json(value) > 0);
  return 0;
}

// --- driver --------------------------------------------------------------

// Crash-dump plumbing for the SIGABRT handler: PB_CHECK failures (and
// assert) abort, and a signal handler may only touch pre-resolved state —
// no allocation, no registry lookups. The recorder pointer is registry-
// owned and stable; the dump path is snprintf'd into a fixed buffer
// before the campaign starts.
obs::FlightRecorder* g_fuzz_flight = nullptr;
char g_fuzz_flight_dump_path[512] = {0};

extern "C" void fuzz_abort_handler(int) {
  if (g_fuzz_flight != nullptr && g_fuzz_flight_dump_path[0] != '\0') {
    const int fd = ::open(g_fuzz_flight_dump_path,
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      g_fuzz_flight->dump_unsafe(fd);
      ::close(fd);
    }
  }
  // Returning is deliberate: abort() restores the default disposition and
  // re-raises, so the process still dies with SIGABRT after the dump.
}

void write_breadcrumb(const std::string& crash_dir, const char* target,
                      std::uint64_t seed, int iteration) {
  if (crash_dir.empty()) return;
  const std::string path = crash_dir + "/case.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "target=%s seed=%llu iteration=%d\n"
               "replay: pbpair fuzz --fuzz-target %s --seed %llu\n",
               target, static_cast<unsigned long long>(seed), iteration,
               target, static_cast<unsigned long long>(seed));
  std::fclose(f);
}

std::uint64_t target_stream(std::uint64_t seed, const char* name) {
  // Salt the seed with the full target name so each target draws from an
  // independent stream and adding targets never perturbs the others.
  common::SplitMix64 mix(seed);
  std::uint64_t salt = mix.next();
  for (const char* c = name; *c != '\0'; ++c) {
    salt = (salt ^ static_cast<std::uint64_t>(*c)) * 0x100000001B3ULL;
  }
  return salt;
}

}  // namespace

bool run_fuzz(const FuzzOptions& options, FuzzReport* report) {
  enum TargetId {
    kBitReader,
    kDecoder,
    kDepacketize,
    kPacket,
    kFec,
    kWire,
    kProm,
    kJson
  };
  struct Target {
    TargetId id;
    const char* name;
  };
  static constexpr Target kTargets[] = {
      {kBitReader, "bitreader"},     {kDecoder, "decoder"},
      {kDepacketize, "depacketize"}, {kPacket, "packet"},
      {kFec, "fec"},                 {kWire, "wire"},
      {kProm, "prometheus"},         {kJson, "json"},
  };
  const auto want = [&](const Target& t) {
    return options.target == "all" || options.target == t.name;
  };
  bool any = false;
  for (const Target& t : kTargets) any = any || want(t);
  if (!any) return false;

  // With a crash dir configured, keep a flight ring of recent cases and
  // dump it from the SIGABRT handler: the breadcrumb file names the one
  // case to replay, the flight tail shows the path that led there.
  if (!options.crash_dir.empty()) {
    g_fuzz_flight = obs::FlightRegistry::global().create("fuzz", 1024);
    std::snprintf(g_fuzz_flight_dump_path, sizeof(g_fuzz_flight_dump_path),
                  "%s/flight.jsonl", options.crash_dir.c_str());
    std::signal(SIGABRT, fuzz_abort_handler);
  }

  // Long-lived state: the decoders survive the whole campaign, proving
  // hostile frames leave them usable for the next one.
  codec::Decoder decoder(codec::DecoderConfig{});
  codec::Decoder depack_decoder(codec::DecoderConfig{});
  net::PacketizerConfig packetizer_config;
  packetizer_config.mtu = 320;  // small MTU: exercises GOB continuations
  net::Packetizer packetizer(packetizer_config);
  // The FEC target gets its own packetizer so its sequence-number state
  // never perturbs the depacketize target's streams (or vice versa).
  net::Packetizer fec_packetizer(packetizer_config);
  // The wire target frames with CRC trailers (its own sequence space).
  net::PacketizerConfig wire_packetizer_config = packetizer_config;
  wire_packetizer_config.crc = true;
  net::Packetizer wire_packetizer(wire_packetizer_config);

  for (const Target& t : kTargets) {
    if (!want(t)) continue;
    common::SplitMix64 salt(target_stream(options.seed, t.name));
    Pcg32 rng(salt.next(), salt.next());
    for (int i = 0; i < options.iterations; ++i) {
      write_breadcrumb(options.crash_dir, t.name, options.seed, i);
      if (g_fuzz_flight != nullptr) {
        g_fuzz_flight->record(obs::FlightEvent::kFuzzCase, i,
                              static_cast<std::int64_t>(options.seed),
                              static_cast<std::int64_t>(t.id));
      }
      switch (t.id) {
        case kBitReader: fuzz_bitreader_case(rng); break;
        case kDecoder: fuzz_decoder_case(rng, decoder); break;
        case kDepacketize:
          fuzz_depacketize_case(rng, packetizer, depack_decoder);
          break;
        case kPacket: report->parse_rejects += fuzz_packet_case(rng); break;
        case kFec:
          report->parse_rejects += fuzz_fec_case(rng, fec_packetizer);
          break;
        case kWire:
          report->parse_rejects += fuzz_wire_case(rng, wire_packetizer);
          break;
        case kProm: report->parse_rejects += fuzz_prometheus_case(rng); break;
        case kJson: report->parse_rejects += fuzz_json_case(rng); break;
      }
      report->total_iterations += 1;
      report->iterations_per_target[t.name] += 1;
    }
  }
  report->decoder_concealed_mbs =
      decoder.concealed_mbs() + depack_decoder.concealed_mbs();
  return true;
}

}  // namespace pbpair::sim
