#include "sim/admission.h"

#include <cstdint>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace pbpair::sim {
namespace {

// FNV-1a 64 over the label bytes; the per-shard weight mixes the label
// hash with the shard index through a splitmix64 finalizer. No wall clock,
// no pointers — the weight is a pure function of (label, shard).
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

obs::FlightRecorder* admission_ring() {
  // find-then-create: create() resets an existing ring, and shed history
  // should survive repeated runs within one process.
  obs::FlightRecorder* ring = obs::FlightRegistry::global().find("admission");
  if (ring == nullptr) {
    ring = obs::FlightRegistry::global().create("admission");
  }
  return ring;
}

}  // namespace

const char* admit_decision_name(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAccepted: return "accepted";
    case AdmitDecision::kQueued: return "queued";
    case AdmitDecision::kShed: return "shed";
  }
  return "unknown";
}

std::size_t rendezvous_shard(const std::string& label, std::size_t shards) {
  PB_CHECK(shards > 0);
  if (shards == 1) return 0;
  const std::uint64_t label_hash = fnv1a(label);
  std::size_t best = 0;
  std::uint64_t best_weight = 0;
  for (std::size_t k = 0; k < shards; ++k) {
    const std::uint64_t weight = mix64(label_hash ^ mix64(k));
    if (k == 0 || weight > best_weight) {
      best = k;
      best_weight = weight;
    }
  }
  return best;
}

SessionAdmission::SessionAdmission(AdmissionConfig config)
    : config_(config) {}

void SessionAdmission::sample_fleet() {
  fleet_ = obs::HealthRegistry::global().state_counts();
}

AdmitDecision SessionAdmission::admit(std::size_t slot,
                                      const std::string& label,
                                      bool sheddable, std::size_t shard,
                                      std::size_t pinned_depth) {
  AdmitDecision decision = AdmitDecision::kAccepted;

  // Health-driven shedding considers only DEGRADED-eligible sessions; a
  // non-sheddable session rides the queue path no matter how sick the
  // fleet is.
  const bool fleet_pressed =
      (config_.shed_on_critical && fleet_.critical > 0) ||
      fleet_.pressure() >= config_.shed_pressure;
  if (sheddable && fleet_pressed) {
    decision = AdmitDecision::kShed;
  } else if (config_.shed_queue_depth > 0 &&
             pinned_depth >= config_.shed_queue_depth) {
    decision =
        sheddable ? AdmitDecision::kShed : AdmitDecision::kQueued;
  } else if (config_.max_live_per_shard > 0 &&
             pinned_depth >= config_.max_live_per_shard) {
    // Admitted, but the shard's live cap means it waits for a slot.
    decision = AdmitDecision::kQueued;
  }

  if (obs::enabled()) {
    switch (decision) {
      case AdmitDecision::kAccepted:
        obs::counter("sim.admit.accepted").add();
        break;
      case AdmitDecision::kQueued:
        obs::counter("sim.admit.queued").add();
        break;
      case AdmitDecision::kShed:
        obs::counter("sim.admit.shed").add();
        break;
    }
  }
  if (decision == AdmitDecision::kShed) {
    admission_ring()->record(obs::FlightEvent::kSessionShed, -1,
                             static_cast<std::int64_t>(slot),
                             static_cast<std::int64_t>(shard));
    PB_LOG_WARN("admission: shed session %zu (%s) targeting shard %zu "
                "(depth %zu, fleet %d/%d/%d)",
                slot, label.c_str(), shard, pinned_depth, fleet_.healthy,
                fleet_.degraded, fleet_.critical);
  }
  return decision;
}

}  // namespace pbpair::sim
