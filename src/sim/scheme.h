// Named error-resilience scheme specifications and the policy factory.
//
// A SchemeSpec is a value-type description ("PGOP-3", "AIR-24", "PBPAIR
// with Intra_Th 0.87 at PLR 10%") that the pipeline turns into a live
// RefreshPolicy. This is what benchmarks and examples enumerate.
#pragma once

#include <memory>
#include <string>

#include "codec/refresh_policy.h"
#include "core/pbpair_policy.h"

namespace pbpair::sim {

enum class SchemeKind {
  kNoResilience,
  kPbpair,
  kPgop,
  kGop,
  kAir,
};

struct SchemeSpec {
  SchemeKind kind = SchemeKind::kNoResilience;
  int param = 0;  // N of GOP-N / AIR-N / PGOP-N
  core::PbpairConfig pbpair_config{};  // used when kind == kPbpair

  /// Display label ("GOP-3", "PBPAIR", ...).
  std::string label() const;

  static SchemeSpec no_resilience();
  static SchemeSpec gop(int p_frames_per_i);
  static SchemeSpec air(int refresh_mbs);
  static SchemeSpec pgop(int columns);
  static SchemeSpec pbpair(const core::PbpairConfig& config);
};

/// Instantiates the policy for a frame geometry. The returned policy is
/// freshly reset.
std::unique_ptr<codec::RefreshPolicy> make_policy(const SchemeSpec& spec,
                                                  int mb_cols, int mb_rows);

}  // namespace pbpair::sim
